(* tcheck — command-line front end to the temporal-checker toolbox.

   Subcommands:
     parse      parse + typecheck a MiniC file
     run        execute on the reference interpreter
     compile    compile to the RISC ISA (prints assembly)
     sim        execute on the cycle-level SoC
     automaton  synthesize a property into an AR-automaton (IL text)
     verify     simulation-based temporal verification (approach 1 or 2)
     bmc        bounded model checking
     absref     predicate-abstraction model checking
     eee        run a case-study verification campaign
     smc        statistical model checking over fault-injected campaigns
     metrics    validate a metrics snapshot written by --metrics *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let source =
    try read_file path
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  match Minic.C_parser.parse_result source with
  | Error msg ->
    Printf.eprintf "%s: parse error: %s\n" path msg;
    exit 2
  | Ok program -> (
    match Minic.Typecheck.check_result program with
    | Error msg ->
      Printf.eprintf "%s: type error: %s\n" path msg;
      exit 2
    | Ok info -> info)

(* a plain string: [load] reports unreadable files itself with exit 2 *)
let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.c")

(* ------------------------------------------------------------------ *)

let cmd_parse =
  let action path =
    let info = load path in
    let prog = Minic.Typecheck.program info in
    Printf.printf "%s: OK (%d globals, %d functions)\n" path
      (List.length prog.Minic.Ast.globals)
      (List.length prog.Minic.Ast.funcs);
    0
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and typecheck a MiniC file")
    Term.(const action $ file_arg)

let cmd_run =
  let action path fuel backend =
    let info = load path in
    let exec = Minic.Exec.create ~backend info in
    match Minic.Exec.run ~fuel exec ~entry:"main" with
    | Minic.Exec.Finished v ->
      Printf.printf "finished: %s (%d statements, %s backend)\n"
        (match v with Some v -> string_of_int v | None -> "void")
        (Minic.Exec.statements_executed exec)
        (Minic.Exec.kind_name exec);
      0
    | Minic.Exec.Halted ->
      print_endline "halted";
      0
    | Minic.Exec.Fuel_exhausted ->
      print_endline "fuel exhausted";
      1
    | exception Minic.Exec.Assertion_failed pos ->
      Printf.printf "assertion failed at %d:%d\n" pos.Minic.Ast.line
        pos.Minic.Ast.column;
      1
  in
  let fuel =
    Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~doc:"Statement budget")
  in
  let backend =
    Arg.(value & opt Tcheck_cli.backend_conv Minic.Exec.Auto
           & info [ "backend" ] ~docv:"BACKEND"
               ~doc:"Execution backend: $(b,interp), $(b,vm) or $(b,auto)")
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute on the reference MiniC backend")
    Term.(const action $ file_arg $ fuel $ backend)

let cmd_compile =
  let action path show_asm =
    let info = load path in
    let compiled = Mcc.Codegen.compile info in
    Printf.printf "; %d instructions, data segment %d words\n"
      (List.length compiled.Mcc.Codegen.instructions)
      (Mcc.Symtab.data_words compiled.Mcc.Codegen.symtab);
    List.iter
      (fun (name, addr, size) ->
        Printf.printf ";   %s @ 0x%04X (%d)\n" name addr size)
      (Mcc.Symtab.globals compiled.Mcc.Codegen.symtab);
    if show_asm then print_string compiled.Mcc.Codegen.asm_source;
    0
  in
  let show_asm =
    Arg.(value & flag & info [ "asm" ] ~doc:"Print generated assembly")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile MiniC to the RISC ISA")
    Term.(const action $ file_arg $ show_asm)

let cmd_sim =
  let action path max_cycles =
    let info = load path in
    let soc = Platform.Soc.create () in
    Platform.Soc.load soc (Mcc.Codegen.compile info);
    Platform.Soc.run ~max_cycles soc;
    let cpu = Platform.Soc.cpu soc in
    (match Cpu.Cpu_core.stop_reason cpu with
    | Cpu.Cpu_core.Halted ->
      Printf.printf "halted after %d cycles, rv=%d\n" (Platform.Soc.cycles soc)
        (Cpu.Cpu_core.reg cpu Cpu.Isa.reg_rv)
    | Cpu.Cpu_core.Trapped code ->
      Printf.printf "trap %d after %d cycles\n" code (Platform.Soc.cycles soc)
    | Cpu.Cpu_core.Running ->
      Printf.printf "still running after %d cycles\n"
        (Platform.Soc.cycles soc));
    (match Platform.Soc.console_output soc with
    | [] -> ()
    | output ->
      Printf.printf "console: %s\n"
        (String.concat " " (List.map string_of_int output)));
    0
  in
  let cycles =
    Arg.(value & opt int 1_000_000 & info [ "cycles" ] ~doc:"Cycle budget")
  in
  Cmd.v (Cmd.info "sim" ~doc:"Execute on the cycle-level SoC model")
    Term.(const action $ file_arg $ cycles)

let cmd_automaton =
  let action text psl =
    let syntax = if psl then `Psl else `Auto in
    match Sctc.Prop.parse ~syntax text with
    | Error error ->
      Printf.eprintf "property %s\n" (Sctc.Prop.error_to_string error);
      2
    | Ok formula ->
      let automaton = Ar_automaton.synthesize formula in
      Printf.printf "%s\n" (Ar_automaton.stats automaton);
      print_string (Il.to_string (Il.of_automaton ~name:"property" automaton));
      0
  in
  let property =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROPERTY")
  in
  let psl =
    Arg.(value & flag & info [ "psl" ]
           ~doc:"Force PSL (default: auto-detect via Sctc.Prop)")
  in
  Cmd.v
    (Cmd.info "automaton"
       ~doc:"Synthesize a property into an AR-automaton (IL text)")
    Term.(const action $ property $ psl)

(* --- verify ---------------------------------------------------------- *)

let cmd_verify =
  let action path approach engine properties props budget flag common =
    let info = load path in
    let metrics = Tcheck_cli.registry common in
    let backend =
      match approach with
      | 0 -> Verif.Session.Reference
      | 1 -> Verif.Session.Soc_model
      | 2 -> Verif.Session.Derived_model
      | n ->
        Printf.eprintf "unknown approach %d (use 0, 1 or 2)\n" n;
        exit 2
    in
    (* each property is one campaign job: an independent session over the
       same program, fanned out over the worker pool *)
    let named =
      match properties with
      | [] ->
        Printf.eprintf "at least one --property is required\n";
        exit 2
      | [ property ] -> [ ("property", property) ]
      | properties ->
        List.mapi
          (fun i property -> (Printf.sprintf "property%d" (i + 1), property))
          properties
    in
    (* fail fast on malformed properties, before any session is built:
       one structured parse error per bad property, not a crashed job *)
    let bad =
      List.filter_map
        (fun (name, text) ->
          match Sctc.Prop.parse text with
          | Ok _ -> None
          | Error error ->
            Some
              (Printf.sprintf "tcheck verify: %s: %s" name
                 (Sctc.Prop.error_to_string error)))
        named
    in
    if bad <> [] then begin
      List.iter (Printf.eprintf "%s\n") bad;
      exit 2
    end;
    let job_of (name, text) =
      Verif.Campaign.job ~label:name (fun trace ->
          let config =
            {
              Verif.Session.default_config with
              Verif.Session.session_name = "cli";
              engine;
              properties = [ (name, text) ];
              propositions = props;
              bound = Some budget;
              seed = common.Tcheck_cli.seed;
              flag;
              exec_backend = common.Tcheck_cli.backend;
              trace;
              metrics;
            }
          in
          let session = Verif.Session.create ~info config backend in
          Verif.Session.run session;
          Verif.Session.result session)
    in
    let summary = Tcheck_cli.execute common metrics (List.map job_of named) in
    Tcheck_cli.finish common metrics summary;
    List.iter
      (fun outcome ->
        match outcome.Verif.Campaign.result with
        | Error msg ->
          Printf.eprintf "tcheck verify: %s: %s\n"
            outcome.Verif.Campaign.label msg
        | Ok result ->
          List.iter
            (fun p ->
              Printf.printf "%-20s %s%s\n" p.Verif.Result.property
                (Verdict.to_string p.Verif.Result.verdict)
                (match p.Verif.Result.first_final_at with
                | Some tu -> Printf.sprintf "  (final at %d)" tu
                | None -> ""))
            result.Verif.Result.properties)
      summary.Verif.Campaign.outcomes;
    if Verif.Campaign.errors summary <> [] then 2
    else
      match Verif.Campaign.overall summary with
      | Verdict.False -> 1
      | Verdict.True | Verdict.Pending -> 0
  in
  let approach =
    Arg.(value & opt int 2 & info [ "approach" ]
           ~doc:"0 = reference interpreter, 1 = microprocessor model, 2 = derived SystemC model")
  in
  let property =
    Arg.(value & opt_all string [] & info [ "property" ] ~docv:"PROPERTY"
           ~doc:"FLTL or PSL property over the declared propositions \
                 (syntax auto-detected via Sctc.Prop; repeatable; each \
                 property becomes one campaign job)")
  in
  let props =
    Arg.(value & opt_all Tcheck_cli.prop_conv [] & info [ "prop" ]
           ~docv:"NAME=EXPR"
           ~doc:"Proposition definition (boolean MiniC expression over globals)")
  in
  let budget =
    Arg.(value & opt int 100_000 & info [ "budget" ]
           ~doc:"Cycles (approach 1) or statements (approach 2)")
  in
  let flag =
    Arg.(value & opt (some string) None & info [ "flag" ]
           ~doc:"Initialization flag variable for the approach-1 handshake")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Simulation-based temporal verification with SCTC")
    Term.(const action $ file_arg $ approach $ Tcheck_cli.engine_arg
          $ property $ props $ budget $ flag
          $ Tcheck_cli.term ~default_seed:42)

let cmd_bmc =
  let action path unwind timeout =
    let info = load path in
    let report = Bmc.check ~unwind ~timeout_seconds:timeout info in
    (match report.Bmc.result with
    | Bmc.Safe { complete } ->
      Printf.printf "SAFE%s (%.2fs, %d circuit nodes, %d cnf vars)\n"
        (if complete then "" else " up to unwind bound")
        report.Bmc.seconds report.Bmc.circuit_nodes report.Bmc.cnf_vars
    | Bmc.Unsafe cex ->
      Printf.printf "UNSAFE: %s at %d:%d (%.2fs)\n" cex.Bmc.violated
        cex.Bmc.position.Minic.Ast.line cex.Bmc.position.Minic.Ast.column
        report.Bmc.seconds;
      List.iter
        (fun (name, v) -> Printf.printf "  %s = %d\n" name v)
        cex.Bmc.input_values
    | Bmc.Out_of_time -> Printf.printf "TIMEOUT after %.2fs\n" report.Bmc.seconds
    | Bmc.Gave_up msg -> Printf.printf "GAVE UP: %s\n" msg);
    match report.Bmc.result with Bmc.Unsafe _ -> 1 | _ -> 0
  in
  let unwind =
    Arg.(value & opt int 20 & info [ "unwind" ] ~doc:"Loop unwinding bound")
  in
  let timeout =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~doc:"Seconds")
  in
  Cmd.v (Cmd.info "bmc" ~doc:"Bounded model checking (CBMC analog)")
    Term.(const action $ file_arg $ unwind $ timeout)

let cmd_absref =
  let action path timeout =
    let info = load path in
    let report = Absref.Cegar.check ~timeout_seconds:timeout info in
    (match report.Absref.Cegar.result with
    | Absref.Cegar.Safe ->
      Printf.printf "SAFE (%.2fs, %d iterations, %d predicates)\n"
        report.Absref.Cegar.seconds report.Absref.Cegar.iterations
        report.Absref.Cegar.predicates
    | Absref.Cegar.Bug { path_length; position } ->
      Printf.printf "BUG: path of %d edges, assertion at %d:%d (%.2fs)\n"
        path_length position.Minic.Ast.line position.Minic.Ast.column
        report.Absref.Cegar.seconds
    | Absref.Cegar.Aborted msg ->
      Printf.printf "ABORTED: %s (%.2fs)\n" msg report.Absref.Cegar.seconds
    | Absref.Cegar.Unknown msg ->
      Printf.printf "UNKNOWN: %s (%.2fs)\n" msg report.Absref.Cegar.seconds);
    match report.Absref.Cegar.result with Absref.Cegar.Bug _ -> 1 | _ -> 0
  in
  let timeout =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~doc:"Seconds")
  in
  Cmd.v
    (Cmd.info "absref"
       ~doc:"Predicate abstraction with refinement (BLAST analog)")
    Term.(const action $ file_arg $ timeout)

let cmd_eee =
  let action approach engine op_names cases scale bound fault_rate common =
    let find_op name =
      match
        List.find_opt
          (fun op ->
            String.lowercase_ascii (Eee.Eee_spec.op_name op)
            = String.lowercase_ascii name)
          Eee.Eee_spec.all_ops
      with
      | Some op -> op
      | None ->
        Printf.eprintf "unknown operation %s\n" name;
        exit 2
    in
    let ops =
      match op_names with
      | [] -> [ Eee.Eee_spec.Read ]
      | [ "all" ] -> Eee.Eee_spec.all_ops
      | names -> List.map find_op names
    in
    if approach <> 1 && approach <> 2 then begin
      Printf.eprintf "unknown approach %d\n" approach;
      exit 2
    end;
    if scale < 1 then begin
      Printf.eprintf "--scale must be >= 1\n";
      exit 2
    end;
    let metrics = Tcheck_cli.registry common in
    let plan =
      {
        Eee.Harness.default_plan with
        Eee.Harness.ops;
        approaches = [ approach ];
        engine;
        cases_per_op = cases * scale;
        bound;
        fault_rate;
        seed = common.Tcheck_cli.seed;
        backend = common.Tcheck_cli.backend;
        metrics;
      }
    in
    let summary =
      Tcheck_cli.execute common metrics (Eee.Harness.campaign_jobs plan)
    in
    Tcheck_cli.finish common metrics summary;
    List.iter
      (fun outcome ->
        Format.printf "--- %s ---@." outcome.Verif.Campaign.label;
        match outcome.Verif.Campaign.result with
        | Error msg -> Format.printf "job failed: %s@." msg
        | Ok result ->
          Format.printf "%a@." Verif.Result.pp result;
          Format.printf "observed returns: %s@."
            (String.concat ", "
               (match result.Verif.Result.coverage with
               | Some coverage -> Sctc.Coverage.observed coverage
               | None -> [])))
      summary.Verif.Campaign.outcomes;
    if List.length summary.Verif.Campaign.outcomes > 1 then
      Format.printf
        "campaign: %d jobs on %d workers, %.2fs wall (%.2fs of per-job \
         verification time)@."
        (List.length summary.Verif.Campaign.outcomes)
        summary.Verif.Campaign.workers summary.Verif.Campaign.wall_seconds
        (Verif.Campaign.vt_seconds_sum summary);
    if Verif.Campaign.errors summary <> [] then 2 else 0
  in
  let approach =
    Arg.(value & opt int 2 & info [ "approach" ] ~doc:"1 or 2")
  in
  let op =
    Arg.(value & opt_all string [] & info [ "op" ]
           ~doc:"read|write|startup1|startup2|format|prepare|refresh, \
                 repeatable; \"all\" runs every operation (default read)")
  in
  let cases =
    Arg.(value & opt int 100 & info [ "cases" ] ~doc:"Test cases per operation")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K"
           ~doc:"Multiply --cases by K — the overnight-campaign knob; \
                 combine with --stream to keep memory bounded while the \
                 trace streams out")
  in
  let bound =
    Arg.(value & opt (some int) None & info [ "bound" ]
           ~doc:"Time bound of the response property")
  in
  let fault_rate =
    Arg.(value & opt float 0.02 & info [ "fault-rate" ]
           ~doc:"Flash fault-injection probability")
  in
  Cmd.v
    (Cmd.info "eee" ~doc:"Run a case-study verification campaign")
    Term.(const action $ approach $ Tcheck_cli.engine_arg $ op $ cases
          $ scale $ bound $ fault_rate $ Tcheck_cli.term ~default_seed:7)

let cmd_smc =
  let action approach op_name cases quick theta eps delta alpha beta
      max_samples fault_specs prop bound fault_rate common =
    if approach <> 1 && approach <> 2 then begin
      Printf.eprintf "unknown approach %d\n" approach;
      exit 2
    end;
    let op =
      match
        List.find_opt
          (fun op ->
            String.lowercase_ascii (Eee.Eee_spec.op_name op)
            = String.lowercase_ascii op_name)
          Eee.Eee_spec.all_ops
      with
      | Some op -> op
      | None ->
        Printf.eprintf "unknown operation %s\n" op_name;
        exit 2
    in
    (match prop with
    | Some name
      when not
             (List.exists
                (fun op -> Eee.Eee_spec.property_name op = name)
                Eee.Eee_spec.all_ops) ->
      Printf.eprintf "unknown property %s (known: %s)\n" name
        (String.concat ", "
           (List.map Eee.Eee_spec.property_name Eee.Eee_spec.all_ops));
      exit 2
    | _ -> ());
    let faults =
      match Smc.Faults.of_specs fault_specs with
      | Ok faults -> faults
      | Error msg ->
        Printf.eprintf "--fault: %s\n" msg;
        exit 2
    in
    let metrics = Tcheck_cli.registry common in
    let plan =
      {
        Eee.Harness.default_plan with
        Eee.Harness.ops = [ op ];
        approaches = [ approach ];
        cases_per_op = cases;
        bound;
        fault_rate;
        faults;
        flash =
          (if quick then Some (Eee.Harness.flash_quick_config ~fault_rate)
           else None);
        seed = common.Tcheck_cli.seed;
        backend = common.Tcheck_cli.backend;
        metrics;
      }
    in
    let spec =
      match theta with
      | Some theta ->
        Smc.Runner.Sequential { theta; delta; alpha; beta; max_samples }
      | None -> Smc.Runner.Fixed { eps; delta }
    in
    let label =
      Printf.sprintf "a%d/%s" approach (Eee.Eee_spec.op_name op)
    in
    let sinks =
      match common.Tcheck_cli.trace_file with
      | Some out -> [ Verif.Campaign.jsonl_file_sink out ]
      | None -> []
    in
    let report =
      try
        Smc.Runner.run ~metrics ~workers:common.Tcheck_cli.jobs
          ?chunk:common.Tcheck_cli.chunk ?window:common.Tcheck_cli.window
          ~sinks ~label
          ~job:(fun ~index ->
            Eee.Harness.smc_sample_job plan ~approach ~op ~index)
          ~succeeded:(Eee.Harness.smc_succeeded ?prop)
          spec
      with Invalid_argument msg | Failure msg ->
        Printf.eprintf "smc: %s\n" msg;
        exit 2
    in
    (match common.Tcheck_cli.metrics_file with
    | None -> ()
    | Some out -> (
      try Obs.Export.write_jsonl out metrics
      with Sys_error msg ->
        Printf.eprintf "--metrics: %s\n" msg;
        exit 2));
    let monitored =
      match prop with
      | Some name -> name
      | None -> Eee.Eee_spec.property_name op
    in
    Format.printf "campaign %s: property %s, fault stimuli %s@." label
      monitored
      (Smc.Faults.to_string faults);
    Format.printf
      "%d samples (%d successes, %d sample errors), %.2fs wall@."
      report.Smc.Runner.samples report.Smc.Runner.successes
      (List.length report.Smc.Runner.errors)
      report.Smc.Runner.wall_seconds;
    (match report.Smc.Runner.decision with
    | Smc.Runner.Estimate ->
      Format.printf
        "estimate: p = %.4f +/- %.3f with confidence %g (Chernoff N = %d)@."
        report.Smc.Runner.p_hat eps delta report.Smc.Runner.chernoff_n
    | Smc.Runner.Accept_h0 | Smc.Runner.Accept_h1 ->
      let theta = match theta with Some t -> t | None -> assert false in
      (match report.Smc.Runner.decision with
      | Smc.Runner.Accept_h0 ->
        Format.printf "H0 accepted: P(%s holds) >= %.3f@." monitored
          (theta -. delta)
      | Smc.Runner.Accept_h1 ->
        Format.printf "H1 accepted: P(%s holds) <= %.3f@." monitored
          (theta +. delta)
      | Smc.Runner.Estimate -> assert false);
      Format.printf
        "SPRT %s after %d samples (p_hat = %.4f); fixed-size bound %d@."
        (if report.Smc.Runner.forced then "truncated (forced decision)"
         else if report.Smc.Runner.early_stopped then "early-stopped"
         else "stopped")
        report.Smc.Runner.samples report.Smc.Runner.p_hat
        report.Smc.Runner.chernoff_n;
      match report.Smc.Runner.stream with
      | Some stream when stream.Verif.Campaign.cancelled_jobs > 0 ->
        Format.printf "cancelled %d queued samples on decision@."
          stream.Verif.Campaign.cancelled_jobs
      | _ -> ());
    List.iter
      (fun (label, msg) -> Format.printf "sample error %s: %s@." label msg)
      report.Smc.Runner.errors;
    if report.Smc.Runner.errors <> [] then 2
    else
      match report.Smc.Runner.decision with
      | Smc.Runner.Accept_h1 -> 1
      | Smc.Runner.Accept_h0 | Smc.Runner.Estimate -> 0
  in
  let approach =
    Arg.(value & opt int 2 & info [ "approach" ] ~doc:"1 or 2")
  in
  let op =
    Arg.(value & opt string "read" & info [ "op" ]
           ~doc:"read|write|startup1|startup2|format|prepare|refresh \
                 (one operation per run)")
  in
  let cases =
    Arg.(value & opt int 1 & info [ "cases" ]
           ~doc:"Test cases per sample (each sample is one \
                 constrained-random campaign against a fresh session)")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Use the quick flash timing (20x faster erase/program) \
                 so each sample runs in milliseconds")
  in
  let theta =
    Arg.(value & opt (some float) None & info [ "theta" ] ~docv:"THETA"
           ~doc:"Run the sequential probability ratio test of H0: \
                 P(property) >= THETA+delta against H1: P(property) <= \
                 THETA-delta; without --theta the campaign runs the \
                 fixed-size Chernoff-Hoeffding estimation instead")
  in
  let eps =
    Arg.(value & opt float 0.05 & info [ "eps" ]
           ~doc:"Accuracy of the fixed-size estimate (half-width of the \
                 confidence interval)")
  in
  let delta =
    Arg.(value & opt float 0.05 & info [ "delta" ]
           ~doc:"Confidence of the fixed-size estimate, or the \
                 indifference half-width of the sequential test")
  in
  let alpha =
    Arg.(value & opt float 0.05 & info [ "alpha" ]
           ~doc:"SPRT type-I error bound (rejecting a true H0)")
  in
  let beta =
    Arg.(value & opt float 0.05 & info [ "beta" ]
           ~doc:"SPRT type-II error bound (accepting a false H0)")
  in
  let max_samples =
    Arg.(value & opt (some int) None & info [ "max-samples" ]
           ~doc:"Truncate the sequential test after this many samples \
                 (default: the Chernoff bound for the same parameters)")
  in
  let fault =
    Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"KNOB"
           ~doc:"Probabilistic fault stimulus, repeatable: \
                 $(b,decay=P) (per-tick flash bit decay), \
                 $(b,power-loss=P) (torn writes / partial erases), \
                 $(b,jitter=P:MAX) (handshake timing jitter, derived \
                 model only)")
  in
  let prop =
    Arg.(value & opt (some string) None & info [ "prop" ] ~docv:"NAME"
           ~doc:"Judge samples by this property's verdict (default: the \
                 conjunction of all registered properties)")
  in
  let bound =
    Arg.(value & opt (some int) None & info [ "bound" ]
           ~doc:"Time bound of the response property")
  in
  let fault_rate =
    Arg.(value & opt float 0.02 & info [ "fault-rate" ]
           ~doc:"Flash program/erase fault-injection probability")
  in
  Cmd.v
    (Cmd.info "smc"
       ~doc:"Statistical model checking over fault-injected campaigns")
    Term.(const action $ approach $ op $ cases $ quick $ theta $ eps
          $ delta $ alpha $ beta $ max_samples $ fault $ prop $ bound
          $ fault_rate $ Tcheck_cli.term ~default_seed:7)

let cmd_metrics =
  let action path =
    match Obs.Export.validate_snapshot_file path with
    | Ok n ->
      Printf.printf "%s: OK (%d metrics)\n" path n;
      0
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      2
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.jsonl")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Validate a metrics JSONL snapshot written by --metrics")
    Term.(const action $ file)

let () =
  let doc = "temporal verification of automotive embedded software" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "tcheck" ~version:"1.0.0" ~doc)
          [
            cmd_parse; cmd_run; cmd_compile; cmd_sim; cmd_automaton;
            cmd_verify; cmd_bmc; cmd_absref; cmd_eee; cmd_smc;
            cmd_metrics;
          ]))
