(** The option surface shared by the [tcheck] campaign subcommands
    ([verify], [eee]): worker-pool shape, campaign seed, and the trace /
    metrics output files, declared once instead of per subcommand. *)

type common = {
  jobs : int;  (** worker domains (default 1) *)
  chunk : int option;  (** jobs claimed per queue acquisition *)
  seed : int;  (** campaign master seed *)
  backend : Minic.Exec.kind;  (** [--backend interp|vm|auto] *)
  trace_file : string option;  (** [--trace FILE.jsonl] *)
  metrics_file : string option;  (** [--metrics FILE.jsonl] *)
  stream : bool;
      (** [--stream]: run {!Verif.Campaign.run_stream} (also implied by
          [--out-shards] / [--window]) *)
  out_shards : int option;  (** [--out-shards S]: shard the streamed trace *)
  window : int option;  (** [--window W]: reassembly-window bound *)
}

val backend_conv : Minic.Exec.kind Cmdliner.Arg.conv
(** [interp]/[vm]/[auto] ({!Minic.Exec.of_string}). *)

val engine_conv : Sctc.Engine.t Cmdliner.Arg.conv
(** [otf]/[explicit]/[il]/[hybrid]/[auto] ({!Sctc.Engine.of_string}). *)

val engine_arg : Sctc.Engine.t Cmdliner.Term.t
(** The [--engine] option over {!engine_conv}, defaulting to
    {!Sctc.Engine.default} ([auto]). *)

val prop_conv : (string * string) Cmdliner.Arg.conv
(** [NAME=EXPR] proposition definitions ([--prop]). *)

val term : default_seed:int -> common Cmdliner.Term.t
(** The [--jobs]/[--chunk]/[--seed]/[--trace]/[--metrics] terms combined;
    [default_seed] keeps each subcommand's historical seed default. *)

val registry : common -> Obs.Registry.t
(** A fresh live registry when [--metrics] was given, {!Obs.Registry.null}
    otherwise. *)

val execute :
  common -> Obs.Registry.t -> Verif.Campaign.job list ->
  Verif.Campaign.summary
(** Run the jobs on the engine the options selected: the seed
    accumulate-then-merge engine by default, or — under [--stream] —
    the streaming engine with the trace flowing to [--trace] (sharded
    when [--out-shards] was given) while workers are still running.
    Sink failures exit 2 with the failing option named. *)

val finish : common -> Obs.Registry.t -> Verif.Campaign.summary -> unit
(** Write the merged campaign trace ([--trace], charged to the merge
    stage timer) and the metrics snapshot ([--metrics]). Unwritable
    files exit 2 with the failing option named. *)
