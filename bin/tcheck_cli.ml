(* Tcheck_cli — the option surface shared by the campaign subcommands.

   [tcheck verify] and [tcheck eee] historically declared private copies
   of --jobs/--chunk/--seed/--trace; this module is their single
   definition, plus the --metrics surface added with lib/obs. *)

open Cmdliner

type common = {
  jobs : int;
  chunk : int option;
  seed : int;
  backend : Minic.Exec.kind;
  trace_file : string option;
  metrics_file : string option;
  stream : bool;
  out_shards : int option;
  window : int option;
}

let backend_conv =
  let parse s =
    match Minic.Exec.of_string s with
    | Some kind -> Ok kind
    | None -> Error (`Msg "expected 'interp', 'vm' or 'auto'")
  in
  Cmdliner.Arg.conv
    (parse, fun fmt kind -> Format.pp_print_string fmt (Minic.Exec.to_string kind))

let engine_conv =
  let parse s =
    match Sctc.Engine.of_string s with
    | Some engine -> Ok engine
    | None ->
      Error
        (`Msg
           (Printf.sprintf "expected one of %s"
              (String.concat ", "
                 (List.map Sctc.Engine.to_string Sctc.Engine.all))))
  in
  Arg.conv
    ( parse,
      fun fmt engine -> Format.pp_print_string fmt (Sctc.Engine.to_string engine)
    )

let engine_arg =
  let doc =
    "Monitor synthesis engine: $(b,otf) (on-the-fly progression), \
     $(b,explicit) (pre-synthesized AR-automaton), $(b,il) (automaton \
     through the IL form, compiled guard tables), $(b,hybrid) \
     (on-the-fly with hot residuals promoted to compiled tables), or \
     $(b,auto) (explicit when synthesis is cheap, hybrid otherwise; the \
     default). Verdicts are identical across engines"
  in
  Arg.(
    value
    & opt engine_conv Sctc.Engine.default
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let prop_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i when i > 0 ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | _ -> Error (`Msg "expected NAME=EXPR")
  in
  Arg.conv (parse, fun fmt (n, e) -> Format.fprintf fmt "%s=%s" n e)

let term ~default_seed =
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Fan the campaign jobs out over N domains (default 1); \
                 verdicts and trace output are identical for any N")
  in
  let chunk =
    Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"C"
           ~doc:"Jobs a worker claims per queue acquisition (scheduling \
                 only; default ~4 claims per worker)")
  in
  let seed =
    Arg.(value & opt int default_seed & info [ "seed" ]
           ~doc:"Campaign master seed")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.jsonl"
           ~doc:"Write the structured verification trace (triggers, \
                 samples, verdict changes) as JSONL to this file; with \
                 --jobs the per-job traces are merged in job order")
  in
  let metrics_file =
    Arg.(value & opt (some string) None & info [ "metrics" ]
           ~docv:"FILE.jsonl"
           ~doc:"Record counters, stage timings and latency histograms \
                 (lib/obs) during the run and write the snapshot as JSONL \
                 to this file; validate it with $(b,tcheck metrics)")
  in
  let backend =
    Arg.(value & opt backend_conv Minic.Exec.Auto & info [ "backend" ]
           ~docv:"BACKEND"
           ~doc:"MiniC execution backend for the reference and \
                 derived-model runtimes: $(b,interp) (tree-walking \
                 reference interpreter), $(b,vm) (bytecode VM) or \
                 $(b,auto) (VM with interpreter fallback; the default). \
                 Verdicts and traces are identical across backends")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Run the streaming campaign engine: finished jobs flow \
                 to the --trace file in job order through a bounded \
                 reassembly window instead of accumulating until the \
                 end of the run. Output is byte-identical to the \
                 default engine")
  in
  let out_shards =
    Arg.(value & opt (some int) None & info [ "out-shards" ] ~docv:"S"
           ~doc:"Split the streamed --trace output over S files \
                 (FILE.000.jsonl, FILE.001.jsonl, ...); concatenating \
                 them in shard order reproduces the unsharded stream \
                 byte for byte. Implies --stream")
  in
  let window =
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"W"
           ~doc:"Bound of the streaming reassembly window (outcomes a \
                 slow job can park before depositing workers block; \
                 default 2x the pool size, at least 4). Implies --stream")
  in
  let combine jobs chunk seed backend trace_file metrics_file stream
      out_shards window =
    let stream = stream || out_shards <> None || window <> None in
    { jobs; chunk; seed; backend; trace_file; metrics_file; stream;
      out_shards; window }
  in
  Term.(const combine $ jobs $ chunk $ seed $ backend $ trace_file
        $ metrics_file $ stream $ out_shards $ window)

(* a live registry only when a snapshot was requested, so un-instrumented
   runs keep the null registry's no-op handles *)
let registry common =
  match common.metrics_file with
  | Some _ -> Obs.Registry.create ()
  | None -> Obs.Registry.null

(* Run a job list on the engine the options selected. Streaming routes
   the trace through sinks while workers are still running — [finish]
   must not (and does not) rewrite the trace file afterwards. *)
let execute common metrics jobs =
  (match common.out_shards with
  | Some shards when shards < 1 ->
    Printf.eprintf "--out-shards must be >= 1\n";
    exit 2
  | _ -> ());
  if not common.stream then
    Verif.Campaign.run ~metrics ~workers:common.jobs ?chunk:common.chunk jobs
  else
    try
      let sinks =
        match (common.trace_file, common.out_shards) with
        | None, _ -> []
        | Some out, None -> [ Verif.Campaign.jsonl_file_sink out ]
        | Some out, Some shards ->
          [
            Verif.Campaign.sharded_jsonl_sink ~metrics ~shards
              ~jobs:(List.length jobs) out;
          ]
      in
      Verif.Campaign.run_stream ~metrics ~workers:common.jobs
        ?chunk:common.chunk ?window:common.window ~sinks jobs
    with Sys_error msg | Failure msg ->
      Printf.eprintf "--stream: %s\n" msg;
      exit 2

let finish common metrics summary =
  (match common.trace_file with
  | None -> ()
  | Some out ->
    if not common.stream then (
      (* streaming already wrote the trace incrementally through its sink *)
      try Verif.Campaign.write_jsonl ~metrics out summary
      with Sys_error msg ->
        Printf.eprintf "--trace: %s\n" msg;
        exit 2));
  match common.metrics_file with
  | None -> ()
  | Some out -> (
    try Obs.Export.write_jsonl out metrics
    with Sys_error msg ->
      Printf.eprintf "--metrics: %s\n" msg;
      exit 2)
