module Registry = Obs.Registry

type engine = On_the_fly | Explicit | Via_il
type syntax = Fltl | Psl | Auto

type property = {
  prop_name : string;
  formula : Formula.t;
  monitor : Monitor.t;
  mutable violated_at : int option;
  mutable final_at : int option; (* time units, via the time source *)
  mutable traced_verdict : Verdict.t; (* last verdict published on the bus *)
  mutable traced_any : bool;
}

(* metric handles, resolved once at creation; all are shared no-ops on
   [Registry.null], so the hot path pays one boolean test *)
type meters = {
  metered : bool;
  m_triggers : Registry.Counter.t;
  m_transitions : Registry.Counter.t;
  m_step_latency : Registry.Timer.t; (* per-trigger checker latency *)
  m_synthesize : Registry.Timer.t;
  m_parse : Registry.Timer.t;
}

type t = {
  c_name : string;
  table : Proposition.Table.table;
  mutable properties : property list; (* reversed insertion order *)
  mutable step_count : int;
  mutable synthesis_seconds : float;
  mutable violation_callbacks : (string -> int -> unit) list;
  mutable trace : Trace.t;
  mutable time_source : unit -> int;
  meters : meters;
}

let make_meters metrics =
  {
    metered = Registry.enabled metrics;
    m_triggers =
      Registry.counter metrics "sctc_triggers_total"
        ~help:"checker trigger (step) count";
    m_transitions =
      Registry.counter metrics "sctc_verdict_transitions_total"
        ~help:"per-property verdict changes (incl. the first verdict)";
    m_step_latency = Registry.stage_timer metrics Registry.Check;
    m_synthesize = Registry.stage_timer metrics Registry.Synthesize;
    m_parse = Registry.stage_timer metrics Registry.Parse;
  }

let create ?(trace = Trace.null) ?(metrics = Registry.null) ~name () =
  let checker =
    {
      c_name = name;
      table = Proposition.Table.create ();
      properties = [];
      step_count = 0;
      synthesis_seconds = 0.0;
      violation_callbacks = [];
      trace;
      time_source = (fun () -> 0);
      meters = make_meters metrics;
    }
  in
  (* default time reference: the trigger count itself *)
  checker.time_source <- (fun () -> checker.step_count);
  checker

let trace checker = checker.trace
let set_trace checker trace = checker.trace <- trace
let set_time_source checker source = checker.time_source <- source

let name checker = checker.c_name

let register_proposition checker prop =
  Proposition.Table.register checker.table prop

let register_sampler checker name sampler =
  register_proposition checker (Proposition.make name sampler)

let proposition_names checker = Proposition.Table.names checker.table

let property_names checker =
  List.rev_map (fun p -> p.prop_name) checker.properties

let check_support checker formula =
  List.iter
    (fun prop_name ->
      match Proposition.Table.find checker.table prop_name with
      | Some _ -> ()
      | None ->
        invalid_arg
          (Printf.sprintf
             "Checker.add_property: proposition %S is not registered"
             prop_name))
    (Formula.props formula)

(* name resolution used by the monitors, publishing every sample on the
   trace bus when one is attached (one branch per sample otherwise) *)
let traced_binding checker name =
  let probe = Proposition.Table.binding checker.table name in
  fun () ->
    let value = probe () in
    if Trace.enabled checker.trace then
      Trace.emit checker.trace (Trace.Sample { prop = name; value });
    value

let add_property ?(engine = On_the_fly) ?max_states checker ~name formula =
  if List.exists (fun p -> String.equal p.prop_name name) checker.properties
  then invalid_arg (Printf.sprintf "Checker.add_property: duplicate %S" name);
  check_support checker formula;
  let binding = traced_binding checker in
  (* explicit synthesis goes through the per-domain automaton cache;
     build time is charged to this checker only when the automaton was
     actually derived here, so a cache hit costs (and reports) nothing *)
  let synthesized () =
    let automaton, fresh = Ar_automaton.synthesize_memo ?max_states formula in
    if fresh then begin
      checker.synthesis_seconds <-
        checker.synthesis_seconds +. Ar_automaton.build_seconds automaton;
      Registry.Timer.observe checker.meters.m_synthesize
        (Ar_automaton.build_seconds automaton)
    end;
    automaton
  in
  let monitor =
    match engine with
    | On_the_fly -> Monitor.of_formula ~name formula ~binding
    | Explicit -> Monitor.of_automaton ~name (synthesized ()) ~binding
    | Via_il ->
      let il = Il.of_automaton ~name (synthesized ()) in
      (* round-trip through the textual IL, as the SCTC flow does *)
      let il = Il.parse (Il.to_string il) in
      Monitor.of_il ~name il ~binding
  in
  checker.properties <-
    {
      prop_name = name;
      formula;
      monitor;
      violated_at = None;
      final_at = None;
      traced_verdict = Verdict.Pending;
      traced_any = false;
    }
    :: checker.properties

let add_property_text ?engine ?max_states ?(syntax = Fltl) checker ~name text =
  let prop_syntax =
    match syntax with Fltl -> `Fltl | Psl -> `Psl | Auto -> `Auto
  in
  let formula =
    Registry.Timer.time checker.meters.m_parse (fun () ->
        Prop.parse_exn ~syntax:prop_syntax text)
  in
  add_property ?engine ?max_states checker ~name formula

let step_monitors checker =
  let tracing = Trace.enabled checker.trace in
  let metered = checker.meters.metered in
  List.iter
    (fun property ->
      let before_final = Verdict.is_final (Monitor.verdict property.monitor) in
      let verdict = Monitor.step property.monitor in
      if (not before_final) && Verdict.is_final verdict
         && property.final_at = None
      then property.final_at <- Some (checker.time_source ());
      if
        (tracing || metered)
        && ((not property.traced_any)
           || not (Verdict.equal verdict property.traced_verdict))
      then begin
        property.traced_any <- true;
        property.traced_verdict <- verdict;
        if metered then Registry.Counter.incr checker.meters.m_transitions;
        if tracing then
          Trace.emit checker.trace
            (Trace.Verdict_change { property = property.prop_name; verdict })
      end;
      if
        (not before_final)
        && Verdict.equal verdict Verdict.False
        && property.violated_at = None
      then begin
        property.violated_at <- Some checker.step_count;
        List.iter
          (fun callback -> callback property.prop_name checker.step_count)
          checker.violation_callbacks
      end)
    (List.rev checker.properties)

(* one trigger; when metered, stamp the per-trigger latency histogram *)
let step checker =
  checker.step_count <- checker.step_count + 1;
  if checker.meters.metered then begin
    let started = Unix.gettimeofday () in
    step_monitors checker;
    Registry.Timer.observe checker.meters.m_step_latency
      (Unix.gettimeofday () -. started);
    Registry.Counter.incr checker.meters.m_triggers
  end
  else step_monitors checker

let steps checker = checker.step_count

let unknown_property checker caller name =
  invalid_arg
    (Printf.sprintf "Checker.%s(%s): unknown property %S (known: %s)" caller
       checker.c_name name
       (match List.rev_map (fun p -> p.prop_name) checker.properties with
       | [] -> "none"
       | names -> String.concat ", " names))

let verdict checker name =
  match
    List.find_opt
      (fun p -> String.equal p.prop_name name)
      checker.properties
  with
  | Some property -> Monitor.verdict property.monitor
  | None -> unknown_property checker "verdict" name

let verdicts checker =
  List.rev_map
    (fun p -> (p.prop_name, Monitor.verdict p.monitor))
    checker.properties

let overall checker =
  List.fold_left
    (fun acc p -> Verdict.combine acc (Monitor.verdict p.monitor))
    Verdict.True checker.properties

let finalize ?strong checker =
  List.rev_map
    (fun p -> (p.prop_name, Monitor.finalize ?strong p.monitor))
    checker.properties

let first_final_at checker name =
  match
    List.find_opt
      (fun p -> String.equal p.prop_name name)
      checker.properties
  with
  | Some property -> property.final_at
  | None -> unknown_property checker "first_final_at" name

let reset checker =
  checker.step_count <- 0;
  List.iter
    (fun p ->
      Monitor.reset p.monitor;
      p.violated_at <- None;
      p.final_at <- None;
      p.traced_verdict <- Verdict.Pending;
      p.traced_any <- false)
    checker.properties;
  List.iter
    (fun prop_name ->
      Proposition.reset (Proposition.Table.find_exn checker.table prop_name))
    (Proposition.Table.names checker.table)

let synthesis_seconds checker = checker.synthesis_seconds

let on_violation checker callback =
  checker.violation_callbacks <- callback :: checker.violation_callbacks
