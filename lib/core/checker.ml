module Registry = Obs.Registry

type engine = Engine.t = Otf | Explicit | Il | Hybrid | Auto
type syntax = Fltl | Psl | Auto

type property = {
  prop_name : string;
  formula : Formula.t;
  monitor : Monitor.t;
  mutable p_map : int array; (* monitor support slot -> plan sample slot *)
  mutable violated_at : int option;
  mutable final_at : int option; (* time units, via the time source *)
  mutable traced_verdict : Verdict.t; (* last verdict published on the bus *)
  mutable traced_any : bool;
}

(* The compiled trigger plan: everything [step] needs, derived once per
   [add_property]/[reset]/finality change instead of per trigger.

   - [slot_props] is the union of the supports of the still-pending
     properties, sorted by name: one shared probe per trigger feeds every
     monitor, the [Trace.Sample] stream, and the stateful propositions
     (which therefore advance exactly once per trigger, however many
     properties share them).
   - [samples] is the shared per-trigger sample vector the slots fill.
   - [active] lists the property indices [step] must visit, in insertion
     order: pending monitors, plus final ones whose verdict still has to
     be published on the trace bus / transition counter. Monitors whose
     verdict is final and published are skipped entirely. *)
type plan = {
  slot_names : string array;
  slot_props : Proposition.t array;
  samples : bool array;
  active : int array;
}

let empty_plan =
  { slot_names = [||]; slot_props = [||]; samples = [||]; active = [||] }

(* metric handles, resolved once at creation; all are shared no-ops on
   [Registry.null], so the hot path pays one boolean test *)
type meters = {
  metered : bool;
  m_triggers : Registry.Counter.t;
  m_transitions : Registry.Counter.t;
  m_step_latency : Registry.Timer.t; (* per-trigger checker latency *)
  m_synthesize : Registry.Timer.t;
  m_parse : Registry.Timer.t;
  m_prog_hits : Registry.Counter.t; (* progression transition cache *)
  m_prog_misses : Registry.Counter.t;
}

type t = {
  c_name : string;
  table : Proposition.Table.table;
  mutable properties : property array; (* insertion order *)
  mutable plan : plan;
  mutable plan_stale : bool;
  mutable step_count : int;
  mutable synthesis_seconds : float;
  mutable violation_callbacks : (string -> int -> unit) list;
  mutable trace : Trace.t;
  mutable time_source : unit -> int;
  meters : meters;
}

let make_meters metrics =
  {
    metered = Registry.enabled metrics;
    m_triggers =
      Registry.counter metrics "sctc_triggers_total"
        ~help:"checker trigger (step) count";
    m_transitions =
      Registry.counter metrics "sctc_verdict_transitions_total"
        ~help:"per-property verdict changes (incl. the first verdict)";
    m_step_latency = Registry.stage_timer metrics Registry.Check;
    m_synthesize = Registry.stage_timer metrics Registry.Synthesize;
    m_parse = Registry.stage_timer metrics Registry.Parse;
    m_prog_hits =
      Registry.counter metrics "sctc_progression_cache_hits_total"
        ~help:"on-the-fly transitions served by the progression cache";
    m_prog_misses =
      Registry.counter metrics "sctc_progression_cache_misses_total"
        ~help:"on-the-fly transitions that computed a fresh progression";
  }

let create ?(trace = Trace.null) ?(metrics = Registry.null) ~name () =
  let checker =
    {
      c_name = name;
      table = Proposition.Table.create ();
      properties = [||];
      plan = empty_plan;
      plan_stale = false;
      step_count = 0;
      synthesis_seconds = 0.0;
      violation_callbacks = [];
      trace;
      time_source = (fun () -> 0);
      meters = make_meters metrics;
    }
  in
  (* default time reference: the trigger count itself *)
  checker.time_source <- (fun () -> checker.step_count);
  checker

let trace checker = checker.trace

let set_trace checker trace =
  checker.trace <- trace;
  (* a newly attached bus may owe Verdict_change events for properties
     that settled while untraced; recompiling restores them to [active] *)
  checker.plan_stale <- true

let set_time_source checker source = checker.time_source <- source

let name checker = checker.c_name

let register_proposition checker prop =
  Proposition.Table.register checker.table prop

let register_sampler checker name sampler =
  register_proposition checker (Proposition.make name sampler)

let proposition_names checker = Proposition.Table.names checker.table

let property_names checker =
  Array.fold_right (fun p acc -> p.prop_name :: acc) checker.properties []

let check_support checker formula =
  List.iter
    (fun prop_name ->
      match Proposition.Table.find checker.table prop_name with
      | Some _ -> ()
      | None ->
        invalid_arg
          (Printf.sprintf
             "Checker.add_property: proposition %S is not registered"
             prop_name))
    (Formula.props formula)

(* ------------------------------------------------------------------ *)
(* Plan compilation                                                    *)

(* does this property still owe a verdict publication on the current
   trace bus / transition counter? *)
let needs_publication checker property verdict =
  (Trace.enabled checker.trace || checker.meters.metered)
  && ((not property.traced_any)
     || not (Verdict.equal verdict property.traced_verdict))

let compile_plan checker =
  let properties = checker.properties in
  let visit = ref [] in
  let support_set = Hashtbl.create 16 in
  for i = Array.length properties - 1 downto 0 do
    let property = properties.(i) in
    let verdict = Monitor.verdict property.monitor in
    if Verdict.is_final verdict then begin
      (* no sampling, no stepping; visited once more only to publish *)
      if needs_publication checker property verdict then visit := i :: !visit
    end
    else begin
      visit := i :: !visit;
      Array.iter
        (fun name -> Hashtbl.replace support_set name ())
        (Monitor.support property.monitor)
    end
  done;
  let slot_names =
    Hashtbl.fold (fun name () acc -> name :: acc) support_set []
    |> List.sort String.compare |> Array.of_list
  in
  let slot_of = Hashtbl.create (Array.length slot_names) in
  Array.iteri (fun slot name -> Hashtbl.replace slot_of name slot) slot_names;
  List.iter
    (fun i ->
      let property = properties.(i) in
      if not (Verdict.is_final (Monitor.verdict property.monitor)) then
        property.p_map <-
          Array.map
            (fun name -> Hashtbl.find slot_of name)
            (Monitor.support property.monitor))
    !visit;
  checker.plan <-
    {
      slot_names;
      slot_props =
        Array.map
          (fun name -> Proposition.Table.find_exn checker.table name)
          slot_names;
      samples = Array.make (Array.length slot_names) false;
      active = Array.of_list !visit;
    };
  checker.plan_stale <- false

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

(* [Auto]'s failed explicit attempts, memoized per domain: campaign
   sessions re-register the same properties over and over, and
   [Ar_automaton.synthesize_memo] never caches failures, so without this
   every registration of a too-large formula would re-pay the aborted
   synthesis up to the state cap. Keyed by (formula hash, cap). *)
let auto_failures_key : ((int * int, unit) Hashtbl.t Domain.DLS.key) =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let add_property ?(engine = Engine.Otf) ?max_states checker ~name formula =
  if
    Array.exists
      (fun p -> String.equal p.prop_name name)
      checker.properties
  then invalid_arg (Printf.sprintf "Checker.add_property: duplicate %S" name);
  check_support checker formula;
  let binding = Proposition.Table.binding checker.table in
  (* explicit synthesis goes through the per-domain automaton cache;
     build time is charged to this checker only when the automaton was
     actually derived here, so a cache hit costs (and reports) nothing *)
  let synthesized ?max_states () =
    let automaton, fresh = Ar_automaton.synthesize_memo ?max_states formula in
    if fresh then begin
      checker.synthesis_seconds <-
        checker.synthesis_seconds +. Ar_automaton.build_seconds automaton;
      Registry.Timer.observe checker.meters.m_synthesize
        (Ar_automaton.build_seconds automaton)
    end;
    automaton
  in
  let hybrid () =
    Monitor.of_formula_hybrid ~name ~promote_after:Engine.promote_after
      ~max_states:(Option.value max_states ~default:Engine.auto_max_states)
      formula ~binding
  in
  let monitor =
    match (engine : Engine.t) with
    | Otf -> Monitor.of_formula ~name formula ~binding
    | Explicit -> Monitor.of_automaton ~name (synthesized ?max_states ()) ~binding
    | Il ->
      let il = Il.of_automaton ~name (synthesized ?max_states ()) in
      (* round-trip through the textual IL, as the SCTC flow does *)
      let il = Il.parse (Il.to_string il) in
      Monitor.of_il ~name il ~binding
    | Hybrid -> hybrid ()
    | Auto ->
      (* explicit while synthesis stays under the state budget — the
         fastest steady state — falling back to hybrid when it cannot *)
      let cap = Option.value max_states ~default:Engine.auto_max_states in
      let failures = Domain.DLS.get auto_failures_key in
      let key = (Formula.hash formula, cap) in
      if List.length (Formula.props formula) > 16 || Hashtbl.mem failures key
      then hybrid ()
      else (
        match synthesized ~max_states:cap () with
        | automaton -> Monitor.of_automaton ~name automaton ~binding
        | exception Ar_automaton.Too_large _ ->
          Hashtbl.replace failures key ();
          hybrid ())
  in
  checker.properties <-
    Array.append checker.properties
      [|
        {
          prop_name = name;
          formula;
          monitor;
          p_map = [||];
          violated_at = None;
          final_at = None;
          traced_verdict = Verdict.Pending;
          traced_any = false;
        };
      |];
  checker.plan_stale <- true

let add_property_text ?engine ?max_states ?(syntax = Fltl) checker ~name text =
  let prop_syntax =
    match syntax with Fltl -> `Fltl | Psl -> `Psl | Auto -> `Auto
  in
  let formula =
    Registry.Timer.time checker.meters.m_parse (fun () ->
        Prop.parse_exn ~syntax:prop_syntax text)
  in
  add_property ?engine ?max_states checker ~name formula

(* ------------------------------------------------------------------ *)
(* The trigger hot path                                                *)

let step_monitors checker =
  if checker.plan_stale then compile_plan checker;
  let plan = checker.plan in
  let tracing = Trace.enabled checker.trace in
  let metered = checker.meters.metered in
  (* shared sample pass: every proposition in the pending properties'
     support is probed exactly once per trigger, in sorted name order *)
  let slots = Array.length plan.slot_props in
  if tracing then
    for i = 0 to slots - 1 do
      let value = Proposition.is_true plan.slot_props.(i) in
      plan.samples.(i) <- value;
      Trace.emit checker.trace
        (Trace.Sample { prop = plan.slot_names.(i); value })
    done
  else
    for i = 0 to slots - 1 do
      plan.samples.(i) <- Proposition.is_true plan.slot_props.(i)
    done;
  let samples = plan.samples in
  let active = plan.active in
  for k = 0 to Array.length active - 1 do
    let property = checker.properties.(active.(k)) in
    let before_final = Verdict.is_final (Monitor.verdict property.monitor) in
    let verdict =
      if before_final then Monitor.verdict property.monitor
      else Monitor.step_indexed property.monitor ~samples ~map:property.p_map
    in
    if (not before_final) && Verdict.is_final verdict then begin
      if property.final_at = None then
        property.final_at <- Some (checker.time_source ());
      (* drop the settled monitor from the active set at the next trigger *)
      checker.plan_stale <- true
    end;
    if
      (tracing || metered)
      && ((not property.traced_any)
         || not (Verdict.equal verdict property.traced_verdict))
    then begin
      property.traced_any <- true;
      property.traced_verdict <- verdict;
      if metered then Registry.Counter.incr checker.meters.m_transitions;
      if tracing then
        Trace.emit checker.trace
          (Trace.Verdict_change { property = property.prop_name; verdict });
      if before_final then
        (* a final verdict published late (e.g. a bus attached after the
           monitor settled): nothing left to publish, drop it next time *)
        checker.plan_stale <- true
    end;
    if
      (not before_final)
      && Verdict.equal verdict Verdict.False
      && property.violated_at = None
    then begin
      property.violated_at <- Some checker.step_count;
      List.iter
        (fun callback -> callback property.prop_name checker.step_count)
        checker.violation_callbacks
    end
  done

(* one trigger; when metered, stamp the per-trigger latency histogram
   and the progression-cache counters (per-domain, lock-free deltas) *)
let step checker =
  checker.step_count <- checker.step_count + 1;
  if checker.meters.metered then begin
    let hits0, misses0 = Transition_cache.local_stats () in
    let started = Unix.gettimeofday () in
    step_monitors checker;
    Registry.Timer.observe checker.meters.m_step_latency
      (Unix.gettimeofday () -. started);
    let hits1, misses1 = Transition_cache.local_stats () in
    Registry.Counter.add checker.meters.m_prog_hits (hits1 - hits0);
    Registry.Counter.add checker.meters.m_prog_misses (misses1 - misses0);
    Registry.Counter.incr checker.meters.m_triggers
  end
  else step_monitors checker

let trigger checker =
  if Trace.enabled checker.trace then Trace.emit checker.trace Trace.Trigger;
  step checker

let steps checker = checker.step_count

let active_properties checker =
  if checker.plan_stale then compile_plan checker;
  Array.length checker.plan.active

let sampled_propositions checker =
  if checker.plan_stale then compile_plan checker;
  Array.to_list checker.plan.slot_names

(* ------------------------------------------------------------------ *)
(* Verdict observers                                                   *)

let unknown_property checker caller name =
  invalid_arg
    (Printf.sprintf "Checker.%s(%s): unknown property %S (known: %s)" caller
       checker.c_name name
       (match property_names checker with
       | [] -> "none"
       | names -> String.concat ", " names))

let find_property checker name =
  Array.find_opt
    (fun p -> String.equal p.prop_name name)
    checker.properties

let verdict checker name =
  match find_property checker name with
  | Some property -> Monitor.verdict property.monitor
  | None -> unknown_property checker "verdict" name

let verdict_opt checker name =
  Option.map (fun p -> Monitor.verdict p.monitor) (find_property checker name)

let verdicts checker =
  Array.fold_right
    (fun p acc -> (p.prop_name, Monitor.verdict p.monitor) :: acc)
    checker.properties []

let overall checker =
  Array.fold_left
    (fun acc p -> Verdict.combine acc (Monitor.verdict p.monitor))
    Verdict.True checker.properties

let finalize ?strong checker =
  Array.fold_right
    (fun p acc -> (p.prop_name, Monitor.finalize ?strong p.monitor) :: acc)
    checker.properties []

let first_final_at checker name =
  match find_property checker name with
  | Some property -> property.final_at
  | None -> unknown_property checker "first_final_at" name

let first_final_at_opt checker name =
  match find_property checker name with
  | Some property -> property.final_at
  | None -> None

let reset checker =
  checker.step_count <- 0;
  Array.iter
    (fun p ->
      Monitor.reset p.monitor;
      p.violated_at <- None;
      p.final_at <- None;
      p.traced_verdict <- Verdict.Pending;
      p.traced_any <- false)
    checker.properties;
  List.iter
    (fun prop_name ->
      Proposition.reset (Proposition.Table.find_exn checker.table prop_name))
    (Proposition.Table.names checker.table);
  checker.plan_stale <- true

let synthesis_seconds checker = checker.synthesis_seconds

let on_violation checker callback =
  checker.violation_callbacks <- callback :: checker.violation_callbacks
