type t = Otf | Explicit | Il | Hybrid | Auto

let all = [ Otf; Explicit; Il; Hybrid; Auto ]

let to_string = function
  | Otf -> "otf"
  | Explicit -> "explicit"
  | Il -> "il"
  | Hybrid -> "hybrid"
  | Auto -> "auto"

let of_string text =
  match String.lowercase_ascii (String.trim text) with
  | "otf" | "on-the-fly" | "onthefly" -> Some Otf
  | "explicit" -> Some Explicit
  | "il" -> Some Il
  | "hybrid" -> Some Hybrid
  | "auto" -> Some Auto
  | _ -> None

let of_string_exn text =
  match of_string text with
  | Some engine -> engine
  | None ->
    invalid_arg
      (Printf.sprintf
         "Sctc.Engine.of_string_exn: unknown engine %S (expected %s)" text
         (String.concat ", " (List.map to_string all)))

let pp fmt engine = Format.pp_print_string fmt (to_string engine)

let describe = function
  | Otf -> "on-the-fly progression with the lazy transition cache"
  | Explicit -> "pre-synthesized explicit AR-automaton"
  | Il -> "AR-automaton via the IL text form, compiled guard tables"
  | Hybrid -> "on-the-fly start, hot residuals promoted to compiled tables"
  | Auto -> "explicit when synthesis is cheap, hybrid otherwise (the default)"

let default = Auto
let auto_max_states = 10_000
let promote_after = 32
