type kind =
  | Trigger
  | Sample of { prop : string; value : bool }
  | Verdict_change of { property : string; verdict : Verdict.t }
  | Handshake_armed of { source : string }
  | Test_case_begin of { index : int; op : string }
  | Test_case_end of { index : int; result : string option }
  | Watchdog_fired of { index : int; op : string }
  | Software_crashed of { reason : string }

type event = { seq : int; time_unit : int; kind : kind }

type sink = { on_event : event -> unit; on_close : unit -> unit }

type t = {
  active : bool;
  mutable sinks : sink list;  (* reversed attachment order *)
  mutable seq : int;
  mutable time_source : unit -> int;
  mutable triggers : int;
  mutable samples : int;
  started_at : float;
}

let zero () = 0

let null =
  {
    active = false;
    sinks = [];
    seq = 0;
    time_source = zero;
    triggers = 0;
    samples = 0;
    started_at = 0.0;
  }

let create () =
  {
    active = true;
    sinks = [];
    seq = 0;
    time_source = zero;
    triggers = 0;
    samples = 0;
    started_at = Unix.gettimeofday ();
  }

let enabled bus = bus.active

let attach bus sink =
  if not bus.active then invalid_arg "Trace.attach: the null bus has no sinks";
  bus.sinks <- sink :: bus.sinks

let set_time_source bus source = bus.time_source <- source

let emit bus kind =
  if bus.active then begin
    (match kind with
    | Trigger -> bus.triggers <- bus.triggers + 1
    | Sample _ -> bus.samples <- bus.samples + 1
    | _ -> ());
    let event = { seq = bus.seq; time_unit = bus.time_source (); kind } in
    bus.seq <- bus.seq + 1;
    List.iter (fun sink -> sink.on_event event) bus.sinks
  end

let close bus = List.iter (fun sink -> sink.on_close ()) bus.sinks

let events bus = bus.seq
let triggers bus = bus.triggers
let samples bus = bus.samples

let triggers_per_sec bus =
  if not bus.active then 0.0
  else
    let elapsed = Unix.gettimeofday () -. bus.started_at in
    if elapsed <= 0.0 then 0.0 else float_of_int bus.triggers /. elapsed

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)

module Json = struct
  let escape s =
    let buffer = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buffer "\\\""
        | '\\' -> Buffer.add_string buffer "\\\\"
        | '\n' -> Buffer.add_string buffer "\\n"
        | '\r' -> Buffer.add_string buffer "\\r"
        | '\t' -> Buffer.add_string buffer "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buffer c)
      s;
    Buffer.contents buffer

  let string s = "\"" ^ escape s ^ "\""

  let obj members =
    "{"
    ^ String.concat ","
        (List.map (fun (key, value) -> string key ^ ":" ^ value) members)
    ^ "}"

  let int = string_of_int
  let bool b = if b then "true" else "false"

  let float v =
    (* JSON numbers must not be "nan"/"inf" *)
    if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

  let null = "null"
  let option render = function None -> null | Some v -> render v
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let kind_label = function
  | Trigger -> "trigger"
  | Sample _ -> "sample"
  | Verdict_change _ -> "verdict_change"
  | Handshake_armed _ -> "handshake_armed"
  | Test_case_begin _ -> "test_case_begin"
  | Test_case_end _ -> "test_case_end"
  | Watchdog_fired _ -> "watchdog_fired"
  | Software_crashed _ -> "software_crashed"

let pp_event fmt (event : event) =
  Format.fprintf fmt "[%6d @%-8d] %s" event.seq event.time_unit
    (kind_label event.kind);
  match event.kind with
  | Trigger -> ()
  | Sample { prop; value } -> Format.fprintf fmt " %s=%b" prop value
  | Verdict_change { property; verdict } ->
    Format.fprintf fmt " %s -> %a" property Verdict.pp verdict
  | Handshake_armed { source } -> Format.fprintf fmt " source=%s" source
  | Test_case_begin { index; op } -> Format.fprintf fmt " #%d op=%s" index op
  | Test_case_end { index; result } ->
    Format.fprintf fmt " #%d result=%s" index
      (match result with None -> "<timeout>" | Some r -> r)
  | Watchdog_fired { index; op } -> Format.fprintf fmt " #%d op=%s" index op
  | Software_crashed { reason } -> Format.fprintf fmt " reason=%s" reason

(* The streaming campaign engine renders every event of every job through
   this path, so it appends directly into the caller's buffer: no member
   list, no intermediate strings, no [Json.obj] concatenation. The bytes
   are exactly those of [Json.obj] over the same members — [event_to_json]
   is defined in terms of this function, and the goldens pin the format. *)
let event_to_json_into buffer (event : event) =
  let str key value =
    Buffer.add_string buffer ",\"";
    Buffer.add_string buffer key;
    Buffer.add_string buffer "\":\"";
    Buffer.add_string buffer (Json.escape value);
    Buffer.add_char buffer '"'
  and num key value =
    Buffer.add_string buffer ",\"";
    Buffer.add_string buffer key;
    Buffer.add_string buffer "\":";
    Buffer.add_string buffer (string_of_int value)
  in
  Buffer.add_string buffer "{\"seq\":";
  Buffer.add_string buffer (string_of_int event.seq);
  Buffer.add_string buffer ",\"tu\":";
  Buffer.add_string buffer (string_of_int event.time_unit);
  Buffer.add_string buffer ",\"event\":\"";
  Buffer.add_string buffer (kind_label event.kind);
  Buffer.add_char buffer '"';
  (match event.kind with
  | Trigger -> ()
  | Sample { prop; value } ->
    str "prop" prop;
    Buffer.add_string buffer
      (if value then ",\"value\":true" else ",\"value\":false")
  | Verdict_change { property; verdict } ->
    str "property" property;
    str "verdict" (Verdict.to_string verdict)
  | Handshake_armed { source } -> str "source" source
  | Test_case_begin { index; op } ->
    num "index" index;
    str "op" op
  | Test_case_end { index; result } -> (
    num "index" index;
    match result with
    | Some result -> str "result" result
    | None -> Buffer.add_string buffer ",\"result\":null")
  | Watchdog_fired { index; op } ->
    num "index" index;
    str "op" op
  | Software_crashed { reason } -> str "reason" reason);
  Buffer.add_char buffer '}'

let event_to_json (event : event) =
  let buffer = Buffer.create 64 in
  event_to_json_into buffer event;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Parsing (flat objects only — exactly what event_to_json produces)   *)

type json_value = Jstring of string | Jint of int | Jbool of bool | Jnull

let parse_members line =
  let n = String.length line in
  let pos = ref 0 in
  let error msg = failwith msg in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then
      error (Printf.sprintf "expected '%c' at %d" c !pos);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then error "dangling escape";
          (match line.[!pos] with
          | '"' -> Buffer.add_char buffer '"'
          | '\\' -> Buffer.add_char buffer '\\'
          | '/' -> Buffer.add_char buffer '/'
          | 'n' -> Buffer.add_char buffer '\n'
          | 'r' -> Buffer.add_char buffer '\r'
          | 't' -> Buffer.add_char buffer '\t'
          | 'u' ->
            if !pos + 4 >= n then error "short \\u escape";
            let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
            if code < 256 then Buffer.add_char buffer (Char.chr code)
            else Buffer.add_char buffer '?';
            pos := !pos + 4
          | c -> error (Printf.sprintf "unknown escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buffer c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buffer
  in
  let parse_value () =
    skip_ws ();
    if !pos >= n then error "missing value"
    else
      match line.[!pos] with
      | '"' -> Jstring (parse_string ())
      | 't' when !pos + 4 <= n && String.sub line !pos 4 = "true" ->
        pos := !pos + 4;
        Jbool true
      | 'f' when !pos + 5 <= n && String.sub line !pos 5 = "false" ->
        pos := !pos + 5;
        Jbool false
      | 'n' when !pos + 4 <= n && String.sub line !pos 4 = "null" ->
        pos := !pos + 4;
        Jnull
      | '-' | '0' .. '9' ->
        let start = !pos in
        if line.[!pos] = '-' then incr pos;
        while
          !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false)
        do incr pos done;
        Jint (int_of_string (String.sub line start (!pos - start)))
      | c -> error (Printf.sprintf "unexpected '%c'" c)
  in
  expect '{';
  skip_ws ();
  let members = ref [] in
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let rec member () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      let value = parse_value () in
      members := (key, value) :: !members;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        member ()
      end
      else expect '}'
    in
    member ()
  end;
  List.rev !members

let event_of_json line =
  try
    let members = parse_members line in
    let find key =
      match List.assoc_opt key members with
      | Some v -> v
      | None -> failwith (Printf.sprintf "missing %S" key)
    in
    let str key =
      match find key with
      | Jstring s -> s
      | _ -> failwith (Printf.sprintf "%S: expected string" key)
    in
    let num key =
      match find key with
      | Jint v -> v
      | _ -> failwith (Printf.sprintf "%S: expected int" key)
    in
    let boolean key =
      match find key with
      | Jbool b -> b
      | _ -> failwith (Printf.sprintf "%S: expected bool" key)
    in
    let str_opt key =
      match find key with
      | Jnull -> None
      | Jstring s -> Some s
      | _ -> failwith (Printf.sprintf "%S: expected string or null" key)
    in
    let verdict key =
      match str key with
      | "true" -> Verdict.True
      | "false" -> Verdict.False
      | "pending" -> Verdict.Pending
      | other -> failwith (Printf.sprintf "unknown verdict %S" other)
    in
    let kind =
      match str "event" with
      | "trigger" -> Trigger
      | "sample" -> Sample { prop = str "prop"; value = boolean "value" }
      | "verdict_change" ->
        Verdict_change { property = str "property"; verdict = verdict "verdict" }
      | "handshake_armed" -> Handshake_armed { source = str "source" }
      | "test_case_begin" ->
        Test_case_begin { index = num "index"; op = str "op" }
      | "test_case_end" ->
        Test_case_end { index = num "index"; result = str_opt "result" }
      | "watchdog_fired" -> Watchdog_fired { index = num "index"; op = str "op" }
      | "software_crashed" -> Software_crashed { reason = str "reason" }
      | other -> failwith (Printf.sprintf "unknown event %S" other)
    in
    Ok { seq = num "seq"; time_unit = num "tu"; kind }
  with Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let log_sink fmt =
  {
    on_event = (fun event -> Format.fprintf fmt "%a@." pp_event event);
    on_close = (fun () -> Format.pp_print_flush fmt ());
  }

let jsonl_sink channel =
  {
    on_event =
      (fun event ->
        output_string channel (event_to_json event);
        output_char channel '\n');
    on_close = (fun () -> flush channel);
  }

let jsonl_file path =
  let channel = open_out path in
  let inner = jsonl_sink channel in
  {
    inner with
    on_close =
      (fun () ->
        inner.on_close ();
        close_out channel);
  }

let memory_sink () =
  let buffered = ref [] in
  let sink =
    { on_event = (fun event -> buffered := event :: !buffered);
      on_close = (fun () -> ()) }
  in
  (sink, fun () -> List.rev !buffered)
