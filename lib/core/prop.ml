type syntax = [ `Fltl | `Psl | `Auto ]

type error = { line : int; col : int; message : string; input : string }

exception Parse_error of error

let error_to_string error =
  Printf.sprintf "%d:%d: %s in %S" error.line error.col error.message
    error.input

let pp_error fmt error = Format.pp_print_string fmt (error_to_string error)

(* PSL-only keywords decide [`Auto]; [until]/[release] are valid in both
   grammars and keep their FLTL reading (see the interface). *)
let psl_only = function
  | Fltl_lexer.KW_ALWAYS | Fltl_lexer.KW_NEVER | Fltl_lexer.KW_EVENTUALLY
  | Fltl_lexer.KW_NEXT ->
    true
  | _ -> false

let detect_syntax text =
  match Fltl_lexer.tokenize text with
  | tokens ->
    if List.exists (fun (token, _) -> psl_only token) tokens then `Psl
    else `Fltl
  | exception Fltl_lexer.Lex_error _ -> `Fltl

let parse ?(syntax = `Auto) text =
  let chosen =
    match syntax with `Auto -> detect_syntax text | (`Fltl | `Psl) as s -> s
  in
  let structured message (pos : Fltl_lexer.position) =
    Error { line = pos.Fltl_lexer.line; col = pos.Fltl_lexer.column; message;
            input = text }
  in
  match
    (* the one sanctioned use of the deprecated per-syntax entry points:
       this module IS their replacement *)
    match chosen with
    | `Fltl -> (Fltl_parser.parse [@alert "-deprecated"]) text
    | `Psl -> (Psl.parse [@alert "-deprecated"]) text
  with
  | formula -> Ok formula
  | exception Fltl_parser.Parse_error (message, pos) -> structured message pos
  | exception Psl.Parse_error (message, pos) -> structured message pos
  | exception Fltl_lexer.Lex_error (message, pos) -> structured message pos

let parse_exn ?syntax text =
  match parse ?syntax text with
  | Ok formula -> formula
  | Error error -> raise (Parse_error error)

let () =
  Printexc.register_printer (function
    | Parse_error error ->
      Some (Printf.sprintf "Sctc.Prop.Parse_error (%s)" (error_to_string error))
    | _ -> None)
