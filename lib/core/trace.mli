(** Structured trace/event bus for verification sessions.

    Everything the checker stack observes — triggers, proposition samples,
    verdict changes, the ESW-monitor handshake, test-case boundaries,
    watchdogs and software crashes — is published as a typed event on a
    bus. Sinks subscribe to the bus: a human-readable log, a JSONL file, or
    an in-memory buffer for tests. The {!null} bus is a shared disabled
    instance; emitting into it costs one branch, so hot paths stay fast
    when tracing is off (guard allocations with {!enabled}).

    The bus also keeps cheap aggregate counters (triggers, samples,
    triggers/second) that are maintained even when no sink is attached. *)

(** What happened. Time-unit stamping is added by the bus. *)
type kind =
  | Trigger  (** the checker was triggered (one {!Checker.step}) *)
  | Sample of { prop : string; value : bool }
      (** a proposition was sampled during a monitor step *)
  | Verdict_change of { property : string; verdict : Verdict.t }
      (** a property's verdict was first reported, or changed *)
  | Handshake_armed of { source : string }
      (** the trigger process armed the monitors (for the ESW monitor:
          the initialization-flag handshake completed) *)
  | Test_case_begin of { index : int; op : string }
  | Test_case_end of { index : int; result : string option }
      (** [result = None]: the operation never answered (watchdog) *)
  | Watchdog_fired of { index : int; op : string }
  | Software_crashed of { reason : string }

type event = {
  seq : int;  (** emission order on this bus, starting at 0 *)
  time_unit : int;  (** backend time (cycles / statements) at emission *)
  kind : kind;
}

(** A subscriber. [close] is called once by {!close}. *)
type sink = { on_event : event -> unit; on_close : unit -> unit }

type t

val null : t
(** The shared disabled bus: {!emit} is a no-op, {!enabled} is [false],
    counters stay zero. {!attach} on it raises [Invalid_argument]. *)

val create : unit -> t

val enabled : t -> bool
(** [false] exactly for {!null}. Hot paths should guard event
    construction: [if Trace.enabled t then Trace.emit t (...)]. *)

val attach : t -> sink -> unit
(** @raise Invalid_argument on the {!null} bus. *)

val set_time_source : t -> (unit -> int) -> unit
(** Install the clock used to stamp [time_unit] (a verification session
    installs its backend's cycle/statement counter; default constant 0). *)

val emit : t -> kind -> unit

val close : t -> unit
(** Close every attached sink (flushes the JSONL file sink). *)

(** {2 Aggregate counters} *)

val events : t -> int
val triggers : t -> int
val samples : t -> int

val triggers_per_sec : t -> float
(** Triggers divided by wall-clock seconds since bus creation. *)

(** {2 Sinks} *)

val log_sink : Format.formatter -> sink
(** Human-readable, one line per event. *)

val jsonl_sink : out_channel -> sink
(** One JSON object per line; the channel is not closed by [on_close]
    (only flushed). *)

val jsonl_file : string -> sink
(** Like {!jsonl_sink} into a fresh file; [on_close] closes the file. *)

val memory_sink : unit -> sink * (unit -> event list)
(** Buffering sink for tests; the closure returns events oldest first. *)

(** {2 Rendering and parsing} *)

val kind_label : kind -> string
(** The JSON ["event"] tag, e.g. ["verdict_change"]. *)

val pp_event : Format.formatter -> event -> unit

val event_to_json : event -> string
(** One-line JSON object (no trailing newline). *)

val event_to_json_into : Buffer.t -> event -> unit
(** Append exactly the bytes of {!event_to_json} to [buffer] without
    intermediate allocations — the hot path of streaming campaign
    emission, where every event of every job is rendered once. *)

val event_of_json : string -> (event, string) result
(** Inverse of {!event_to_json} (accepts any key order). *)

(** {2 JSON helpers} (shared with {!Report}) *)

module Json : sig
  val escape : string -> string
  (** Escape for inclusion inside a JSON string literal (no quotes). *)

  val string : string -> string
  (** Quoted JSON string. *)

  val obj : (string * string) list -> string
  (** Object from pre-rendered member values. *)

  val int : int -> string
  val bool : bool -> string
  val float : float -> string
  val null : string
  val option : ('a -> string) -> 'a option -> string
end
