(** The SystemC Temporal Checker (SCTC) core.

    A checker owns a proposition table (the probes into the system under
    verification), a set of temporal properties, and one executable monitor
    per property. Each call to {!step} is one trigger of the checker — the
    paper triggers it on the microprocessor clock (approach 1) or on the
    program-counter event of the derived software model (approach 2).

    The trigger hot path runs over a {e compiled trigger plan}, rebuilt
    lazily whenever the property set, the trace bus or a monitor's
    finality changes: every proposition in the pending properties'
    support is probed exactly once per trigger into a shared sample
    vector (in sorted name order, each probe published as one
    [Trace.Sample] event), monitors read that vector through precomputed
    integer slot maps ({!Monitor.step_indexed}), and monitors whose
    verdict is final — and published — are skipped entirely. On-the-fly
    monitors additionally memoize progression through
    [Transition_cache], so steady-state triggers cost one table lookup
    per property.

    Properties can be given as {!Formula.t} values or as PSL / FLTL text;
    the synthesis engine ({!Engine.t}) is selectable per property:
    on-the-fly progression, an explicit pre-synthesized AR-automaton, the
    automaton passed through the IL representation and compiled to
    mask-indexed guard tables (property → AR-automaton → IL → monitor,
    the full paper pipeline), a hybrid that promotes hot residuals from
    progression to compiled tables, or [Auto], which picks explicit when
    synthesis is cheap and hybrid otherwise. *)

type t

type engine = Engine.t = Otf | Explicit | Il | Hybrid | Auto
(** Re-export of {!Engine.t} — the one engine enum shared by every front
    end; see {!Engine} for the semantics of each constructor and the
    string/CLI conversions. *)

type syntax = Fltl | Psl | Auto

val create :
  ?trace:Trace.t -> ?metrics:Obs.Registry.t -> name:string -> unit -> t
(** [trace] defaults to {!Trace.null} (no events published); [metrics]
    defaults to {!Obs.Registry.null} (no-op handles, one boolean test on
    the hot path). With a live registry the checker records
    [sctc_triggers_total], [sctc_verdict_transitions_total],
    [sctc_progression_cache_hits_total] /
    [sctc_progression_cache_misses_total] (the on-the-fly transition
    cache), per-trigger latency under the [check] stage timer, and
    charges property parsing and explicit synthesis to the [parse] /
    [synthesize] stage timers. *)

val name : t -> string

(** {2 Tracing} *)

val trace : t -> Trace.t
val set_trace : t -> Trace.t -> unit

val set_time_source : t -> (unit -> int) -> unit
(** Install the clock used to stamp {!first_final_at} (and, for
    convenience, available to sessions for their trace bus). Defaults to
    the checker's own trigger count. *)

(** {2 Propositions} *)

val register_proposition : t -> Proposition.t -> unit
(** @raise Invalid_argument on duplicate proposition names. *)

val register_sampler : t -> string -> (unit -> bool) -> unit
(** Convenience: register a stateless proposition from a sampler. *)

val proposition_names : t -> string list

(** {2 Properties} *)

val add_property :
  ?engine:engine -> ?max_states:int -> t -> name:string -> Formula.t -> unit
(** [engine] defaults to {!Engine.Otf} at this layer — registration stays
    free of synthesis cost unless asked otherwise; the session/harness/CLI
    front ends default to {!Engine.Auto} instead. Under [Auto],
    [max_states] (default {!Engine.auto_max_states}) caps the explicit
    attempt and a blowout falls back to {!Engine.Hybrid} rather than
    raising; failed attempts are memoized per domain so campaigns don't
    re-pay them.
    @raise Invalid_argument if a proposition in the formula's support is not
    registered, if the property name is already used, or if [Explicit]/[Il]
    synthesis exceeds [max_states] (see {!Ar_automaton.Too_large}). *)

val add_property_text :
  ?engine:engine ->
  ?max_states:int ->
  ?syntax:syntax ->
  t ->
  name:string ->
  string ->
  unit
(** Parse via {!Prop.parse_exn} and add ([syntax] defaults to [Fltl] for
    compatibility; [Auto] applies {!Prop.detect_syntax}).
    @raise Prop.Parse_error on malformed property text. *)

val property_names : t -> string list

(** {2 Monitoring} *)

val step : t -> unit
(** One trigger: advance every monitor by one observation step. *)

val trigger : t -> unit
(** One trigger, publishing the [Trace.Trigger] event first — what the
    simulation trigger loops ({!Trigger}, the session backends) call. *)

val steps : t -> int

val active_properties : t -> int
(** Properties the next trigger will visit: pending monitors plus final
    ones whose verdict is still unpublished on the trace bus. Settled,
    published properties are skipped by the trigger plan. *)

val sampled_propositions : t -> string list
(** The shared sample vector of the next trigger, in probe (sorted name)
    order: the union of the pending properties' supports. Propositions
    supporting only settled properties are no longer probed. *)

val verdict : t -> string -> Verdict.t
(** Current verdict of a property.
    @raise Invalid_argument for unknown names (the message lists the
    registered property names). *)

val verdict_opt : t -> string -> Verdict.t option
(** Non-raising {!verdict}; [None] for unknown names. *)

val verdicts : t -> (string * Verdict.t) list

val overall : t -> Verdict.t
(** {!Verdict.combine} over all properties. *)

val finalize : ?strong:bool -> t -> (string * Verdict.t) list
(** End-of-trace verdicts (does not mutate the checker). *)

val first_final_at : t -> string -> int option
(** Time unit (via the installed time source) at which a property first
    reached a final verdict, if it has.
    @raise Invalid_argument for unknown names (the message lists the
    registered property names). *)

val first_final_at_opt : t -> string -> int option
(** Non-raising {!first_final_at}; [None] for unknown names and for
    properties that never reached a final verdict. *)

val reset : t -> unit
(** Reset all monitors and stateful propositions to their initial states. *)

val synthesis_seconds : t -> float
(** Total explicit AR-automaton generation time accumulated by
    [add_property] — the paper's "AR-automaton generation time" component
    of verification time. *)

val on_violation : t -> (string -> int -> unit) -> unit
(** Install a callback invoked as [f property_name step] the first time a
    property's verdict turns [False]. *)
