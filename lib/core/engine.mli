(** The monitor-synthesis engine selection — one enum for the whole stack.

    Historically every front end declared its own private copy of this
    enum ([bin/tcheck.ml] had an ad-hoc cmdliner [Arg.enum],
    [Verif.Session], [Eee.Harness] and [Eee.Driver] each re-exported
    [Checker.engine] defaults); this module is the single definition.
    {!Checker.engine} is an alias of this type, [Tcheck_cli.engine_conv]
    is the cmdliner converter over {!of_string}/{!to_string}, and every
    config record ([Verif.Session.config], [Eee.Harness.plan],
    [Eee.Driver.config]) carries a value of this type.

    The engines:

    - {!Otf} — on-the-fly formula progression, memoized through
      [Transition_cache]. No synthesis cost at registration; the
      reachable AR-automaton fragment is determinized lazily.
    - {!Explicit} — the full AR-automaton synthesized up front
      ([Ar_automaton.synthesize]); fastest steady-state stepping (one
      dense-array lookup per trigger) but synthesis can blow up on large
      bounds ([Ar_automaton.Too_large]).
    - {!Il} — the paper's full pipeline: automaton serialized to the IL
      text form, re-parsed, and compiled to mask-indexed guard tables
      ([Il.Table]). Steady-state cost matches {!Explicit}.
    - {!Hybrid} — starts on-the-fly and promotes a monitor's hot
      residual obligation to an explicit compiled table once it has been
      stepped {!promote_after} times ([Monitor.of_formula_hybrid]);
      falls back gracefully (stays on-the-fly) when synthesis of the
      residual would exceed the state budget.
    - {!Auto} — the default: {!Explicit} when synthesis stays under
      {!auto_max_states} states, {!Hybrid} otherwise. Dominates both
      fixed choices: explicit speed where synthesis is cheap, bounded
      registration cost where it is not. Verdicts are identical across
      all engines, per step. *)

type t = Otf | Explicit | Il | Hybrid | Auto

val all : t list
(** In {!to_string} order: [otf], [explicit], [il], [hybrid], [auto]. *)

val to_string : t -> string

val of_string : string -> t option
(** Case-insensitive; accepts ["on-the-fly"] as an alias of ["otf"]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on unknown names (the message lists the
    known ones). *)

val pp : Format.formatter -> t -> unit

val describe : t -> string
(** One-line description, for CLI docs and bench tables. *)

val default : t
(** {!Auto}. *)

val auto_max_states : int
(** The synthesis state budget {!Auto} tries {!Explicit} under before
    falling back to {!Hybrid} (10000). [?max_states] overrides it per
    property. *)

val promote_after : int
(** Default hybrid promotion threshold: steps taken from one residual
    obligation before it is synthesized to a compiled table (32). *)
