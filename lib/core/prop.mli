(** The single property-parsing entry point.

    SCTC accepts properties in FLTL or the PSL foundation-language
    subset; historically each syntax had its own [parse]/[parse_result]
    pair with string-rendered errors ({!Fltl_parser}, {!Psl}). This
    module unifies them behind one entry with a structured error, and
    is what {!Checker.add_property_text}, [Verif.Session], the [tcheck]
    CLI and the examples parse through. The old per-syntax entries
    remain as thin deprecated wrappers for external callers.

    Syntax selection:
    - [`Fltl] / [`Psl]: exactly {!Fltl_parser.parse} / {!Psl.parse}.
    - [`Auto] (the default): PSL when a PSL-only keyword ([always],
      [never], [eventually], [next]) appears in the token stream,
      FLTL otherwise. [until]/[release] appear in both grammars (FLTL
      reads them as the strong [U]/[R], PSL's bare [until] is weak), so
      they deliberately do {e not} flip detection — bare-word texts
      keep their historical FLTL meaning. *)

type syntax = [ `Fltl | `Psl | `Auto ]

type error = {
  line : int;
  col : int;  (** 1-based position of the offending token *)
  message : string;
  input : string;  (** the property text as given *)
}

exception Parse_error of error

val parse : ?syntax:syntax -> string -> (Formula.t, error) result
(** Parse a property ([syntax] defaults to [`Auto]). Never raises. *)

val parse_exn : ?syntax:syntax -> string -> Formula.t
(** @raise Parse_error on malformed input. *)

val detect_syntax : string -> [ `Fltl | `Psl ]
(** The syntax [`Auto] would pick. Texts that do not tokenize are
    reported as [`Fltl] (the error surfaces at parse time). *)

val error_to_string : error -> string
(** ["LINE:COL: MESSAGE in \"INPUT\""]. *)

val pp_error : Format.formatter -> error -> unit
