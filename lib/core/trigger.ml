let emit_armed checker ~source =
  let trace = Checker.trace checker in
  if Trace.enabled trace then
    Trace.emit trace (Trace.Handshake_armed { source })

let on_event kernel event checker =
  let body () =
    emit_armed checker ~source:(Sim.Kernel.event_name event);
    let rec loop () =
      Sim.Kernel.wait_event event;
      Checker.trigger checker;
      loop ()
    in
    loop ()
  in
  Sim.Kernel.spawn kernel ~name:(Checker.name checker ^ ".trigger") body

let on_clock kernel clock checker = on_event kernel (Sim.Clock.posedge clock) checker

let on_event_when kernel event ~ready checker =
  let body () =
    let rec wait_ready () =
      Sim.Kernel.wait_event event;
      if not (ready ()) then wait_ready ()
    in
    wait_ready ();
    (* the handshake completed: arm once, then step on every trigger
       (including the one that flipped [ready]) *)
    emit_armed checker ~source:(Sim.Kernel.event_name event);
    let rec loop () =
      Checker.trigger checker;
      Sim.Kernel.wait_event event;
      loop ()
    in
    loop ()
  in
  Sim.Kernel.spawn kernel ~name:(Checker.name checker ^ ".trigger") body
