(* Hash-consed FLTL terms.  The cons table maps a structural key (tag,
   child ids, bound, name) to the unique term, so equality is pointer
   equality on [id].  Smart constructors normalise: boolean identities,
   double negation, idempotence/commutativity of [and_]/[or_], and the
   zero-bound collapses of the temporal operators. *)

type t = { id : int; node : node }

and node =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Next of t
  | Finally of int option * t
  | Globally of int option * t
  | Until of int option * t * t
  | Release of int option * t * t

type key = {
  k_tag : int;
  k_bound : int; (* -1 encodes None *)
  k_left : int;
  k_right : int;
  k_name : string;
}

let key_of_node node =
  let bnd = function None -> -1 | Some b -> b in
  match node with
  | True -> { k_tag = 0; k_bound = -1; k_left = -1; k_right = -1; k_name = "" }
  | False -> { k_tag = 1; k_bound = -1; k_left = -1; k_right = -1; k_name = "" }
  | Prop name ->
    { k_tag = 2; k_bound = -1; k_left = -1; k_right = -1; k_name = name }
  | Not f -> { k_tag = 3; k_bound = -1; k_left = f.id; k_right = -1; k_name = "" }
  | And (a, b) ->
    { k_tag = 4; k_bound = -1; k_left = a.id; k_right = b.id; k_name = "" }
  | Or (a, b) ->
    { k_tag = 5; k_bound = -1; k_left = a.id; k_right = b.id; k_name = "" }
  | Next f ->
    { k_tag = 6; k_bound = -1; k_left = f.id; k_right = -1; k_name = "" }
  | Finally (b, f) ->
    { k_tag = 7; k_bound = bnd b; k_left = f.id; k_right = -1; k_name = "" }
  | Globally (b, f) ->
    { k_tag = 8; k_bound = bnd b; k_left = f.id; k_right = -1; k_name = "" }
  | Until (b, f, g) ->
    { k_tag = 9; k_bound = bnd b; k_left = f.id; k_right = g.id; k_name = "" }
  | Release (b, f, g) ->
    { k_tag = 10; k_bound = bnd b; k_left = f.id; k_right = g.id; k_name = "" }

(* The cons table is process-global so term ids — and with them [equal],
   [compare] and every monitor's state space — are consistent across
   domains. A single global mutex made every formula construction in every
   campaign worker serialize through one lock, so the table is split into
   [shard_count] shards (key hash -> shard, one mutex each) with ids drawn
   from one [Atomic.t] counter: ids stay process-globally unique (the
   canonical id ordering of [smart_nary]/[subsume_bounds] only needs
   uniqueness and stability, not density), while unrelated constructions
   touch unrelated locks. In front of the shards sits a domain-local memo
   cache ([Domain.DLS]): a term a domain has consed before is returned
   without taking any lock at all, which is the common case once a
   worker's monitors are warm. The DLS cache stores the globally unique
   term (the same physical value as the shard table), so pointer equality
   on [id] — and physical equality itself — keep holding across domains.
   Everything reachable from a consed term is immutable, so terms can be
   shared freely afterwards. *)

let shard_count = 16 (* power of two: shard index is a mask of the hash *)

type shard = { lock : Mutex.t; table : (key, t) Hashtbl.t }

let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create (); table = Hashtbl.create 256 })

let next_id = Atomic.make 0

(* Contention diagnostics. The shard counters are global atomics: they
   are only touched on a DLS-cache miss, which is rare at steady state.
   DLS hit/miss counts live in a per-domain cell (written by exactly one
   domain, so a plain mutable int), registered once per domain so
   [cons_stats] can sum over all domains ever spawned — the registry
   keeps only the two-word cell alive, never the dead domain's table. *)
let shard_acquisition_count = Atomic.make 0
let shard_contention_count = Atomic.make 0

type dls_cell = { mutable hits : int; mutable misses : int }
type dls_cache = { memo : (key, t) Hashtbl.t; cell : dls_cell }

let dls_registry : dls_cell list ref = ref []
let dls_registry_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let cell = { hits = 0; misses = 0 } in
      Mutex.lock dls_registry_lock;
      dls_registry := cell :: !dls_registry;
      Mutex.unlock dls_registry_lock;
      { memo = Hashtbl.create 1024; cell })

let shard_of_key key = shards.(Hashtbl.hash key land (shard_count - 1))

let lock_counting shard =
  if Mutex.try_lock shard.lock then ()
  else begin
    Atomic.incr shard_contention_count;
    Mutex.lock shard.lock
  end;
  Atomic.incr shard_acquisition_count

let cons node =
  let key = key_of_node node in
  let cache = Domain.DLS.get dls_key in
  match Hashtbl.find_opt cache.memo key with
  | Some term ->
    cache.cell.hits <- cache.cell.hits + 1;
    term
  | None ->
    cache.cell.misses <- cache.cell.misses + 1;
    let shard = shard_of_key key in
    lock_counting shard;
    let term =
      match Hashtbl.find_opt shard.table key with
      | Some term -> term
      | None ->
        let term = { id = Atomic.fetch_and_add next_id 1; node } in
        Hashtbl.replace shard.table key term;
        term
    in
    Mutex.unlock shard.lock;
    Hashtbl.replace cache.memo key term;
    term

type cons_stats = {
  terms : int;
  dls_hits : int;
  dls_misses : int;
  shard_acquisitions : int;
  shard_contention : int;
  shards : int;
}

let cons_stats () =
  let hits = ref 0 and misses = ref 0 in
  Mutex.lock dls_registry_lock;
  List.iter
    (fun cell ->
      hits := !hits + cell.hits;
      misses := !misses + cell.misses)
    !dls_registry;
  Mutex.unlock dls_registry_lock;
  {
    terms = Atomic.get next_id;
    dls_hits = !hits;
    dls_misses = !misses;
    shard_acquisitions = Atomic.get shard_acquisition_count;
    shard_contention = Atomic.get shard_contention_count;
    shards = shard_count;
  }

let tru = cons True
let fls = cons False
let prop name = cons (Prop name)

let not_ f =
  match f.node with
  | True -> fls
  | False -> tru
  | Not inner -> inner
  | Prop _ | And _ | Or _ | Next _ | Finally _ | Globally _ | Until _
  | Release _ ->
    cons (Not f)

(* Conjunction and disjunction are canonicalized modulo associativity,
   commutativity, idempotence and complementary literals: operand chains
   are flattened, deduplicated, sorted by term id and rebuilt as a right
   comb.  This canonical form is what makes formula progression converge
   to a finite set of obligations (the states of the AR-automaton). *)

let rec flatten_binop which f acc =
  match which, f.node with
  | `And, And (a, b) | `Or, Or (a, b) ->
    flatten_binop which a (flatten_binop which b acc)
  | _ -> f :: acc

(* Bound subsumption between same-shaped temporal operands:
   F[b]f ∧ F[b']f = F[min b b']f, G[b]f ∧ G[b']f = G[max]f (and dually for
   disjunction), likewise for until/release on identical operand pairs.
   Without this, progression of G (p -> F[b] q) accumulates one countdown
   obligation per trigger and the AR-automaton explodes. *)
let subsume_bounds which operands =
  let lt a b =
    (* bound ordering with None = infinity *)
    match a, b with
    | None, None -> false
    | None, Some _ -> false
    | Some _, None -> true
    | Some x, Some y -> x < y
  in
  let min_bound a b = if lt a b then a else b in
  let max_bound a b = if lt a b then b else a in
  (* under And: eventualities keep the tightest bound, invariants the
     widest; under Or the duals *)
  let combine_eventual, combine_invariant =
    match which with
    | `And -> (min_bound, max_bound)
    | `Or -> (max_bound, min_bound)
  in
  let table : (int * int * int, t) Hashtbl.t = Hashtbl.create 8 in
  let others = ref [] in
  let stash key make bound =
    match Hashtbl.find_opt table key with
    | None -> Hashtbl.replace table key (make bound)
    | Some existing ->
      let existing_bound =
        match existing.node with
        | Finally (b, _) | Globally (b, _) | Until (b, _, _)
        | Release (b, _, _) ->
          b
        | _ -> assert false
      in
      let better =
        match existing.node with
        | Finally _ | Until _ -> combine_eventual bound existing_bound
        | Globally _ | Release _ -> combine_invariant bound existing_bound
        | _ -> assert false
      in
      Hashtbl.replace table key (make better)
  in
  List.iter
    (fun f ->
      match f.node with
      | Finally (b, g) -> stash (7, g.id, -1) (fun b -> cons (Finally (b, g))) b
      | Globally (b, g) ->
        stash (8, g.id, -1) (fun b -> cons (Globally (b, g))) b
      | Until (b, l, r) ->
        stash (9, l.id, r.id) (fun b -> cons (Until (b, l, r))) b
      | Release (b, l, r) ->
        stash (10, l.id, r.id) (fun b -> cons (Release (b, l, r))) b
      | True | False | Prop _ | Not _ | And _ | Or _ | Next _ ->
        others := f :: !others)
    operands;
  Hashtbl.fold (fun _ f acc -> f :: acc) table !others

let smart_nary which a b =
  let absorbing, neutral =
    match which with `And -> (fls, tru) | `Or -> (tru, fls)
  in
  let operands = flatten_binop which a (flatten_binop which b []) in
  if List.exists (fun f -> f.id = absorbing.id) operands then absorbing
  else begin
    let operands =
      List.filter (fun f -> f.id <> neutral.id) operands
      |> subsume_bounds which
      |> List.sort_uniq (fun x y -> Int.compare x.id y.id)
    in
    let module IS = Set.Make (Int) in
    let ids = IS.of_list (List.map (fun f -> f.id) operands) in
    let complementary =
      List.exists
        (fun f -> match f.node with Not g -> IS.mem g.id ids | _ -> false)
        operands
    in
    if complementary then absorbing
    else
      match List.rev operands with
      | [] -> neutral
      | last :: rev_init ->
        let mk x y =
          match which with `And -> cons (And (x, y)) | `Or -> cons (Or (x, y))
        in
        List.fold_left (fun acc f -> mk f acc) last rev_init
  end

let and_ a b =
  match a.node, b.node with
  | False, _ | _, False -> fls
  | True, _ -> b
  | _, True -> a
  | _ -> if a.id = b.id then a else smart_nary `And a b

let or_ a b =
  match a.node, b.node with
  | True, _ | _, True -> tru
  | False, _ -> b
  | _, False -> a
  | _ -> if a.id = b.id then a else smart_nary `Or a b

let implies a b = or_ (not_ a) b
let iff a b = and_ (implies a b) (implies b a)

let next f =
  match f.node with
  | True -> tru
  | False -> fls
  | Prop _ | Not _ | And _ | Or _ | Next _ | Finally _ | Globally _ | Until _
  | Release _ ->
    cons (Next f)

let check_bound op = function
  | Some b when b < 0 ->
    invalid_arg (Printf.sprintf "Formula.%s: negative bound %d" op b)
  | Some _ | None -> ()

(* Note: a zero bound does NOT collapse ([F[0] f] /= [f]): the residual
   obligation [F[0] f] produced by progression refers to the next trace
   position and must keep its operator so end-of-trace closure can
   distinguish "eventuality left over" (fails strongly) from "invariant
   window ran past the trace end" (discharged). *)

let finally bound f =
  check_bound "finally" bound;
  match f.node with
  | True -> tru
  | False -> fls
  | Finally (None, _) when bound = None -> f (* F F f = F f *)
  | Prop _ | Not _ | And _ | Or _ | Next _ | Finally _ | Globally _ | Until _
  | Release _ ->
    cons (Finally (bound, f))

let globally bound f =
  check_bound "globally" bound;
  match f.node with
  | True -> tru
  | False -> fls
  | Globally (None, _) when bound = None -> f
  | Prop _ | Not _ | And _ | Or _ | Next _ | Finally _ | Globally _ | Until _
  | Release _ ->
    cons (Globally (bound, f))

let until bound f g =
  check_bound "until" bound;
  match f.node, g.node with
  | _, True -> tru
  | _, False -> fls
  | True, _ -> finally bound g
  | _ -> cons (Until (bound, f, g))

let release bound f g =
  check_bound "release" bound;
  match f.node, g.node with
  | _, True -> tru
  | _, False -> fls
  | False, _ -> globally bound g
  | _ -> cons (Release (bound, f, g))

let conj terms = List.fold_left and_ tru terms
let disj terms = List.fold_left or_ fls terms

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash f = f.id

let props f =
  let module S = Set.Make (String) in
  let rec collect acc f =
    match f.node with
    | True | False -> acc
    | Prop name -> S.add name acc
    | Not g | Next g | Finally (_, g) | Globally (_, g) -> collect acc g
    | And (a, b) | Or (a, b) | Until (_, a, b) | Release (_, a, b) ->
      collect (collect acc a) b
  in
  S.elements (collect S.empty f)

let rec size f =
  match f.node with
  | True | False | Prop _ -> 1
  | Not g | Next g | Finally (_, g) | Globally (_, g) -> 1 + size g
  | And (a, b) | Or (a, b) | Until (_, a, b) | Release (_, a, b) ->
    1 + size a + size b

let max_bound f =
  let join a b =
    match a, b with
    | None, x | x, None -> x
    | Some x, Some y -> Some (max x y)
  in
  let rec walk f =
    match f.node with
    | True | False | Prop _ -> None
    | Not g | Next g -> walk g
    | Finally (b, g) | Globally (b, g) -> join b (walk g)
    | And (a, b) | Or (a, b) -> join (walk a) (walk b)
    | Until (b, l, r) | Release (b, l, r) ->
      join b (join (walk l) (walk r))
  in
  walk f

let rec is_propositional f =
  match f.node with
  | True | False | Prop _ -> true
  | Not g -> is_propositional g
  | And (a, b) | Or (a, b) -> is_propositional a && is_propositional b
  | Next _ | Finally _ | Globally _ | Until _ | Release _ -> false

let rec nnf f =
  match f.node with
  | True | False | Prop _ -> f
  | And (a, b) -> and_ (nnf a) (nnf b)
  | Or (a, b) -> or_ (nnf a) (nnf b)
  | Next g -> next (nnf g)
  | Finally (b, g) -> finally b (nnf g)
  | Globally (b, g) -> globally b (nnf g)
  | Until (b, l, r) -> until b (nnf l) (nnf r)
  | Release (b, l, r) -> release b (nnf l) (nnf r)
  | Not g -> nnf_neg g

and nnf_neg f =
  match f.node with
  | True -> fls
  | False -> tru
  | Prop _ -> not_ f
  | Not g -> nnf g
  | And (a, b) -> or_ (nnf_neg a) (nnf_neg b)
  | Or (a, b) -> and_ (nnf_neg a) (nnf_neg b)
  | Next g -> next (nnf_neg g)
  | Finally (b, g) -> globally b (nnf_neg g)
  | Globally (b, g) -> finally b (nnf_neg g)
  | Until (b, l, r) -> release b (nnf_neg l) (nnf_neg r)
  | Release (b, l, r) -> until b (nnf_neg l) (nnf_neg r)

let pp_bound fmt = function
  | None -> ()
  | Some b -> Format.fprintf fmt "[%d]" b

(* Precedence climbing for printing: 0 or/.., 1 and, 2 binary temporal,
   3 unary, 4 atom. *)
let rec pp_prec level fmt f =
  let paren needed body =
    if needed then Format.fprintf fmt "(%t)" body else body fmt
  in
  match f.node with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Prop name -> Format.pp_print_string fmt name
  | Not g -> Format.fprintf fmt "!%a" (pp_prec 3) g
  | Next g -> Format.fprintf fmt "X %a" (pp_prec 3) g
  | Finally (b, g) ->
    Format.fprintf fmt "F%a %a" pp_bound b (pp_prec 3) g
  | Globally (b, g) ->
    Format.fprintf fmt "G%a %a" pp_bound b (pp_prec 3) g
  | And (a, b) ->
    (* left-associative: right-nested conjunctions need parentheses *)
    paren (level > 1) (fun fmt ->
        Format.fprintf fmt "%a & %a" (pp_prec 1) a (pp_prec 2) b)
  | Or (a, b) ->
    paren (level > 0) (fun fmt ->
        Format.fprintf fmt "%a | %a" (pp_prec 0) a (pp_prec 1) b)
  | Until (b, l, r) ->
    paren (level > 2) (fun fmt ->
        Format.fprintf fmt "%a U%a %a" (pp_prec 3) l pp_bound b (pp_prec 2) r)
  | Release (b, l, r) ->
    paren (level > 2) (fun fmt ->
        Format.fprintf fmt "%a R%a %a" (pp_prec 3) l pp_bound b (pp_prec 2) r)

let pp fmt f = pp_prec 0 fmt f
let to_string f = Format.asprintf "%a" pp f

let rec eval_now f valuation =
  match f.node with
  | True -> true
  | False -> false
  | Prop name -> valuation name
  | Not g -> not (eval_now g valuation)
  | And (a, b) -> eval_now a valuation && eval_now b valuation
  | Or (a, b) -> eval_now a valuation || eval_now b valuation
  | Next _ | Finally _ | Globally _ | Until _ | Release _ ->
    invalid_arg "Formula.eval_now: temporal operator"
