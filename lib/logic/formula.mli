(** FLTL formulas — linear temporal logic with optional time bounds on the
    temporal operators (Ruf et al.'s finite linear-time temporal logic, the
    property language of the SCTC).

    Formulas are hash-consed: structurally equal formulas are physically
    equal and share a unique [id]. Smart constructors perform boolean and
    temporal simplification ([and_ True f = f], [finally (Some 0) f = f],
    ...), which keeps the state space of formula progression small. *)

type t = private { id : int; node : node }

and node =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Next of t
  | Finally of int option * t  (** [F f] / [F[<=b] f] *)
  | Globally of int option * t  (** [G f] / [G[<=b] f] *)
  | Until of int option * t * t  (** [f U g] / [f U[<=b] g] *)
  | Release of int option * t * t  (** [f R g] / [f R[<=b] g] *)

(** {2 Constructors} *)

val tru : t
val fls : t
val prop : string -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val next : t -> t

(** [finally bound f]: [f] must hold within [bound] steps (inclusive of the
    current step; [Some 0] means "now"). [None] is the unbounded [F]. *)
val finally : int option -> t -> t

val globally : int option -> t -> t
val until : int option -> t -> t -> t
val release : int option -> t -> t -> t

val conj : t list -> t
val disj : t list -> t

(** {2 Observers} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val props : t -> string list
(** Proposition names, sorted, without duplicates. *)

val size : t -> int
(** Number of nodes (shared subterms counted once per occurrence). *)

val max_bound : t -> int option
(** Largest time bound appearing in the formula, if any. *)

val is_propositional : t -> bool
(** No temporal operator. *)

val nnf : t -> t
(** Negation normal form: negation pushed onto propositions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [eval_now f valuation] evaluates a propositional formula.
    @raise Invalid_argument if [f] contains a temporal operator. *)
val eval_now : t -> (string -> bool) -> bool

(** {2 Concurrency diagnostics}

    The cons table is sharded (one mutex per shard, ids from an atomic
    counter) and fronted by a per-domain memo cache, so parallel campaign
    workers construct formulas without serializing through a global lock.
    These counters are cumulative over the process lifetime and summed
    over every domain that ever consed a term. *)

type cons_stats = {
  terms : int;  (** unique hash-consed terms allocated so far *)
  dls_hits : int;  (** constructions served lock-free by a domain cache *)
  dls_misses : int;  (** constructions that had to visit a shard *)
  shard_acquisitions : int;  (** shard-mutex acquisitions *)
  shard_contention : int;  (** acquisitions that found the shard locked *)
  shards : int;  (** number of shards *)
}

val cons_stats : unit -> cons_stats
