(** PSL (Property Specification Language) foundation-language subset.

    SCTC accepts properties in PSL or FLTL; this module parses the PSL FL
    operators the paper's flow needs and maps them onto the FLTL core:

    {v
      always p          ==> G p
      never p           ==> G !p
      eventually! p     ==> F p
      next p            ==> X p
      next[n] p         ==> X^n p
      p until! q        ==> p U q        (strong)
      p until q         ==> q R (p | q)  (weak until)
      p release q       ==> p R q
      not/and/or/implies/iff and the symbol forms
    v}

    SEREs (sequence expressions) are out of scope — the paper's property set
    uses only the FL subset above. *)

exception Parse_error of string * Fltl_lexer.position

val parse : string -> Formula.t
[@@alert
  deprecated
    "Parse through Sctc.Prop.parse / parse_exn (~syntax:`Psl) instead; \
     this legacy entry point will be removed."]
(** @raise Parse_error and {!Fltl_lexer.Lex_error} on malformed input.
    @deprecated New code should parse through [Sctc.Prop.parse] (or
    [parse_exn] / [~syntax:`Psl]), which unifies both syntaxes behind a
    structured error. This entry remains as a thin wrapper; [Sctc.Prop]
    is its only in-tree caller, and the [dep-strict] build profile turns
    any other use into a compile error. *)

val parse_result : string -> (Formula.t, string) result
