(** Recursive-descent parser for the FLTL property syntax.

    Grammar (lowest to highest precedence):
    {v
      formula  := implied ( '<->' implied )*
      implied  := ored ( '->' implied )?            (right associative)
      ored     := anded ( ('|' | 'or') anded )*
      anded    := untiled ( ('&' | 'and') untiled )*
      untiled  := unary ( ('U' | 'R') bound? untiled )?
      unary    := ('!' | 'not') unary
                | 'X' unary
                | ('F' | 'G') bound? unary
                | atom
      atom     := 'true' | 'false' | IDENT | '(' formula ')'
      bound    := '[' INT ']'
    v}

    The paper's sample property "F (Read -> F[b] (EEE_OK | ...))" parses with
    this grammar. *)

exception Parse_error of string * Fltl_lexer.position

val parse : string -> Formula.t
[@@alert
  deprecated
    "Parse through Sctc.Prop.parse / parse_exn (~syntax:`Fltl) instead; \
     this legacy entry point will be removed."]
(** @raise Parse_error and {!Fltl_lexer.Lex_error} on malformed input.
    @deprecated New code should parse through [Sctc.Prop.parse] (or
    [parse_exn] / [~syntax:`Fltl]), which unifies both syntaxes behind a
    structured error. This entry remains as a thin wrapper; [Sctc.Prop]
    is its only in-tree caller, and the [dep-strict] build profile turns
    any other use into a compile error. *)

val parse_result : string -> (Formula.t, string) result
(** Like {!parse}, with errors rendered as a message. *)
