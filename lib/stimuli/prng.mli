(** Deterministic pseudo-random number generation (SplitMix64).

    Constrained-random verification must be reproducible: a failing test
    case is re-run from its seed. All stimulus in the repository flows from
    this generator — never from the global [Random] state. *)

type t

val create : seed:int -> t

val copy : t -> t
(** Independent generator continuing from the same state. *)

val split : t -> string -> t
(** Derive an independent, deterministically-named substream; used to give
    every stimulus source its own stream so adding one source does not
    shift the values of others. *)

val of_seed_index : seed:int -> index:int -> t
(** The seed-splitting contract of parallel campaigns: stream [index] of
    campaign [seed]. The same (seed, index) pair is bit-reproducible
    across runs, and distinct indices yield independent streams — so a
    campaign's per-job stimulus is identical no matter how many workers
    execute it, or in which order. *)

val substream : t -> int -> t
(** [substream g index] derives stream [index] from [g]'s current state
    without advancing [g]: a pure read of the parent, so concurrent
    domains may fork substreams off one shared base stream — the
    DLS-safe counterpart of {!split}. [substream (create ~seed) index]
    equals [of_seed_index ~seed ~index]. *)

(** A scratch stream private to the calling domain, stored in
    [Domain.DLS]. Its seed depends on domain spawn order, so use it only
    for diagnostics or test-interleaving shuffles — never for stimulus,
    which must flow from {!of_seed_index}/{!substream} to stay
    reproducible across worker counts. *)
module Domain_local : sig
  val stream : unit -> t
end

val next_int64 : t -> int64

val bits : t -> int
(** 62 non-negative random bits. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform in [[lo, hi]] (inclusive). @raise Invalid_argument if empty. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is true with probability [p] (clamped to [0,1]). *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on empty list. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** Choice proportional to non-negative weights.
    @raise Invalid_argument if all weights are zero or the list is empty. *)
