type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let copy g = { state = g.state }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

(* Independent stream [index] of a campaign seed. The salt multiplies the
   (shifted) index by the odd golden gamma — a bijection on 64-bit words —
   and mixes, so distinct (seed, index) pairs map to distinct states and
   the mapping is a pure function of its arguments: the same pair is
   bit-reproducible across runs, processes and worker counts. *)
let of_seed_index ~seed ~index =
  let base = mix (Int64.of_int seed) in
  let salt =
    mix (Int64.mul (Int64.add (Int64.of_int index) 1L) golden_gamma)
  in
  { state = mix (Int64.logxor base salt) }

(* Pure derivation of substream [index] from a parent stream: the same
   salting scheme as [of_seed_index], but over the parent's current state
   instead of a root seed. The parent is only read, never advanced, so
   many domains may fork substreams off one shared base concurrently —
   this is the domain-safe way to hand each worker its own stream. *)
let substream g index =
  let salt =
    mix (Int64.mul (Int64.add (Int64.of_int index) 1L) golden_gamma)
  in
  { state = mix (Int64.logxor g.state salt) }

(* A per-domain scratch stream (Domain.DLS). Seeded from a process-wide
   spawn counter, so its values depend on domain spawn order: fine for
   diagnostics and test-interleaving shuffles, never for stimulus — all
   stimulus must flow from [of_seed_index]/[substream] so campaigns stay
   reproducible for any worker count. *)
module Domain_local = struct
  let spawn_counter = Atomic.make 0

  let key =
    Domain.DLS.new_key (fun () ->
        of_seed_index ~seed:0x5EED
          ~index:(Atomic.fetch_and_add spawn_counter 1))

  let stream () = Domain.DLS.get key
end

(* FNV-1a over the name, folded into the stream state *)
let split g name =
  let hash = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      hash := Int64.logxor !hash (Int64.of_int (Char.code c));
      hash := Int64.mul !hash 0x100000001B3L)
    name;
  { state = mix (Int64.logxor g.state !hash) }

let bits g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int_range g ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Prng.int_range: empty range [%d,%d]" lo hi);
  let span = hi - lo + 1 in
  lo + (bits g mod span)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float_of_int (bits g) /. 4611686018427387904.0 < p

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int_range g ~lo:0 ~hi:(List.length items - 1))

let pick_weighted g weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 weighted in
  if total <= 0 then invalid_arg "Prng.pick_weighted: no positive weight";
  let target = int_range g ~lo:0 ~hi:(total - 1) in
  let rec walk remaining = function
    | [] -> invalid_arg "Prng.pick_weighted: exhausted"
    | (w, item) :: rest ->
      let w = max 0 w in
      if remaining < w then item else walk (remaining - w) rest
  in
  walk target weighted
