type config = {
  num_blocks : int;
  words_per_block : int;
  erase_ticks : int;
  write_ticks : int;
  write_fail_prob : float;
  erase_fail_prob : float;
}

let default_config =
  {
    num_blocks = 4;
    words_per_block = 128;
    erase_ticks = 50;
    write_ticks = 5;
    write_fail_prob = 0.0;
    erase_fail_prob = 0.0;
  }

type fault_config = { decay_prob : float; power_loss_prob : float }

let no_faults = { decay_prob = 0.0; power_loss_prob = 0.0 }

type status = Ready | Busy | Fault

(* [torn] carries the effect of a power loss decided when the operation
   was accepted: the bit mask left unprogrammed of a torn write, or the
   number of words actually erased of a torn block erase *)
type pending =
  | No_op
  | Write_op of { addr : int; value : int; will_fail : bool; torn : int option }
  | Erase_op of { block : int; will_fail : bool; torn : int option }

type t = {
  cfg : config;
  fault_cfg : fault_config;
  cells : int array; (* -1 = erased *)
  bad_blocks : bool array;
  prng : Stimuli.Prng.t;
  decay_prng : Stimuli.Prng.t;
  power_prng : Stimuli.Prng.t;
  mutable state : status;
  mutable pending : pending;
  mutable remaining : int;
  mutable writes_done : int;
  mutable erases_done : int;
  mutable faults : int;
  mutable decays : int;
  mutable power_losses : int;
}

let create ?prng ?(faults = no_faults) cfg =
  if cfg.num_blocks <= 0 || cfg.words_per_block <= 0 then
    invalid_arg "Flash.create: empty geometry";
  let prng =
    match prng with Some p -> p | None -> Stimuli.Prng.create ~seed:0
  in
  {
    cfg;
    fault_cfg = faults;
    cells = Array.make (cfg.num_blocks * cfg.words_per_block) (-1);
    bad_blocks = Array.make cfg.num_blocks false;
    prng;
    (* each fault class draws from its own substream ([split] is a pure
       read of the parent), so enabling one class never shifts the
       values of another — and a zero-probability class draws nothing
       ([Prng.chance] short-circuits), keeping fault-free runs
       bit-identical to a faultless build *)
    decay_prng = Stimuli.Prng.split prng "bit-decay";
    power_prng = Stimuli.Prng.split prng "power-loss";
    state = Ready;
    pending = No_op;
    remaining = 0;
    writes_done = 0;
    erases_done = 0;
    faults = 0;
    decays = 0;
    power_losses = 0;
  }

let config flash = flash.cfg
let size_words flash = Array.length flash.cells
let status flash = flash.state

let clear_fault flash = if flash.state = Fault then flash.state <- Ready

let check_addr flash addr =
  if addr < 0 || addr >= Array.length flash.cells then
    invalid_arg (Printf.sprintf "Flash: address %d out of range" addr)

let block_of flash addr = addr / flash.cfg.words_per_block

let read_word flash addr =
  check_addr flash addr;
  flash.cells.(addr)

(* A power loss is decided when the operation is accepted, like the
   plain fault-injection draw: a torn write leaves a random subset of
   the value's 0-bits unprogrammed (erased bits stay at 1 — programming
   only pulls bits low); a torn erase clears only a prefix of the
   block's words. *)
let torn_write_mask flash =
  if Stimuli.Prng.chance flash.power_prng flash.fault_cfg.power_loss_prob then
    Some (Stimuli.Prng.bits flash.power_prng land 0xFFFF)
  else None

let torn_erase_words flash =
  if Stimuli.Prng.chance flash.power_prng flash.fault_cfg.power_loss_prob then
    Some
      (Stimuli.Prng.int_range flash.power_prng ~lo:0
         ~hi:(flash.cfg.words_per_block - 1))
  else None

let start_write flash ~addr ~value =
  if flash.state <> Ready then Error `Busy
  else if addr < 0 || addr >= Array.length flash.cells then Error `Bad_address
  else if flash.cells.(addr) <> -1 then Error `Not_erased
  else begin
    let will_fail =
      flash.bad_blocks.(block_of flash addr)
      || Stimuli.Prng.chance flash.prng flash.cfg.write_fail_prob
    in
    let torn = torn_write_mask flash in
    flash.state <- Busy;
    flash.pending <-
      Write_op { addr; value = Minic.Value.wrap value; will_fail; torn };
    flash.remaining <- max 1 flash.cfg.write_ticks;
    Ok ()
  end

let start_erase flash ~block =
  if flash.state <> Ready then Error `Busy
  else if block < 0 || block >= flash.cfg.num_blocks then Error `Bad_address
  else begin
    let will_fail =
      flash.bad_blocks.(block)
      || Stimuli.Prng.chance flash.prng flash.cfg.erase_fail_prob
    in
    let torn = torn_erase_words flash in
    flash.state <- Busy;
    flash.pending <- Erase_op { block; will_fail; torn };
    flash.remaining <- max 1 flash.cfg.erase_ticks;
    Ok ()
  end

let is_blank flash ~block =
  if block < 0 || block >= flash.cfg.num_blocks then
    invalid_arg "Flash.is_blank: bad block";
  let base = block * flash.cfg.words_per_block in
  let rec scan i =
    i >= flash.cfg.words_per_block || (flash.cells.(base + i) = -1 && scan (i + 1))
  in
  scan 0

let mark_bad_block flash block =
  if block < 0 || block >= flash.cfg.num_blocks then
    invalid_arg "Flash.mark_bad_block: bad block";
  flash.bad_blocks.(block) <- true

let complete flash =
  match flash.pending with
  | No_op -> ()
  | Write_op { addr; value; will_fail; torn } ->
    flash.pending <- No_op;
    (match torn with
    | Some mask ->
      (* power lost mid-program: the masked bits never got pulled low,
         the cell ends up between erased and programmed *)
      flash.cells.(addr) <- Minic.Value.wrap (value lor mask);
      flash.power_losses <- flash.power_losses + 1;
      flash.faults <- flash.faults + 1;
      flash.state <- Fault
    | None ->
      if will_fail then begin
        (* a failed program leaves the cell in an undefined, non-erased
           state: model as a corrupted value *)
        flash.cells.(addr) <- value lxor 0x5A5A;
        flash.faults <- flash.faults + 1;
        flash.state <- Fault
      end
      else begin
        flash.cells.(addr) <- value;
        flash.writes_done <- flash.writes_done + 1;
        flash.state <- Ready
      end)
  | Erase_op { block; will_fail; torn } ->
    flash.pending <- No_op;
    (match torn with
    | Some words ->
      (* power lost mid-erase: only a prefix of the block is blank *)
      let base = block * flash.cfg.words_per_block in
      Array.fill flash.cells base words (-1);
      flash.power_losses <- flash.power_losses + 1;
      flash.faults <- flash.faults + 1;
      flash.state <- Fault
    | None ->
      if will_fail then begin
        flash.faults <- flash.faults + 1;
        flash.state <- Fault
      end
      else begin
        let base = block * flash.cfg.words_per_block in
        Array.fill flash.cells base flash.cfg.words_per_block (-1);
        flash.erases_done <- flash.erases_done + 1;
        flash.state <- Ready
      end)

(* Bit decay: with [decay_prob] per tick, one of the 16 low bits of a
   random programmed cell relaxes back toward the erased (all-ones)
   state — silent retention loss, no fault status, the software only
   sees it when it reads the corrupted word back. *)
let decay flash =
  if Stimuli.Prng.chance flash.decay_prng flash.fault_cfg.decay_prob then begin
    let addr =
      Stimuli.Prng.int_range flash.decay_prng ~lo:0
        ~hi:(Array.length flash.cells - 1)
    in
    let bit = Stimuli.Prng.int_range flash.decay_prng ~lo:0 ~hi:15 in
    let cell = flash.cells.(addr) in
    if cell <> -1 then begin
      let decayed = Minic.Value.wrap (cell lor (1 lsl bit)) in
      if decayed <> cell then begin
        flash.cells.(addr) <- decayed;
        flash.decays <- flash.decays + 1
      end
    end
  end

let tick flash =
  decay flash;
  if flash.state = Busy then begin
    flash.remaining <- flash.remaining - 1;
    if flash.remaining <= 0 then complete flash
  end

let ticks_remaining flash = if flash.state = Busy then flash.remaining else 0
let writes_completed flash = flash.writes_done
let erases_completed flash = flash.erases_done
let faults_injected flash = flash.faults
let fault_config flash = flash.fault_cfg
let decays_injected flash = flash.decays
let power_losses_injected flash = flash.power_losses

let reset flash =
  Array.fill flash.cells 0 (Array.length flash.cells) (-1);
  flash.state <- Ready;
  flash.pending <- No_op;
  flash.remaining <- 0;
  flash.writes_done <- 0;
  flash.erases_done <- 0;
  flash.faults <- 0;
  flash.decays <- 0;
  flash.power_losses <- 0
