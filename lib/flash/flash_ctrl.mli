(** Memory-mapped controller front end for the {!Flash} model.

    This is the hardware interface the Data Flash Access layer (DFALib) of
    the case study talks to. Register map (word offsets from the base):

    {v
      0  CMD     write: 1 = program word  2 = erase block  3 = clear fault
      1  ADDR    word address (for program) / block number (for erase/blank)
      2  DATA    write: value to program; read: flash cell at ADDR
      3  STATUS  read: 0 ready, 1 busy, 2 fault
      4  RESULT  read: acceptance of last CMD: 0 ok, 1 busy, 2 not erased,
                 3 bad address
      5  BLANK   read: 1 when block ADDR is fully erased
      6  GEOM_B  read: number of blocks
      7  GEOM_W  read: words per block
      8  DECAYS  read: bits decayed by the fault-injection overlay
      9  PLOSS   read: operations torn by an injected power loss
    v}

    A separate read-only window maps the whole flash array for direct reads
    (the paper's software reads flash through direct memory access). *)

type t

val create : Flash.t -> t

val flash : t -> Flash.t

val ctrl_device : t -> base:int -> Cpu.Bus.device
(** The 10-register controller at [base]. *)

val window_device : t -> base:int -> size:int -> Cpu.Bus.device
(** Read-only window of the first [size] flash words at [base]. Writes into
    the window are ignored (like writes to a ROM region). *)

(** Register offsets, for software and tests. *)

val reg_cmd : int
val reg_addr : int
val reg_data : int
val reg_status : int
val reg_result : int
val reg_blank : int
val reg_geom_blocks : int
val reg_geom_words : int
val reg_decays : int
val reg_power_losses : int

val cmd_program : int
val cmd_erase : int
val cmd_clear_fault : int

val status_ready : int
val status_busy : int
val status_fault : int

val result_ok : int
val result_busy : int
val result_not_erased : int
val result_bad_address : int
