(** Data-flash device model (the case study's storage hardware).

    The model captures the properties the EEPROM-emulation software is
    built around: the flash is organised in blocks of words; an erased word
    reads as all-ones (-1); programming is only possible on erased words;
    erasing works on whole blocks and is slow; operations take time, during
    which the device reports busy; writes and erases can fail (injected
    faults and permanently bad blocks), leaving the device in an error
    state the software must handle.

    Timing is modelled in ticks: {!tick} is called once per clock cycle by
    the SoC (approach 1) or per access by the virtual memory model
    (approach 2). A pending operation completes when its latency expires. *)

type t

type config = {
  num_blocks : int;
  words_per_block : int;
  erase_ticks : int;  (** latency of a block erase *)
  write_ticks : int;  (** latency of a word program *)
  write_fail_prob : float;  (** chance an individual program op fails *)
  erase_fail_prob : float;
}

val default_config : config
(** 4 blocks x 128 words, erase 50 ticks, write 5 ticks, no faults. *)

type fault_config = {
  decay_prob : float;
      (** per-tick chance that one low bit of a random programmed word
          relaxes back toward the erased all-ones state — silent
          retention loss, no fault status *)
  power_loss_prob : float;
      (** per accepted operation: chance power is lost mid-way, leaving
          a torn result (a write with a random subset of bits never
          programmed; an erase with only a prefix of the block blank)
          and the device in [Fault] *)
}
(** Probabilistic fault-injection overlay for statistical model
    checking ({!Smc}): unlike [write_fail_prob]/[erase_fail_prob]
    (the paper's fixed-stimulus fault knobs, drawn from the main PRNG),
    each overlay class draws from its own substream, so enabling one
    never shifts another — and a zero-probability class draws nothing,
    keeping fault-free runs bit-identical to the seed model. *)

val no_faults : fault_config

val create : ?prng:Stimuli.Prng.t -> ?faults:fault_config -> config -> t
(** [faults] defaults to {!no_faults}. *)

val config : t -> config
val size_words : t -> int

(** {2 Status} *)

type status = Ready | Busy | Fault
(** [Fault]: the last operation failed; cleared by {!clear_fault}. *)

val status : t -> status
val clear_fault : t -> unit

(** {2 Operations} — only accepted when {!status} is [Ready]; otherwise
    they are rejected with [Error `Busy]. *)

val read_word : t -> int -> int
(** Combinational read of a cell ([-1] when erased).
    @raise Invalid_argument on out-of-range addresses. *)

val start_write : t -> addr:int -> value:int -> (unit, [ `Busy | `Not_erased | `Bad_address ]) result
(** Begin programming; completes (or fails) after [write_ticks] ticks. *)

val start_erase : t -> block:int -> (unit, [ `Busy | `Bad_address ]) result

val is_blank : t -> block:int -> bool
(** All words of the block erased? *)

val mark_bad_block : t -> int -> unit
(** Operations on this block will always fail (permanent fault). *)

val tick : t -> unit
(** Advance time by one tick. *)

val ticks_remaining : t -> int
(** 0 when no operation pending. *)

(** {2 Statistics} *)

val writes_completed : t -> int
val erases_completed : t -> int
val faults_injected : t -> int

val fault_config : t -> fault_config

val decays_injected : t -> int
(** Bits decayed so far (visible cell changes only). *)

val power_losses_injected : t -> int
(** Operations torn by an injected power loss. *)

val reset : t -> unit
(** Erase everything, clear faults and statistics (bad blocks persist). *)
