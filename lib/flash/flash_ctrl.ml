type t = {
  fl : Flash.t;
  mutable addr : int;
  mutable data : int;
  mutable last_cmd : int;
  mutable result : int;
}

let reg_cmd = 0
let reg_addr = 1
let reg_data = 2
let reg_status = 3
let reg_result = 4
let reg_blank = 5
let reg_geom_blocks = 6
let reg_geom_words = 7
let reg_decays = 8
let reg_power_losses = 9

let cmd_program = 1
let cmd_erase = 2
let cmd_clear_fault = 3

let status_ready = 0
let status_busy = 1
let status_fault = 2

let result_ok = 0
let result_busy = 1
let result_not_erased = 2
let result_bad_address = 3

let create fl = { fl; addr = 0; data = 0; last_cmd = 0; result = 0 }

let flash ctrl = ctrl.fl

let execute ctrl cmd =
  ctrl.last_cmd <- cmd;
  if cmd = cmd_program then
    ctrl.result <-
      (match Flash.start_write ctrl.fl ~addr:ctrl.addr ~value:ctrl.data with
      | Ok () -> result_ok
      | Error `Busy -> result_busy
      | Error `Not_erased -> result_not_erased
      | Error `Bad_address -> result_bad_address)
  else if cmd = cmd_erase then
    ctrl.result <-
      (match Flash.start_erase ctrl.fl ~block:ctrl.addr with
      | Ok () -> result_ok
      | Error `Busy -> result_busy
      | Error `Bad_address -> result_bad_address)
  else if cmd = cmd_clear_fault then begin
    Flash.clear_fault ctrl.fl;
    ctrl.result <- result_ok
  end
  else ctrl.result <- result_bad_address

let safe_read ctrl addr =
  if addr >= 0 && addr < Flash.size_words ctrl.fl then
    Flash.read_word ctrl.fl addr
  else -1

let ctrl_device ctrl ~base =
  let read offset =
    if offset = reg_cmd then ctrl.last_cmd
    else if offset = reg_addr then ctrl.addr
    else if offset = reg_data then safe_read ctrl ctrl.addr
    else if offset = reg_status then begin
      match Flash.status ctrl.fl with
      | Flash.Ready -> status_ready
      | Flash.Busy -> status_busy
      | Flash.Fault -> status_fault
    end
    else if offset = reg_result then ctrl.result
    else if offset = reg_blank then begin
      let cfg = Flash.config ctrl.fl in
      if ctrl.addr >= 0 && ctrl.addr < cfg.Flash.num_blocks then
        if Flash.is_blank ctrl.fl ~block:ctrl.addr then 1 else 0
      else 0
    end
    else if offset = reg_geom_blocks then (Flash.config ctrl.fl).Flash.num_blocks
    else if offset = reg_geom_words then
      (Flash.config ctrl.fl).Flash.words_per_block
    else if offset = reg_decays then Flash.decays_injected ctrl.fl
    else if offset = reg_power_losses then Flash.power_losses_injected ctrl.fl
    else 0
  in
  let write offset value =
    if offset = reg_cmd then execute ctrl value
    else if offset = reg_addr then ctrl.addr <- value
    else if offset = reg_data then ctrl.data <- value
    (* other registers read-only *)
  in
  { Cpu.Bus.dev_name = "flash-ctrl"; base; size = 10; read; write }

let window_device ctrl ~base ~size =
  {
    Cpu.Bus.dev_name = "flash-window";
    base;
    size;
    read = (fun offset -> safe_read ctrl offset);
    write = (fun _ _ -> ());
  }
