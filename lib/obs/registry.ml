(* Metrics registry. Recording never takes a lock: each metric keeps a
   per-domain cell behind a [Domain.DLS] key, created on a domain's
   first record and registered (under the metric's mutex, once per
   domain) so readers can sum over every cell ever created. Cells are
   written by exactly one domain, so plain mutable fields suffice;
   readers may observe a value mid-update, which for monotonic sums
   means an instantaneously slightly-stale but never torn figure. The
   registry keeps only the cells alive after a domain dies, mirroring
   the cons-stats registry in lib/logic/formula.ml. *)

type labels = (string * string) list

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let default_time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.5; 1.0; 5.0; 10.0 |]

(* --- per-domain cells ---------------------------------------------------- *)

(* A cell list + DLS key pair; ['cell] is the per-domain state. *)
type 'cell cells = {
  lock : Mutex.t;
  all : 'cell list ref;
  key : 'cell Domain.DLS.key;
}

let make_cells fresh =
  let lock = Mutex.create () in
  let all = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let cell = fresh () in
        Mutex.lock lock;
        all := cell :: !all;
        Mutex.unlock lock;
        cell)
  in
  { lock; all; key }

let my_cell cells = Domain.DLS.get cells.key

let fold_cells cells f init =
  Mutex.lock cells.lock;
  let all = !(cells.all) in
  Mutex.unlock cells.lock;
  List.fold_left f init all

(* --- counters ------------------------------------------------------------ *)

module Counter = struct
  type cell = { mutable n : int }
  type t = Noop | Active of cell cells

  let incr = function
    | Noop -> ()
    | Active cells ->
      let cell = my_cell cells in
      cell.n <- cell.n + 1

  let add counter k =
    match counter with
    | Noop -> ()
    | Active cells ->
      let cell = my_cell cells in
      cell.n <- cell.n + k

  let value = function
    | Noop -> 0
    | Active cells -> fold_cells cells (fun acc cell -> acc + cell.n) 0
end

(* --- gauges -------------------------------------------------------------- *)

module Gauge = struct
  type t = Noop | Active of float Atomic.t

  let set gauge v =
    match gauge with Noop -> () | Active cell -> Atomic.set cell v

  let value = function Noop -> 0.0 | Active cell -> Atomic.get cell
end

(* --- histograms / timers ------------------------------------------------- *)

module Histogram = struct
  type cell = {
    counts : int array; (* one slot per bound + the +inf overflow slot *)
    mutable h_sum : float;
    mutable h_count : int;
  }

  type active = { bounds : float array; cells : cell cells }
  type t = Noop | Active of active

  let make bounds =
    Array.iteri
      (fun i bound ->
        if i > 0 && bound <= bounds.(i - 1) then
          invalid_arg "Obs.Registry.histogram: buckets must strictly increase")
      bounds;
    Active
      {
        bounds;
        cells =
          make_cells (fun () ->
              {
                counts = Array.make (Array.length bounds + 1) 0;
                h_sum = 0.0;
                h_count = 0;
              });
      }

  let bucket_index bounds v =
    let n = Array.length bounds in
    let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe histogram v =
    match histogram with
    | Noop -> ()
    | Active { bounds; cells } ->
      let cell = my_cell cells in
      let slot = bucket_index bounds v in
      cell.counts.(slot) <- cell.counts.(slot) + 1;
      cell.h_sum <- cell.h_sum +. v;
      cell.h_count <- cell.h_count + 1

  let count = function
    | Noop -> 0
    | Active { cells; _ } ->
      fold_cells cells (fun acc cell -> acc + cell.h_count) 0

  let sum = function
    | Noop -> 0.0
    | Active { cells; _ } ->
      fold_cells cells (fun acc cell -> acc +. cell.h_sum) 0.0

  let merged_counts { bounds; cells } =
    let merged = Array.make (Array.length bounds + 1) 0 in
    fold_cells cells
      (fun () cell ->
        Array.iteri (fun i n -> merged.(i) <- merged.(i) + n) cell.counts)
      ();
    merged

  let buckets = function
    | Noop -> [ (infinity, 0) ]
    | Active active ->
      let merged = merged_counts active in
      let cumulative = ref 0 in
      Array.to_list merged
      |> List.mapi (fun i n ->
             cumulative := !cumulative + n;
             let bound =
               if i < Array.length active.bounds then active.bounds.(i)
               else infinity
             in
             (bound, !cumulative))

  let quantile histogram q =
    match histogram with
    | Noop -> 0.0
    | Active active ->
      let merged = merged_counts active in
      let total = Array.fold_left ( + ) 0 merged in
      if total = 0 then 0.0
      else begin
        let rank =
          max 1 (int_of_float (ceil (q *. float_of_int total)))
        in
        let rec go i cumulative =
          if i >= Array.length merged then infinity
          else
            let cumulative = cumulative + merged.(i) in
            if cumulative >= rank then
              if i < Array.length active.bounds then active.bounds.(i)
              else infinity
            else go (i + 1) cumulative
        in
        go 0 0
      end
end

module Timer = struct
  type t = Histogram.t

  let observe = Histogram.observe

  let time timer thunk =
    match timer with
    | Histogram.Noop -> thunk ()
    | Histogram.Active _ ->
      let started = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Histogram.observe timer (Unix.gettimeofday () -. started))
        thunk

  let seconds = Histogram.sum
  let count = Histogram.count
end

(* --- the registry -------------------------------------------------------- *)

type kind =
  | K_counter of Counter.t
  | K_gauge of Gauge.t
  | K_histogram of Histogram.t

type entry = {
  e_name : string;
  e_labels : labels;
  e_help : string;
  e_kind : kind;
}

type t = {
  active : bool;
  reg_lock : Mutex.t;
  mutable entries : entry list; (* reversed registration order *)
  index : (string * labels, entry) Hashtbl.t;
}

let create () =
  {
    active = true;
    reg_lock = Mutex.create ();
    entries = [];
    index = Hashtbl.create 64;
  }

let null =
  {
    active = false;
    reg_lock = Mutex.create ();
    entries = [];
    index = Hashtbl.create 1;
  }

let enabled registry = registry.active

let kind_label = function
  | K_counter _ -> "counter"
  | K_gauge _ -> "gauge"
  | K_histogram _ -> "histogram"

(* find-or-create under the registry lock; recording never comes here *)
let intern registry ~name ~labels ~help make same =
  let labels = canonical_labels labels in
  Mutex.lock registry.reg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.reg_lock)
    (fun () ->
      match Hashtbl.find_opt registry.index (name, labels) with
      | Some entry -> (
        match same entry.e_kind with
        | Some metric -> metric
        | None ->
          invalid_arg
            (Printf.sprintf
               "Obs.Registry: %S is already registered as a %s" name
               (kind_label entry.e_kind)))
      | None ->
        let metric, kind = make () in
        let entry = { e_name = name; e_labels = labels; e_help = help; e_kind = kind } in
        Hashtbl.add registry.index (name, labels) entry;
        registry.entries <- entry :: registry.entries;
        metric)

let counter ?(help = "") ?(labels = []) registry name =
  if not registry.active then Counter.Noop
  else
    intern registry ~name ~labels ~help
      (fun () ->
        let metric = Counter.Active (make_cells (fun () -> { Counter.n = 0 })) in
        (metric, K_counter metric))
      (function K_counter metric -> Some metric | _ -> None)

let gauge ?(help = "") ?(labels = []) registry name =
  if not registry.active then Gauge.Noop
  else
    intern registry ~name ~labels ~help
      (fun () ->
        let metric = Gauge.Active (Atomic.make 0.0) in
        (metric, K_gauge metric))
      (function K_gauge metric -> Some metric | _ -> None)

let histogram ?(help = "") ?(labels = []) ?(buckets = default_time_buckets)
    registry name =
  if not registry.active then Histogram.Noop
  else
    intern registry ~name ~labels ~help
      (fun () ->
        let metric = Histogram.make buckets in
        (metric, K_histogram metric))
      (function K_histogram metric -> Some metric | _ -> None)

let timer ?help ?labels registry name = histogram ?help ?labels registry name

type stage = Parse | Typecheck | Synthesize | Simulate | Check | Merge

let stage_name = function
  | Parse -> "stage_parse_seconds"
  | Typecheck -> "stage_typecheck_seconds"
  | Synthesize -> "stage_synthesize_seconds"
  | Simulate -> "stage_simulate_seconds"
  | Check -> "stage_check_seconds"
  | Merge -> "stage_merge_seconds"

let stage_help = function
  | Parse -> "property/proposition parsing time"
  | Typecheck -> "MiniC typechecking time"
  | Synthesize -> "explicit AR-automaton synthesis time"
  | Simulate -> "backend simulation time (contains check)"
  | Check -> "per-trigger checker latency"
  | Merge -> "campaign result/trace merge time"

let stage_timer registry stage =
  timer ~help:(stage_help stage) registry (stage_name stage)

(* --- snapshots ----------------------------------------------------------- *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of { count : int; sum : float; buckets : (float * int) list }

type metric = { name : string; labels : labels; help : string; value : value }

let snapshot registry =
  Mutex.lock registry.reg_lock;
  let entries = registry.entries in
  Mutex.unlock registry.reg_lock;
  List.rev_map
    (fun entry ->
      let value =
        match entry.e_kind with
        | K_counter metric -> Counter_value (Counter.value metric)
        | K_gauge metric -> Gauge_value (Gauge.value metric)
        | K_histogram metric ->
          Histogram_value
            {
              count = Histogram.count metric;
              sum = Histogram.sum metric;
              buckets = Histogram.buckets metric;
            }
      in
      { name = entry.e_name; labels = entry.e_labels; help = entry.e_help; value })
    entries

let total registry name =
  List.fold_left
    (fun acc metric ->
      match metric.value with
      | Counter_value n when String.equal metric.name name -> acc + n
      | _ -> acc)
    0 (snapshot registry)

let sum_seconds registry name =
  List.fold_left
    (fun acc metric ->
      match metric.value with
      | Histogram_value { sum; _ } when String.equal metric.name name ->
        acc +. sum
      | _ -> acc)
    0.0 (snapshot registry)
