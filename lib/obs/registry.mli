(** Process-wide metrics and profiling registry.

    A registry holds named metrics — monotonic counters, gauges,
    fixed-bucket histograms and stage timers — identified by a name plus
    an optional label set (e.g. [("op", "read")]). Recording is
    domain-safe and shard-free on the hot path: every metric keeps one
    private cell per domain ([Domain.DLS]), registered once per domain
    under the metric's mutex, so campaign workers never serialize on a
    metrics lock; reads ([value], [snapshot], the exporters) sum over
    the per-domain cells.

    {!null} is the disabled registry: every metric it hands out is a
    shared no-op whose recording operations compile to one pattern
    match, so instrumented hot paths cost nothing measurable when
    metrics are off (the bench gates this at <= 5 %). *)

type t

val create : unit -> t
(** A fresh, enabled registry. *)

val null : t
(** The disabled registry: hands out no-op metrics, snapshots empty. *)

val enabled : t -> bool

type labels = (string * string) list
(** Label pairs; canonicalized by sorting on the key, so the same set
    in any order names the same metric. *)

(** {2 Metric handles}

    Handles are cheap to keep and safe to share across domains.
    Requesting the same (name, labels) twice returns the same metric.
    @raise Invalid_argument when a name+labels is re-requested as a
    different metric kind. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  (** Exact sum over all domains that ever recorded. *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Record one observation into its bucket (first upper bound [>=]
      the value; larger values land in the implicit [+inf] bucket). *)

  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound, cumulative_count)] per bucket, ending with the
      [(infinity, count)] overflow bucket. *)

  val quantile : t -> float -> float
  (** Upper bound of the bucket holding the [q]-th quantile observation
      (0 when empty, [infinity] when it falls in the overflow bucket).
      Bucket-resolution only — the usual fixed-bucket estimate. *)
end

module Timer : sig
  type t = Histogram.t
  (** A timer is a histogram of durations in seconds. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and record its wall-clock duration. On a no-op
      timer the thunk runs without any clock reads. *)

  val observe : t -> float -> unit
  val seconds : t -> float
  (** Total recorded seconds ({!Histogram.sum}). *)

  val count : t -> int
end

(** {2 Registration} *)

val counter : ?help:string -> ?labels:labels -> t -> string -> Counter.t
val gauge : ?help:string -> ?labels:labels -> t -> string -> Gauge.t

val histogram :
  ?help:string -> ?labels:labels -> ?buckets:float array -> t -> string ->
  Histogram.t
(** [buckets] are strictly increasing upper bounds (default
    {!default_time_buckets}); the [+inf] overflow bucket is implicit. *)

val timer : ?help:string -> ?labels:labels -> t -> string -> Timer.t

(** {2 Stage timers}

    The pipeline stages every front end shares. Stage timings overlap
    by construction — [Check] (per-trigger checker latency) runs inside
    [Simulate] — so they are a breakdown, not a partition. *)

type stage = Parse | Typecheck | Synthesize | Simulate | Check | Merge

val stage_name : stage -> string
(** ["stage_<stage>_seconds"], e.g. [Simulate -> "stage_simulate_seconds"]. *)

val stage_timer : t -> stage -> Timer.t

val default_time_buckets : float array
(** Log-spaced seconds: 1us .. 10s. *)

(** {2 Snapshots} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of { count : int; sum : float; buckets : (float * int) list }

type metric = { name : string; labels : labels; help : string; value : value }

val snapshot : t -> metric list
(** All metrics in registration order. [null] snapshots to [[]]. *)

val total : t -> string -> int
(** Sum of every counter with this name, over all label sets. *)

val sum_seconds : t -> string -> float
(** Sum of every histogram/timer [sum] with this name, over all label
    sets — e.g. [sum_seconds r (stage_name Simulate)]. *)
