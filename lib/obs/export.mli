(** Exporters for {!Registry} snapshots.

    Two formats:

    - {!prometheus}: the Prometheus text exposition format
      ([# HELP]/[# TYPE] headers, [name{label="v"} value] samples,
      histograms as cumulative [_bucket{le="..."}] series plus [_sum]
      and [_count]).
    - {!to_jsonl}: one JSON object per metric per line, the snapshot
      schema consumed by [tcheck metrics] and the CI gate:
      {v
        {"metric":NAME,"type":"counter","labels":{...},"value":INT}
        {"metric":NAME,"type":"gauge","labels":{...},"value":NUM}
        {"metric":NAME,"type":"histogram","labels":{...},"count":INT,
         "sum":NUM,"buckets":[{"le":NUM|"+Inf","count":INT},...]}
      v}
      Histogram bucket counts are cumulative; the last bucket has
      [le = "+Inf"] and a count equal to the [count] field.

    Both render the {!Registry.null} registry as the empty string. *)

val prometheus : Registry.t -> string
val to_jsonl : Registry.t -> string

val write_jsonl : string -> Registry.t -> unit
(** Write {!to_jsonl} to a file (truncating). *)

(** {2 Snapshot validation} *)

module Json : sig
  (** A minimal JSON reader, enough to parse what {!to_jsonl} emits. *)

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
end

val validate_snapshot_line : string -> (unit, string) result
(** Check one line against the JSONL snapshot schema above, including
    the cumulative-bucket and terminal [+Inf] invariants. *)

val validate_snapshot_file : string -> (int, string) result
(** Validate every non-empty line of a snapshot file; [Ok n] is the
    number of metrics seen. [Error] carries the first offending line
    number and reason (also for an unreadable or empty file). *)
