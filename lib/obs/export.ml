(* Renderers are deliberately allocation-light and deterministic: the
   same snapshot always renders to the same bytes (goldens in
   test/test_obs.ml rely on this), so floats go through one canonical
   formatter. *)

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* --- Prometheus text format ---------------------------------------------- *)

let prom_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (key, value) -> Printf.sprintf "%s=\"%s\"" key (escape value))
           labels)
    ^ "}"

(* labels with one extra pair appended (the histogram [le]) *)
let prom_labels_with labels extra = prom_labels (labels @ [ extra ])

let prom_type = function
  | Registry.Counter_value _ -> "counter"
  | Registry.Gauge_value _ -> "gauge"
  | Registry.Histogram_value _ -> "histogram"

let prometheus registry =
  let buffer = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (metric : Registry.metric) ->
      if not (Hashtbl.mem seen metric.name) then begin
        Hashtbl.add seen metric.name ();
        if metric.help <> "" then
          Buffer.add_string buffer
            (Printf.sprintf "# HELP %s %s\n" metric.name metric.help);
        Buffer.add_string buffer
          (Printf.sprintf "# TYPE %s %s\n" metric.name
             (prom_type metric.value))
      end;
      match metric.value with
      | Registry.Counter_value n ->
        Buffer.add_string buffer
          (Printf.sprintf "%s%s %d\n" metric.name (prom_labels metric.labels) n)
      | Registry.Gauge_value v ->
        Buffer.add_string buffer
          (Printf.sprintf "%s%s %s\n" metric.name (prom_labels metric.labels)
             (render_float v))
      | Registry.Histogram_value { count; sum; buckets } ->
        List.iter
          (fun (le, cumulative) ->
            let le =
              if Float.is_finite le then render_float le else "+Inf"
            in
            Buffer.add_string buffer
              (Printf.sprintf "%s_bucket%s %d\n" metric.name
                 (prom_labels_with metric.labels ("le", le))
                 cumulative))
          buckets;
        Buffer.add_string buffer
          (Printf.sprintf "%s_sum%s %s\n" metric.name
             (prom_labels metric.labels) (render_float sum));
        Buffer.add_string buffer
          (Printf.sprintf "%s_count%s %d\n" metric.name
             (prom_labels metric.labels) count))
    (Registry.snapshot registry);
  Buffer.contents buffer

(* --- JSONL snapshot ------------------------------------------------------ *)

let json_string s = "\"" ^ escape s ^ "\""

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (key, value) -> json_string key ^ ":" ^ json_string value)
         labels)
  ^ "}"

let metric_to_json (metric : Registry.metric) =
  let base =
    Printf.sprintf "\"metric\":%s,\"type\":%s,\"labels\":%s"
      (json_string metric.name)
      (json_string (prom_type metric.value))
      (json_labels metric.labels)
  in
  match metric.value with
  | Registry.Counter_value n -> Printf.sprintf "{%s,\"value\":%d}" base n
  | Registry.Gauge_value v ->
    Printf.sprintf "{%s,\"value\":%s}" base (render_float v)
  | Registry.Histogram_value { count; sum; buckets } ->
    let buckets =
      String.concat ","
        (List.map
           (fun (le, cumulative) ->
             Printf.sprintf "{\"le\":%s,\"count\":%d}"
               (if Float.is_finite le then render_float le
                else json_string "+Inf")
               cumulative)
           buckets)
    in
    Printf.sprintf "{%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" base count
      (render_float sum) buckets

let to_jsonl registry =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun metric ->
      Buffer.add_string buffer (metric_to_json metric);
      Buffer.add_char buffer '\n')
    (Registry.snapshot registry);
  Buffer.contents buffer

let write_jsonl path registry =
  let oc = open_out_bin path in
  output_string oc (to_jsonl registry);
  close_out oc

(* --- JSON reader --------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse line =
    let n = String.length line in
    let pos = ref 0 in
    let error msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n
        && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let literal word value =
      let len = String.length word in
      if !pos + len <= n && String.sub line !pos len = word then begin
        pos := !pos + len;
        value
      end
      else error "bad literal"
    in
    let parse_string () =
      if !pos >= n || line.[!pos] <> '"' then error "expected '\"'";
      incr pos;
      let buffer = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            if !pos >= n then error "dangling escape";
            (match line.[!pos] with
            | '"' -> Buffer.add_char buffer '"'
            | '\\' -> Buffer.add_char buffer '\\'
            | '/' -> Buffer.add_char buffer '/'
            | 'n' -> Buffer.add_char buffer '\n'
            | 'r' -> Buffer.add_char buffer '\r'
            | 't' -> Buffer.add_char buffer '\t'
            | 'b' -> Buffer.add_char buffer '\b'
            | 'u' ->
              if !pos + 4 >= n then error "short \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub line (!pos + 1) 4)
                with _ -> error "bad \\u escape"
              in
              if code < 256 then Buffer.add_char buffer (Char.chr code)
              else Buffer.add_char buffer '?';
              pos := !pos + 4
            | c -> error (Printf.sprintf "unknown escape \\%c" c));
            incr pos;
            go ()
          | c ->
            Buffer.add_char buffer c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buffer
    in
    let parse_number () =
      let start = !pos in
      let numeral c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numeral line.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub line start (!pos - start)) with
      | Some v -> v
      | None -> error "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      if !pos >= n then error "missing value"
      else
        match line.[!pos] with
        | '"' -> Str (parse_string ())
        | 't' -> literal "true" (Bool true)
        | 'f' -> literal "false" (Bool false)
        | 'n' -> literal "null" Null
        | '{' ->
          incr pos;
          skip_ws ();
          if !pos < n && line.[!pos] = '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let members = ref [] in
            let rec member () =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              if !pos >= n || line.[!pos] <> ':' then error "expected ':'";
              incr pos;
              members := (key, parse_value ()) :: !members;
              skip_ws ();
              if !pos < n && line.[!pos] = ',' then begin
                incr pos;
                member ()
              end
              else if !pos < n && line.[!pos] = '}' then incr pos
              else error "expected ',' or '}'"
            in
            member ();
            Obj (List.rev !members)
          end
        | '[' ->
          incr pos;
          skip_ws ();
          if !pos < n && line.[!pos] = ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let items = ref [] in
            let rec item () =
              items := parse_value () :: !items;
              skip_ws ();
              if !pos < n && line.[!pos] = ',' then begin
                incr pos;
                item ()
              end
              else if !pos < n && line.[!pos] = ']' then incr pos
              else error "expected ',' or ']'"
            in
            item ();
            Arr (List.rev !items)
          end
        | '-' | '0' .. '9' -> Num (parse_number ())
        | c -> error (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let value = parse_value () in
      skip_ws ();
      if !pos <> n then error "trailing input";
      value
    with
    | value -> Ok value
    | exception Bad msg -> Error msg
end

(* --- schema validation --------------------------------------------------- *)

let validate_snapshot_line line =
  let ( let* ) = Result.bind in
  let* json = Json.parse line in
  let* members =
    match json with
    | Json.Obj members -> Ok members
    | _ -> Error "metric line is not a JSON object"
  in
  let field key =
    match List.assoc_opt key members with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing %S field" key)
  in
  let str key =
    let* v = field key in
    match v with
    | Json.Str s -> Ok s
    | _ -> Error (Printf.sprintf "%S must be a string" key)
  in
  let num key =
    let* v = field key in
    match v with
    | Json.Num v -> Ok v
    | _ -> Error (Printf.sprintf "%S must be a number" key)
  in
  let int key =
    let* v = num key in
    if Float.is_integer v && v >= 0.0 then Ok (int_of_float v)
    else Error (Printf.sprintf "%S must be a non-negative integer" key)
  in
  let* name = str "metric" in
  let* () = if name = "" then Error "empty metric name" else Ok () in
  let* labels = field "labels" in
  let* () =
    match labels with
    | Json.Obj members
      when List.for_all
             (fun (_, v) -> match v with Json.Str _ -> true | _ -> false)
             members ->
      Ok ()
    | _ -> Error "\"labels\" must be an object of strings"
  in
  let* kind = str "type" in
  match kind with
  | "counter" ->
    let* _ = int "value" in
    Ok ()
  | "gauge" ->
    let* _ = num "value" in
    Ok ()
  | "histogram" ->
    let* count = int "count" in
    let* _ = num "sum" in
    let* buckets = field "buckets" in
    let* buckets =
      match buckets with
      | Json.Arr (_ :: _ as buckets) -> Ok buckets
      | Json.Arr [] -> Error "histogram needs at least the +Inf bucket"
      | _ -> Error "\"buckets\" must be an array"
    in
    let parse_bucket = function
      | Json.Obj members -> (
        match (List.assoc_opt "le" members, List.assoc_opt "count" members) with
        | Some le, Some (Json.Num c) when Float.is_integer c && c >= 0.0 -> (
          match le with
          | Json.Num bound -> Ok (bound, int_of_float c)
          | Json.Str "+Inf" -> Ok (infinity, int_of_float c)
          | _ -> Error "bucket \"le\" must be a number or \"+Inf\"")
        | _ -> Error "bucket needs \"le\" and an integer \"count\"")
      | _ -> Error "bucket is not an object"
    in
    let rec walk previous_le previous_count = function
      | [] -> Ok ()
      | bucket :: rest ->
        let* le, c = parse_bucket bucket in
        if le <= previous_le then Error "bucket bounds must strictly increase"
        else if c < previous_count then Error "bucket counts must be cumulative"
        else if (not (Float.is_finite le)) && rest <> [] then
          Error "only the last bucket may be +Inf"
        else walk le c rest
    in
    let* () = walk neg_infinity 0 buckets in
    let* last_le, last_count =
      match List.rev buckets with
      | last :: _ -> parse_bucket last
      | [] -> Error "empty buckets"
    in
    if Float.is_finite last_le then Error "last bucket must be +Inf"
    else if last_count <> count then
      Error "last bucket count must equal \"count\""
    else Ok ()
  | other -> Error (Printf.sprintf "unknown metric type %S" other)

let validate_snapshot_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let rec go line_no ok =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        if ok = 0 then Error "empty snapshot (no metric lines)" else Ok ok
      | "" -> go (line_no + 1) ok
      | line -> (
        match validate_snapshot_line line with
        | Ok () -> go (line_no + 1) (ok + 1)
        | Error msg ->
          close_in ic;
          Error (Printf.sprintf "line %d: %s" line_no msg))
    in
    go 1 0
