type t = {
  chk : Sctc.Checker.t;
  mutable init_done : bool;
  mutable armed_cycle : int option;
}

let attach_at soc ~flag_address chk =
  let monitor = { chk; init_done = false; armed_cycle = None } in
  let kernel = Soc.kernel soc in
  let clock = Soc.clock soc in
  let body () =
    (* handshake: wait for the ESW to set its initialization flag *)
    let rec wait_initialized () =
      Sim.Clock.wait_posedge clock;
      if Soc.read_mem soc flag_address = 0 then wait_initialized ()
    in
    wait_initialized ();
    monitor.init_done <- true;
    monitor.armed_cycle <- Some (Sim.Clock.cycles clock);
    let trace = Sctc.Checker.trace chk in
    if Sctc.Trace.enabled trace then
      Sctc.Trace.emit trace
        (Sctc.Trace.Handshake_armed { source = "esw_monitor" });
    (* monitor the temporal properties on every clock edge *)
    let rec monitor_loop () =
      Sctc.Checker.trigger chk;
      Sim.Clock.wait_posedge clock;
      monitor_loop ()
    in
    monitor_loop ()
  in
  ignore (Sim.Kernel.spawn kernel ~name:"esw_monitor" body);
  monitor

let attach soc ~flag chk =
  attach_at soc ~flag_address:(Mcc.Symtab.address_of (Soc.symtab soc) flag) chk

let initialized monitor = monitor.init_done
let armed_at_cycle monitor = monitor.armed_cycle
let checker monitor = monitor.chk
