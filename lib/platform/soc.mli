(** The approach-1 platform: microprocessor + memory + devices on one bus,
    clocked by the simulation kernel (Fig. 2 of the paper).

    The SoC owns the kernel, a clock, the CPU (stepped one instruction per
    rising edge), RAM, the data-flash controller (ticked every cycle), the
    stimulus port feeding constrained-random values into [nondet], the
    testbench mailbox, and a console. The temporal checker attaches to the
    clock and reads software state through {!read_mem} — the
    [sctc_sc_read_uint] memory interface of the paper. *)

type t

type config = {
  clock_period : int;
  flash : Dataflash.Flash.config;
  flash_faults : Dataflash.Flash.fault_config;
      (** probabilistic fault-injection overlay (default
          {!Dataflash.Flash.no_faults}) *)
  seed : int;  (** master PRNG seed for stimulus *)
}

val default_config : config

val create : ?config:config -> unit -> t

val kernel : t -> Sim.Kernel.t
val clock : t -> Sim.Clock.t
val cpu : t -> Cpu.Cpu_core.t
val bus : t -> Cpu.Bus.t
val flash : t -> Dataflash.Flash.t
val mailbox : t -> Mailbox.t
val prng : t -> Stimuli.Prng.t

val load : t -> Mcc.Codegen.compiled -> unit
(** Load a compiled program image at address 0 and record its symbol
    table. *)

val symtab : t -> Mcc.Symtab.t
(** @raise Invalid_argument before {!load}. *)

val read_mem : t -> int -> int
(** The checker's memory interface: observe a word without generating bus
    traffic. *)

val read_var : t -> string -> int
(** Variable observation via the symbol table (paper flow steps a/b). *)

val console_output : t -> int list
(** Values written to the console port, oldest first. *)

val run : ?max_cycles:int -> t -> unit
(** Advance the simulation (resumable). Stops early when the CPU halts or
    traps. *)

val cycles : t -> int

val cpu_stopped : t -> bool

val restart_cpu : t -> unit
(** Reset the CPU to the entry point (fresh PC/registers; memory, flash and
    devices keep their state). *)
