module Flash = Dataflash.Flash
module Flash_ctrl = Dataflash.Flash_ctrl
module Map = Cpu.Memory_map

type config = {
  clock_period : int;
  flash : Flash.config;
  flash_faults : Flash.fault_config;
  seed : int;
}

let default_config =
  {
    clock_period = 10;
    flash = Flash.default_config;
    flash_faults = Flash.no_faults;
    seed = 42;
  }

type t = {
  cfg : config;
  kernel : Sim.Kernel.t;
  clock : Sim.Clock.t;
  bus : Cpu.Bus.t;
  ram : Cpu.Ram.t;
  core : Cpu.Cpu_core.t;
  flash_ctrl : Flash_ctrl.t;
  mbox : Mailbox.t;
  master_prng : Stimuli.Prng.t;
  stimulus_prng : Stimuli.Prng.t;
  console : int list ref; (* reversed *)
  mutable program : Mcc.Codegen.compiled option;
}

let create ?(config = default_config) () =
  let kernel = Sim.Kernel.create () in
  let clock =
    Sim.Clock.create kernel ~name:"cpu_clk" ~period:config.clock_period ()
  in
  let bus = Cpu.Bus.create () in
  let ram = Cpu.Ram.create ~name:"main-ram" ~base:0 ~size:0x8000 in
  Cpu.Bus.attach bus (Cpu.Ram.device ram);
  let master_prng = Stimuli.Prng.create ~seed:config.seed in
  let flash_model =
    Flash.create ~prng:(Stimuli.Prng.split master_prng "flash-faults")
      ~faults:config.flash_faults config.flash
  in
  let flash_ctrl = Flash_ctrl.create flash_model in
  Cpu.Bus.attach bus (Flash_ctrl.ctrl_device flash_ctrl ~base:Map.flash_ctrl_base);
  Cpu.Bus.attach bus
    (Flash_ctrl.window_device flash_ctrl ~base:Map.flash_window_base
       ~size:(min Map.flash_window_size (Flash.size_words flash_model)));
  let stimulus_prng = Stimuli.Prng.split master_prng "stimulus" in
  let console = ref [] in
  Cpu.Bus.attach bus
    {
      Cpu.Bus.dev_name = "stimulus";
      base = Map.stimulus_port;
      size = 1;
      read = (fun _ -> Stimuli.Prng.bits stimulus_prng land 0xFFFFF);
      write = (fun _ _ -> ());
    };
  Cpu.Bus.attach bus
    {
      Cpu.Bus.dev_name = "console";
      base = Map.console_port;
      size = 1;
      read = (fun _ -> 0);
      write = (fun _ v -> console := v :: !console);
    };
  let mbox = Mailbox.create () in
  Cpu.Bus.attach bus (Mailbox.device mbox ~base:Map.mailbox_base);
  let core =
    Cpu.Cpu_core.create bus ~start_pc:0 ~stack_pointer:Map.stack_top ()
  in
  let soc =
    {
      cfg = config;
      kernel;
      clock;
      bus;
      ram;
      core;
      flash_ctrl;
      mbox;
      master_prng;
      stimulus_prng;
      console;
      program = None;
    }
  in
  (* CPU: one instruction per rising edge; flash advances every cycle *)
  ignore
    (Sim.Kernel.spawn kernel ~name:"cpu" (fun () ->
         let rec cycle () =
           Sim.Clock.wait_posedge clock;
           Flash.tick flash_model;
           if Cpu.Cpu_core.running core then Cpu.Cpu_core.step core;
           cycle ()
         in
         cycle ()));
  soc

let kernel soc = soc.kernel
let clock soc = soc.clock
let cpu soc = soc.core
let bus soc = soc.bus
let flash soc = Flash_ctrl.flash soc.flash_ctrl
let mailbox soc = soc.mbox
let prng soc = soc.master_prng

let load soc compiled =
  Cpu.Ram.load soc.ram 0 compiled.Mcc.Codegen.words;
  soc.program <- Some compiled

let symtab soc =
  match soc.program with
  | Some compiled -> compiled.Mcc.Codegen.symtab
  | None -> invalid_arg "Soc.symtab: no program loaded"

let read_mem soc addr = Cpu.Bus.peek soc.bus addr

let read_var soc name =
  read_mem soc (Mcc.Symtab.address_of (symtab soc) name)

let console_output soc = List.rev !(soc.console)

let run ?(max_cycles = 100_000) soc =
  let horizon =
    Sim.Kernel.now soc.kernel + (max_cycles * soc.cfg.clock_period)
  in
  Sim.Kernel.run ~max_time:horizon soc.kernel

let cycles soc = Sim.Clock.cycles soc.clock
let cpu_stopped soc = not (Cpu.Cpu_core.running soc.core)

let restart_cpu soc =
  Cpu.Cpu_core.reset soc.core ~start_pc:0 ~stack_pointer:Map.stack_top ()
