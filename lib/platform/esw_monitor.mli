(** The ESW monitor module (paper Fig. 3).

    Wraps the SCTC into the SoC: it is triggered by the CPU clock (the
    paper's real-time timing reference), first performs the handshake with
    the embedded software — polling the initialization [flag] variable in
    processor memory — and only then arms the temporal property monitors.
    From that point on, every rising clock edge samples the propositions
    and steps every AR-automaton.

    When the checker carries a live {!Sctc.Trace.t} bus, the monitor
    publishes [Handshake_armed] (source ["esw_monitor"]) once the flag
    poll completes and a [Trigger] event per monitored clock edge. *)

type t

val attach : Soc.t -> flag:string -> Sctc.Checker.t -> t
(** [attach soc ~flag checker] spawns the monitor process. [flag] is the
    name of the software's initialization global (paper: [bool flag],
    lines 3–5 of Fig. 3). Properties and propositions must already be
    registered with [checker]. *)

val attach_at : Soc.t -> flag_address:int -> Sctc.Checker.t -> t
(** Same, with an explicit memory address for the flag. *)

val initialized : t -> bool
(** Has the handshake completed? *)

val armed_at_cycle : t -> int option
(** Clock cycle at which monitoring started. *)

val checker : t -> Sctc.Checker.t
