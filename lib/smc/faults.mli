(** The probabilistic stimuli layer of statistical model checking: one
    record naming every fault-injection knob, applied to a
    {!Verif.Session.config} before the session is built.

    Three fault classes, each drawn from its own {!Stimuli.Prng}
    substream of the session seed so every sampled run is replayable
    from (seed, fault config), and enabling one class never shifts the
    draws of another:

    - flash bit decay ({!Dataflash.Flash.fault_config.decay_prob}) —
      silent retention loss, per tick;
    - power loss mid-operation
      ({!Dataflash.Flash.fault_config.power_loss_prob}) — torn writes
      and partial block erases;
    - handshake timing jitter (derived model only) — statements
      probabilistically stretched by extra time units, so busy-wait
      handshakes can expire.

    A zero-probability knob draws nothing: {!none} is bit-identical to
    the unfaulted model (golden traces hold byte for byte). *)

type t = {
  decay : float;  (** per-tick flash bit-decay probability *)
  power_loss : float;  (** per-operation power-loss probability *)
  jitter_prob : float;  (** per-statement jitter probability *)
  jitter_max : int;  (** max extra time units a jittered statement takes *)
}

val none : t
val is_none : t -> bool

val flash_faults : t -> Dataflash.Flash.fault_config
(** The flash-model slice of the configuration. *)

val apply : t -> Verif.Session.config -> Verif.Session.config
(** Set the session's [flash_faults]/[jitter_prob]/[jitter_max] fields. *)

val parse_knob : string -> t -> (t, string) result
(** Parse one command-line knob — ["decay=P"], ["power-loss=P"] or
    ["jitter=P:MAX"] — into an update of the given record. *)

val of_specs : string list -> (t, string) result
(** Fold {!parse_knob} over a knob list, starting from {!none}. *)

val to_string : t -> string
(** Knob syntax round trip (["none"] for {!none}), for labels/logs. *)
