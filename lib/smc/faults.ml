module Flash = Dataflash.Flash

type t = {
  decay : float;
  power_loss : float;
  jitter_prob : float;
  jitter_max : int;
}

let none = { decay = 0.0; power_loss = 0.0; jitter_prob = 0.0; jitter_max = 0 }

let is_none faults = faults = none

let flash_faults faults =
  { Flash.decay_prob = faults.decay; power_loss_prob = faults.power_loss }

let apply faults config =
  {
    config with
    Verif.Session.flash_faults = flash_faults faults;
    jitter_prob = faults.jitter_prob;
    jitter_max = faults.jitter_max;
  }

let prob_of_string knob value =
  match float_of_string_opt value with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | Some _ -> Error (Printf.sprintf "%s: probability must be in [0,1]" knob)
  | None -> Error (Printf.sprintf "%s: expected a probability, got %S" knob value)

(* "decay=P" | "power-loss=P" | "jitter=P:MAX" *)
let parse_knob spec faults =
  match String.index_opt spec '=' with
  | None ->
    Error
      (Printf.sprintf
         "%S: expected decay=P, power-loss=P or jitter=P:MAX" spec)
  | Some i -> (
    let knob = String.sub spec 0 i in
    let value = String.sub spec (i + 1) (String.length spec - i - 1) in
    match knob with
    | "decay" ->
      Result.map (fun p -> { faults with decay = p }) (prob_of_string knob value)
    | "power-loss" ->
      Result.map
        (fun p -> { faults with power_loss = p })
        (prob_of_string knob value)
    | "jitter" -> (
      match String.index_opt value ':' with
      | None -> Error "jitter: expected jitter=PROB:MAX_EXTRA_UNITS"
      | Some j -> (
        let prob = String.sub value 0 j in
        let extra = String.sub value (j + 1) (String.length value - j - 1) in
        match (prob_of_string knob prob, int_of_string_opt extra) with
        | Ok p, Some m when m >= 1 ->
          Ok { faults with jitter_prob = p; jitter_max = m }
        | Ok _, _ -> Error "jitter: MAX_EXTRA_UNITS must be an int >= 1"
        | (Error _ as e), _ -> e))
    | other -> Error (Printf.sprintf "unknown fault knob %S" other))

let of_specs specs =
  List.fold_left
    (fun acc spec -> Result.bind acc (parse_knob spec))
    (Ok none) specs

let to_string faults =
  let parts =
    (if faults.decay > 0.0 then [ Printf.sprintf "decay=%g" faults.decay ]
     else [])
    @ (if faults.power_loss > 0.0 then
         [ Printf.sprintf "power-loss=%g" faults.power_loss ]
       else [])
    @
    if faults.jitter_prob > 0.0 && faults.jitter_max > 0 then
      [ Printf.sprintf "jitter=%g:%d" faults.jitter_prob faults.jitter_max ]
    else []
  in
  match parts with [] -> "none" | parts -> String.concat "," parts
