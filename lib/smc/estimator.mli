(** Statistical estimators over Bernoulli verdict streams.

    Pure consumers of success/failure booleans — nothing here touches a
    session or a simulator, so the estimator test battery is exactly as
    deterministic as its input stream. {!Runner} feeds them campaign
    outcomes in emission order. *)

(** Fixed sample size: the additive Chernoff–Hoeffding bound. *)
module Chernoff : sig
  val sample_count : eps:float -> delta:float -> int
  (** [ceil (ln(2/delta) / (2 eps^2))] — with that many samples,
      [P(|p_hat - p| > eps) <= delta].
      @raise Invalid_argument unless [eps, delta] are in (0,1). *)

  type estimate = {
    samples : int;
    successes : int;
    p_hat : float;
    eps : float;  (** half-width of the confidence interval *)
    delta : float;  (** P(|p_hat - p| > eps) <= delta *)
  }

  val estimate :
    eps:float -> delta:float -> samples:int -> successes:int -> estimate
  (** Package a completed run.
      @raise Invalid_argument if [samples] is below {!sample_count} or
      [successes] is out of range. *)
end

(** Wald's sequential probability ratio test of
    [H0: p >= theta + delta] against [H1: p <= theta - delta], with
    error bounds [alpha] (rejecting a true H0) and [beta] (accepting a
    false H0), truncated at [max_samples]. *)
module Sprt : sig
  type decision =
    | H0  (** p >= theta + delta: the property holds often enough *)
    | H1  (** p <= theta - delta *)

  type status = Undecided | Decided of decision

  type t

  val create :
    ?max_samples:int ->
    theta:float ->
    delta:float ->
    alpha:float ->
    beta:float ->
    unit ->
    t
  (** [max_samples] defaults to {!chernoff_bound} — the truncation that
      guarantees termination when the true [p] sits inside the
      indifference region [(theta - delta, theta + delta)], where
      neither boundary attracts the likelihood-ratio walk.
      @raise Invalid_argument unless [0 < theta - delta],
      [theta + delta < 1], [alpha, beta] in (0,1), [max_samples >= 1]. *)

  val chernoff_bound : delta:float -> alpha:float -> beta:float -> int
  (** The fixed-sample-size competitor for the same hypothesis:
      {!Chernoff.sample_count} at accuracy [delta] and confidence
      [min alpha beta]. Also the default truncation point. *)

  val observe : t -> bool -> status
  (** Feed one sample ([true] = the property held) and return the
      status after it. At [max_samples] without a boundary crossing the
      test is truncated: decided by [p_hat >= theta], flagged
      {!forced}. @raise Invalid_argument once already decided. *)

  val status : t -> status
  val samples : t -> int
  val successes : t -> int
  val max_samples : t -> int

  val forced : t -> bool
  (** The decision came from truncation, not a Wald boundary — the
      answer inside the indifference region is allowed to go either
      way. *)

  val p_hat : t -> float
  (** [successes/samples] so far; [nan] before the first sample. *)
end
