module Campaign = Verif.Campaign
module Registry = Obs.Registry

type spec =
  | Fixed of { eps : float; delta : float }
  | Sequential of {
      theta : float;
      delta : float;
      alpha : float;
      beta : float;
      max_samples : int option;
    }

type decision = Estimate | Accept_h0 | Accept_h1

type report = {
  label : string;
  samples : int;
  successes : int;
  p_hat : float;
  decision : decision;
  forced : bool;
  early_stopped : bool;
  chernoff_n : int;
  errors : (string * string) list;
  wall_seconds : float;
  stream : Campaign.stream_stats option;
}

(* per-campaign observability: how many samples the estimator drew,
   where a sequential test stopped, and what it decided *)
let record_report metrics report =
  let labels = [ ("campaign", report.label) ] in
  Registry.Counter.add
    (Registry.counter metrics "smc_samples_total" ~labels
       ~help:"samples an SMC estimator consumed")
    report.samples;
  Registry.Counter.add
    (Registry.counter metrics "smc_successes_total" ~labels
       ~help:"samples on which the property held")
    report.successes;
  Registry.Gauge.set
    (Registry.gauge metrics "smc_early_stop_at" ~labels
       ~help:"sample index at which the campaign stopped drawing")
    (float_of_int report.samples);
  Registry.Gauge.set
    (Registry.gauge metrics "smc_decision" ~labels
       ~help:"1 = H0 accepted, -1 = H1 accepted, 0 = point estimate")
    (match report.decision with
    | Accept_h0 -> 1.0
    | Accept_h1 -> -1.0
    | Estimate -> 0.0);
  report

let run ?(metrics = Registry.null) ?workers ?chunk ?window ?(sinks = [])
    ~label ~job ~succeeded spec =
  match spec with
  | Fixed { eps; delta } ->
    let samples = Estimator.Chernoff.sample_count ~eps ~delta in
    let successes = ref 0 in
    let counter =
      Campaign.sink (fun outcome -> if succeeded outcome then incr successes)
    in
    let summary =
      Campaign.run_stream ~metrics ?workers ?chunk ?window
        ~sinks:(sinks @ [ counter ])
        (List.init samples (fun index -> job ~index))
    in
    let estimate =
      Estimator.Chernoff.estimate ~eps ~delta ~samples ~successes:!successes
    in
    record_report metrics
      {
        label;
        samples;
        successes = estimate.Estimator.Chernoff.successes;
        p_hat = estimate.Estimator.Chernoff.p_hat;
        decision = Estimate;
        forced = false;
        early_stopped = false;
        chernoff_n = samples;
        errors = Campaign.errors summary;
        wall_seconds = summary.Campaign.wall_seconds;
        stream = summary.Campaign.stream;
      }
  | Sequential { theta; delta; alpha; beta; max_samples } ->
    let test =
      Estimator.Sprt.create ?max_samples ~theta ~delta ~alpha ~beta ()
    in
    let max_samples = Estimator.Sprt.max_samples test in
    let cancel = Campaign.cancellation () in
    (* verdicts arrive in emission (= job) order; once a Wald boundary
       is crossed the rest of the campaign is cancelled — outcomes of
       jobs already claimed still stream through but are no longer
       consumed by the test *)
    let decider =
      Campaign.sink (fun outcome ->
          match Estimator.Sprt.status test with
          | Estimator.Sprt.Decided _ -> ()
          | Estimator.Sprt.Undecided -> (
            match Estimator.Sprt.observe test (succeeded outcome) with
            | Estimator.Sprt.Decided _ -> Campaign.cancel cancel
            | Estimator.Sprt.Undecided -> ()))
    in
    let chunk = match chunk with Some c -> c | None -> 1 in
    let summary =
      Campaign.run_stream ~metrics ?workers ~chunk ?window ~cancel
        ~sinks:(sinks @ [ decider ])
        (List.init max_samples (fun index -> job ~index))
    in
    let samples = Estimator.Sprt.samples test in
    record_report metrics
      {
        label;
        samples;
        successes = Estimator.Sprt.successes test;
        p_hat = Estimator.Sprt.p_hat test;
        decision =
          (match Estimator.Sprt.status test with
          | Estimator.Sprt.Decided Estimator.Sprt.H0 -> Accept_h0
          | Estimator.Sprt.Decided Estimator.Sprt.H1 -> Accept_h1
          | Estimator.Sprt.Undecided ->
            (* impossible: truncation forces a decision at max_samples,
               and the campaign submits exactly max_samples jobs *)
            assert false);
        forced = Estimator.Sprt.forced test;
        early_stopped = samples < max_samples;
        chernoff_n = Estimator.Sprt.chernoff_bound ~delta ~alpha ~beta;
        errors = Campaign.errors summary;
        wall_seconds = summary.Campaign.wall_seconds;
        stream = summary.Campaign.stream;
      }

let pp_decision fmt = function
  | Estimate -> Format.pp_print_string fmt "estimate"
  | Accept_h0 -> Format.pp_print_string fmt "H0"
  | Accept_h1 -> Format.pp_print_string fmt "H1"
