(* Statistical estimators over Bernoulli verdict streams — the math of
   Ngo & Legay's SystemC statistical model checking, over this repo's
   campaign outcomes. Both estimators are pure consumers of booleans:
   nothing here knows about sessions or simulators, which is what makes
   the test battery deterministic. *)

module Chernoff = struct
  (* the additive Chernoff–Hoeffding bound: with
       N >= ln(2/delta) / (2 eps^2)
     samples, P(|p_hat - p| > eps) <= delta *)
  let sample_count ~eps ~delta =
    if not (eps > 0.0 && eps < 1.0) then
      invalid_arg "Smc.Estimator.Chernoff.sample_count: eps must be in (0,1)";
    if not (delta > 0.0 && delta < 1.0) then
      invalid_arg "Smc.Estimator.Chernoff.sample_count: delta must be in (0,1)";
    int_of_float (ceil (log (2.0 /. delta) /. (2.0 *. eps *. eps)))

  type estimate = {
    samples : int;
    successes : int;
    p_hat : float;
    eps : float;  (** half-width of the confidence interval *)
    delta : float;  (** P(|p_hat - p| > eps) <= delta *)
  }

  let estimate ~eps ~delta ~samples ~successes =
    if samples < sample_count ~eps ~delta then
      invalid_arg
        "Smc.Estimator.Chernoff.estimate: fewer samples than the bound \
         requires";
    if successes < 0 || successes > samples then
      invalid_arg "Smc.Estimator.Chernoff.estimate: successes out of range";
    {
      samples;
      successes;
      p_hat = float_of_int successes /. float_of_int samples;
      eps;
      delta;
    }
end

module Sprt = struct
  type decision = H0 | H1
  type status = Undecided | Decided of decision

  type t = {
    theta : float;
    delta : float;
    alpha : float;
    beta : float;
    max_samples : int;
    accept_h1 : float; (* llr >= this: accept H1 *)
    accept_h0 : float; (* llr <= this: accept H0 *)
    llr_success : float; (* ln (p1/p0), < 0 *)
    llr_failure : float; (* ln ((1-p1)/(1-p0)), > 0 *)
    mutable llr : float;
    mutable samples : int;
    mutable successes : int;
    mutable status : status;
    mutable forced : bool;
  }

  (* the fixed-sample-size competitor: estimate p to within the
     indifference half-width delta, with confidence matching the
     stricter of the two error bounds — what a Chernoff–Hoeffding test
     of the same hypothesis would need *)
  let chernoff_bound ~delta ~alpha ~beta =
    Chernoff.sample_count ~eps:delta ~delta:(min alpha beta)

  let create ?max_samples ~theta ~delta ~alpha ~beta () =
    if not (delta > 0.0) then
      invalid_arg "Smc.Estimator.Sprt.create: delta must be > 0";
    if not (theta -. delta > 0.0 && theta +. delta < 1.0) then
      invalid_arg
        "Smc.Estimator.Sprt.create: need 0 < theta - delta and \
         theta + delta < 1";
    if not (alpha > 0.0 && alpha < 1.0 && beta > 0.0 && beta < 1.0) then
      invalid_arg "Smc.Estimator.Sprt.create: alpha, beta must be in (0,1)";
    let max_samples =
      match max_samples with
      | None -> chernoff_bound ~delta ~alpha ~beta
      | Some m ->
        if m < 1 then
          invalid_arg "Smc.Estimator.Sprt.create: max_samples must be >= 1";
        m
    in
    let p0 = theta +. delta and p1 = theta -. delta in
    {
      theta;
      delta;
      alpha;
      beta;
      max_samples;
      accept_h1 = log ((1.0 -. beta) /. alpha);
      accept_h0 = log (beta /. (1.0 -. alpha));
      llr_success = log (p1 /. p0);
      llr_failure = log ((1.0 -. p1) /. (1.0 -. p0));
      llr = 0.0;
      samples = 0;
      successes = 0;
      status = Undecided;
      forced = false;
    }

  let status test = test.status
  let samples test = test.samples
  let successes test = test.successes
  let max_samples test = test.max_samples
  let forced test = test.forced

  let p_hat test =
    if test.samples = 0 then nan
    else float_of_int test.successes /. float_of_int test.samples

  (* Wald's boundaries on the log-likelihood ratio of
       H1: p <= theta - delta  against  H0: p >= theta + delta.
     A success (the property held on this sample) pushes toward H0, a
     failure toward H1. If the walk is still between the boundaries
     after [max_samples] observations — p sits in the indifference
     region and neither boundary attracts — the test is truncated:
     decide by comparing p_hat against theta, flagged as [forced]. *)
  let observe test success =
    (match test.status with
    | Decided _ ->
      invalid_arg "Smc.Estimator.Sprt.observe: test already decided"
    | Undecided ->
      test.samples <- test.samples + 1;
      if success then begin
        test.successes <- test.successes + 1;
        test.llr <- test.llr +. test.llr_success
      end
      else test.llr <- test.llr +. test.llr_failure;
      if test.llr >= test.accept_h1 then test.status <- Decided H1
      else if test.llr <= test.accept_h0 then test.status <- Decided H0
      else if test.samples >= test.max_samples then begin
        test.forced <- true;
        test.status <- Decided (if p_hat test >= test.theta then H0 else H1)
      end);
    test.status
end
