(** Statistical model checking over streaming campaigns.

    A run turns a family of independent verification jobs (one per
    sample index, stimulus derived from the index — see
    {!Stimuli.Prng.of_seed_index}) into a quantitative verdict about
    [p = P(property holds on a sampled run)]:

    - {!Fixed} — draw the Chernoff–Hoeffding sample count for
      [(eps, delta)] and report the point estimate [p_hat ± eps];
    - {!Sequential} — Wald's SPRT of [H0: p >= theta + delta] against
      [H1: p <= theta - delta], consuming verdicts in emission order
      from {!Verif.Campaign.run_stream} and cancelling the remaining
      jobs the moment a boundary is crossed — early stopping rides on
      the campaign pool's cancellation, so the distance between
      "hypothesis decided" and "workers idle" is one chunk claim.

    Sample verdicts are read by a [succeeded] predicate on raw campaign
    outcomes; a crashed job counts however the predicate says (the EEE
    wiring counts it as a failure). *)

type spec =
  | Fixed of { eps : float; delta : float }
      (** accuracy [eps], confidence [delta]:
          [P(|p_hat - p| > eps) <= delta] *)
  | Sequential of {
      theta : float;  (** threshold under test *)
      delta : float;  (** indifference half-width *)
      alpha : float;  (** max P(accept H1 | H0 true) *)
      beta : float;  (** max P(accept H0 | H1 true) *)
      max_samples : int option;
          (** truncation point; default
              {!Estimator.Sprt.chernoff_bound} *)
    }

type decision =
  | Estimate  (** {!Fixed} mode: no hypothesis, just [p_hat] *)
  | Accept_h0
  | Accept_h1

type report = {
  label : string;
  samples : int;  (** verdicts the estimator consumed *)
  successes : int;
  p_hat : float;
  decision : decision;
  forced : bool;  (** decision came from truncation (see {!Estimator.Sprt}) *)
  early_stopped : bool;  (** decided before the truncation point *)
  chernoff_n : int;
      (** the fixed-sample-size bound for the same parameters — what
          the campaign would have cost without sequential testing *)
  errors : (string * string) list;  (** crashed jobs, label x exception *)
  wall_seconds : float;
  stream : Verif.Campaign.stream_stats option;
      (** the underlying streaming campaign's stats; [cancelled_jobs]
          is the work early stopping saved *)
}

val run :
  ?metrics:Obs.Registry.t ->
  ?workers:int ->
  ?chunk:int ->
  ?window:int ->
  ?sinks:Verif.Campaign.sink list ->
  label:string ->
  job:(index:int -> Verif.Campaign.job) ->
  succeeded:(Verif.Campaign.outcome -> bool) ->
  spec ->
  report
(** Execute the campaign for [spec]. [job ~index] builds sample
    [index]'s job; [sinks] (e.g. a trace file sink) observe every
    emitted outcome ahead of the estimator. [chunk] defaults to the
    campaign default in {!Fixed} mode and to [1] in {!Sequential} mode
    (cancellation reacts within one job per worker). With a live
    [metrics] registry the run records [smc_samples_total],
    [smc_successes_total], [smc_early_stop_at] and [smc_decision],
    labelled [{campaign=label}].

    A sink failure inside the campaign resurfaces as the campaign's
    [Failure] even when the sequential test decided and cancelled
    first. @raise Invalid_argument on invalid spec parameters. *)

val pp_decision : Format.formatter -> decision -> unit
