(* Bytecode virtual machine — the fast execution backend.

   Executes {!Bytecode.t} produced by {!Compile}. One OCaml call frame
   per MiniC call: locals live in an int array sized at compile time,
   operands in a per-call stack sized by the compiler's bound, and the
   dispatch loop is a single match over the instruction at [pc]. All
   observable behavior — hook order, statement counting, fuel
   accounting, error messages and their positions, 32-bit arithmetic —
   reproduces {!Interp} exactly; the interpreter stays the reference
   oracle and the differential tests in [test/test_vm.ml] hold the two
   together. *)

type t = {
  prog : Bytecode.t;
  globals : int array;  (* scalar store, slot order *)
  arrays : int array array;
  mutable stmt_count : int;
}

exception Halt

let create prog =
  {
    prog;
    globals = Array.copy prog.Bytecode.global_init;
    arrays =
      Array.map
        (fun info -> Array.make info.Bytecode.arr_len 0)
        prog.Bytecode.arrays;
    stmt_count = 0;
  }

let reset vm =
  Array.blit vm.prog.Bytecode.global_init 0 vm.globals 0
    (Array.length vm.globals);
  Array.iter (fun data -> Array.fill data 0 (Array.length data) 0) vm.arrays;
  vm.stmt_count <- 0

let program vm = vm.prog

let fail prog pos_index fmt =
  Printf.ksprintf
    (fun m ->
      raise (Interp.Runtime_error (m, prog.Bytecode.positions.(pos_index))))
    fmt

let rec exec_fn vm (hooks : Interp.hooks) fuel fn_index (frame : int array) =
  let prog = vm.prog in
  (* hoist the per-dispatch indirections out of the loop: the code and
     constant pools, the scalar store and the statement hook are each
     read once per function activation, not once per opcode *)
  let code = prog.Bytecode.code in
  let consts = prog.Bytecode.consts in
  let stmts = prog.Bytecode.stmts in
  let globals = vm.globals in
  let on_statement = hooks.Interp.on_statement in
  let fn = prog.Bytecode.funcs.(fn_index) in
  let stack = Array.make fn.Bytecode.fn_stack 0 in
  (* [sp]/[pc] stay register-allocated as long as no closure captures
     them, so all stack traffic is open-coded rather than routed through
     push/pop helpers. Stack and code indices are compiler-produced and
     bounded at compile time ([fn_stack], jump targets, pool indices);
     the differential tests in test/test_vm.ml back the unsafe reads. *)
  let sp = ref 0 in
  let pc = ref fn.Bytecode.fn_entry in
  let result = ref 0 in
  let running = ref true in
  while !running do
    let instr = Array.unsafe_get code !pc in
    incr pc;
    match instr with
    | Bytecode.Push v ->
      Array.unsafe_set stack !sp v;
      incr sp
    | Bytecode.Const i ->
      Array.unsafe_set stack !sp (Array.unsafe_get consts i);
      incr sp
    | Bytecode.Load_local slot ->
      Array.unsafe_set stack !sp frame.(slot);
      incr sp
    | Bytecode.Store_local slot ->
      decr sp;
      frame.(slot) <- Array.unsafe_get stack !sp
    | Bytecode.Load_global slot ->
      Array.unsafe_set stack !sp globals.(slot);
      incr sp
    | Bytecode.Store_global slot ->
      decr sp;
      globals.(slot) <- Array.unsafe_get stack !sp
    | Bytecode.Load_elem (slot, pos) ->
      decr sp;
      let index = Array.unsafe_get stack !sp in
      let data = vm.arrays.(slot) in
      if index < 0 || index >= Array.length data then
        fail prog pos "index %d out of bounds for %s[%d]" index
          prog.Bytecode.arrays.(slot).Bytecode.arr_name (Array.length data)
      else begin
        Array.unsafe_set stack !sp data.(index);
        incr sp
      end
    | Bytecode.Store_elem (slot, pos) ->
      decr sp;
      let index = Array.unsafe_get stack !sp in
      decr sp;
      let value = Array.unsafe_get stack !sp in
      let data = vm.arrays.(slot) in
      if index < 0 || index >= Array.length data then
        fail prog pos "index %d out of bounds for %s[%d]" index
          prog.Bytecode.arrays.(slot).Bytecode.arr_name (Array.length data)
      else data.(index) <- value
    | Bytecode.Unop op ->
      let top = !sp - 1 in
      let v = Array.unsafe_get stack top in
      Array.unsafe_set stack top
        (match op with
        | Ast.Neg -> Value.neg v
        | Ast.Bitnot -> Value.lognot v
        | Ast.Lognot -> Value.of_bool (not (Value.to_bool v)))
    | Bytecode.Binop op ->
      decr sp;
      let b = Array.unsafe_get stack !sp in
      let top = !sp - 1 in
      let a = Array.unsafe_get stack top in
      Array.unsafe_set stack top
        (match op with
        | Ast.Add -> Value.add a b
        | Ast.Sub -> Value.sub a b
        | Ast.Mul -> Value.mul a b
        | Ast.Band -> Value.logand a b
        | Ast.Bor -> Value.logor a b
        | Ast.Bxor -> Value.logxor a b
        | Ast.Shl -> Value.shift_left a b
        | Ast.Shr -> Value.shift_right a b
        | Ast.Lt -> Value.of_bool (a < b)
        | Ast.Le -> Value.of_bool (a <= b)
        | Ast.Gt -> Value.of_bool (a > b)
        | Ast.Ge -> Value.of_bool (a >= b)
        | Ast.Eq -> Value.of_bool (a = b)
        | Ast.Ne -> Value.of_bool (a <> b)
        | Ast.Div | Ast.Mod | Ast.Land | Ast.Lor ->
          (* compiled to Div_chk/Mod_chk/short-circuit jumps *)
          assert false)
    | Bytecode.Div_chk pos -> (
      decr sp;
      let b = Array.unsafe_get stack !sp in
      let top = !sp - 1 in
      let a = Array.unsafe_get stack top in
      match Value.div a b with
      | q -> Array.unsafe_set stack top q
      | exception Value.Division_by_zero ->
        fail prog pos "division by zero")
    | Bytecode.Mod_chk pos -> (
      decr sp;
      let b = Array.unsafe_get stack !sp in
      let top = !sp - 1 in
      let a = Array.unsafe_get stack top in
      match Value.rem a b with
      | r -> Array.unsafe_set stack top r
      | exception Value.Division_by_zero ->
        fail prog pos "division by zero")
    | Bytecode.Bool_cast ->
      let top = !sp - 1 in
      Array.unsafe_set stack top
        (Value.of_bool (Value.to_bool (Array.unsafe_get stack top)))
    | Bytecode.Jump target -> pc := target
    | Bytecode.Jump_if_false target ->
      decr sp;
      if not (Value.to_bool (Array.unsafe_get stack !sp)) then pc := target
    | Bytecode.Jump_if_true target ->
      decr sp;
      if Value.to_bool (Array.unsafe_get stack !sp) then pc := target
    | Bytecode.Call callee_index ->
      let callee = prog.Bytecode.funcs.(callee_index) in
      let callee_frame = Array.make (max callee.Bytecode.fn_frame 1) 0 in
      for i = callee.Bytecode.fn_nparams - 1 downto 0 do
        decr sp;
        callee_frame.(i) <- Array.unsafe_get stack !sp
      done;
      Array.unsafe_set stack !sp (exec_fn vm hooks fuel callee_index callee_frame);
      incr sp
    | Bytecode.Ret ->
      decr sp;
      result := Array.unsafe_get stack !sp;
      running := false
    | Bytecode.Pop -> decr sp
    | Bytecode.Tick stmt ->
      if !fuel <= 0 then raise Interp.Out_of_fuel;
      decr fuel;
      vm.stmt_count <- vm.stmt_count + 1;
      on_statement (Array.unsafe_get stmts stmt)
    | Bytecode.Obs_entry f ->
      hooks.Interp.on_function_entry prog.Bytecode.funcs.(f).Bytecode.fn_name
    | Bytecode.Obs_mem_read ->
      let top = !sp - 1 in
      Array.unsafe_set stack top
        (hooks.Interp.mem_read (Array.unsafe_get stack top))
    | Bytecode.Obs_mem_write ->
      decr sp;
      let addr = Array.unsafe_get stack !sp in
      decr sp;
      let value = Array.unsafe_get stack !sp in
      hooks.Interp.mem_write addr value
    | Bytecode.Nondet_op pos ->
      decr sp;
      let hi = Array.unsafe_get stack !sp in
      let top = !sp - 1 in
      let lo = Array.unsafe_get stack top in
      if lo > hi then fail prog pos "nondet with empty range [%d, %d]" lo hi
      else Array.unsafe_set stack top (hooks.Interp.nondet ~lo ~hi)
    | Bytecode.Assert_op pos ->
      decr sp;
      if not (Value.to_bool (Array.unsafe_get stack !sp)) then
        raise (Interp.Assertion_failed prog.Bytecode.positions.(pos))
    | Bytecode.Assume_op pos ->
      decr sp;
      if not (Value.to_bool (Array.unsafe_get stack !sp)) then
        raise (Interp.Assumption_failed prog.Bytecode.positions.(pos))
    | Bytecode.Halt_op -> raise Halt
  done;
  !result

let call_index vm hooks ~fuel fn_index args =
  let fn = vm.prog.Bytecode.funcs.(fn_index) in
  let frame = Array.make (max fn.Bytecode.fn_frame 1) 0 in
  List.iteri
    (fun i value -> if i < fn.Bytecode.fn_nparams then frame.(i) <- value)
    args;
  let result = exec_fn vm hooks fuel fn_index frame in
  if fn.Bytecode.fn_void then None else Some result

let call vm hooks ~fuel name args =
  match Hashtbl.find_opt vm.prog.Bytecode.func_of_name name with
  | None ->
    raise (Interp.Runtime_error ("unknown function " ^ name, Ast.dummy_pos))
  | Some fn_index ->
    let fn = vm.prog.Bytecode.funcs.(fn_index) in
    if List.length args <> fn.Bytecode.fn_nparams then
      invalid_arg ("Vm.call: arity mismatch for " ^ name);
    call_index vm hooks ~fuel fn_index args

let run ?(fuel = 10_000_000) vm hooks ~entry =
  (match Hashtbl.find_opt vm.prog.Bytecode.func_of_name entry with
  | None -> invalid_arg ("Vm.run: no function " ^ entry)
  | Some fn_index ->
    if vm.prog.Bytecode.funcs.(fn_index).Bytecode.fn_nparams <> 0 then
      invalid_arg ("Vm.run: entry function takes parameters: " ^ entry));
  let fuel_ref = ref fuel in
  match call vm hooks ~fuel:fuel_ref entry [] with
  | value -> Interp.Finished value
  | exception Halt -> Interp.Halted
  | exception Interp.Out_of_fuel -> Interp.Fuel_exhausted

let read_global vm name =
  match Hashtbl.find_opt vm.prog.Bytecode.global_of_name name with
  | Some slot -> vm.globals.(slot)
  | None -> (
    if Hashtbl.mem vm.prog.Bytecode.array_of_name name then
      invalid_arg ("Vm.read_global: array " ^ name)
    else
      match List.assoc_opt name vm.prog.Bytecode.const_globals with
      | Some v -> v
      | None -> invalid_arg ("Vm.read_global: unknown " ^ name))

let write_global vm name value =
  match Hashtbl.find_opt vm.prog.Bytecode.global_of_name name with
  | Some slot -> vm.globals.(slot) <- value
  | None -> invalid_arg ("Vm.write_global: not a scalar global: " ^ name)

let read_element vm name index =
  match Hashtbl.find_opt vm.prog.Bytecode.array_of_name name with
  | Some slot ->
    let data = vm.arrays.(slot) in
    if index < 0 || index >= Array.length data then
      raise
        (Interp.Runtime_error
           ( Printf.sprintf "index %d out of bounds for %s" index name,
             Ast.dummy_pos ))
    else data.(index)
  | None -> invalid_arg ("Vm.read_element: not an array: " ^ name)

let globals_snapshot vm =
  Array.to_list
    (Array.mapi
       (fun slot name -> (name, vm.globals.(slot)))
       vm.prog.Bytecode.globals)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let statements_executed vm = vm.stmt_count
