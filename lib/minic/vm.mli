(** Bytecode virtual machine — the fast MiniC execution backend.

    Runs programs compiled by {!Compile} with the same observable
    behavior as {!Interp}: identical hook call order (statement tick
    before each statement, function entry after parameter binding,
    memory and nondet at their evaluation points), identical statement
    counts and fuel accounting, identical error messages and positions,
    and {!Interp}'s exception constructors, so call sites written
    against the interpreter pattern-match unchanged. *)

type t

exception Halt
(** The program executed [halt()]. {!run} converts it to
    [Interp.Halted]; it escapes {!call} (as the interpreter's internal
    halt signal escapes [Interp.call]). *)

val create : Bytecode.t -> t
(** Globals take their statically evaluated initial values, arrays are
    zeroed (equivalent to [Interp.create] running the initializers). *)

val reset : t -> unit
(** Back to the freshly created state (including the statement count). *)

val program : t -> Bytecode.t

val run : ?fuel:int -> t -> Interp.hooks -> entry:string -> Interp.outcome
(** Call the entry function (default fuel: 10 million statements).
    @raise Invalid_argument if [entry] does not exist or takes parameters. *)

val call : t -> Interp.hooks -> fuel:int ref -> string -> int list -> int option

val read_global : t -> string -> int
(** @raise Invalid_argument for unknown or array globals. *)

val write_global : t -> string -> int -> unit

val read_element : t -> string -> int -> int
(** @raise Interp.Runtime_error on out-of-bounds. *)

val globals_snapshot : t -> (string * int) list
(** Scalar globals with current values, sorted by name. *)

val statements_executed : t -> int
