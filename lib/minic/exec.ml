(* Backend-agnostic execution interface over MiniC programs.

   Everything outside [lib/minic] runs programs through this module:
   the verification session's reference backend, the derived
   SystemC-like model and the EEE harness all create an [Exec.t] and
   use the same reset/run/read/hook surface, so the tree-walking
   interpreter and the bytecode VM are interchangeable per run. [Auto]
   prefers the VM and falls back to the interpreter for the rare
   programs whose dynamic-scoping corners the compiler refuses
   ([Compile.Unsupported]); both backends produce identical observable
   behavior, which the differential tests enforce. *)

type kind = Interp | Vm | Auto

type outcome = Interp.outcome =
  | Finished of int option
  | Halted
  | Fuel_exhausted

type hooks = Interp.hooks = {
  mem_read : int -> int;
  mem_write : int -> int -> unit;
  nondet : lo:int -> hi:int -> int;
  on_statement : Ast.stmt -> unit;
  on_function_entry : string -> unit;
}

exception Assertion_failed = Interp.Assertion_failed
exception Assumption_failed = Interp.Assumption_failed
exception Runtime_error = Interp.Runtime_error
exception Out_of_fuel = Interp.Out_of_fuel

let default_hooks = Interp.default_hooks

type impl = I of Interp.env | V of Vm.t

type t = {
  info : Typecheck.info;
  requested : kind;
  mutable impl : impl;
  mutable hooks : hooks;
}

let to_string = function Interp -> "interp" | Vm -> "vm" | Auto -> "auto"

let of_string = function
  | "interp" -> Some Interp
  | "vm" -> Some Vm
  | "auto" -> Some Auto
  | _ -> None

let make_impl backend info =
  match backend with
  | Interp -> I (Interp.create info)
  | Vm -> V (Vm.create (Compile.compile info))
  | Auto -> (
    match Compile.compile info with
    | prog -> V (Vm.create prog)
    | exception Compile.Unsupported _ -> I (Interp.create info))

let create ?(backend = Auto) info =
  {
    info;
    requested = backend;
    impl = make_impl backend info;
    hooks = Interp.default_hooks ();
  }

let kind t = match t.impl with I _ -> Interp | V _ -> Vm
let kind_name t = to_string (kind t)
let requested t = t.requested
let info t = t.info
let bytecode t = match t.impl with I _ -> None | V vm -> Some (Vm.program vm)
let set_hooks t hooks = t.hooks <- hooks
let hooks t = t.hooks

let reset t =
  match t.impl with
  | V vm -> Vm.reset vm
  | I _ -> t.impl <- I (Interp.create t.info)

let run ?fuel ?hooks t ~entry =
  let hooks = match hooks with Some h -> h | None -> t.hooks in
  match t.impl with
  | I env -> Interp.run ?fuel env hooks ~entry
  | V vm -> Vm.run ?fuel vm hooks ~entry

let call ?hooks t ~fuel name args =
  let hooks = match hooks with Some h -> h | None -> t.hooks in
  match t.impl with
  | I env -> Interp.call env hooks ~fuel name args
  | V vm -> Vm.call vm hooks ~fuel name args

let read_global t name =
  match t.impl with
  | I env -> Interp.read_global env name
  | V vm -> Vm.read_global vm name

let write_global t name value =
  match t.impl with
  | I env -> Interp.write_global env name value
  | V vm -> Vm.write_global vm name value

let read_element t name index =
  match t.impl with
  | I env -> Interp.read_element env name index
  | V vm -> Vm.read_element vm name index

let globals_snapshot t =
  match t.impl with
  | I env -> Interp.globals_snapshot env
  | V vm -> Vm.globals_snapshot vm

let statements_executed t =
  match t.impl with
  | I env -> Interp.statements_executed env
  | V vm -> Vm.statements_executed vm
