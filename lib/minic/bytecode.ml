(* Flat bytecode for MiniC — the instruction set the VM executes.

   The program is one instruction array shared by all functions; every
   variable reference is resolved at compile time to an integer slot
   (locals into the frame, scalar globals and arrays into their own
   stores), literals go through the constants pool, and the observation
   points of the derived-model execution — the statement-counter tick
   with its [on_statement] payload, the [fname] function-entry event and
   the virtual-memory accesses — are explicit opcodes, so a VM run
   produces exactly the interpreter's event sequence. *)

type instr =
  | Push of int  (** push an immediate (compiler-generated 0/1 etc.) *)
  | Const of int  (** push [consts.(i)] from the constants pool *)
  | Load_local of int  (** push frame slot *)
  | Store_local of int  (** pop into frame slot *)
  | Load_global of int  (** push scalar-global slot *)
  | Store_global of int  (** pop into scalar-global slot *)
  | Load_elem of int * int  (** array slot, position index; pops the index *)
  | Store_elem of int * int
      (** array slot, position index; pops the index, then the value *)
  | Unop of Ast.unop
  | Binop of Ast.binop
      (** straight-line operators only: [Div]/[Mod] (checked) and
          [Land]/[Lor] (short-circuit jumps) are never emitted here *)
  | Div_chk of int  (** checked division; position index for the error *)
  | Mod_chk of int
  | Bool_cast  (** normalize the top of stack to 0/1 *)
  | Jump of int
  | Jump_if_false of int  (** pop; jump when zero *)
  | Jump_if_true of int  (** pop; jump when non-zero *)
  | Call of int  (** function table index; pops the arguments *)
  | Ret  (** pop the return value, leave the function *)
  | Pop
  | Tick of int
      (** statement boundary: fuel check, statement counter,
          [on_statement stmts.(i)] — the PC-event timing reference *)
  | Obs_entry of int
      (** function table index: [on_function_entry] after parameters are
          bound (the [fname] observation point) *)
  | Obs_mem_read  (** pop an address, push [mem_read addr] (vmem) *)
  | Obs_mem_write  (** pop an address, then a value; [mem_write] (vmem) *)
  | Nondet_op of int  (** position index; pops [hi], then [lo] *)
  | Assert_op of int  (** position index; pop, raise when zero *)
  | Assume_op of int
  | Halt_op

type fn = {
  fn_name : string;
  fn_entry : int;  (** first instruction (the [Obs_entry]) *)
  fn_nparams : int;  (** parameters occupy frame slots 0..n-1 *)
  fn_frame : int;  (** frame slots including parameters *)
  fn_stack : int;  (** operand-stack bound (compile-time upper bound) *)
  fn_void : bool;  (** return type is [void] *)
}

type array_info = { arr_name : string; arr_len : int }

type t = {
  code : instr array;
  consts : int array;  (** the constants pool *)
  funcs : fn array;
  func_of_name : (string, int) Hashtbl.t;
  globals : string array;  (** scalar-global slot -> name, decl order *)
  global_of_name : (string, int) Hashtbl.t;
  global_init : int array;  (** initial scalar values (statically evaluated) *)
  arrays : array_info array;
  array_of_name : (string, int) Hashtbl.t;
  const_globals : (string * int) list;  (** const globals, decl order *)
  positions : Ast.position array;
  stmts : Ast.stmt array;  (** [Tick] payloads for [on_statement] *)
}

let instr_name = function
  | Push _ -> "push"
  | Const _ -> "const"
  | Load_local _ -> "lload"
  | Store_local _ -> "lstore"
  | Load_global _ -> "gload"
  | Store_global _ -> "gstore"
  | Load_elem _ -> "eload"
  | Store_elem _ -> "estore"
  | Unop _ -> "unop"
  | Binop _ -> "binop"
  | Div_chk _ -> "div"
  | Mod_chk _ -> "mod"
  | Bool_cast -> "bool"
  | Jump _ -> "jmp"
  | Jump_if_false _ -> "jz"
  | Jump_if_true _ -> "jnz"
  | Call _ -> "call"
  | Ret -> "ret"
  | Pop -> "pop"
  | Tick _ -> "tick"
  | Obs_entry _ -> "fentry"
  | Obs_mem_read -> "mrd"
  | Obs_mem_write -> "mwr"
  | Nondet_op _ -> "nondet"
  | Assert_op _ -> "assert"
  | Assume_op _ -> "assume"
  | Halt_op -> "halt"

let pp_instr prog fmt instr =
  let unop_name = function
    | Ast.Neg -> "neg"
    | Ast.Lognot -> "not"
    | Ast.Bitnot -> "bnot"
  in
  let binop_name = function
    | Ast.Add -> "add" | Ast.Sub -> "sub" | Ast.Mul -> "mul"
    | Ast.Div -> "div" | Ast.Mod -> "mod" | Ast.Band -> "and"
    | Ast.Bor -> "or" | Ast.Bxor -> "xor" | Ast.Shl -> "shl"
    | Ast.Shr -> "shr" | Ast.Lt -> "lt" | Ast.Le -> "le"
    | Ast.Gt -> "gt" | Ast.Ge -> "ge" | Ast.Eq -> "eq" | Ast.Ne -> "ne"
    | Ast.Land -> "land" | Ast.Lor -> "lor"
  in
  match instr with
  | Push v -> Format.fprintf fmt "push %d" v
  | Const i -> Format.fprintf fmt "const %d ; %d" i prog.consts.(i)
  | Load_local s -> Format.fprintf fmt "lload %d" s
  | Store_local s -> Format.fprintf fmt "lstore %d" s
  | Load_global s -> Format.fprintf fmt "gload %d ; %s" s prog.globals.(s)
  | Store_global s -> Format.fprintf fmt "gstore %d ; %s" s prog.globals.(s)
  | Load_elem (a, _) ->
    Format.fprintf fmt "eload %d ; %s" a prog.arrays.(a).arr_name
  | Store_elem (a, _) ->
    Format.fprintf fmt "estore %d ; %s" a prog.arrays.(a).arr_name
  | Unop op -> Format.fprintf fmt "unop %s" (unop_name op)
  | Binop op -> Format.fprintf fmt "binop %s" (binop_name op)
  | Div_chk _ -> Format.fprintf fmt "div"
  | Mod_chk _ -> Format.fprintf fmt "mod"
  | Bool_cast -> Format.fprintf fmt "bool"
  | Jump target -> Format.fprintf fmt "jmp %d" target
  | Jump_if_false target -> Format.fprintf fmt "jz %d" target
  | Jump_if_true target -> Format.fprintf fmt "jnz %d" target
  | Call f -> Format.fprintf fmt "call %d ; %s" f prog.funcs.(f).fn_name
  | Ret -> Format.fprintf fmt "ret"
  | Pop -> Format.fprintf fmt "pop"
  | Tick i ->
    let pos = prog.stmts.(i).Ast.spos in
    Format.fprintf fmt "tick %d ; %d:%d" i pos.Ast.line pos.Ast.column
  | Obs_entry f ->
    Format.fprintf fmt "fentry %d ; %s" f prog.funcs.(f).fn_name
  | Obs_mem_read -> Format.fprintf fmt "mrd"
  | Obs_mem_write -> Format.fprintf fmt "mwr"
  | Nondet_op _ -> Format.fprintf fmt "nondet"
  | Assert_op _ -> Format.fprintf fmt "assert"
  | Assume_op _ -> Format.fprintf fmt "assume"
  | Halt_op -> Format.fprintf fmt "halt"

let disassemble prog =
  let buffer = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buffer in
  Array.iter
    (fun fn ->
      Format.fprintf fmt "%s/%d (frame %d, stack %d)@." fn.fn_name
        fn.fn_nparams fn.fn_frame fn.fn_stack;
      let stop =
        (* a function's code ends where the next entry begins *)
        Array.fold_left
          (fun stop other ->
            if other.fn_entry > fn.fn_entry then min stop other.fn_entry
            else stop)
          (Array.length prog.code) prog.funcs
      in
      for pc = fn.fn_entry to stop - 1 do
        Format.fprintf fmt "  %4d  %a@." pc (pp_instr prog) prog.code.(pc)
      done)
    prog.funcs;
  Format.pp_print_flush fmt ();
  Buffer.contents buffer

let stats prog =
  Printf.sprintf "%d instructions, %d functions, %d consts, %d globals, %d arrays"
    (Array.length prog.code) (Array.length prog.funcs)
    (Array.length prog.consts) (Array.length prog.globals)
    (Array.length prog.arrays)
