(* AST -> bytecode lowering.

   The typechecked program is lowered to one flat instruction array:
   locals become frame slots allocated per lexical scope, scalar globals
   and arrays become store slots in declaration order, const globals and
   literals go through the constants pool, and control flow becomes
   jumps. Every statement site emits a [Tick] first — the fuel check,
   statement counter and [on_statement] boundary — so the VM's timing
   reference is the interpreter's, statement for statement.

   Global initializers are pure (the typechecker rejects calls, nondet
   and memory access there), so they are evaluated here, in declaration
   order, into the program's initial scalar-store image.

   Two constructs get [Unsupported] instead of code, because the
   interpreter gives them *dynamic* declaration semantics that fixed
   slot assignment cannot reproduce:

   - a local declared directly in one switch case and referenced from a
     different case: whether the later case sees that local or an outer
     binding depends on which case control entered at;
   - a declaration that executes conditionally into its enclosing scope
     (a bare [Decl] as the body of an [If]/[While]/[For], or in a [For]
     step): the name only resolves on executions where the declaration
     actually ran.

   [Exec]'s auto backend selection falls back to the interpreter for
   such programs. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

(* growable instruction buffer *)
type buf = { mutable code : Bytecode.instr array; mutable len : int }

(* interning pools *)
type pools = {
  consts : (int, int) Hashtbl.t;
  mutable const_list : int list;  (* reversed *)
  mutable const_count : int;
  mutable positions : Ast.position list;  (* reversed *)
  mutable position_count : int;
  mutable stmts : Ast.stmt list;  (* reversed *)
  mutable stmt_count : int;
}

(* per-function compilation state; [case] on a binding is the unique id
   of the switch case it was declared directly under, -1 elsewhere *)
type binding = { slot : int; case : int }

type fstate = {
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable next_slot : int;
  mutable max_frame : int;
  mutable depth : int;  (* tracked operand-stack depth (upper bound) *)
  mutable max_depth : int;
  mutable current_case : int;
  mutable case_counter : int;  (* unique case ids across nested switches *)
  mutable continue_sites : int list list;  (* per enclosing loop *)
  mutable break_sites : int list list;  (* per enclosing loop/switch *)
}

(* program-wide compilation state *)
type state = {
  buf : buf;
  pools : pools;
  func_of_name : (string, int) Hashtbl.t;
  func_nparams : int array;
  global_of_name : (string, int) Hashtbl.t;
  array_of_name : (string, int) Hashtbl.t;
  array_len : (string, int) Hashtbl.t;
  const_value : (string, int) Hashtbl.t;
}

let const_index state value =
  let pools = state.pools in
  match Hashtbl.find_opt pools.consts value with
  | Some index -> index
  | None ->
    let index = pools.const_count in
    Hashtbl.replace pools.consts value index;
    pools.const_list <- value :: pools.const_list;
    pools.const_count <- index + 1;
    index

let position_index state pos =
  let pools = state.pools in
  let index = pools.position_count in
  pools.positions <- pos :: pools.positions;
  pools.position_count <- index + 1;
  index

let stmt_index state stmt =
  let pools = state.pools in
  let index = pools.stmt_count in
  pools.stmts <- stmt :: pools.stmts;
  pools.stmt_count <- index + 1;
  index

(* net operand-stack effect of an instruction (calls always push one
   value back, so a call nets [1 - nparams]) *)
let depth_delta state = function
  | Bytecode.Push _ | Bytecode.Const _ | Bytecode.Load_local _
  | Bytecode.Load_global _ ->
    1
  | Bytecode.Store_local _ | Bytecode.Store_global _ | Bytecode.Pop
  | Bytecode.Jump_if_false _ | Bytecode.Jump_if_true _
  | Bytecode.Assert_op _ | Bytecode.Assume_op _ | Bytecode.Binop _
  | Bytecode.Div_chk _ | Bytecode.Mod_chk _ | Bytecode.Nondet_op _
  | Bytecode.Ret ->
    -1
  | Bytecode.Store_elem _ | Bytecode.Obs_mem_write -> -2
  | Bytecode.Load_elem _ | Bytecode.Unop _ | Bytecode.Bool_cast
  | Bytecode.Jump _ | Bytecode.Tick _ | Bytecode.Obs_entry _
  | Bytecode.Obs_mem_read | Bytecode.Halt_op ->
    0
  | Bytecode.Call f -> 1 - state.func_nparams.(f)

let emit state fstate instr =
  let buf = state.buf in
  if buf.len = Array.length buf.code then begin
    let grown = Array.make (2 * buf.len) Bytecode.Halt_op in
    Array.blit buf.code 0 grown 0 buf.len;
    buf.code <- grown
  end;
  buf.code.(buf.len) <- instr;
  buf.len <- buf.len + 1;
  fstate.depth <- fstate.depth + depth_delta state instr;
  if fstate.depth > fstate.max_depth then fstate.max_depth <- fstate.depth;
  buf.len - 1

let here state = state.buf.len

let patch state site target =
  state.buf.code.(site) <-
    (match state.buf.code.(site) with
    | Bytecode.Jump _ -> Bytecode.Jump target
    | Bytecode.Jump_if_false _ -> Bytecode.Jump_if_false target
    | Bytecode.Jump_if_true _ -> Bytecode.Jump_if_true target
    | _ -> invalid_arg "Compile.patch: not a jump site")

(* scope management *)
let push_scope fstate = fstate.scopes <- Hashtbl.create 8 :: fstate.scopes

let pop_scope fstate saved_slot =
  (match fstate.scopes with
  | _ :: rest -> fstate.scopes <- rest
  | [] -> assert false);
  fstate.next_slot <- saved_slot

let declare_local fstate name =
  let slot = fstate.next_slot in
  fstate.next_slot <- slot + 1;
  if fstate.next_slot > fstate.max_frame then
    fstate.max_frame <- fstate.next_slot;
  (match fstate.scopes with
  | scope :: _ ->
    Hashtbl.replace scope name { slot; case = fstate.current_case }
  | [] -> unsupported "declaration outside any scope: %s" name);
  slot

let lookup_local fstate name =
  let rec find = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some binding ->
        if binding.case >= 0 && binding.case <> fstate.current_case then
          unsupported
            "local %s declared in one switch case and referenced from \
             another (dynamic scope)"
            name
        else Some binding.slot
      | None -> find rest)
  in
  find fstate.scopes

let push_loop fstate =
  fstate.break_sites <- [] :: fstate.break_sites;
  fstate.continue_sites <- [] :: fstate.continue_sites

let pop_breaks fstate =
  match fstate.break_sites with
  | sites :: rest ->
    fstate.break_sites <- rest;
    sites
  | [] -> assert false

let pop_continues fstate =
  match fstate.continue_sites with
  | sites :: rest ->
    fstate.continue_sites <- rest;
    sites
  | [] -> assert false

(* statically evaluate a global initializer (pure by typechecking) *)
let rec eval_static state values (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Int_lit v -> v
  | Ast.Bool_lit b -> Value.of_bool b
  | Ast.Var name -> (
    match Hashtbl.find_opt state.const_value name with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt state.global_of_name name with
      | Some slot -> values.(slot)
      | None -> unsupported "global initializer references %s" name))
  | Ast.Index (name, index_expr) ->
    (* earlier arrays are still all-zero at initialization time *)
    let index = eval_static state values index_expr in
    (match Hashtbl.find_opt state.array_len name with
    | Some len when index >= 0 && index < len -> 0
    | _ -> unsupported "global initializer indexes %s" name)
  | Ast.Unop (op, inner_expr) -> (
    let inner = eval_static state values inner_expr in
    match op with
    | Ast.Neg -> Value.neg inner
    | Ast.Bitnot -> Value.lognot inner
    | Ast.Lognot -> Value.of_bool (not (Value.to_bool inner)))
  | Ast.Binop (Ast.Land, a, b) ->
    if Value.to_bool (eval_static state values a) then
      Value.of_bool (Value.to_bool (eval_static state values b))
    else 0
  | Ast.Binop (Ast.Lor, a, b) ->
    if Value.to_bool (eval_static state values a) then 1
    else Value.of_bool (Value.to_bool (eval_static state values b))
  | Ast.Binop (op, a_expr, b_expr) -> (
    let a = eval_static state values a_expr in
    let b = eval_static state values b_expr in
    try
      match op with
      | Ast.Add -> Value.add a b
      | Ast.Sub -> Value.sub a b
      | Ast.Mul -> Value.mul a b
      | Ast.Div -> Value.div a b
      | Ast.Mod -> Value.rem a b
      | Ast.Band -> Value.logand a b
      | Ast.Bor -> Value.logor a b
      | Ast.Bxor -> Value.logxor a b
      | Ast.Shl -> Value.shift_left a b
      | Ast.Shr -> Value.shift_right a b
      | Ast.Lt -> Value.of_bool (a < b)
      | Ast.Le -> Value.of_bool (a <= b)
      | Ast.Gt -> Value.of_bool (a > b)
      | Ast.Ge -> Value.of_bool (a >= b)
      | Ast.Eq -> Value.of_bool (a = b)
      | Ast.Ne -> Value.of_bool (a <> b)
      | Ast.Land | Ast.Lor -> assert false
    with Value.Division_by_zero ->
      unsupported "division by zero in global initializer")
  | Ast.Call _ | Ast.Nondet _ | Ast.Mem_read _ ->
    unsupported "impure global initializer"

(* expression compilation; leaves exactly one value on the stack *)
let rec compile_expr state fstate (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Int_lit 0 -> ignore (emit state fstate (Bytecode.Push 0))
  | Ast.Int_lit 1 -> ignore (emit state fstate (Bytecode.Push 1))
  | Ast.Int_lit v ->
    ignore (emit state fstate (Bytecode.Const (const_index state v)))
  | Ast.Bool_lit b ->
    ignore (emit state fstate (Bytecode.Push (Value.of_bool b)))
  | Ast.Var name -> (
    match lookup_local fstate name with
    | Some slot -> ignore (emit state fstate (Bytecode.Load_local slot))
    | None -> (
      match Hashtbl.find_opt state.const_value name with
      | Some 0 -> ignore (emit state fstate (Bytecode.Push 0))
      | Some 1 -> ignore (emit state fstate (Bytecode.Push 1))
      | Some v ->
        ignore (emit state fstate (Bytecode.Const (const_index state v)))
      | None -> (
        match Hashtbl.find_opt state.global_of_name name with
        | Some slot -> ignore (emit state fstate (Bytecode.Load_global slot))
        | None -> unsupported "array or unknown name used as scalar: %s" name)
      ))
  | Ast.Index (name, index_expr) -> (
    compile_expr state fstate index_expr;
    match Hashtbl.find_opt state.array_of_name name with
    | Some slot ->
      ignore
        (emit state fstate
           (Bytecode.Load_elem (slot, position_index state e.Ast.epos)))
    | None -> unsupported "%s is not an array" name)
  | Ast.Unop (op, inner) ->
    compile_expr state fstate inner;
    ignore (emit state fstate (Bytecode.Unop op))
  | Ast.Binop (Ast.Land, a, b) ->
    compile_expr state fstate a;
    let to_false = emit state fstate (Bytecode.Jump_if_false (-1)) in
    compile_expr state fstate b;
    ignore (emit state fstate Bytecode.Bool_cast);
    let to_end = emit state fstate (Bytecode.Jump (-1)) in
    patch state to_false (here state);
    ignore (emit state fstate (Bytecode.Push 0));
    patch state to_end (here state);
    (* the two arms merge at depth +1; the linear tracker counted both *)
    fstate.depth <- fstate.depth - 1
  | Ast.Binop (Ast.Lor, a, b) ->
    compile_expr state fstate a;
    let to_true = emit state fstate (Bytecode.Jump_if_true (-1)) in
    compile_expr state fstate b;
    ignore (emit state fstate Bytecode.Bool_cast);
    let to_end = emit state fstate (Bytecode.Jump (-1)) in
    patch state to_true (here state);
    ignore (emit state fstate (Bytecode.Push 1));
    patch state to_end (here state);
    fstate.depth <- fstate.depth - 1
  | Ast.Binop (op, a, b) -> (
    compile_expr state fstate a;
    compile_expr state fstate b;
    match op with
    | Ast.Div ->
      ignore
        (emit state fstate (Bytecode.Div_chk (position_index state e.Ast.epos)))
    | Ast.Mod ->
      ignore
        (emit state fstate (Bytecode.Mod_chk (position_index state e.Ast.epos)))
    | op -> ignore (emit state fstate (Bytecode.Binop op)))
  | Ast.Call (name, args) -> (
    List.iter (compile_expr state fstate) args;
    match Hashtbl.find_opt state.func_of_name name with
    | Some index -> ignore (emit state fstate (Bytecode.Call index))
    | None -> unsupported "unknown function %s" name)
  | Ast.Nondet (lo, hi) ->
    compile_expr state fstate lo;
    compile_expr state fstate hi;
    ignore
      (emit state fstate (Bytecode.Nondet_op (position_index state e.Ast.epos)))
  | Ast.Mem_read addr ->
    compile_expr state fstate addr;
    ignore (emit state fstate Bytecode.Obs_mem_read)

(* the value is on the stack; store it into the lvalue (index/address
   evaluated after the value, as the interpreter does) *)
let compile_store state fstate pos lhs =
  match lhs with
  | Ast.Lvar name -> (
    match lookup_local fstate name with
    | Some slot -> ignore (emit state fstate (Bytecode.Store_local slot))
    | None -> (
      match Hashtbl.find_opt state.global_of_name name with
      | Some slot -> ignore (emit state fstate (Bytecode.Store_global slot))
      | None -> unsupported "cannot assign %s" name))
  | Ast.Lindex (name, index_expr) -> (
    compile_expr state fstate index_expr;
    match Hashtbl.find_opt state.array_of_name name with
    | Some slot ->
      ignore
        (emit state fstate (Bytecode.Store_elem (slot, position_index state pos)))
    | None -> unsupported "%s is not an array" name)
  | Ast.Lmem addr ->
    compile_expr state fstate addr;
    ignore (emit state fstate Bytecode.Obs_mem_write)

(* [seq] is true when this statement is an element of a statement
   sequence (function body, block, case body, for-init): a [Decl] there
   executes exactly when its scope instance does, so a frame slot is
   faithful. A [Decl] anywhere else (body of if/while/for, for-step)
   has dynamic-declaration semantics — see the header comment. *)
let rec compile_stmt state fstate ~seq (s : Ast.stmt) =
  ignore (emit state fstate (Bytecode.Tick (stmt_index state s)));
  match s.Ast.sdesc with
  | Ast.Block body ->
    let saved = fstate.next_slot in
    push_scope fstate;
    List.iter (compile_stmt state fstate ~seq:true) body;
    pop_scope fstate saved
  | Ast.Decl (name, _typ, init) ->
    if not seq then
      unsupported
        "declaration of %s executes conditionally into its enclosing scope \
         (dynamic scope)"
        name;
    (match init with
    | Some e -> compile_expr state fstate e
    | None -> ignore (emit state fstate (Bytecode.Push 0)));
    (* the initializer is evaluated before the name is (re)bound *)
    let slot = declare_local fstate name in
    ignore (emit state fstate (Bytecode.Store_local slot))
  | Ast.Expr e ->
    compile_expr state fstate e;
    ignore (emit state fstate Bytecode.Pop)
  | Ast.Assign (lhs, value_expr) ->
    compile_expr state fstate value_expr;
    compile_store state fstate s.Ast.spos lhs
  | Ast.If (cond, then_s, else_s) -> (
    compile_expr state fstate cond;
    let to_else = emit state fstate (Bytecode.Jump_if_false (-1)) in
    compile_stmt state fstate ~seq:false then_s;
    match else_s with
    | None -> patch state to_else (here state)
    | Some else_s ->
      let to_end = emit state fstate (Bytecode.Jump (-1)) in
      patch state to_else (here state);
      compile_stmt state fstate ~seq:false else_s;
      patch state to_end (here state))
  | Ast.While (cond, body) ->
    let top = here state in
    compile_expr state fstate cond;
    let to_end = emit state fstate (Bytecode.Jump_if_false (-1)) in
    push_loop fstate;
    compile_stmt state fstate ~seq:false body;
    List.iter (fun site -> patch state site top) (pop_continues fstate);
    ignore (emit state fstate (Bytecode.Jump top));
    patch state to_end (here state);
    List.iter (fun site -> patch state site (here state)) (pop_breaks fstate)
  | Ast.Do_while (body, cond) ->
    let top = here state in
    push_loop fstate;
    compile_stmt state fstate ~seq:false body;
    let cond_at = here state in
    List.iter (fun site -> patch state site cond_at) (pop_continues fstate);
    compile_expr state fstate cond;
    ignore (emit state fstate (Bytecode.Jump_if_true top));
    List.iter (fun site -> patch state site (here state)) (pop_breaks fstate)
  | Ast.For (init, cond, step, body) ->
    let saved = fstate.next_slot in
    push_scope fstate;
    Option.iter (compile_stmt state fstate ~seq:true) init;
    let top = here state in
    let to_end =
      match cond with
      | None -> None
      | Some cond ->
        compile_expr state fstate cond;
        Some (emit state fstate (Bytecode.Jump_if_false (-1)))
    in
    push_loop fstate;
    compile_stmt state fstate ~seq:false body;
    let step_at = here state in
    List.iter (fun site -> patch state site step_at) (pop_continues fstate);
    Option.iter (compile_stmt state fstate ~seq:false) step;
    ignore (emit state fstate (Bytecode.Jump top));
    Option.iter (fun site -> patch state site (here state)) to_end;
    List.iter (fun site -> patch state site (here state)) (pop_breaks fstate);
    pop_scope fstate saved
  | Ast.Switch (scrutinee, cases) ->
    compile_expr state fstate scrutinee;
    let saved = fstate.next_slot in
    push_scope fstate;
    (* the scrutinee parks in an unnameable slot ('#' cannot lex) *)
    let scrutinee_slot = declare_local fstate "#switch" in
    ignore (emit state fstate (Bytecode.Store_local scrutinee_slot));
    (* dispatch: first case with a matching label, else the first
       default — the interpreter's search order, compiled to tests *)
    let case_sites =
      List.map
        (fun case ->
          List.filter_map
            (function
              | Ast.Case v ->
                ignore (emit state fstate (Bytecode.Load_local scrutinee_slot));
                compile_expr state fstate
                  { Ast.edesc = Ast.Int_lit v; epos = s.Ast.spos };
                ignore (emit state fstate (Bytecode.Binop Ast.Eq));
                Some (emit state fstate (Bytecode.Jump_if_true (-1)))
              | Ast.Default -> None)
            case.Ast.labels)
        cases
    in
    let default_site = emit state fstate (Bytecode.Jump (-1)) in
    fstate.break_sites <- [] :: fstate.break_sites;
    let saved_case = fstate.current_case in
    let default_target = ref None in
    List.iteri
      (fun index case ->
        let entry = here state in
        List.iter
          (fun site -> patch state site entry)
          (List.nth case_sites index);
        if !default_target = None && List.mem Ast.Default case.Ast.labels then
          default_target := Some entry;
        fstate.case_counter <- fstate.case_counter + 1;
        fstate.current_case <- fstate.case_counter;
        List.iter (compile_stmt state fstate ~seq:true) case.Ast.body)
      cases;
    fstate.current_case <- saved_case;
    let switch_end = here state in
    patch state default_site
      (match !default_target with Some t -> t | None -> switch_end);
    List.iter (fun site -> patch state site switch_end) (pop_breaks fstate);
    pop_scope fstate saved
  | Ast.Break -> (
    match fstate.break_sites with
    | sites :: rest ->
      let site = emit state fstate (Bytecode.Jump (-1)) in
      fstate.break_sites <- (site :: sites) :: rest
    | [] -> unsupported "break outside loop or switch")
  | Ast.Continue -> (
    match fstate.continue_sites with
    | sites :: rest ->
      let site = emit state fstate (Bytecode.Jump (-1)) in
      fstate.continue_sites <- (site :: sites) :: rest
    | [] -> unsupported "continue outside loop")
  | Ast.Return value_expr ->
    (match value_expr with
    | Some e -> compile_expr state fstate e
    | None -> ignore (emit state fstate (Bytecode.Push 0)));
    ignore (emit state fstate Bytecode.Ret)
  | Ast.Assert e ->
    compile_expr state fstate e;
    ignore
      (emit state fstate (Bytecode.Assert_op (position_index state s.Ast.spos)))
  | Ast.Assume e ->
    compile_expr state fstate e;
    ignore
      (emit state fstate (Bytecode.Assume_op (position_index state s.Ast.spos)))
  | Ast.Halt -> ignore (emit state fstate Bytecode.Halt_op)

let compile info =
  let prog = Typecheck.program info in
  let pools =
    {
      consts = Hashtbl.create 64;
      const_list = [];
      const_count = 0;
      positions = [];
      position_count = 0;
      stmts = [];
      stmt_count = 0;
    }
  in
  let func_of_name = Hashtbl.create 16 in
  List.iteri
    (fun index (f : Ast.func) -> Hashtbl.replace func_of_name f.Ast.f_name index)
    prog.Ast.funcs;
  let func_nparams =
    Array.of_list
      (List.map
         (fun (f : Ast.func) -> List.length f.Ast.f_params)
         prog.Ast.funcs)
  in
  let state =
    {
      buf = { code = Array.make 256 Bytecode.Halt_op; len = 0 };
      pools;
      func_of_name;
      func_nparams;
      global_of_name = Hashtbl.create 32;
      array_of_name = Hashtbl.create 8;
      array_len = Hashtbl.create 8;
      const_value = Hashtbl.create 8;
    }
  in
  (* globals: slots in declaration order, initializers evaluated in
     order (an initializer may read previously initialized globals) *)
  let scalar_names = ref [] and scalar_inits = ref [] in
  let array_infos = ref [] in
  let values = ref [||] in
  List.iter
    (fun (g : Ast.global) ->
      let init_value =
        match g.Ast.g_init with
        | None -> 0
        | Some e -> eval_static state !values e
      in
      if g.Ast.g_const then
        Hashtbl.replace state.const_value g.Ast.g_name init_value
      else
        match g.Ast.g_type with
        | Ast.Tarray size ->
          let index = List.length !array_infos in
          Hashtbl.replace state.array_of_name g.Ast.g_name index;
          Hashtbl.replace state.array_len g.Ast.g_name size;
          array_infos :=
            { Bytecode.arr_name = g.Ast.g_name; arr_len = size }
            :: !array_infos
        | Ast.Tint | Ast.Tbool | Ast.Tvoid ->
          let slot = List.length !scalar_names in
          Hashtbl.replace state.global_of_name g.Ast.g_name slot;
          scalar_names := g.Ast.g_name :: !scalar_names;
          scalar_inits := init_value :: !scalar_inits;
          let grown = Array.make (slot + 1) 0 in
          Array.blit !values 0 grown 0 slot;
          grown.(slot) <- init_value;
          values := grown)
    prog.Ast.globals;
  (* functions *)
  let funcs =
    Array.of_list
      (List.mapi
         (fun index (f : Ast.func) ->
           let fstate =
             {
               scopes = [];
               next_slot = 0;
               max_frame = 0;
               depth = 0;
               max_depth = 0;
               current_case = -1;
               case_counter = 0;
               continue_sites = [];
               break_sites = [];
             }
           in
           let entry = here state in
           ignore (emit state fstate (Bytecode.Obs_entry index));
           (* parameters share the scope of the body's top-level
              declarations, as in the interpreter's call frame *)
           push_scope fstate;
           List.iter
             (fun (param, _typ) -> ignore (declare_local fstate param))
             f.Ast.f_params;
           List.iter (compile_stmt state fstate ~seq:true) f.Ast.f_body;
           (* fell off the end: return 0 (void callers ignore it) *)
           ignore (emit state fstate (Bytecode.Push 0));
           ignore (emit state fstate Bytecode.Ret);
           {
             Bytecode.fn_name = f.Ast.f_name;
             fn_entry = entry;
             fn_nparams = List.length f.Ast.f_params;
             fn_frame = max fstate.max_frame (List.length f.Ast.f_params);
             fn_stack = max 1 fstate.max_depth;
             fn_void = f.Ast.f_ret = Ast.Tvoid;
           })
         prog.Ast.funcs)
  in
  {
    Bytecode.code = Array.sub state.buf.code 0 state.buf.len;
    consts = Array.of_list (List.rev pools.const_list);
    funcs;
    func_of_name;
    globals = Array.of_list (List.rev !scalar_names);
    global_of_name = state.global_of_name;
    global_init = Array.of_list (List.rev !scalar_inits);
    arrays = Array.of_list (List.rev !array_infos);
    array_of_name = state.array_of_name;
    const_globals =
      List.filter_map
        (fun (g : Ast.global) ->
          if g.Ast.g_const then
            Some (g.Ast.g_name, Hashtbl.find state.const_value g.Ast.g_name)
          else None)
        prog.Ast.globals;
    positions = Array.of_list (List.rev pools.positions);
    stmts = Array.of_list (List.rev pools.stmts);
  }
