(** AST -> bytecode lowering for the {!Vm} backend.

    Lowers a typechecked program to {!Bytecode.t}: variables to slots,
    literals and const globals to the constants pool, control flow to
    jumps, with every observation point of the interpreter — statement
    tick, function entry, virtual memory, nondet — as an explicit
    opcode, so the compiled program replays the interpreter's event
    sequence (and its PC-event timing reference) exactly.

    Global initializers are evaluated here, in declaration order, into
    the program's initial scalar store; the typechecker guarantees they
    are pure. *)

exception Unsupported of string
(** Raised for the rare constructs whose interpreter semantics are
    dynamically scoped and cannot be compiled to fixed slots: a local
    declared directly in one switch case and referenced from another,
    and a declaration that executes conditionally into its enclosing
    scope (a bare [Decl] as an [if]/[while]/[for] body or [for] step).
    {!Exec}'s [Auto] backend falls back to the interpreter on this. *)

val compile : Typecheck.info -> Bytecode.t
