(** Flat bytecode for MiniC (the VM's program form).

    One instruction array for the whole program; variables are resolved
    to integer slots at compile time (locals to frame slots, scalar
    globals and arrays to their own stores), literals to the constants
    pool, and the execution observation points — statement-counter tick
    ([on_statement]), function entry ([fname]) and virtual-memory access
    — are explicit opcodes ({!Tick}, {!Obs_entry}, {!Obs_mem_read} /
    {!Obs_mem_write}), so a VM run preserves the interpreter's event
    sequence, the PC-event timing reference included. Produced by
    {!Compile.compile}, executed by {!Vm}. *)

type instr =
  | Push of int  (** push an immediate (compiler-generated 0/1 etc.) *)
  | Const of int  (** push [consts.(i)] from the constants pool *)
  | Load_local of int
  | Store_local of int
  | Load_global of int
  | Store_global of int
  | Load_elem of int * int  (** array slot, position index; pops the index *)
  | Store_elem of int * int
      (** array slot, position index; pops the index, then the value *)
  | Unop of Ast.unop
  | Binop of Ast.binop
      (** straight-line operators only: [Div]/[Mod] (checked) and
          [Land]/[Lor] (short-circuit jumps) are never emitted here *)
  | Div_chk of int  (** checked division; position index for the error *)
  | Mod_chk of int
  | Bool_cast  (** normalize the top of stack to 0/1 *)
  | Jump of int
  | Jump_if_false of int  (** pop; jump when zero *)
  | Jump_if_true of int  (** pop; jump when non-zero *)
  | Call of int  (** function table index; pops the arguments *)
  | Ret  (** pop the return value, leave the function *)
  | Pop
  | Tick of int
      (** statement boundary: fuel check, statement counter,
          [on_statement stmts.(i)] — the PC-event timing reference *)
  | Obs_entry of int
      (** function table index: [on_function_entry] after parameters are
          bound (the [fname] observation point) *)
  | Obs_mem_read  (** pop an address, push [mem_read addr] (vmem) *)
  | Obs_mem_write  (** pop an address, then a value; [mem_write] (vmem) *)
  | Nondet_op of int  (** position index; pops [hi], then [lo] *)
  | Assert_op of int  (** position index; pop, raise when zero *)
  | Assume_op of int
  | Halt_op

type fn = {
  fn_name : string;
  fn_entry : int;  (** first instruction (the [Obs_entry]) *)
  fn_nparams : int;  (** parameters occupy frame slots 0..n-1 *)
  fn_frame : int;  (** frame slots including parameters *)
  fn_stack : int;  (** operand-stack bound (compile-time upper bound) *)
  fn_void : bool;
}

type array_info = { arr_name : string; arr_len : int }

type t = {
  code : instr array;
  consts : int array;  (** the constants pool *)
  funcs : fn array;
  func_of_name : (string, int) Hashtbl.t;
  globals : string array;  (** scalar-global slot -> name, decl order *)
  global_of_name : (string, int) Hashtbl.t;
  global_init : int array;  (** initial scalar values (statically evaluated) *)
  arrays : array_info array;
  array_of_name : (string, int) Hashtbl.t;
  const_globals : (string * int) list;  (** const globals, decl order *)
  positions : Ast.position array;
  stmts : Ast.stmt array;  (** [Tick] payloads for [on_statement] *)
}

val instr_name : instr -> string
(** Mnemonic only (the DESIGN.md opcode-table names). *)

val pp_instr : t -> Format.formatter -> instr -> unit

val disassemble : t -> string
(** Per-function listing with resolved names, for debugging and tests. *)

val stats : t -> string
