(** Backend-agnostic execution of MiniC programs.

    The single entry point the rest of the system uses to run embedded
    software: the verification session's reference backend, the derived
    SystemC-like model and the EEE harness all go through this
    interface, so the tree-walking {!Interp} and the bytecode {!Vm} are
    interchangeable per run ([--backend interp|vm|auto] on the CLI).

    The outcome, hook and exception types are equalities with the
    interpreter's, so existing pattern matches compile unchanged, and
    both backends produce identical observable behavior — same hook
    order, statement counts, verdicts, error messages — with the
    interpreter retained as the differential-testing oracle. *)

type kind =
  | Interp  (** tree-walking reference interpreter *)
  | Vm  (** bytecode compiler + dispatch-loop VM *)
  | Auto
      (** prefer the VM; fall back to the interpreter when the compiler
          rejects a program ({!Compile.Unsupported}) *)

type outcome = Interp.outcome =
  | Finished of int option
  | Halted
  | Fuel_exhausted

type hooks = Interp.hooks = {
  mem_read : int -> int;
  mem_write : int -> int -> unit;
  nondet : lo:int -> hi:int -> int;
  on_statement : Ast.stmt -> unit;
  on_function_entry : string -> unit;
}

exception Assertion_failed of Ast.position
exception Assumption_failed of Ast.position
exception Runtime_error of string * Ast.position
exception Out_of_fuel

val default_hooks : unit -> hooks

val to_string : kind -> string
(** ["interp"], ["vm"], ["auto"] — the CLI names. *)

val of_string : string -> kind option

type t

val create : ?backend:kind -> Typecheck.info -> t
(** Instantiate a program on the chosen backend (default [Auto]).
    Globals are initialized in declaration order either way.
    @raise Compile.Unsupported when [backend] is [Vm] and the program
    uses a construct the compiler rejects. *)

val kind : t -> kind
(** The resolved backend: [Interp] or [Vm], never [Auto]. *)

val kind_name : t -> string

val requested : t -> kind
(** What {!create} was asked for (may be [Auto]). *)

val info : t -> Typecheck.info

val bytecode : t -> Bytecode.t option
(** The compiled program when the VM backend is active. *)

val set_hooks : t -> hooks -> unit
(** Register the hooks used by {!run}/{!call} when none are passed. *)

val hooks : t -> hooks

val reset : t -> unit
(** Back to the freshly created state: globals reinitialized, statement
    count zeroed. *)

val run : ?fuel:int -> ?hooks:hooks -> t -> entry:string -> outcome
(** Call the entry function (default fuel: 10 million statements).
    @raise Invalid_argument if [entry] does not exist or takes
    parameters.
    @raise Assertion_failed, Runtime_error as encountered. *)

val call : ?hooks:hooks -> t -> fuel:int ref -> string -> int list -> int option
(** Invoke one function with argument values (drivers issuing
    individual operations against a resident program state). *)

val read_global : t -> string -> int
(** @raise Invalid_argument for unknown or array globals. *)

val write_global : t -> string -> int -> unit

val read_element : t -> string -> int -> int

val globals_snapshot : t -> (string * int) list
(** Scalar globals with current values, sorted by name. *)

val statements_executed : t -> int
