(** Executor for the derived software model (approach 2).

    The derived model runs as a simulation thread ([SC_THREAD]); after
    every executed statement it notifies [esw_pc_event] and suspends for
    one time unit, making simulation time equal the statement count — the
    paper's program-counter timing reference. The temporal checker attaches
    to [pc_event]; time bounds in properties are therefore counted in
    statements, not clock cycles, which is why the same property needs far
    smaller bounds than under approach 1.

    The model's memory operations are bound to a {!Vmem}; [nondet] draws
    from a deterministic stimulus stream; flash-style devices that need a
    time base are advanced once per statement through [on_tick]. Execution
    goes through {!Minic.Exec}, so the model runs on either the reference
    interpreter or the bytecode VM ([backend], default [Auto]) with
    identical event sequences. *)

type outcome_state =
  | Not_started
  | Running
  | Done of Minic.Exec.outcome
  | Crashed of exn  (** assertion failure / runtime error of the software *)

type t

val create :
  Sim.Kernel.t ->
  ?seed:int ->
  ?on_tick:(unit -> unit) ->
  ?jitter:(unit -> int) ->
  ?backend:Minic.Exec.kind ->
  C2sc.derived ->
  vmem:Vmem.t ->
  t
(** [jitter] (default none) is drawn once per executed statement; a
    positive result adds that many extra simulation time units to the
    statement's duration — probabilistic handshake timing jitter for
    statistical model checking. The statement count itself (and with it
    {!statements}) is unaffected; only the kernel-time cost of each
    statement stretches, so time-budgeted runs cover fewer statements
    and busy-wait handshakes can expire. Draw jitter from a dedicated
    {!Stimuli.Prng} substream to keep runs replayable. *)

val derived : t -> C2sc.derived

val pc_event : t -> Sim.Kernel.event
val vmem : t -> Vmem.t
val statements : t -> int
(** Statements executed so far (= simulation time units consumed). *)

val read_member : t -> string -> int
(** Observe a class member (global variable) of the running model. *)

val outcome : t -> outcome_state

val start : ?fuel:int -> t -> entry:string -> Sim.Kernel.process
(** Spawn the model thread; default fuel 50 million statements. The
    process body catches software-level exceptions into [Crashed]. *)

val exec : t -> Minic.Exec.t
(** The underlying execution backend (advanced use: drivers calling
    individual operations, backend introspection). *)

val hooks : t -> Minic.Exec.hooks
