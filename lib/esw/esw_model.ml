type outcome_state =
  | Not_started
  | Running
  | Done of Minic.Exec.outcome
  | Crashed of exn

type t = {
  kernel : Sim.Kernel.t;
  derived : C2sc.derived;
  vm : Vmem.t;
  exec : Minic.Exec.t;
  pc_ev : Sim.Kernel.event;
  mutable state : outcome_state;
  mutable stmt_count : int;
}

let create kernel ?(seed = 42) ?(on_tick = fun () -> ()) ?jitter
    ?(backend = Minic.Exec.Auto) derived ~vmem =
  let pc_ev = Sim.Kernel.event kernel "esw_pc_event" in
  let exec = Minic.Exec.create ~backend derived.C2sc.model_info in
  let prng = Stimuli.Prng.create ~seed in
  let stimulus = Stimuli.Prng.split prng "stimulus" in
  let model =
    {
      kernel;
      derived;
      vm = vmem;
      exec;
      pc_ev;
      state = Not_started;
      stmt_count = 0;
    }
  in
  Minic.Exec.set_hooks exec
    {
      Minic.Exec.mem_read = (fun addr -> Vmem.read vmem addr);
      mem_write = (fun addr value -> Vmem.write vmem addr value);
      nondet =
        (fun ~lo ~hi ->
          lo + (Stimuli.Prng.bits stimulus land 0xFFFFF) mod (hi - lo + 1));
      on_statement =
        (fun _stmt ->
          model.stmt_count <- model.stmt_count + 1;
          on_tick ();
          Sim.Kernel.notify pc_ev;
          (* timing jitter stretches the statement's simulated duration;
             statement count (and therefore the property time base under
             [statements]-driven bounds) is unaffected *)
          let extra = match jitter with None -> 0 | Some draw -> draw () in
          Sim.Kernel.wait_for kernel (1 + max 0 extra));
      on_function_entry = (fun _ -> ());
    };
  model

let derived model = model.derived
let pc_event model = model.pc_ev
let vmem model = model.vm
let statements model = model.stmt_count
let read_member model name = Minic.Exec.read_global model.exec name
let outcome model = model.state
let exec model = model.exec
let hooks model = Minic.Exec.hooks model.exec

let start ?(fuel = 50_000_000) model ~entry =
  if model.state <> Not_started then
    invalid_arg "Esw_model.start: already started";
  model.state <- Running;
  let final_sample () =
    (* the pc event fires before each statement, so emit one final
       notification to expose the state after the last statement *)
    Sim.Kernel.notify model.pc_ev;
    Sim.Kernel.wait_for model.kernel 1
  in
  let body () =
    (match Minic.Exec.run ~fuel model.exec ~entry with
    | result -> model.state <- Done result
    | exception
        ((Minic.Exec.Assertion_failed _ | Minic.Exec.Assumption_failed _
         | Minic.Exec.Runtime_error _) as exn) ->
      model.state <- Crashed exn);
    final_sample ()
  in
  Sim.Kernel.spawn model.kernel ~name:(model.derived.C2sc.class_name ^ ".main")
    body
