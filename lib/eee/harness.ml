module Flash = Dataflash.Flash
module Session = Verif.Session
module Registry = Obs.Registry

let flash_campaign_config ~fault_rate =
  {
    Flash.num_blocks = 4;
    words_per_block = 128;
    erase_ticks = 800;
    write_ticks = 8;
    write_fail_prob = fault_rate;
    erase_fail_prob = fault_rate /. 2.0;
  }

(* same block layout, 20x faster erase/program timing: for tests that
   need short busy windows without changing what the software sees *)
let flash_quick_config ~fault_rate =
  { (flash_campaign_config ~fault_rate) with Flash.erase_ticks = 40; write_ticks = 4 }

let approach1 ?(fault_rate = 0.02) ?flash ?(faults = Smc.Faults.none)
    ?(seed = 42) ?(chunk_cycles = 60) ?(trace = Verif.Trace.null)
    ?(metrics = Registry.null) () =
  let flash =
    match flash with
    | Some config -> config
    | None -> flash_campaign_config ~fault_rate
  in
  let config =
    Smc.Faults.apply faults
      {
        Session.default_config with
        Session.session_name = "eee-approach1";
        seed;
        chunk = chunk_cycles;
        flash = Some flash;
        flag = Some "flag";
        trace;
        metrics;
      }
  in
  let session =
    Session.create ~compiled:(Eee_program.compile ()) config Session.Soc_model
  in
  (* boot until the software completes its initialization handshake *)
  Session.boot session;
  session

let approach2 ?(fault_rate = 0.02) ?flash ?(faults = Smc.Faults.none)
    ?(seed = 42) ?(chunk_statements = 60) ?(backend = Minic.Exec.Auto)
    ?(trace = Verif.Trace.null) ?(metrics = Registry.null) () =
  let flash =
    match flash with
    | Some config -> config
    | None -> flash_campaign_config ~fault_rate
  in
  let config =
    Smc.Faults.apply faults
      {
        Session.default_config with
        Session.session_name = "eee-approach2";
        seed;
        chunk = chunk_statements;
        flash = Some flash;
        exec_backend = backend;
        trace;
        metrics;
      }
  in
  let session =
    Session.create ~derived:(Eee_program.derive ()) config
      Session.Derived_model
  in
  (* let the model run its initialization *)
  Session.boot session;
  session

(* --- parallel campaigns -------------------------------------------------- *)

type plan = {
  ops : Eee_spec.op list;
  approaches : int list;
  cases_per_op : int;
  bound : int option;
  engine : Sctc.Checker.engine;
  fault_rate : float;
  faults : Smc.Faults.t;
  watchdog_chunks : int;
  seed : int;
  flash : Flash.config option;
  backend : Minic.Exec.kind;
  metrics : Registry.t;
}

let default_plan =
  {
    ops = Eee_spec.all_ops;
    approaches = [ 2 ];
    cases_per_op = 50;
    bound = None;
    engine = Sctc.Checker.Auto;
    fault_rate = 0.02;
    faults = Smc.Faults.none;
    watchdog_chunks = 200;
    seed = 7;
    flash = None;
    backend = Minic.Exec.Auto;
    metrics = Registry.null;
  }

(* per-(approach, op) metric handles, resolved on the calling domain so
   job closures carry ready handles into the pool *)
let job_meters plan ~approach ~op =
  let metrics = plan.metrics in
  let labels =
    [ ("approach", string_of_int approach); ("op", Eee_spec.op_name op) ]
  in
  let metered = Registry.enabled metrics in
  let cases =
    Registry.counter metrics "eee_cases_total" ~labels
      ~help:"completed constrained-random test cases"
  and timeouts =
    Registry.counter metrics "eee_timeouts_total" ~labels
      ~help:"watchdog hits during campaign jobs"
  and triggers =
    Registry.counter metrics "eee_triggers_total" ~labels
      ~help:"checker triggers consumed by campaign jobs"
  and vt =
    Registry.timer metrics "eee_vt_seconds" ~labels
      ~help:"per-job verification time (paper column V.T.)"
  in
  fun (result : Verif.Result.t) ->
    if metered then begin
      Registry.Counter.add cases (Verif.Result.completed_cases result);
      Registry.Counter.add timeouts result.Verif.Result.timeouts;
      Registry.Counter.add triggers result.Verif.Result.triggers;
      Registry.Timer.observe vt result.Verif.Result.vt_seconds
    end;
    result

(* the common job body: a fresh booted session from an explicit seed,
   the operation's spec installed, one constrained-random campaign *)
let plan_job plan ~approach ~op ~label ~session_seed ~driver_seed =
  let record = job_meters plan ~approach ~op in
  Verif.Campaign.job ~label (fun trace ->
      let session =
        match approach with
        | 1 ->
          approach1 ~fault_rate:plan.fault_rate ?flash:plan.flash
            ~faults:plan.faults ~seed:session_seed ~trace
            ~metrics:plan.metrics ()
        | 2 ->
          approach2 ~fault_rate:plan.fault_rate ?flash:plan.flash
            ~faults:plan.faults ~seed:session_seed ~backend:plan.backend
            ~trace ~metrics:plan.metrics ()
        | n -> invalid_arg (Printf.sprintf "unknown approach %d" n)
      in
      Driver.install_spec ~bound:plan.bound ~engine:plan.engine session
        [ op ];
      let config =
        {
          Driver.test_cases = plan.cases_per_op;
          watchdog_chunks = plan.watchdog_chunks;
          bound = plan.bound;
          engine = plan.engine;
          seed = driver_seed;
        }
      in
      record (Driver.run_campaign session config op))

(* per-job stimulus: two ints off stream [index] of the campaign seed —
   identical for every worker count (see Prng) *)
let job_seeds plan ~index =
  let stream = Stimuli.Prng.of_seed_index ~seed:plan.seed ~index in
  let session_seed = Stimuli.Prng.bits stream in
  let driver_seed = Stimuli.Prng.bits stream in
  (session_seed, driver_seed)

(* the memoized program forms are lazy: force them here, on the calling
   domain, so campaign workers never race to force them *)
let force_programs approaches =
  if List.mem 1 approaches then ignore (Eee_program.compile ());
  if List.mem 2 approaches then ignore (Eee_program.derive ())

let campaign_jobs plan =
  force_programs plan.approaches;
  List.concat_map
    (fun approach -> List.map (fun op -> (approach, op)) plan.ops)
    plan.approaches
  |> List.mapi (fun index (approach, op) ->
         let session_seed, driver_seed = job_seeds plan ~index in
         let label =
           Printf.sprintf "a%d/%s" approach (Eee_spec.op_name op)
         in
         plan_job plan ~approach ~op ~label ~session_seed ~driver_seed)

(* --- statistical model checking samples ---------------------------------- *)

let smc_sample_job plan ~approach ~op ~index =
  force_programs [ approach ];
  let session_seed, driver_seed = job_seeds plan ~index in
  let label =
    Printf.sprintf "a%d/%s/#%d" approach (Eee_spec.op_name op) index
  in
  plan_job plan ~approach ~op ~label ~session_seed ~driver_seed

let smc_succeeded ?prop (outcome : Verif.Campaign.outcome) =
  match outcome.Verif.Campaign.result with
  | Error _ -> false (* a crashed sample never counts as the property holding *)
  | Ok result ->
    let verdict =
      match prop with
      | None -> Verif.Result.overall result
      | Some name -> Verif.Result.verdict result name
    in
    not (Verdict.equal verdict Verdict.False)

let run_campaign ?workers ?chunk plan =
  Verif.Campaign.run ~metrics:plan.metrics ?workers ?chunk
    (campaign_jobs plan)

let run_campaign_stream ?workers ?chunk ?window ?sinks plan =
  Verif.Campaign.run_stream ~metrics:plan.metrics ?workers ?chunk ?window
    ?sinks (campaign_jobs plan)
