module Mailbox = Platform.Mailbox
module Checker = Sctc.Checker
module Coverage = Sctc.Coverage
module Prng = Stimuli.Prng
module Session = Verif.Session
module Trace = Verif.Trace

type config = {
  test_cases : int;
  watchdog_chunks : int;
  bound : int option;
  engine : Checker.engine;
  seed : int;
}

let default_config =
  {
    test_cases = 200;
    watchdog_chunks = 200;
    bound = None;
    engine = Checker.Auto;
    seed = 7;
  }

let max_id = 16 (* must match MAX_ID in the software *)

let install_spec ?(bound = None) ?(engine : Checker.engine = Checker.Auto)
    session ops =
  let checker = Session.checker session in
  let mbox = Session.mailbox session in
  List.iter
    (fun op ->
      (* "<op>_called": entering the operation's implementation function *)
      let called =
        Proposition.rose (Eee_spec.called_prop op)
          (Session.in_function session (Eee_spec.entry_function op))
      in
      Checker.register_proposition checker called;
      (* "<op>_ret_<code>": a response for this op with that code is
         currently posted in the mailbox *)
      List.iter
        (fun code ->
          let name = Eee_spec.return_prop op code in
          let sample () =
            Mailbox.response_ready mbox
            && Session.read_var session "eee_done_op" = Eee_spec.op_code op
            && Session.read_var session "eee_done_ret" = code
          in
          Checker.register_proposition checker (Proposition.make name sample))
        (Eee_spec.expected_returns op);
      Checker.add_property_text ~engine checker
        ~name:(Eee_spec.property_name op)
        (Eee_spec.property_text ?bound op))
    ops

(* constrained-random arguments per operation *)
let random_args prng op =
  let random_id () =
    if Prng.chance prng 0.12 then
      (* out-of-range stimulus to exercise EEE_ERR_PARAMETER *)
      Prng.pick prng [ -3; -1; max_id; max_id + 7 ]
    else Prng.int_range prng ~lo:0 ~hi:(max_id - 1)
  in
  match op with
  | Eee_spec.Read -> (random_id (), 0)
  | Eee_spec.Write -> (random_id (), Prng.int_range prng ~lo:0 ~hi:1_000_000)
  | Eee_spec.Startup1 | Eee_spec.Startup2 | Eee_spec.Format
  | Eee_spec.Prepare | Eee_spec.Refresh ->
    (0, 0)

(* issue one operation and wait for its response (or the watchdog); when
   [case] is given and the session traces, the test-case boundary and any
   watchdog expiry are published on the bus *)
let issue ?case session config prng op =
  let trace = Session.trace session in
  let tracing = Trace.enabled trace in
  let mbox = Session.mailbox session in
  let arg0, arg1 = random_args prng op in
  (match case with
  | Some index when tracing ->
    Trace.emit trace
      (Trace.Test_case_begin { index; op = Eee_spec.op_name op })
  | _ -> ());
  Mailbox.post_request mbox ~op:(Eee_spec.op_code op) ~arg0 ~arg1;
  let rec wait chunk =
    if Mailbox.response_ready mbox then Some (Mailbox.take_response mbox)
    else if chunk >= config.watchdog_chunks || not (Session.alive session) then
      None
    else begin
      Session.advance session;
      wait (chunk + 1)
    end
  in
  let response = wait 0 in
  (match case with
  | Some index when tracing ->
    (match response with
    | None ->
      Trace.emit trace
        (Trace.Watchdog_fired { index; op = Eee_spec.op_name op })
    | Some _ -> ());
    Trace.emit trace
      (Trace.Test_case_end
         { index; result = Option.map Eee_spec.return_name response })
  | _ -> ());
  response

(* a context operation to walk the emulation through its state space;
   weights favour the operations that change global state *)
let context_op prng =
  Prng.pick_weighted prng
    [
      (3, Eee_spec.Write);
      (2, Eee_spec.Read);
      (2, Eee_spec.Prepare);
      (2, Eee_spec.Refresh);
      (1, Eee_spec.Format);
      (1, Eee_spec.Startup1);
      (1, Eee_spec.Startup2);
    ]

let run_campaign session config op =
  let prng = Prng.create ~seed:config.seed in
  let coverage =
    Coverage.create ~name:(Eee_spec.op_name op)
      ~expected:(List.map Eee_spec.return_name (Eee_spec.expected_returns op))
  in
  let timeouts = ref 0 in
  let completed = ref 0 in
  Session.restart_timer session;
  (* bootstrap: bring the emulation up once, as an application would; the
     campaign's context operations (startup1 downgrades, failed formats)
     reopen the uninitialized states afterwards *)
  List.iter
    (fun boot -> ignore (issue session config prng boot))
    [ Eee_spec.Format; Eee_spec.Startup1; Eee_spec.Startup2 ];
  for case = 1 to config.test_cases do
    if Session.alive session then begin
      (* frequently reshuffle the emulation state first *)
      if Prng.chance prng 0.5 then
        ignore (issue session config prng (context_op prng));
      (* back-to-back issue right after a state-changing op maximizes the
         chance of catching the background erase (EEE_BUSY) *)
      match issue ~case session config prng op with
      | Some ret ->
        incr completed;
        Coverage.observe coverage (Eee_spec.return_name ret)
      | None -> incr timeouts
    end
  done;
  Session.result ~test_cases:!completed ~timeouts:!timeouts ~coverage session
