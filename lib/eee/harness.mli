(** Sessions binding the campaign driver to the two verification
    approaches. Both run the identical EEPROM-emulation software against
    identical device models; they differ exactly as the paper's approaches
    do — where the software executes and what triggers the checker. Both
    are assembled through {!Verif.Session} and returned booted (the
    approach-1 initialization-flag handshake completed, the approach-2
    model past its initialization chunk). *)

val flash_campaign_config : fault_rate:float -> Dataflash.Flash.config
(** Campaign flash geometry: 4 x 128 words, slow erase (wide EEE_BUSY
    window), program/erase faults injected at [fault_rate]. *)

val flash_quick_config : fault_rate:float -> Dataflash.Flash.config
(** Same block layout as {!flash_campaign_config} but with 20x faster
    erase/program timing, for tests that need short busy windows
    without changing what the software sees. *)

val approach1 :
  ?fault_rate:float ->
  ?flash:Dataflash.Flash.config ->
  ?faults:Smc.Faults.t ->
  ?seed:int ->
  ?chunk_cycles:int ->
  ?trace:Verif.Trace.t ->
  ?metrics:Obs.Registry.t ->
  unit ->
  Verif.Session.t
(** Approach 1: compile the software, load it into the SoC, attach the ESW
    monitor (clock trigger + flag handshake), and boot until the software
    raises its initialization flag. [chunk_cycles] is the granularity of
    {!Verif.Session.advance} (default 60). *)

val approach2 :
  ?fault_rate:float ->
  ?flash:Dataflash.Flash.config ->
  ?faults:Smc.Faults.t ->
  ?seed:int ->
  ?chunk_statements:int ->
  ?backend:Minic.Exec.kind ->
  ?trace:Verif.Trace.t ->
  ?metrics:Obs.Registry.t ->
  unit ->
  Verif.Session.t
(** Approach 2: derive the SystemC software model, map flash controller,
    flash window and mailbox into the virtual memory model, attach the
    checker to the program-counter event, and start the model thread.
    [chunk_statements] defaults to 60; [backend] selects how the model
    executes MiniC (default [Auto]: bytecode VM with interpreter
    fallback). *)

(** {2 Parallel campaigns}

    A Fig. 8-style campaign — approaches x operations, each an
    independent constrained-random run — expressed as {!Verif.Campaign}
    jobs. Each job builds its own booted session with stimulus derived
    from {!Stimuli.Prng.of_seed_index} of the plan seed and the job
    index, so campaign results are reproducible for any worker count. *)

type plan = {
  ops : Eee_spec.op list;
  approaches : int list;  (** subset of [[1; 2]] *)
  cases_per_op : int;
  bound : int option;  (** response-property time bound *)
  engine : Sctc.Checker.engine;
  fault_rate : float;  (** flash fault-injection probability *)
  faults : Smc.Faults.t;
      (** probabilistic fault stimuli (bit decay, power loss, handshake
          jitter) applied to every job's session; {!Smc.Faults.none}
          (the default) leaves sessions byte-identical to a plan without
          the field *)
  watchdog_chunks : int;
  seed : int;  (** campaign master seed *)
  flash : Dataflash.Flash.config option;
      (** flash geometry/timing override; [None] means
          {!flash_campaign_config} at [fault_rate] *)
  backend : Minic.Exec.kind;
      (** MiniC execution backend for approach-2 sessions (default
          [Auto]); approach 1 executes compiled code and ignores it *)
  metrics : Obs.Registry.t;
      (** threaded into every job's session, the pool, and the per-job
          [eee_*] counters/histograms labeled [{approach, op}];
          {!Obs.Registry.null} (the default) disables recording *)
}

val default_plan : plan
(** All seven operations on approach 2, 50 cases each, no bound,
    on-the-fly engine, fault rate 0.02, watchdog 200, seed 7, null
    metrics registry. *)

val campaign_jobs : plan -> Verif.Campaign.job list
(** One job per approach x operation, in plan order. Forces the memoized
    compiled/derived program forms on the calling domain first, so
    workers never race to force them. *)

val run_campaign : ?workers:int -> ?chunk:int -> plan -> Verif.Campaign.summary
(** {!Verif.Campaign.run} over {!campaign_jobs}; [chunk] is the number
    of consecutive jobs a worker claims per queue-mutex acquisition
    (scheduling only — results are identical for any value). *)

val run_campaign_stream :
  ?workers:int ->
  ?chunk:int ->
  ?window:int ->
  ?sinks:Verif.Campaign.sink list ->
  plan ->
  Verif.Campaign.summary
(** {!Verif.Campaign.run_stream} over {!campaign_jobs}: outcomes flow
    to [sinks] in job order as soon as ordering allows, under a bounded
    reassembly [window] — the JSONL a streaming sink receives is byte
    for byte what {!run_campaign} plus [Campaign.to_jsonl] produces. *)

(** {2 Statistical model checking}

    {!Smc.Runner} samples: each sample index is one full
    constrained-random campaign of [plan.cases_per_op] cases against a
    fresh session, with stimulus (session seed, driver seed) derived
    from {!Stimuli.Prng.of_seed_index} of the plan seed — sample [i] is
    the same run regardless of worker count or how many samples the
    estimator ends up drawing. *)

val smc_sample_job :
  plan -> approach:int -> op:Eee_spec.op -> index:int -> Verif.Campaign.job
(** The job of sample [index], labelled ["a<approach>/<op>/#<index>"].
    Forces the memoized program forms on the calling domain (call it
    from the domain that builds the job list, as {!Smc.Runner.run}
    does). *)

val smc_succeeded : ?prop:string -> Verif.Campaign.outcome -> bool
(** The Bernoulli verdict of one sample: [true] when the property was
    not violated — {!Verif.Result.overall} by default, the named
    property's verdict with [prop]. A crashed job counts as a failure.
    @raise Invalid_argument for unknown property names (which surfaces
    as the campaign's sink failure). *)
