module Coverage = Sctc.Coverage

type property = {
  property : string;
  verdict : Verdict.t;
  first_final_at : int option;
}

type t = {
  backend : string;
  properties : property list;
  triggers : int;
  time_units : int;
  vt_seconds : float;
  synthesis_seconds : float;
  test_cases : int option;
  timeouts : int;
  coverage : Sctc.Coverage.t option;
  trace_events : int;
}

let find_opt result name =
  List.find_opt (fun p -> String.equal p.property name) result.properties

let find caller result name =
  match find_opt result name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Verif.Result.%s: unknown property %S (known: %s)" caller
         name
         (match List.map (fun p -> p.property) result.properties with
         | [] -> "none"
         | names -> String.concat ", " names))

let verdict result name = (find "verdict" result name).verdict
let first_final_at result name = (find "first_final_at" result name).first_final_at

let verdict_opt result name =
  Option.map (fun p -> p.verdict) (find_opt result name)

let first_final_at_opt result name =
  Option.bind (find_opt result name) (fun p -> p.first_final_at)

let overall result =
  List.fold_left
    (fun acc p -> Verdict.combine acc p.verdict)
    Verdict.True result.properties

let completed_cases result =
  match result.test_cases with Some n -> n | None -> 0

let coverage_percent result =
  match result.coverage with Some c -> Coverage.percent c | None -> 0.0

let missing_returns result =
  match result.coverage with Some c -> Coverage.missing c | None -> []

let to_row ?name result =
  let name = match name with Some n -> n | None -> result.backend in
  Sctc.Report.row ?test_cases:result.test_cases
    ?coverage_pct:(Option.map Coverage.percent result.coverage)
    name result.vt_seconds
    (Verdict.to_string (overall result))

let pp fmt result =
  Format.fprintf fmt "@[<v>%s: V.T.=%.3fs (synth %.3fs)  triggers=%d  units=%d"
    result.backend result.vt_seconds result.synthesis_seconds result.triggers
    result.time_units;
  (match result.test_cases with
  | Some cases -> Format.fprintf fmt "  T.C.=%d  timeouts=%d" cases result.timeouts
  | None -> ());
  (match result.coverage with
  | Some coverage -> Format.fprintf fmt "  C=%.1f%%" (Coverage.percent coverage)
  | None -> ());
  List.iter
    (fun p ->
      Format.fprintf fmt "@,  %-24s %-8s%s" p.property
        (Verdict.to_string p.verdict)
        (match p.first_final_at with
        | Some tu -> Printf.sprintf "  (final at %d)" tu
        | None -> ""))
    result.properties;
  Format.fprintf fmt "@]"
