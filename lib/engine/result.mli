(** The uniform outcome record of a verification session.

    Every front end — the CLI, the campaign driver, the benchmark
    harness — consumes this one shape instead of a private ad-hoc
    record per call site. Produced by {!Session.result}. *)

type property = {
  property : string;
  verdict : Verdict.t;  (** verdict at the end of the run *)
  first_final_at : int option;
      (** time unit (cycles / statements) of the first final verdict *)
}

type t = {
  backend : string;  (** {!Session.backend_name} of the producing session *)
  properties : property list;  (** registration order *)
  triggers : int;  (** checker steps over the session's lifetime *)
  time_units : int;  (** cycles / statements consumed since the timer *)
  vt_seconds : float;  (** paper column V.T.(s): wall clock + synthesis *)
  synthesis_seconds : float;  (** AR-automaton generation part *)
  test_cases : int option;  (** completed cases (campaigns only) *)
  timeouts : int;  (** watchdog hits (campaigns only) *)
  coverage : Sctc.Coverage.t option;  (** return coverage (campaigns only) *)
  trace_events : int;
      (** events the session published on its trace bus — the count a
          streaming campaign sink receives for this job, recorded here
          so consumers can cross-check emission without retaining the
          event buffers themselves *)
}

val verdict : t -> string -> Verdict.t
(** @raise Invalid_argument for unknown property names (the message
    lists the known ones). *)

val first_final_at : t -> string -> int option
(** @raise Invalid_argument for unknown property names (the message
    lists the known ones). *)

val verdict_opt : t -> string -> Verdict.t option
(** Non-raising {!verdict}; [None] for unknown names. *)

val first_final_at_opt : t -> string -> int option
(** Non-raising {!first_final_at}; [None] for unknown names and for
    properties that never reached a final verdict. *)

val overall : t -> Verdict.t
(** {!Verdict.combine} over all properties. *)

val completed_cases : t -> int
(** [test_cases], defaulting to 0. *)

val coverage_percent : t -> float
(** Percent of expected return values observed; 0 without coverage. *)

val missing_returns : t -> string list
(** Expected return values never observed; [[]] without coverage. *)

val to_row : ?name:string -> t -> Sctc.Report.row
(** One {!Sctc.Report} row ([name] defaults to the backend name). *)

val pp : Format.formatter -> t -> unit
