(* Bench_log — reader/writer for the BENCH_campaign.json trajectory.

   One flat JSON object per line, appended by bench/main.ml across the
   repository's history. Rows written before the "table" tag existed
   carry no tag; the reader infers their table from distinctive fields
   instead of rejecting them. Numbers appear both as plain integers and
   in the %.6g scientific notation of Trace.Json.float (1.33827e+06),
   which the core trace parser does not accept — hence the dedicated
   flat parser here. *)

module Json = Sctc.Trace.Json

type value = Number of float | Bool of bool | String of string | Null

type row = { table : string; tagged : bool; fields : (string * value) list }

exception Bad of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when Char.equal d c -> incr pos
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    let len = String.length word in
    if !pos + len <= n && String.equal (String.sub line !pos len) word then
      pos := !pos + len
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape";
          (match line.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "short \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub line (!pos + 1) 4) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?'
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if start = !pos then fail "expected a value"
    else
      match float_of_string_opt (String.sub line start (!pos - start)) with
      | Some v -> v
      | None -> fail "bad number"
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some 't' ->
      literal "true";
      Bool true
    | Some 'f' ->
      literal "false";
      Bool false
    | Some 'n' ->
      literal "null";
      Null
    | _ -> Number (parse_number ())
  in
  match
    expect '{';
    skip_ws ();
    let fields =
      if peek () = Some '}' then begin
        incr pos;
        []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, value) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after the object";
    fields
  with
  | exception Bad msg -> Error msg
  | fields -> (
    let has key = List.mem_assoc key fields in
    match List.assoc_opt "table" fields with
    | Some (String table) -> Ok { table; tagged = true; fields }
    | Some _ -> Error "\"table\" is not a string"
    | None ->
      (* pre-tag legacy rows: infer the table from fields only that
         table's writer emits (checker/simulate rows were born tagged,
         so in practice untagged rows are early campaign rows — the
         inference still keys on content, not on that history) *)
      let table =
        if has "legacy_tps" then "checker"
        else if has "interp_sps" then "simulate"
        else "campaign"
      in
      Ok { table; tagged = false; fields })

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
          match parse_line line with
          | Ok row -> go (lineno + 1) (row :: acc)
          | Error msg ->
            Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 [])

let field row key = List.assoc_opt key row.fields

let number row key =
  match field row key with Some (Number v) -> Some v | _ -> None

let int_field row key =
  match number row key with Some v -> Some (int_of_float v) | None -> None

let bool_field row key =
  match field row key with Some (Bool b) -> Some b | _ -> None

let str_field row key =
  match field row key with Some (String s) -> Some s | _ -> None

let render ~table members =
  if List.mem_assoc "table" members then
    invalid_arg "Verif.Bench_log.render: members must not contain \"table\"";
  Json.obj (("table", Json.string table) :: members)
