(* The event bus lives in [Sctc.Trace] so the core checker and trigger
   helpers can publish without depending on this library; re-export it
   here (with all type equalities) as the engine-facing name. *)

include Sctc.Trace
