module Checker = Sctc.Checker
module Registry = Obs.Registry
module Flash = Dataflash.Flash
module Flash_ctrl = Dataflash.Flash_ctrl
module Map = Cpu.Memory_map

type backend = Reference | Soc_model | Derived_model

type config = {
  session_name : string;
  engine : Checker.engine;
  properties : (string * string) list;
  propositions : (string * string) list;
  bound : int option;
  fuel : int;
  chunk : int;
  seed : int;
  flash : Flash.config option;
  flash_faults : Flash.fault_config;
  jitter_prob : float;
  jitter_max : int;
  flag : string option;
  exec_backend : Minic.Exec.kind;
  trace : Trace.t;
  metrics : Registry.t;
}

let default_config =
  {
    session_name = "session";
    engine = Checker.Auto;
    properties = [];
    propositions = [];
    bound = None;
    fuel = 50_000_000;
    chunk = 60;
    seed = 42;
    flash = None;
    flash_faults = Flash.no_faults;
    jitter_prob = 0.0;
    jitter_max = 0;
    flag = None;
    exec_backend = Minic.Exec.Auto;
    trace = Trace.null;
    metrics = Registry.null;
  }

type ref_state = {
  env : Minic.Exec.t;
  mutable executed : bool;
  mutable crash : string option;
}

type runtime =
  | Ref of ref_state
  | Soc of { soc : Platform.Soc.t; monitor : Platform.Esw_monitor.t option }
  | Model of {
      kernel : Sim.Kernel.t;
      model : Esw.Esw_model.t;
      mbox : Platform.Mailbox.t;
    }

type t = {
  config : config;
  runtime : runtime;
  chk : Checker.t;
  sim_timer : Registry.Timer.t; (* stage_simulate_seconds *)
  throughput : Registry.Gauge.t; (* backend time units per wall second *)
  mutable timer_started : float;
  mutable units_at_timer : int;
  mutable crash_reported : bool;
}

(* tiny pure-expression evaluator for textual proposition definitions *)
let rec eval_pure lookup (e : Minic.Ast.expr) =
  let module A = Minic.Ast in
  let module V = Minic.Value in
  match e.A.edesc with
  | A.Int_lit v -> v
  | A.Bool_lit b -> V.of_bool b
  | A.Var x -> lookup x
  | A.Unop (A.Neg, a) -> V.neg (eval_pure lookup a)
  | A.Unop (A.Bitnot, a) -> V.lognot (eval_pure lookup a)
  | A.Unop (A.Lognot, a) -> V.of_bool (not (V.to_bool (eval_pure lookup a)))
  | A.Binop (op, a, b) -> (
    let va = eval_pure lookup a in
    match op with
    | A.Land -> V.of_bool (V.to_bool va && V.to_bool (eval_pure lookup b))
    | A.Lor -> V.of_bool (V.to_bool va || V.to_bool (eval_pure lookup b))
    | _ -> (
      let vb = eval_pure lookup b in
      match op with
      | A.Add -> V.add va vb
      | A.Sub -> V.sub va vb
      | A.Mul -> V.mul va vb
      | A.Div -> V.div va vb
      | A.Mod -> V.rem va vb
      | A.Band -> V.logand va vb
      | A.Bor -> V.logor va vb
      | A.Bxor -> V.logxor va vb
      | A.Shl -> V.shift_left va vb
      | A.Shr -> V.shift_right va vb
      | A.Lt -> V.of_bool (va < vb)
      | A.Le -> V.of_bool (va <= vb)
      | A.Gt -> V.of_bool (va > vb)
      | A.Ge -> V.of_bool (va >= vb)
      | A.Eq -> V.of_bool (va = vb)
      | A.Ne -> V.of_bool (va <> vb)
      | A.Land | A.Lor -> assert false))
  | A.Index _ | A.Call _ | A.Nondet _ | A.Mem_read _ ->
    failwith "propositions must be pure expressions over globals"

let backend_kind session =
  match session.runtime with
  | Ref _ -> Reference
  | Soc _ -> Soc_model
  | Model _ -> Derived_model

let backend_name session =
  match session.runtime with
  | Ref _ -> "reference interpreter"
  | Soc _ -> "approach-1 (microprocessor model)"
  | Model _ -> "approach-2 (derived SystemC model)"

let checker session = session.chk
let trace session = session.config.trace

let read_var session name =
  match session.runtime with
  | Ref r -> Minic.Exec.read_global r.env name
  | Soc s -> Platform.Soc.read_var s.soc name
  | Model m -> Esw.Esw_model.read_member m.model name

let unsupported_on_reference fn =
  invalid_arg
    (Printf.sprintf "Verif.Session.%s: unsupported on the reference backend" fn)

let in_function_opt session func =
  match session.runtime with
  | Ref _ -> None
  | Soc s -> Some (Platform.Mem_prop.in_function s.soc func)
  | Model m -> Some (Esw.Esw_prop.in_function m.model func)

let in_function session func =
  match in_function_opt session func with
  | Some prop -> prop
  | None -> unsupported_on_reference "in_function"

let mailbox_opt session =
  match session.runtime with
  | Ref _ -> None
  | Soc s -> Some (Platform.Soc.mailbox s.soc)
  | Model m -> Some m.mbox

let mailbox session =
  match mailbox_opt session with
  | Some mbox -> mbox
  | None -> unsupported_on_reference "mailbox"

let time_units session =
  match session.runtime with
  | Ref r -> Minic.Exec.statements_executed r.env
  | Soc s -> Platform.Soc.cycles s.soc
  | Model m -> Esw.Esw_model.statements m.model

(* the resolved Minic execution backend, for the statement-driven
   runtimes (the SoC backend executes compiled code, not MiniC) *)
let exec_backend session =
  match session.runtime with
  | Ref r -> Some (Minic.Exec.kind r.env)
  | Model m -> Some (Minic.Exec.kind (Esw.Esw_model.exec m.model))
  | Soc _ -> None

let alive session =
  match session.runtime with
  | Ref r -> not r.executed
  | Soc s -> not (Platform.Soc.cpu_stopped s.soc)
  | Model m -> (
    match Esw.Esw_model.outcome m.model with
    | Esw.Esw_model.Running | Esw.Esw_model.Not_started -> true
    | Esw.Esw_model.Done _ | Esw.Esw_model.Crashed _ -> false)

let crashed session =
  match session.runtime with
  | Ref r -> r.crash
  | Soc s -> (
    match Cpu.Cpu_core.stop_reason (Platform.Soc.cpu s.soc) with
    | Cpu.Cpu_core.Trapped code -> Some (Printf.sprintf "trap %d" code)
    | Cpu.Cpu_core.Halted | Cpu.Cpu_core.Running -> None)
  | Model m -> (
    match Esw.Esw_model.outcome m.model with
    | Esw.Esw_model.Crashed exn -> Some (Printexc.to_string exn)
    | _ -> None)

let check_crash session =
  if not session.crash_reported then
    match crashed session with
    | Some reason ->
      session.crash_reported <- true;
      if Trace.enabled session.config.trace then
        Trace.emit session.config.trace (Trace.Software_crashed { reason })
    | None -> ()

(* the reference backend has no resumable process: the first advance/run
   executes the whole program, stepping the checker per statement *)
let run_reference session r =
  if not r.executed then begin
    r.executed <- true;
    let trace = session.config.trace in
    if Trace.enabled trace then
      Trace.emit trace (Trace.Handshake_armed { source = "interpreter" });
    let step () = Checker.trigger session.chk in
    let hooks =
      {
        (Minic.Exec.default_hooks ()) with
        Minic.Exec.on_statement = (fun _ -> step ());
      }
    in
    match Minic.Exec.run ~fuel:session.config.fuel ~hooks r.env ~entry:"main" with
    | Minic.Exec.Finished _ | Minic.Exec.Halted | Minic.Exec.Fuel_exhausted ->
      (* on_statement fires before each statement executes, so sample once
         more to observe the terminal state, as the other backends do *)
      step ()
    | exception Minic.Exec.Assertion_failed pos ->
      r.crash <-
        Some
          (Printf.sprintf "assertion failed at %d:%d" pos.Minic.Ast.line
             pos.Minic.Ast.column)
    | exception Minic.Exec.Runtime_error (msg, _) -> r.crash <- Some msg
  end

let advance session =
  Registry.Timer.time session.sim_timer (fun () ->
      match session.runtime with
      | Ref r -> run_reference session r
      | Soc s -> Platform.Soc.run ~max_cycles:session.config.chunk s.soc
      | Model m ->
        Sim.Kernel.run
          ~max_time:(Sim.Kernel.now m.kernel + session.config.chunk)
          m.kernel);
  check_crash session

let run ?bound session =
  let budget =
    match bound with
    | Some b -> b
    | None -> (
      match session.config.bound with
      | Some b -> b
      | None -> session.config.fuel)
  in
  Registry.Timer.time session.sim_timer (fun () ->
      match session.runtime with
      | Ref r -> run_reference session r
      | Soc s ->
        (* the SoC clock keeps ticking (and triggering the checker) after
           the CPU halts, so consume the budget in chunks and stop on halt *)
        let start = Platform.Soc.cycles s.soc in
        let rec go () =
          let used = Platform.Soc.cycles s.soc - start in
          if (not (Platform.Soc.cpu_stopped s.soc)) && used < budget then begin
            Platform.Soc.run
              ~max_cycles:(min session.config.chunk (budget - used))
              s.soc;
            go ()
          end
        in
        go ()
      | Model m ->
        Sim.Kernel.run ~max_time:(Sim.Kernel.now m.kernel + budget) m.kernel);
  check_crash session

let boot ?(attempts = 50) session =
  match session.runtime with
  | Ref _ -> ()
  | Soc s -> (
    match s.monitor with
    | None -> ()
    | Some monitor ->
      let rec go n =
        if (not (Platform.Esw_monitor.initialized monitor)) && n > 0 then begin
          Platform.Soc.run ~max_cycles:200 s.soc;
          go (n - 1)
        end
      in
      go attempts;
      if not (Platform.Esw_monitor.initialized monitor) then
        failwith
          (Printf.sprintf "Verif.Session.boot(%s): software never initialized"
             session.config.session_name))
  | Model _ -> advance session

let restart_timer session =
  session.timer_started <- Unix.gettimeofday ();
  session.units_at_timer <- time_units session

let result ?test_cases ?(timeouts = 0) ?coverage session =
  let elapsed = Unix.gettimeofday () -. session.timer_started in
  let synthesis = Checker.synthesis_seconds session.chk in
  let units = time_units session - session.units_at_timer in
  if elapsed > 0.0 then
    Registry.Gauge.set session.throughput (float_of_int units /. elapsed);
  (match exec_backend session with
  | Some kind ->
    Registry.Counter.add
      (Registry.counter session.config.metrics
         (Printf.sprintf "sim_%s_statements_total" (Minic.Exec.to_string kind))
         ~help:"statements simulated on this Minic execution backend")
      units
  | None -> ());
  {
    Result.backend = backend_name session;
    properties =
      List.map
        (fun (name, verdict) ->
          {
            Result.property = name;
            verdict;
            first_final_at = Checker.first_final_at session.chk name;
          })
        (Checker.verdicts session.chk);
    triggers = Checker.steps session.chk;
    time_units = units;
    vt_seconds = elapsed +. synthesis;
    synthesis_seconds = synthesis;
    test_cases;
    timeouts;
    coverage;
    (* the per-job handoff figure: how many events this session's bus
       published — what a streaming campaign sink will receive *)
    trace_events = Trace.events session.config.trace;
  }

let close session = Trace.close session.config.trace

(* ------------------------------------------------------------------ *)
(* Assembly — the one place a verification backend is built            *)

let build_soc config compiled =
  let base = Platform.Soc.default_config in
  let soc_config =
    {
      base with
      Platform.Soc.seed = config.seed;
      flash =
        (match config.flash with
        | Some flash -> flash
        | None -> base.Platform.Soc.flash);
      flash_faults = config.flash_faults;
    }
  in
  let soc = Platform.Soc.create ~config:soc_config () in
  Platform.Soc.load soc compiled;
  soc

(* approach 2 maps the same device topology as the SoC — flash controller,
   flash window, mailbox — into the derived model's virtual memory, so
   both approaches run the identical software against identical devices *)
let build_model config derived =
  let kernel = Sim.Kernel.create () in
  let vmem = Esw.Vmem.create () in
  let prng = Stimuli.Prng.create ~seed:config.seed in
  let flash_config =
    match config.flash with
    | Some flash -> flash
    | None -> Flash.default_config
  in
  let flash =
    Flash.create ~prng:(Stimuli.Prng.split prng "flash-faults")
      ~faults:config.flash_faults flash_config
  in
  let ctrl = Flash_ctrl.create flash in
  Esw.Vmem.map_device vmem (Flash_ctrl.ctrl_device ctrl ~base:Map.flash_ctrl_base);
  Esw.Vmem.map_device vmem
    (Flash_ctrl.window_device ctrl ~base:Map.flash_window_base
       ~size:(min Map.flash_window_size (Flash.size_words flash)));
  let mbox = Platform.Mailbox.create () in
  Esw.Vmem.map_device vmem (Platform.Mailbox.device mbox ~base:Map.mailbox_base);
  (* handshake timing jitter: its own substream of the session master
     stream, only materialized when enabled so jitter-free sessions draw
     nothing extra *)
  let jitter =
    if config.jitter_prob > 0.0 && config.jitter_max > 0 then begin
      let stream = Stimuli.Prng.split prng "handshake-jitter" in
      Some
        (fun () ->
          if Stimuli.Prng.chance stream config.jitter_prob then
            Stimuli.Prng.int_range stream ~lo:1 ~hi:config.jitter_max
          else 0)
    end
    else None
  in
  let model =
    Esw.Esw_model.create kernel ~seed:config.seed
      ~on_tick:(fun () -> Flash.tick flash)
      ?jitter ~backend:config.exec_backend derived ~vmem
  in
  (kernel, model, mbox)

let backend_label = function
  | Reference -> "reference"
  | Soc_model -> "approach1"
  | Derived_model -> "approach2"

let create ?compiled ?derived ?info config backend =
  let chk =
    Checker.create ~trace:config.trace ~metrics:config.metrics
      ~name:config.session_name ()
  in
  let require_info what =
    match info with
    | Some info -> info
    | None ->
      invalid_arg
        (Printf.sprintf "Verif.Session.create: the %s backend needs %s" what
           (if String.equal what "reference" then "~info"
            else "~" ^ (if String.equal what "Soc_model" then "compiled"
                        else "derived") ^ " or ~info"))
  in
  let runtime =
    match backend with
    | Reference ->
      let info =
        match info with
        | Some info -> info
        | None -> require_info "reference"
      in
      Ref
        {
          env = Minic.Exec.create ~backend:config.exec_backend info;
          executed = false;
          crash = None;
        }
    | Soc_model ->
      let compiled =
        match compiled with
        | Some compiled -> compiled
        | None -> Mcc.Codegen.compile (require_info "Soc_model")
      in
      let soc = build_soc config compiled in
      let monitor =
        match config.flag with
        | Some flag -> Some (Platform.Esw_monitor.attach soc ~flag chk)
        | None ->
          ignore
            (Sctc.Trigger.on_clock (Platform.Soc.kernel soc)
               (Platform.Soc.clock soc) chk);
          None
      in
      Soc { soc; monitor }
    | Derived_model ->
      let derived =
        match derived with
        | Some derived -> derived
        | None -> Esw.C2sc.derive (require_info "Derived_model")
      in
      let kernel, model, mbox = build_model config derived in
      ignore (Sctc.Trigger.on_event kernel (Esw.Esw_model.pc_event model) chk);
      ignore (Esw.Esw_model.start ~fuel:config.fuel model ~entry:"main");
      Model { kernel; model; mbox }
  in
  let session =
    {
      config;
      runtime;
      chk;
      sim_timer = Registry.stage_timer config.metrics Registry.Simulate;
      throughput =
        Registry.gauge config.metrics "session_time_units_per_second"
          ~labels:[ ("backend", backend_label backend) ]
          ~help:"backend time units simulated per wall-clock second";
      timer_started = Unix.gettimeofday ();
      units_at_timer = 0;
      crash_reported = false;
    }
  in
  session.units_at_timer <- time_units session;
  (match exec_backend session with
  | Some kind ->
    Registry.Counter.incr
      (Registry.counter config.metrics
         (Printf.sprintf "sim_%s_sessions_total" (Minic.Exec.to_string kind))
         ~help:"sessions created on this Minic execution backend")
  | None -> ());
  let time_source () = time_units session in
  Checker.set_time_source chk time_source;
  if Trace.enabled config.trace then
    Trace.set_time_source config.trace time_source;
  let lookup = read_var session in
  List.iter
    (fun (name, text) ->
      let expr = Minic.C_parser.parse_expr text in
      Checker.register_sampler chk name (fun () ->
          Minic.Value.to_bool (eval_pure lookup expr)))
    config.propositions;
  List.iter
    (fun (name, text) ->
      Checker.add_property_text ~engine:config.engine ~syntax:Checker.Auto chk
        ~name text)
    config.properties;
  session
