(** One verification session: a software backend, a temporal checker wired
    to the backend's timing reference, and a trace bus — the single place
    where a verification backend is assembled.

    The three backends mirror the paper plus the repro's reference
    semantics:

    - {!Reference}: the MiniC reference interpreter, the checker stepped
      per executed statement. No mailbox, no devices.
    - {!Soc_model} (approach 1): the software compiled and loaded into the
      cycle-level SoC; the checker is clock-triggered, optionally through
      the ESW monitor's initialization-flag handshake ([config.flag]).
      Time units are clock cycles.
    - {!Derived_model} (approach 2): the derived software model running in
      the simulation kernel with the standard device topology (data-flash
      controller + window, mailbox) mapped into its virtual memory; the
      checker is program-counter-event triggered. Time units are executed
      statements.

    The session installs its time-unit counter as the checker's and the
    trace bus's time source, so first-final-verdict stamps and trace
    events carry backend time. *)

type backend = Reference | Soc_model | Derived_model

type config = {
  session_name : string;  (** checker name, used in error messages *)
  engine : Sctc.Checker.engine;  (** for [config.properties] *)
  properties : (string * string) list;
      (** name, property text — FLTL or PSL, auto-detected by
          [Sctc.Prop] *)
  propositions : (string * string) list;
      (** name, pure boolean MiniC expression over the software's globals *)
  bound : int option;  (** default time-unit budget of {!run} *)
  fuel : int;  (** statement budget (reference / derived model) *)
  chunk : int;  (** time units per {!advance} *)
  seed : int;  (** stimulus master seed *)
  flash : Dataflash.Flash.config option;  (** [None]: platform default *)
  flash_faults : Dataflash.Flash.fault_config;
      (** probabilistic fault-injection overlay on the flash model (bit
          decay, power loss mid-operation), applied to both the SoC and
          the derived-model flash; {!Dataflash.Flash.no_faults} (the
          default) draws nothing and is bit-identical to the seed
          model *)
  jitter_prob : float;
  jitter_max : int;
      (** handshake timing jitter for the derived model: with
          [jitter_prob] per executed statement, stretch the statement by
          1..[jitter_max] extra time units (statement counts, and with
          them property time bases, are unaffected — only kernel-time
          cost). Disabled unless both are positive; drawn from the
          session seed's ["handshake-jitter"] substream. The SoC backend
          ignores it (its timing is the cycle clock). *)
  flag : string option;
      (** approach-1 only: attach the ESW monitor with this
          initialization-flag variable instead of a bare clock trigger *)
  exec_backend : Minic.Exec.kind;
      (** how the reference and derived-model backends execute MiniC:
          interpreter, bytecode VM, or [Auto] (VM with interpreter
          fallback). Ignored by the SoC backend. *)
  trace : Trace.t;  (** event bus; {!Trace.null} disables tracing *)
  metrics : Obs.Registry.t;
      (** metrics registry threaded into the checker and the session's
          stage timers; {!Obs.Registry.null} (the default) disables
          recording at the cost of one boolean test per site *)
}

val default_config : config
(** ["session"], on-the-fly engine, no properties, no bound, fuel 50e6,
    chunk 60, seed 42, default flash, no injected faults or jitter, no
    flag, auto exec backend, null trace, null metrics registry. *)

type t

val create :
  ?compiled:Mcc.Codegen.compiled ->
  ?derived:Esw.C2sc.derived ->
  ?info:Minic.Typecheck.info ->
  config ->
  backend ->
  t
(** Assemble the backend, attach the checker to its trigger, and register
    [config.propositions] / [config.properties]. Each backend needs its
    program in one of the accepted forms — [Reference]: [~info];
    [Soc_model]: [~compiled] (or [~info], compiled here); [Derived_model]:
    [~derived] (or [~info], derived here). Passing a memoized
    [~compiled]/[~derived] avoids recompiling per session.
    @raise Invalid_argument when the needed form is missing. *)

(** {2 Introspection} *)

val backend_kind : t -> backend
val backend_name : t -> string
val checker : t -> Sctc.Checker.t
val trace : t -> Trace.t

val read_var : t -> string -> int
(** Observe a software global through the backend's memory interface. *)

val in_function : t -> string -> Proposition.t
(** Proposition "execution is inside this function" ([fname]-based).
    @raise Invalid_argument on the reference backend. *)

val in_function_opt : t -> string -> Proposition.t option
(** As {!in_function}, [None] where unsupported (reference backend). *)

val mailbox : t -> Platform.Mailbox.t
(** The testbench request/response mailbox.
    @raise Invalid_argument on the reference backend. *)

val mailbox_opt : t -> Platform.Mailbox.t option
(** As {!mailbox}, [None] where unsupported (reference backend). *)

val exec_backend : t -> Minic.Exec.kind option
(** The resolved MiniC execution backend ([Interp] or [Vm]) for the
    reference and derived-model runtimes; [None] for the SoC backend,
    which executes compiled code. *)

val time_units : t -> int
(** Cycles (SoC) / statements (reference, derived model) consumed. *)

val alive : t -> bool
(** The software is still executing (or has not started yet). *)

val crashed : t -> string option
(** Trap / assertion failure / runtime error of the software, if any. *)

(** {2 Driving} *)

val boot : ?attempts:int -> t -> unit
(** Bring the backend up: with an ESW monitor, run until the handshake
    completes (at most [attempts] * 200 cycles, default 50 attempts,
    [failwith] on failure); derived model: run one initialization chunk;
    reference: no-op. *)

val advance : t -> unit
(** Progress the simulation by [config.chunk] time units (reference
    backend: execute the whole program on first call). *)

val run : ?bound:int -> t -> unit
(** Advance by [bound] time units from now (default [config.bound], then
    [config.fuel]). Stops early when the software halts. *)

(** {2 Results} *)

val restart_timer : t -> unit
(** Zero the wall-clock and time-unit baselines used by {!result} (e.g.
    at the start of a campaign, excluding boot cost). *)

val result :
  ?test_cases:int -> ?timeouts:int -> ?coverage:Sctc.Coverage.t -> t ->
  Result.t
(** Snapshot verdicts, trigger counts, per-property first-final times and
    the wall-clock/synthesis split since the last {!restart_timer} (or
    session creation). *)

val close : t -> unit
(** Close the trace bus's sinks (flushes a JSONL file sink). *)
