type job = { label : string; run : Trace.t -> Result.t }

type outcome = {
  index : int;
  label : string;
  result : (Result.t, string) result;
  events : Trace.event list;
}

type summary = {
  outcomes : outcome list;
  workers : int;
  wall_seconds : float;
}

let job ~label run = { label; run }

(* One job, on whatever domain runs it: a private bus buffering events in
   memory, the job's exceptions confined to its outcome. *)
let execute index job =
  let bus = Trace.create () in
  let sink, buffered = Trace.memory_sink () in
  Trace.attach bus sink;
  let result =
    match job.run bus with
    | result -> Ok result
    | exception exn -> Error (Printexc.to_string exn)
  in
  Trace.close bus;
  { index; label = job.label; result; events = buffered () }

let run ?(workers = 1) jobs =
  let started = Unix.gettimeofday () in
  let jobs = Array.of_list jobs in
  let count = Array.length jobs in
  let pool = max 1 (min workers count) in
  let slots = Array.make count None in
  (* Each slot is written by exactly one worker (the one that took the
     index off the queue) and read only after every domain joined. *)
  if pool = 1 then
    Array.iteri (fun index job -> slots.(index) <- Some (execute index job)) jobs
  else begin
    let lock = Mutex.create () in
    let next = ref 0 in
    let take () =
      Mutex.lock lock;
      let index = !next in
      if index < count then incr next;
      Mutex.unlock lock;
      if index < count then Some index else None
    in
    let rec drain () =
      match take () with
      | None -> ()
      | Some index ->
        slots.(index) <- Some (execute index jobs.(index));
        drain ()
    in
    let spawned = List.init (pool - 1) (fun _ -> Domain.spawn drain) in
    drain ();
    List.iter Domain.join spawned
  end;
  let outcomes =
    Array.to_list slots
    |> List.map (function Some outcome -> outcome | None -> assert false)
  in
  { outcomes; workers = pool; wall_seconds = Unix.gettimeofday () -. started }

(* --- deterministic merge, always in job order --------------------------- *)

let results summary =
  List.filter_map
    (fun o -> match o.result with Ok r -> Some r | Error _ -> None)
    summary.outcomes

let errors summary =
  List.filter_map
    (fun o ->
      match o.result with Error e -> Some (o.label, e) | Ok _ -> None)
    summary.outcomes

let events summary =
  summary.outcomes
  |> List.concat_map (fun o -> o.events)
  |> List.mapi (fun seq event -> { event with Trace.seq })

let to_jsonl summary =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun event ->
      Buffer.add_string buffer (Trace.event_to_json event);
      Buffer.add_char buffer '\n')
    (events summary);
  Buffer.contents buffer

let write_jsonl path summary =
  let oc = open_out_bin path in
  output_string oc (to_jsonl summary);
  close_out oc

let verdicts summary =
  List.concat_map
    (fun o ->
      match o.result with
      | Error _ -> []
      | Ok r ->
        List.map
          (fun p -> (o.label, p.Result.property, p.Result.verdict))
          r.Result.properties)
    summary.outcomes

let overall summary =
  List.fold_left
    (fun acc r -> Verdict.combine acc (Result.overall r))
    Verdict.True (results summary)

let sum_over field summary =
  List.fold_left (fun acc r -> acc + field r) 0 (results summary)

let total_triggers = sum_over (fun r -> r.Result.triggers)
let total_time_units = sum_over (fun r -> r.Result.time_units)
let total_test_cases = sum_over Result.completed_cases
let total_timeouts = sum_over (fun r -> r.Result.timeouts)

let vt_seconds_sum summary =
  List.fold_left
    (fun acc r -> acc +. r.Result.vt_seconds)
    0.0 (results summary)
