module Registry = Obs.Registry

type job = { label : string; run : Trace.t -> Result.t }

type outcome = {
  index : int;
  label : string;
  result : (Result.t, string) result;
  events : Trace.event list;
}

type queue_stats = { chunk : int; acquisitions : int; contention : int }

type stream_stats = {
  window : int;
  peak_window : int;
  emitted : int;
  backpressure_waits : int;
  backpressure_seconds : float;
  cancelled_jobs : int;
}

type summary = {
  outcomes : outcome list;
  workers : int;
  wall_seconds : float;
  queue : queue_stats;
  stream : stream_stats option;
}

type sink = { on_outcome : outcome -> unit; on_close : unit -> unit }

let job ~label run = { label; run }

(* Cooperative early stopping (the SMC sequential test's lever): a
   cancelled campaign stops claiming new work at the next chunk
   boundary, so the executed set is always a contiguous prefix of the
   job list — every claimed chunk runs to completion, every executed
   outcome still reaches the reassembly frontier, and no deposit can
   wait on an index that was never started. *)
type cancellation = bool Atomic.t

let cancellation () = Atomic.make false
let cancel token = Atomic.set token true
let cancelled token = Atomic.get token

(* metric handles for one campaign run, resolved once before the pool
   spawns; recording from worker domains lands in per-domain cells, so
   the workers never serialize on a metrics lock *)
type meters = {
  metered : bool;
  m_jobs : Registry.Counter.t;
  m_errors : Registry.Counter.t;
  m_claims : Registry.Counter.t;
  m_job_seconds : Registry.Timer.t;
  m_queue_wait : Registry.Timer.t;
  m_window : Registry.Gauge.t;
  m_emitted : Registry.Counter.t;
  m_bp_waits : Registry.Counter.t;
  m_bp_seconds : Registry.Timer.t;
  m_merge : Registry.Timer.t;
}

let make_meters metrics =
  {
    metered = Registry.enabled metrics;
    m_jobs =
      Registry.counter metrics "campaign_jobs_total"
        ~help:"campaign jobs executed (including crashed jobs)";
    m_errors =
      Registry.counter metrics "campaign_job_errors_total"
        ~help:"campaign jobs whose run raised";
    m_claims =
      Registry.counter metrics "campaign_chunk_claims_total"
        ~help:"queue-mutex acquisitions that claimed a chunk of jobs";
    m_job_seconds =
      Registry.timer metrics "campaign_job_seconds"
        ~help:"wall-clock runtime of one campaign job";
    m_queue_wait =
      Registry.timer metrics "campaign_queue_wait_seconds"
        ~help:"per-worker wait for the job-queue mutex";
    m_window =
      Registry.gauge metrics "campaign_stream_window"
        ~help:"outcomes currently parked in the streaming reassembly buffer";
    m_emitted =
      Registry.counter metrics "campaign_stream_emitted_total"
        ~help:"outcomes emitted to the streaming sinks, in job order";
    m_bp_waits =
      Registry.counter metrics "campaign_backpressure_waits_total"
        ~help:"deposits that had to wait for the reassembly window";
    m_bp_seconds =
      Registry.timer metrics "campaign_backpressure_wait_seconds"
        ~help:"per-deposit wait for a slot in the reassembly window";
    m_merge = Registry.stage_timer metrics Registry.Merge;
  }

(* One job, on whatever domain runs it: a private bus buffering events in
   memory, the job's exceptions confined to its outcome. *)
let execute index job =
  let bus = Trace.create () in
  let sink, buffered = Trace.memory_sink () in
  Trace.attach bus sink;
  let result =
    match job.run bus with
    | result -> Ok result
    | exception exn -> Error (Printexc.to_string exn)
  in
  Trace.close bus;
  { index; label = job.label; result; events = buffered () }

let metered_execute meters index job =
  if meters.metered then begin
    let started = Unix.gettimeofday () in
    let outcome = execute index job in
    Registry.Timer.observe meters.m_job_seconds
      (Unix.gettimeofday () -. started);
    Registry.Counter.incr meters.m_jobs;
    (match outcome.result with
    | Error _ -> Registry.Counter.incr meters.m_errors
    | Ok _ -> ());
    outcome
  end
  else execute index job

(* Workers claim contiguous chunks of job indices, not one index per lock
   acquisition: with J jobs and chunk size C the queue mutex is taken
   O(J/C) times instead of O(J). The default C aims at ~4 claims per
   worker — enough slack for load balancing when job costs differ, few
   enough acquisitions that the queue never becomes the bottleneck. A job
   raising inside a chunk is confined by [execute]; the rest of the chunk
   (and the pool) keeps running. *)
let default_chunk ~count ~pool = max 1 (count / (pool * 4))

(* The pool scaffolding shared by both engines: claim chunks, execute
   each claimed job, hand the outcome to [deposit]. The seed engine's
   deposit writes a private slot; the streaming engine's deposit goes
   through the ordered reassembly buffer. [stop] is polled at chunk
   claims only (and per job on the inline path): a claimed chunk always
   runs to completion, keeping the executed set a contiguous prefix.
   Returns the queue stats. *)
let run_pool ~meters ~pool ~chunk ~count ~stop ~execute ~deposit =
  if pool = 1 then begin
    let index = ref 0 in
    while !index < count && not (stop ()) do
      deposit (execute !index);
      incr index
    done;
    { chunk; acquisitions = 0; contention = 0 }
  end
  else begin
    let lock = Mutex.create () in
    let next = ref 0 in
    let acquisitions = Atomic.make 0 in
    let contention = Atomic.make 0 in
    let take_chunk () =
      if stop () then None
      else begin
        let wait_started =
          if meters.metered then Unix.gettimeofday () else 0.0
        in
        if not (Mutex.try_lock lock) then begin
          Atomic.incr contention;
          Mutex.lock lock
        end;
        if meters.metered then
          Registry.Timer.observe meters.m_queue_wait
            (Unix.gettimeofday () -. wait_started);
        Atomic.incr acquisitions;
        let lo = !next in
        let hi = min count (lo + chunk) in
        next := hi;
        Mutex.unlock lock;
        if lo < hi then begin
          Registry.Counter.incr meters.m_claims;
          Some (lo, hi)
        end
        else None
      end
    in
    let rec drain () =
      match take_chunk () with
      | None -> ()
      | Some (lo, hi) ->
        for index = lo to hi - 1 do
          deposit (execute index)
        done;
        drain ()
    in
    let spawned = List.init (pool - 1) (fun _ -> Domain.spawn drain) in
    drain ();
    List.iter Domain.join spawned;
    {
      chunk;
      acquisitions = Atomic.get acquisitions;
      contention = Atomic.get contention;
    }
  end

let pool_shape ?chunk ~workers count =
  let pool = max 1 (min workers count) in
  let chunk =
    match chunk with Some c -> max 1 c | None -> default_chunk ~count ~pool
  in
  (pool, chunk)

(* --- the seed engine: accumulate every outcome, merge afterwards -------- *)

let run ?(metrics = Registry.null) ?(workers = 1) ?chunk jobs =
  let meters = make_meters metrics in
  let started = Unix.gettimeofday () in
  let jobs = Array.of_list jobs in
  let count = Array.length jobs in
  let pool, chunk = pool_shape ?chunk ~workers count in
  let slots = Array.make count None in
  (* Each slot is written by exactly one worker (the one whose chunk
     covers the index) and read only after every domain joined. *)
  let queue =
    run_pool ~meters ~pool ~chunk ~count
      ~stop:(fun () -> false)
      ~execute:(fun index -> metered_execute meters index jobs.(index))
      ~deposit:(fun outcome -> slots.(outcome.index) <- Some outcome)
  in
  let outcomes =
    Array.to_list slots
    |> List.map (function Some outcome -> outcome | None -> assert false)
  in
  {
    outcomes;
    workers = pool;
    wall_seconds = Unix.gettimeofday () -. started;
    queue;
    stream = None;
  }

(* --- the streaming engine: ordered reassembly, bounded window ----------- *)

(* Finished jobs are handed to this buffer on whatever domain ran them;
   outcomes leave strictly in job order. The frontier [r_next] is the
   next index to emit; an out-of-order outcome parks in [r_buffered]
   until the frontier reaches it. The buffer never holds more than
   [r_window] outcomes: a worker depositing beyond a full window waits
   on [r_wake] (backpressure), so one slow job bounds live memory at
   window + workers outcomes instead of the whole campaign. The deposit
   of the frontier index itself never waits — every index below it has
   already been emitted, so the campaign cannot deadlock. *)
type reassembly = {
  r_lock : Mutex.t;
  r_wake : Condition.t;
  r_buffered : (int, outcome) Hashtbl.t;
  r_window : int;
  mutable r_next : int;
  mutable r_seq : int; (* campaign-global event numbering *)
  mutable r_peak : int;
  mutable r_emitted : int;
  mutable r_waits : int;
  mutable r_wait_seconds : float;
  mutable r_sink_error : string option;
  r_slots : outcome option array; (* emitted outcomes, events dropped *)
}

let renumber reassembly events =
  List.map
    (fun (event : Trace.event) ->
      let seq = reassembly.r_seq in
      reassembly.r_seq <- seq + 1;
      { event with Trace.seq })
    events

(* Emission runs under the reassembly lock: sinks are called serially,
   in ascending job order, with events renumbered to the campaign-global
   sequence — the bytes a streaming JSONL sink writes are exactly those
   of the seed engine's end-of-run merge. A raising sink is disabled for
   the rest of the run (the error resurfaces after the pool joins); the
   frontier keeps advancing so no worker is left waiting. *)
let emit_locked reassembly meters sinks outcome =
  let started =
    if meters.metered then Unix.gettimeofday () else 0.0
  in
  let outcome = { outcome with events = renumber reassembly outcome.events } in
  (if reassembly.r_sink_error = None then
     try List.iter (fun sink -> sink.on_outcome outcome) sinks
     with exn -> reassembly.r_sink_error <- Some (Printexc.to_string exn));
  reassembly.r_slots.(outcome.index) <- Some { outcome with events = [] };
  reassembly.r_emitted <- reassembly.r_emitted + 1;
  reassembly.r_next <- outcome.index + 1;
  if meters.metered then begin
    Registry.Counter.incr meters.m_emitted;
    Registry.Timer.observe meters.m_merge (Unix.gettimeofday () -. started)
  end

let deposit reassembly meters sinks outcome =
  Mutex.lock reassembly.r_lock;
  if
    outcome.index <> reassembly.r_next
    && Hashtbl.length reassembly.r_buffered >= reassembly.r_window
  then begin
    let started = Unix.gettimeofday () in
    reassembly.r_waits <- reassembly.r_waits + 1;
    if meters.metered then Registry.Counter.incr meters.m_bp_waits;
    while
      outcome.index <> reassembly.r_next
      && Hashtbl.length reassembly.r_buffered >= reassembly.r_window
    do
      Condition.wait reassembly.r_wake reassembly.r_lock
    done;
    let waited = Unix.gettimeofday () -. started in
    reassembly.r_wait_seconds <- reassembly.r_wait_seconds +. waited;
    if meters.metered then Registry.Timer.observe meters.m_bp_seconds waited
  end;
  if outcome.index = reassembly.r_next then begin
    emit_locked reassembly meters sinks outcome;
    let rec drain () =
      match Hashtbl.find_opt reassembly.r_buffered reassembly.r_next with
      | None -> ()
      | Some parked ->
        Hashtbl.remove reassembly.r_buffered reassembly.r_next;
        emit_locked reassembly meters sinks parked;
        drain ()
    in
    drain ();
    if meters.metered then
      Registry.Gauge.set meters.m_window
        (float_of_int (Hashtbl.length reassembly.r_buffered));
    Condition.broadcast reassembly.r_wake
  end
  else begin
    Hashtbl.replace reassembly.r_buffered outcome.index outcome;
    let parked = Hashtbl.length reassembly.r_buffered in
    if parked > reassembly.r_peak then reassembly.r_peak <- parked;
    if meters.metered then
      Registry.Gauge.set meters.m_window (float_of_int parked)
  end;
  Mutex.unlock reassembly.r_lock

let default_window ~pool = max 4 (2 * pool)

let run_stream ?(metrics = Registry.null) ?(workers = 1) ?chunk ?window
    ?cancel ?(sinks = []) jobs =
  let meters = make_meters metrics in
  let started = Unix.gettimeofday () in
  let jobs = Array.of_list jobs in
  let count = Array.length jobs in
  let pool, chunk = pool_shape ?chunk ~workers count in
  let window =
    match window with Some w -> max 1 w | None -> default_window ~pool
  in
  let reassembly =
    {
      r_lock = Mutex.create ();
      r_wake = Condition.create ();
      r_buffered = Hashtbl.create (window + 1);
      r_window = window;
      r_next = 0;
      r_seq = 0;
      r_peak = 0;
      r_emitted = 0;
      r_waits = 0;
      r_wait_seconds = 0.0;
      r_sink_error = None;
      r_slots = Array.make count None;
    }
  in
  let queue =
    run_pool ~meters ~pool ~chunk ~count
      ~stop:
        (match cancel with
        | None -> fun () -> false
        | Some token -> fun () -> cancelled token)
      ~execute:(fun index -> metered_execute meters index jobs.(index))
      ~deposit:(fun outcome -> deposit reassembly meters sinks outcome)
  in
  List.iter
    (fun sink ->
      try sink.on_close ()
      with exn ->
        if reassembly.r_sink_error = None then
          reassembly.r_sink_error <- Some (Printexc.to_string exn))
    sinks;
  (* a sink failure must resurface before any structural invariant is
     checked: a cancelled-after-deciding campaign (the SMC early-stop
     path) would otherwise mask the sink's Failure behind an assert on
     the full-campaign emission count *)
  (match reassembly.r_sink_error with
  | Some message -> failwith ("Verif.Campaign.run_stream: sink failed: " ^ message)
  | None -> ());
  let executed = reassembly.r_next in
  assert (reassembly.r_emitted = executed);
  assert (cancel <> None || executed = count);
  let outcomes =
    Array.to_list (Array.sub reassembly.r_slots 0 executed)
    |> List.map (function Some outcome -> outcome | None -> assert false)
  in
  {
    outcomes;
    workers = pool;
    wall_seconds = Unix.gettimeofday () -. started;
    queue;
    stream =
      Some
        {
          window;
          peak_window = reassembly.r_peak;
          emitted = reassembly.r_emitted;
          backpressure_waits = reassembly.r_waits;
          backpressure_seconds = reassembly.r_wait_seconds;
          cancelled_jobs = count - executed;
        };
  }

(* --- streaming sinks ----------------------------------------------------- *)

let sink ?(close = fun () -> ()) on_outcome = { on_outcome; on_close = close }

let render_outcome buffer outcome =
  List.iter
    (fun event ->
      Trace.event_to_json_into buffer event;
      Buffer.add_char buffer '\n')
    outcome.events

let jsonl_buffer_sink out =
  { on_outcome = render_outcome out; on_close = (fun () -> ()) }

let jsonl_channel_sink channel =
  let buffer = Buffer.create 65536 in
  {
    on_outcome =
      (fun outcome ->
        Buffer.clear buffer;
        render_outcome buffer outcome;
        Buffer.output_buffer channel buffer);
    on_close = (fun () -> flush channel);
  }

let jsonl_file_sink path =
  let channel = open_out_bin path in
  let inner = jsonl_channel_sink channel in
  {
    inner with
    on_close =
      (fun () ->
        inner.on_close ();
        close_out channel);
  }

let shard_path path ~shard =
  match Filename.extension path with
  | "" -> Printf.sprintf "%s.%03d" path shard
  | ext -> Printf.sprintf "%s.%03d%s" (Filename.remove_extension path) shard ext

(* Shards are contiguous, balanced job ranges: shard k of S holds jobs
   [k*J/S .. (k+1)*J/S), so concatenating the shard files in shard order
   reproduces the merged stream byte for byte. *)
let shard_of_job ~shards ~jobs index =
  if jobs <= 0 then 0 else min (shards - 1) (index * shards / jobs)

let sharded_jsonl_sink ?(metrics = Registry.null) ~shards ~jobs path =
  if shards < 1 then
    invalid_arg "Verif.Campaign.sharded_jsonl_sink: shards must be >= 1";
  (* every shard file is created (and truncated) up front, so the
     artifact set — and the concatenation order — is deterministic even
     when trailing shards stay empty *)
  let channels =
    Array.init shards (fun shard -> open_out_bin (shard_path path ~shard))
  in
  let flushes =
    Array.init shards (fun shard ->
        Registry.counter metrics "campaign_shard_flushes_total"
          ~labels:[ ("shard", Printf.sprintf "%03d" shard) ]
          ~help:"outcomes flushed into this campaign output shard")
  in
  let buffer = Buffer.create 65536 in
  {
    on_outcome =
      (fun outcome ->
        let shard = shard_of_job ~shards ~jobs outcome.index in
        Buffer.clear buffer;
        render_outcome buffer outcome;
        Buffer.output_buffer channels.(shard) buffer;
        Registry.Counter.incr flushes.(shard));
    on_close = (fun () -> Array.iter close_out channels);
  }

(* --- deterministic merge, always in job order --------------------------- *)

let results summary =
  List.filter_map
    (fun o -> match o.result with Ok r -> Some r | Error _ -> None)
    summary.outcomes

let errors summary =
  List.filter_map
    (fun o ->
      match o.result with Error e -> Some (o.label, e) | Ok _ -> None)
    summary.outcomes

let events summary =
  summary.outcomes
  |> List.concat_map (fun o -> o.events)
  |> List.mapi (fun seq event -> { event with Trace.seq })

let to_jsonl ?(metrics = Registry.null) summary =
  Registry.Timer.time
    (Registry.stage_timer metrics Registry.Merge)
    (fun () ->
      let buffer = Buffer.create 4096 in
      List.iter
        (fun event ->
          Buffer.add_string buffer (Trace.event_to_json event);
          Buffer.add_char buffer '\n')
        (events summary);
      Buffer.contents buffer)

let write_jsonl ?metrics path summary =
  let oc = open_out_bin path in
  output_string oc (to_jsonl ?metrics summary);
  close_out oc

let verdicts summary =
  List.concat_map
    (fun o ->
      match o.result with
      | Error _ -> []
      | Ok r ->
        List.map
          (fun p -> (o.label, p.Result.property, p.Result.verdict))
          r.Result.properties)
    summary.outcomes

let overall summary =
  List.fold_left
    (fun acc r -> Verdict.combine acc (Result.overall r))
    Verdict.True (results summary)

let sum_over field summary =
  List.fold_left (fun acc r -> acc + field r) 0 (results summary)

let total_triggers = sum_over (fun r -> r.Result.triggers)
let total_time_units = sum_over (fun r -> r.Result.time_units)
let total_test_cases = sum_over Result.completed_cases
let total_timeouts = sum_over (fun r -> r.Result.timeouts)

let vt_seconds_sum summary =
  List.fold_left
    (fun acc r -> acc +. r.Result.vt_seconds)
    0.0 (results summary)
