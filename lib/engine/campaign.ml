module Registry = Obs.Registry

type job = { label : string; run : Trace.t -> Result.t }

type outcome = {
  index : int;
  label : string;
  result : (Result.t, string) result;
  events : Trace.event list;
}

type queue_stats = { chunk : int; acquisitions : int; contention : int }

type summary = {
  outcomes : outcome list;
  workers : int;
  wall_seconds : float;
  queue : queue_stats;
}

let job ~label run = { label; run }

(* metric handles for one campaign run, resolved once before the pool
   spawns; recording from worker domains lands in per-domain cells, so
   the workers never serialize on a metrics lock *)
type meters = {
  metered : bool;
  m_jobs : Registry.Counter.t;
  m_errors : Registry.Counter.t;
  m_claims : Registry.Counter.t;
  m_job_seconds : Registry.Timer.t;
  m_queue_wait : Registry.Timer.t;
}

let make_meters metrics =
  {
    metered = Registry.enabled metrics;
    m_jobs =
      Registry.counter metrics "campaign_jobs_total"
        ~help:"campaign jobs executed (including crashed jobs)";
    m_errors =
      Registry.counter metrics "campaign_job_errors_total"
        ~help:"campaign jobs whose run raised";
    m_claims =
      Registry.counter metrics "campaign_chunk_claims_total"
        ~help:"queue-mutex acquisitions that claimed a chunk of jobs";
    m_job_seconds =
      Registry.timer metrics "campaign_job_seconds"
        ~help:"wall-clock runtime of one campaign job";
    m_queue_wait =
      Registry.timer metrics "campaign_queue_wait_seconds"
        ~help:"per-worker wait for the job-queue mutex";
  }

(* One job, on whatever domain runs it: a private bus buffering events in
   memory, the job's exceptions confined to its outcome. *)
let execute index job =
  let bus = Trace.create () in
  let sink, buffered = Trace.memory_sink () in
  Trace.attach bus sink;
  let result =
    match job.run bus with
    | result -> Ok result
    | exception exn -> Error (Printexc.to_string exn)
  in
  Trace.close bus;
  { index; label = job.label; result; events = buffered () }

(* Workers claim contiguous chunks of job indices, not one index per lock
   acquisition: with J jobs and chunk size C the queue mutex is taken
   O(J/C) times instead of O(J). The default C aims at ~4 claims per
   worker — enough slack for load balancing when job costs differ, few
   enough acquisitions that the queue never becomes the bottleneck. A job
   raising inside a chunk is confined by [execute]; the rest of the chunk
   (and the pool) keeps running. *)
let default_chunk ~count ~pool = max 1 (count / (pool * 4))

let run ?(metrics = Registry.null) ?(workers = 1) ?chunk jobs =
  let meters = make_meters metrics in
  let execute index job =
    if meters.metered then begin
      let started = Unix.gettimeofday () in
      let outcome = execute index job in
      Registry.Timer.observe meters.m_job_seconds
        (Unix.gettimeofday () -. started);
      Registry.Counter.incr meters.m_jobs;
      (match outcome.result with
      | Error _ -> Registry.Counter.incr meters.m_errors
      | Ok _ -> ());
      outcome
    end
    else execute index job
  in
  let started = Unix.gettimeofday () in
  let jobs = Array.of_list jobs in
  let count = Array.length jobs in
  let pool = max 1 (min workers count) in
  let chunk =
    match chunk with Some c -> max 1 c | None -> default_chunk ~count ~pool
  in
  let slots = Array.make count None in
  let queue = ref { chunk; acquisitions = 0; contention = 0 } in
  (* Each slot is written by exactly one worker (the one whose chunk
     covers the index) and read only after every domain joined. *)
  if pool = 1 then
    Array.iteri (fun index job -> slots.(index) <- Some (execute index job)) jobs
  else begin
    let lock = Mutex.create () in
    let next = ref 0 in
    let acquisitions = Atomic.make 0 in
    let contention = Atomic.make 0 in
    let take_chunk () =
      let wait_started =
        if meters.metered then Unix.gettimeofday () else 0.0
      in
      if not (Mutex.try_lock lock) then begin
        Atomic.incr contention;
        Mutex.lock lock
      end;
      if meters.metered then
        Registry.Timer.observe meters.m_queue_wait
          (Unix.gettimeofday () -. wait_started);
      Atomic.incr acquisitions;
      let lo = !next in
      let hi = min count (lo + chunk) in
      next := hi;
      Mutex.unlock lock;
      if lo < hi then begin
        Registry.Counter.incr meters.m_claims;
        Some (lo, hi)
      end
      else None
    in
    let rec drain () =
      match take_chunk () with
      | None -> ()
      | Some (lo, hi) ->
        for index = lo to hi - 1 do
          slots.(index) <- Some (execute index jobs.(index))
        done;
        drain ()
    in
    let spawned = List.init (pool - 1) (fun _ -> Domain.spawn drain) in
    drain ();
    List.iter Domain.join spawned;
    queue :=
      {
        chunk;
        acquisitions = Atomic.get acquisitions;
        contention = Atomic.get contention;
      }
  end;
  let outcomes =
    Array.to_list slots
    |> List.map (function Some outcome -> outcome | None -> assert false)
  in
  {
    outcomes;
    workers = pool;
    wall_seconds = Unix.gettimeofday () -. started;
    queue = !queue;
  }

(* --- deterministic merge, always in job order --------------------------- *)

let results summary =
  List.filter_map
    (fun o -> match o.result with Ok r -> Some r | Error _ -> None)
    summary.outcomes

let errors summary =
  List.filter_map
    (fun o ->
      match o.result with Error e -> Some (o.label, e) | Ok _ -> None)
    summary.outcomes

let events summary =
  summary.outcomes
  |> List.concat_map (fun o -> o.events)
  |> List.mapi (fun seq event -> { event with Trace.seq })

let to_jsonl ?(metrics = Registry.null) summary =
  Registry.Timer.time
    (Registry.stage_timer metrics Registry.Merge)
    (fun () ->
      let buffer = Buffer.create 4096 in
      List.iter
        (fun event ->
          Buffer.add_string buffer (Trace.event_to_json event);
          Buffer.add_char buffer '\n')
        (events summary);
      Buffer.contents buffer)

let write_jsonl ?metrics path summary =
  let oc = open_out_bin path in
  output_string oc (to_jsonl ?metrics summary);
  close_out oc

let verdicts summary =
  List.concat_map
    (fun o ->
      match o.result with
      | Error _ -> []
      | Ok r ->
        List.map
          (fun p -> (o.label, p.Result.property, p.Result.verdict))
          r.Result.properties)
    summary.outcomes

let overall summary =
  List.fold_left
    (fun acc r -> Verdict.combine acc (Result.overall r))
    Verdict.True (results summary)

let sum_over field summary =
  List.fold_left (fun acc r -> acc + field r) 0 (results summary)

let total_triggers = sum_over (fun r -> r.Result.triggers)
let total_time_units = sum_over (fun r -> r.Result.time_units)
let total_test_cases = sum_over Result.completed_cases
let total_timeouts = sum_over (fun r -> r.Result.timeouts)

let vt_seconds_sum summary =
  List.fold_left
    (fun acc r -> acc +. r.Result.vt_seconds)
    0.0 (results summary)
