(** Reader/writer for the [BENCH_campaign.json] bench trajectory.

    The bench harness appends one flat JSON object per round; the file
    spans the repository's whole history. Rows written before the
    ["table"] tag existed carry none — {!parse_line} tolerates them and
    infers their table from distinctive fields ([legacy_tps] marks a
    checker row, [interp_sps] a simulate row, anything else a campaign
    row) instead of rejecting the prefix of the trajectory. Numbers may
    use the [%.6g] scientific notation the rows are written with
    ([1.33827e+06]); the core trace parser is integer-only, hence this
    dedicated flat parser. *)

type value = Number of float | Bool of bool | String of string | Null

type row = {
  table : string;  (** tag, or the inferred table for legacy rows *)
  tagged : bool;  (** [false] for rows whose table was inferred *)
  fields : (string * value) list;  (** in line order, ["table"] included
                                       when present *)
}

val parse_line : string -> (row, string) result
(** Parse one trajectory line (a flat JSON object — nested containers
    are not part of the row format and are rejected). *)

val load : string -> (row list, string) result
(** Every row of a trajectory file, blank lines skipped; the first
    malformed line fails the load with [file:line: message].
    @raise Sys_error when the file cannot be opened. *)

(** {2 Field accessors} — [None] when absent or of another kind. *)

val field : row -> string -> value option
val number : row -> string -> float option
val int_field : row -> string -> int option
val bool_field : row -> string -> bool option
val str_field : row -> string -> string option

(** {2 Writing} *)

val render : table:string -> (string * string) list -> string
(** One trajectory line from pre-rendered {!Sctc.Trace.Json} member
    values, with the uniform [("table", table)] tag placed first.
    @raise Invalid_argument when [members] already contains ["table"]. *)
