(** Parallel verification campaigns on a domain pool.

    The paper's evaluation is embarrassingly parallel: up to a million
    independent monitored simulations per property, whose verdicts are
    merged afterwards. A campaign is a list of {!job}s — each one an
    independent verification run (property x stimulus seed x approach)
    producing a {!Result.t} — fanned out over a fixed pool of
    [Domain.spawn] workers pulling from a mutex-protected queue.

    Determinism contract: the merge is ordered by job index, never by
    completion order, and every job gets a private in-memory trace bus
    whose buffered events are concatenated in job order — so verdict
    vectors, merged counters and JSONL trace output are byte-identical
    for 1 worker and N workers. Jobs must not share mutable state: a job
    builds its own session inside [run] and derives its stimulus from
    {!Stimuli.Prng.of_seed_index}, not from a shared generator. *)

type job = {
  label : string;  (** shown in reports and error messages *)
  run : Trace.t -> Result.t;
      (** executes the whole job against a fresh, private trace bus; the
          campaign owns the bus (the job must not [Trace.close] it) *)
}

type outcome = {
  index : int;  (** position in the submitted job list *)
  label : string;
  result : (Result.t, string) result;
      (** [Error] carries the printed exception of a crashed job; a crash
          is confined to its job and never poisons the pool *)
  events : Trace.event list;  (** the job's trace, job-local [seq] *)
}

type queue_stats = {
  chunk : int;  (** chunk size used for claiming job indices *)
  acquisitions : int;  (** queue-mutex acquisitions across all workers *)
  contention : int;  (** acquisitions that found the queue locked *)
}

type summary = {
  outcomes : outcome list;  (** ascending job index *)
  workers : int;  (** effective pool size *)
  wall_seconds : float;  (** wall clock of the whole campaign *)
  queue : queue_stats;  (** zero acquisitions for the inline 1-worker path *)
}

val job : label:string -> (Trace.t -> Result.t) -> job

val run :
  ?metrics:Obs.Registry.t -> ?workers:int -> ?chunk:int -> job list -> summary
(** Execute the campaign on [workers] domains (default 1; clamped to the
    number of jobs). [workers = 1] runs inline on the calling domain; for
    [workers = N] the calling domain participates alongside [N - 1]
    spawned domains. Workers claim [chunk] consecutive job indices per
    queue-mutex acquisition (default: ~4 claims per worker, at least 1);
    the chunk size affects only scheduling, never the merged output. Job
    exceptions are caught per job, even mid-chunk.

    With a live [metrics] registry (default {!Obs.Registry.null}) the
    pool records [campaign_jobs_total], [campaign_job_errors_total],
    [campaign_chunk_claims_total], the [campaign_job_seconds] runtime
    histogram and the per-worker [campaign_queue_wait_seconds] wait
    histogram. Workers record into per-domain cells and never serialize
    on a metrics lock; recording never affects verdicts, the merge
    order, or the trace JSONL. *)

(** {2 Deterministic merge} *)

val results : summary -> Result.t list
(** Successful results, in job order. *)

val errors : summary -> (string * string) list
(** [(label, exception text)] of crashed jobs, in job order. *)

val events : summary -> Trace.event list
(** All trace events, concatenated in job order and renumbered with a
    campaign-global [seq] starting at 0. *)

val to_jsonl : ?metrics:Obs.Registry.t -> summary -> string
(** {!events} rendered one JSON object per line — byte-identical for any
    worker count. A live [metrics] registry charges the render to the
    [merge] stage timer. *)

val write_jsonl : ?metrics:Obs.Registry.t -> string -> summary -> unit
(** {!to_jsonl} into a file (truncates). *)

val verdicts : summary -> (string * string * Verdict.t) list
(** [(job label, property, verdict)] across all successful jobs, job
    order then registration order. *)

val overall : summary -> Verdict.t
(** {!Verdict.combine} over every property of every successful result. *)

(** {2 Merged counters} *)

val total_triggers : summary -> int
val total_time_units : summary -> int
val total_test_cases : summary -> int
val total_timeouts : summary -> int

val vt_seconds_sum : summary -> float
(** Sum of per-job verification times — the sequential-equivalent cost;
    compare with [wall_seconds] for the pool's speedup. *)
