(** Parallel verification campaigns on a domain pool.

    The paper's evaluation is embarrassingly parallel: up to a million
    independent monitored simulations per property, whose verdicts are
    merged afterwards. A campaign is a list of {!job}s — each one an
    independent verification run (property x stimulus seed x approach)
    producing a {!Result.t} — fanned out over a fixed pool of
    [Domain.spawn] workers pulling from a mutex-protected queue.

    Two engines share the pool:

    - {!run} — the seed engine: every outcome (with its full event
      buffer) is accumulated, and the merge happens after the pool
      joins. Simple, and kept as the differential oracle.
    - {!run_stream} — the streaming engine: workers hand finished
      outcomes to an ordered reassembly buffer that emits them to
      {!sink}s strictly in job order as soon as the order allows, with
      a bounded window and backpressure. Live memory stays bounded by
      window + workers outcomes instead of the whole campaign, and the
      merge cost is paid incrementally while workers are still
      simulating.

    Determinism contract (both engines): output is ordered by job
    index, never by completion order, and every job gets a private
    in-memory trace bus whose buffered events are concatenated in job
    order — so verdict vectors, merged counters and JSONL trace output
    are byte-identical for 1 worker and N workers, and a streaming
    JSONL sink writes exactly the bytes of the seed engine's
    {!to_jsonl}. Jobs must not share mutable state: a job builds its
    own session inside the engine and derives its stimulus from
    {!Stimuli.Prng.of_seed_index}, not from a shared generator. *)

type job = {
  label : string;  (** shown in reports and error messages *)
  run : Trace.t -> Result.t;
      (** executes the whole job against a fresh, private trace bus; the
          campaign owns the bus (the job must not [Trace.close] it) *)
}

type outcome = {
  index : int;  (** position in the submitted job list *)
  label : string;
  result : (Result.t, string) result;
      (** [Error] carries the printed exception of a crashed job; a crash
          is confined to its job and never poisons the pool *)
  events : Trace.event list;
      (** the job's trace. Job-local [seq] in {!run} summaries;
          campaign-global [seq] as delivered to streaming sinks; always
          [[]] in {!run_stream} summaries (events are handed to the
          sinks, not retained) *)
}

type queue_stats = {
  chunk : int;  (** chunk size used for claiming job indices *)
  acquisitions : int;  (** queue-mutex acquisitions across all workers *)
  contention : int;  (** acquisitions that found the queue locked *)
}

type stream_stats = {
  window : int;  (** configured reassembly-window bound *)
  peak_window : int;  (** most outcomes ever parked at once *)
  emitted : int;
      (** outcomes emitted to the sinks (= job count unless the
          campaign was cancelled) *)
  backpressure_waits : int;
      (** deposits that blocked because the window was full *)
  backpressure_seconds : float;  (** total time spent in those waits *)
  cancelled_jobs : int;
      (** jobs never started because the campaign was cancelled first;
          0 for a campaign that ran to completion *)
}

type summary = {
  outcomes : outcome list;  (** ascending job index *)
  workers : int;  (** effective pool size *)
  wall_seconds : float;  (** wall clock of the whole campaign *)
  queue : queue_stats;  (** zero acquisitions for the inline 1-worker path *)
  stream : stream_stats option;
      (** [None] for the seed engine, [Some] for {!run_stream} *)
}

(** A streaming consumer of campaign outcomes. [on_outcome] is called
    once per job, strictly in ascending job index order, with the
    outcome's events already renumbered to the campaign-global [seq] —
    serially, under the reassembly lock, from whichever domain deposited
    the frontier outcome (sinks need not be thread-safe, but must not
    call back into the campaign). [on_close] is called once, after the
    pool joins. A sink that raises is disabled for the rest of the run
    and the exception resurfaces as a [Failure] after the campaign
    completes — the pool itself is never poisoned. *)
type sink = { on_outcome : outcome -> unit; on_close : unit -> unit }

val job : label:string -> (Trace.t -> Result.t) -> job

(** {2 Early stopping}

    Cooperative cancellation for {!run_stream} — the statistical model
    checker's lever ({!Smc.Runner}): a sequential test that reaches a
    decision cancels the rest of the campaign. Cancellation is polled
    at chunk-claim time only, so every claimed chunk runs to
    completion and the executed set is always a contiguous prefix of
    the job list: every executed outcome still reaches the sinks in
    order, no worker is left blocked on the reassembly window, and the
    window drains to empty before the pool joins. *)

type cancellation

val cancellation : unit -> cancellation
(** A fresh token, initially not cancelled. *)

val cancel : cancellation -> unit
(** Request early stop; safe from any domain — including a sink running
    under the reassembly lock. Idempotent. *)

val cancelled : cancellation -> bool

val run :
  ?metrics:Obs.Registry.t -> ?workers:int -> ?chunk:int -> job list -> summary
(** Execute the campaign on [workers] domains (default 1; clamped to the
    number of jobs). [workers = 1] runs inline on the calling domain; for
    [workers = N] the calling domain participates alongside [N - 1]
    spawned domains. Workers claim [chunk] consecutive job indices per
    queue-mutex acquisition (default: ~4 claims per worker, at least 1);
    the chunk size affects only scheduling, never the merged output. Job
    exceptions are caught per job, even mid-chunk.

    With a live [metrics] registry (default {!Obs.Registry.null}) the
    pool records [campaign_jobs_total], [campaign_job_errors_total],
    [campaign_chunk_claims_total], the [campaign_job_seconds] runtime
    histogram and the per-worker [campaign_queue_wait_seconds] wait
    histogram. Workers record into per-domain cells and never serialize
    on a metrics lock; recording never affects verdicts, the merge
    order, or the trace JSONL. *)

val run_stream :
  ?metrics:Obs.Registry.t ->
  ?workers:int ->
  ?chunk:int ->
  ?window:int ->
  ?cancel:cancellation ->
  ?sinks:sink list ->
  job list ->
  summary
(** Like {!run}, but outcomes flow to [sinks] incrementally through an
    ordered reassembly buffer instead of accumulating until the end.

    An outcome finishing out of order parks in the buffer until the
    frontier (the next job index to emit) reaches it. The buffer holds
    at most [window] outcomes (default [max 4 (2 * pool)], clamped to
    >= 1): a worker depositing beyond a full window blocks until the
    frontier advances — so one slow job bounds live memory at
    [window + workers] outcomes instead of the whole campaign. The
    deposit at the frontier index itself never blocks (everything below
    it has already been emitted), so the campaign cannot deadlock, for
    any window, chunk and worker count.

    The summary's [outcomes] keep label/result but drop the event
    buffers ([events = []]); [stream] carries the {!stream_stats}.
    Merged counters, {!verdicts} and {!errors} work unchanged.

    With a [cancel] token, {!cancel} stops the campaign at the next
    chunk boundary: the summary covers exactly the executed prefix
    (never dropping an already-emitted outcome),
    [stream.cancelled_jobs] counts the jobs never started, and a sink
    failure recorded before the cancel still resurfaces as the
    [Failure]. Pass [~chunk:1] when cancellation latency matters more
    than queue traffic (the sequential-test default).

    On top of {!run}'s metrics, a live [metrics] registry records the
    [campaign_stream_window] gauge (outcomes currently parked; sample
    it concurrently to watch the window), [campaign_stream_emitted_total],
    [campaign_backpressure_waits_total], the
    [campaign_backpressure_wait_seconds] histogram, and charges
    per-outcome sink emission to the [merge] stage timer — the
    streaming counterpart of {!to_jsonl}'s end-of-run merge charge. *)

(** {2 Streaming sinks} *)

val sink : ?close:(unit -> unit) -> (outcome -> unit) -> sink
(** [sink f] calls [f] per outcome; [close] defaults to a no-op. *)

val jsonl_buffer_sink : Buffer.t -> sink
(** Append every outcome's events as JSONL into a buffer. The buffer's
    final contents equal the seed engine's {!to_jsonl} byte for byte. *)

val jsonl_channel_sink : out_channel -> sink
(** Write every outcome's events as JSONL to a channel; each outcome is
    rendered into a reused buffer and written in one output call.
    [on_close] flushes but does not close the channel. *)

val jsonl_file_sink : string -> sink
(** Like {!jsonl_channel_sink} into a fresh file (truncates);
    [on_close] closes it. *)

val sharded_jsonl_sink :
  ?metrics:Obs.Registry.t -> shards:int -> jobs:int -> string -> sink
(** Split the JSONL stream over [shards] files derived from the path
    (see {!shard_path}). Job [i] of [jobs] lands in shard
    [i * shards / jobs] — contiguous, balanced index ranges — so
    concatenating the shard files in shard order reproduces the merged
    stream byte for byte. All shard files are created (truncated) up
    front, so the artifact set is deterministic even when trailing
    shards stay empty. A live [metrics] registry counts per-shard
    flushes as [campaign_shard_flushes_total{shard="NNN"}].
    @raise Invalid_argument when [shards < 1]. *)

val shard_path : string -> shard:int -> string
(** ["out.jsonl" -> "out.000.jsonl"]; a path without an extension gets
    the shard suffix appended (["out" -> "out.000"]). *)

val shard_of_job : shards:int -> jobs:int -> int -> int
(** The shard index job [i] is routed to. *)

(** {2 Deterministic merge} *)

val results : summary -> Result.t list
(** Successful results, in job order. *)

val errors : summary -> (string * string) list
(** [(label, exception text)] of crashed jobs, in job order. *)

val events : summary -> Trace.event list
(** All trace events, concatenated in job order and renumbered with a
    campaign-global [seq] starting at 0. Empty for {!run_stream}
    summaries — attach a sink to observe the stream. *)

val to_jsonl : ?metrics:Obs.Registry.t -> summary -> string
(** {!events} rendered one JSON object per line — byte-identical for any
    worker count. A live [metrics] registry charges the render to the
    [merge] stage timer. *)

val write_jsonl : ?metrics:Obs.Registry.t -> string -> summary -> unit
(** {!to_jsonl} into a file (truncates). *)

val verdicts : summary -> (string * string * Verdict.t) list
(** [(job label, property, verdict)] across all successful jobs, job
    order then registration order. *)

val overall : summary -> Verdict.t
(** {!Verdict.combine} over every property of every successful result. *)

(** {2 Merged counters} *)

val total_triggers : summary -> int
val total_time_units : summary -> int
val total_test_cases : summary -> int
val total_timeouts : summary -> int

val vt_seconds_sum : summary -> float
(** Sum of per-job verification times — the sequential-equivalent cost;
    compare with [wall_seconds] for the pool's speedup. *)
