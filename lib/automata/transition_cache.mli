(** Memoized formula progression — the lazily built AR-automaton.

    Explicit synthesis ({!Ar_automaton.synthesize}) pays the full
    determinization cost up front; plain {!Progression.step} pays an
    interpretation cost on every trigger. This module is the middle
    point the runtime-verification literature recommends: progression
    results are cached per [(formula, support valuation)] pair, so the
    reachable fragment of the AR-automaton is determinized lazily, one
    transition the first time it is taken — steady-state triggers are
    one array (or hash) lookup plus an id compare.

    Formulas are hash-consed ({!Formula.hash} is the globally unique
    id), so a residual obligation reached from two different properties
    shares one cache node. The transition key is the valuation of the
    node's {e own} sorted support ({!props}), which makes the key
    canonical across monitors whose supports differ.

    The cache is per-domain ([Domain.DLS], mirroring
    {!Ar_automaton.synthesize_memo}): lookups take no lock, and a node
    must only be stepped on the domain that created it. Only the
    two-word stats cells outlive a worker domain. *)

type node
(** An interned formula plus its (lazily filled) outgoing transitions. *)

val node : Formula.t -> node
(** Intern [formula] in the calling domain's cache (idempotent). *)

val formula : node -> Formula.t
val props : node -> string array
(** The node's support, sorted — bit [i] of a transition mask is the
    sampled value of [props.(i)]. *)

val step : node -> int -> Formula.t
(** [step node mask] is the successor obligation under the valuation
    encoded by [mask]; memoized after the first computation. Nodes with
    more than {!max_dense_props} propositions fall back from the dense
    successor array to a per-node hash table, and nodes beyond
    {!max_cached_props} recompute every step (counted as misses). *)

val step_node : node -> int -> node
(** [step node mask], interned — the common monitor transition. *)

val max_dense_props : int
val max_cached_props : int

(** {2 Statistics}

    [Formula.cons_stats]-style process-wide counters, summed over every
    domain that ever stepped a node; exported through [lib/obs] by the
    checker as [sctc_progression_cache_{hits,misses}_total]. *)

type stats = { hits : int; misses : int; nodes : int }

val stats : unit -> stats
(** Aggregated over all domains (takes the registry mutex). *)

val local_stats : unit -> int * int
(** [(hits, misses)] of the calling domain only — lock-free, cheap
    enough for per-trigger deltas on the metered checker path. *)
