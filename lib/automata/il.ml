type kind = Accept | Reject | Pend

type transition = { guard : Cube.t list; target : int }
type state = { kind : kind; outgoing : transition list }

type t = {
  name : string;
  props : string array;
  initial : int;
  states : state array;
}

let kind_of_ar = function
  | Ar_automaton.Accept -> Accept
  | Ar_automaton.Reject -> Reject
  | Ar_automaton.Pend -> Pend

let of_automaton ~name automaton =
  let width = Ar_automaton.num_props automaton in
  let num_assignments = 1 lsl width in
  let states =
    Array.init (Ar_automaton.num_states automaton) (fun id ->
        let kind = kind_of_ar (Ar_automaton.kind automaton id) in
        match kind with
        | Accept | Reject -> { kind; outgoing = [] }
        | Pend ->
          (* group assignments by successor, then minimize each group *)
          let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
          for mask = 0 to num_assignments - 1 do
            let target = Ar_automaton.next automaton id mask in
            match Hashtbl.find_opt groups target with
            | Some masks -> masks := mask :: !masks
            | None -> Hashtbl.replace groups target (ref [ mask ])
          done;
          let outgoing =
            Hashtbl.fold
              (fun target masks acc ->
                { guard = Cube.minimize ~width !masks; target } :: acc)
              groups []
            |> List.sort (fun a b -> Int.compare a.target b.target)
          in
          { kind; outgoing })
  in
  {
    name;
    props = Ar_automaton.props automaton;
    initial = Ar_automaton.initial automaton;
    states;
  }

let valuation_to_string props mask =
  if Array.length props = 0 then "<no props>"
  else
    String.concat " "
      (List.mapi
         (fun i prop -> Printf.sprintf "%s=%d" prop ((mask lsr i) land 1))
         (Array.to_list props))

let missing_guard ~name ~props state mask =
  invalid_arg
    (Printf.sprintf
       "Il.next(%s): state %d has no guard for valuation %s (mask %d)" name
       state
       (valuation_to_string props mask)
       mask)

let next il state mask =
  let s = il.states.(state) in
  match s.kind with
  | Accept | Reject -> state
  | Pend ->
    let rec search = function
      | [] -> missing_guard ~name:il.name ~props:il.props state mask
      | t :: rest ->
        if List.exists (fun cube -> Cube.matches cube mask) t.guard then
          t.target
        else search rest
    in
    search s.outgoing

(* Compiled successor tables: the [next] list scan above evaluates every
   cube against the mask until one matches — fine as a differential
   oracle, too slow for the per-trigger hot path. [Table] pre-indexes the
   same function by mask, reusing [Transition_cache]'s width thresholds:
   a dense array per state up to [max_dense_props], a lazily filled hash
   up to [max_cached_props], and direct computation beyond. *)
(* alias: inside [Table] the name [next] refers to the table lookup *)
let scan_next = next

module Table = struct
  type succ =
    | Absorbing  (** accept/reject states are their own successor *)
    | Dense of int array  (** [2^width] targets; [-1] marks a missing guard *)
    | Sparse of { cache : (int, int) Hashtbl.t; compute : int -> int }
    | Wide of (int -> int)

  type table = {
    t_name : string;
    t_props : string array;
    t_initial : int;
    succs : succ array;
  }

  type t = table

  let name table = table.t_name
  let props table = table.t_props
  let initial table = table.t_initial
  let num_states table = Array.length table.succs

  let dense_states table =
    Array.fold_left
      (fun acc succ -> match succ with Dense _ -> acc + 1 | _ -> acc)
      0 table.succs

  let next table state mask =
    match table.succs.(state) with
    | Absorbing -> state
    | Dense targets ->
      let target = targets.(mask) in
      if target >= 0 then target
      else missing_guard ~name:table.t_name ~props:table.t_props state mask
    | Sparse { cache; compute } -> (
      match Hashtbl.find_opt cache mask with
      | Some target -> target
      | None ->
        let target = compute mask in
        Hashtbl.replace cache mask target;
        target)
    | Wide compute -> compute mask

  let of_il il =
    let width = Array.length il.props in
    let succ_of_state id =
      let s = il.states.(id) in
      match s.kind with
      | Accept | Reject -> Absorbing
      | Pend ->
        if width <= Transition_cache.max_dense_props then begin
          let targets = Array.make (1 lsl width) (-1) in
          List.iter
            (fun t ->
              List.iter
                (fun cube ->
                  List.iter
                    (fun mask -> targets.(mask) <- t.target)
                    (Cube.minterms cube))
                t.guard)
            s.outgoing;
          Dense targets
        end
        else if width <= Transition_cache.max_cached_props then
          Sparse
            {
              cache = Hashtbl.create 64;
              compute = (fun mask -> scan_next il id mask);
            }
        else Wide (fun mask -> scan_next il id mask)
    in
    {
      t_name = il.name;
      t_props = Array.copy il.props;
      t_initial = il.initial;
      succs = Array.init (Array.length il.states) succ_of_state;
    }

  let of_automaton ~name automaton =
    let width = Ar_automaton.num_props automaton in
    let succ_of_state id =
      match Ar_automaton.kind automaton id with
      | Ar_automaton.Accept | Ar_automaton.Reject -> Absorbing
      | Ar_automaton.Pend ->
        if width <= Transition_cache.max_dense_props then
          Dense (Array.init (1 lsl width) (Ar_automaton.next automaton id))
        else
          (* [Ar_automaton.next] is itself a dense 2D lookup; no point
             hashing in front of an array access *)
          Wide (fun mask -> Ar_automaton.next automaton id mask)
    in
    {
      t_name = name;
      t_props = Ar_automaton.props automaton;
      t_initial = Ar_automaton.initial automaton;
      succs =
        Array.init (Ar_automaton.num_states automaton) succ_of_state;
    }
end

let compile = Table.of_il

let kind_to_string = function
  | Accept -> "accept"
  | Reject -> "reject"
  | Pend -> "pending"

let pp fmt il =
  Format.fprintf fmt "automaton %s {@\n" il.name;
  Format.fprintf fmt "  props: %s;@\n"
    (String.concat ", " (Array.to_list il.props));
  Format.fprintf fmt "  initial: %d;@\n" il.initial;
  Array.iteri
    (fun id state ->
      Format.fprintf fmt "  state %d %s {@\n" id (kind_to_string state.kind);
      List.iter
        (fun t ->
          List.iter
            (fun cube ->
              Format.fprintf fmt "    on %s -> %d;@\n" (Cube.to_string cube)
                t.target)
            t.guard)
        state.outgoing;
      Format.fprintf fmt "  }@\n")
    il.states;
  Format.fprintf fmt "}@\n"

let to_string il = Format.asprintf "%a" pp il

exception Parse_error of string

(* Split "cube -> target" at the (space-delimited) arrow; cubes themselves
   may contain '-' as don't-care, so the separator is exactly " -> ". *)
let split_arrow text =
  let sep = " -> " in
  let sep_len = String.length sep in
  let rec find i =
    if i + sep_len > String.length text then
      raise (Parse_error ("missing ' -> ' in " ^ text))
    else if String.sub text i sep_len = sep then i
    else find (i + 1)
  in
  let j = find 0 in
  ( String.sub text 0 j,
    String.sub text (j + sep_len) (String.length text - j - sep_len) )

(* A small line-oriented parser for the format printed above. *)
let parse text =
  let fail msg = raise (Parse_error msg) in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun line -> line <> "")
  in
  let name = ref "" in
  let props = ref [||] in
  let initial = ref 0 in
  let states : (int, kind * transition list) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  let strip_suffix suffix s =
    if String.length s >= String.length suffix
       && String.sub s (String.length s - String.length suffix)
            (String.length suffix)
          = suffix
    then String.sub s 0 (String.length s - String.length suffix)
    else fail (Printf.sprintf "expected %S at end of %S" suffix s)
  in
  List.iter
    (fun line ->
      if line = "}" then current := None
      else if String.length line >= 10 && String.sub line 0 10 = "automaton " then
        name := String.trim (strip_suffix "{" (String.sub line 10 (String.length line - 10)))
      else if String.length line >= 7 && String.sub line 0 7 = "props: " then
        props :=
          String.sub line 7 (String.length line - 7)
          |> strip_suffix ";"
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> Array.of_list
      else if String.length line >= 9 && String.sub line 0 9 = "initial: " then
        initial :=
          int_of_string (strip_suffix ";" (String.sub line 9 (String.length line - 9)))
      else if String.length line >= 6 && String.sub line 0 6 = "state " then begin
        let body = strip_suffix "{" (String.sub line 6 (String.length line - 6)) in
        match String.split_on_char ' ' (String.trim body) with
        | [ id_text; kind_text ] ->
          let id = int_of_string id_text in
          let kind =
            match kind_text with
            | "accept" -> Accept
            | "reject" -> Reject
            | "pending" -> Pend
            | other -> fail ("unknown state kind " ^ other)
          in
          Hashtbl.replace states id (kind, []);
          current := Some id
        | _ -> fail ("malformed state header: " ^ line)
      end
      else if String.length line >= 3 && String.sub line 0 3 = "on " then begin
        match !current with
        | None -> fail "transition outside state block"
        | Some id ->
          let body = strip_suffix ";" (String.sub line 3 (String.length line - 3)) in
          let cube_text, target_text = split_arrow body in
          let cube = Cube.of_string (String.trim cube_text) in
          let target = int_of_string (String.trim target_text) in
          let kind, transitions = Hashtbl.find states id in
          Hashtbl.replace states id
            (kind, { guard = [ cube ]; target } :: transitions)
      end
      else fail ("unrecognized line: " ^ line))
    lines;
  let max_id = Hashtbl.fold (fun id _ acc -> max id acc) states (-1) in
  let state_array =
    Array.init (max_id + 1) (fun id ->
        match Hashtbl.find_opt states id with
        | None -> fail (Printf.sprintf "missing state %d" id)
        | Some (kind, transitions) ->
          (* merge single-cube transitions with equal targets *)
          let grouped : (int, Cube.t list ref) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun t ->
              match t.guard with
              | [ cube ] -> (
                match Hashtbl.find_opt grouped t.target with
                | Some cubes -> cubes := cube :: !cubes
                | None -> Hashtbl.replace grouped t.target (ref [ cube ]))
              | _ -> assert false)
            transitions;
          let outgoing =
            Hashtbl.fold
              (fun target cubes acc ->
                { guard = List.rev !cubes; target } :: acc)
              grouped []
            |> List.sort (fun a b -> Int.compare a.target b.target)
          in
          { kind; outgoing })
  in
  { name = !name; props = !props; initial = !initial; states = state_array }

let num_transitions il =
  Array.fold_left
    (fun acc state ->
      List.fold_left (fun acc t -> acc + List.length t.guard) acc state.outgoing)
    0 il.states
