(** Explicit Accept/Reject automata.

    SCTC's synthesis engine translates a property into an AR-automaton that
    is executed during system monitoring (Ruf et al., DATE 2001). States are
    obligations (formulas); the automaton reads one proposition assignment
    per trigger and moves to the progressed obligation. [Accept] and
    [Reject] states are absorbing and correspond to validation/violation on
    the finite trace; everything else is pending.

    Explicit synthesis enumerates all reachable obligations up front, which
    for a bounded operator [F[b]] creates O(b) count-down states — the
    source of the large AR-automaton generation times the paper reports for
    time bound 100000. The on-the-fly alternative is {!Progression}. *)

type state_kind = Accept | Reject | Pend

type t

exception Too_large of int
(** Raised by {!synthesize} when the state count exceeds [max_states]. *)

(** [synthesize ?max_states formula] builds the explicit automaton
    (default [max_states] 200000). *)
val synthesize : ?max_states:int -> Formula.t -> t

(** [synthesize_memo ?max_states formula] is {!synthesize} through a
    per-domain memo cache keyed by the formula's hash-cons id and the
    bound: N campaign jobs over the same property on the same worker
    domain derive the automaton once, without any cross-domain locking.
    Returns [(automaton, fresh)]; [fresh] is [false] on a cache hit, so
    callers accounting synthesis time do not double-count
    {!build_seconds}. Failed synthesis ([Too_large]) is never cached. *)
val synthesize_memo : ?max_states:int -> Formula.t -> t * bool

type cache_stats = { cache_hits : int; cache_misses : int }

val cache_stats : unit -> cache_stats
(** Cumulative {!synthesize_memo} hit/miss counts summed over every
    domain that ever synthesized. *)

val formula : t -> Formula.t
val props : t -> string array
(** Proposition order defining assignment bitmasks: bit [i] = value of
    [props.(i)]. *)

val num_states : t -> int
val num_props : t -> int
val initial : t -> int
val kind : t -> int -> state_kind
val next : t -> int -> int -> int
(** [next a state mask] is the successor under assignment [mask]. *)

val state_formula : t -> int -> Formula.t
(** The obligation a state denotes. *)

val build_seconds : t -> float
(** Wall-clock time spent in synthesis (the paper's "AR-automaton
    generation time" component of verification time). *)

val mask_of_valuation : t -> (string -> bool) -> int

val stats : t -> string
(** Human-readable summary: states, propositions, build time. *)
