type formula_state = {
  initial : Formula.t;
  mutable node : Transition_cache.node; (* current residual obligation *)
  mutable sel : int array; (* node props position -> monitor support slot *)
  views : (int, Transition_cache.node * int array) Hashtbl.t;
      (* residual formula id -> (node, sel); per-monitor, so cycles through
         the reachable obligations re-derive the slot mapping once *)
}

type engine =
  | Formula_engine of formula_state
  | Automaton_engine of { automaton : Ar_automaton.t; mutable state : int }
  | Il_engine of { il : Il.t; mutable state : int }

type t = {
  m_name : string;
  engine : engine;
  support : string array; (* proposition names, bitmask order for explicit *)
  samplers : (unit -> bool) array;
  samples : bool array; (* scratch for the self-sampling [step] path *)
  mutable step_count : int;
  mutable last_verdict : Verdict.t;
}

let resolve_support ~binding support =
  Array.map (fun name -> binding name) support

let make name engine support binding =
  {
    m_name = name;
    engine;
    support;
    samplers = resolve_support ~binding support;
    samples = Array.make (Array.length support) false;
    step_count = 0;
    last_verdict = Verdict.Pending;
  }

let engine_verdict = function
  | Formula_engine e -> Progression.verdict (Transition_cache.formula e.node)
  | Automaton_engine e -> (
    match Ar_automaton.kind e.automaton e.state with
    | Ar_automaton.Accept -> Verdict.True
    | Ar_automaton.Reject -> Verdict.False
    | Ar_automaton.Pend -> Verdict.Pending)
  | Il_engine e -> (
    match e.il.Il.states.(e.state).Il.kind with
    | Il.Accept -> Verdict.True
    | Il.Reject -> Verdict.False
    | Il.Pend -> Verdict.Pending)

(* a residual obligation's support is a subset of the initial formula's,
   so every node proposition resolves to a monitor support slot *)
let slot_of_support support name =
  let rec find i =
    if i >= Array.length support then
      invalid_arg ("Monitor: proposition not in support: " ^ name)
    else if String.equal support.(i) name then i
    else find (i + 1)
  in
  find 0

let view_of support views formula =
  match Hashtbl.find_opt views (Formula.hash formula) with
  | Some view -> view
  | None ->
    let node = Transition_cache.node formula in
    let sel =
      Array.map (slot_of_support support) (Transition_cache.props node)
    in
    Hashtbl.replace views (Formula.hash formula) (node, sel);
    (node, sel)

let formula_state support formula =
  let views = Hashtbl.create 16 in
  let node, sel = view_of support views formula in
  { initial = formula; node; sel; views }

let of_formula ~name formula ~binding =
  let support = Array.of_list (Formula.props formula) in
  let engine = Formula_engine (formula_state support formula) in
  let monitor = make name engine support binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_automaton ~name automaton ~binding =
  let engine =
    Automaton_engine { automaton; state = Ar_automaton.initial automaton }
  in
  let monitor = make name engine (Ar_automaton.props automaton) binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_il ~name il ~binding =
  let engine = Il_engine { il; state = il.Il.initial } in
  let monitor = make name engine il.Il.props binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let name monitor = monitor.m_name
let verdict monitor = monitor.last_verdict
let steps monitor = monitor.step_count
let support monitor = Array.copy monitor.support

(* All engines advance from a mask-indexed view of the current samples:
   [read slot] is the sampled value of [support.(slot)]. The on-the-fly
   engine masks only the residual's own support (canonical across
   monitors, so cache nodes are shared) and memoizes the progression;
   explicit engines build the automaton's full support mask. *)
let advance monitor read =
  match monitor.engine with
  | Formula_engine e ->
    let sel = e.sel in
    let mask = ref 0 in
    Array.iteri
      (fun i slot -> if read slot then mask := !mask lor (1 lsl i))
      sel;
    let next = Transition_cache.step e.node !mask in
    if not (Formula.equal next (Transition_cache.formula e.node)) then begin
      let node, sel = view_of monitor.support e.views next in
      e.node <- node;
      e.sel <- sel
    end
  | Automaton_engine e ->
    let mask = ref 0 in
    for slot = 0 to Array.length monitor.support - 1 do
      if read slot then mask := !mask lor (1 lsl slot)
    done;
    e.state <- Ar_automaton.next e.automaton e.state !mask
  | Il_engine e ->
    let mask = ref 0 in
    for slot = 0 to Array.length monitor.support - 1 do
      if read slot then mask := !mask lor (1 lsl slot)
    done;
    e.state <- Il.next e.il e.state !mask

let finish_step monitor =
  monitor.step_count <- monitor.step_count + 1;
  monitor.last_verdict <- engine_verdict monitor.engine;
  monitor.last_verdict

let step monitor =
  if Verdict.is_final monitor.last_verdict then begin
    monitor.step_count <- monitor.step_count + 1;
    monitor.last_verdict
  end
  else begin
    (* sample every supporting proposition exactly once for this step *)
    let samples = monitor.samples in
    Array.iteri (fun i sampler -> samples.(i) <- sampler ()) monitor.samplers;
    advance monitor (fun slot -> samples.(slot));
    finish_step monitor
  end

let step_indexed monitor ~samples ~map =
  if Verdict.is_final monitor.last_verdict then begin
    monitor.step_count <- monitor.step_count + 1;
    monitor.last_verdict
  end
  else begin
    advance monitor (fun slot -> samples.(map.(slot)));
    finish_step monitor
  end

let finalize ?(strong = false) monitor =
  match monitor.engine with
  | Formula_engine e ->
    Progression.finalize ~strong (Transition_cache.formula e.node)
  | Automaton_engine e ->
    Progression.finalize ~strong
      (Ar_automaton.state_formula e.automaton e.state)
  | Il_engine _ -> monitor.last_verdict

let reset monitor =
  (match monitor.engine with
  | Formula_engine e ->
    let node, sel = view_of monitor.support e.views e.initial in
    e.node <- node;
    e.sel <- sel
  | Automaton_engine e -> e.state <- Ar_automaton.initial e.automaton
  | Il_engine e -> e.state <- e.il.Il.initial);
  monitor.step_count <- 0;
  monitor.last_verdict <- engine_verdict monitor.engine
