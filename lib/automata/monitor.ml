type formula_state = {
  initial : Formula.t;
  mutable node : Transition_cache.node; (* current residual obligation *)
  mutable sel : int array; (* node props position -> monitor support slot *)
  views : (int, Transition_cache.node * int array) Hashtbl.t;
      (* residual formula id -> (node, sel); per-monitor, so cycles through
         the reachable obligations re-derive the slot mapping once *)
}

(* A hybrid monitor starts on-the-fly and, once one residual obligation
   has absorbed [h_promote_after] steps, promotes it to an explicit
   automaton stepped through a compiled [Il.Table]. The promoted
   automaton's initial state IS the hot residual, so promotion between
   two steps never changes any verdict. Synthesis failure ([Too_large],
   or more propositions than the explicit engine supports) leaves the
   monitor on-the-fly for good. *)
type hybrid_mode =
  | H_formula of formula_state
  | H_table of {
      automaton : Ar_automaton.t;
      table : Il.Table.t;
      sel : int array; (* automaton props position -> monitor support slot *)
      mutable state : int;
    }

type hybrid_state = {
  h_initial : Formula.t;
  h_max_states : int;
  h_promote_after : int;
  h_visits : (int, int) Hashtbl.t; (* residual formula hash -> steps from it *)
  mutable h_mode : hybrid_mode;
}

type engine =
  | Formula_engine of formula_state
  | Automaton_engine of { automaton : Ar_automaton.t; mutable state : int }
  | Il_engine of { il : Il.t; table : Il.Table.t; mutable state : int }
  | Hybrid_engine of hybrid_state

type t = {
  m_name : string;
  engine : engine;
  support : string array; (* proposition names, bitmask order for explicit *)
  samplers : (unit -> bool) array;
  samples : bool array; (* scratch for the self-sampling [step] path *)
  mutable step_count : int;
  mutable last_verdict : Verdict.t;
}

let resolve_support ~binding support =
  Array.map (fun name -> binding name) support

let make name engine support binding =
  {
    m_name = name;
    engine;
    support;
    samplers = resolve_support ~binding support;
    samples = Array.make (Array.length support) false;
    step_count = 0;
    last_verdict = Verdict.Pending;
  }

let automaton_verdict automaton state =
  match Ar_automaton.kind automaton state with
  | Ar_automaton.Accept -> Verdict.True
  | Ar_automaton.Reject -> Verdict.False
  | Ar_automaton.Pend -> Verdict.Pending

let engine_verdict = function
  | Formula_engine e -> Progression.verdict (Transition_cache.formula e.node)
  | Automaton_engine e -> automaton_verdict e.automaton e.state
  | Il_engine e -> (
    match e.il.Il.states.(e.state).Il.kind with
    | Il.Accept -> Verdict.True
    | Il.Reject -> Verdict.False
    | Il.Pend -> Verdict.Pending)
  | Hybrid_engine h -> (
    match h.h_mode with
    | H_formula e -> Progression.verdict (Transition_cache.formula e.node)
    | H_table e -> automaton_verdict e.automaton e.state)

(* a residual obligation's support is a subset of the initial formula's,
   so every node proposition resolves to a monitor support slot *)
let slot_of_support support name =
  let rec find i =
    if i >= Array.length support then
      invalid_arg ("Monitor: proposition not in support: " ^ name)
    else if String.equal support.(i) name then i
    else find (i + 1)
  in
  find 0

let view_of support views formula =
  match Hashtbl.find_opt views (Formula.hash formula) with
  | Some view -> view
  | None ->
    let node = Transition_cache.node formula in
    let sel =
      Array.map (slot_of_support support) (Transition_cache.props node)
    in
    Hashtbl.replace views (Formula.hash formula) (node, sel);
    (node, sel)

let formula_state support formula =
  let views = Hashtbl.create 16 in
  let node, sel = view_of support views formula in
  { initial = formula; node; sel; views }

let of_formula ~name formula ~binding =
  let support = Array.of_list (Formula.props formula) in
  let engine = Formula_engine (formula_state support formula) in
  let monitor = make name engine support binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_automaton ~name automaton ~binding =
  let engine =
    Automaton_engine { automaton; state = Ar_automaton.initial automaton }
  in
  let monitor = make name engine (Ar_automaton.props automaton) binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_il ~name il ~binding =
  let engine = Il_engine { il; table = Il.compile il; state = il.Il.initial } in
  let monitor = make name engine il.Il.props binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let of_formula_hybrid ~name ?(promote_after = 32) ?(max_states = 10_000)
    formula ~binding =
  let support = Array.of_list (Formula.props formula) in
  let engine =
    Hybrid_engine
      {
        h_initial = formula;
        h_max_states = max_states;
        h_promote_after = max 1 promote_after;
        h_visits = Hashtbl.create 16;
        h_mode = H_formula (formula_state support formula);
      }
  in
  let monitor = make name engine support binding in
  monitor.last_verdict <- engine_verdict engine;
  monitor

let promoted monitor =
  match monitor.engine with
  | Hybrid_engine { h_mode = H_table _; _ } -> true
  | _ -> false

let name monitor = monitor.m_name
let verdict monitor = monitor.last_verdict
let steps monitor = monitor.step_count
let support monitor = Array.copy monitor.support

(* All engines advance from a mask-indexed view of the current samples:
   [read slot] is the sampled value of [support.(slot)]. The on-the-fly
   engine masks only the residual's own support (canonical across
   monitors, so cache nodes are shared) and memoizes the progression;
   explicit engines build the automaton's full support mask. *)
let advance_formula support e read =
  let sel = e.sel in
  let mask = ref 0 in
  Array.iteri (fun i slot -> if read slot then mask := !mask lor (1 lsl i)) sel;
  let next = Transition_cache.step e.node !mask in
  if not (Formula.equal next (Transition_cache.formula e.node)) then begin
    let node, sel = view_of support e.views next in
    e.node <- node;
    e.sel <- sel
  end

(* Promote the current residual to an explicit automaton behind a compiled
   table. The residual is the automaton's initial state, so swapping modes
   between steps preserves the verdict sequence exactly. Any failure —
   too many propositions for explicit synthesis, or a state budget blowout
   — just keeps the on-the-fly mode. *)
let try_promote monitor h residual =
  if List.length (Formula.props residual) <= 16 then
    match Ar_automaton.synthesize_memo ~max_states:h.h_max_states residual with
    | exception Ar_automaton.Too_large _ -> ()
    | automaton, _fresh ->
      let table = Il.Table.of_automaton ~name:monitor.m_name automaton in
      let sel =
        Array.map (slot_of_support monitor.support)
          (Ar_automaton.props automaton)
      in
      h.h_mode <-
        H_table { automaton; table; sel; state = Ar_automaton.initial automaton }

(* Count the step against the residual we are about to leave; the attempt
   fires exactly once per residual, when its counter hits the threshold. *)
let hybrid_before_step monitor h =
  match h.h_mode with
  | H_table _ -> ()
  | H_formula e ->
    let residual = Transition_cache.formula e.node in
    let id = Formula.hash residual in
    let count =
      1 + Option.value (Hashtbl.find_opt h.h_visits id) ~default:0
    in
    Hashtbl.replace h.h_visits id count;
    if count = h.h_promote_after then try_promote monitor h residual

let advance monitor read =
  match monitor.engine with
  | Formula_engine e -> advance_formula monitor.support e read
  | Automaton_engine e ->
    let mask = ref 0 in
    for slot = 0 to Array.length monitor.support - 1 do
      if read slot then mask := !mask lor (1 lsl slot)
    done;
    e.state <- Ar_automaton.next e.automaton e.state !mask
  | Il_engine e ->
    let mask = ref 0 in
    for slot = 0 to Array.length monitor.support - 1 do
      if read slot then mask := !mask lor (1 lsl slot)
    done;
    e.state <- Il.Table.next e.table e.state !mask
  | Hybrid_engine h -> (
    hybrid_before_step monitor h;
    match h.h_mode with
    | H_formula e -> advance_formula monitor.support e read
    | H_table e ->
      let mask = ref 0 in
      Array.iteri
        (fun i slot -> if read slot then mask := !mask lor (1 lsl i))
        e.sel;
      e.state <- Il.Table.next e.table e.state !mask)

let finish_step monitor =
  monitor.step_count <- monitor.step_count + 1;
  monitor.last_verdict <- engine_verdict monitor.engine;
  monitor.last_verdict

let step monitor =
  if Verdict.is_final monitor.last_verdict then begin
    monitor.step_count <- monitor.step_count + 1;
    monitor.last_verdict
  end
  else begin
    (* sample every supporting proposition exactly once for this step *)
    let samples = monitor.samples in
    Array.iteri (fun i sampler -> samples.(i) <- sampler ()) monitor.samplers;
    advance monitor (fun slot -> samples.(slot));
    finish_step monitor
  end

let step_indexed monitor ~samples ~map =
  if Verdict.is_final monitor.last_verdict then begin
    monitor.step_count <- monitor.step_count + 1;
    monitor.last_verdict
  end
  else begin
    advance monitor (fun slot -> samples.(map.(slot)));
    finish_step monitor
  end

let finalize ?(strong = false) monitor =
  match monitor.engine with
  | Formula_engine e ->
    Progression.finalize ~strong (Transition_cache.formula e.node)
  | Automaton_engine e ->
    Progression.finalize ~strong
      (Ar_automaton.state_formula e.automaton e.state)
  | Il_engine _ -> monitor.last_verdict
  | Hybrid_engine h -> (
    match h.h_mode with
    | H_formula e ->
      Progression.finalize ~strong (Transition_cache.formula e.node)
    | H_table e ->
      Progression.finalize ~strong
        (Ar_automaton.state_formula e.automaton e.state))

let reset monitor =
  (match monitor.engine with
  | Formula_engine e ->
    let node, sel = view_of monitor.support e.views e.initial in
    e.node <- node;
    e.sel <- sel
  | Automaton_engine e -> e.state <- Ar_automaton.initial e.automaton
  | Il_engine e -> e.state <- e.il.Il.initial
  | Hybrid_engine h ->
    (* demote: a fresh run re-earns its promotion from scratch *)
    Hashtbl.reset h.h_visits;
    h.h_mode <- H_formula (formula_state monitor.support h.h_initial));
  monitor.step_count <- 0;
  monitor.last_verdict <- engine_verdict monitor.engine
