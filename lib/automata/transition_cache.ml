let max_dense_props = 12
let max_cached_props = 16

type successors =
  | Dense of Formula.t option array (* 2^k slots, mask-indexed *)
  | Sparse of (int, Formula.t) Hashtbl.t
  | Uncached (* support too wide to key on a mask *)

type node = {
  n_formula : Formula.t;
  n_props : string array; (* sorted support of [n_formula] *)
  n_succ : successors;
}

(* Per-domain state: the node table plus this domain's hit/miss cell.
   Cells are registered process-wide (under a mutex, once per domain)
   so [stats] can sum after worker domains have exited. *)

type cell = { mutable hits : int; mutable misses : int; mutable nodes : int }

let cell_registry : cell list ref = ref []
let cell_registry_lock = Mutex.create ()

let cache_key =
  Domain.DLS.new_key (fun () ->
      let cell = { hits = 0; misses = 0; nodes = 0 } in
      Mutex.lock cell_registry_lock;
      cell_registry := cell :: !cell_registry;
      Mutex.unlock cell_registry_lock;
      ((Hashtbl.create 64 : (int, node) Hashtbl.t), cell))

let node formula =
  let table, cell = Domain.DLS.get cache_key in
  match Hashtbl.find_opt table (Formula.hash formula) with
  | Some node -> node
  | None ->
    let props = Array.of_list (Formula.props formula) in
    let k = Array.length props in
    let succ =
      if k <= max_dense_props then Dense (Array.make (1 lsl k) None)
      else if k <= max_cached_props then Sparse (Hashtbl.create 16)
      else Uncached
    in
    let node = { n_formula = formula; n_props = props; n_succ = succ } in
    cell.nodes <- cell.nodes + 1;
    Hashtbl.replace table (Formula.hash formula) node;
    node

let formula node = node.n_formula
let props node = node.n_props

let valuation_of_mask node mask name =
  let props = node.n_props in
  let rec find i =
    if i >= Array.length props then
      invalid_arg ("Transition_cache: proposition not in support: " ^ name)
    else if String.equal props.(i) name then mask land (1 lsl i) <> 0
    else find (i + 1)
  in
  find 0

let compute node mask = Progression.step node.n_formula (valuation_of_mask node mask)

let step node mask =
  let _, cell = Domain.DLS.get cache_key in
  match node.n_succ with
  | Dense slots -> (
    match slots.(mask) with
    | Some next ->
      cell.hits <- cell.hits + 1;
      next
    | None ->
      let next = compute node mask in
      cell.misses <- cell.misses + 1;
      slots.(mask) <- Some next;
      next)
  | Sparse table -> (
    match Hashtbl.find_opt table mask with
    | Some next ->
      cell.hits <- cell.hits + 1;
      next
    | None ->
      let next = compute node mask in
      cell.misses <- cell.misses + 1;
      Hashtbl.replace table mask next;
      next)
  | Uncached ->
    cell.misses <- cell.misses + 1;
    compute node mask

let step_node n mask = node (step n mask)

type stats = { hits : int; misses : int; nodes : int }

let stats () =
  let hits = ref 0 and misses = ref 0 and nodes = ref 0 in
  Mutex.lock cell_registry_lock;
  List.iter
    (fun (cell : cell) ->
      hits := !hits + cell.hits;
      misses := !misses + cell.misses;
      nodes := !nodes + cell.nodes)
    !cell_registry;
  Mutex.unlock cell_registry_lock;
  { hits = !hits; misses = !misses; nodes = !nodes }

let local_stats () =
  let _, cell = Domain.DLS.get cache_key in
  (cell.hits, cell.misses)
