(** Executable property monitors.

    A monitor binds a property to the system under verification through a
    name-resolution function (typically {!Proposition.Table.binding}) and is
    stepped once per trigger — a clock edge in the paper's approach 1, a
    program-counter event in approach 2. Each step samples every supporting
    proposition exactly once (so stateful propositions advance uniformly)
    and advances the AR-automaton.

    Two engines are provided: the explicit pre-synthesized AR-automaton
    ([of_automaton]/[of_il]) and on-the-fly formula progression
    ([of_formula]); they compute identical verdicts. All engines step
    from a mask-indexed view of the sampled support: the explicit
    engines index their transition tables directly, and the on-the-fly
    engine memoizes progression through {!Transition_cache}, lazily
    determinizing the formula into its AR-automaton. A monitor must be
    stepped on the domain that created it (the transition cache is
    domain-local). *)

type t

val of_formula :
  name:string -> Formula.t -> binding:(string -> unit -> bool) -> t
(** On-the-fly engine. *)

val of_automaton :
  name:string -> Ar_automaton.t -> binding:(string -> unit -> bool) -> t
(** Explicit engine. *)

val of_il : name:string -> Il.t -> binding:(string -> unit -> bool) -> t
(** Explicit engine driven by an IL description, stepped through the
    compiled {!Il.Table} guard tables (the guard-list scan {!Il.next} is
    kept only as the reference semantics). *)

val of_formula_hybrid :
  name:string ->
  ?promote_after:int ->
  ?max_states:int ->
  Formula.t ->
  binding:(string -> unit -> bool) ->
  t
(** Hybrid engine: starts on-the-fly, and once one residual obligation has
    absorbed [promote_after] steps (default 32) promotes it to an explicit
    automaton — capped at [max_states] (default 10000) — stepped through a
    compiled {!Il.Table}. The hot residual is the promoted automaton's
    initial state, so promotion never perturbs the verdict sequence. If
    synthesis fails ({!Ar_automaton.Too_large}, or more than 16
    propositions), the monitor stays on-the-fly; each residual attempts
    promotion at most once. *)

val promoted : t -> bool
(** Has a hybrid monitor promoted to its explicit compiled form? Always
    [false] for non-hybrid engines. *)

val name : t -> string

val step : t -> Verdict.t
(** Sample propositions, advance, and return the verdict after this step.
    Once the verdict is final ({!Verdict.is_final}), further steps are
    no-ops. *)

val step_indexed : t -> samples:bool array -> map:int array -> Verdict.t
(** [step_indexed monitor ~samples ~map] advances from an externally
    sampled vector instead of the monitor's own samplers: support slot
    [i] reads [samples.(map.(i))]. This is the checker's compiled
    trigger-plan path — each proposition is probed exactly once per
    trigger at the checker level and shared across monitors. [map] must
    have one entry per {!support} slot. Final verdicts short-circuit as
    in {!step}. *)

val support : t -> string array
(** The monitored support in slot order (a copy): the proposition names
    whose sampled values [step_indexed] expects, in the order the [map]
    argument indexes them. *)

val verdict : t -> Verdict.t
val steps : t -> int

val finalize : ?strong:bool -> t -> Verdict.t
(** End-of-trace verdict, see {!Progression.finalize}. For explicit engines
    built from IL the obligation formula is unavailable, so a pending IL
    monitor finalizes to [Pending] regardless of [strong]. *)

val reset : t -> unit
(** Return to the initial state and step count 0. *)
