(** Intermediate Language (IL) representation of AR-automata.

    SCTC's flow is: property text → AR-automaton in IL form → executable
    monitor. The IL is a flat, serializable automaton description whose
    transition guards are sums of cubes over the proposition vector — the
    representation a SystemC code generator would consume. This module
    converts explicit automata to IL, pretty-prints, and parses the textual
    form back (round-trip stable), so IL files can be stored next to a
    design and re-loaded without re-synthesis. *)

type kind = Accept | Reject | Pend

type transition = {
  guard : Cube.t list;  (** disjunction of cubes over the proposition order *)
  target : int;
}

type state = { kind : kind; outgoing : transition list }

type t = {
  name : string;
  props : string array;
  initial : int;
  states : state array;
}

val of_automaton : name:string -> Ar_automaton.t -> t
(** Guards are minimized cube covers of the assignment sets per successor.
    Accept/Reject states get no outgoing transitions (they are absorbing). *)

val next : t -> int -> int -> int
(** [next il state mask] follows the transition whose guard covers [mask]
    by scanning the guard cubes in order; absorbing states return
    themselves. This is the reference semantics — monitors step through
    the compiled {!Table} instead, and the two are differentially tested
    against each other.
    @raise Invalid_argument if no guard matches (malformed IL); the
    message names the automaton and spells the valuation out as a
    proposition assignment ([p=0 q=1 …]), not just the raw mask. *)

(** Mask-indexed successor tables compiled from guard lists — the hot-path
    form of {!next}. Width thresholds are shared with [Transition_cache]:
    states over ≤[max_dense_props] propositions get an eagerly filled
    dense array (one array read per step), widths up to
    [max_cached_props] a lazily filled hash over the guard scan, and
    anything wider falls back to computing per step. *)
module Table : sig
  type t

  val of_automaton : name:string -> Ar_automaton.t -> t
  (** Compile directly from an explicit automaton, skipping cube covers
      entirely (the automaton's delta is already mask-indexed). Used by
      the hybrid engine when promoting a hot residual. *)

  val next : t -> int -> int -> int
  (** Same contract (and same missing-guard diagnostics) as {!Il.next}. *)

  val name : t -> string
  val props : t -> string array
  val initial : t -> int

  val num_states : t -> int

  val dense_states : t -> int
  (** How many states compiled to the dense fast path (introspection for
      tests and bench tables). *)
end

val compile : t -> Table.t
(** Compile this IL description's guard lists into a {!Table}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Parse_error of string

val parse : string -> t
(** Parses the textual form produced by {!pp}. *)

val num_transitions : t -> int
(** Total transition (cube) count — the IL size metric. *)
