type state_kind = Accept | Reject | Pend

type t = {
  formula : Formula.t;
  props : string array;
  states : Formula.t array;
  kinds : state_kind array;
  delta : int array array; (* delta.(state).(assignment mask) *)
  initial : int;
  build_seconds : float;
}

exception Too_large of int

let kind_of_formula f =
  match Progression.verdict f with
  | Verdict.True -> Accept
  | Verdict.False -> Reject
  | Verdict.Pending -> Pend

let synthesize ?(max_states = 200_000) formula =
  let started = Unix.gettimeofday () in
  let props = Array.of_list (Formula.props formula) in
  let num_props = Array.length props in
  if num_props > 16 then
    invalid_arg "Ar_automaton.synthesize: more than 16 propositions";
  let num_assignments = 1 lsl num_props in
  let valuation_of_mask mask name =
    let rec find i =
      if i >= num_props then
        invalid_arg ("Ar_automaton: unknown proposition " ^ name)
      else if String.equal props.(i) name then mask land (1 lsl i) <> 0
      else find (i + 1)
    in
    find 0
  in
  let index_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern f =
    match Hashtbl.find_opt index_of (Formula.hash f) with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      if !count > max_states then raise (Too_large !count);
      Hashtbl.replace index_of (Formula.hash f) id;
      states := f :: !states;
      Queue.add (f, id) queue;
      id
  in
  let initial = intern formula in
  let rows = Hashtbl.create 256 in
  while not (Queue.is_empty queue) do
    let f, id = Queue.pop queue in
    let row =
      match kind_of_formula f with
      | Accept | Reject ->
        (* absorbing *)
        Array.make num_assignments id
      | Pend ->
        Array.init num_assignments (fun mask ->
            intern (Progression.step f (valuation_of_mask mask)))
    in
    Hashtbl.replace rows id row
  done;
  let states = Array.of_list (List.rev !states) in
  let delta =
    Array.init (Array.length states) (fun id -> Hashtbl.find rows id)
  in
  let kinds = Array.map kind_of_formula states in
  {
    formula;
    props;
    states;
    kinds;
    delta;
    initial;
    build_seconds = Unix.gettimeofday () -. started;
  }

(* Per-domain memo cache: campaign jobs over the same property re-derive
   the same automaton once per worker domain, not once per job. The cache
   key is the formula's hash-cons id (process-globally unique) plus the
   synthesis bound, since [max_states] decides whether synthesis raises
   [Too_large]. A synthesized automaton is immutable after construction,
   so handing the same value to many monitors on the same domain is safe;
   keeping the cache domain-local means no lock on the lookup path. Only
   the two-word stats cell outlives a worker domain in the registry. *)

type cache_cell = { mutable hits : int; mutable misses : int }

let cache_registry : cache_cell list ref = ref []
let cache_registry_lock = Mutex.create ()

let cache_key =
  Domain.DLS.new_key (fun () ->
      let cell = { hits = 0; misses = 0 } in
      Mutex.lock cache_registry_lock;
      cache_registry := cell :: !cache_registry;
      Mutex.unlock cache_registry_lock;
      ((Hashtbl.create 32 : (int * int, t) Hashtbl.t), cell))

let synthesize_memo ?(max_states = 200_000) formula =
  let table, cell = Domain.DLS.get cache_key in
  let key = (Formula.hash formula, max_states) in
  match Hashtbl.find_opt table key with
  | Some automaton ->
    cell.hits <- cell.hits + 1;
    (automaton, false)
  | None ->
    let automaton = synthesize ~max_states formula in
    cell.misses <- cell.misses + 1;
    Hashtbl.replace table key automaton;
    (automaton, true)

type cache_stats = { cache_hits : int; cache_misses : int }

let cache_stats () =
  let hits = ref 0 and misses = ref 0 in
  Mutex.lock cache_registry_lock;
  List.iter
    (fun cell ->
      hits := !hits + cell.hits;
      misses := !misses + cell.misses)
    !cache_registry;
  Mutex.unlock cache_registry_lock;
  { cache_hits = !hits; cache_misses = !misses }

let formula a = a.formula
let props a = a.props
let num_states a = Array.length a.states
let num_props a = Array.length a.props
let initial a = a.initial
let kind a state = a.kinds.(state)
let next a state mask = a.delta.(state).(mask)
let state_formula a state = a.states.(state)
let build_seconds a = a.build_seconds

let mask_of_valuation a valuation =
  let mask = ref 0 in
  Array.iteri (fun i name -> if valuation name then mask := !mask lor (1 lsl i))
    a.props;
  !mask

let stats a =
  Printf.sprintf "%d states, %d propositions, built in %.3fs" (num_states a)
    (num_props a) a.build_seconds
