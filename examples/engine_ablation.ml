(* Ablation of SCTC's property-checking engines (Sctc.Engine.all) on one
   property:

   - otf: on-the-fly formula progression (no synthesis cost, rewriting per
     step through the transition cache)
   - explicit: AR-automaton (synthesis cost up front, table lookups per step)
   - il: explicit automaton round-tripped through the textual IL and
     compiled to mask-indexed guard tables
   - hybrid: starts on-the-fly, promotes hot residuals to compiled tables
   - auto: explicit under the state budget, hybrid beyond (the default)

   The paper's TB-100000 column shows verification time dominated by
   AR-automaton generation for large time bounds; this example reproduces
   that trade-off and prints the IL of a small property.

     dune exec examples/engine_ablation.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let run_engine bound engine steps =
  let value = ref 0 in
  let checker = Sctc.Checker.create ~name:"ablation" () in
  Sctc.Checker.register_sampler checker "req" (fun () -> !value mod 97 = 1);
  Sctc.Checker.register_sampler checker "ack" (fun () -> !value mod 97 = 9);
  let property = Printf.sprintf "G (req -> F[%d] ack)" bound in
  let (), synth_time =
    time (fun () ->
        Sctc.Checker.add_property_text ~engine checker ~name:"p" property)
  in
  let (), run_time =
    time (fun () ->
        for _ = 1 to steps do
          incr value;
          Sctc.Checker.step checker
        done)
  in
  (synth_time, run_time, Sctc.Checker.verdict checker "p")

let () =
  print_endline "engine ablation: G (req -> F[b] ack), 200000 trigger steps";
  print_endline "bound   engine       synth(s)   run(s)   verdict";
  List.iter
    (fun bound ->
      List.iter
        (fun (engine_name, engine) ->
          let synth, run, verdict = run_engine bound engine 200_000 in
          Printf.printf "%-7d %-12s %8.3f %8.3f   %s\n" bound engine_name
            synth run
            (Verdict.to_string verdict))
        (List.map
           (fun engine -> (Sctc.Engine.to_string engine, engine))
           Sctc.Engine.all))
    [ 100; 2000; 20000 ];

  (* show the IL artifact for a small property *)
  print_newline ();
  print_endline "IL of G (req -> F[2] ack):";
  let automaton =
    Ar_automaton.synthesize (Sctc.Prop.parse_exn "G (req -> F[2] ack)")
  in
  print_string (Il.to_string (Il.of_automaton ~name:"response" automaton))
