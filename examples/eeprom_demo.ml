(* The paper's case study end to end: the EEPROM-emulation software
   (DFALib + EEELib) verified under both integration approaches, with the
   specification's response properties monitored during constrained-random
   operation campaigns — a miniature of the paper's Fig. 8 experiment.

     dune exec examples/eeprom_demo.exe *)

let campaign approach_name session ops cases =
  Eee.Driver.install_spec session ops;
  Printf.printf "--- %s ---\n" approach_name;
  List.iter
    (fun op ->
      let config =
        { Eee.Driver.default_config with test_cases = cases; seed = 2024 }
      in
      let outcome = Eee.Driver.run_campaign session config op in
      Format.printf "  %s: %a@." (Eee.Eee_spec.op_name op) Verif.Result.pp
        outcome)
    ops;
  session

let () =
  Printf.printf "EEPROM emulation software: %d lines of MiniC, %d functions\n\n"
    (Eee.Eee_program.line_count ())
    (Eee.Eee_program.function_count ());

  let ops = [ Eee.Eee_spec.Read; Eee.Eee_spec.Write; Eee.Eee_spec.Refresh ] in

  (* approach 1: the software runs compiled on the cycle-level SoC *)
  let started1 = Unix.gettimeofday () in
  let b1 =
    campaign "approach 1: microprocessor model (clock-triggered SCTC)"
      (Eee.Harness.approach1 ~fault_rate:0.03 ~seed:5 ())
      ops 25
  in
  let t1 = Unix.gettimeofday () -. started1 in

  print_newline ();

  (* approach 2: the derived software model, program-counter triggered *)
  let started2 = Unix.gettimeofday () in
  let b2 =
    campaign "approach 2: derived SystemC model (pc-event-triggered SCTC)"
      (Eee.Harness.approach2 ~fault_rate:0.03 ~seed:5 ())
      ops 25
  in
  let t2 = Unix.gettimeofday () -. started2 in

  Printf.printf "\nwall-clock: approach 1 = %.2fs, approach 2 = %.2fs" t1 t2;
  if t2 > 0.0 && t1 > t2 then Printf.printf "  (speedup %.0fx)" (t1 /. t2);
  print_newline ();

  (* no property may be violated: the software conforms to its spec *)
  let clean session =
    List.for_all
      (fun (_, verdict) -> not (Verdict.equal verdict Verdict.False))
      (Sctc.Checker.verdicts (Verif.Session.checker session))
  in
  if clean b1 && clean b2 then
    print_endline "all response properties hold on both approaches"
  else begin
    print_endline "property violation detected!";
    exit 1
  end
