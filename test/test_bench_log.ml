(* Decode safety net for the BENCH_campaign.json trajectory reader.
   The fixture lines below are verbatim rows from the repository's own
   trajectory file: rows written before the "table" tag existed (no tag,
   table inferred from content), plus tagged checker/simulate/campaign
   rows with the %.6g scientific-notation floats the bench writes.
   Bench_log must keep decoding every historical generation — the
   trajectory is append-only and spans the repo's whole life. *)

module Bench_log = Verif.Bench_log
module Json = Sctc.Trace.Json

(* ---- verbatim historical fixture lines --------------------------------- *)

(* the very first generation: campaign rows, no "table" tag *)
let legacy_campaign =
  {|{"unix_time":1786041690,"scale":1,"jobs":4,"ops":7,"cases_per_op":40,"seq_seconds":0.217622,"par_seconds":0.396184,"speedup":0.549295,"verdicts_identical":true,"jsonl_identical":true}|}

(* later untagged generation: queue/cache columns added, still no tag *)
let legacy_campaign_wide =
  {|{"unix_time":1786044020,"scale":1,"jobs":1,"cores":1,"ops":7,"cases_per_op":40,"seq_seconds":0.169137,"par_seconds":0.179573,"speedup":0.941885,"synth_seconds":0,"vt_seconds":0.166125,"verdicts_identical":true,"jsonl_identical":true,"queue_chunk":1,"queue_acquisitions":0,"queue_contention":0,"cons_dls_hits":239190,"cons_shard_acquisitions":0,"cons_shard_contention":0,"automaton_cache_hits":0,"automaton_cache_misses":0}|}

(* tagged checker row — scientific-notation floats from Json.float's %.6g *)
let tagged_checker =
  {|{"table":"checker","unix_time":1786047058,"git_rev":"97454da","scale":1,"triggers":200000,"properties":7,"propositions":38,"legacy_tps":375961,"plan_tps":1.33827e+06,"explicit_tps":2.30521e+06,"speedup":3.55959,"prog_cache_hits":1400000,"prog_cache_misses":0,"prog_cache_hit_rate":1,"verdicts_identical":true}|}

let tagged_simulate =
  {|{"table":"simulate","unix_time":1786205197,"git_rev":"a8640e4","scale":1,"jobs":1,"cores":1,"speedup_expected":true,"target_statements":2000000,"interp_statements":2000000,"interp_seconds":0.146039,"interp_sps":1.3695e+07,"vm_statements":2000000,"vm_seconds":0.0670948,"vm_sps":2.98086e+07,"speedup":2.17661,"verdicts_identical":true,"jsonl_identical":true,"sim_interp_statements_total":19740,"sim_vm_statements_total":19740}|}

let tagged_campaign =
  {|{"table":"campaign","unix_time":1786205100,"git_rev":"a8640e4","scale":1,"jobs":2,"speedup":0.95,"verdicts_identical":true,"jsonl_identical":true}|}

let parse_ok line =
  match Bench_log.parse_line line with
  | Ok row -> row
  | Error msg -> Alcotest.failf "fixture line failed to parse: %s" msg

(* ---- legacy inference --------------------------------------------------- *)

let test_legacy_rows_infer_campaign () =
  List.iter
    (fun line ->
      let row = parse_ok line in
      Alcotest.(check string) "inferred table" "campaign" row.Bench_log.table;
      Alcotest.(check bool) "marked untagged" false row.Bench_log.tagged;
      Alcotest.(check (option bool)) "verdict flag decodes" (Some true)
        (Bench_log.bool_field row "verdicts_identical"))
    [ legacy_campaign; legacy_campaign_wide ]

let test_inference_keys_on_content () =
  (* a hypothetical untagged checker/simulate row is still routed by its
     distinctive field, not by the historical accident that those tables
     were born tagged *)
  let checkerish = {|{"legacy_tps":375961,"speedup":3.5}|} in
  let simulateish = {|{"interp_sps":1.3695e+07}|} in
  Alcotest.(check string) "legacy_tps routes to checker" "checker"
    (parse_ok checkerish).Bench_log.table;
  Alcotest.(check string) "interp_sps routes to simulate" "simulate"
    (parse_ok simulateish).Bench_log.table

(* ---- tagged rows and accessors ------------------------------------------ *)

let test_tagged_rows () =
  List.iter
    (fun (line, table) ->
      let row = parse_ok line in
      Alcotest.(check string) "tag decodes" table row.Bench_log.table;
      Alcotest.(check bool) "marked tagged" true row.Bench_log.tagged;
      (* the tag stays visible as an ordinary field too *)
      Alcotest.(check (option string)) "tag field" (Some table)
        (Bench_log.str_field row "table"))
    [
      (tagged_checker, "checker");
      (tagged_simulate, "simulate");
      (tagged_campaign, "campaign");
    ]

let test_scientific_notation_numbers () =
  let row = parse_ok tagged_checker in
  Alcotest.(check (option (float 1.0))) "plan_tps in %.6g notation"
    (Some 1.33827e+06)
    (Bench_log.number row "plan_tps");
  Alcotest.(check (option int)) "plain integer column" (Some 200000)
    (Bench_log.int_field row "triggers");
  Alcotest.(check (option string)) "string column" (Some "97454da")
    (Bench_log.str_field row "git_rev")

let test_accessor_kind_mismatch () =
  let row = parse_ok tagged_checker in
  Alcotest.(check (option string)) "number is not a string" None
    (Bench_log.str_field row "speedup");
  Alcotest.(check (option (float 0.))) "bool is not a number" None
    (Bench_log.number row "verdicts_identical");
  Alcotest.(check (option bool)) "absent key" None
    (Bench_log.bool_field row "no_such_column")

let test_field_order_preserved () =
  let row = parse_ok legacy_campaign in
  Alcotest.(check (list string)) "fields keep line order"
    [
      "unix_time"; "scale"; "jobs"; "ops"; "cases_per_op"; "seq_seconds";
      "par_seconds"; "speedup"; "verdicts_identical"; "jsonl_identical";
    ]
    (List.map fst row.Bench_log.fields)

(* ---- malformed input ----------------------------------------------------- *)

let check_error label line =
  match Bench_log.parse_line line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error for %S" label line

let test_malformed_lines_rejected () =
  check_error "not an object" {|[1,2]|};
  check_error "trailing bytes" {|{"a":1} {"b":2}|};
  check_error "unterminated string" {|{"a":"oops|};
  check_error "bad number" {|{"a":1.2.3}|};
  check_error "missing colon" {|{"a" 1}|};
  check_error "non-string table" {|{"table":3,"a":1}|}

let test_null_and_escapes () =
  let row = parse_ok {|{"table":"campaign","note":"a\"b\\c\nd","gap":null}|} in
  Alcotest.(check (option string)) "escape decoding" (Some "a\"b\\c\nd")
    (Bench_log.str_field row "note");
  Alcotest.(check bool) "null decodes" true
    (Bench_log.field row "gap" = Some Bench_log.Null)

(* ---- load: files, blank lines, error position --------------------------- *)

let write_temp lines =
  let path = Filename.temp_file "bench_log" ".json" in
  let oc = open_out_bin path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc;
  path

let test_load_mixed_generations () =
  let path =
    write_temp
      [
        legacy_campaign; ""; legacy_campaign_wide; tagged_checker;
        tagged_simulate; tagged_campaign;
      ]
  in
  let rows =
    match Bench_log.load path with
    | Ok rows -> rows
    | Error msg -> Alcotest.failf "load failed: %s" msg
  in
  Sys.remove path;
  Alcotest.(check int) "blank line skipped, five rows" 5 (List.length rows);
  Alcotest.(check (list string)) "tables across generations"
    [ "campaign"; "campaign"; "checker"; "simulate"; "campaign" ]
    (List.map (fun r -> r.Bench_log.table) rows);
  Alcotest.(check (list bool)) "tagged flags"
    [ false; false; true; true; true ]
    (List.map (fun r -> r.Bench_log.tagged) rows)

let test_load_reports_line_number () =
  let path = write_temp [ legacy_campaign; {|{"broken|} ] in
  (match Bench_log.load path with
  | Ok _ -> Alcotest.fail "load must fail on the malformed second line"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names file:line" msg)
      true
      (let needle = Filename.basename path ^ ":2:" in
       let n = String.length needle and h = String.length msg in
       let rec at i = i + n <= h && (String.sub msg i n = needle || at (i + 1)) in
       at 0));
  Sys.remove path

(* ---- the repository's own trajectory still decodes ----------------------- *)

let test_repo_trajectory_decodes () =
  let path = Filename.concat (Sys.getcwd ()) "../BENCH_campaign.json" in
  if Sys.file_exists path then
    match Bench_log.load path with
    | Ok rows ->
      Alcotest.(check bool) "trajectory is non-trivial" true
        (List.length rows > 0);
      List.iter
        (fun row ->
          Alcotest.(check bool)
            ("known table: " ^ row.Bench_log.table)
            true
            (List.mem row.Bench_log.table
               [ "campaign"; "checker"; "simulate"; "smc" ]))
        rows
    | Error msg -> Alcotest.failf "repo trajectory no longer decodes: %s" msg

(* ---- render: the uniform tagged writer ----------------------------------- *)

let test_render_round_trip () =
  let line =
    Bench_log.render ~table:"campaign"
      [
        ("unix_time", Json.int 1786205300);
        ("merge_ratio", Json.float 0.23);
        ("stream_jsonl_identical", Json.bool true);
        ("git_rev", Json.string "2300a4f");
      ]
  in
  let row = parse_ok line in
  Alcotest.(check string) "round-trips as tagged campaign" "campaign"
    row.Bench_log.table;
  Alcotest.(check bool) "tagged" true row.Bench_log.tagged;
  Alcotest.(check (list string)) "tag rendered first"
    [ "table"; "unix_time"; "merge_ratio"; "stream_jsonl_identical"; "git_rev" ]
    (List.map fst row.Bench_log.fields);
  Alcotest.(check (option int)) "int survives" (Some 1786205300)
    (Bench_log.int_field row "unix_time");
  Alcotest.(check (option bool)) "bool survives" (Some true)
    (Bench_log.bool_field row "stream_jsonl_identical")

let test_render_rejects_duplicate_tag () =
  Alcotest.check_raises "members must not smuggle their own table tag"
    (Invalid_argument
       "Verif.Bench_log.render: members must not contain \"table\"")
    (fun () ->
      ignore (Bench_log.render ~table:"campaign" [ ("table", Json.string "x") ]))

let () =
  Alcotest.run "bench-log"
    [
      ( "legacy",
        [
          Alcotest.test_case "untagged rows infer campaign" `Quick
            test_legacy_rows_infer_campaign;
          Alcotest.test_case "inference keys on content" `Quick
            test_inference_keys_on_content;
        ] );
      ( "tagged",
        [
          Alcotest.test_case "tagged rows decode" `Quick test_tagged_rows;
          Alcotest.test_case "%.6g scientific notation" `Quick
            test_scientific_notation_numbers;
          Alcotest.test_case "accessor kind mismatches" `Quick
            test_accessor_kind_mismatch;
          Alcotest.test_case "field order preserved" `Quick
            test_field_order_preserved;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "malformed lines rejected" `Quick
            test_malformed_lines_rejected;
          Alcotest.test_case "null and string escapes" `Quick
            test_null_and_escapes;
        ] );
      ( "load",
        [
          Alcotest.test_case "mixed-generation file" `Quick
            test_load_mixed_generations;
          Alcotest.test_case "error carries file:line" `Quick
            test_load_reports_line_number;
          Alcotest.test_case "repo trajectory decodes" `Quick
            test_repo_trajectory_decodes;
        ] );
      ( "render",
        [
          Alcotest.test_case "tagged line round-trips" `Quick
            test_render_round_trip;
          Alcotest.test_case "duplicate tag rejected" `Quick
            test_render_rejects_duplicate_tag;
        ] );
    ]
