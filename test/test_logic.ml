(* Tests for the temporal-logic front end: hash-consing, smart-constructor
   identities, FLTL and PSL parsing, NNF, and propositions. *)

module F = Formula

(* parse through the unified front door ([Sctc.Prop]); the per-syntax
   entry points carry a deprecation alert and are reserved to it *)
let parse_fltl text = Sctc.Prop.parse_exn ~syntax:`Fltl text
let parse_psl text = Sctc.Prop.parse_exn ~syntax:`Psl text

let formula_testable =
  Alcotest.testable (fun fmt f -> Format.pp_print_string fmt (F.to_string f))
    F.equal

let check_formula = Alcotest.check formula_testable

(* --- hash-consing and smart constructors ------------------------------ *)

let test_hash_consing () =
  let a = F.and_ (F.prop "x") (F.globally None (F.prop "y")) in
  let b = F.and_ (F.prop "x") (F.globally None (F.prop "y")) in
  Alcotest.(check bool) "physically equal" true (a == b);
  Alcotest.(check int) "same id" (F.hash a) (F.hash b)

let test_boolean_identities () =
  let p = F.prop "p" in
  check_formula "and true" p (F.and_ F.tru p);
  check_formula "and false" F.fls (F.and_ p F.fls);
  check_formula "or true" F.tru (F.or_ p F.tru);
  check_formula "or false" p (F.or_ F.fls p);
  check_formula "idempotent and" p (F.and_ p p);
  check_formula "idempotent or" p (F.or_ p p);
  check_formula "double negation" p (F.not_ (F.not_ p))

let test_temporal_identities () =
  let p = F.prop "p" and q = F.prop "q" in
  (* zero bounds intentionally do NOT collapse: the operator must survive
     so end-of-trace closure can tell eventualities from invariants *)
  Alcotest.(check bool) "F[0] kept" false (F.equal p (F.finally (Some 0) p));
  Alcotest.(check bool) "G[0] kept" false (F.equal p (F.globally (Some 0) p));
  check_formula "F idempotent" (F.finally None p)
    (F.finally None (F.finally None p));
  check_formula "X true" F.tru (F.next F.tru);
  check_formula "F of false" F.fls (F.finally None F.fls);
  check_formula "true U q = F q" (F.finally None q) (F.until None F.tru q);
  check_formula "false R q = G q" (F.globally None q)
    (F.release None F.fls q)

let test_negative_bound_rejected () =
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Formula.finally: negative bound -1") (fun () ->
      ignore (F.finally (Some (-1)) (F.prop "p")))

(* --- observers --------------------------------------------------------- *)

let test_props_collection () =
  let f = parse_fltl "G (a -> F[5] (b | c)) & X a" in
  Alcotest.(check (list string)) "props sorted" [ "a"; "b"; "c" ] (F.props f)

let test_max_bound () =
  let f = parse_fltl "F[10] a & G[3] (b U[7] c)" in
  Alcotest.(check (option int)) "max bound" (Some 10) (F.max_bound f);
  Alcotest.(check (option int)) "no bound" None
    (F.max_bound (parse_fltl "G (a -> F b)"))

let test_is_propositional () =
  Alcotest.(check bool) "propositional" true
    (F.is_propositional (parse_fltl "a & !b | c"));
  Alcotest.(check bool) "temporal" false
    (F.is_propositional (parse_fltl "a & X b"))

let test_eval_now () =
  let f = parse_fltl "a & (!b | c)" in
  let valuation = function "a" -> true | "b" -> true | "c" -> true | _ -> false in
  Alcotest.(check bool) "evaluates" true (F.eval_now f valuation);
  let valuation2 = function "a" -> true | _ -> false in
  Alcotest.(check bool) "evaluates 2" true (F.eval_now f valuation2);
  Alcotest.check_raises "temporal rejected"
    (Invalid_argument "Formula.eval_now: temporal operator") (fun () ->
      ignore (F.eval_now (parse_fltl "X a") valuation))

(* --- NNF ---------------------------------------------------------------- *)

let rec nnf_ok f =
  match f.F.node with
  | F.True | F.False | F.Prop _ -> true
  | F.Not { F.node = F.Prop _; _ } -> true
  | F.Not _ -> false
  | F.And (a, b) | F.Or (a, b) -> nnf_ok a && nnf_ok b
  | F.Next g | F.Finally (_, g) | F.Globally (_, g) -> nnf_ok g
  | F.Until (_, a, b) | F.Release (_, a, b) -> nnf_ok a && nnf_ok b

let test_nnf_shape () =
  let f = parse_fltl "!(G (a -> F[2] b) & (c U d))" in
  let normalized = F.nnf f in
  Alcotest.(check bool) "negation only on props" true (nnf_ok normalized)

let test_nnf_duality () =
  check_formula "not G = F not"
    (F.finally (Some 3) (F.not_ (F.prop "a")))
    (F.nnf (F.not_ (F.globally (Some 3) (F.prop "a"))));
  check_formula "not U = R not"
    (F.release None (F.not_ (F.prop "a")) (F.not_ (F.prop "b")))
    (F.nnf (F.not_ (F.until None (F.prop "a") (F.prop "b"))))

(* --- parsing ------------------------------------------------------------ *)

let test_parse_paper_property () =
  (* the paper's sample property shape (A) *)
  let f =
    parse_fltl "F (Read -> F[1000] (EEE_OK | EEE_BUSY | EEE_ERROR))"
  in
  Alcotest.(check (list string))
    "props" [ "EEE_BUSY"; "EEE_ERROR"; "EEE_OK"; "Read" ] (F.props f);
  Alcotest.(check (option int)) "bound" (Some 1000) (F.max_bound f)

let test_parse_precedence () =
  (* -> binds weaker than |, which binds weaker than & *)
  let f = parse_fltl "a -> b | c & d" in
  let expected =
    F.implies (F.prop "a")
      (F.or_ (F.prop "b") (F.and_ (F.prop "c") (F.prop "d")))
  in
  check_formula "precedence" expected f

let test_parse_right_assoc_implies () =
  check_formula "right assoc"
    (F.implies (F.prop "a") (F.implies (F.prop "b") (F.prop "c")))
    (parse_fltl "a -> b -> c")

let test_parse_until_bound () =
  check_formula "bounded until"
    (F.until (Some 5) (F.prop "a") (F.prop "b"))
    (parse_fltl "a U[5] b")

let test_parse_symbols_and_words () =
  check_formula "&& and and agree" (parse_fltl "a && b")
    (parse_fltl "a and b");
  check_formula "|| and or agree" (parse_fltl "a || b")
    (parse_fltl "a or b");
  check_formula "! and not agree" (parse_fltl "!a")
    (parse_fltl "not a")

let test_parse_comments () =
  check_formula "comments skipped"
    (parse_fltl "G (a -> F b)")
    (parse_fltl "G (/* block */ a -> // line\n F b)")

let test_parse_errors () =
  (match Fltl_parser.parse_result "G (a -> " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Fltl_parser.parse_result "a @ b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error");
  match Fltl_parser.parse_result "a b" with
  | Error msg ->
    Alcotest.(check bool) "mentions trailing" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected trailing-input error"

(* round trip: printing then parsing is the identity (modulo hash-consing) *)
let gen_formula =
  let open QCheck.Gen in
  let prop_name = oneofl [ "a"; "b"; "c" ] in
  let bound = oneof [ return None; map (fun n -> Some n) (int_bound 4) ] in
  sized @@ fix (fun self n ->
      if n = 0 then
        oneof
          [ return F.tru; return F.fls; map F.prop prop_name ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map F.prop prop_name;
            map F.not_ sub;
            map2 F.and_ sub sub;
            map2 F.or_ sub sub;
            map F.next sub;
            map2 F.finally bound sub;
            map2 F.globally bound sub;
            map3 F.until bound sub sub;
            map3 F.release bound sub sub;
          ])

let arbitrary_formula =
  QCheck.make ~print:F.to_string (QCheck.Gen.map (fun f -> f) gen_formula)

let qcheck_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round trip" ~count:500 arbitrary_formula
    (fun f -> F.equal (parse_fltl (F.to_string f)) f)

let qcheck_nnf_is_nnf =
  QCheck.Test.make ~name:"nnf has negation only on props" ~count:500
    arbitrary_formula (fun f -> nnf_ok (F.nnf f))

(* --- PSL ----------------------------------------------------------------- *)

let test_psl_mappings () =
  check_formula "always" (parse_fltl "G p") (parse_psl "always p");
  check_formula "never" (parse_fltl "G !p") (parse_psl "never p");
  check_formula "eventually!" (parse_fltl "F p")
    (parse_psl "eventually! p");
  check_formula "next" (parse_fltl "X p") (parse_psl "next p");
  check_formula "next[3]" (parse_fltl "X X X p")
    (parse_psl "next[3] p");
  check_formula "until!" (parse_fltl "p U q") (parse_psl "p until! q");
  check_formula "weak until" (F.release None (F.prop "q")
    (F.or_ (F.prop "p") (F.prop "q")))
    (parse_psl "p until q");
  check_formula "release" (parse_fltl "p R q")
    (parse_psl "p release q");
  check_formula "boolean words"
    (parse_fltl "(a & !b) -> c")
    (parse_psl "a and not b implies c")

let test_psl_nested () =
  check_formula "nested psl"
    (parse_fltl "G (req -> F ack)")
    (parse_psl "always (req implies eventually! ack)")

(* --- propositions -------------------------------------------------------- *)

let test_proposition_basic () =
  let value = ref false in
  let p = Proposition.make "p" (fun () -> !value) in
  Alcotest.(check bool) "false" false (Proposition.is_true p);
  Alcotest.(check bool) "is_false" true (Proposition.is_false p);
  value := true;
  Alcotest.(check bool) "true now" true (Proposition.is_true p);
  Alcotest.(check string) "name" "p" (Proposition.name p)

let test_proposition_combinators () =
  let a = Proposition.const "a" true in
  let b = Proposition.const "b" false in
  Alcotest.(check bool) "not" false Proposition.(is_true (not_ a));
  Alcotest.(check bool) "and" false Proposition.(is_true (and_ a b));
  Alcotest.(check bool) "or" true Proposition.(is_true (or_ a b))

let test_proposition_rose () =
  let value = ref false in
  let p = Proposition.make "p" (fun () -> !value) in
  let edge = Proposition.rose "rose_p" p in
  Alcotest.(check bool) "no edge initially" false (Proposition.is_true edge);
  value := true;
  Alcotest.(check bool) "rising edge" true (Proposition.is_true edge);
  Alcotest.(check bool) "only one sample long" false (Proposition.is_true edge);
  value := false;
  Alcotest.(check bool) "falling edge ignored" false (Proposition.is_true edge);
  value := true;
  Alcotest.(check bool) "second rising edge" true (Proposition.is_true edge);
  (* clone is independent *)
  Proposition.reset edge;
  Alcotest.(check bool) "after reset acts fresh" true
    (Proposition.is_true edge)

let test_proposition_table () =
  let table = Proposition.Table.create () in
  Proposition.Table.register table (Proposition.const "x" true);
  Proposition.Table.register table (Proposition.const "y" false);
  Alcotest.(check (list string)) "names" [ "x"; "y" ]
    (Proposition.Table.names table);
  Alcotest.(check bool) "binding works" true
    (Proposition.Table.binding table "x" ());
  (match Proposition.Table.find table "z" with
  | None -> ()
  | Some _ -> Alcotest.fail "z should be absent");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Proposition.Table.register: duplicate \"x\"")
    (fun () -> Proposition.Table.register table (Proposition.const "x" false))

(* --- verdicts ------------------------------------------------------------ *)

let test_verdict_combine () =
  let open Verdict in
  Alcotest.(check string) "T+T" "true" (to_string (combine True True));
  Alcotest.(check string) "T+P" "pending" (to_string (combine True Pending));
  Alcotest.(check string) "P+F" "false" (to_string (combine Pending False));
  Alcotest.(check string) "F+T" "false" (to_string (combine False True));
  Alcotest.(check bool) "final" true (is_final False);
  Alcotest.(check bool) "not final" false (is_final Pending)

let suite_formula =
  [
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "boolean identities" `Quick test_boolean_identities;
    Alcotest.test_case "temporal identities" `Quick test_temporal_identities;
    Alcotest.test_case "negative bound" `Quick test_negative_bound_rejected;
    Alcotest.test_case "props collection" `Quick test_props_collection;
    Alcotest.test_case "max bound" `Quick test_max_bound;
    Alcotest.test_case "is_propositional" `Quick test_is_propositional;
    Alcotest.test_case "eval_now" `Quick test_eval_now;
    Alcotest.test_case "nnf shape" `Quick test_nnf_shape;
    Alcotest.test_case "nnf duality" `Quick test_nnf_duality;
    QCheck_alcotest.to_alcotest qcheck_nnf_is_nnf;
  ]

let suite_parser =
  [
    Alcotest.test_case "paper property" `Quick test_parse_paper_property;
    Alcotest.test_case "precedence" `Quick test_parse_precedence;
    Alcotest.test_case "right-assoc implies" `Quick
      test_parse_right_assoc_implies;
    Alcotest.test_case "bounded until" `Quick test_parse_until_bound;
    Alcotest.test_case "symbols and words" `Quick test_parse_symbols_and_words;
    Alcotest.test_case "comments" `Quick test_parse_comments;
    Alcotest.test_case "errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest qcheck_print_parse_roundtrip;
  ]

let suite_psl =
  [
    Alcotest.test_case "operator mappings" `Quick test_psl_mappings;
    Alcotest.test_case "nested" `Quick test_psl_nested;
  ]

let suite_proposition =
  [
    Alcotest.test_case "basic" `Quick test_proposition_basic;
    Alcotest.test_case "combinators" `Quick test_proposition_combinators;
    Alcotest.test_case "rising-edge detector" `Quick test_proposition_rose;
    Alcotest.test_case "table" `Quick test_proposition_table;
    Alcotest.test_case "verdict combine" `Quick test_verdict_combine;
  ]

let () =
  Alcotest.run "logic"
    [
      ("formula", suite_formula);
      ("fltl-parser", suite_parser);
      ("psl", suite_psl);
      ("proposition", suite_proposition);
    ]
