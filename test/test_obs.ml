(* lib/obs contract tests: histogram bucketing and quantiles, exact
   counter totals under 4 concurrent domains, byte-golden exporter
   output, the null registry's no-op guarantee, the JSONL snapshot
   validator, and the engine integration (session + campaign metrics,
   including that metering never perturbs the merged campaign trace). *)

module Registry = Obs.Registry
module Export = Obs.Export

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- histograms -------------------------------------------------------- *)

let test_histogram_buckets () =
  let reg = Registry.create () in
  let h = Registry.histogram ~buckets:[| 1.0; 2.0; 3.0 |] reg "h" in
  List.iter (Registry.Histogram.observe h) [ 0.5; 1.0; 1.5; 2.5; 10.0 ];
  check_int "count" 5 (Registry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 15.5 (Registry.Histogram.sum h);
  (* 1.0 lands in the first bucket: bounds are inclusive upper bounds *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1.0, 2); (2.0, 3); (3.0, 4); (infinity, 5) ]
    (Registry.Histogram.buckets h)

let test_histogram_quantile () =
  let reg = Registry.create () in
  let h = Registry.histogram ~buckets:[| 1.0; 2.0; 3.0 |] reg "h" in
  check "empty quantile is 0" true (Registry.Histogram.quantile h 0.5 = 0.0);
  List.iter (Registry.Histogram.observe h) [ 0.5; 1.5; 2.5; 10.0 ];
  check "q=0 clamps to rank 1" true (Registry.Histogram.quantile h 0.0 = 1.0);
  check "q=0.25" true (Registry.Histogram.quantile h 0.25 = 1.0);
  check "q=0.5" true (Registry.Histogram.quantile h 0.5 = 2.0);
  check "q=0.75" true (Registry.Histogram.quantile h 0.75 = 3.0);
  check "q=1 in overflow" true (Registry.Histogram.quantile h 1.0 = infinity)

let test_histogram_bad_buckets () =
  let reg = Registry.create () in
  check "non-increasing buckets rejected" true
    (match Registry.histogram ~buckets:[| 1.0; 1.0 |] reg "bad" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- domain-safe recording --------------------------------------------- *)

let test_concurrent_counters () =
  let reg = Registry.create () in
  let c = Registry.counter reg "stress_total" in
  let h = Registry.histogram ~buckets:[| 0.5 |] reg "stress_seconds" in
  let per_domain = 25_000 in
  let work () =
    for i = 1 to per_domain do
      Registry.Counter.incr c;
      Registry.Counter.add c 2;
      Registry.Histogram.observe h (if i mod 2 = 0 then 0.25 else 0.75)
    done
  in
  let spawned = List.init 3 (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join spawned;
  (* all four domains recorded into private cells; totals are exact *)
  check_int "counter total" (4 * per_domain * 3) (Registry.Counter.value c);
  check_int "histogram count" (4 * per_domain) (Registry.Histogram.count h);
  Alcotest.(check (list (pair (float 0.0) int)))
    "histogram merge"
    [ (0.5, 4 * per_domain / 2); (infinity, 4 * per_domain) ]
    (Registry.Histogram.buckets h)

(* ---- registration ------------------------------------------------------- *)

let test_interning () =
  let reg = Registry.create () in
  let a = Registry.counter ~labels:[ ("op", "read"); ("approach", "2") ] reg "c" in
  (* same name, same label set in another order: the same metric *)
  let b = Registry.counter ~labels:[ ("approach", "2"); ("op", "read") ] reg "c" in
  Registry.Counter.incr a;
  Registry.Counter.incr b;
  check_int "shared cell" 2 (Registry.Counter.value a);
  check "kind mismatch rejected" true
    (match Registry.gauge reg "c" ~labels:[ ("op", "read"); ("approach", "2") ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_int "one entry" 1 (List.length (Registry.snapshot reg))

(* ---- exporters ---------------------------------------------------------- *)

let golden_registry () =
  let reg = Registry.create () in
  let c =
    Registry.counter ~help:"total requests" ~labels:[ ("op", "read") ] reg
      "requests_total"
  in
  Registry.Counter.add c 3;
  let g = Registry.gauge ~help:"water level" reg "level" in
  Registry.Gauge.set g 1.5;
  let h =
    Registry.histogram ~help:"latency" ~buckets:[| 0.1; 1.0 |] reg
      "latency_seconds"
  in
  List.iter (Registry.Histogram.observe h) [ 0.05; 0.5; 2.0 ];
  reg

let test_prometheus_golden () =
  check_string "prometheus text"
    "# HELP requests_total total requests\n\
     # TYPE requests_total counter\n\
     requests_total{op=\"read\"} 3\n\
     # HELP level water level\n\
     # TYPE level gauge\n\
     level 1.5\n\
     # HELP latency_seconds latency\n\
     # TYPE latency_seconds histogram\n\
     latency_seconds_bucket{le=\"0.1\"} 1\n\
     latency_seconds_bucket{le=\"1\"} 2\n\
     latency_seconds_bucket{le=\"+Inf\"} 3\n\
     latency_seconds_sum 2.55\n\
     latency_seconds_count 3\n"
    (Export.prometheus (golden_registry ()))

let test_jsonl_golden () =
  check_string "jsonl snapshot"
    "{\"metric\":\"requests_total\",\"type\":\"counter\",\"labels\":{\"op\":\"read\"},\"value\":3}\n\
     {\"metric\":\"level\",\"type\":\"gauge\",\"labels\":{},\"value\":1.5}\n\
     {\"metric\":\"latency_seconds\",\"type\":\"histogram\",\"labels\":{},\"count\":3,\"sum\":2.55,\"buckets\":[{\"le\":0.1,\"count\":1},{\"le\":1,\"count\":2},{\"le\":\"+Inf\",\"count\":3}]}\n"
    (Export.to_jsonl (golden_registry ()))

(* ---- the null registry --------------------------------------------------- *)

let test_null_registry () =
  let reg = Registry.null in
  check "disabled" false (Registry.enabled reg);
  let c = Registry.counter reg "c" in
  Registry.Counter.incr c;
  Registry.Counter.add c 10;
  check_int "counter stays 0" 0 (Registry.Counter.value c);
  let g = Registry.gauge reg "g" in
  Registry.Gauge.set g 4.2;
  check "gauge stays 0" true (Registry.Gauge.value g = 0.0);
  let t = Registry.stage_timer reg Registry.Simulate in
  let ran = ref false in
  check_int "timer runs the thunk" 7
    (Registry.Timer.time t (fun () -> ran := true; 7));
  check "thunk ran" true !ran;
  check "no time recorded" true (Registry.Timer.seconds t = 0.0);
  check_int "empty snapshot" 0 (List.length (Registry.snapshot reg));
  check_string "empty prometheus" "" (Export.prometheus reg);
  check_string "empty jsonl" "" (Export.to_jsonl reg)

(* ---- snapshot validation ------------------------------------------------- *)

let test_validator_accepts_own_output () =
  let reg = golden_registry () in
  String.split_on_char '\n' (Export.to_jsonl reg)
  |> List.filter (fun line -> line <> "")
  |> List.iter (fun line ->
         match Export.validate_snapshot_line line with
         | Ok () -> ()
         | Error msg -> Alcotest.failf "own output rejected: %s: %s" msg line);
  let path = Filename.temp_file "obs" ".jsonl" in
  Export.write_jsonl path reg;
  (match Export.validate_snapshot_file path with
  | Ok n -> check_int "file metric count" 3 n
  | Error msg -> Alcotest.failf "own file rejected: %s" msg);
  Sys.remove path

let test_validator_rejects () =
  let rejected line =
    match Export.validate_snapshot_line line with
    | Error _ -> true
    | Ok () -> false
  in
  check "not json" true (rejected "nonsense");
  check "not an object" true (rejected "[1,2]");
  check "missing type" true (rejected {|{"metric":"m","labels":{}}|});
  check "unknown type" true
    (rejected {|{"metric":"m","type":"summary","labels":{},"value":1}|});
  check "non-string label" true
    (rejected {|{"metric":"m","type":"counter","labels":{"a":1},"value":1}|});
  check "negative counter" true
    (rejected {|{"metric":"m","type":"counter","labels":{},"value":-1}|});
  check "non-cumulative buckets" true
    (rejected
       {|{"metric":"m","type":"histogram","labels":{},"count":2,"sum":1,"buckets":[{"le":1,"count":2},{"le":"+Inf","count":1}]}|});
  check "non-terminal +Inf" true
    (rejected
       {|{"metric":"m","type":"histogram","labels":{},"count":2,"sum":1,"buckets":[{"le":"+Inf","count":1},{"le":"+Inf","count":2}]}|});
  check "missing +Inf" true
    (rejected
       {|{"metric":"m","type":"histogram","labels":{},"count":1,"sum":1,"buckets":[{"le":1,"count":1}]}|});
  check "+Inf count mismatch" true
    (rejected
       {|{"metric":"m","type":"histogram","labels":{},"count":3,"sum":1,"buckets":[{"le":1,"count":1},{"le":"+Inf","count":2}]}|})

(* ---- engine integration -------------------------------------------------- *)

let source =
  {|
    int x;
    int finished;

    void main(void) {
      int i;
      for (i = 0; i < 8; i = i + 1) {
        x = x + 1;
      }
      finished = 1;
    }
  |}

let program_info = lazy (Minic.Typecheck.check (Minic.C_parser.parse source))

let session_result metrics =
  let config =
    {
      Verif.Session.default_config with
      Verif.Session.session_name = "obs-test";
      propositions = [ ("p_done", "finished == 1") ];
      properties = [ ("eventually_done", "F p_done") ];
      bound = Some 10_000;
      metrics;
    }
  in
  let session =
    Verif.Session.create ~info:(Lazy.force program_info) config
      Verif.Session.Reference
  in
  Verif.Session.run session;
  Verif.Session.result session

let test_session_metrics () =
  let reg = Registry.create () in
  let result = session_result reg in
  check_int "triggers counted" result.Verif.Result.triggers
    (Registry.total reg "sctc_triggers_total");
  check "verdict transitions seen" true
    (Registry.total reg "sctc_verdict_transitions_total" >= 1);
  check "check latency recorded" true
    (Registry.total reg "sctc_triggers_total"
     = List.fold_left
         (fun acc m ->
           match m.Registry.value with
           | Registry.Histogram_value { count; _ }
             when m.Registry.name = Registry.stage_name Registry.Check ->
             acc + count
           | _ -> acc)
         0 (Registry.snapshot reg));
  check "simulate stage timed" true
    (Registry.sum_seconds reg (Registry.stage_name Registry.Simulate) > 0.0);
  check "parse stage counted" true
    (Registry.sum_seconds reg (Registry.stage_name Registry.Parse) >= 0.0)

let campaign_jobs () =
  List.init 6 (fun i ->
      Verif.Campaign.job ~label:(Printf.sprintf "job%d" i) (fun trace ->
          let config =
            {
              Verif.Session.default_config with
              Verif.Session.session_name = Printf.sprintf "job%d" i;
              propositions = [ ("p_done", "finished == 1") ];
              properties = [ ("eventually_done", "F p_done") ];
              bound = Some 10_000;
              trace;
            }
          in
          let session =
            Verif.Session.create ~info:(Lazy.force program_info) config
              Verif.Session.Reference
          in
          Verif.Session.run session;
          Verif.Session.result session))

let test_campaign_metrics () =
  let reg = Registry.create () in
  let summary =
    Verif.Campaign.run ~metrics:reg ~workers:4 ~chunk:1 (campaign_jobs ())
  in
  check_int "jobs counted" 6 (Registry.total reg "campaign_jobs_total");
  check_int "no job errors" 0 (Registry.total reg "campaign_job_errors_total");
  check "chunk claims" true
    (Registry.total reg "campaign_chunk_claims_total" >= 6);
  check "queue waits recorded" true
    (List.exists
       (fun m ->
         m.Registry.name = "campaign_queue_wait_seconds"
         &&
         match m.Registry.value with
         | Registry.Histogram_value { count; _ } -> count > 0
         | _ -> false)
       (Registry.snapshot reg));
  (* metering must not perturb the deterministic merge *)
  let plain = Verif.Campaign.run ~workers:1 (campaign_jobs ()) in
  check_string "identical merged trace"
    (Verif.Campaign.to_jsonl plain)
    (Verif.Campaign.to_jsonl ~metrics:reg summary);
  check "merge stage timed" true
    (Registry.sum_seconds reg (Registry.stage_name Registry.Merge) >= 0.0)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
        ] );
      ( "domains",
        [ Alcotest.test_case "4-domain stress" `Quick test_concurrent_counters ]
      );
      ("interning", [ Alcotest.test_case "find-or-create" `Quick test_interning ]);
      ( "export",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
        ] );
      ("null", [ Alcotest.test_case "no-op" `Quick test_null_registry ]);
      ( "validate",
        [
          Alcotest.test_case "accepts own output" `Quick
            test_validator_accepts_own_output;
          Alcotest.test_case "rejects bad lines" `Quick test_validator_rejects;
        ] );
      ( "engine",
        [
          Alcotest.test_case "session records" `Quick test_session_metrics;
          Alcotest.test_case "campaign records" `Quick test_campaign_metrics;
        ] );
    ]
