(* Tests for the AR-automata layer. The centerpiece is an independent
   finite-trace FLTL semantics (strong closure) used as an oracle: formula
   progression plus strong finalization, the explicit AR-automaton, and the
   IL-driven monitor must all agree with it on random formulas and traces. *)

module F = Formula

(* ----------------------------------------------------------------------- *)
(* Reference semantics: FLTL over finite traces with the empty-suffix
   convention (LTL over possibly-empty words): position [n] denotes the
   empty suffix, where propositions/X/F/U are false and G/R are true.
   [holds] is memoized per (position, formula id) because the naive
   recursion is exponential for nested until/release. *)

let holds_memo trace =
  let n = Array.length trace in
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec holds i f =
    let key = (i, F.hash f) in
    match Hashtbl.find_opt memo key with
    | Some value -> value
    | None ->
      let value = compute i f in
      Hashtbl.replace memo key value;
      value
  and compute i f =
    assert (i <= n);
    if i = n then
      (* empty suffix *)
      match f.F.node with
      | F.True -> true
      | F.False -> false
      | F.Prop _ -> false
      | F.Not g -> not (holds i g)
      | F.And (a, b) -> holds i a && holds i b
      | F.Or (a, b) -> holds i a || holds i b
      | F.Next _ -> false
      | F.Finally _ -> false
      | F.Globally _ -> true
      | F.Until _ -> false
      | F.Release _ -> true
    else
      match f.F.node with
      | F.True -> true
      | F.False -> false
      | F.Prop name -> trace.(i) name
      | F.Not g -> not (holds i g)
      | F.And (a, b) -> holds i a && holds i b
      | F.Or (a, b) -> holds i a || holds i b
      | F.Next g -> holds (i + 1) g
      | F.Finally (bound, g) ->
        (* witnesses must lie on real positions *)
        let last =
          match bound with None -> n - 1 | Some b -> min (n - 1) (i + b)
        in
        let rec exists j = j <= last && (holds j g || exists (j + 1)) in
        exists i
      | F.Globally (bound, g) ->
        let last =
          match bound with None -> n - 1 | Some b -> min (n - 1) (i + b)
        in
        let rec forall j = j > last || (holds j g && forall (j + 1)) in
        forall i
      | F.Until (bound, l, r) ->
        let last =
          match bound with None -> n - 1 | Some b -> min (n - 1) (i + b)
        in
        let rec exists k =
          if k > last then false
          else if holds k r then
            let rec prefix j = j >= k || (holds j l && prefix (j + 1)) in
            prefix i
          else exists (k + 1)
        in
        exists i
      | F.Release (bound, l, r) ->
        (* dual of until *)
        not (holds i (F.until bound (F.not_ l) (F.not_ r)))
  in
  holds

let holds trace i f = holds_memo trace i f

(* Run a trace through progression with strong end-of-trace closure. *)
let progression_verdict formula trace =
  let state = ref formula in
  Array.iter (fun valuation -> state := Progression.step !state valuation) trace;
  Progression.finalize ~strong:true !state

let bool_of_verdict = function
  | Verdict.True -> true
  | Verdict.False -> false
  | Verdict.Pending -> assert false

(* ----------------------------------------------------------------------- *)

let valuation_of_triple (a, b, c) = function
  | "a" -> a
  | "b" -> b
  | "c" -> c
  | _ -> false

let run_progression formula triples =
  progression_verdict formula
    (Array.of_list (List.map valuation_of_triple triples))

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

let parse text = Sctc.Prop.parse_exn ~syntax:`Fltl text

(* --- directed progression tests ---------------------------------------- *)

let t = true
and f = false

let test_globally_violation () =
  check_verdict "G a violated at third step" Verdict.False
    (run_progression (parse "G a") [ (t, f, f); (t, f, f); (f, f, f) ]);
  check_verdict "G a pending while true" Verdict.Pending
    (let st = ref (parse "G a") in
     List.iter
       (fun v -> st := Progression.step !st (valuation_of_triple v))
       [ (t, f, f); (t, f, f) ];
     Progression.verdict !st)

let test_finally_validation () =
  check_verdict "F b validated" Verdict.True
    (run_progression (parse "F b") [ (t, f, f); (f, t, f) ]);
  check_verdict "F b fails on empty-of-b trace (strong)" Verdict.False
    (run_progression (parse "F b") [ (t, f, f); (f, f, f) ])

let test_bounded_finally () =
  (* F[1] b: b must hold at step 0 or 1 *)
  check_verdict "within bound" Verdict.True
    (run_progression (parse "F[1] b") [ (f, f, f); (f, t, f) ]);
  check_verdict "misses bound" Verdict.False
    (run_progression (parse "F[1] b") [ (f, f, f); (f, f, f); (f, t, f) ])

let test_bounded_globally () =
  check_verdict "G[2] a holds for 3 steps then free" Verdict.True
    (run_progression (parse "G[2] a") [ (t, f, f); (t, f, f); (t, f, f) ]);
  check_verdict "G[2] a violated inside window" Verdict.False
    (run_progression (parse "G[2] a") [ (t, f, f); (f, f, f) ])

let test_next () =
  check_verdict "X b true" Verdict.True
    (run_progression (parse "X b") [ (f, f, f); (f, t, f) ]);
  check_verdict "X b false" Verdict.False
    (run_progression (parse "X b") [ (f, f, f); (f, f, f) ]);
  check_verdict "X b strong-fails on singleton" Verdict.False
    (run_progression (parse "X b") [ (f, t, f) ])

let test_until () =
  check_verdict "a U b satisfied" Verdict.True
    (run_progression (parse "a U b") [ (t, f, f); (t, f, f); (f, t, f) ]);
  check_verdict "a U b broken" Verdict.False
    (run_progression (parse "a U b") [ (t, f, f); (f, f, f); (f, t, f) ])

let test_paper_shape () =
  (* F (read -> F[2] ok) with read=a, ok=b *)
  let formula = parse "F (a -> F[2] b)" in
  check_verdict "request answered in window" Verdict.True
    (run_progression formula [ (f, f, f); (t, f, f); (f, f, f); (f, t, f) ])

let test_finalize_weak_vs_strong () =
  let st = ref (parse "F b") in
  st := Progression.step !st (valuation_of_triple (f, f, f));
  check_verdict "pending without closure" Verdict.Pending
    (Progression.finalize !st);
  check_verdict "strong closure fails" Verdict.False
    (Progression.finalize ~strong:true !st);
  let st2 = ref (parse "G a") in
  st2 := Progression.step !st2 (valuation_of_triple (t, f, f));
  check_verdict "G survives strong closure" Verdict.True
    (Progression.finalize ~strong:true !st2)

(* --- oracle equivalence (qcheck) ---------------------------------------- *)

let gen_formula =
  let open QCheck.Gen in
  let prop_name = oneofl [ "a"; "b"; "c" ] in
  let bound = oneof [ return None; map (fun n -> Some n) (int_bound 3) ] in
  sized_size (int_bound 12) @@ QCheck.Gen.fix (fun self n ->
      if n = 0 then oneof [ return F.tru; return F.fls; map F.prop prop_name ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map F.prop prop_name;
            map F.not_ sub;
            map2 F.and_ sub sub;
            map2 F.or_ sub sub;
            map F.next sub;
            map2 F.finally bound sub;
            map2 F.globally bound sub;
            map3 F.until bound sub sub;
            map3 F.release bound sub sub;
          ])

let gen_trace =
  let open QCheck.Gen in
  list_size (int_range 1 8) (triple bool bool bool)

let arbitrary_case =
  QCheck.make
    ~print:(fun (formula, trace) ->
      Printf.sprintf "%s on %s" (F.to_string formula)
        (String.concat ";"
           (List.map
              (fun (a, b, c) -> Printf.sprintf "(%b,%b,%b)" a b c)
              trace)))
    QCheck.Gen.(pair gen_formula gen_trace)

let qcheck_progression_matches_semantics =
  QCheck.Test.make ~name:"progression+strong-close == trace semantics"
    ~count:1000 arbitrary_case (fun (formula, triples) ->
      let trace = Array.of_list (List.map valuation_of_triple triples) in
      let reference = holds trace 0 formula in
      let computed = bool_of_verdict (progression_verdict formula trace) in
      reference = computed)

let qcheck_explicit_matches_progression =
  QCheck.Test.make ~name:"explicit automaton == progression" ~count:300
    arbitrary_case (fun (formula, triples) ->
      match Ar_automaton.synthesize ~max_states:2_000 formula with
      | exception Ar_automaton.Too_large _ ->
        (* independent bounded counters legitimately blow up the explicit
           automaton (the paper's TB-100000 effect); skip such cases *)
        true
      | automaton ->
      let state = ref (Ar_automaton.initial automaton) in
      let obligation = ref formula in
      List.for_all
        (fun triple ->
          let valuation = valuation_of_triple triple in
          let mask = Ar_automaton.mask_of_valuation automaton valuation in
          state := Ar_automaton.next automaton !state mask;
          obligation := Progression.step !obligation valuation;
          let kind_verdict =
            match Ar_automaton.kind automaton !state with
            | Ar_automaton.Accept -> Verdict.True
            | Ar_automaton.Reject -> Verdict.False
            | Ar_automaton.Pend -> Verdict.Pending
          in
          Verdict.equal kind_verdict (Progression.verdict !obligation))
        triples)

let qcheck_il_monitor_matches_formula_monitor =
  QCheck.Test.make ~name:"IL monitor == on-the-fly monitor" ~count:200
    arbitrary_case (fun (formula, triples) ->
      match Ar_automaton.synthesize ~max_states:2_000 formula with
      | exception Ar_automaton.Too_large _ -> true
      | automaton ->
        let current = ref (false, false, false) in
        let binding name () = valuation_of_triple !current name in
        let on_the_fly = Monitor.of_formula ~name:"otf" formula ~binding in
        let il = Il.parse (Il.to_string (Il.of_automaton ~name:"m" automaton)) in
        let explicit = Monitor.of_il ~name:"il" il ~binding in
        List.for_all
          (fun triple ->
            current := triple;
            let v1 = Monitor.step on_the_fly in
            let v2 = Monitor.step explicit in
            Verdict.equal v1 v2)
          triples)

(* --- explicit automaton structure --------------------------------------- *)

let test_bounded_automaton_size () =
  (* F[20] p: one countdown obligation per remaining bound + accept/reject *)
  let automaton = Ar_automaton.synthesize (parse "F[20] p") in
  let states = Ar_automaton.num_states automaton in
  Alcotest.(check bool) "countdown states present" true (states >= 21);
  Alcotest.(check bool) "no blowup" true (states <= 24)

let test_automaton_growth_with_bound () =
  let size b =
    Ar_automaton.num_states
      (Ar_automaton.synthesize (parse (Printf.sprintf "F[%d] p" b)))
  in
  Alcotest.(check bool) "monotone growth" true (size 50 > size 10);
  Alcotest.(check bool) "roughly linear" true (size 50 - size 10 >= 35)

let test_too_large () =
  match Ar_automaton.synthesize ~max_states:10 (parse "F[100] p") with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Ar_automaton.Too_large n ->
    Alcotest.(check bool) "count reported" true (n > 10)

let test_absorbing_states () =
  let automaton = Ar_automaton.synthesize (parse "F p") in
  let accept = ref None in
  for s = 0 to Ar_automaton.num_states automaton - 1 do
    if Ar_automaton.kind automaton s = Ar_automaton.Accept then
      accept := Some s
  done;
  match !accept with
  | None -> Alcotest.fail "no accept state"
  | Some s ->
    for mask = 0 to (1 lsl Ar_automaton.num_props automaton) - 1 do
      Alcotest.(check int) "absorbing" s (Ar_automaton.next automaton s mask)
    done

(* --- cubes ---------------------------------------------------------------- *)

let test_cube_basic () =
  let cube = Cube.of_string "1-0" in
  Alcotest.(check bool) "matches 001" true (Cube.matches cube 0b001);
  Alcotest.(check bool) "matches 011" true (Cube.matches cube 0b011);
  Alcotest.(check bool) "rejects 000" false (Cube.matches cube 0b000);
  Alcotest.(check bool) "rejects 101" false (Cube.matches cube 0b101);
  Alcotest.(check (list int)) "minterms" [ 0b001; 0b011 ] (Cube.minterms cube);
  Alcotest.(check string) "round trip" "1-0" (Cube.to_string cube)

let test_cube_minimize_full () =
  (* all four minterms over two props collapse to a single dash-dash cube *)
  match Cube.minimize ~width:2 [ 0; 1; 2; 3 ] with
  | [ cube ] -> Alcotest.(check string) "one cube" "--" (Cube.to_string cube)
  | cubes ->
    Alcotest.failf "expected 1 cube, got %d" (List.length cubes)

let qcheck_cube_minimize_exact =
  QCheck.Test.make ~name:"cube cover == input minterm set" ~count:300
    QCheck.(pair (int_range 1 5) (list_of_size (QCheck.Gen.int_range 0 12) small_nat))
    (fun (width, raw) ->
      let module IS = Set.Make (Int) in
      let masks =
        IS.elements (IS.of_list (List.map (fun m -> m land ((1 lsl width) - 1)) raw))
      in
      let cubes = Cube.minimize ~width masks in
      let covered = ref IS.empty in
      List.iter
        (fun cube ->
          List.iter (fun m -> covered := IS.add m !covered) (Cube.minterms cube))
        cubes;
      IS.equal !covered (IS.of_list masks))

(* --- IL -------------------------------------------------------------------- *)

let test_il_roundtrip () =
  let automaton = Ar_automaton.synthesize (parse "G (a -> F[3] b)") in
  let il = Il.of_automaton ~name:"demo" automaton in
  let il' = Il.parse (Il.to_string il) in
  Alcotest.(check string) "name preserved" il.Il.name il'.Il.name;
  Alcotest.(check int) "same state count" (Array.length il.Il.states)
    (Array.length il'.Il.states);
  (* behavioural equality on every state/mask *)
  let masks = 1 lsl Array.length il.Il.props in
  Array.iteri
    (fun state _ ->
      for mask = 0 to masks - 1 do
        Alcotest.(check int)
          (Printf.sprintf "next(%d,%d)" state mask)
          (Il.next il state mask) (Il.next il' state mask)
      done)
    il.Il.states;
  Alcotest.(check bool) "transitions counted" true (Il.num_transitions il > 0)

let test_monitor_absorbing_and_reset () =
  let value = ref false in
  let binding _name () = !value in
  let monitor = Monitor.of_formula ~name:"m" (parse "F a") ~binding in
  check_verdict "pending" Verdict.Pending (Monitor.step monitor);
  value := true;
  check_verdict "validated" Verdict.True (Monitor.step monitor);
  value := false;
  check_verdict "stays validated" Verdict.True (Monitor.step monitor);
  Alcotest.(check int) "steps counted" 3 (Monitor.steps monitor);
  Monitor.reset monitor;
  Alcotest.(check int) "steps reset" 0 (Monitor.steps monitor);
  check_verdict "pending again" Verdict.Pending (Monitor.verdict monitor)

let suite_progression =
  [
    Alcotest.test_case "globally violation" `Quick test_globally_violation;
    Alcotest.test_case "finally validation" `Quick test_finally_validation;
    Alcotest.test_case "bounded finally" `Quick test_bounded_finally;
    Alcotest.test_case "bounded globally" `Quick test_bounded_globally;
    Alcotest.test_case "next" `Quick test_next;
    Alcotest.test_case "until" `Quick test_until;
    Alcotest.test_case "paper property shape" `Quick test_paper_shape;
    Alcotest.test_case "finalize weak vs strong" `Quick
      test_finalize_weak_vs_strong;
    QCheck_alcotest.to_alcotest qcheck_progression_matches_semantics;
  ]

let suite_automaton =
  [
    Alcotest.test_case "bounded automaton size" `Quick
      test_bounded_automaton_size;
    Alcotest.test_case "growth with bound" `Quick
      test_automaton_growth_with_bound;
    Alcotest.test_case "too large" `Quick test_too_large;
    Alcotest.test_case "absorbing states" `Quick test_absorbing_states;
    QCheck_alcotest.to_alcotest qcheck_explicit_matches_progression;
  ]

let suite_il =
  [
    Alcotest.test_case "cube basics" `Quick test_cube_basic;
    Alcotest.test_case "cube minimize full set" `Quick test_cube_minimize_full;
    QCheck_alcotest.to_alcotest qcheck_cube_minimize_exact;
    Alcotest.test_case "IL round trip" `Quick test_il_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_il_monitor_matches_formula_monitor;
    Alcotest.test_case "monitor absorbing and reset" `Quick
      test_monitor_absorbing_and_reset;
  ]

let () =
  Alcotest.run "automata"
    [
      ("progression", suite_progression);
      ("ar-automaton", suite_automaton);
      ("il-and-monitor", suite_il);
    ]
