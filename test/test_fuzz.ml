(* Randomized differential testing: generated MiniC programs must behave
   identically on the reference interpreter and when compiled to the ISA
   and executed on the CPU model — return value and final global state.
   This exercises the code generator (register-stack evaluation, spills,
   calls, control flow) far beyond the hand-written cases. *)

module Ast = Minic.Ast

(* ---- generator of small well-typed programs ---------------------------- *)

let globals = [ "g0"; "g1"; "g2" ]

(* expressions over the given readable variables; division and modulo get
   divisors forced non-zero ((e & 7) | 1), shifts are masked by both
   backends identically so any amount is fine *)
let gen_expr vars =
  let open QCheck.Gen in
  sized_size (int_bound 6) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [
            map Ast.int_lit (int_range (-1000) 1000);
            map Ast.var (oneofl vars);
          ]
      else
        let sub = self (n / 2) in
        let bin op =
          map2 (fun a b -> Ast.expr (Ast.Binop (op, a, b))) sub sub
        in
        let nonzero e =
          Ast.expr
            (Ast.Binop
               ( Ast.Bor,
                 Ast.expr (Ast.Binop (Ast.Band, e, Ast.int_lit 7)),
                 Ast.int_lit 1 ))
        in
        oneof
          [
            map Ast.var (oneofl vars);
            bin Ast.Add;
            bin Ast.Sub;
            bin Ast.Mul;
            map2
              (fun a b -> Ast.expr (Ast.Binop (Ast.Div, a, nonzero b)))
              sub sub;
            map2
              (fun a b -> Ast.expr (Ast.Binop (Ast.Mod, a, nonzero b)))
              sub sub;
            bin Ast.Band;
            bin Ast.Bor;
            bin Ast.Bxor;
            bin Ast.Shl;
            bin Ast.Shr;
            bin Ast.Lt;
            bin Ast.Le;
            bin Ast.Eq;
            bin Ast.Ne;
            bin Ast.Land;
            bin Ast.Lor;
            map (fun a -> Ast.expr (Ast.Unop (Ast.Neg, a))) sub;
            map (fun a -> Ast.expr (Ast.Unop (Ast.Bitnot, a))) sub;
            map (fun a -> Ast.expr (Ast.Unop (Ast.Lognot, a))) sub;
          ])

(* statements: assignments, if/else, bounded for loops, helper calls *)
let gen_stmts ~with_call =
  let open QCheck.Gen in
  let loop_counter = ref 0 in
  let rec stmts vars depth n =
    if n <= 0 then return []
    else
      stmt vars depth >>= fun s ->
      stmts vars depth (n - 1) >>= fun rest -> return (s :: rest)
  and stmt vars depth =
    let assign =
      map2
        (fun target e -> Ast.stmt (Ast.Assign (Ast.Lvar target, e)))
        (oneofl globals) (gen_expr vars)
    in
    let base_choices =
      [ assign ]
      @ (if with_call then
           [
             map
               (fun e ->
                 Ast.stmt
                   (Ast.Assign
                      (Ast.Lvar "g0", Ast.expr (Ast.Call ("helper", [ e ])))))
               (gen_expr vars);
           ]
         else [])
    in
    if depth <= 0 then oneof base_choices
    else
      oneof
        (base_choices
        @ [
            (* if / else *)
            (gen_expr vars >>= fun cond ->
             stmts vars (depth - 1) 2 >>= fun then_body ->
             stmts vars (depth - 1) 2 >>= fun else_body ->
             return
               (Ast.stmt
                  (Ast.If
                     ( cond,
                       Ast.stmt (Ast.Block then_body),
                       Some (Ast.stmt (Ast.Block else_body)) ))));
            (* bounded counted loop with a fresh counter *)
            (int_range 1 5 >>= fun iterations ->
             incr loop_counter;
             let counter = Printf.sprintf "i%d" !loop_counter in
             stmts (counter :: vars) (depth - 1) 2 >>= fun body ->
             return
               (Ast.stmt
                  (Ast.For
                     ( Some
                         (Ast.stmt
                            (Ast.Decl (counter, Ast.Tint, Some (Ast.int_lit 0)))),
                       Some
                         (Ast.expr
                            (Ast.Binop
                               ( Ast.Lt,
                                 Ast.var counter,
                                 Ast.int_lit iterations ))),
                       Some
                         (Ast.stmt
                            (Ast.Assign
                               ( Ast.Lvar counter,
                                 Ast.expr
                                   (Ast.Binop
                                      ( Ast.Add,
                                        Ast.var counter,
                                        Ast.int_lit 1 )) ))),
                       Ast.stmt (Ast.Block body) ))));
          ])
  in
  fun vars depth n -> stmts vars depth n

let gen_program =
  let open QCheck.Gen in
  gen_stmts ~with_call:false [ "p" ] 1 3 >>= fun helper_body ->
  gen_expr [ "p"; "g0"; "g1" ] >>= fun helper_ret ->
  gen_stmts ~with_call:true globals 2 5 >>= fun main_body ->
  gen_expr globals >>= fun main_ret ->
  let helper =
    {
      Ast.f_name = "helper";
      f_ret = Ast.Tint;
      f_params = [ ("p", Ast.Tint) ];
      f_body = helper_body @ [ Ast.stmt (Ast.Return (Some helper_ret)) ];
      f_pos = Ast.dummy_pos;
    }
  in
  let main =
    {
      Ast.f_name = "main";
      f_ret = Ast.Tint;
      f_params = [];
      f_body = main_body @ [ Ast.stmt (Ast.Return (Some main_ret)) ];
      f_pos = Ast.dummy_pos;
    }
  in
  let program =
    {
      Ast.globals =
        List.map
          (fun name ->
            {
              Ast.g_name = name;
              g_type = Ast.Tint;
              g_const = false;
              g_init = None;
              g_pos = Ast.dummy_pos;
            })
          globals;
      funcs = [ helper; main ];
    }
  in
  return program

let arbitrary_program =
  QCheck.make ~print:Minic.Pretty.program_to_string gen_program

(* ---- the differential oracle ------------------------------------------- *)

let run_interp info =
  let env = Minic.Interp.create info in
  match
    Minic.Interp.run ~fuel:1_000_000 env
      (Minic.Interp.default_hooks ())
      ~entry:"main"
  with
  | Minic.Interp.Finished (Some v) ->
    Some (v, List.map (fun g -> Minic.Interp.read_global env g) globals)
  | _ -> None

let run_cpu info =
  let compiled = Mcc.Codegen.compile ~fname_tracking:false info in
  let bus = Cpu.Bus.create () in
  let ram = Cpu.Ram.create ~name:"ram" ~base:0 ~size:0x8000 in
  Cpu.Bus.attach bus (Cpu.Ram.device ram);
  Cpu.Ram.load ram 0 compiled.Mcc.Codegen.words;
  let core =
    Cpu.Cpu_core.create bus ~start_pc:0
      ~stack_pointer:Cpu.Memory_map.stack_top ()
  in
  match Cpu.Cpu_core.run ~max_instructions:10_000_000 core with
  | Cpu.Cpu_core.Halted ->
    Some
      ( Cpu.Cpu_core.reg core Cpu.Isa.reg_rv,
        List.map
          (fun g ->
            Cpu.Ram.get ram (Mcc.Symtab.address_of compiled.Mcc.Codegen.symtab g))
          globals )
  | _ -> None

let qcheck_compiled_equals_interpreted =
  QCheck.Test.make ~name:"compiled == interpreted (random programs)"
    ~count:300 arbitrary_program (fun program ->
      match Minic.Typecheck.check_result program with
      | Error msg -> QCheck.Test.fail_reportf "generator bug: %s" msg
      | Ok info -> (
        match run_interp info, run_cpu info with
        | Some (rv1, gs1), Some (rv2, gs2) -> rv1 = rv2 && gs1 = gs2
        | None, None -> true
        | Some _, None -> QCheck.Test.fail_report "cpu failed, interp ok"
        | None, Some _ -> QCheck.Test.fail_report "interp failed, cpu ok"))

(* the generated programs must also survive the pretty-print/parse loop *)
let qcheck_program_roundtrip =
  QCheck.Test.make ~name:"pretty . parse round trip (random programs)"
    ~count:150 arbitrary_program (fun program ->
      let printed = Minic.Pretty.program_to_string program in
      match Minic.C_parser.parse_result printed with
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg
      | Ok reparsed ->
        String.equal printed (Minic.Pretty.program_to_string reparsed))

(* and the normalization pass must preserve their behaviour *)
let qcheck_normalize_preserves =
  QCheck.Test.make ~name:"normalize preserves behaviour (random programs)"
    ~count:150 arbitrary_program (fun program ->
      match Minic.Typecheck.check_result program with
      | Error _ -> false
      | Ok info -> (
        let normalized = Absref.Normalize.program info in
        match run_interp info, run_interp normalized with
        | Some a, Some b -> a = b
        | None, None -> true
        | _ -> false))

(* ---- full-pipeline differential: approach 1 vs approach 2 -------------- *)

(* The same generated program, monitored for the same generated response
   property `G (p -> F[k] q)`, must reach the same strongly-finalized
   verdict whether the checker is clock-triggered on the SoC (approach 1)
   or statement-triggered on the derived model (approach 2). Globals only
   change at statement-granularity stores, so the two time scales visit
   the same sequence of global-state snapshots (with different dwell
   times); with the F bound scaled to exceed the whole trace on each time
   scale, the property is stutter-invariant and the verdicts must agree. *)

module Session = Verif.Session

(* bounds scaled per time scale: generated programs execute well under
   10k statements (loops are counted, depth-bounded), and a statement
   costs well under 200 SoC cycles *)
let k_statements = 50_000
let k_cycles = 200 * k_statements
let budget_statements = 200_000
let budget_cycles = 5_000_000

let gen_prop =
  let open QCheck.Gen in
  oneofl globals >>= fun v ->
  oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] >>= fun op ->
  int_range (-64) 64 >>= fun c -> return (Printf.sprintf "%s %s %d" v op c)

(* shrink by dropping top-level statements of either function body,
   always preserving the trailing Return *)
let shrink_program program yield =
  List.iteri
    (fun fidx f ->
      match List.rev f.Ast.f_body with
      | ret :: rev_body ->
        QCheck.Shrink.list_spine (List.rev rev_body) (fun body ->
            let f = { f with Ast.f_body = body @ [ ret ] } in
            yield
              {
                program with
                Ast.funcs =
                  List.mapi
                    (fun i g -> if i = fidx then f else g)
                    program.Ast.funcs;
              })
      | [] -> ())
    program.Ast.funcs

let arbitrary_monitored_program =
  QCheck.make
    ~print:(fun (program, p, q) ->
      Printf.sprintf "p := %s\nq := %s\n%s" p q
        (Minic.Pretty.program_to_string program))
    ~shrink:(fun (program, p, q) yield ->
      shrink_program program (fun program -> yield (program, p, q)))
    QCheck.Gen.(triple gen_program gen_prop gen_prop)

let interp_finishes info =
  let env = Minic.Interp.create info in
  match
    Minic.Interp.run ~fuel:10_000 env
      (Minic.Interp.default_hooks ())
      ~entry:"main"
  with
  | Minic.Interp.Finished _ -> true
  | _ -> false

(* run one approach to completion and strongly finalize; None when the
   software did not halt in budget or crashed (case is then discarded) *)
let final_verdict ~backend ~bound ~k info (p, q) =
  let config =
    {
      Session.default_config with
      Session.session_name =
        (match backend with
        | Session.Soc_model -> "fuzz-approach1"
        | _ -> "fuzz-approach2");
      propositions = [ ("fp", p); ("fq", q) ];
      properties = [ ("resp", Printf.sprintf "G (fp -> F[%d] fq)" k) ];
      bound = Some bound;
    }
  in
  let session = Session.create ~info config backend in
  Session.boot session;
  Session.run session;
  if Session.alive session || Session.crashed session <> None then None
  else
    match Sctc.Checker.finalize ~strong:true (Session.checker session) with
    | [ (_, v) ] -> Some v
    | _ -> None

let qcheck_approach1_equals_approach2 =
  QCheck.Test.make
    ~name:"approach 1 == approach 2 verdict of G (p -> F[k] q)" ~count:100
    arbitrary_monitored_program (fun (program, p, q) ->
      match Minic.Typecheck.check_result program with
      | Error msg -> QCheck.Test.fail_reportf "generator bug: %s" msg
      | Ok info ->
        if not (interp_finishes info) then true
        else (
          match
            ( final_verdict ~backend:Session.Soc_model ~bound:budget_cycles
                ~k:k_cycles info (p, q),
              final_verdict ~backend:Session.Derived_model
                ~bound:budget_statements ~k:k_statements info (p, q) )
          with
          | Some v1, Some v2 ->
            Verdict.equal v1 v2
            || QCheck.Test.fail_reportf "approach 1: %s, approach 2: %s"
                 (Verdict.to_string v1) (Verdict.to_string v2)
          | _ -> true))

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_compiled_equals_interpreted;
          QCheck_alcotest.to_alcotest qcheck_program_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_normalize_preserves;
          QCheck_alcotest.to_alcotest qcheck_approach1_equals_approach2;
        ] );
    ]
