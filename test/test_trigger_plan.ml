(* Tests for the compiled trigger plan: the shared per-trigger sample
   vector (each proposition probed exactly once per trigger, however
   many properties share it), active-set stepping (settled monitors are
   skipped), and the progression transition cache behind the on-the-fly
   engine — differentially against plain [Progression.step], and under
   4 concurrent domains against a single-domain oracle. *)

module Checker = Sctc.Checker
module Trace = Sctc.Trace
module F = Formula

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

let valuation_of_triple (a, b, c) name =
  match name with
  | "a" -> a
  | "b" -> b
  | "c" -> c
  | _ -> invalid_arg ("unexpected proposition " ^ name)

(* the retained reference stepper: uncached, unindexed progression *)
let reference_verdicts formula script =
  let current = ref formula in
  List.map
    (fun triple ->
      if not (Verdict.is_final (Progression.verdict !current)) then
        current := Progression.step !current (valuation_of_triple triple);
      Progression.verdict !current)
    script

let plan_checker_of formulas =
  let current = ref (false, false, false) in
  let checker = Checker.create ~name:"plan" () in
  List.iter
    (fun name ->
      Checker.register_sampler checker name (fun () ->
          valuation_of_triple !current name))
    [ "a"; "b"; "c" ];
  List.iteri
    (fun i formula ->
      Checker.add_property checker ~name:(Printf.sprintf "p%d" i) formula)
    formulas;
  (checker, current)

let plan_verdicts formula script =
  let checker, current = plan_checker_of [ formula ] in
  List.map
    (fun triple ->
      current := triple;
      Checker.step checker;
      Checker.verdict checker "p0")
    script

(* --- differential qcheck: fast path vs plain progression --------------- *)

let gen_formula =
  let open QCheck.Gen in
  let prop_name = oneofl [ "a"; "b"; "c" ] in
  let bound = oneof [ return None; map (fun n -> Some n) (int_bound 3) ] in
  sized_size (int_bound 12)
  @@ QCheck.Gen.fix (fun self n ->
         if n = 0 then oneof [ return F.tru; return F.fls; map F.prop prop_name ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map F.prop prop_name;
               map F.not_ sub;
               map2 F.and_ sub sub;
               map2 F.or_ sub sub;
               map F.next sub;
               map2 F.finally bound sub;
               map2 F.globally bound sub;
               map3 F.until bound sub sub;
               map3 F.release bound sub sub;
             ])

let arbitrary_case =
  QCheck.make
    ~print:(fun (formula, script) ->
      Printf.sprintf "%s on %s" (F.to_string formula)
        (String.concat ";"
           (List.map
              (fun (a, b, c) -> Printf.sprintf "(%b,%b,%b)" a b c)
              script)))
    QCheck.Gen.(
      pair gen_formula (list_size (int_range 1 10) (triple bool bool bool)))

let qcheck_plan_matches_progression =
  QCheck.Test.make
    ~name:"compiled plan (On_the_fly) == plain Progression.step, per step"
    ~count:1000 arbitrary_case (fun (formula, script) ->
      let reference = reference_verdicts formula script in
      let fast = plan_verdicts formula script in
      List.for_all2 Verdict.equal reference fast)

(* several properties on one checker must not disturb each other even
   though they share the sample vector and the transition cache *)
let qcheck_plan_multi_property =
  QCheck.Test.make
    ~name:"three shared-support properties == three independent references"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (return 3) gen_formula)
           (list_size (int_range 1 10) (triple bool bool bool))))
    (fun (formulas, script) ->
      let checker, current = plan_checker_of formulas in
      let fast =
        List.concat_map
          (fun triple ->
            current := triple;
            Checker.step checker;
            List.map snd (Checker.verdicts checker))
          script
      in
      let reference =
        let per_formula =
          List.map
            (fun f -> Array.of_list (reference_verdicts f script))
            formulas
        in
        List.concat_map
          (fun step -> List.map (fun v -> v.(step)) per_formula)
          (List.init (List.length script) (fun i -> i))
      in
      List.for_all2 Verdict.equal reference fast)

(* --- shared sample vector ----------------------------------------------- *)

let test_shared_prop_probed_once () =
  let probes = ref 0 in
  let value = ref false in
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "shared" (fun () ->
      incr probes;
      !value);
  Checker.register_sampler checker "own" (fun () -> false);
  Checker.add_property_text checker ~name:"p1" "G shared";
  Checker.add_property_text checker ~name:"p2" "F (shared & own)";
  value := true;
  Checker.step checker;
  Alcotest.(check int) "one probe per trigger, not one per property" 1 !probes;
  Checker.step checker;
  Alcotest.(check int) "still one probe per trigger" 2 !probes

let test_stateful_prop_advances_once () =
  (* a rising-edge detector shared by two properties must see each edge
     exactly once per trigger; double probing would eat the edge *)
  let signal = ref false in
  let checker = Checker.create ~name:"t" () in
  Checker.register_proposition checker
    (Proposition.rose "edge" (Proposition.make "sig" (fun () -> !signal)));
  Checker.add_property_text checker ~name:"p1" "F edge";
  Checker.add_property_text checker ~name:"p2" "F edge";
  signal := false;
  Checker.step checker;
  signal := true;
  Checker.step checker;
  check_verdict "p1 saw the edge" Verdict.True (Checker.verdict checker "p1");
  check_verdict "p2 saw the same edge" Verdict.True
    (Checker.verdict checker "p2")

let test_trace_sample_order () =
  let bus = Trace.create () in
  let sink, events = Trace.memory_sink () in
  Trace.attach bus sink;
  let checker = Checker.create ~trace:bus ~name:"t" () in
  List.iter
    (fun name -> Checker.register_sampler checker name (fun () -> true))
    [ "zeta"; "alpha"; "mid" ];
  Checker.add_property_text checker ~name:"p1" "G (zeta & mid)";
  Checker.add_property_text checker ~name:"p2" "G (alpha & mid)";
  Checker.step checker;
  let sampled =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Sample { prop; _ } -> Some prop
        | _ -> None)
      (events ())
  in
  Alcotest.(check (list string))
    "each proposition once per trigger, sorted by name"
    [ "alpha"; "mid"; "zeta" ] sampled

(* --- active-set stepping ------------------------------------------------- *)

let test_settled_property_skipped () =
  let probes = ref 0 in
  let a = ref false in
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "a" (fun () -> !a);
  Checker.register_sampler checker "only_p1" (fun () ->
      incr probes;
      false);
  Checker.add_property_text checker ~name:"p1" "F only_p1";
  Checker.add_property_text checker ~name:"p2" "F a";
  Alcotest.(check int) "both active" 2 (Checker.active_properties checker);
  Alcotest.(check (list string))
    "both supports sampled" [ "a"; "only_p1" ]
    (Checker.sampled_propositions checker);
  a := true;
  Checker.step checker;
  check_verdict "p2 settled" Verdict.True (Checker.verdict checker "p2");
  Alcotest.(check int) "p2 dropped from the plan" 1
    (Checker.active_properties checker);
  Alcotest.(check (list string))
    "a no longer sampled" [ "only_p1" ]
    (Checker.sampled_propositions checker);
  let before = !probes in
  Checker.step checker;
  Alcotest.(check int) "pending property still sampled" (before + 1) !probes;
  (* verdict bookkeeping must survive the skip *)
  check_verdict "settled verdict stable" Verdict.True
    (Checker.verdict checker "p2");
  Alcotest.(check (list string))
    "verdict order is insertion order" [ "p1"; "p2" ]
    (List.map fst (Checker.verdicts checker))

let test_all_settled_stops_sampling () =
  let probes = ref 0 in
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "a" (fun () ->
      incr probes;
      true);
  Checker.add_property_text checker ~name:"p" "F a";
  Checker.step checker;
  let before = !probes in
  Checker.step checker;
  Checker.step checker;
  Alcotest.(check int) "no probes once every monitor settled" before !probes;
  Alcotest.(check int) "empty active set" 0 (Checker.active_properties checker);
  Alcotest.(check int) "triggers still counted" 3 (Checker.steps checker)

let test_late_trace_publishes_final_verdict () =
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "a" (fun () -> true);
  Checker.add_property_text checker ~name:"p" "F a";
  Checker.step checker;
  check_verdict "settled untraced" Verdict.True (Checker.verdict checker "p");
  (* attach a bus after the monitor settled: the verdict is still owed *)
  let bus = Trace.create () in
  let sink, events = Trace.memory_sink () in
  Trace.attach bus sink;
  Checker.set_trace checker bus;
  Checker.step checker;
  Checker.step checker;
  let changes =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Verdict_change { property; verdict } -> Some (property, verdict)
        | _ -> None)
      (events ())
  in
  Alcotest.(check int) "published exactly once" 1 (List.length changes);
  Alcotest.(check int) "then dropped from the plan" 0
    (Checker.active_properties checker)

let test_reset_replays_identically () =
  let script =
    [ (false, false, false); (true, false, false); (false, true, true);
      (true, true, false); (false, false, true) ]
  in
  let checker, current =
    plan_checker_of
      [
        Sctc.Prop.parse_exn "G (a -> F[2] b)";
        Sctc.Prop.parse_exn "c U[3] b";
        Sctc.Prop.parse_exn "F (a & X c)";
      ]
  in
  let run () =
    List.concat_map
      (fun triple ->
        current := triple;
        Checker.step checker;
        List.map snd (Checker.verdicts checker))
      script
  in
  let first = run () in
  Checker.reset checker;
  let second = run () in
  Alcotest.(check int) "same length" (List.length first) (List.length second);
  List.iter2 (fun a b -> check_verdict "replay verdict" a b) first second

(* --- 4-domain transition-cache stress ------------------------------------ *)

(* Every domain steps the same property set over the same scripted
   stimulus; each populates its own domain-local transition cache while
   hash-consing formulas through the shared sharded table. The oracle is
   the uncached single-domain reference stepper. *)

let stress_formulas () =
  List.map Sctc.Prop.parse_exn
    [
      "G (a -> F[4] b)";
      "a U[6] (b | c)";
      "G[9] (a | !c)";
      "F[7] (a & X b)";
      "c R[5] (a | b)";
      "G (c -> X (b U[3] a))";
      "F (a & F[2] (b & F[2] c))";
      "G ((a & !b) -> F[5] (b | c))";
    ]

let stress_script rounds =
  (* deterministic LCG over the three propositions *)
  let state = ref 12345 in
  List.init rounds (fun _ ->
      state := ((!state * 1103515245) + 12347) land 0x3FFFFFFF;
      let bits = !state lsr 13 in
      (bits land 1 = 1, bits land 2 = 2, bits land 4 = 4))

let run_stress_checker formulas script =
  let checker, current = plan_checker_of formulas in
  List.concat_map
    (fun triple ->
      current := triple;
      Checker.step checker;
      List.map snd (Checker.verdicts checker))
    script

let test_four_domain_cache_stress () =
  let formulas = stress_formulas () in
  let script = stress_script 400 in
  let oracle =
    let per_formula =
      List.map (fun f -> Array.of_list (reference_verdicts f script)) formulas
    in
    List.concat_map
      (fun step -> List.map (fun v -> v.(step)) per_formula)
      (List.init (List.length script) (fun i -> i))
  in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> run_stress_checker formulas script))
  in
  let results = List.map Domain.join domains in
  List.iteri
    (fun d result ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d verdict count" d)
        (List.length oracle) (List.length result);
      List.iter2
        (fun expected got ->
          check_verdict (Printf.sprintf "domain %d verdict" d) expected got)
        oracle result)
    results;
  let stats = Transition_cache.stats () in
  Alcotest.(check bool)
    "the cache actually served transitions" true
    (stats.Transition_cache.hits > 0)

let () =
  Alcotest.run "trigger-plan"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_plan_matches_progression;
          QCheck_alcotest.to_alcotest qcheck_plan_multi_property;
        ] );
      ( "shared-samples",
        [
          Alcotest.test_case "shared proposition probed once" `Quick
            test_shared_prop_probed_once;
          Alcotest.test_case "stateful proposition advances once" `Quick
            test_stateful_prop_advances_once;
          Alcotest.test_case "sample trace order" `Quick test_trace_sample_order;
        ] );
      ( "active-set",
        [
          Alcotest.test_case "settled property skipped" `Quick
            test_settled_property_skipped;
          Alcotest.test_case "all settled stops sampling" `Quick
            test_all_settled_stops_sampling;
          Alcotest.test_case "late trace publishes final verdict" `Quick
            test_late_trace_publishes_final_verdict;
          Alcotest.test_case "reset replays identically" `Quick
            test_reset_replays_identically;
        ] );
      ( "transition-cache",
        [
          Alcotest.test_case "4-domain stress vs single-domain oracle" `Quick
            test_four_domain_cache_stress;
        ] );
    ]
