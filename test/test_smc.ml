(* The deterministic statistical test battery for lib/smc.

   Every check here is reproducible: closed-form bounds are asserted
   exactly, sampled checks draw their Bernoulli streams from fixed
   Stimuli.Prng seeds (never the global Random state), and the QCheck
   property holds for *any* generated input up to an SPRT error
   probability pinned at 1e-6 — far below one expected flake over the
   repository's lifetime. The runner tests use synthetic campaign jobs
   with scripted verdicts, so the statistics are exact; one quick
   end-to-end case (and a TCHECK_SOAK=1 soak) runs the real
   fault-injected EEE campaigns. *)

module Estimator = Smc.Estimator
module Chernoff = Smc.Estimator.Chernoff
module Sprt = Smc.Estimator.Sprt
module Faults = Smc.Faults
module Runner = Smc.Runner
module Campaign = Verif.Campaign
module Prng = Stimuli.Prng
module Flash = Dataflash.Flash
module Harness = Eee.Harness

(* ---- Chernoff-Hoeffding: the closed-form bound --------------------------- *)

let test_chernoff_exact () =
  (* ceil (ln(2/delta) / (2 eps^2)) at the two parameter points the
     front end documents *)
  Alcotest.(check int) "N(eps=0.05, delta=0.01)" 1060
    (Chernoff.sample_count ~eps:0.05 ~delta:0.01);
  Alcotest.(check int) "N(eps=0.1, delta=0.05)" 185
    (Chernoff.sample_count ~eps:0.1 ~delta:0.05);
  Alcotest.(check int) "N(eps=0.15, delta=0.2)" 52
    (Chernoff.sample_count ~eps:0.15 ~delta:0.2);
  (* tightening either knob can only demand more samples *)
  Alcotest.(check bool) "monotone in eps" true
    (Chernoff.sample_count ~eps:0.01 ~delta:0.05
    > Chernoff.sample_count ~eps:0.05 ~delta:0.05);
  Alcotest.(check bool) "monotone in delta" true
    (Chernoff.sample_count ~eps:0.05 ~delta:0.001
    > Chernoff.sample_count ~eps:0.05 ~delta:0.05)

let expect_invalid name thunk =
  match thunk () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_chernoff_validation () =
  expect_invalid "eps = 0" (fun () ->
      Chernoff.sample_count ~eps:0.0 ~delta:0.5);
  expect_invalid "eps = 1" (fun () ->
      Chernoff.sample_count ~eps:1.0 ~delta:0.5);
  expect_invalid "delta = 0" (fun () ->
      Chernoff.sample_count ~eps:0.5 ~delta:0.0);
  expect_invalid "too few samples" (fun () ->
      Chernoff.estimate ~eps:0.1 ~delta:0.05 ~samples:184 ~successes:100);
  expect_invalid "successes out of range" (fun () ->
      Chernoff.estimate ~eps:0.1 ~delta:0.05 ~samples:185 ~successes:186)

(* fixed-seed Bernoulli oracle: the estimate lands within eps of the
   true p — the statement the bound makes, checked on pinned streams *)
let test_fixed_seed_estimate_within_eps () =
  let eps = 0.05 and delta = 0.01 in
  let samples = Chernoff.sample_count ~eps ~delta in
  List.iter
    (fun (seed, p) ->
      let stream = Prng.create ~seed in
      let successes = ref 0 in
      for _ = 1 to samples do
        if Prng.chance stream p then incr successes
      done;
      let estimate = Chernoff.estimate ~eps ~delta ~samples ~successes:!successes in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: |%.4f - %.2f| <= eps" seed
           estimate.Chernoff.p_hat p)
        true
        (Float.abs (estimate.Chernoff.p_hat -. p) <= eps))
    [ (11, 0.3); (12, 0.85); (13, 0.5) ]

(* ---- SPRT: boundaries, truncation, validation ---------------------------- *)

let drive_constant test value =
  let rec go n =
    match Sprt.observe test value with
    | Sprt.Undecided -> go (n + 1)
    | Sprt.Decided decision -> (decision, n + 1)
  in
  go 0

(* theta 0.5, delta 0.1, alpha = beta = 0.05: each step moves the walk
   ln(0.4/0.6) = -0.405; the H0 boundary ln(0.05/0.95) = -2.944 is
   crossed on exactly the 8th consecutive success (symmetrically for
   failures and H1) *)
let test_sprt_boundaries () =
  let make () = Sprt.create ~theta:0.5 ~delta:0.1 ~alpha:0.05 ~beta:0.05 () in
  let test = make () in
  let decision, samples = drive_constant test true in
  Alcotest.(check bool) "all successes accept H0" true (decision = Sprt.H0);
  Alcotest.(check int) "H0 on the 8th success" 8 samples;
  Alcotest.(check bool) "not forced" false (Sprt.forced test);
  Alcotest.(check int) "samples recorded" 8 (Sprt.samples test);
  Alcotest.(check int) "successes recorded" 8 (Sprt.successes test);
  let test = make () in
  let decision, samples = drive_constant test false in
  Alcotest.(check bool) "all failures accept H1" true (decision = Sprt.H1);
  Alcotest.(check int) "H1 on the 8th failure" 8 samples;
  Alcotest.(check (float 1e-9)) "p_hat" 0.0 (Sprt.p_hat test)

let test_sprt_truncation_forces_decision () =
  let test =
    Sprt.create ~max_samples:1 ~theta:0.5 ~delta:0.1 ~alpha:0.05 ~beta:0.05 ()
  in
  (match Sprt.observe test true with
  | Sprt.Decided Sprt.H0 -> ()
  | _ -> Alcotest.fail "truncated success must force H0 (p_hat >= theta)");
  Alcotest.(check bool) "decision flagged as forced" true (Sprt.forced test);
  expect_invalid "observe after decision" (fun () -> Sprt.observe test true)

let test_sprt_validation () =
  expect_invalid "theta - delta <= 0" (fun () ->
      Sprt.create ~theta:0.05 ~delta:0.1 ~alpha:0.05 ~beta:0.05 ());
  expect_invalid "theta + delta >= 1" (fun () ->
      Sprt.create ~theta:0.95 ~delta:0.1 ~alpha:0.05 ~beta:0.05 ());
  expect_invalid "alpha out of range" (fun () ->
      Sprt.create ~theta:0.5 ~delta:0.1 ~alpha:0.0 ~beta:0.05 ());
  expect_invalid "max_samples < 1" (fun () ->
      Sprt.create ~max_samples:0 ~theta:0.5 ~delta:0.1 ~alpha:0.05 ~beta:0.05 ())

(* the indifference region: with the true p exactly at theta neither
   boundary attracts, and the truncation bound guarantees termination *)
let test_indifference_region_terminates () =
  let theta = 0.5 and delta = 0.05 in
  let test = Sprt.create ~theta ~delta ~alpha:0.05 ~beta:0.05 () in
  Alcotest.(check int) "default truncation = Chernoff bound"
    (Sprt.chernoff_bound ~delta ~alpha:0.05 ~beta:0.05)
    (Sprt.max_samples test);
  let stream = Prng.create ~seed:17 in
  let rec drive n =
    match Sprt.observe test (Prng.chance stream theta) with
    | Sprt.Undecided -> drive (n + 1)
    | Sprt.Decided _ -> n + 1
  in
  let samples = drive 0 in
  Alcotest.(check bool) "terminates within the truncation bound" true
    (samples <= Sprt.max_samples test);
  Alcotest.(check int) "sample counter agrees" samples (Sprt.samples test)

(* the headline economics on a pinned stream: a clear-cut p decides in a
   small fraction of the fixed-size bound *)
let test_sprt_beats_chernoff_bound () =
  let delta = 0.1 and alpha = 0.05 and beta = 0.05 in
  let bound = Sprt.chernoff_bound ~delta ~alpha ~beta in
  Alcotest.(check int) "fixed-size competitor" 185 bound;
  let test = Sprt.create ~theta:0.5 ~delta ~alpha ~beta () in
  let stream = Prng.create ~seed:42 in
  let rec drive () =
    match Sprt.observe test (Prng.chance stream 0.95) with
    | Sprt.Undecided -> drive ()
    | Sprt.Decided decision -> decision
  in
  Alcotest.(check bool) "p = 0.95 accepts H0" true (drive () = Sprt.H0);
  Alcotest.(check bool) "no truncation" false (Sprt.forced test);
  Alcotest.(check bool)
    (Printf.sprintf "%d samples, under a quarter of the bound"
       (Sprt.samples test))
    true
    (Sprt.samples test * 4 < bound)

(* for ANY p at least 2*delta from theta, the SPRT sides with the truth;
   alpha = beta = 1e-6 makes the per-case error probability negligible,
   so the property is deterministic for test purposes *)
let qcheck_sprt_agrees_with_truth =
  QCheck.Test.make ~count:40
    ~name:"SPRT decision matches the true side when |p - theta| >= 2*delta"
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 100_000))
    (fun (theta_pick, margin_pick, seed) ->
      let delta = 0.05 in
      let theta = 0.15 +. (0.70 *. float_of_int theta_pick /. 1000.0) in
      let margin =
        (2.0 *. delta) +. (0.05 *. float_of_int margin_pick /. 1000.0)
      in
      let above = seed mod 2 = 0 in
      let p =
        if above then min 0.995 (theta +. margin)
        else max 0.005 (theta -. margin)
      in
      let test = Sprt.create ~theta ~delta ~alpha:1e-6 ~beta:1e-6 () in
      let stream = Prng.create ~seed in
      let rec drive () =
        match Sprt.observe test (Prng.chance stream p) with
        | Sprt.Undecided -> drive ()
        | Sprt.Decided decision -> decision
      in
      let decision = drive () in
      Sprt.samples test <= Sprt.max_samples test
      && decision = (if p >= theta then Sprt.H0 else Sprt.H1))

(* ---- fault knob parsing -------------------------------------------------- *)

let faults_testable =
  Alcotest.testable
    (fun fmt faults -> Format.pp_print_string fmt (Faults.to_string faults))
    ( = )

let test_faults_parsing () =
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  (match Faults.of_specs [ "decay=0.1"; "power-loss=0.2"; "jitter=0.3:5" ] with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok faults ->
    Alcotest.check faults_testable "all three knobs"
      { Faults.decay = 0.1; power_loss = 0.2; jitter_prob = 0.3; jitter_max = 5 }
      faults;
    Alcotest.(check bool) "not none" false (Faults.is_none faults);
    Alcotest.(check string) "round trip" "decay=0.1,power-loss=0.2,jitter=0.3:5"
      (Faults.to_string faults));
  Alcotest.(check string) "none renders as none" "none"
    (Faults.to_string Faults.none);
  List.iter
    (fun spec ->
      match Faults.of_specs [ spec ] with
      | Ok _ -> Alcotest.failf "%s: expected a parse error" spec
      | Error _ -> ())
    [ "decay=2.0"; "decay=x"; "power-loss=-0.1"; "jitter=0.1"; "jitter=0.1:0";
      "bogus=1"; "decay" ]

(* ---- flash fault injection ----------------------------------------------- *)

let tiny_flash ?faults ~seed () =
  Flash.create ~prng:(Prng.create ~seed) ?faults
    {
      Flash.num_blocks = 1;
      words_per_block = 4;
      erase_ticks = 2;
      write_ticks = 1;
      write_fail_prob = 0.0;
      erase_fail_prob = 0.0;
    }

let settle flash =
  while Flash.status flash = Flash.Busy do
    Flash.tick flash
  done

let test_flash_power_loss_tears_write () =
  let flash =
    tiny_flash ~faults:{ Flash.decay_prob = 0.0; power_loss_prob = 1.0 }
      ~seed:3 ()
  in
  (match Flash.start_write flash ~addr:0 ~value:0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write must be accepted");
  settle flash;
  Alcotest.(check bool) "device lands in Fault" true
    (Flash.status flash = Flash.Fault);
  Alcotest.(check int) "power loss counted" 1
    (Flash.power_losses_injected flash);
  Alcotest.(check int) "fault counted" 1 (Flash.faults_injected flash)

let test_flash_decay_flips_programmed_bits () =
  let flash =
    tiny_flash ~faults:{ Flash.decay_prob = 1.0; power_loss_prob = 0.0 }
      ~seed:5 ()
  in
  (match Flash.start_write flash ~addr:0 ~value:0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write must be accepted");
  settle flash;
  Alcotest.(check int) "programmed clean" 0 (Flash.read_word flash 0);
  (* every tick draws a decay site; erased cells never decay, so with
     one programmed word among four the seed-5 stream lands on it well
     within 64 ticks *)
  for _ = 1 to 64 do
    Flash.tick flash
  done;
  Alcotest.(check bool) "decays recorded" true (Flash.decays_injected flash > 0);
  Alcotest.(check bool) "a programmed bit relaxed toward erased" true
    (Flash.read_word flash 0 <> 0);
  Alcotest.(check bool) "no fault status from silent decay" true
    (Flash.status flash = Flash.Ready)

let test_flash_zero_rates_draw_nothing () =
  (* a zero-probability overlay must be indistinguishable from no
     overlay at all — same cells, same statistics, same status *)
  let noisy =
    tiny_flash ~faults:{ Flash.decay_prob = 0.0; power_loss_prob = 0.0 }
      ~seed:7 ()
  and plain = tiny_flash ~seed:7 () in
  List.iter
    (fun flash ->
      (match Flash.start_write flash ~addr:1 ~value:0x1234 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write must be accepted");
      for _ = 1 to 16 do
        Flash.tick flash
      done)
    [ noisy; plain ];
  Alcotest.(check int) "identical cell"
    (Flash.read_word plain 1) (Flash.read_word noisy 1);
  Alcotest.(check int) "no decays" 0 (Flash.decays_injected noisy);
  Alcotest.(check int) "no power losses" 0 (Flash.power_losses_injected noisy)

(* ---- Runner over synthetic jobs ------------------------------------------ *)

let synthetic_result ~ok =
  {
    Verif.Result.backend = "synthetic";
    properties =
      [
        {
          Verif.Result.property = "p";
          verdict = (if ok then Verdict.True else Verdict.False);
          first_final_at = None;
        };
      ];
    triggers = 0;
    time_units = 0;
    vt_seconds = 0.0;
    synthesis_seconds = 0.0;
    test_cases = None;
    timeouts = 0;
    coverage = None;
    trace_events = 0;
  }

let synthetic_job ~index ok =
  Campaign.job ~label:(Printf.sprintf "synthetic-%d" index) (fun _trace ->
      synthetic_result ~ok)

let succeeded (outcome : Campaign.outcome) =
  match outcome.Campaign.result with
  | Error _ -> false
  | Ok result ->
    not (Verdict.equal (Verif.Result.overall result) Verdict.False)

let decision_testable =
  Alcotest.testable Runner.pp_decision (fun a b -> a = b)

let test_runner_fixed_exact () =
  let report =
    Runner.run ~workers:2 ~label:"fixed"
      ~job:(fun ~index -> synthetic_job ~index (index mod 3 <> 0))
      ~succeeded
      (Runner.Fixed { eps = 0.15; delta = 0.2 })
  in
  Alcotest.(check int) "samples = Chernoff N" 52 report.Runner.samples;
  Alcotest.(check int) "chernoff_n echoes it" 52 report.Runner.chernoff_n;
  (* indices 0..51 divisible by 3: 18 scripted failures *)
  Alcotest.(check int) "successes" 34 report.Runner.successes;
  Alcotest.(check (float 1e-9)) "p_hat" (34.0 /. 52.0) report.Runner.p_hat;
  Alcotest.check decision_testable "decision" Runner.Estimate
    report.Runner.decision;
  Alcotest.(check bool) "not early stopped" false report.Runner.early_stopped;
  Alcotest.(check (list (pair string string))) "no errors" []
    report.Runner.errors;
  match report.Runner.stream with
  | None -> Alcotest.fail "stream stats missing"
  | Some stats ->
    Alcotest.(check int) "nothing cancelled" 0 stats.Campaign.cancelled_jobs;
    Alcotest.(check int) "every sample emitted" 52 stats.Campaign.emitted

(* workers=1 makes the sequential runner fully deterministic: the inline
   pool checks cancellation before each job, so exactly [samples] jobs
   execute and the rest are cancelled *)
let test_runner_sequential_h0_cancels_rest () =
  let report =
    Runner.run ~workers:1 ~label:"seq-h0"
      ~job:(fun ~index -> synthetic_job ~index true)
      ~succeeded
      (Runner.Sequential
         { theta = 0.5; delta = 0.1; alpha = 0.05; beta = 0.05;
           max_samples = None })
  in
  Alcotest.check decision_testable "decision" Runner.Accept_h0
    report.Runner.decision;
  Alcotest.(check int) "decided on the 8th sample" 8 report.Runner.samples;
  Alcotest.(check int) "chernoff_n" 185 report.Runner.chernoff_n;
  Alcotest.(check bool) "early stopped" true report.Runner.early_stopped;
  Alcotest.(check bool) "not forced" false report.Runner.forced;
  match report.Runner.stream with
  | None -> Alcotest.fail "stream stats missing"
  | Some stats ->
    Alcotest.(check int) "8 executed, 177 cancelled" 177
      stats.Campaign.cancelled_jobs;
    Alcotest.(check int) "emitted = executed" 8 stats.Campaign.emitted

let test_runner_sequential_h1 () =
  let report =
    Runner.run ~workers:1 ~label:"seq-h1"
      ~job:(fun ~index -> synthetic_job ~index false)
      ~succeeded
      (Runner.Sequential
         { theta = 0.5; delta = 0.1; alpha = 0.05; beta = 0.05;
           max_samples = None })
  in
  Alcotest.check decision_testable "decision" Runner.Accept_h1
    report.Runner.decision;
  Alcotest.(check int) "decided on the 8th sample" 8 report.Runner.samples;
  Alcotest.(check int) "no successes" 0 report.Runner.successes

let test_runner_counts_crashes_as_failures () =
  let report =
    Runner.run ~workers:1 ~label:"crashy"
      ~job:(fun ~index ->
        if index = 2 then
          Campaign.job ~label:"boom-2" (fun _trace -> failwith "boom")
        else synthetic_job ~index true)
      ~succeeded
      (Runner.Fixed { eps = 0.4; delta = 0.4 })
  in
  Alcotest.(check int) "small fixed N" 6 report.Runner.samples;
  Alcotest.(check int) "crash counted as failure" 5 report.Runner.successes;
  Alcotest.(check (list (pair string string))) "crash surfaces in errors"
    [ ("boom-2", "Failure(\"boom\")") ]
    report.Runner.errors

(* the resurfacing contract end to end: a failing user sink aborts the
   run with the sink's Failure even though the sequential test decides
   and cancels first *)
let test_runner_sink_failure_resurfaces () =
  let bomb =
    Campaign.sink (fun outcome ->
        if outcome.Campaign.index = 0 then failwith "smc sink bomb")
  in
  match
    Runner.run ~workers:1 ~sinks:[ bomb ] ~label:"sink-bomb"
      ~job:(fun ~index -> synthetic_job ~index true)
      ~succeeded
      (Runner.Sequential
         { theta = 0.5; delta = 0.1; alpha = 0.05; beta = 0.05;
           max_samples = None })
  with
  | _report -> Alcotest.fail "sink failure must resurface as Failure"
  | exception Failure msg ->
    let contains needle =
      let n = String.length needle and h = String.length msg in
      let rec at i =
        i + n <= h && (String.sub msg i n = needle || at (i + 1))
      in
      at 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "failure names the sink: %s" msg)
      true
      (contains "sink failed" && contains "smc sink bomb")

(* ---- end to end over the real fault-injected EEE campaigns --------------- *)

let eee_plan ~op ~bound ~faults ~seed =
  {
    Harness.default_plan with
    Harness.ops = [ op ];
    approaches = [ 2 ];
    cases_per_op = 1;
    bound;
    fault_rate = 0.02;
    faults;
    flash = Some (Harness.flash_quick_config ~fault_rate:0.02);
    seed;
  }

let run_eee ~workers ~plan ~op spec =
  Runner.run ~workers ~label:"test-smc"
    ~job:(fun ~index -> Harness.smc_sample_job plan ~approach:2 ~op ~index)
    ~succeeded:(Harness.smc_succeeded ?prop:None)
    spec

(* the acceptance scenario: under light faults the Read response
   property holds nearly always, so the SPRT accepts H0 against
   theta = 0.5 in a handful of samples — far below the fixed-size
   bound of 185 *)
let test_eee_sprt_early_stops () =
  let plan =
    eee_plan ~op:Eee.Eee_spec.Read ~bound:None
      ~faults:{ Faults.none with Faults.decay = 0.0005; power_loss = 0.05 }
      ~seed:7
  in
  let report =
    run_eee ~workers:2 ~plan ~op:Eee.Eee_spec.Read
      (Runner.Sequential
         { theta = 0.5; delta = 0.1; alpha = 0.05; beta = 0.05;
           max_samples = None })
  in
  Alcotest.check decision_testable "H0 accepted" Runner.Accept_h0
    report.Runner.decision;
  Alcotest.(check (list (pair string string))) "no sample errors" []
    report.Runner.errors;
  Alcotest.(check bool) "early stopped" true report.Runner.early_stopped;
  Alcotest.(check bool)
    (Printf.sprintf "%d samples, under a quarter of the %d bound"
       report.Runner.samples report.Runner.chernoff_n)
    true
    (report.Runner.samples * 4 < report.Runner.chernoff_n)

(* TCHECK_SOAK=1: the full statistical picture on real campaigns — a
   failing scenario decided H1 sequentially, then estimated fixed-size,
   with the sequential cost strictly below the fixed-size bound *)
let soak_eee_statistics () =
  let faults = { Faults.none with Faults.power_loss = 0.4 } in
  let plan =
    eee_plan ~op:Eee.Eee_spec.Write ~bound:(Some 50) ~faults ~seed:31
  in
  let sequential =
    run_eee ~workers:2 ~plan ~op:Eee.Eee_spec.Write
      (Runner.Sequential
         { theta = 0.8; delta = 0.05; alpha = 0.05; beta = 0.05;
           max_samples = None })
  in
  Alcotest.check decision_testable "torn writes blow the 50-statement bound"
    Runner.Accept_h1 sequential.Runner.decision;
  Alcotest.(check (list (pair string string))) "no sequential errors" []
    sequential.Runner.errors;
  Alcotest.(check bool) "sequential cost below the fixed-size bound" true
    (sequential.Runner.samples < sequential.Runner.chernoff_n);
  let fixed =
    run_eee ~workers:2 ~plan ~op:Eee.Eee_spec.Write
      (Runner.Fixed { eps = 0.1; delta = 0.05 })
  in
  Alcotest.(check int) "fixed-size campaign draws the full bound" 185
    fixed.Runner.samples;
  Alcotest.(check (list (pair string string))) "no fixed errors" []
    fixed.Runner.errors;
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f confirms H1 (below theta - delta)"
       fixed.Runner.p_hat)
    true
    (fixed.Runner.p_hat < 0.75)

let soak_enabled () = Sys.getenv_opt "TCHECK_SOAK" = Some "1"

let () =
  let soak_cases =
    if soak_enabled () then
      [
        Alcotest.test_case "H1 + fixed estimate on real campaigns" `Slow
          soak_eee_statistics;
      ]
    else []
  in
  Alcotest.run "smc"
    [
      ( "chernoff",
        [
          Alcotest.test_case "closed-form sample counts" `Quick
            test_chernoff_exact;
          Alcotest.test_case "parameter validation" `Quick
            test_chernoff_validation;
          Alcotest.test_case "fixed-seed estimate within eps" `Quick
            test_fixed_seed_estimate_within_eps;
        ] );
      ( "sprt",
        [
          Alcotest.test_case "Wald boundaries, exact sample counts" `Quick
            test_sprt_boundaries;
          Alcotest.test_case "truncation forces a flagged decision" `Quick
            test_sprt_truncation_forces_decision;
          Alcotest.test_case "parameter validation" `Quick
            test_sprt_validation;
          Alcotest.test_case "indifference region terminates" `Quick
            test_indifference_region_terminates;
          Alcotest.test_case "early stop beats the Chernoff bound" `Quick
            test_sprt_beats_chernoff_bound;
          QCheck_alcotest.to_alcotest qcheck_sprt_agrees_with_truth;
        ] );
      ( "faults",
        [
          Alcotest.test_case "knob parsing and round trips" `Quick
            test_faults_parsing;
          Alcotest.test_case "power loss tears a write" `Quick
            test_flash_power_loss_tears_write;
          Alcotest.test_case "bit decay relaxes programmed cells" `Quick
            test_flash_decay_flips_programmed_bits;
          Alcotest.test_case "zero rates draw nothing" `Quick
            test_flash_zero_rates_draw_nothing;
        ] );
      ( "runner",
        [
          Alcotest.test_case "fixed-size campaign, exact statistics" `Quick
            test_runner_fixed_exact;
          Alcotest.test_case "sequential H0 cancels the remainder" `Quick
            test_runner_sequential_h0_cancels_rest;
          Alcotest.test_case "sequential H1" `Quick test_runner_sequential_h1;
          Alcotest.test_case "crashed samples count as failures" `Quick
            test_runner_counts_crashes_as_failures;
          Alcotest.test_case "sink failure resurfaces despite cancel" `Quick
            test_runner_sink_failure_resurfaces;
        ] );
      ( "eee",
        Alcotest.test_case "SPRT early-stops on the real campaign" `Quick
          test_eee_sprt_early_stops
        :: soak_cases );
    ]
