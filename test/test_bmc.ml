(* Tests for the bounded model checker: AIG, bit-vector circuits (checked
   against Minic.Value), the CDCL SAT solver (checked against brute force),
   and end-to-end BMC including counterexample replay on the interpreter. *)

module B = Bmc
module Value = Minic.Value

(* --- aig -------------------------------------------------------------- *)

let test_aig_identities () =
  let g = Aig.create () in
  let a = Aig.fresh_input g "a" in
  let b = Aig.fresh_input g "b" in
  Alcotest.(check int) "and true" a (Aig.and_ g a Aig.true_);
  Alcotest.(check int) "and false" Aig.false_ (Aig.and_ g a Aig.false_);
  Alcotest.(check int) "idempotent" a (Aig.and_ g a a);
  Alcotest.(check int) "complement" Aig.false_ (Aig.and_ g a (Aig.neg a));
  Alcotest.(check int) "hash consed" (Aig.and_ g a b) (Aig.and_ g b a);
  Alcotest.(check int) "double negation" a (Aig.neg (Aig.neg a))

let test_aig_eval () =
  let g = Aig.create () in
  let a = Aig.fresh_input g "a" in
  let b = Aig.fresh_input g "b" in
  let f = Aig.xor_ g a b in
  let eval va vb =
    Aig.eval g ~assignment:(fun l -> if l = a then va else vb) f
  in
  Alcotest.(check bool) "xor ft" true (eval false true);
  Alcotest.(check bool) "xor tt" false (eval true true);
  Alcotest.(check bool) "xor ff" false (eval false false)

(* --- bitvec: constant folding must equal Value ------------------------- *)

let gen_int32 = QCheck.map Value.wrap QCheck.int

let qcheck_bitvec_constfold =
  QCheck.Test.make ~name:"bitvec on constants == Value" ~count:300
    QCheck.(pair gen_int32 gen_int32)
    (fun (x, y) ->
      let g = Aig.create () in
      let bx = Bitvec.const x and by = Bitvec.const y in
      let check op_bv op_val =
        Bitvec.to_const (op_bv g bx by) = Some (op_val x y)
      in
      check Bitvec.add Value.add
      && check Bitvec.sub Value.sub
      && check Bitvec.mul Value.mul
      && check Bitvec.logand Value.logand
      && check Bitvec.logor Value.logor
      && check Bitvec.logxor Value.logxor
      && check Bitvec.shift_left Value.shift_left
      && check Bitvec.shift_right_arith Value.shift_right
      && check Bitvec.shift_right_logical Value.shift_right_logical
      && Aig.eval g ~assignment:(fun _ -> false) (Bitvec.lt_signed g bx by)
         = (x < y)
      && Aig.eval g ~assignment:(fun _ -> false) (Bitvec.eq g bx by) = (x = y))

let qcheck_bitvec_divrem =
  QCheck.Test.make ~name:"bitvec divrem == Value div/rem" ~count:150
    QCheck.(pair gen_int32 gen_int32)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      QCheck.assume (not (x = -2147483648 && y = -1));
      let g = Aig.create () in
      let q, r = Bitvec.divrem g (Bitvec.const x) (Bitvec.const y) in
      Bitvec.to_const q = Some (Value.div x y)
      && Bitvec.to_const r = Some (Value.rem x y))

let qcheck_bitvec_symbolic_eval =
  QCheck.Test.make ~name:"bitvec circuits evaluate correctly" ~count:100
    QCheck.(pair gen_int32 gen_int32)
    (fun (x, y) ->
      let g = Aig.create () in
      let bx = Bitvec.fresh g "x" and by = Bitvec.fresh g "y" in
      let assignment lit =
        (* inputs were created in order: x.0..x.31 then y.0..y.31 *)
        match Aig.input_name g lit with
        | Some name ->
          let value = if name.[0] = 'x' then x else y in
          let bit =
            int_of_string (String.sub name 2 (String.length name - 2))
          in
          (value lsr bit) land 1 = 1
        | None -> false
      in
      let check circuit expected =
        Bitvec.eval g ~assignment circuit = expected
      in
      check (Bitvec.add g bx by) (Value.add x y)
      && check (Bitvec.mul g bx by) (Value.mul x y)
      && check (Bitvec.shift_left g bx by) (Value.shift_left x y)
      && check
           (Bitvec.mux g (Bitvec.lt_signed g bx by) bx by)
           (if x < y then x else y))

(* --- sat ----------------------------------------------------------------- *)

let solve clauses num_vars =
  fst (Sat.solve ~num_vars clauses)

let test_sat_trivial () =
  (match solve [] 2 with
  | Sat.Sat _ -> ()
  | _ -> Alcotest.fail "empty instance is sat");
  (match solve [ [| 1 |]; [| -1 |] ] 1 with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "unit conflict is unsat");
  match solve [ [| 1; 2 |]; [| -1; 2 |]; [| -2; 3 |] ] 3 with
  | Sat.Sat model ->
    Alcotest.(check bool) "2 then 3" true (model.(2) && model.(3))
  | _ -> Alcotest.fail "expected sat"

let test_sat_pigeonhole () =
  (* 4 pigeons, 3 holes: unsat; var p(i,h) = 3*i + h + 1 *)
  let var i h = (3 * i) + h + 1 in
  let clauses = ref [] in
  for i = 0 to 3 do
    clauses := [| var i 0; var i 1; var i 2 |] :: !clauses
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        clauses := [| -var i h; -var j h |] :: !clauses
      done
    done
  done;
  match solve !clauses 12 with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole must be unsat"

let brute_force clauses num_vars =
  let satisfied assignment =
    List.for_all
      (fun clause ->
        Array.exists
          (fun lit ->
            let v = abs lit in
            if lit > 0 then (assignment lsr v) land 1 = 1
            else (assignment lsr v) land 1 = 0)
          clause)
      clauses
  in
  let rec search assignment =
    if assignment >= 1 lsl (num_vars + 1) then None
    else if satisfied assignment then Some assignment
    else search (assignment + 2)
  in
  search 0

let qcheck_sat_vs_bruteforce =
  let gen =
    QCheck.Gen.(
      let num_vars = int_range 3 10 in
      num_vars >>= fun n ->
      let lit = map (fun (v, s) -> if s then v + 1 else -(v + 1))
          (pair (int_bound (n - 1)) bool) in
      let clause = map Array.of_list (list_size (int_range 1 3) lit) in
      map (fun cs -> (n, cs)) (list_size (int_range 1 25) clause))
  in
  QCheck.Test.make ~name:"cdcl == brute force" ~count:300
    (QCheck.make
       ~print:(fun (n, cs) ->
         Printf.sprintf "%d vars, clauses: %s" n
           (String.concat " "
              (List.map
                 (fun c ->
                   "("
                   ^ String.concat "|" (Array.to_list (Array.map string_of_int c))
                   ^ ")")
                 cs)))
       gen)
    (fun (num_vars, clauses) ->
      let reference = brute_force clauses num_vars in
      match solve clauses num_vars with
      | Sat.Sat model ->
        (* model must actually satisfy all clauses *)
        reference <> None
        && List.for_all
             (fun clause ->
               Array.exists
                 (fun lit ->
                   if lit > 0 then model.(lit) else not model.(-lit))
                 clause)
             clauses
      | Sat.Unsat -> reference = None
      | Sat.Timeout -> false)

(* --- bmc end-to-end -------------------------------------------------------- *)

let info_of source = Minic.Typecheck.check (Minic.C_parser.parse source)

let check ?unwind ?timeout_seconds source =
  B.check ?unwind ?timeout_seconds (info_of source)

let test_bmc_safe_program () =
  let report =
    check
      {|
        int main(void) {
          int x = nondet(0, 100);
          int y = x * 2;
          assert(y >= x);
          assert(y <= 200);
          return 0;
        }
      |}
  in
  match report.B.result with
  | B.Safe { complete = true } -> ()
  | _ -> Alcotest.fail "expected complete safe"

let test_bmc_finds_violation_and_witness () =
  let source =
    {|
      int main(void) {
        int x = nondet(0, 1000);
        int y = nondet(0, 1000);
        if (x + y == 1337) {
          assert(x != 637);
        }
        return 0;
      }
    |}
  in
  let report = check source in
  match report.B.result with
  | B.Unsafe cex ->
    Alcotest.(check string) "assertion violated" "assertion" cex.B.violated;
    (* replay the witness on the interpreter: it must hit the assertion *)
    let inputs = ref (List.map snd cex.B.input_values) in
    let hooks =
      {
        (Minic.Interp.default_hooks ()) with
        Minic.Interp.nondet =
          (fun ~lo:_ ~hi:_ ->
            match !inputs with
            | v :: rest ->
              inputs := rest;
              v
            | [] -> Alcotest.fail "witness too short");
      }
    in
    let env = Minic.Interp.create (info_of source) in
    (match Minic.Interp.run env hooks ~entry:"main" with
    | exception Minic.Interp.Assertion_failed _ -> ()
    | _ -> Alcotest.fail "witness does not reproduce the violation")
  | _ -> Alcotest.fail "expected unsafe"

let test_bmc_unwinding_bound () =
  let source =
    {|
      int main(void) {
        int i;
        for (i = 0; i < 100; i++) {
          assert(i < 50);
        }
        return 0;
      }
    |}
  in
  (* bound too small: the violating iteration is cut away *)
  (match (check ~unwind:10 source).B.result with
  | B.Safe { complete = false } -> ()
  | _ -> Alcotest.fail "expected incomplete safe at unwind 10");
  (* large enough bound: violation found *)
  match (check ~unwind:120 source).B.result with
  | B.Unsafe _ -> ()
  | _ -> Alcotest.fail "expected unsafe at unwind 120"

let test_bmc_division_check () =
  let report =
    check
      {|
        int main(void) {
          int d = nondet(0, 10);
          return 100 / d;
        }
      |}
  in
  (match report.B.result with
  | B.Unsafe cex ->
    Alcotest.(check string) "division vc" "division by zero" cex.B.violated
  | _ -> Alcotest.fail "expected division-by-zero counterexample");
  (* assume excludes the zero divisor *)
  let report2 =
    check
      {|
        int main(void) {
          int d = nondet(0, 10);
          assume(d != 0);
          return 100 / d;
        }
      |}
  in
  match report2.B.result with
  | B.Safe _ -> ()
  | _ -> Alcotest.fail "expected safe with assumption"

let test_bmc_array_bounds () =
  let report =
    check
      {|
        int a[4];
        int main(void) {
          int i = nondet(0, 10);
          a[i] = 1;
          return 0;
        }
      |}
  in
  match report.B.result with
  | B.Unsafe cex ->
    Alcotest.(check bool) "bounds vc" true
      (String.length cex.B.violated > 0);
    (* witness index must actually be out of bounds *)
    (match cex.B.input_values with
    | [ (_, v) ] -> Alcotest.(check bool) "index oob" true (v > 3)
    | _ -> Alcotest.fail "one input expected")
  | _ -> Alcotest.fail "expected bounds counterexample"

let test_bmc_memory_model () =
  let report =
    check
      {|
        int main(void) {
          int a = nondet(0, 50);
          mem_write(0x100 + a, 77);
          assert(mem_read(0x100 + a) == 77);
          int other = mem_read(0x99);
          assert(other == 0);
          return 0;
        }
      |}
  in
  match report.B.result with
  | B.Safe _ -> ()
  | _ -> Alcotest.fail "memory round trip should be safe"

let test_bmc_function_calls_and_arrays () =
  let report =
    check
      {|
        const int N = 6;
        int data[N];
        void fill(int seed) {
          int i;
          for (i = 0; i < N; i++) { data[i] = seed + i; }
        }
        int total(void) {
          int i;
          int acc = 0;
          for (i = 0; i < N; i++) { acc += data[i]; }
          return acc;
        }
        int main(void) {
          int s = nondet(0, 10);
          fill(s);
          assert(total() == 6 * s + 15);
          return 0;
        }
      |}
  in
  match report.B.result with
  | B.Safe { complete = true } -> ()
  | _ -> Alcotest.fail "arithmetic identity should hold"

let test_bmc_switch_and_recursion () =
  let report =
    check
      {|
        int fib(int n) {
          if (n <= 1) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int classify(int v) {
          switch (v) {
          case 0: return 100;
          case 1: return 200;
          default: return 300;
          }
        }
        int main(void) {
          assert(fib(10) == 55);
          assert(classify(0) == 100);
          assert(classify(1) == 200);
          assert(classify(7) == 300);
          return 0;
        }
      |}
  in
  match report.B.result with
  | B.Safe _ -> ()
  | other ->
    ignore other;
    Alcotest.fail "fib/switch facts should hold"

let test_bmc_timeout () =
  let report =
    check ~unwind:100000 ~timeout_seconds:0.3
      {|
        int main(void) {
          int i;
          int acc = 1;
          for (i = 0; i < 1000000; i++) {
            acc = acc * 31 + i;
          }
          assert(acc != 0 || acc == 0);
          return 0;
        }
      |}
  in
  match report.B.result with
  | B.Out_of_time -> ()
  | _ -> Alcotest.fail "expected timeout while unwinding"

(* --- spec inlining ------------------------------------------------------------ *)

let spec_program sets_ack =
  Printf.sprintf
    {|
      int req;
      int ack;
      int main(void) {
        int i;
        for (i = 0; i < 12; i++) {
          if (i == 1) { req = 1; }
          if (i == 3) { ack = %d; }
        }
        return 0;
      }
    |}
    (if sets_ack then 1 else 0)

let instrumented sets_ack =
  Spec_inline.instrument
    ~property:(Sctc.Prop.parse_exn ~syntax:`Fltl "G (p_req -> F[10] p_ack)")
    ~predicates:[ ("p_req", "req == 1"); ("p_ack", "ack == 1") ]
    (info_of (spec_program sets_ack))

let test_spec_inline_violation () =
  (* never acks: the bounded response property must fail *)
  let report = B.check ~unwind:30 (instrumented false) in
  (match report.B.result with
  | B.Unsafe _ -> ()
  | _ -> Alcotest.fail "expected temporal violation");
  (* acks in time: safe *)
  let report2 = B.check ~unwind:30 (instrumented true) in
  match report2.B.result with
  | B.Safe _ -> ()
  | _ -> Alcotest.fail "expected temporal property to hold"

let test_spec_inline_reports_states () =
  let info = instrumented true in
  match Spec_inline.monitor_state_count info with
  | Some n -> Alcotest.(check bool) "states recorded" true (n > 3)
  | None -> Alcotest.fail "no monitor state count"

let test_spec_inline_agrees_with_interpreter () =
  (* the instrumented program's assertion fires on the interpreter too *)
  let info = instrumented false in
  let env = Minic.Interp.create info in
  match Minic.Interp.run env (Minic.Interp.default_hooks ()) ~entry:"main" with
  | exception Minic.Interp.Assertion_failed _ -> ()
  | _ -> Alcotest.fail "interpreter should also catch the violation"

let suite_aig =
  [
    Alcotest.test_case "identities" `Quick test_aig_identities;
    Alcotest.test_case "eval" `Quick test_aig_eval;
    QCheck_alcotest.to_alcotest qcheck_bitvec_constfold;
    QCheck_alcotest.to_alcotest qcheck_bitvec_divrem;
    QCheck_alcotest.to_alcotest qcheck_bitvec_symbolic_eval;
  ]

let suite_sat =
  [
    Alcotest.test_case "trivial" `Quick test_sat_trivial;
    Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
    QCheck_alcotest.to_alcotest qcheck_sat_vs_bruteforce;
  ]

let suite_bmc =
  [
    Alcotest.test_case "safe program" `Quick test_bmc_safe_program;
    Alcotest.test_case "violation with witness" `Quick
      test_bmc_finds_violation_and_witness;
    Alcotest.test_case "unwinding bound" `Quick test_bmc_unwinding_bound;
    Alcotest.test_case "division check" `Quick test_bmc_division_check;
    Alcotest.test_case "array bounds" `Quick test_bmc_array_bounds;
    Alcotest.test_case "memory model" `Quick test_bmc_memory_model;
    Alcotest.test_case "calls and arrays" `Quick
      test_bmc_function_calls_and_arrays;
    Alcotest.test_case "switch and recursion" `Quick
      test_bmc_switch_and_recursion;
    Alcotest.test_case "timeout" `Quick test_bmc_timeout;
  ]

let suite_spec =
  [
    Alcotest.test_case "temporal violation" `Quick test_spec_inline_violation;
    Alcotest.test_case "state count" `Quick test_spec_inline_reports_states;
    Alcotest.test_case "interpreter agreement" `Quick
      test_spec_inline_agrees_with_interpreter;
  ]

let () =
  Alcotest.run "bmc"
    [
      ("aig+bitvec", suite_aig);
      ("sat", suite_sat);
      ("bmc", suite_bmc);
      ("spec-inline", suite_spec);
    ]
