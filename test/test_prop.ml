(* Sctc.Prop is the single property-parsing entry point; these tests pin
   its contract: exact equivalence with the legacy per-syntax parsers
   (including every EEE case-study property), the auto-detection rule
   (PSL keywords flip, until/release do not), the structured error
   shape, and the checker's [Auto] text path.

   The legacy-equivalence tests below are the one place outside
   [Sctc.Prop] that may still call the deprecated [Fltl_parser.parse] /
   [Psl.parse] — they exist to compare against them. *)
[@@@alert "-deprecated"]

module Prop = Sctc.Prop

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let formula =
  Alcotest.testable (fun fmt f -> Format.pp_print_string fmt (Formula.to_string f))
    Formula.equal

(* ---- equivalence with the legacy entries -------------------------------- *)

let eee_property_texts () =
  List.concat_map
    (fun op ->
      [
        Eee.Eee_spec.property_text op;
        Eee.Eee_spec.property_text ~bound:1000 op;
      ])
    Eee.Eee_spec.all_ops

let test_fltl_equivalence () =
  List.iter
    (fun text ->
      Alcotest.check formula text (Fltl_parser.parse text)
        (Prop.parse_exn ~syntax:`Fltl text);
      (* the EEE texts use only core FLTL operators, so auto-detection
         must leave their meaning untouched *)
      Alcotest.check formula (text ^ " (auto)") (Fltl_parser.parse text)
        (Prop.parse_exn text))
    (eee_property_texts ()
    @ [ "G (a -> F[40] b)"; "a U[5] b"; "a R b"; "!a & (b | X c)" ])

let test_psl_equivalence () =
  List.iter
    (fun text ->
      Alcotest.check formula text (Psl.parse text)
        (Prop.parse_exn ~syntax:`Psl text))
    [
      "always (req -> eventually! ack)";
      "never fault";
      "next[3] done";
      "a until! b";
      "a until b";
      "a release b";
    ]

(* ---- auto-detection ------------------------------------------------------ *)

let test_auto_detection () =
  let detected text = Prop.detect_syntax text in
  check "always is PSL" true (detected "always (a -> b)" = `Psl);
  check "never is PSL" true (detected "never fault" = `Psl);
  check "eventually is PSL" true (detected "eventually! p" = `Psl);
  check "next is PSL" true (detected "next p" = `Psl);
  check "G/F/X are FLTL" true (detected "G (a -> F[5] b)" = `Fltl);
  (* until/release exist in both grammars with different strengths: they
     must not flip detection, so bare-word texts keep FLTL semantics *)
  check "until stays FLTL" true (detected "a until b" = `Fltl);
  check "release stays FLTL" true (detected "a release b" = `Fltl);
  Alcotest.check formula "auto until is the strong FLTL U"
    (Fltl_parser.parse "a until b")
    (Prop.parse_exn "a until b");
  check "garbage detects as FLTL" true (detected "a @ b" = `Fltl);
  Alcotest.check formula "auto picks PSL on keyword"
    (Psl.parse "always (a -> eventually! b)")
    (Prop.parse_exn "always (a -> eventually! b)")

(* ---- structured errors --------------------------------------------------- *)

let test_structured_errors () =
  (match Prop.parse "G (a -> " with
  | Ok _ -> Alcotest.fail "truncated property parsed"
  | Error e ->
    check_int "line" 1 e.Prop.line;
    check "column points past the arrow" true (e.Prop.col >= 8);
    check "message non-empty" true (e.Prop.message <> "");
    check_string "input preserved" "G (a -> " e.Prop.input;
    check "rendering carries position" true
      (String.length (Prop.error_to_string e) > 0
      && String.sub (Prop.error_to_string e) 0 2 = "1:"));
  (match Prop.parse "a @ b" with
  | Ok _ -> Alcotest.fail "lex error parsed"
  | Error e -> check_int "lex error column" 3 e.Prop.col);
  (match Prop.parse ~syntax:`Psl "always" with
  | Ok _ -> Alcotest.fail "bare keyword parsed"
  | Error _ -> ());
  check "parse_exn raises Parse_error" true
    (match Prop.parse_exn "G (" with
    | exception Prop.Parse_error _ -> true
    | _ -> false)

(* ---- the checker's text path --------------------------------------------- *)

let test_checker_auto_text () =
  let checker = Sctc.Checker.create ~name:"prop-test" () in
  Sctc.Checker.register_sampler checker "p" (fun () -> true);
  Sctc.Checker.register_sampler checker "q" (fun () -> true);
  Sctc.Checker.add_property_text ~syntax:Sctc.Checker.Auto checker ~name:"fltl"
    "G (p -> F q)";
  Sctc.Checker.add_property_text ~syntax:Sctc.Checker.Auto checker ~name:"psl"
    "always (p -> eventually! q)";
  Sctc.Checker.step checker;
  check "both properties monitored" true
    (List.length (Sctc.Checker.verdicts checker) = 2);
  check "malformed text raises Parse_error" true
    (match
       Sctc.Checker.add_property_text checker ~name:"bad" "G (p -> "
     with
    | exception Prop.Parse_error _ -> true
    | _ -> false);
  (* the bugfix companion: unknown names now raise a descriptive
     Invalid_argument instead of a bare Not_found *)
  let contains haystack needle =
    let h = String.length haystack and n = String.length needle in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check "unknown verdict name is descriptive" true
    (match Sctc.Checker.verdict checker "nope" with
    | exception Invalid_argument msg -> contains msg "fltl"
    | _ -> false)

let () =
  Alcotest.run "prop"
    [
      ( "equivalence",
        [
          Alcotest.test_case "FLTL (incl. EEE specs)" `Quick
            test_fltl_equivalence;
          Alcotest.test_case "PSL" `Quick test_psl_equivalence;
        ] );
      ("auto", [ Alcotest.test_case "detection rule" `Quick test_auto_detection ]);
      ( "errors",
        [ Alcotest.test_case "structured fields" `Quick test_structured_errors ]
      );
      ( "checker",
        [ Alcotest.test_case "add_property_text Auto" `Quick
            test_checker_auto_text ]
      );
    ]
