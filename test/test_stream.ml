(* The streaming-engine safety net. Verif.Campaign.run_stream must be
   observationally identical to the seed engine (Campaign.run, kept as
   the differential oracle): same verdict vectors, same per-job errors,
   same merged counters, and a JSONL sink must receive exactly the bytes
   of the oracle's end-of-run merge — for any worker count, chunk size
   and reassembly window, including windows far smaller than the job
   count. On top of identity, the streaming engine's own contracts are
   pinned here: strictly ordered emission with campaign-global seq,
   crash and sink-failure containment, a backpressure window that
   actually bounds parked outcomes (asserted against a stalled job),
   sharded output whose in-order concatenation reproduces the merged
   stream byte for byte against the checked-in goldens, and a soak run
   (TCHECK_SOAK=1) showing live memory stays bounded where the oracle's
   accumulation grows with the campaign. *)

module Campaign = Verif.Campaign
module Session = Verif.Session
module Trace = Verif.Trace
module Registry = Obs.Registry
module Harness = Eee.Harness

(* ---- the cheap deterministic job mix (see test_campaign.ml) ------------ *)

let source =
  {|
    int flag;
    int x;
    int finished;

    void main(void) {
      int i;
      flag = 1;
      for (i = 0; i < 8; i = i + 1) {
        x = x + 1;
      }
      finished = 1;
    }
  |}

let program_info = lazy (Minic.Typecheck.check (Minic.C_parser.parse source))

let session_job ~label ~backend ~properties =
  Campaign.job ~label (fun trace ->
      let config =
        {
          Session.default_config with
          Session.session_name = label;
          propositions =
            [ ("p_done", "finished == 1"); ("p_overflow", "x > 100") ];
          properties;
          bound = Some 100_000;
          flag = (match backend with Session.Soc_model -> Some "flag" | _ -> None);
          trace;
        }
      in
      let session =
        Session.create ~info:(Lazy.force program_info) config backend
      in
      Session.boot session;
      Session.run session;
      Session.result session)

(* job variants the generator draws from; Soc is the expensive one, so
   completion order under a pool differs from job order, and the crasher
   exercises error outcomes flowing through the reassembly buffer *)
let variant_count = 5

let job_of_variant index variant =
  let label kind = Printf.sprintf "%s-%d" kind index in
  match variant mod variant_count with
  | 0 ->
    session_job ~label:(label "ref") ~backend:Session.Reference
      ~properties:[ ("eventually_done", "F p_done") ]
  | 1 ->
    session_job ~label:(label "soc") ~backend:Session.Soc_model
      ~properties:
        [ ("never_overflow", "G !p_overflow"); ("not_yet_done", "G !p_done") ]
  | 2 ->
    session_job ~label:(label "esw") ~backend:Session.Derived_model
      ~properties:[ ("eventually_done", "F p_done") ]
  | 3 ->
    session_job ~label:(label "bounded") ~backend:Session.Derived_model
      ~properties:[ ("done_quickly", "F[500] p_done") ]
  | _ ->
    Campaign.job ~label:(label "crash") (fun _trace -> failwith "boom")

let make_jobs variants = List.mapi job_of_variant variants

let fixed_mix = [ 0; 1; 2; 3; 4; 0 ]

let counters summary =
  [
    Campaign.total_triggers summary;
    Campaign.total_time_units summary;
    Campaign.total_test_cases summary;
    Campaign.total_timeouts summary;
  ]

let verdict_strings summary =
  List.map
    (fun (job, prop, v) -> (job, prop, Verdict.to_string v))
    (Campaign.verdicts summary)

let crashes variants = List.length (List.filter (fun v -> v mod variant_count = 4) variants)

(* run the oracle and the streaming engine on the same job list and
   check every observable matches; returns the stream summary for
   engine-specific assertions on top *)
let check_identical ?(label = "") ~workers ?chunk ?window variants =
  let tag suffix =
    Printf.sprintf "%sworkers=%d window=%s: %s" label workers
      (match window with Some w -> string_of_int w | None -> "default")
      suffix
  in
  let oracle = Campaign.run ~workers:1 (make_jobs variants) in
  let metrics = Registry.create () in
  let buffer = Buffer.create 4096 in
  let stream =
    Campaign.run_stream ~metrics ~workers ?chunk ?window
      ~sinks:[ Campaign.jsonl_buffer_sink buffer ]
      (make_jobs variants)
  in
  let n = List.length variants in
  Alcotest.(check (list (triple string string string)))
    (tag "identical verdict vectors")
    (verdict_strings oracle) (verdict_strings stream);
  Alcotest.(check (list (pair string string)))
    (tag "identical job errors")
    (Campaign.errors oracle) (Campaign.errors stream);
  Alcotest.(check (list int))
    (tag "identical merged counters")
    (counters oracle) (counters stream);
  Alcotest.(check string)
    (tag "sink bytes == oracle to_jsonl")
    (Campaign.to_jsonl oracle) (Buffer.contents buffer);
  Alcotest.(check int)
    (tag "summary retains no events")
    0
    (List.length (Campaign.events stream));
  (match stream.Campaign.stream with
  | None -> Alcotest.fail (tag "stream stats missing")
  | Some stats ->
    Alcotest.(check int) (tag "every outcome emitted") n
      stats.Campaign.emitted;
    Alcotest.(check bool) (tag "peak within the window") true
      (stats.Campaign.peak_window <= stats.Campaign.window));
  Alcotest.(check int)
    (tag "campaign_jobs_total")
    n
    (Registry.total metrics "campaign_jobs_total");
  Alcotest.(check int)
    (tag "campaign_stream_emitted_total")
    n
    (Registry.total metrics "campaign_stream_emitted_total");
  Alcotest.(check int)
    (tag "campaign_job_errors_total")
    (crashes variants)
    (Registry.total metrics "campaign_job_errors_total");
  stream

(* ---- fixed differential across the acceptance worker counts ------------ *)

let test_stream_matches_seed () =
  List.iter
    (fun workers -> ignore (check_identical ~workers fixed_mix))
    [ 1; 2; 4; 7 ]

(* a window of 1 — maximum backpressure — must change scheduling only *)
let test_tiny_window_identity () =
  List.iter
    (fun workers ->
      ignore (check_identical ~workers ~chunk:1 ~window:1 fixed_mix))
    [ 2; 4; 7 ]

(* ---- QCheck: random mixes x pools x windows ----------------------------- *)

let qcheck_differential =
  QCheck.Test.make ~count:25
    ~name:"random job mix: stream == seed (verdicts, errors, bytes, obs)"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 10) (int_bound (variant_count - 1)))
        (int_bound 3) (int_bound 7))
    (fun (variants, workers_pick, window_pick) ->
      let workers = [| 1; 2; 4; 7 |].(workers_pick) in
      let window = 1 + window_pick in
      ignore
        (check_identical
           ~label:(Printf.sprintf "mix=%s "
                     (String.concat ""
                        (List.map string_of_int variants)))
           ~workers ~window variants);
      true)

(* ---- emission order and campaign-global seq ----------------------------- *)

let test_ordered_emission_and_seq () =
  let indices = ref [] in
  let seqs = ref [] in
  let recorder =
    Campaign.sink (fun outcome ->
        indices := outcome.Campaign.index :: !indices;
        List.iter
          (fun event -> seqs := event.Trace.seq :: !seqs)
          outcome.Campaign.events)
  in
  let summary =
    Campaign.run_stream ~workers:4 ~chunk:1 ~window:2 ~sinks:[ recorder ]
      (make_jobs fixed_mix)
  in
  let n = List.length fixed_mix in
  Alcotest.(check (list int)) "sinks see ascending job indices"
    (List.init n Fun.id) (List.rev !indices);
  let seqs = List.rev !seqs in
  Alcotest.(check bool) "stream carries events" true (List.length seqs > 0);
  List.iteri
    (fun expected seq ->
      if seq <> expected then
        Alcotest.failf "campaign-global seq: expected %d, got %d" expected seq)
    seqs;
  Alcotest.(check (list string)) "summary outcomes still in job order"
    (List.map (fun (j : Campaign.job) -> j.Campaign.label) (make_jobs fixed_mix))
    (List.map (fun o -> o.Campaign.label) summary.Campaign.outcomes)

(* ---- containment --------------------------------------------------------- *)

let test_crash_outcomes_flow_to_sinks () =
  let variants = [ 4; 0; 4; 0; 4 ] in
  let delivered = ref 0 in
  let errors_seen = ref 0 in
  let recorder =
    Campaign.sink (fun outcome ->
        incr delivered;
        match outcome.Campaign.result with
        | Error _ -> incr errors_seen
        | Ok _ -> ())
  in
  let summary =
    Campaign.run_stream ~workers:3 ~sinks:[ recorder ] (make_jobs variants)
  in
  Alcotest.(check int) "every outcome delivered, crashed or not" 5 !delivered;
  Alcotest.(check int) "crash outcomes flow through the stream" 3 !errors_seen;
  Alcotest.(check (list string)) "errors surface in job order"
    [ "crash-0"; "crash-2"; "crash-4" ]
    (List.map fst (Campaign.errors summary))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* a raising sink must not poison the pool: the campaign still runs every
   job, sink emission stops, and the failure resurfaces as a Failure once
   the campaign completes (workers=1 keeps the cut-off deterministic) *)
let test_sink_failure_contained () =
  let recorded = ref [] in
  let recorder =
    Campaign.sink (fun o -> recorded := o.Campaign.index :: !recorded)
  in
  let bomb =
    Campaign.sink (fun o ->
        if o.Campaign.index = 1 then failwith "sink bomb")
  in
  (match
     Campaign.run_stream ~workers:1 ~sinks:[ recorder; bomb ]
       (make_jobs [ 0; 0; 0; 0 ])
   with
  | _summary -> Alcotest.fail "sink failure must resurface as Failure"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "failure names the sink: %s" msg)
      true
      (contains ~needle:"sink failed" msg && contains ~needle:"sink bomb" msg));
  Alcotest.(check (list int))
    "emission stops at the failing outcome, earlier sinks included"
    [ 0; 1 ]
    (List.rev !recorded)

(* ---- backpressure: the window really bounds the buffer ------------------ *)

(* Job 0 stalls until some other worker's deposit has blocked on a full
   window (the wait counter is incremented before the Condition.wait, so
   spinning on the metric observes exactly that state). With chunk=1 and
   2 workers, the non-stalled worker finishes jobs 1..3 — filling the
   window — and then blocks depositing job 4; only then does job 0
   release and the frontier drain everything. Deterministic, not timing
   dependent: peak_window must equal the configured window and at least
   one backpressure wait must be recorded. *)
let test_backpressure_caps_window () =
  let window = 3 in
  let metrics = Registry.create () in
  let waits () = Registry.total metrics "campaign_backpressure_waits_total" in
  let stall _trace =
    let fuel = ref 2_000_000_000 in
    while waits () = 0 && !fuel > 0 do
      decr fuel;
      Domain.cpu_relax ()
    done;
    failwith "stall done"
  in
  let jobs =
    Campaign.job ~label:"stall" stall
    :: List.init 7 (fun i ->
           Campaign.job ~label:(Printf.sprintf "quick-%d" (i + 1))
             (fun _trace -> failwith "quick"))
  in
  let summary =
    Campaign.run_stream ~metrics ~workers:2 ~chunk:1 ~window jobs
  in
  (match summary.Campaign.stream with
  | None -> Alcotest.fail "stream stats missing"
  | Some stats ->
    Alcotest.(check int) "window recorded" window stats.Campaign.window;
    Alcotest.(check int) "stalled job caps the buffer at the window" window
      stats.Campaign.peak_window;
    Alcotest.(check bool) "deposits blocked on the full window" true
      (stats.Campaign.backpressure_waits >= 1);
    Alcotest.(check bool) "wait time is non-negative" true
      (stats.Campaign.backpressure_seconds >= 0.);
    Alcotest.(check int) "all outcomes emitted" 8 stats.Campaign.emitted);
  Alcotest.(check bool) "metric agrees with the summary" true (waits () >= 1);
  Alcotest.(check (float 0.))
    "stream-window gauge drains back to zero" 0.
    (Registry.Gauge.value (Registry.gauge metrics "campaign_stream_window"));
  Alcotest.(check int) "all 8 jobs crashed as scripted" 8
    (List.length (Campaign.errors summary))

(* ---- cancellation -------------------------------------------------------- *)

(* Early stop is contained: a sink cancels after the third emission
   while every still-running job spins until it observes the token, so
   the test deadlocks (and times out) if cancellation failed to reach
   the workers. The executed set must be a contiguous prefix (no
   emitted outcome dropped, none out of order), the parked-outcome
   gauge must drain to zero, and cancelled_jobs must account for
   exactly the jobs never started. Bounds on the prefix length: jobs
   0..2 always run (three emissions are needed to trigger the cancel),
   and at most one in-flight job per worker rides past it. *)
let test_cancel_stops_workers_and_keeps_prefix () =
  let total = 24 and workers = 4 in
  let metrics = Registry.create () in
  let cancel = Campaign.cancellation () in
  let emitted_indices = ref [] in
  let decider =
    Campaign.sink (fun outcome ->
        emitted_indices := outcome.Campaign.index :: !emitted_indices;
        if List.length !emitted_indices = 3 then Campaign.cancel cancel)
  in
  let jobs =
    List.init total (fun i ->
        Campaign.job ~label:(Printf.sprintf "cancel-%d" i) (fun _trace ->
            if i >= 3 then begin
              let fuel = ref 2_000_000_000 in
              while (not (Campaign.cancelled cancel)) && !fuel > 0 do
                decr fuel;
                Domain.cpu_relax ()
              done
            end;
            failwith "scripted"))
  in
  let summary =
    Campaign.run_stream ~metrics ~workers ~chunk:1 ~window:4 ~cancel
      ~sinks:[ decider ] jobs
  in
  let emitted = List.rev !emitted_indices in
  let executed = List.length emitted in
  Alcotest.(check bool)
    (Printf.sprintf "executed prefix within bounds (%d)" executed)
    true
    (executed >= 3 && executed <= 3 + workers);
  Alcotest.(check (list int)) "emitted outcomes form a contiguous prefix"
    (List.init executed Fun.id) emitted;
  Alcotest.(check int) "summary covers exactly the executed prefix" executed
    (List.length summary.Campaign.outcomes);
  Alcotest.(check int) "every executed job crashed as scripted" executed
    (List.length (Campaign.errors summary));
  (match summary.Campaign.stream with
  | None -> Alcotest.fail "stream stats missing"
  | Some stats ->
    Alcotest.(check int) "emitted matches the sink" executed
      stats.Campaign.emitted;
    Alcotest.(check int) "cancelled_jobs accounts for the rest"
      (total - executed) stats.Campaign.cancelled_jobs);
  Alcotest.(check (float 0.))
    "stream-window gauge drains back to zero" 0.
    (Registry.Gauge.value (Registry.gauge metrics "campaign_stream_window"));
  Alcotest.(check int) "emission metric agrees" executed
    (Registry.total metrics "campaign_stream_emitted_total")

(* an unused token changes nothing: the campaign runs to completion and
   reports zero cancelled jobs *)
let test_unused_cancel_token_is_inert () =
  let cancel = Campaign.cancellation () in
  let summary =
    Campaign.run_stream ~workers:2 ~cancel (make_jobs fixed_mix)
  in
  match summary.Campaign.stream with
  | None -> Alcotest.fail "stream stats missing"
  | Some stats ->
    Alcotest.(check int) "nothing cancelled" 0 stats.Campaign.cancelled_jobs;
    Alcotest.(check int) "every outcome emitted" (List.length fixed_mix)
      stats.Campaign.emitted

(* the regression this PR fixes: a campaign that is cancelled after a
   sink already failed must still resurface the sink's Failure — the
   executed-prefix invariant check must not mask it with an
   Assert_failure on the shortened outcome list *)
let test_cancelled_run_resurfaces_sink_failure () =
  let cancel = Campaign.cancellation () in
  let bomb =
    Campaign.sink (fun outcome ->
        if outcome.Campaign.index = 0 then failwith "late bomb")
  in
  let jobs =
    List.init 6 (fun i ->
        Campaign.job ~label:(Printf.sprintf "cb-%d" i) (fun _trace ->
            if i = 2 then Campaign.cancel cancel;
            failwith "scripted"))
  in
  match Campaign.run_stream ~workers:1 ~cancel ~sinks:[ bomb ] jobs with
  | _summary ->
    Alcotest.fail "sink failure must resurface despite the cancel"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "failure names the sink, not the cancel: %s" msg)
      true
      (contains ~needle:"sink failed" msg && contains ~needle:"late bomb" msg)

(* ---- sharded output ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_shard_routing () =
  Alcotest.(check string) "extension-aware shard path" "out.000.jsonl"
    (Campaign.shard_path "out.jsonl" ~shard:0);
  Alcotest.(check string) "extensionless shard path" "out.002"
    (Campaign.shard_path "out" ~shard:2);
  let route = Campaign.shard_of_job ~shards:3 ~jobs:4 in
  Alcotest.(check (list int)) "contiguous balanced ranges" [ 0; 0; 1; 2 ]
    (List.map route [ 0; 1; 2; 3 ]);
  (* monotone and in range for a larger mix *)
  let jobs = 17 and shards = 5 in
  let prev = ref 0 in
  for i = 0 to jobs - 1 do
    let s = Campaign.shard_of_job ~shards ~jobs i in
    if s < !prev || s >= shards then
      Alcotest.failf "job %d routed to shard %d after shard %d" i s !prev;
    prev := s
  done;
  Alcotest.(check int) "last job lands in the last shard" (shards - 1)
    (Campaign.shard_of_job ~shards ~jobs (jobs - 1))

let concat_shards path shards =
  String.concat ""
    (List.init shards (fun shard -> read_file (Campaign.shard_path path ~shard)))

let remove_shards path shards =
  List.iter
    (fun shard -> Sys.remove (Campaign.shard_path path ~shard))
    (List.init shards Fun.id)

(* a multi-job EEE campaign over 3 shards: every shard file exists, the
   flush counters ran, and concatenation in shard order reproduces the
   oracle's merged JSONL byte for byte *)
let test_sharded_concat_identity () =
  let plan =
    {
      Harness.default_plan with
      Harness.ops =
        [ Eee.Eee_spec.Read; Eee.Eee_spec.Write; Eee.Eee_spec.Format;
          Eee.Eee_spec.Prepare ];
      approaches = [ 2 ];
      cases_per_op = 2;
      fault_rate = 0.01;
      seed = 23;
    }
  in
  let oracle = Harness.run_campaign ~workers:1 plan in
  Alcotest.(check (list (pair string string))) "no job errors" []
    (Campaign.errors oracle);
  let shards = 3 in
  let jobs = List.length (Harness.campaign_jobs plan) in
  Alcotest.(check int) "four jobs in the plan" 4 jobs;
  let path = Filename.temp_file "stream_shards" ".jsonl" in
  let metrics = Registry.create () in
  let summary =
    Harness.run_campaign_stream ~workers:2 ~chunk:1
      ~sinks:[ Campaign.sharded_jsonl_sink ~metrics ~shards ~jobs path ]
      { plan with Harness.metrics }
  in
  Alcotest.(check (list (pair string string))) "no stream job errors" []
    (Campaign.errors summary);
  List.iter
    (fun shard ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d exists" shard)
        true
        (Sys.file_exists (Campaign.shard_path path ~shard)))
    (List.init shards Fun.id);
  Alcotest.(check string) "shard concatenation == oracle merge"
    (Campaign.to_jsonl oracle)
    (concat_shards path shards);
  Alcotest.(check bool) "per-shard flushes recorded" true
    (Registry.total metrics "campaign_shard_flushes_total" > 0);
  remove_shards path shards;
  Sys.remove path

(* ---- golden bytes through the streaming + sharded path ------------------ *)

(* same plan and projection as test_golden_trace.ml: the streamed,
   sharded trace must still reproduce the checked-in golden bytes *)
let golden_plan =
  {
    Harness.default_plan with
    Harness.ops = [ Eee.Eee_spec.Read ];
    approaches = [ 2 ];
    cases_per_op = 2;
    fault_rate = 0.01;
    seed = 23;
  }

let keep_every = 100

let bulk line =
  contains ~needle:{|"event":"trigger"|} line
  || contains ~needle:{|"event":"sample"|} line

let project jsonl =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun index line ->
      if line <> "" && ((not (bulk line)) || index mod keep_every = 0) then begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      end)
    (String.split_on_char '\n' jsonl);
  Buffer.contents buf

let test_streamed_shards_match_golden () =
  let golden = read_file (Filename.concat "golden" "eee_a2_read.jsonl") in
  Alcotest.(check bool) "golden trace is non-trivial" true
    (String.length golden > 0);
  let shards = 2 in
  let jobs = List.length (Harness.campaign_jobs golden_plan) in
  let path = Filename.temp_file "stream_golden" ".jsonl" in
  let summary =
    Harness.run_campaign_stream ~workers:2
      ~sinks:[ Campaign.sharded_jsonl_sink ~shards ~jobs path ]
      golden_plan
  in
  Alcotest.(check (list (pair string string))) "no job errors" []
    (Campaign.errors summary);
  Alcotest.(check string) "streamed shard concat reproduces the golden bytes"
    golden
    (project (concat_shards path shards));
  remove_shards path shards;
  Sys.remove path

(* ---- soak: bounded live memory under load ------------------------------- *)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

(* approach 1 triggers on every clock cycle, so even a small campaign
   accumulates a megabyte-scale trace in the oracle — exactly the
   contrast the streaming engine exists to remove. The smoke always
   runs at scale 1; TCHECK_SOAK=1 raises the scale (TCHECK_SOAK_SCALE,
   default 8) for the overnight-style soak. *)
let soak_check ~scale () =
  let plan =
    {
      Harness.default_plan with
      Harness.ops = [ Eee.Eee_spec.Read; Eee.Eee_spec.Write ];
      approaches = [ 1; 2 ];
      cases_per_op = 2 * scale;
      fault_rate = 0.01;
      seed = 23;
    }
  in
  let tag suffix = Printf.sprintf "scale %d: %s" scale suffix in
  let base = live_words () in
  let oracle = Harness.run_campaign ~workers:2 plan in
  let oracle_jsonl = Campaign.to_jsonl oracle in
  let oracle_live = live_words () - base in
  let path = Filename.temp_file "stream_soak" ".jsonl" in
  let base = live_words () in
  let summary =
    Harness.run_campaign_stream ~workers:2
      ~sinks:[ Campaign.jsonl_file_sink path ]
      plan
  in
  let stream_live = live_words () - base in
  Alcotest.(check (list (pair string string))) (tag "no job errors") []
    (Campaign.errors summary);
  Alcotest.(check (list (triple string string string)))
    (tag "identical verdicts")
    (List.map
       (fun (j, p, v) -> (j, p, Verdict.to_string v))
       (Campaign.verdicts oracle))
    (List.map
       (fun (j, p, v) -> (j, p, Verdict.to_string v))
       (Campaign.verdicts summary));
  let streamed = read_file path in
  Sys.remove path;
  Alcotest.(check bool) (tag "streamed file == oracle merge") true
    (String.equal oracle_jsonl streamed);
  (match summary.Campaign.stream with
  | None -> Alcotest.fail (tag "stream stats missing")
  | Some stats ->
    Alcotest.(check int)
      (tag "every job emitted")
      (List.length (Harness.campaign_jobs plan))
      stats.Campaign.emitted;
    Alcotest.(check bool)
      (tag "peak within the window")
      true
      (stats.Campaign.peak_window <= stats.Campaign.window));
  (* the point of the exercise: the oracle's retention grows with the
     campaign; the stream's does not. The absolute cap is generous —
     the stream retains a window of stripped outcomes, not traces. *)
  Alcotest.(check bool)
    (Printf.sprintf "%s (stream %d words, oracle %d words)"
       (tag "stream retains less than the oracle")
       stream_live oracle_live)
    true
    (stream_live < oracle_live);
  Alcotest.(check bool)
    (Printf.sprintf "%s (%d words)" (tag "stream retention under 2M words")
       stream_live)
    true
    (stream_live < 2_000_000)

let soak_scale () =
  match Sys.getenv_opt "TCHECK_SOAK_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 8)
  | None -> 8

let soak_enabled () = Sys.getenv_opt "TCHECK_SOAK" = Some "1"

let () =
  let soak_cases =
    Alcotest.test_case "bounded live words, smoke (scale 1)" `Quick
      (soak_check ~scale:1)
    ::
    (if soak_enabled () then
       [
         Alcotest.test_case
           (Printf.sprintf "bounded live words, soak (scale %d)" (soak_scale ()))
           `Slow
           (soak_check ~scale:(soak_scale ()));
       ]
     else [])
  in
  Alcotest.run "stream"
    [
      ( "differential",
        [
          Alcotest.test_case "stream == seed for workers 1/2/4/7" `Quick
            test_stream_matches_seed;
          Alcotest.test_case "window=1 changes scheduling only" `Quick
            test_tiny_window_identity;
          QCheck_alcotest.to_alcotest qcheck_differential;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "ascending emission, campaign-global seq" `Quick
            test_ordered_emission_and_seq;
        ] );
      ( "containment",
        [
          Alcotest.test_case "crash outcomes flow to sinks" `Quick
            test_crash_outcomes_flow_to_sinks;
          Alcotest.test_case "raising sink contained, Failure resurfaces"
            `Quick test_sink_failure_contained;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "stalled job caps the reassembly window" `Quick
            test_backpressure_caps_window;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "early stop keeps a contiguous prefix" `Quick
            test_cancel_stops_workers_and_keeps_prefix;
          Alcotest.test_case "unused token is inert" `Quick
            test_unused_cancel_token_is_inert;
          Alcotest.test_case "sink failure resurfaces despite cancel" `Quick
            test_cancelled_run_resurfaces_sink_failure;
        ] );
      ( "shards",
        [
          Alcotest.test_case "shard paths and routing" `Quick
            test_shard_routing;
          Alcotest.test_case "shard concatenation == oracle merge" `Quick
            test_sharded_concat_identity;
          Alcotest.test_case "streamed shards reproduce the golden bytes"
            `Quick test_streamed_shards_match_golden;
        ] );
      ("soak", soak_cases);
    ]
