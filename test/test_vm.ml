(* Differential testing of the bytecode VM against the reference
   interpreter, through the backend-agnostic [Minic.Exec] interface.

   The interpreter is the oracle: for every generated program, both
   backends must produce the same outcome (including exceptions, their
   messages and positions), the same statement count, the same final
   globals, and byte-identical observation traces (statement hooks,
   function entries, virtual-memory accesses, nondet queries). The
   generator is deliberately richer than test_fuzz's: arrays with
   out-of-bounds candidates, switch with fallthrough, while/do-while,
   break/continue, nondet, virtual memory, assert/assume/halt and
   unmasked division — the error paths are part of the contract. *)

module Ast = Minic.Ast
module Exec = Minic.Exec

(* ---- observation trace ------------------------------------------------- *)

let stmt_tag s =
  match s.Ast.sdesc with
  | Ast.Block _ -> "blk"
  | Ast.Decl _ -> "dcl"
  | Ast.Expr _ -> "exp"
  | Ast.Assign _ -> "asg"
  | Ast.If _ -> "if"
  | Ast.While _ -> "whl"
  | Ast.Do_while _ -> "dow"
  | Ast.For _ -> "for"
  | Ast.Switch _ -> "swt"
  | Ast.Break -> "brk"
  | Ast.Continue -> "cnt"
  | Ast.Return _ -> "ret"
  | Ast.Assert _ -> "ast"
  | Ast.Assume _ -> "asm"
  | Ast.Halt -> "hlt"

(* hooks that append every observation point to [buf]: statement ticks
   (tag + position), function entries, vmem traffic against a small
   deterministic memory, and nondet queries answered mid-range *)
let recording_hooks buf =
  let memory = Hashtbl.create 16 in
  {
    Minic.Interp.mem_read =
      (fun addr ->
        let v =
          match Hashtbl.find_opt memory addr with
          | Some v -> v
          | None -> (addr * 7) land 0xFF
        in
        Buffer.add_string buf (Printf.sprintf "R%d=%d;" addr v);
        v);
    mem_write =
      (fun addr v ->
        Buffer.add_string buf (Printf.sprintf "W%d=%d;" addr v);
        Hashtbl.replace memory addr v);
    nondet =
      (fun ~lo ~hi ->
        Buffer.add_string buf (Printf.sprintf "N%d,%d;" lo hi);
        lo + ((hi - lo) / 2));
    on_statement =
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%s@%d:%d;" (stmt_tag s) s.Ast.spos.Ast.line
             s.Ast.spos.Ast.column));
    on_function_entry =
      (fun name -> Buffer.add_string buf (Printf.sprintf "F%s;" name));
  }

(* ---- one run on one backend, fully reified ----------------------------- *)

let outcome_repr = function
  | Exec.Finished (Some v) -> Printf.sprintf "finished %d" v
  | Exec.Finished None -> "finished void"
  | Exec.Halted -> "halted"
  | Exec.Fuel_exhausted -> "fuel exhausted"

let run_backend ?(fuel = 20_000) backend info =
  match Exec.create ~backend info with
  | exception Minic.Compile.Unsupported msg -> Error msg
  | exec ->
    let buf = Buffer.create 256 in
    let hooks = recording_hooks buf in
    let outcome =
      match Exec.run ~fuel ~hooks exec ~entry:"main" with
      | outcome -> outcome_repr outcome
      | exception Exec.Assertion_failed p ->
        Printf.sprintf "assert@%d:%d" p.Ast.line p.Ast.column
      | exception Exec.Assumption_failed p ->
        Printf.sprintf "assume@%d:%d" p.Ast.line p.Ast.column
      | exception Exec.Runtime_error (msg, p) ->
        Printf.sprintf "error %s@%d:%d" msg p.Ast.line p.Ast.column
    in
    Ok
      (Printf.sprintf "%s | stmts=%d | %s | %s" outcome
         (Exec.statements_executed exec)
         (String.concat ","
            (List.map
               (fun (n, v) -> Printf.sprintf "%s=%d" n v)
               (Exec.globals_snapshot exec)))
         (Buffer.contents buf))

(* ---- generator --------------------------------------------------------- *)

let globals = [ "g0"; "g1"; "g2" ]
let array_len = 8

let mask e = Ast.expr (Ast.Binop (Ast.Band, e, Ast.int_lit (array_len - 1)))

let nonzero e =
  Ast.expr
    (Ast.Binop
       ( Ast.Bor,
         Ast.expr (Ast.Binop (Ast.Band, e, Ast.int_lit 7)),
         Ast.int_lit 1 ))

(* expressions: the fuzz set plus array reads (mostly masked, sometimes
   raw — the raw ones probe the bounds-error path), nondet with a
   guaranteed-legal literal range (and rarely an arbitrary one, probing
   the empty-range error), vmem reads, and unmasked division (rarely),
   probing division-by-zero *)
let gen_expr vars =
  let open QCheck.Gen in
  sized_size (int_bound 6) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [
            map Ast.int_lit (int_range (-1000) 1000);
            map Ast.var (oneofl vars);
          ]
      else
        let sub = self (n / 2) in
        let bin op =
          map2 (fun a b -> Ast.expr (Ast.Binop (op, a, b))) sub sub
        in
        frequency
          [
            (2, map Ast.var (oneofl vars));
            (2, bin Ast.Add);
            (2, bin Ast.Sub);
            (2, bin Ast.Mul);
            ( 2,
              map2
                (fun a b -> Ast.expr (Ast.Binop (Ast.Div, a, nonzero b)))
                sub sub );
            ( 2,
              map2
                (fun a b -> Ast.expr (Ast.Binop (Ast.Mod, a, nonzero b)))
                sub sub );
            (1, bin Ast.Div);
            (1, bin Ast.Mod);
            (2, bin Ast.Band);
            (2, bin Ast.Bor);
            (2, bin Ast.Bxor);
            (2, bin Ast.Shl);
            (2, bin Ast.Shr);
            (2, bin Ast.Lt);
            (2, bin Ast.Le);
            (2, bin Ast.Gt);
            (2, bin Ast.Ge);
            (2, bin Ast.Eq);
            (2, bin Ast.Ne);
            (2, bin Ast.Land);
            (2, bin Ast.Lor);
            (2, map (fun a -> Ast.expr (Ast.Unop (Ast.Neg, a))) sub);
            (2, map (fun a -> Ast.expr (Ast.Unop (Ast.Bitnot, a))) sub);
            (2, map (fun a -> Ast.expr (Ast.Unop (Ast.Lognot, a))) sub);
            (2, map (fun e -> Ast.expr (Ast.Index ("arr", mask e))) sub);
            (1, map (fun e -> Ast.expr (Ast.Index ("arr", e))) sub);
            ( 2,
              map2
                (fun lo k ->
                  Ast.expr
                    (Ast.Nondet (Ast.int_lit lo, Ast.int_lit (lo + k))))
                (int_range (-50) 50) (int_range 0 20) );
            ( 1,
              map2 (fun a b -> Ast.expr (Ast.Nondet (a, b))) sub sub );
            (2, map (fun e -> Ast.expr (Ast.Mem_read e)) sub);
          ])

let gen_stmts =
  let open QCheck.Gen in
  let fresh_counter = ref 0 in
  let rec stmts vars depth n =
    if n <= 0 then return []
    else
      stmt vars depth >>= fun prefix ->
      stmts vars depth (n - 1) >>= fun rest -> return (prefix @ rest)
  and block vars depth n = stmts vars depth n >|= fun body -> [ Ast.stmt (Ast.Block body) ]
  and stmt vars depth =
    let assign_global =
      map2
        (fun target e -> [ Ast.stmt (Ast.Assign (Ast.Lvar target, e)) ])
        (oneofl globals) (gen_expr vars)
    in
    let assign_elem =
      map2
        (fun index e ->
          [ Ast.stmt (Ast.Assign (Ast.Lindex ("arr", mask index), e)) ])
        (gen_expr vars) (gen_expr vars)
    in
    let assign_elem_raw =
      map2
        (fun index e ->
          [ Ast.stmt (Ast.Assign (Ast.Lindex ("arr", index), e)) ])
        (gen_expr vars) (gen_expr vars)
    in
    let mem_write =
      map2
        (fun addr e -> [ Ast.stmt (Ast.Assign (Ast.Lmem addr, e)) ])
        (gen_expr vars) (gen_expr vars)
    in
    let call_stmt =
      map
        (fun e ->
          [ Ast.stmt (Ast.Expr (Ast.expr (Ast.Call ("helper", [ e ])))) ])
        (gen_expr vars)
    in
    let void_call =
      map
        (fun e -> [ Ast.stmt (Ast.Expr (Ast.expr (Ast.Call ("vfn", [ e ])))) ])
        (gen_expr vars)
    in
    let call_assign =
      map
        (fun e ->
          [
            Ast.stmt
              (Ast.Assign
                 (Ast.Lvar "g0", Ast.expr (Ast.Call ("helper", [ e ]))));
          ])
        (gen_expr vars)
    in
    let assert_stmt =
      (* usually trivially true, sometimes arbitrary — the arbitrary
         ones probe assertion-failure parity (message + position) *)
      frequency
        [
          ( 3,
            map
              (fun e ->
                [
                  Ast.stmt
                    (Ast.Assert (Ast.expr (Ast.Binop (Ast.Ge, nonzero e, Ast.int_lit (-1000000)))));
                ])
              (gen_expr vars) );
          (1, map (fun e -> [ Ast.stmt (Ast.Assert e) ]) (gen_expr vars));
        ]
    in
    let assume_stmt = map (fun e -> [ Ast.stmt (Ast.Assume e) ]) (gen_expr vars) in
    let halt_stmt =
      map
        (fun e -> [ Ast.stmt (Ast.If (e, Ast.stmt Ast.Halt, None)) ])
        (gen_expr vars)
    in
    let base =
      [
        (6, assign_global); (3, assign_elem); (1, assign_elem_raw);
        (2, mem_write); (2, call_stmt); (2, call_assign); (2, void_call);
        (1, assert_stmt); (1, assume_stmt); (1, halt_stmt);
      ]
    in
    if depth <= 0 then frequency base
    else
      let nested =
        [
          (* if / else over block-wrapped branches *)
          ( 3,
            gen_expr vars >>= fun cond ->
            block vars (depth - 1) 2 >>= fun then_body ->
            block vars (depth - 1) 2 >>= fun else_body ->
            return
              [
                Ast.stmt
                  (Ast.If
                     ( cond,
                       List.hd then_body,
                       Some (List.hd else_body) ));
              ] );
          (* counted while: the increment comes first, so a generated
             break can only shorten the loop, never unbound it *)
          ( 2,
            int_range 1 6 >>= fun limit ->
            incr fresh_counter;
            let c = Printf.sprintf "w%d" !fresh_counter in
            stmts (c :: vars) (depth - 1) 2 >>= fun body ->
            gen_expr (c :: vars) >>= fun break_cond ->
            let incr_c =
              Ast.stmt
                (Ast.Assign
                   ( Ast.Lvar c,
                     Ast.expr (Ast.Binop (Ast.Add, Ast.var c, Ast.int_lit 1))
                   ))
            in
            let maybe_break =
              Ast.stmt (Ast.If (break_cond, Ast.stmt Ast.Break, None))
            in
            return
              [
                Ast.stmt (Ast.Decl (c, Ast.Tint, Some (Ast.int_lit 0)));
                Ast.stmt
                  (Ast.While
                     ( Ast.expr (Ast.Binop (Ast.Lt, Ast.var c, Ast.int_lit limit)),
                       Ast.stmt (Ast.Block ((incr_c :: body) @ [ maybe_break ]))
                     ));
              ] );
          (* counted do-while, increment first for the same reason *)
          ( 2,
            int_range 1 6 >>= fun limit ->
            incr fresh_counter;
            let c = Printf.sprintf "d%d" !fresh_counter in
            stmts (c :: vars) (depth - 1) 2 >>= fun body ->
            let incr_c =
              Ast.stmt
                (Ast.Assign
                   ( Ast.Lvar c,
                     Ast.expr (Ast.Binop (Ast.Add, Ast.var c, Ast.int_lit 1))
                   ))
            in
            return
              [
                Ast.stmt (Ast.Decl (c, Ast.Tint, Some (Ast.int_lit 0)));
                Ast.stmt
                  (Ast.Do_while
                     ( Ast.stmt (Ast.Block (incr_c :: body)),
                       Ast.expr (Ast.Binop (Ast.Lt, Ast.var c, Ast.int_lit limit))
                     ));
              ] );
          (* for loop; continue jumps to the step, so it stays counted *)
          ( 2,
            int_range 1 6 >>= fun limit ->
            incr fresh_counter;
            let c = Printf.sprintf "i%d" !fresh_counter in
            stmts (c :: vars) (depth - 1) 2 >>= fun body ->
            gen_expr (c :: vars) >>= fun skip_cond ->
            let maybe_continue =
              Ast.stmt (Ast.If (skip_cond, Ast.stmt Ast.Continue, None))
            in
            return
              [
                Ast.stmt
                  (Ast.For
                     ( Some
                         (Ast.stmt
                            (Ast.Decl (c, Ast.Tint, Some (Ast.int_lit 0)))),
                       Some
                         (Ast.expr
                            (Ast.Binop (Ast.Lt, Ast.var c, Ast.int_lit limit))),
                       Some
                         (Ast.stmt
                            (Ast.Assign
                               ( Ast.Lvar c,
                                 Ast.expr
                                   (Ast.Binop
                                      (Ast.Add, Ast.var c, Ast.int_lit 1)) ))),
                       Ast.stmt (Ast.Block (maybe_continue :: body)) ));
              ] );
          (* switch over a masked scrutinee: fallthrough between cases,
             break in some, optional default *)
          ( 2,
            gen_expr vars >>= fun scrutinee ->
            stmts vars (depth - 1) 1 >>= fun body0 ->
            stmts vars (depth - 1) 1 >>= fun body1 ->
            stmts vars (depth - 1) 1 >>= fun body2 ->
            bool >>= fun with_default ->
            bool >>= fun break1 ->
            let case labels body brk =
              {
                Ast.labels;
                body = (if brk then body @ [ Ast.stmt Ast.Break ] else body);
              }
            in
            let cases =
              [
                case [ Ast.Case 0 ] body0 false;
                case [ Ast.Case 1; Ast.Case 3 ] body1 break1;
              ]
              @
              if with_default then [ case [ Ast.Default ] body2 true ]
              else [ case [ Ast.Case 2 ] body2 false ]
            in
            return [ Ast.stmt (Ast.Switch (mask scrutinee, cases)) ] );
        ]
      in
      frequency (base @ nested)
  in
  fun vars depth n -> stmts vars depth n

let gen_program =
  let open QCheck.Gen in
  gen_stmts [ "p" ] 1 3 >>= fun helper_body ->
  gen_expr [ "p"; "g0"; "g1" ] >>= fun helper_ret ->
  gen_stmts [ "q" ] 1 2 >>= fun vfn_body ->
  gen_stmts globals 2 5 >>= fun main_body ->
  gen_expr globals >>= fun main_ret ->
  let func name ret params body =
    { Ast.f_name = name; f_ret = ret; f_params = params; f_body = body;
      f_pos = Ast.dummy_pos }
  in
  let global ?(typ = Ast.Tint) ?init name =
    { Ast.g_name = name; g_type = typ; g_const = false; g_init = init;
      g_pos = Ast.dummy_pos }
  in
  return
    {
      Ast.globals =
        List.map (fun name -> global name) globals
        @ [ global ~typ:(Ast.Tarray array_len) "arr" ];
      funcs =
        [
          func "vfn" Ast.Tvoid [ ("q", Ast.Tint) ]
            (vfn_body @ [ Ast.stmt (Ast.Return None) ]);
          func "helper" Ast.Tint [ ("p", Ast.Tint) ]
            (helper_body @ [ Ast.stmt (Ast.Return (Some helper_ret)) ]);
          func "main" Ast.Tint []
            (main_body @ [ Ast.stmt (Ast.Return (Some main_ret)) ]);
        ];
    }

let arbitrary_program =
  QCheck.make ~print:Minic.Pretty.program_to_string gen_program

let qcheck_vm_equals_interp =
  QCheck.Test.make ~name:"vm == interp (random programs)" ~count:1000
    arbitrary_program (fun program ->
      match Minic.Typecheck.check_result program with
      | Error msg -> QCheck.Test.fail_reportf "generator bug: %s" msg
      | Ok info -> (
        match run_backend Exec.Interp info, run_backend Exec.Vm info with
        | Ok a, Ok b ->
          String.equal a b
          || QCheck.Test.fail_reportf "interp: %s\nvm:     %s" a b
        | Error msg, _ ->
          QCheck.Test.fail_reportf "interpreter cannot be unsupported: %s" msg
        | _, Error msg ->
          (* the generator never emits conditionally-executed
             declarations, the one shape the compiler refuses *)
          QCheck.Test.fail_reportf "vm unsupported: %s" msg))

(* the generator output must compile to bytecode (no silent fallback) *)
let qcheck_generator_compiles =
  QCheck.Test.make ~name:"generated programs reach the VM under auto"
    ~count:200 arbitrary_program (fun program ->
      match Minic.Typecheck.check_result program with
      | Error msg -> QCheck.Test.fail_reportf "generator bug: %s" msg
      | Ok info -> Exec.kind (Exec.create ~backend:Exec.Auto info) = Exec.Vm)

(* ---- EEE operation-mix differential ------------------------------------ *)

(* the same booted approach-2 session, the same constrained-random
   campaign — only the execution backend differs; verdicts, time units,
   trigger counts and coverage must agree *)
let eee_outcome backend ~op ~seed ~cases =
  let session =
    Eee.Harness.approach2
      ~flash:(Eee.Harness.flash_quick_config ~fault_rate:0.02)
      ~seed ~backend ()
  in
  Eee.Driver.install_spec session [ op ];
  let config = { Eee.Driver.default_config with test_cases = cases; seed } in
  let result = Eee.Driver.run_campaign session config op in
  Printf.sprintf "units=%d triggers=%d cases=%d timeouts=%d %s returns=%s"
    result.Verif.Result.time_units result.Verif.Result.triggers
    (Verif.Result.completed_cases result)
    result.Verif.Result.timeouts
    (String.concat ","
       (List.map
          (fun p ->
            Printf.sprintf "%s:%s%s" p.Verif.Result.property
              (Verdict.to_string p.Verif.Result.verdict)
              (match p.Verif.Result.first_final_at with
              | Some tu -> Printf.sprintf "@%d" tu
              | None -> ""))
          result.Verif.Result.properties))
    (String.concat ","
       (match result.Verif.Result.coverage with
       | Some coverage -> Sctc.Coverage.observed coverage
       | None -> []))

let arbitrary_eee_mix =
  QCheck.make
    ~print:(fun (op, seed, cases) ->
      Printf.sprintf "%s seed=%d cases=%d" (Eee.Eee_spec.op_name op) seed cases)
    QCheck.Gen.(
      triple (oneofl Eee.Eee_spec.all_ops) (int_bound 10_000) (int_range 1 3))

let qcheck_eee_mix =
  QCheck.Test.make ~name:"EEE campaign: vm == interp (operation mixes)"
    ~count:25 arbitrary_eee_mix (fun (op, seed, cases) ->
      let interp = eee_outcome Exec.Interp ~op ~seed ~cases in
      let vm = eee_outcome Exec.Vm ~op ~seed ~cases in
      String.equal interp vm
      || QCheck.Test.fail_reportf "interp: %s\nvm:     %s" interp vm)

(* ---- observation-opcode unit tests ------------------------------------- *)

let parse_info source = Minic.Typecheck.check (Minic.C_parser.parse source)

let contains s fragment =
  let n = String.length s and m = String.length fragment in
  let rec scan i =
    if i + m > n then false
    else if String.sub s i m = fragment then true
    else scan (i + 1)
  in
  m = 0 || scan 0

let check_run name ?fuel source ~expect_contains =
  let info = parse_info source in
  let interp =
    match run_backend ?fuel Exec.Interp info with
    | Ok r -> r
    | Error msg -> Alcotest.failf "interp unsupported: %s" msg
  in
  let vm =
    match run_backend ?fuel Exec.Vm info with
    | Ok r -> r
    | Error msg -> Alcotest.failf "vm unsupported: %s" msg
  in
  Alcotest.(check string) (name ^ ": vm == interp") interp vm;
  List.iter
    (fun fragment ->
      if not (contains vm fragment) then
        Alcotest.failf "%s: %S not found in %S" name fragment vm)
    expect_contains

(* Tick: the statement hook fires before each statement executes, in
   program order, with the statement's own source position — observable
   as the globals trailing the tick stream by one statement *)
let test_tick_opcode () =
  let info =
    parse_info "int g;\nint main(void) {\n  g = 1;\n  g = 2;\n  halt();\n}\n"
  in
  let observe backend =
    let exec = Exec.create ~backend info in
    let seen = ref [] in
    Exec.set_hooks exec
      {
        (Exec.default_hooks ()) with
        Minic.Interp.on_statement =
          (fun s ->
            seen :=
              (stmt_tag s, s.Ast.spos.Ast.line, Exec.read_global exec "g")
              :: !seen);
      };
    let outcome = Exec.run ~fuel:100 exec ~entry:"main" in
    (outcome_repr outcome, List.rev !seen, Exec.statements_executed exec)
  in
  let interp = observe Exec.Interp and vm = observe Exec.Vm in
  let expected =
    ("halted", [ ("asg", 3, 0); ("asg", 4, 1); ("hlt", 5, 2) ], 3)
  in
  Alcotest.(check bool) "interp tick stream" true (interp = expected);
  Alcotest.(check bool) "vm tick stream" true (vm = expected)

(* Obs_entry: function-entry hooks fire after argument binding, once per
   call, interleaved with the tick stream exactly as the interpreter's *)
let test_fentry_opcode () =
  check_run "fentry"
    "int g;\n\
     int helper(int p) { g = g + p; return g; }\n\
     int main(void) {\n\
    \  g = helper(3) + helper(4);\n\
    \  return g;\n\
     }\n"
    ~expect_contains:[ "Fmain;"; "Fhelper;"; "finished 10" ]

(* Obs_mem_read / Obs_mem_write: vmem traffic goes through the hooks in
   evaluation order with the value round-tripping through the testbench
   memory *)
let test_mem_opcodes () =
  check_run "mem"
    "int g;\n\
     int main(void) {\n\
    \  mem_write(5, 7);\n\
    \  g = mem_read(5) + mem_read(64);\n\
    \  return g;\n\
     }\n"
    ~expect_contains:[ "W5=7;"; "R5=7;"; "R64=192;"; "finished 199" ]

(* Nondet_op: the query reaches the hook with the evaluated bounds; an
   empty range is a runtime error at the expression's position *)
let test_nondet_opcode () =
  check_run "nondet" "int main(void) { return nondet(3, 9); }"
    ~expect_contains:[ "N3,9;"; "finished 6" ];
  check_run "nondet empty range"
    "int main(void) {\n  return nondet(5, 2);\n}\n"
    ~expect_contains:[ "error nondet with empty range [5, 2]@2:10" ]

(* error-path parity: message text and position must match the
   interpreter exactly for each runtime-error class *)
let test_error_parity () =
  check_run "division by zero"
    "int z;\nint main(void) {\n  return 1 / z;\n}\n"
    ~expect_contains:[ "error division by zero@3:12" ];
  check_run "index out of bounds (read)"
    "int arr[4];\nint main(void) {\n  return arr[9];\n}\n"
    ~expect_contains:[ "error index 9 out of bounds for arr[4]@3:10" ];
  check_run "index out of bounds (write)"
    "int arr[4];\nint main(void) {\n  arr[7] = 1;\n  return 0;\n}\n"
    ~expect_contains:[ "error index 7 out of bounds for arr[4]@3:3" ];
  check_run "assertion failure"
    "int main(void) {\n  assert(0);\n  return 1;\n}\n"
    ~expect_contains:[ "assert@2:3" ];
  check_run "assumption failure"
    "int main(void) {\n  assume(1 == 2);\n  return 1;\n}\n"
    ~expect_contains:[ "assume@2:3" ];
  check_run "fuel parity" ~fuel:500
    "int g;\nint main(void) {\n  while (1) { g = g + 1; }\n  return g;\n}\n"
    ~expect_contains:[ "fuel exhausted | stmts=500" ]

(* control-flow corners that the compiler lowers specially: switch
   fallthrough/default dispatch, do-while, short-circuit operators *)
let test_lowering_corners () =
  check_run "switch fallthrough"
    "int g;\n\
     int main(void) {\n\
    \  switch (g + 2) {\n\
    \    case 0: g = 10; break;\n\
    \    case 2: g = 20;\n\
    \    default: g = g + 1; break;\n\
    \    case 5: g = 50; break;\n\
    \  }\n\
    \  return g;\n\
     }\n"
    ~expect_contains:[ "finished 21" ];
  check_run "do-while"
    "int g;\n\
     int main(void) {\n\
    \  do { g = g + 3; } while (g < 10);\n\
    \  return g;\n\
     }\n"
    ~expect_contains:[ "finished 12" ];
  check_run "short-circuit"
    "int z; int g;\n\
     int main(void) {\n\
    \  g = (z != 0 && 1 / z > 0) || z == 0;\n\
    \  return g;\n\
     }\n"
    ~expect_contains:[ "finished 1" ];
  check_run "fall-off-end returns 0"
    "int g;\n\
     int helper(void) { g = 4; }\n\
     int main(void) { return helper(); }\n"
    ~expect_contains:[ "finished 0" ]

(* Auto: a conditionally-executed declaration (the interpreter's dynamic
   scoping corner) is refused by the compiler and falls back to the
   interpreter; everything else resolves to the VM *)
let test_auto_fallback () =
  let conditional_decl =
    {
      Ast.globals = [];
      funcs =
        [
          {
            Ast.f_name = "main";
            f_ret = Ast.Tint;
            f_params = [];
            f_body =
              [
                Ast.stmt
                  (Ast.If
                     ( Ast.expr (Ast.Bool_lit true),
                       Ast.stmt (Ast.Decl ("x", Ast.Tint, Some (Ast.int_lit 1))),
                       None ));
                Ast.stmt (Ast.Return (Some (Ast.int_lit 0)));
              ];
            f_pos = Ast.dummy_pos;
          };
        ];
    }
  in
  let info = Minic.Typecheck.check conditional_decl in
  (match Minic.Compile.compile info with
  | _ -> Alcotest.fail "conditional decl must be unsupported"
  | exception Minic.Compile.Unsupported _ -> ());
  let auto = Exec.create ~backend:Exec.Auto info in
  Alcotest.(check bool) "auto falls back to interp" true
    (Exec.kind auto = Exec.Interp);
  (match Exec.run ~fuel:100 auto ~entry:"main" with
  | Exec.Finished (Some 0) -> ()
  | _ -> Alcotest.fail "fallback run failed");
  let plain = parse_info "int main(void) { return 0; }" in
  Alcotest.(check bool) "plain program resolves to vm" true
    (Exec.kind (Exec.create ~backend:Exec.Auto plain) = Exec.Vm);
  Alcotest.(check bool) "requested backend is remembered" true
    (Exec.requested auto = Exec.Auto)

(* reset restores globals, arrays and the statement counter *)
let test_reset () =
  let info =
    parse_info
      "int g; int arr[4];\n\
       int main(void) { g = g + 1; arr[2] = arr[2] + 5; return g; }\n"
  in
  List.iter
    (fun backend ->
      let exec = Exec.create ~backend info in
      ignore (Exec.run ~fuel:100 exec ~entry:"main");
      ignore (Exec.run ~fuel:100 exec ~entry:"main");
      Exec.reset exec;
      (match Exec.run ~fuel:100 exec ~entry:"main" with
      | Exec.Finished (Some 1) -> ()
      | outcome ->
        Alcotest.failf "%s after reset: %s" (Exec.kind_name exec)
          (outcome_repr outcome));
      Alcotest.(check int)
        (Exec.kind_name exec ^ " element after reset")
        5
        (Exec.read_element exec "arr" 2))
    [ Exec.Interp; Exec.Vm ]

let () =
  Alcotest.run "vm"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_vm_equals_interp;
          QCheck_alcotest.to_alcotest qcheck_generator_compiles;
          QCheck_alcotest.to_alcotest qcheck_eee_mix;
        ] );
      ( "opcodes",
        [
          Alcotest.test_case "tick" `Quick test_tick_opcode;
          Alcotest.test_case "fentry" `Quick test_fentry_opcode;
          Alcotest.test_case "mem read/write" `Quick test_mem_opcodes;
          Alcotest.test_case "nondet" `Quick test_nondet_opcode;
          Alcotest.test_case "error parity" `Quick test_error_parity;
          Alcotest.test_case "lowering corners" `Quick test_lowering_corners;
        ] );
      ( "exec",
        [
          Alcotest.test_case "auto fallback" `Quick test_auto_fallback;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
    ]
