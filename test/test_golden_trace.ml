(* Golden-trace regression: small checked-in projections of the jobs=1
   JSONL trace for one EEE property per approach. Monitor state
   numbering, trigger order and trace sequencing all flow through the
   hash-consing and campaign layers, so any change that silently
   renumbers monitor state or reorders the merge shows up here as a
   byte diff. The traces contain only deterministic data (seeded
   stimulus, simulation time units) — no wall clock — so they are
   reproducible across machines.

   Approach 1 triggers on every clock cycle (that is the point of the
   approach), so its full trace runs to megabytes. The checked-in
   golden is therefore a decimated projection: every structural event
   (handshake, verdict change, test-case boundary, watchdog, crash)
   plus every 100th line of the full stream, each line kept verbatim.
   Because the retained lines carry their original [seq] and [tu]
   fields, any insertion, deletion or reordering anywhere in the full
   stream still shifts the projection and fails the byte comparison.

   Regenerate (only when an intentional semantic change invalidates
   them) from the repo root with:

     dune exec test/test_golden_trace.exe -- --generate test/golden *)

module Campaign = Verif.Campaign
module Harness = Eee.Harness

let plan approach =
  {
    Harness.default_plan with
    Harness.ops = [ Eee.Eee_spec.Read ];
    approaches = [ approach ];
    cases_per_op = 2;
    fault_rate = 0.01;
    seed = 23;
  }

let golden_file approach = Printf.sprintf "eee_a%d_read.jsonl" approach

(* ---- decimated projection ---------------------------------------------- *)

let keep_every = 100

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec at i = i + m <= n && (String.sub line i m = sub || at (i + 1)) in
  at 0

let bulk line =
  contains line "\"event\":\"trigger\"" || contains line "\"event\":\"sample\""

let project jsonl =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun index line ->
      if line <> "" && ((not (bulk line)) || index mod keep_every = 0) then begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      end)
    (String.split_on_char '\n' jsonl);
  Buffer.contents buf

(* ---- checks -------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden ~approach () =
  let golden = read_file (Filename.concat "golden" (golden_file approach)) in
  Alcotest.(check bool) "golden trace is non-trivial" true
    (String.length golden > 0);
  let summary = Harness.run_campaign ~workers:1 (plan approach) in
  Alcotest.(check (list (pair string string))) "no job errors" []
    (Campaign.errors summary);
  Alcotest.(check string) "jobs=1 reproduces the golden bytes" golden
    (project (Campaign.to_jsonl summary))

(* the pool path must emit the same bytes as the recorded jobs=1 run *)
let check_golden_pooled () =
  let golden = read_file (Filename.concat "golden" (golden_file 2)) in
  let summary = Harness.run_campaign ~workers:2 ~chunk:1 (plan 2) in
  Alcotest.(check string) "pooled run reproduces the golden bytes" golden
    (project (Campaign.to_jsonl summary))

(* ---- regeneration -------------------------------------------------------- *)

let generate dir =
  List.iter
    (fun approach ->
      let summary = Harness.run_campaign ~workers:1 (plan approach) in
      (match Campaign.errors summary with
      | [] -> ()
      | errors ->
        List.iter
          (fun (label, message) ->
            Printf.eprintf "job error in %s: %s\n" label message)
          errors;
        exit 1);
      let path = Filename.concat dir (golden_file approach) in
      let oc = open_out_bin path in
      output_string oc (project (Campaign.to_jsonl summary));
      close_out oc;
      Printf.printf "wrote %s\n" path)
    [ 1; 2 ]

let () =
  match Sys.argv with
  | [| _; "--generate"; dir |] -> generate dir
  | _ ->
    Alcotest.run "golden-trace"
      [
        ( "eee",
          [
            Alcotest.test_case "approach 1, Read, jobs=1" `Quick
              (check_golden ~approach:1);
            Alcotest.test_case "approach 2, Read, jobs=1" `Quick
              (check_golden ~approach:2);
            Alcotest.test_case "approach 2, Read, pooled" `Quick
              check_golden_pooled;
          ] );
      ]
