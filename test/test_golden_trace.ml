(* Golden-trace regression: small checked-in projections of the jobs=1
   JSONL trace for one EEE property per approach. Monitor state
   numbering, trigger order and trace sequencing all flow through the
   hash-consing and campaign layers, so any change that silently
   renumbers monitor state or reorders the merge shows up here as a
   byte diff. The traces contain only deterministic data (seeded
   stimulus, simulation time units) — no wall clock — so they are
   reproducible across machines.

   Approach 1 triggers on every clock cycle (that is the point of the
   approach), so its full trace runs to megabytes. The checked-in
   golden is therefore a decimated projection: every structural event
   (handshake, verdict change, test-case boundary, watchdog, crash)
   plus every 100th line of the full stream, each line kept verbatim.
   Because the retained lines carry their original [seq] and [tu]
   fields, any insertion, deletion or reordering anywhere in the full
   stream still shifts the projection and fails the byte comparison.

   Regenerate (only when an intentional semantic change invalidates
   them) from the repo root with:

     dune exec test/test_golden_trace.exe -- --generate test/golden *)

module Campaign = Verif.Campaign
module Harness = Eee.Harness

let plan approach =
  {
    Harness.default_plan with
    Harness.ops = [ Eee.Eee_spec.Read ];
    approaches = [ approach ];
    cases_per_op = 2;
    fault_rate = 0.01;
    seed = 23;
  }

let golden_file approach = Printf.sprintf "eee_a%d_read.jsonl" approach

(* ---- decimated projection ---------------------------------------------- *)

let keep_every = 100

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec at i = i + m <= n && (String.sub line i m = sub || at (i + 1)) in
  at 0

let bulk line =
  contains line "\"event\":\"trigger\"" || contains line "\"event\":\"sample\""

let project jsonl =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun index line ->
      if line <> "" && ((not (bulk line)) || index mod keep_every = 0) then begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      end)
    (String.split_on_char '\n' jsonl);
  Buffer.contents buf

(* ---- checks -------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden ~approach () =
  let golden = read_file (Filename.concat "golden" (golden_file approach)) in
  Alcotest.(check bool) "golden trace is non-trivial" true
    (String.length golden > 0);
  let summary = Harness.run_campaign ~workers:1 (plan approach) in
  Alcotest.(check (list (pair string string))) "no job errors" []
    (Campaign.errors summary);
  Alcotest.(check string) "jobs=1 reproduces the golden bytes" golden
    (project (Campaign.to_jsonl summary))

(* the pool path must emit the same bytes as the recorded jobs=1 run *)
let check_golden_pooled () =
  let golden = read_file (Filename.concat "golden" (golden_file 2)) in
  let summary = Harness.run_campaign ~workers:2 ~chunk:1 (plan 2) in
  Alcotest.(check string) "pooled run reproduces the golden bytes" golden
    (project (Campaign.to_jsonl summary))

(* ---- fault injection ----------------------------------------------------- *)

(* enabling the fault-injection hooks with every probability at zero
   must not shift a single PRNG draw: the run stays byte-identical to
   the goldens recorded before the hooks existed *)
let check_golden_zero_rate_faults ~approach () =
  let golden = read_file (Filename.concat "golden" (golden_file approach)) in
  let zero =
    { Smc.Faults.decay = 0.0; power_loss = 0.0; jitter_prob = 0.0;
      jitter_max = 16 }
  in
  let summary =
    Harness.run_campaign ~workers:1 { (plan approach) with Harness.faults = zero }
  in
  Alcotest.(check string) "zero-rate faults reproduce the golden bytes" golden
    (project (Campaign.to_jsonl summary))

(* a faulty run is replayable: the same (seed, fault config) produces
   byte-identical traces whatever the worker count or backend — each
   fault class draws from its own substream keyed off the session seed,
   never from shared state *)
let check_faulty_run_determinism () =
  let faults =
    { Smc.Faults.decay = 0.001; power_loss = 0.3; jitter_prob = 0.02;
      jitter_max = 20 }
  in
  let run backend workers chunk =
    let summary =
      Harness.run_campaign ~workers ?chunk
        { (plan 2) with Harness.faults = faults; backend }
    in
    project (Campaign.to_jsonl summary)
  in
  let reference = run Minic.Exec.Interp 1 None in
  Alcotest.(check bool) "faulty trace is non-trivial" true
    (String.length reference > 0);
  List.iter
    (fun (name, backend, workers, chunk) ->
      Alcotest.(check string)
        (Printf.sprintf "%s reproduces the jobs=1 interpreter bytes" name)
        reference
        (run backend workers chunk))
    [
      ("vm, jobs=1", Minic.Exec.Vm, 1, None);
      ("interp, pooled", Minic.Exec.Interp, 2, Some 1);
      ("vm, pooled", Minic.Exec.Vm, 2, Some 1);
    ]

(* ---- regeneration -------------------------------------------------------- *)

let generate dir =
  List.iter
    (fun approach ->
      let summary = Harness.run_campaign ~workers:1 (plan approach) in
      (match Campaign.errors summary with
      | [] -> ()
      | errors ->
        List.iter
          (fun (label, message) ->
            Printf.eprintf "job error in %s: %s\n" label message)
          errors;
        exit 1);
      let path = Filename.concat dir (golden_file approach) in
      let oc = open_out_bin path in
      output_string oc (project (Campaign.to_jsonl summary));
      close_out oc;
      Printf.printf "wrote %s\n" path)
    [ 1; 2 ]

let () =
  match Sys.argv with
  | [| _; "--generate"; dir |] -> generate dir
  | _ ->
    Alcotest.run "golden-trace"
      [
        ( "eee",
          [
            Alcotest.test_case "approach 1, Read, jobs=1" `Quick
              (check_golden ~approach:1);
            Alcotest.test_case "approach 2, Read, jobs=1" `Quick
              (check_golden ~approach:2);
            Alcotest.test_case "approach 2, Read, pooled" `Quick
              check_golden_pooled;
          ] );
        ( "faults",
          [
            Alcotest.test_case "approach 1, zero-rate faults" `Quick
              (check_golden_zero_rate_faults ~approach:1);
            Alcotest.test_case "approach 2, zero-rate faults" `Quick
              (check_golden_zero_rate_faults ~approach:2);
            Alcotest.test_case "faulty run, workers x backends" `Quick
              check_faulty_run_determinism;
          ] );
      ]
