(* Tests for the abstraction-refinement checker: linear expressions,
   Fourier-Motzkin, the normalization pass (checked behaviourally against
   the interpreter), and end-to-end CEGAR runs. *)

module L = Absref.Linexpr
module FM = Absref.Fourier_motzkin
module Normalize = Absref.Normalize
module Cegar = Absref.Cegar

let info_of source = Minic.Typecheck.check (Minic.C_parser.parse source)

(* --- linexpr ------------------------------------------------------------- *)

let test_linexpr_algebra () =
  let x = L.var "x" and y = L.var "y" in
  let e = L.add (L.scale 2 x) (L.sub y (L.const 3)) in
  Alcotest.(check int) "coeff x" 2 (L.coeff e "x");
  Alcotest.(check int) "coeff y" 1 (L.coeff e "y");
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (L.vars e);
  (* substitute x := y + 1: 2(y+1) + y - 3 = 3y - 1 *)
  let e' = L.subst e "x" (L.add y (L.const 1)) in
  Alcotest.(check int) "subst coeff y" 3 (L.coeff e' "y");
  Alcotest.(check int) "subst coeff x" 0 (L.coeff e' "x");
  Alcotest.(check bool) "cancellation" true
    (L.is_const (L.sub x x) = Some 0)

let test_linexpr_negate_atom () =
  (* ¬(x - 5 <= 0) = (6 - x <= 0), i.e. x >= 6 *)
  let atom = L.sub (L.var "x") (L.const 5) in
  let neg = L.negate_atom atom in
  Alcotest.(check int) "coeff" (-1) (L.coeff neg "x");
  Alcotest.(check bool) "double negation equiv" true
    (L.equal (L.negate_atom neg) atom)

let test_linexpr_of_expr () =
  let parse = Minic.C_parser.parse_expr in
  let lookup = function "K" -> Some 7 | _ -> None in
  (match L.of_expr lookup (parse "2 * x + y - K") with
  | Some e ->
    Alcotest.(check int) "2x" 2 (L.coeff e "x");
    Alcotest.(check int) "K folded" 0 (L.coeff e "K")
  | None -> Alcotest.fail "linear expression rejected");
  (match L.of_expr lookup (parse "x * y") with
  | None -> ()
  | Some _ -> Alcotest.fail "product of variables is not linear");
  match L.of_expr lookup (parse "x & 3") with
  | None -> ()
  | Some _ -> Alcotest.fail "bitand is not linear"

(* --- fourier-motzkin ------------------------------------------------------- *)

let atom_le a b = L.sub a b (* a <= b *)

let test_fm_basics () =
  let x = L.var "x" and y = L.var "y" in
  (* x <= 5 and x >= 10: unsat *)
  Alcotest.(check bool) "box unsat" false
    (FM.satisfiable [ atom_le x (L.const 5); atom_le (L.const 10) x ]);
  (* x <= 5 and x >= 3: sat *)
  Alcotest.(check bool) "box sat" true
    (FM.satisfiable [ atom_le x (L.const 5); atom_le (L.const 3) x ]);
  (* transitivity: x <= y, y <= z, z <= x - 1: unsat *)
  let z = L.var "z" in
  Alcotest.(check bool) "cycle unsat" false
    (FM.satisfiable
       [ atom_le x y; atom_le y z; atom_le z (L.sub x (L.const 1)) ]);
  Alcotest.(check bool) "empty sat" true (FM.satisfiable [])

let test_fm_entailment () =
  let x = L.var "x" in
  (* x <= 3 entails x <= 5 *)
  Alcotest.(check bool) "weakening" true
    (FM.entails [ atom_le x (L.const 3) ] (atom_le x (L.const 5)));
  Alcotest.(check bool) "no strengthening" false
    (FM.entails [ atom_le x (L.const 5) ] (atom_le x (L.const 3)));
  (* x <= y and y <= 3 entail x <= 3 *)
  let y = L.var "y" in
  Alcotest.(check bool) "chaining" true
    (FM.entails [ atom_le x y; atom_le y (L.const 3) ] (atom_le x (L.const 3)))

(* soundness vs brute force over a small integer box *)
let qcheck_fm_soundness =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6)
        (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6)))
  in
  QCheck.Test.make ~name:"FM unsat => no integer point" ~count:300
    (QCheck.make
       ~print:(fun atoms ->
         String.concat ", "
           (List.map
              (fun (a, b, c) -> Printf.sprintf "%dx + %dy + %d <= 0" a b c)
              atoms))
       gen)
    (fun triples ->
      let atoms =
        List.map
          (fun (a, b, c) ->
            L.add
              (L.add (L.scale a (L.var "x")) (L.scale b (L.var "y")))
              (L.const c))
          triples
      in
      let integer_point_exists =
        let found = ref false in
        for x = -10 to 10 do
          for y = -10 to 10 do
            if
              (not !found)
              && List.for_all
                   (fun (a, b, c) -> (a * x) + (b * y) + c <= 0)
                   triples
            then found := true
          done
        done;
        !found
      in
      let fm_sat = FM.satisfiable atoms in
      (* rational sat is an over-approximation of integer sat *)
      (not integer_point_exists) || fm_sat)

(* --- normalization: behaviour preserved ------------------------------------- *)

let run_program info =
  let env = Minic.Interp.create info in
  let hooks = Minic.Interp.default_hooks () in
  match Minic.Interp.run env hooks ~entry:"main" with
  | Minic.Interp.Finished v -> (v, Minic.Interp.globals_snapshot env)
  | _ -> Alcotest.fail "program did not finish"

let test_normalize_preserves_behaviour () =
  let source =
    {|
      int g;
      int h;
      int helper(int v) { g = g + v; return v * 2; }
      int main(void) {
        int acc = 0;
        int i;
        for (i = 0; i < 5; i++) {
          acc += helper(i);
        }
        do { h = h + 1; } while (h < 3);
        while (helper(1) < 2 && acc < 100) { acc = acc + 1; }
        return acc + g + h;
      }
    |}
  in
  let info = info_of source in
  let normalized = Normalize.program info in
  let r1, g1 = run_program info in
  let r2, g2 = run_program normalized in
  Alcotest.(check (option int)) "same result" r1 r2;
  Alcotest.(check (list (pair string int))) "same globals" g1 g2

let test_normalize_removes_sugar_loops () =
  let info = info_of "void main(void) { int i; for (i = 0; i < 3; i++) { } do { } while (false); }" in
  let normalized = Normalize.program info in
  let has_forbidden = ref false in
  Minic.Ast.iter_stmts_program
    (fun s ->
      match s.Minic.Ast.sdesc with
      | Minic.Ast.For _ | Minic.Ast.Do_while _ -> has_forbidden := true
      | _ -> ())
    (Minic.Typecheck.program normalized);
  Alcotest.(check bool) "no for/do-while left" false !has_forbidden

(* --- cegar ---------------------------------------------------------------------- *)

let check ?max_predicates ?max_art_nodes ?timeout_seconds source =
  Cegar.check ?max_predicates ?max_art_nodes ?timeout_seconds (info_of source)

let test_cegar_safe_loop () =
  let report =
    check
      {|
        int main(void) {
          int x = 0;
          while (x < 10) { x = x + 1; }
          assert(x >= 10);
          return 0;
        }
      |}
  in
  (match report.Cegar.result with
  | Cegar.Safe -> ()
  | _ -> Alcotest.fail "expected safe");
  Alcotest.(check bool) "needed refinement" true (report.Cegar.iterations >= 1)

let test_cegar_finds_bug () =
  let report =
    check
      {|
        int main(void) {
          int x = nondet(0, 100);
          if (x > 50) {
            assert(x <= 49);
          }
          return 0;
        }
      |}
  in
  match report.Cegar.result with
  | Cegar.Bug _ -> ()
  | _ -> Alcotest.fail "expected bug"

let test_cegar_nondet_ranges () =
  let report =
    check
      {|
        int main(void) {
          int v = nondet(3, 8);
          assert(v >= 3);
          assert(v <= 8);
          return 0;
        }
      |}
  in
  (match report.Cegar.result with
  | Cegar.Safe -> ()
  | _ -> Alcotest.fail "range facts should be provable");
  let report2 =
    check
      {|
        int main(void) {
          int v = nondet(3, 8);
          assert(v <= 7);
          return 0;
        }
      |}
  in
  match report2.Cegar.result with
  | Cegar.Bug _ -> ()
  | _ -> Alcotest.fail "v = 8 violates the assertion"

let test_cegar_branch_join () =
  let report =
    check
      {|
        int main(void) {
          int x = nondet(0, 20);
          int y;
          if (x >= 10) { y = x - 10; } else { y = 10 - x; }
          assert(y >= 0);
          assert(y <= 10);
          return 0;
        }
      |}
  in
  match report.Cegar.result with
  | Cegar.Safe -> ()
  | _ -> Alcotest.fail "absolute-difference facts should be provable"

let test_cegar_function_inlining () =
  let report =
    check
      {|
        int clamp(int v) {
          if (v > 100) { return 100; }
          return v;
        }
        int g;
        void store(int v) { g = v; }
        int main(void) {
          store(clamp(nondet(0, 500)));
          assert(g >= 0 || g < 0);
          return 0;
        }
      |}
  in
  (* return-value flow is havocked, so only trivially-true facts hold;
     the point is that inlined call structure builds and analyses *)
  match report.Cegar.result with
  | Cegar.Safe -> ()
  | _ -> Alcotest.fail "trivial disjunction should be safe"

let test_cegar_gives_up_on_nonlinear () =
  let report =
    check
      {|
        int main(void) {
          int x = nondet(2, 5);
          int y = x * x;
          assert(y >= 4);
          return 0;
        }
      |}
  in
  match report.Cegar.result with
  | Cegar.Unknown _ | Cegar.Aborted _ -> ()
  | Cegar.Safe -> Alcotest.fail "x*x is havocked; cannot be proven safe"
  | Cegar.Bug _ ->
    (* havocking y over-approximates: reporting a (potentially spurious)
       bug is also a legal outcome for an over-approximating checker *)
    ()

let test_cegar_aborts_on_case_study () =
  (* the paper's observation: BLAST-style analysis of the state-driven
     EEPROM emulation with an inlined temporal monitor exhausts its
     resources and aborts with an exception *)
  let property = Sctc.Prop.parse_exn ~syntax:`Fltl "G (p_called -> F[50] p_done)" in
  let instrumented =
    Spec_inline.instrument ~property
      ~predicates:
        [ ("p_called", "fname == 1"); ("p_done", "eee_done_ret >= 0") ]
      (Eee.Eee_program.derive ()).Esw.C2sc.model_info
  in
  let report =
    Cegar.check ~max_predicates:25 ~max_art_nodes:4000 ~timeout_seconds:10.0
      instrumented
  in
  match report.Cegar.result with
  | Cegar.Aborted _ | Cegar.Unknown _ -> ()
  | Cegar.Safe -> Alcotest.fail "should not prove the case study quickly"
  | Cegar.Bug _ ->
    (* over-approximation may also report a spurious bug it cannot refine;
       the essential outcome is: no proof *)
    ()

let suite_linexpr =
  [
    Alcotest.test_case "algebra" `Quick test_linexpr_algebra;
    Alcotest.test_case "atom negation" `Quick test_linexpr_negate_atom;
    Alcotest.test_case "linearization" `Quick test_linexpr_of_expr;
  ]

let suite_fm =
  [
    Alcotest.test_case "satisfiability" `Quick test_fm_basics;
    Alcotest.test_case "entailment" `Quick test_fm_entailment;
    QCheck_alcotest.to_alcotest qcheck_fm_soundness;
  ]

let suite_normalize =
  [
    Alcotest.test_case "behaviour preserved" `Quick
      test_normalize_preserves_behaviour;
    Alcotest.test_case "loops lowered" `Quick test_normalize_removes_sugar_loops;
  ]

let suite_cegar =
  [
    Alcotest.test_case "safe loop with refinement" `Quick test_cegar_safe_loop;
    Alcotest.test_case "finds bug" `Quick test_cegar_finds_bug;
    Alcotest.test_case "nondet ranges" `Quick test_cegar_nondet_ranges;
    Alcotest.test_case "branch join" `Quick test_cegar_branch_join;
    Alcotest.test_case "function inlining" `Quick test_cegar_function_inlining;
    Alcotest.test_case "gives up on nonlinear" `Quick
      test_cegar_gives_up_on_nonlinear;
    Alcotest.test_case "aborts on the case study" `Slow
      test_cegar_aborts_on_case_study;
  ]

let () =
  Alcotest.run "absref"
    [
      ("linexpr", suite_linexpr);
      ("fourier-motzkin", suite_fm);
      ("normalize", suite_normalize);
      ("cegar", suite_cegar);
    ]
