(* The parallel-campaign safety net: a campaign on a domain pool must be
   verdict-for-verdict — and byte-for-byte in its merged trace — identical
   to the sequential run, a crashing job must surface as a per-job error
   without poisoning the pool, and the seed-splitting PRNG contract must
   hold (bit-reproducible streams, non-overlapping prefixes). *)

module Campaign = Verif.Campaign
module Session = Verif.Session
module Result = Verif.Result
module Trace = Verif.Trace
module Prng = Stimuli.Prng

(* ---- a cheap deterministic job mix over the small counter program ------ *)

let source =
  {|
    int flag;
    int x;
    int finished;

    void main(void) {
      int i;
      flag = 1;
      for (i = 0; i < 8; i = i + 1) {
        x = x + 1;
      }
      finished = 1;
    }
  |}

let program_info = lazy (Minic.Typecheck.check (Minic.C_parser.parse source))

let session_job ~label ~backend ~properties =
  Campaign.job ~label (fun trace ->
      let config =
        {
          Session.default_config with
          Session.session_name = label;
          propositions =
            [ ("p_done", "finished == 1"); ("p_overflow", "x > 100") ];
          properties;
          bound = Some 100_000;
          flag = (match backend with Session.Soc_model -> Some "flag" | _ -> None);
          trace;
        }
      in
      let session =
        Session.create ~info:(Lazy.force program_info) config backend
      in
      Session.boot session;
      Session.run session;
      Session.result session)

(* several properties x backends: a representative job mix (the Soc job is
   the expensive one, so the completion order under a pool differs from
   the job order — exactly what the deterministic merge must hide) *)
let make_jobs () =
  [
    session_job ~label:"ref/eventually" ~backend:Session.Reference
      ~properties:[ ("eventually_done", "F p_done") ];
    session_job ~label:"soc/safety" ~backend:Session.Soc_model
      ~properties:
        [ ("never_overflow", "G !p_overflow"); ("not_yet_done", "G !p_done") ];
    session_job ~label:"esw/eventually" ~backend:Session.Derived_model
      ~properties:[ ("eventually_done", "F p_done") ];
    session_job ~label:"esw/safety" ~backend:Session.Derived_model
      ~properties:[ ("not_yet_done", "G !p_done") ];
    session_job ~label:"ref/safety" ~backend:Session.Reference
      ~properties:[ ("never_overflow", "G !p_overflow") ];
    session_job ~label:"esw/bounded" ~backend:Session.Derived_model
      ~properties:[ ("done_quickly", "F[500] p_done") ];
  ]

let counters summary =
  [
    Campaign.total_triggers summary;
    Campaign.total_time_units summary;
    Campaign.total_test_cases summary;
    Campaign.total_timeouts summary;
  ]

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_pool_matches_sequential () =
  let sequential = Campaign.run ~workers:1 (make_jobs ()) in
  let pooled = Campaign.run ~workers:4 (make_jobs ()) in
  Alcotest.(check int) "effective workers" 4 pooled.Campaign.workers;
  Alcotest.(check int) "all jobs have outcomes" 6
    (List.length pooled.Campaign.outcomes);
  Alcotest.(check (list (triple string string string)))
    "identical verdict vectors"
    (List.map
       (fun (job, prop, v) -> (job, prop, Verdict.to_string v))
       (Campaign.verdicts sequential))
    (List.map
       (fun (job, prop, v) -> (job, prop, Verdict.to_string v))
       (Campaign.verdicts pooled));
  Alcotest.(check (list int))
    "identical merged counters" (counters sequential) (counters pooled);
  Alcotest.(check string) "byte-identical merged JSONL"
    (Campaign.to_jsonl sequential) (Campaign.to_jsonl pooled);
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length (Campaign.to_jsonl sequential) > 0);
  (* the mix is chosen to exercise all three verdicts *)
  let verdicts = List.map (fun (_, _, v) -> v) (Campaign.verdicts pooled) in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Verdict.to_string v ^ " verdict represented")
        true
        (List.exists (Verdict.equal v) verdicts))
    [ Verdict.True; Verdict.False; Verdict.Pending ]

let test_merge_order_and_seq () =
  let summary = Campaign.run ~workers:3 (make_jobs ()) in
  let labels = List.map (fun o -> o.Campaign.label) summary.Campaign.outcomes in
  Alcotest.(check (list string)) "outcomes in job order, not completion order"
    [
      "ref/eventually"; "soc/safety"; "esw/eventually"; "esw/safety";
      "ref/safety"; "esw/bounded";
    ]
    labels;
  List.iteri
    (fun expected o ->
      Alcotest.(check int) "outcome index" expected o.Campaign.index)
    summary.Campaign.outcomes;
  (* merged events are renumbered with a campaign-global seq *)
  List.iteri
    (fun expected event ->
      Alcotest.(check int) "campaign-global seq" expected event.Trace.seq)
    (Campaign.events summary);
  (* and every merged event survives the JSONL round trip *)
  let path = Filename.temp_file "campaign" ".jsonl" in
  Campaign.write_jsonl path summary;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "one line per merged event"
    (List.length (Campaign.events summary))
    (List.length !lines);
  List.iter
    (fun line ->
      match Trace.event_of_json line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg)
    (List.rev !lines)

(* chunked claiming is pure scheduling: any chunk size — one job per
   acquisition, a few, or more than the whole queue — must leave verdict
   vectors, merged counters and JSONL byte-identical to jobs=1 *)
let test_chunked_queue_identity () =
  let sequential = Campaign.run ~workers:1 (make_jobs ()) in
  Alcotest.(check int) "sequential path takes no queue lock" 0
    sequential.Campaign.queue.Campaign.acquisitions;
  List.iter
    (fun chunk ->
      let pooled = Campaign.run ~workers:8 ~chunk (make_jobs ()) in
      let label suffix = Printf.sprintf "chunk=%d: %s" chunk suffix in
      Alcotest.(check int) (label "chunk size recorded") chunk
        pooled.Campaign.queue.Campaign.chunk;
      Alcotest.(check bool) (label "queue lock taken") true
        (pooled.Campaign.queue.Campaign.acquisitions > 0);
      Alcotest.(check (list (triple string string string)))
        (label "identical verdict vectors")
        (List.map
           (fun (job, prop, v) -> (job, prop, Verdict.to_string v))
           (Campaign.verdicts sequential))
        (List.map
           (fun (job, prop, v) -> (job, prop, Verdict.to_string v))
           (Campaign.verdicts pooled));
      Alcotest.(check (list int))
        (label "identical merged counters")
        (counters sequential) (counters pooled);
      Alcotest.(check string)
        (label "byte-identical merged JSONL")
        (Campaign.to_jsonl sequential) (Campaign.to_jsonl pooled))
    [ 1; 3; 100 (* larger than the queue *) ]

(* a raise in the middle of a claimed chunk must not take down the rest
   of the chunk, the worker, or the pool *)
let test_chunk_crash_is_contained () =
  let jobs =
    [
      session_job ~label:"ok-0" ~backend:Session.Reference
        ~properties:[ ("eventually_done", "F p_done") ];
      Campaign.job ~label:"crash-mid-chunk" (fun _trace -> failwith "chunked boom");
      session_job ~label:"ok-2" ~backend:Session.Reference
        ~properties:[ ("eventually_done", "F p_done") ];
      session_job ~label:"ok-3" ~backend:Session.Reference
        ~properties:[ ("eventually_done", "F p_done") ];
      Campaign.job ~label:"crash-chunk-end" (fun _trace -> failwith "boom 2");
      session_job ~label:"ok-5" ~backend:Session.Reference
        ~properties:[ ("eventually_done", "F p_done") ];
    ]
  in
  let summary = Campaign.run ~workers:2 ~chunk:3 jobs in
  Alcotest.(check int) "all outcomes present" 6
    (List.length summary.Campaign.outcomes);
  Alcotest.(check (list string)) "both crashes surface, in job order"
    [ "crash-mid-chunk"; "crash-chunk-end" ]
    (List.map fst (Campaign.errors summary));
  Alcotest.(check int) "jobs after an in-chunk crash still completed" 4
    (List.length (Campaign.results summary));
  List.iter
    (fun (_, _, v) ->
      Alcotest.(check bool) "healthy verdicts final" true
        (Verdict.equal v Verdict.True))
    (Campaign.verdicts summary)

let test_worker_crash_is_contained () =
  let jobs =
    [
      session_job ~label:"ok-before" ~backend:Session.Reference
        ~properties:[ ("eventually_done", "F p_done") ];
      Campaign.job ~label:"crasher" (fun _trace -> failwith "boom");
      session_job ~label:"ok-after" ~backend:Session.Derived_model
        ~properties:[ ("eventually_done", "F p_done") ];
    ]
  in
  let summary = Campaign.run ~workers:4 jobs in
  Alcotest.(check int) "three outcomes" 3 (List.length summary.Campaign.outcomes);
  (match (List.nth summary.Campaign.outcomes 1).Campaign.result with
  | Error msg ->
    Alcotest.(check bool) "error text carries the exception" true
      (contains ~needle:"boom" msg)
  | Ok _ -> Alcotest.fail "crashing job must produce an error outcome");
  Alcotest.(check (list string)) "crash surfaces in errors, in order"
    [ "crasher" ]
    (List.map fst (Campaign.errors summary));
  Alcotest.(check int) "healthy jobs still completed" 2
    (List.length (Campaign.results summary));
  List.iter
    (fun (_, _, v) ->
      Alcotest.(check bool) "healthy verdicts final" true
        (Verdict.equal v Verdict.True))
    (Campaign.verdicts summary)

(* ---- the EEE case study through the pool ------------------------------- *)

let eee_plan =
  {
    Eee.Harness.default_plan with
    Eee.Harness.ops = [ Eee.Eee_spec.Read; Eee.Eee_spec.Write ];
    approaches = [ 2 ];
    cases_per_op = 4;
    fault_rate = 0.01;
    seed = 5;
  }

let test_eee_campaign_deterministic () =
  let sequential = Eee.Harness.run_campaign ~workers:1 eee_plan in
  let pooled = Eee.Harness.run_campaign ~workers:3 eee_plan in
  Alcotest.(check bool) "no job errors" true
    (Campaign.errors sequential = [] && Campaign.errors pooled = []);
  Alcotest.(check (list (triple string string string)))
    "identical EEE verdicts"
    (List.map
       (fun (j, p, v) -> (j, p, Verdict.to_string v))
       (Campaign.verdicts sequential))
    (List.map
       (fun (j, p, v) -> (j, p, Verdict.to_string v))
       (Campaign.verdicts pooled));
  Alcotest.(check (list int))
    "identical EEE counters" (counters sequential) (counters pooled);
  Alcotest.(check string) "byte-identical EEE JSONL"
    (Campaign.to_jsonl sequential) (Campaign.to_jsonl pooled);
  Alcotest.(check int) "every case completed or timed out"
    (2 * eee_plan.Eee.Harness.cases_per_op)
    (Campaign.total_test_cases pooled + Campaign.total_timeouts pooled)

(* ---- QCheck: the seed-splitting contract ------------------------------- *)

let draws n prng = List.init n (fun _ -> Prng.next_int64 prng)

let qcheck_streams_reproducible =
  QCheck.Test.make ~name:"same (seed, index) is bit-reproducible" ~count:100
    QCheck.(pair small_int (int_bound 10_000))
    (fun (seed, index) ->
      draws 100 (Prng.of_seed_index ~seed ~index)
      = draws 100 (Prng.of_seed_index ~seed ~index))

let qcheck_streams_disjoint =
  QCheck.Test.make
    ~name:"distinct indices: first 1k draws are disjoint streams" ~count:50
    QCheck.(triple small_int (int_bound 10_000) (int_bound 10_000))
    (fun (seed, i, j) ->
      QCheck.assume (i <> j);
      let module S = Set.Make (Int64) in
      let a = S.of_list (draws 1_000 (Prng.of_seed_index ~seed ~index:i)) in
      let b = S.of_list (draws 1_000 (Prng.of_seed_index ~seed ~index:j)) in
      (* the prefixes must differ — and in fact share no value at all *)
      S.is_empty (S.inter a b))

let qcheck_named_split_stable =
  QCheck.Test.make ~name:"named split of an indexed stream is reproducible"
    ~count:100
    QCheck.(pair small_int (int_bound 1_000))
    (fun (seed, index) ->
      let stream () = Prng.split (Prng.of_seed_index ~seed ~index) "flash" in
      draws 50 (stream ()) = draws 50 (stream ()))

let () =
  Alcotest.run "campaign"
    [
      ( "pool",
        [
          Alcotest.test_case "jobs 1 == jobs 4 (verdicts, counters, JSONL)"
            `Quick test_pool_matches_sequential;
          Alcotest.test_case "deterministic merge order and seq" `Quick
            test_merge_order_and_seq;
          Alcotest.test_case "worker crash is contained" `Quick
            test_worker_crash_is_contained;
          Alcotest.test_case "chunked queue: jobs 1 == jobs 8 for chunk 1/3/100"
            `Quick test_chunked_queue_identity;
          Alcotest.test_case "crash inside a chunk is contained" `Quick
            test_chunk_crash_is_contained;
        ] );
      ( "eee",
        [
          Alcotest.test_case "EEE campaign deterministic across pools" `Quick
            test_eee_campaign_deterministic;
        ] );
      ( "prng",
        [
          QCheck_alcotest.to_alcotest qcheck_streams_reproducible;
          QCheck_alcotest.to_alcotest qcheck_streams_disjoint;
          QCheck_alcotest.to_alcotest qcheck_named_split_stable;
        ] );
    ]
