(* The compiled IL guard tables and the hybrid engine.

   - differential qcheck: [Il.Table] lookups (dense/sparse compiled form)
     agree with the list-scan [Il.next] oracle on every (state, mask) of
     automata synthesized from random formulas, through the textual IL
     round-trip, and [Il.Table.of_automaton] agrees with the raw
     [Ar_automaton.next] delta
   - the missing-guard diagnostic names the automaton and spells the
     valuation as a proposition assignment, on both the oracle and the
     compiled path
   - hybrid promotion units: promotion fires exactly at the threshold, a
     [Too_large] state budget keeps the monitor on-the-fly with verdicts
     identical to pure progression, and [reset] demotes cleanly
   - [Engine] string round-trips and the checker's [Auto] fallback *)

module Checker = Sctc.Checker
module Engine = Sctc.Engine
module F = Formula

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

(* --- random formulas over a/b/c (same shape as test_trigger_plan) ------ *)

let gen_formula =
  let open QCheck.Gen in
  let prop_name = oneofl [ "a"; "b"; "c" ] in
  let bound = oneof [ return None; map (fun n -> Some n) (int_bound 3) ] in
  sized_size (int_bound 12)
  @@ QCheck.Gen.fix (fun self n ->
         if n = 0 then oneof [ return F.tru; return F.fls; map F.prop prop_name ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map F.prop prop_name;
               map F.not_ sub;
               map2 F.and_ sub sub;
               map2 F.or_ sub sub;
               map F.next sub;
               map2 F.finally bound sub;
               map2 F.globally bound sub;
               map3 F.until bound sub sub;
               map3 F.release bound sub sub;
             ])

let gen_script =
  QCheck.Gen.(list_size (int_range 1 40) (triple bool bool bool))

(* --- IL table vs list-scan oracle -------------------------------------- *)

(* keep the synthesized automata small: the oracle comparison is per
   (state, mask), and [Il.of_automaton] pays a cube-minimization per
   state, so big automata only add runtime, not coverage *)
let automaton_of formula =
  match Ar_automaton.synthesize ~max_states:400 formula with
  | automaton -> automaton
  | exception Ar_automaton.Too_large _ -> QCheck.assume_fail ()

let arbitrary_formula =
  QCheck.make ~print:F.to_string gen_formula

let qcheck_table_vs_scan =
  QCheck.Test.make ~name:"Il.Table.next == Il.next over the IL round-trip"
    ~count:100 arbitrary_formula (fun formula ->
      let automaton = automaton_of formula in
      let il = Il.of_automaton ~name:"t" automaton in
      (* through the textual form, as the Via-IL engine loads it *)
      let il = Il.parse (Il.to_string il) in
      let table = Il.compile il in
      let width = Array.length il.Il.props in
      let states = Array.length il.Il.states in
      Alcotest.(check int) "state count" states (Il.Table.num_states table);
      for state = 0 to states - 1 do
        for mask = 0 to (1 lsl width) - 1 do
          (* twice: the second lookup exercises any lazily-filled cache *)
          if
            Il.Table.next table state mask <> Il.next il state mask
            || Il.Table.next table state mask <> Il.next il state mask
          then
            Alcotest.failf "divergence at state %d mask %d of %s" state mask
              (F.to_string formula)
        done
      done;
      true)

let qcheck_table_of_automaton =
  QCheck.Test.make ~name:"Il.Table.of_automaton == Ar_automaton.next"
    ~count:100 arbitrary_formula (fun formula ->
      let automaton = automaton_of formula in
      let table = Il.Table.of_automaton ~name:"t" automaton in
      let width = Ar_automaton.num_props automaton in
      for state = 0 to Ar_automaton.num_states automaton - 1 do
        for mask = 0 to (1 lsl width) - 1 do
          Alcotest.(check int)
            (Printf.sprintf "state %d mask %d" state mask)
            (Ar_automaton.next automaton state mask)
            (Il.Table.next table state mask)
        done
      done;
      true)

let qcheck_il_roundtrip =
  QCheck.Test.make ~name:"IL pp/parse round trip preserves next" ~count:100
    arbitrary_formula (fun formula ->
      let automaton = automaton_of formula in
      let il = Il.of_automaton ~name:"rt" automaton in
      let il' = Il.parse (Il.to_string il) in
      Alcotest.(check string) "name" il.Il.name il'.Il.name;
      Alcotest.(check int) "initial" il.Il.initial il'.Il.initial;
      let width = Array.length il.Il.props in
      for state = 0 to Array.length il.Il.states - 1 do
        for mask = 0 to (1 lsl width) - 1 do
          Alcotest.(check int)
            (Printf.sprintf "state %d mask %d" state mask)
            (Il.next il state mask) (Il.next il' state mask)
        done
      done;
      true)

(* a pending state whose guards do not cover mask 0 (a=0 b=0): the
   diagnostic must name the automaton and spell the valuation out *)
let missing_guard_il =
  Il.parse
    "automaton gap {\n\
    \  props: a, b;\n\
    \  initial: 0;\n\
    \  state 0 pending {\n\
    \    on 1- -> 1;\n\
    \  }\n\
    \  state 1 accept {\n\
    \  }\n\
     }"

let test_missing_guard_message () =
  let expect_message next =
    match next () with
    | (_ : int) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument msg ->
      let contains needle =
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" msg needle)
          true
          (let len = String.length needle in
           let rec probe i =
             i + len <= String.length msg
             && (String.sub msg i len = needle || probe (i + 1))
           in
           probe 0)
      in
      contains "gap";
      contains "a=0";
      contains "b=1";
      contains "mask 2"
  in
  (* mask 2 = a false, b true; only cubes with a=1 are covered *)
  expect_message (fun () -> Il.next missing_guard_il 0 2);
  expect_message (fun () -> Il.Table.next (Il.compile missing_guard_il) 0 2)

(* --- hybrid promotion --------------------------------------------------- *)

let binding_of current name () =
  match name with
  | "a" -> let a, _, _ = !current in a
  | "b" -> let _, b, _ = !current in b
  | "c" -> let _, _, c = !current in c
  | _ -> invalid_arg ("unexpected proposition " ^ name)

let test_promotion_at_threshold () =
  let current = ref (true, false, false) in
  let formula = Sctc.Prop.parse_exn ~syntax:`Fltl "G (a -> F[3] b)" in
  let monitor =
    Monitor.of_formula_hybrid ~name:"p" ~promote_after:4 formula
      ~binding:(binding_of current)
  in
  (* stays on-the-fly strictly below the threshold... *)
  current := (false, false, false);
  for _ = 1 to 3 do
    ignore (Monitor.step monitor)
  done;
  Alcotest.(check bool) "not yet promoted" false (Monitor.promoted monitor);
  (* ...and promotes exactly when one residual absorbs its 4th step *)
  ignore (Monitor.step monitor);
  Alcotest.(check bool) "promoted at threshold" true (Monitor.promoted monitor);
  check_verdict "still pending" Verdict.Pending (Monitor.verdict monitor);
  (* the promoted table keeps computing real verdicts *)
  current := (true, false, false);
  ignore (Monitor.step monitor);
  for _ = 1 to 4 do
    ignore (Monitor.step monitor)
  done;
  check_verdict "violation detected after promotion" Verdict.False
    (Monitor.verdict monitor)

let test_too_large_fallback_identical () =
  let current = ref (false, false, false) in
  let formula = Sctc.Prop.parse_exn ~syntax:`Fltl "G (a -> F[200] b)" in
  (* max_states 4 cannot hold the ~200-state countdown: promotion must
     fail and the monitor must stay on-the-fly with identical verdicts *)
  let hybrid =
    Monitor.of_formula_hybrid ~name:"h" ~promote_after:2 ~max_states:4 formula
      ~binding:(binding_of current)
  in
  let otf =
    Monitor.of_formula ~name:"o" formula ~binding:(binding_of current)
  in
  let script =
    [ (false, false, false); (true, false, false); (false, false, false);
      (false, true, false); (true, false, false); (false, false, false);
      (false, false, false); (false, true, false) ]
  in
  List.iteri
    (fun i triple ->
      current := triple;
      let hv = Monitor.step hybrid in
      let ov = Monitor.step otf in
      check_verdict (Printf.sprintf "step %d" i) ov hv)
    script;
  Alcotest.(check bool) "never promoted" false (Monitor.promoted hybrid);
  check_verdict "finalize agrees" (Monitor.finalize otf)
    (Monitor.finalize hybrid)

let test_reset_demotes () =
  let current = ref (false, false, false) in
  let formula = Sctc.Prop.parse_exn ~syntax:`Fltl "G (a -> F[3] b)" in
  let monitor =
    Monitor.of_formula_hybrid ~name:"p" ~promote_after:2 formula
      ~binding:(binding_of current)
  in
  for _ = 1 to 2 do
    ignore (Monitor.step monitor)
  done;
  Alcotest.(check bool) "promoted" true (Monitor.promoted monitor);
  Monitor.reset monitor;
  Alcotest.(check bool) "demoted by reset" false (Monitor.promoted monitor);
  Alcotest.(check int) "step count cleared" 0 (Monitor.steps monitor);
  check_verdict "verdict back to initial" Verdict.Pending
    (Monitor.verdict monitor);
  (* a fresh run re-earns the promotion *)
  for _ = 1 to 2 do
    ignore (Monitor.step monitor)
  done;
  Alcotest.(check bool) "re-promoted" true (Monitor.promoted monitor)

let arbitrary_hybrid_case =
  QCheck.make
    ~print:(fun (formula, script) ->
      Printf.sprintf "%s over %d steps" (F.to_string formula)
        (List.length script))
    QCheck.Gen.(pair gen_formula gen_script)

(* promote aggressively (threshold 2, small budget) so random runs mix
   promoted and fallback paths, and compare against pure progression *)
let qcheck_hybrid_vs_progression =
  QCheck.Test.make ~name:"hybrid == progression, per step" ~count:100
    arbitrary_hybrid_case (fun (formula, script) ->
      let current = ref (false, false, false) in
      let hybrid =
        Monitor.of_formula_hybrid ~name:"h" ~promote_after:2 ~max_states:64
          formula ~binding:(binding_of current)
      in
      let reference = ref formula in
      List.iter
        (fun ((a, b, c) as triple) ->
          current := triple;
          let hv = Monitor.step hybrid in
          if not (Verdict.is_final (Progression.verdict !reference)) then
            reference :=
              Progression.step !reference (function
                | "a" -> a
                | "b" -> b
                | "c" -> c
                | name -> invalid_arg name);
          let rv = Progression.verdict !reference in
          if not (Verdict.equal hv rv) then
            Alcotest.failf "diverged on %s: %s vs %s" (F.to_string formula)
              (Verdict.to_string hv) (Verdict.to_string rv))
        script;
      Verdict.equal (Monitor.finalize hybrid)
        (Progression.finalize !reference))

(* --- the engine enum and the checker's Auto fallback -------------------- *)

let test_engine_strings () =
  List.iter
    (fun engine ->
      Alcotest.(check bool)
        (Engine.to_string engine ^ " round-trips")
        true
        (Engine.of_string (Engine.to_string engine) = Some engine))
    Engine.all;
  Alcotest.(check bool) "on-the-fly alias" true
    (Engine.of_string "on-the-fly" = Some Engine.Otf);
  Alcotest.(check bool) "case-insensitive" true
    (Engine.of_string "AUTO" = Some Engine.Auto);
  Alcotest.(check bool) "unknown rejected" true
    (Engine.of_string "warp" = None);
  match Engine.of_string_exn "warp" with
  | (_ : Engine.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message lists the engines" true
      (String.length msg > String.length "warp")

let test_checker_auto_falls_back () =
  let value = ref 0 in
  let checker = Checker.create ~name:"auto" () in
  Checker.register_sampler checker "req" (fun () -> !value mod 17 = 1);
  Checker.register_sampler checker "ack" (fun () -> !value mod 17 = 5);
  (* a state budget far below the bound: Auto must fall back to hybrid
     instead of raising Too_large, and still verify correctly *)
  Checker.add_property_text ~engine:Checker.Auto ~max_states:4 checker
    ~name:"p" "G (req -> F[500] ack)";
  let reference = Checker.create ~name:"otf" () in
  Checker.register_sampler reference "req" (fun () -> !value mod 17 = 1);
  Checker.register_sampler reference "ack" (fun () -> !value mod 17 = 5);
  Checker.add_property_text ~engine:Checker.Otf reference ~name:"p"
    "G (req -> F[500] ack)";
  for _ = 1 to 300 do
    incr value;
    Checker.step checker;
    Checker.step reference;
    check_verdict "auto == otf"
      (Checker.verdict reference "p")
      (Checker.verdict checker "p")
  done

let test_checker_opt_accessors () =
  let checker = Checker.create ~name:"opt" () in
  Checker.register_sampler checker "a" (fun () -> true);
  Checker.add_property_text checker ~name:"p" "F a";
  Alcotest.(check bool) "verdict_opt known" true
    (Checker.verdict_opt checker "p" <> None);
  Alcotest.(check bool) "verdict_opt unknown" true
    (Checker.verdict_opt checker "nope" = None);
  Alcotest.(check (option int)) "first_final_at_opt unknown" None
    (Checker.first_final_at_opt checker "nope");
  Checker.step checker;
  Alcotest.(check (option int)) "first_final_at_opt known" (Some 1)
    (Checker.first_final_at_opt checker "p");
  (* the raising twins keep raising, with the property list in the message *)
  (match Checker.verdict checker "nope" with
  | (_ : Verdict.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Checker.first_final_at checker "nope" with
  | (_ : int option) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let qcheck cases = List.map (QCheck_alcotest.to_alcotest ~verbose:false) cases

let () =
  Alcotest.run "hybrid"
    [
      ( "il-table",
        [
          Alcotest.test_case "missing-guard diagnostic" `Quick
            test_missing_guard_message;
        ]
        @ qcheck
            [
              qcheck_table_vs_scan; qcheck_table_of_automaton;
              qcheck_il_roundtrip;
            ] );
      ( "promotion",
        [
          Alcotest.test_case "fires at threshold" `Quick
            test_promotion_at_threshold;
          Alcotest.test_case "Too_large fallback identical" `Quick
            test_too_large_fallback_identical;
          Alcotest.test_case "reset demotes" `Quick test_reset_demotes;
        ]
        @ qcheck [ qcheck_hybrid_vs_progression ] );
      ( "engine-api",
        [
          Alcotest.test_case "string round-trips" `Quick test_engine_strings;
          Alcotest.test_case "checker Auto falls back" `Quick
            test_checker_auto_falls_back;
          Alcotest.test_case "_opt accessors" `Quick
            test_checker_opt_accessors;
        ] );
    ]
