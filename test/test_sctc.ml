(* Tests for the SCTC core: checker lifecycle, engines, violation callbacks,
   coverage collection, report rendering, and simulation triggers. *)

module Checker = Sctc.Checker
module Coverage = Sctc.Coverage
module Report = Sctc.Report
module Trace = Sctc.Trace
module Trigger = Sctc.Trigger
module Kernel = Sim.Kernel
module Clock = Sim.Clock

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

(* --- checker basics ------------------------------------------------------ *)

let scripted_checker ?engine () =
  let a = ref false and b = ref false in
  let checker = Checker.create ~name:"test" () in
  Checker.register_sampler checker "a" (fun () -> !a);
  Checker.register_sampler checker "b" (fun () -> !b);
  Checker.add_property_text ?engine checker ~name:"resp" "G (a -> F[2] b)";
  (checker, a, b)

let test_checker_basic_run () =
  let checker, a, b = scripted_checker () in
  Checker.step checker;
  check_verdict "pending initially" Verdict.Pending
    (Checker.verdict checker "resp");
  a := true;
  Checker.step checker;
  a := false;
  Checker.step checker;
  b := true;
  Checker.step checker;
  check_verdict "request answered, still guarding" Verdict.Pending
    (Checker.verdict checker "resp");
  Alcotest.(check int) "steps counted" 4 (Checker.steps checker)

let test_checker_violation_callback () =
  let checker, a, _b = scripted_checker () in
  let fired = ref [] in
  Checker.on_violation checker (fun name step -> fired := (name, step) :: !fired);
  a := true;
  Checker.step checker;
  (* trigger request *)
  a := false;
  Checker.step checker;
  Checker.step checker;
  Checker.step checker;
  (* F[2] window (steps 1..3) expired without b *)
  check_verdict "violated" Verdict.False (Checker.verdict checker "resp");
  Alcotest.(check (list (pair string int))) "fired exactly once at step 3"
    [ ("resp", 3) ] !fired;
  Checker.step checker;
  Alcotest.(check int) "no refire" 1 (List.length !fired)

let test_checker_engines_agree () =
  let run engine =
    let checker, a, b = scripted_checker ~engine () in
    let script =
      [ (false, false); (true, false); (false, false); (false, true);
        (true, false); (false, false); (false, false); (false, false) ]
    in
    List.map
      (fun (va, vb) ->
        a := va;
        b := vb;
        Checker.step checker;
        Checker.verdict checker "resp")
      script
  in
  let otf = run Checker.Otf in
  List.iter
    (fun engine ->
      let label = Sctc.Engine.to_string engine in
      List.iteri
        (fun i (v1, v2) ->
          check_verdict (Printf.sprintf "%s step %d" label i) v1 v2)
        (List.combine otf (run engine)))
    (List.filter (fun e -> e <> Sctc.Engine.Otf) Sctc.Engine.all)

let test_checker_unknown_prop_rejected () =
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "a" (fun () -> true);
  match
    Checker.add_property_text checker ~name:"p" "G (a -> F missing)"
  with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions proposition" true
      (String.length msg > 0)

let test_checker_duplicate_property () =
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "a" (fun () -> true);
  Checker.add_property_text checker ~name:"p" "G a";
  match Checker.add_property_text checker ~name:"p" "F a" with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_checker_psl_syntax () =
  let checker = Checker.create ~name:"t" () in
  let ok = ref true in
  Checker.register_sampler checker "ok" (fun () -> !ok);
  Checker.add_property_text ~syntax:Checker.Psl checker ~name:"inv"
    "always ok";
  Checker.step checker;
  check_verdict "pending" Verdict.Pending (Checker.verdict checker "inv");
  ok := false;
  Checker.step checker;
  check_verdict "violated" Verdict.False (Checker.verdict checker "inv")

let test_checker_overall_and_finalize () =
  let checker = Checker.create ~name:"t" () in
  let a = ref true in
  Checker.register_sampler checker "a" (fun () -> !a);
  Checker.add_property_text checker ~name:"safety" "G a";
  Checker.add_property_text checker ~name:"liveness" "F !a";
  Checker.step checker;
  check_verdict "overall pending" Verdict.Pending (Checker.overall checker);
  let final = Checker.finalize ~strong:true checker in
  check_verdict "safety true under strong close" Verdict.True
    (List.assoc "safety" final);
  check_verdict "liveness false under strong close" Verdict.False
    (List.assoc "liveness" final)

let test_checker_reset () =
  let checker, a, _b = scripted_checker () in
  a := true;
  Checker.step checker;
  Checker.step checker;
  Checker.step checker;
  Checker.step checker;
  check_verdict "violated before reset" Verdict.False
    (Checker.verdict checker "resp");
  Checker.reset checker;
  Alcotest.(check int) "steps zeroed" 0 (Checker.steps checker);
  check_verdict "pending after reset" Verdict.Pending
    (Checker.verdict checker "resp")

let test_synthesis_time_accounted () =
  let checker = Checker.create ~name:"t" () in
  Checker.register_sampler checker "a" (fun () -> true);
  Alcotest.(check (float 0.0)) "zero before" 0.0
    (Checker.synthesis_seconds checker);
  (* a bound no other test synthesizes, so this add is a cache miss *)
  Checker.add_property_text ~engine:Checker.Explicit checker ~name:"p"
    "F[2017] a";
  Alcotest.(check bool) "positive after explicit synthesis" true
    (Checker.synthesis_seconds checker > 0.0);
  (* the same property on a fresh checker is served by the per-domain
     automaton cache: no new synthesis time is charged *)
  let cached = Checker.create ~name:"t2" () in
  Checker.register_sampler cached "a" (fun () -> true);
  Checker.add_property_text ~engine:Checker.Explicit cached ~name:"p"
    "F[2017] a";
  Alcotest.(check (float 0.0)) "cache hit charges no synthesis time" 0.0
    (Checker.synthesis_seconds cached)

(* --- coverage ------------------------------------------------------------- *)

let test_coverage_basic () =
  let cov = Coverage.create ~name:"read" ~expected:[ "OK"; "BUSY"; "ERR" ] in
  Alcotest.(check (float 0.01)) "empty" 0.0 (Coverage.percent cov);
  Coverage.observe cov "OK";
  Coverage.observe cov "OK";
  Coverage.observe cov "BUSY";
  Alcotest.(check (float 0.01)) "two thirds" 66.67 (Coverage.percent cov);
  Alcotest.(check (list string)) "missing" [ "ERR" ] (Coverage.missing cov);
  Alcotest.(check int) "observations" 3 (Coverage.observations cov);
  Coverage.observe cov "WAT";
  Alcotest.(check (list string)) "unexpected" [ "WAT" ] (Coverage.unexpected cov);
  Coverage.observe cov "ERR";
  Alcotest.(check (float 0.01)) "full" 100.0 (Coverage.percent cov)

let test_coverage_merge_and_reset () =
  let mk () = Coverage.create ~name:"op" ~expected:[ "A"; "B" ] in
  let c1 = mk () and c2 = mk () in
  Coverage.observe c1 "A";
  Coverage.observe c2 "B";
  let merged = Coverage.merge c1 c2 in
  Alcotest.(check (float 0.01)) "merged full" 100.0 (Coverage.percent merged);
  Coverage.reset c1;
  Alcotest.(check (float 0.01)) "reset empty" 0.0 (Coverage.percent c1);
  let other = Coverage.create ~name:"other" ~expected:[ "A" ] in
  match Coverage.merge c1 other with
  | _ -> Alcotest.fail "expected incompatible merge to fail"
  | exception Invalid_argument _ -> ()

(* --- report ---------------------------------------------------------------- *)

let test_report_rendering () =
  let rows =
    [
      Report.row ~test_cases:100 ~coverage_pct:87.5 "Read" 1.25 "pass";
      Report.row "Write" 0.5 "Exception";
    ]
  in
  let text =
    Report.to_string ~title:"demo"
      ~columns:[ "V.T.(s)"; "T.C."; "C.(%)"; "Result" ]
      rows
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec search i = i + nl <= hl && (String.sub haystack i nl = needle || search (i + 1)) in
    search 0
  in
  Alcotest.(check bool) "title" true (contains "demo" text);
  Alcotest.(check bool) "row name" true (contains "Read" text);
  Alcotest.(check bool) "coverage" true (contains "87.5" text);
  Alcotest.(check bool) "dash for missing" true (contains "-" text);
  let csv = Report.csv rows in
  let csv_lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "csv is header plus both rows" 3
    (List.length csv_lines);
  Alcotest.(check string) "csv header"
    "name,vt_seconds,test_cases,coverage_pct,result" (List.hd csv_lines)

let test_report_csv_quoting () =
  (* RFC 4180: fields holding commas or quotes are quoted, embedded quotes
     doubled; plain fields stay bare *)
  let csv = Report.csv [ Report.row "Read,\"raw\"" 1.0 "ok" ] in
  match String.split_on_char '\n' csv with
  | [ _header; data ] ->
    Alcotest.(check string) "quoted row" "\"Read,\"\"raw\"\"\",1.000000,,,ok"
      data
  | _ -> Alcotest.fail "expected exactly header and one data line"

let test_report_jsonl () =
  let rows =
    [
      Report.row ~test_cases:100 ~coverage_pct:87.5 "Read" 1.25 "pass";
      Report.row "Write" 0.5 "Exception";
    ]
  in
  let lines = String.split_on_char '\n' (Report.jsonl rows) in
  Alcotest.(check int) "one object per row" 2 (List.length lines);
  Alcotest.(check string) "row with all columns"
    {|{"name":"Read","vt_seconds":1.250000,"test_cases":100,"coverage_pct":87.5,"result":"pass"}|}
    (List.hd lines);
  Alcotest.(check string) "missing columns are null"
    {|{"name":"Write","vt_seconds":0.500000,"test_cases":null,"coverage_pct":null,"result":"Exception"}|}
    (List.nth lines 1)

(* --- sim triggers ----------------------------------------------------------- *)

let test_trigger_on_clock () =
  let kernel = Kernel.create () in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let level = ref 0 in
  let checker = Checker.create ~name:"clocked" () in
  Checker.register_sampler checker "high" (fun () -> !level > 3);
  Checker.add_property_text checker ~name:"even" "F high";
  ignore (Trigger.on_clock kernel clock checker);
  ignore
    (Kernel.spawn kernel ~name:"stim" (fun () ->
         let rec loop () =
           Clock.wait_posedge clock;
           incr level;
           loop ()
         in
         loop ()));
  Kernel.run ~max_time:100 kernel;
  Alcotest.(check bool) "checker stepped once per edge" true
    (Checker.steps checker >= 9);
  check_verdict "liveness seen" Verdict.True (Checker.verdict checker "even")

let test_trigger_handshake () =
  (* on_event_when must not arm properties before the flag turns true; the
     property G initialized would otherwise fail on the first cycles. *)
  let kernel = Kernel.create () in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let initialized = ref false in
  let checker = Checker.create ~name:"hs" () in
  Checker.register_sampler checker "initialized" (fun () -> !initialized);
  Checker.add_property_text checker ~name:"init-stays" "G initialized";
  ignore
    (Trigger.on_event_when kernel (Clock.posedge clock)
       ~ready:(fun () -> !initialized)
       checker);
  ignore
    (Kernel.spawn kernel ~name:"boot" (fun () ->
         Kernel.wait_for kernel 35;
         initialized := true));
  Kernel.run ~max_time:100 kernel;
  check_verdict "no spurious violation" Verdict.Pending
    (Checker.verdict checker "init-stays");
  Alcotest.(check bool) "stepped after handshake only" true
    (Checker.steps checker < 8 && Checker.steps checker > 0)

let test_trigger_handshake_arms_once () =
  (* triggers consumed while ready() is still false must not step the
     checker, and the bus must see exactly one Handshake_armed event *)
  let kernel = Kernel.create () in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let trace = Trace.create () in
  let sink, events = Trace.memory_sink () in
  Trace.attach trace sink;
  let initialized = ref false in
  let checker = Checker.create ~trace ~name:"hs2" () in
  Checker.register_sampler checker "initialized" (fun () -> !initialized);
  Checker.add_property_text checker ~name:"init-stays" "G initialized";
  ignore
    (Trigger.on_event_when kernel (Clock.posedge clock)
       ~ready:(fun () -> !initialized)
       checker);
  ignore
    (Kernel.spawn kernel ~name:"boot" (fun () ->
         Kernel.wait_for kernel 35;
         initialized := true));
  Kernel.run ~max_time:200 kernel;
  let count pred = List.length (List.filter pred (events ())) in
  Alcotest.(check int) "armed exactly once" 1
    (count (fun e ->
         match e.Trace.kind with Trace.Handshake_armed _ -> true | _ -> false));
  let triggers =
    count (fun e -> match e.Trace.kind with Trace.Trigger -> true | _ -> false)
  in
  Alcotest.(check bool) "steps only after the handshake" true (triggers > 0);
  Alcotest.(check int) "every published trigger stepped the checker" triggers
    (Checker.steps checker);
  (* the clock edges at t = 10, 20, 30 precede the handshake: they are
     consumed without stepping, so strictly fewer steps than edges *)
  Alcotest.(check bool) "pre-handshake edges consumed silently" true
    (triggers <= (200 / 10) - 3)

let suite_checker =
  [
    Alcotest.test_case "basic run" `Quick test_checker_basic_run;
    Alcotest.test_case "violation callback" `Quick
      test_checker_violation_callback;
    Alcotest.test_case "engines agree" `Quick test_checker_engines_agree;
    Alcotest.test_case "unknown proposition rejected" `Quick
      test_checker_unknown_prop_rejected;
    Alcotest.test_case "duplicate property rejected" `Quick
      test_checker_duplicate_property;
    Alcotest.test_case "psl syntax" `Quick test_checker_psl_syntax;
    Alcotest.test_case "overall and finalize" `Quick
      test_checker_overall_and_finalize;
    Alcotest.test_case "reset" `Quick test_checker_reset;
    Alcotest.test_case "synthesis time accounted" `Quick
      test_synthesis_time_accounted;
  ]

let suite_coverage =
  [
    Alcotest.test_case "basic" `Quick test_coverage_basic;
    Alcotest.test_case "merge and reset" `Quick test_coverage_merge_and_reset;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "csv quoting" `Quick test_report_csv_quoting;
    Alcotest.test_case "jsonl report" `Quick test_report_jsonl;
  ]

let suite_trigger =
  [
    Alcotest.test_case "on clock" `Quick test_trigger_on_clock;
    Alcotest.test_case "handshake gating" `Quick test_trigger_handshake;
    Alcotest.test_case "handshake arms exactly once" `Quick
      test_trigger_handshake_arms_once;
  ]

let () =
  Alcotest.run "sctc"
    [
      ("checker", suite_checker);
      ("coverage", suite_coverage);
      ("trigger", suite_trigger);
    ]
