(* Tests for the EEPROM-emulation case study: functional behaviour of the
   software (driven through the mailbox on both approaches), specification
   propositions/properties, and small verification campaigns. *)

module Spec = Eee.Eee_spec
module Driver = Eee.Driver
module Harness = Eee.Harness
module Mailbox = Platform.Mailbox
module Checker = Sctc.Checker
module Coverage = Sctc.Coverage

let check_verdict = Alcotest.check (Alcotest.testable Verdict.pp Verdict.equal)

(* issue one op through a session's mailbox and wait for the response *)
let issue ?(max_chunks = 400) session op ~arg0 ~arg1 =
  let mbox = Verif.Session.mailbox session in
  Mailbox.post_request mbox ~op:(Spec.op_code op) ~arg0 ~arg1;
  let rec wait chunk =
    if Mailbox.response_ready mbox then Mailbox.take_response mbox
    else if chunk >= max_chunks then Alcotest.fail "operation timed out"
    else begin
      Verif.Session.advance session;
      wait (chunk + 1)
    end
  in
  wait 0

let code name =
  match name with
  | "OK" -> Spec.eee_ok
  | "BUSY" -> Spec.eee_busy
  | "INIT" -> Spec.eee_err_init
  | "ACCESS" -> Spec.eee_err_access
  | "NO_INSTANCE" -> Spec.eee_err_no_instance
  | "POOL_FULL" -> Spec.eee_err_pool_full
  | "PARAMETER" -> Spec.eee_err_parameter
  | "NOT_FORMATTED" -> Spec.eee_err_not_formatted
  | _ -> assert false

(* --- static checks on the software -------------------------------------- *)

let test_software_shape () =
  Alcotest.(check bool) "substantive line count" true
    (Eee.Eee_program.line_count () > 200);
  Alcotest.(check bool) "many functions" true
    (Eee.Eee_program.function_count () >= 20);
  (* parses, typechecks, compiles and derives without error *)
  ignore (Eee.Eee_program.compile ());
  ignore (Eee.Eee_program.derive ())

let test_spec_properties_parse () =
  List.iter
    (fun op ->
      let text = Spec.property_text ~bound:1000 op in
      match Fltl_parser.parse_result text with
      | Ok f ->
        Alcotest.(check bool)
          (Spec.op_name op ^ " property has a bound")
          true
          (Formula.max_bound f = Some 1000)
      | Error msg -> Alcotest.failf "property does not parse: %s" msg)
    Spec.all_ops

(* --- functional behaviour (fast: approach 2, no faults) ------------------- *)

let fresh_backend ?(fault_rate = 0.0) ?(seed = 11) () =
  Harness.approach2 ~fault_rate ~seed ~chunk_statements:50 ()

let test_lifecycle_format_write_read () =
  let backend = fresh_backend () in
  (* before initialization: read rejected *)
  Alcotest.(check int) "read before init" (code "INIT")
    (issue backend Spec.Read ~arg0:3 ~arg1:0);
  (* startup on unformatted flash *)
  Alcotest.(check int) "startup1 unformatted" (code "NOT_FORMATTED")
    (issue backend Spec.Startup1 ~arg0:0 ~arg1:0);
  (* format, then full write/read round trip *)
  Alcotest.(check int) "format" (code "OK")
    (issue backend Spec.Format ~arg0:0 ~arg1:0);
  Alcotest.(check int) "write id=3" (code "OK")
    (issue backend Spec.Write ~arg0:3 ~arg1:777);
  Alcotest.(check int) "read id=3" (code "OK")
    (issue backend Spec.Read ~arg0:3 ~arg1:0);
  Alcotest.(check int) "read returns stored value" 777
    (Verif.Session.read_var backend "eee_read_value");
  (* overwrite: latest record wins *)
  Alcotest.(check int) "write id=3 again" (code "OK")
    (issue backend Spec.Write ~arg0:3 ~arg1:888);
  Alcotest.(check int) "read id=3 again" (code "OK")
    (issue backend Spec.Read ~arg0:3 ~arg1:0);
  Alcotest.(check int) "latest value" 888
    (Verif.Session.read_var backend "eee_read_value");
  (* unknown id *)
  Alcotest.(check int) "read unwritten id" (code "NO_INSTANCE")
    (issue backend Spec.Read ~arg0:9 ~arg1:0);
  (* invalid parameters *)
  Alcotest.(check int) "read invalid id" (code "PARAMETER")
    (issue backend Spec.Read ~arg0:99 ~arg1:0);
  Alcotest.(check int) "write invalid id" (code "PARAMETER")
    (issue backend Spec.Write ~arg0:(-1) ~arg1:0)

let test_startup_sequence_restores_state () =
  let backend = fresh_backend () in
  ignore (issue backend Spec.Format ~arg0:0 ~arg1:0);
  ignore (issue backend Spec.Write ~arg0:5 ~arg1:123);
  ignore (issue backend Spec.Write ~arg0:7 ~arg1:456);
  (* simulate a reboot of the emulation layer state machine: startup1 and
     startup2 rebuild the index from flash *)
  Alcotest.(check int) "startup1" (code "OK")
    (issue backend Spec.Startup1 ~arg0:0 ~arg1:0);
  Alcotest.(check int) "startup2" (code "OK")
    (issue backend Spec.Startup2 ~arg0:0 ~arg1:0);
  Alcotest.(check int) "read id=5 after restart" (code "OK")
    (issue backend Spec.Read ~arg0:5 ~arg1:0);
  Alcotest.(check int) "value survived" 123
    (Verif.Session.read_var backend "eee_read_value");
  ignore (issue backend Spec.Read ~arg0:7 ~arg1:0);
  Alcotest.(check int) "second value survived" 456
    (Verif.Session.read_var backend "eee_read_value")

let test_startup2_requires_startup1 () =
  let backend = fresh_backend () in
  Alcotest.(check int) "startup2 before startup1" (code "INIT")
    (issue backend Spec.Startup2 ~arg0:0 ~arg1:0)

let test_pool_full_and_refresh () =
  let backend = fresh_backend () in
  ignore (issue backend Spec.Format ~arg0:0 ~arg1:0);
  (* 128-word block, header + 63 records fills the pool *)
  let full = ref None in
  (try
     for i = 0 to 70 do
       let ret = issue backend Spec.Write ~arg0:(i mod 16) ~arg1:i in
       if ret = code "POOL_FULL" then begin
         full := Some i;
         raise Exit
       end
       else if ret <> code "OK" then Alcotest.failf "write %d returned %d" i ret
     done
   with Exit -> ());
  (match !full with
  | Some writes -> Alcotest.(check int) "pool fills after 63 records" 63 writes
  | None -> Alcotest.fail "pool never filled");
  (* refresh compacts to the latest 16 ids and frees space *)
  Alcotest.(check int) "refresh" (code "OK")
    (issue backend Spec.Refresh ~arg0:0 ~arg1:0);
  (* refresh erases the old pool in the background: let it finish *)
  for _ = 1 to 40 do Verif.Session.advance backend done;
  Alcotest.(check int) "write works again" (code "OK")
    (issue backend Spec.Write ~arg0:1 ~arg1:4242);
  (* latest values preserved across the pool swap: id 14 last written 62 *)
  Alcotest.(check int) "read preserved id" (code "OK")
    (issue backend Spec.Read ~arg0:14 ~arg1:0);
  Alcotest.(check int) "compacted value" 62
    (Verif.Session.read_var backend "eee_read_value")

let test_busy_during_background_erase () =
  let backend = fresh_backend () in
  ignore (issue backend Spec.Format ~arg0:0 ~arg1:0);
  ignore (issue backend Spec.Write ~arg0:0 ~arg1:1);
  (* make the alternate block dirty so prepare must erase it *)
  ignore (issue backend Spec.Refresh ~arg0:0 ~arg1:0);
  (* refresh left a background erase running; an immediate operation must
     be answered with EEE_BUSY *)
  let ret = issue ~max_chunks:2 backend Spec.Format ~arg0:0 ~arg1:0 in
  Alcotest.(check int) "busy during background erase" (code "BUSY") ret;
  (* after the erase completes the same operation succeeds *)
  for _ = 1 to 40 do Verif.Session.advance backend done;
  Alcotest.(check int) "ready afterwards" (code "OK")
    (issue backend Spec.Format ~arg0:0 ~arg1:0)

let test_access_errors_with_faulty_flash () =
  let backend = fresh_backend ~fault_rate:1.0 () in
  (* every program/erase fails: format must report an access error *)
  Alcotest.(check int) "format on broken flash" (code "ACCESS")
    (issue backend Spec.Format ~arg0:0 ~arg1:0)

let test_flash_override () =
  (* the plan/session flash override reaches the device model: on the
     quick timing the software still behaves identically *)
  let flash = Harness.flash_quick_config ~fault_rate:0.0 in
  let backend = Harness.approach2 ~fault_rate:0.0 ~flash ~seed:3 () in
  Alcotest.(check int) "format" (code "OK")
    (issue backend Spec.Format ~arg0:0 ~arg1:0);
  Alcotest.(check int) "write" (code "OK")
    (issue backend Spec.Write ~arg0:2 ~arg1:2718);
  Alcotest.(check int) "read" (code "OK")
    (issue backend Spec.Read ~arg0:2 ~arg1:0);
  Alcotest.(check int) "value round-trips" 2718
    (Verif.Session.read_var backend "eee_read_value")

(* --- approach 1 runs the same software --------------------------------------- *)

let test_approach1_lifecycle () =
  let backend = Harness.approach1 ~fault_rate:0.0 ~seed:3 () in
  Alcotest.(check int) "format" (code "OK")
    (issue backend Spec.Format ~arg0:0 ~arg1:0);
  Alcotest.(check int) "write" (code "OK")
    (issue backend Spec.Write ~arg0:4 ~arg1:31415);
  Alcotest.(check int) "read" (code "OK")
    (issue backend Spec.Read ~arg0:4 ~arg1:0);
  Alcotest.(check int) "value via memory interface" 31415
    (Verif.Session.read_var backend "eee_read_value");
  Alcotest.(check int) "read unwritten" (code "NO_INSTANCE")
    (issue backend Spec.Read ~arg0:11 ~arg1:0)

(* --- specification monitoring -------------------------------------------------- *)

let test_properties_hold_during_campaign () =
  let backend = fresh_backend ~fault_rate:0.05 ~seed:5 () in
  Driver.install_spec backend Spec.all_ops;
  let config =
    { Driver.default_config with test_cases = 40; seed = 5;
      watchdog_chunks = 400 }
  in
  let outcome = Driver.run_campaign backend config Spec.Read in
  Alcotest.(check int) "all cases completed" 40 (Verif.Result.completed_cases outcome);
  Alcotest.(check bool) "some coverage" true
    (Verif.Result.coverage_percent outcome > 30.0);
  (* the software conforms: the response property must never be violated *)
  check_verdict "read property not violated" Verdict.Pending
    (Verif.Result.verdict outcome (Spec.property_name Spec.Read));
  (* every op's property is non-violated *)
  List.iter
    (fun op ->
      let verdict = Checker.verdict (Verif.Session.checker backend) (Spec.property_name op) in
      Alcotest.(check bool)
        (Spec.op_name op ^ " not violated")
        true
        (not (Verdict.equal verdict Verdict.False)))
    Spec.all_ops

let test_coverage_improves_with_test_cases () =
  let run cases =
    let backend = fresh_backend ~fault_rate:0.08 ~seed:9 () in
    Driver.install_spec backend [ Spec.Write ];
    let config =
      { Driver.default_config with test_cases = cases; seed = 9;
        watchdog_chunks = 400 }
    in
    let outcome = Driver.run_campaign backend config Spec.Write in
    Verif.Result.coverage_percent outcome
  in
  let few = run 5 in
  let many = run 80 in
  Alcotest.(check bool)
    (Printf.sprintf "coverage grows (%.0f%% -> %.0f%%)" few many)
    true (many >= few);
  Alcotest.(check bool) "many cases reach high coverage" true (many >= 60.0)

let test_bounded_property_violation_detected () =
  (* a property with an unreasonably tight statement bound must be
     violated: the operation cannot complete within 3 statements *)
  let backend = fresh_backend () in
  Driver.install_spec ~bound:(Some 3) backend [ Spec.Format ];
  ignore (issue backend Spec.Format ~arg0:0 ~arg1:0);
  check_verdict "tight bound violated" Verdict.False
    (Checker.verdict (Verif.Session.checker backend) (Spec.property_name Spec.Format))

let test_analysis_harness () =
  (* the closed nondet-driven variant used by the formal baselines *)
  let info = Eee.Eee_program.analysis_info () in
  let env = Minic.Interp.create info in
  let hooks =
    { (Minic.Interp.default_hooks ()) with
      Minic.Interp.nondet = (fun ~lo ~hi -> (lo + hi) / 2) }
  in
  (match Minic.Interp.run ~fuel:5_000 env hooks ~entry:"main" with
  | Minic.Interp.Fuel_exhausted -> () (* endless service loop, as designed *)
  | _ -> Alcotest.fail "analysis harness should loop forever");
  Alcotest.(check bool) "operations dispatched" true
    (Minic.Interp.read_global env "eee_served" > 0)

let suite_static =
  [
    Alcotest.test_case "software shape" `Quick test_software_shape;
    Alcotest.test_case "spec properties parse" `Quick
      test_spec_properties_parse;
    Alcotest.test_case "analysis harness" `Quick test_analysis_harness;
  ]

let suite_functional =
  [
    Alcotest.test_case "format/write/read lifecycle" `Quick
      test_lifecycle_format_write_read;
    Alcotest.test_case "startup restores state" `Quick
      test_startup_sequence_restores_state;
    Alcotest.test_case "startup2 requires startup1" `Quick
      test_startup2_requires_startup1;
    Alcotest.test_case "pool full and refresh" `Quick
      test_pool_full_and_refresh;
    Alcotest.test_case "busy during background erase" `Quick
      test_busy_during_background_erase;
    Alcotest.test_case "access errors on faulty flash" `Quick
      test_access_errors_with_faulty_flash;
    Alcotest.test_case "flash override reaches the model" `Quick
      test_flash_override;
    Alcotest.test_case "approach-1 lifecycle" `Quick test_approach1_lifecycle;
  ]

let suite_campaign =
  [
    Alcotest.test_case "properties hold during campaign" `Quick
      test_properties_hold_during_campaign;
    Alcotest.test_case "coverage improves with test cases" `Quick
      test_coverage_improves_with_test_cases;
    Alcotest.test_case "tight bound violated" `Quick
      test_bounded_property_violation_detected;
  ]

let () =
  Alcotest.run "eee"
    [
      ("static", suite_static);
      ("functional", suite_functional);
      ("campaign", suite_campaign);
    ]
