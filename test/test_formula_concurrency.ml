(* Concurrency stress for the sharded hash-consing table: N domains cons
   random formulas at the same time, each in its own shuffled order, and
   the table must still behave exactly like a single global one — ids
   unique, physical equality iff structural equality, [equal]/[compare]
   agreeing with a single-domain oracle that rebuilds the same formula
   set afterwards. Construction recipes are plain data (no consing), so
   the only shared mutable state under test is the cons table itself. *)

module Prng = Stimuli.Prng

(* ---- recipes: formula construction as pure data ------------------------ *)

type recipe =
  | RAtom of int (* 0 = true, 1 = false, else a proposition *)
  | RNot of recipe
  | RAnd of recipe * recipe
  | ROr of recipe * recipe
  | RNext of recipe
  | RFin of int option * recipe
  | RGlob of int option * recipe
  | RUntil of int option * recipe * recipe
  | RRel of int option * recipe * recipe

let rec gen_recipe prng depth =
  let atom () = RAtom (Prng.int_range prng ~lo:0 ~hi:7) in
  if depth = 0 then atom ()
  else
    let sub () = gen_recipe prng (depth - 1) in
    let bound () =
      if Prng.bool prng then Some (Prng.int_range prng ~lo:0 ~hi:12) else None
    in
    match Prng.int_range prng ~lo:0 ~hi:8 with
    | 0 -> atom ()
    | 1 -> RNot (sub ())
    | 2 -> RAnd (sub (), sub ())
    | 3 -> ROr (sub (), sub ())
    | 4 -> RNext (sub ())
    | 5 -> RFin (bound (), sub ())
    | 6 -> RGlob (bound (), sub ())
    | 7 -> RUntil (bound (), sub (), sub ())
    | _ -> RRel (bound (), sub (), sub ())

let rec build = function
  | RAtom 0 -> Formula.tru
  | RAtom 1 -> Formula.fls
  | RAtom n -> Formula.prop (Printf.sprintf "p%d" (n mod 6))
  | RNot r -> Formula.not_ (build r)
  | RAnd (a, b) -> Formula.and_ (build a) (build b)
  | ROr (a, b) -> Formula.or_ (build a) (build b)
  | RNext r -> Formula.next (build r)
  | RFin (b, r) -> Formula.finally b (build r)
  | RGlob (b, r) -> Formula.globally b (build r)
  | RUntil (b, l, r) -> Formula.until b (build l) (build r)
  | RRel (b, l, r) -> Formula.release b (build l) (build r)

(* structural equality that never looks at ids — the independent oracle
   for what hash-consing is supposed to decide *)
let rec struct_eq a b =
  match (a.Formula.node, b.Formula.node) with
  | Formula.True, Formula.True | Formula.False, Formula.False -> true
  | Formula.Prop x, Formula.Prop y -> String.equal x y
  | Formula.Not x, Formula.Not y | Formula.Next x, Formula.Next y ->
    struct_eq x y
  | Formula.And (a1, b1), Formula.And (a2, b2)
  | Formula.Or (a1, b1), Formula.Or (a2, b2) ->
    struct_eq a1 a2 && struct_eq b1 b2
  | Formula.Finally (b1, x), Formula.Finally (b2, y)
  | Formula.Globally (b1, x), Formula.Globally (b2, y) ->
    b1 = b2 && struct_eq x y
  | Formula.Until (b1, l1, r1), Formula.Until (b2, l2, r2)
  | Formula.Release (b1, l1, r1), Formula.Release (b2, l2, r2) ->
    b1 = b2 && struct_eq l1 l2 && struct_eq r1 r2
  | _ -> false

let rec collect_subterms acc f =
  let acc = f :: acc in
  match f.Formula.node with
  | Formula.True | Formula.False | Formula.Prop _ -> acc
  | Formula.Not g | Formula.Next g
  | Formula.Finally (_, g)
  | Formula.Globally (_, g) ->
    collect_subterms acc g
  | Formula.And (a, b)
  | Formula.Or (a, b)
  | Formula.Until (_, a, b)
  | Formula.Release (_, a, b) ->
    collect_subterms (collect_subterms acc a) b

(* ---- one concurrent round ---------------------------------------------- *)

let num_domains = 4
let recipes_per_round = 120

let shuffled_order prng n =
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Prng.int_range prng ~lo:0 ~hi:i in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

(* every domain conses the same recipe set in a private shuffled order
   (the per-domain scratch stream varies the interleaving between rounds
   and domains); results are returned in recipe order *)
let concurrent_round seed =
  let prng = Prng.create ~seed in
  let recipes =
    Array.init recipes_per_round (fun _ ->
        gen_recipe prng (1 + Prng.int_range prng ~lo:0 ~hi:3))
  in
  let build_all () =
    let out = Array.make (Array.length recipes) Formula.tru in
    let order =
      shuffled_order (Prng.Domain_local.stream ()) (Array.length recipes)
    in
    Array.iter (fun i -> out.(i) <- build recipes.(i)) order;
    out
  in
  let spawned = List.init num_domains (fun _ -> Domain.spawn build_all) in
  let workers = List.map Domain.join spawned in
  (* the single-domain oracle over the same formula set *)
  let oracle = Array.map build recipes in
  (workers, oracle)

let check_round seed =
  let workers, oracle = concurrent_round seed in
  (* 1. every domain got the globally unique term: physical equality with
     the oracle, elementwise *)
  List.iter
    (fun built ->
      Array.iteri
        (fun i term -> assert (term == oracle.(i)))
        built)
    workers;
  (* the whole subterm pool of the round, deduplicated by id *)
  let by_id : (int, Formula.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun f ->
      List.iter
        (fun sub ->
          (* 2. id uniqueness: one id, one physical term *)
          match Hashtbl.find_opt by_id (Formula.hash sub) with
          | Some seen -> assert (seen == sub)
          | None -> Hashtbl.replace by_id (Formula.hash sub) sub)
        (collect_subterms [] f))
    oracle;
  let pool = Hashtbl.fold (fun _ f acc -> f :: acc) by_id [] in
  let pool = Array.of_list pool in
  let n = Array.length pool in
  (* 3. physical equality iff structural equality, and [equal]/[compare]
     agree with the structural oracle — over a pair sample *)
  let prng = Prng.create ~seed:(seed lxor 0x51ab) in
  for _ = 1 to 4_000 do
    let a = pool.(Prng.int_range prng ~lo:0 ~hi:(n - 1)) in
    let b = pool.(Prng.int_range prng ~lo:0 ~hi:(n - 1)) in
    let structural = struct_eq a b in
    assert ((a == b) = structural);
    assert (Formula.equal a b = structural);
    assert ((Formula.compare a b = 0) = structural)
  done;
  true

(* ---- entry points -------------------------------------------------------- *)

(* the acceptance bar: no flaky interleaving over 20 fresh rounds *)
let qcheck_concurrent_cons =
  QCheck.Test.make ~name:"4 domains cons concurrently like one" ~count:20
    QCheck.small_int
    (fun salt -> check_round (0x0c0de + salt))

let test_diagnostics_move () =
  let before = Formula.cons_stats () in
  ignore (check_round 0xfeed);
  let after = Formula.cons_stats () in
  Alcotest.(check bool) "terms allocated monotonically" true
    (after.Formula.terms >= before.Formula.terms);
  Alcotest.(check bool) "domain caches absorbed constructions" true
    (after.Formula.dls_hits > before.Formula.dls_hits);
  Alcotest.(check bool) "shard acquisitions only on cache misses" true
    (after.Formula.shard_acquisitions - before.Formula.shard_acquisitions
    >= after.Formula.terms - before.Formula.terms);
  Alcotest.(check int) "16 shards" 16 after.Formula.shards

let () =
  Alcotest.run "formula-concurrency"
    [
      ( "cons",
        [
          QCheck_alcotest.to_alcotest qcheck_concurrent_cons;
          Alcotest.test_case "contention diagnostics move" `Quick
            test_diagnostics_move;
        ] );
    ]
