examples/cruise_control.ml: Cpu List Mcc Minic Platform Printf Sctc Verdict
