examples/engine_ablation.ml: Ar_automaton Fltl_parser Il List Printf Sctc Unix Verdict
