examples/engine_ablation.mli:
