examples/quickstart.ml: Esw List Minic Printf Sctc Sim Verdict
