examples/cruise_control.mli:
