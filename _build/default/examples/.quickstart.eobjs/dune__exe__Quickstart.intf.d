examples/quickstart.mli:
