examples/eeprom_demo.ml: Eee Format List Printf Sctc Unix Verdict Verif
