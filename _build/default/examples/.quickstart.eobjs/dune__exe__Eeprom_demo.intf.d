examples/eeprom_demo.mli:
