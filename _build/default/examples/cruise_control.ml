(* Approach 1 on an automotive scenario: a cruise-control unit compiled to
   the RISC ISA, executing on the cycle-level SoC, monitored by SCTC
   through the processor memory with the clock as the timing reference —
   the full Fig. 2 setup of the paper, including the flag handshake.

     dune exec examples/cruise_control.exe

   The demo runs twice: once against the correct software (all properties
   stay green) and once against a version with a seeded bug — the unit
   fails to disengage when the brake pedal and the accelerator are pressed
   in the same control cycle — showing the checker pinpointing the
   violation cycle. *)

let software ~buggy =
  Printf.sprintf
    {|
      int flag;
      int engaged;        /* cruise control state */
      int speed;
      int target;
      int brake_seen;

      void disengage(void) { engaged = 0; }

      void control_step(void) {
        int brake = nondet(0, 9) == 0;      /* pedal sensors */
        int accel = nondet(0, 9) == 0;
        int set_button = nondet(0, 19) == 0;
        if (brake) { brake_seen = brake_seen + 1; }
        if (set_button && !brake) {
          engaged = 1;
          target = speed;
        }
        if (brake%s) { disengage(); }
        if (engaged == 1) {
          if (speed < target) { speed = speed + 1; }
          if (speed > target) { speed = speed - 1; }
        } else {
          speed = speed + nondet(0, 2) - 1;
          if (speed < 0) { speed = 0; }
        }
      }

      void main(void) {
        speed = 50;
        flag = 1;
        while (true) { control_step(); }
      }
    |}
    (if buggy then " && !accel" else "")

let run ~buggy =
  Printf.printf "=== %s software ===\n"
    (if buggy then "buggy" else "correct");
  let info = Minic.Typecheck.check (Minic.C_parser.parse (software ~buggy)) in
  let soc = Platform.Soc.create () in
  Platform.Soc.load soc (Mcc.Codegen.compile info);

  let checker = Sctc.Checker.create ~name:"cruise" () in
  Platform.Mem_prop.register_all checker
    [
      Platform.Mem_prop.var_eq soc ~prop_name:"engaged" "engaged" 1;
      Platform.Mem_prop.var_pred soc ~prop_name:"braking" "brake_seen"
        (let previous = ref 0 in
         fun v ->
           let rising = v > !previous in
           previous := v;
           rising);
      Platform.Mem_prop.var_pred soc ~prop_name:"speed_sane" "speed" (fun v ->
          v >= 0 && v < 300);
    ];
  (* a braking event must disengage the cruise control within 400 cycles *)
  Sctc.Checker.add_property_text checker ~name:"brake-disengages"
    "G (braking -> F[400] !engaged)";
  Sctc.Checker.add_property_text checker ~name:"speed-in-range" "G speed_sane";
  Sctc.Checker.add_property_text checker ~name:"eventually-engages" "F engaged";

  Sctc.Checker.on_violation checker (fun name cycle ->
      Printf.printf "  !! %s violated at checker step %d\n" name cycle);

  ignore (Platform.Esw_monitor.attach soc ~flag:"flag" checker);
  Platform.Soc.run ~max_cycles:120_000 soc;

  Printf.printf "  %d cycles simulated, %d instructions retired\n"
    (Platform.Soc.cycles soc)
    (Cpu.Cpu_core.instructions_retired (Platform.Soc.cpu soc));
  List.iter
    (fun (name, verdict) ->
      Printf.printf "  %-20s %s\n" name (Verdict.to_string verdict))
    (Sctc.Checker.verdicts checker);
  Sctc.Checker.overall checker

let () =
  let ok = run ~buggy:false in
  print_newline ();
  let bad = run ~buggy:true in
  match ok, bad with
  | Verdict.False, _ ->
    print_endline "unexpected: correct software flagged";
    exit 1
  | _, Verdict.False ->
    print_endline "\nseeded bug detected, as expected";
    exit 0
  | _ ->
    print_endline "\nunexpected: seeded bug not detected";
    exit 1
