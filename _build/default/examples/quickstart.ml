(* Quickstart: verify a temporal property of a small embedded C program in
   a few lines, using approach 2 (the derived software model).

     dune exec examples/quickstart.exe

   The program is a little traffic-light controller; the property says the
   light never jumps from green (0) to red (2) without passing yellow (1),
   and that every red phase is over within 40 statements. *)

let traffic_light =
  {|
    int light;      /* 0 = green, 1 = yellow, 2 = red */
    int timer;

    void step(void) {
      timer = timer + 1;
      if (light == 0 && timer >= 5) { light = 1; timer = 0; }
      else if (light == 1 && timer >= 2) { light = 2; timer = 0; }
      else if (light == 2 && timer >= 4) { light = 0; timer = 0; }
    }

    void main(void) {
      light = 0;
      timer = 0;
      while (true) { step(); }
    }
  |}

let () =
  (* 1. parse and typecheck the embedded software *)
  let info = Minic.Typecheck.check (Minic.C_parser.parse traffic_light) in

  (* 2. derive the SystemC software model (paper Fig. 5) *)
  let kernel = Sim.Kernel.create () in
  let vmem = Esw.Vmem.create () in
  let model = Esw.Esw_model.create kernel (Esw.C2sc.derive info) ~vmem in

  (* 3. create the temporal checker, bind propositions to program state *)
  let checker = Sctc.Checker.create ~name:"traffic" () in
  let light v name =
    Sctc.Checker.register_proposition checker
      (Esw.Esw_prop.var_eq model ~prop_name:name "light" v)
  in
  light 0 "green";
  light 1 "yellow";
  light 2 "red";

  (* 4. state the properties (FLTL; bounds count statements) *)
  Sctc.Checker.add_property_text checker ~name:"no-green-to-red"
    "G (green -> !(X red))";
  Sctc.Checker.add_property_text checker ~name:"red-clears" "G (red -> F[40] green)";
  Sctc.Checker.add_property_text checker ~name:"reaches-red" "F red";

  (* 5. trigger the checker on the program-counter event and simulate *)
  ignore (Sctc.Trigger.on_event kernel (Esw.Esw_model.pc_event model) checker);
  ignore (Esw.Esw_model.start model ~entry:"main");
  Sim.Kernel.run ~max_time:5_000 kernel;

  (* 6. report *)
  Printf.printf "after %d statements:\n" (Esw.Esw_model.statements model);
  List.iter
    (fun (name, verdict) ->
      Printf.printf "  %-16s %s\n" name (Verdict.to_string verdict))
    (Sctc.Checker.verdicts checker);
  match Sctc.Checker.overall checker with
  | Verdict.False -> exit 1
  | Verdict.True | Verdict.Pending -> ()
