(** Three-valued verdicts of the multi-valued AR-automata (Ruf et al.):
    a property on a finite trace is validated, violated, or still pending. *)

type t = True | False | Pending

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Conjunction in the Kleene ordering: [False] dominates, [Pending] absorbs
    [True]. Used when combining verdicts of several monitors. *)
val combine : t -> t -> t

val is_final : t -> bool
(** [True] and [False] are absorbing: the automaton never leaves them. *)
