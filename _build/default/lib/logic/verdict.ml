type t = True | False | Pending

let equal a b = a = b

let to_string = function
  | True -> "true"
  | False -> "false"
  | Pending -> "pending"

let pp fmt v = Format.pp_print_string fmt (to_string v)

let combine a b =
  match a, b with
  | False, _ | _, False -> False
  | Pending, _ | _, Pending -> Pending
  | True, True -> True

let is_final = function True | False -> true | Pending -> false
