lib/logic/fltl_parser.ml: Fltl_lexer Formula Printf
