lib/logic/fltl_lexer.mli:
