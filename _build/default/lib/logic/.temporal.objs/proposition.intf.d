lib/logic/proposition.mli:
