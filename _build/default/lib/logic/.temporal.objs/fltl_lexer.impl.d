lib/logic/fltl_lexer.ml: List Printf String
