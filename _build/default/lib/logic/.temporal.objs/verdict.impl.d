lib/logic/verdict.ml: Format
