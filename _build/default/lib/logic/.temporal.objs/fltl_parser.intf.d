lib/logic/fltl_parser.mli: Fltl_lexer Formula
