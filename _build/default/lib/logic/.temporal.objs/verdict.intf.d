lib/logic/verdict.mli: Format
