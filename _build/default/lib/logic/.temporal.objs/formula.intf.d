lib/logic/formula.mli: Format
