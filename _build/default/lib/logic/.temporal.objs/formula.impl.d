lib/logic/formula.ml: Format Hashtbl Int List Printf Set String
