lib/logic/psl.ml: Fltl_lexer Formula Printf
