lib/logic/psl.mli: Fltl_lexer Formula
