lib/logic/proposition.ml: Hashtbl List Printf String
