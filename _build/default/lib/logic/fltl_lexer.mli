(** Shared lexer for the FLTL and PSL property syntaxes.

    Reserved words (case-sensitive): [X F G U R true false] and the PSL
    keywords [always never eventually next until release abort and or not
    implies iff]. Everything else matching [[A-Za-z_][A-Za-z0-9_]*] is a
    proposition name. Comments: [/* ... */] and [// ...]. *)

type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | BANG
  | AMP
  | BAR
  | ARROW  (** [->] *)
  | IFF_OP  (** [<->] *)
  | KW_TRUE
  | KW_FALSE
  | KW_X
  | KW_F
  | KW_G
  | KW_U
  | KW_R
  | KW_ALWAYS
  | KW_NEVER
  | KW_EVENTUALLY
  | KW_NEXT
  | KW_UNTIL
  | KW_RELEASE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IMPLIES
  | KW_IFF
  | EOF

type position = { line : int; column : int }

exception Lex_error of string * position

val token_to_string : token -> string

(** [tokenize text] is the token stream with source positions.
    @raise Lex_error on illegal characters or unterminated comments. *)
val tokenize : string -> (token * position) list
