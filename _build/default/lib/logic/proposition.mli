(** Propositions: named boolean probes over arbitrary system state.

    This is the OCaml rendering of the paper's [Proposition] base class
    (Fig. 1): a proposition must evaluate to true or false, may carry state
    (e.g. edge detectors), and can be cloned. The checker samples
    propositions to obtain the current system state; their values feed the
    boolean layer of the temporal properties. *)

type t

(** [make name sample] builds a stateless proposition. *)
val make : string -> (unit -> bool) -> t

(** [make_stateful name ~clone ~reset sample] builds a proposition carrying
    state; [clone] must produce an independent copy and [reset] must restore
    the initial state. *)
val make_stateful :
  string -> clone:(unit -> t) -> ?reset:(unit -> unit) -> (unit -> bool) -> t

val name : t -> string

val is_true : t -> bool
(** Evaluate the proposition against the current system state. *)

val is_false : t -> bool

val clone : t -> t
(** Independent copy; for stateless propositions this is the identity. *)

val reset : t -> unit
(** Restore initial state (no-op for stateless propositions). *)

(** {2 Combinators} *)

val const : string -> bool -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

(** [rose name p] is a stateful edge detector: true exactly when [p] is true
    now and was false at the previous sample. The first sample compares
    against an assumed previous value of [false]. *)
val rose : string -> t -> t

(** {2 Tables} *)

(** A table binds proposition names (as used in property texts) to probes. *)
module Table : sig
  type table

  val create : unit -> table

  (** [register table prop] adds [prop].
      @raise Invalid_argument on duplicate names. *)
  val register : table -> t -> unit

  val find : table -> string -> t option
  val find_exn : table -> string -> t
  val names : table -> string list
  val size : table -> int

  (** [binding table] is the name-resolution function monitors use. *)
  val binding : table -> string -> unit -> bool
end
