exception Parse_error of string * Fltl_lexer.position

type stream = { mutable tokens : (Fltl_lexer.token * Fltl_lexer.position) list }

let peek stream =
  match stream.tokens with
  | [] -> (Fltl_lexer.EOF, { Fltl_lexer.line = 0; column = 0 })
  | tok :: _ -> tok

let advance stream =
  match stream.tokens with [] -> () | _ :: rest -> stream.tokens <- rest

let expect stream token =
  let got, pos = peek stream in
  if got = token then advance stream
  else
    raise
      (Parse_error
         ( Printf.sprintf "expected %s but found %s"
             (Fltl_lexer.token_to_string token)
             (Fltl_lexer.token_to_string got),
           pos ))

let parse_bound stream =
  match peek stream with
  | Fltl_lexer.LBRACKET, _ ->
    advance stream;
    let value =
      match peek stream with
      | Fltl_lexer.INT n, _ ->
        advance stream;
        n
      | got, pos ->
        raise
          (Parse_error
             ( "expected integer bound, found " ^ Fltl_lexer.token_to_string got,
               pos ))
    in
    expect stream Fltl_lexer.RBRACKET;
    Some value
  | _ -> None

let rec parse_formula stream =
  let left = parse_implied stream in
  let rec loop acc =
    match peek stream with
    | Fltl_lexer.IFF_OP, _ | Fltl_lexer.KW_IFF, _ ->
      advance stream;
      loop (Formula.iff acc (parse_implied stream))
    | _ -> acc
  in
  loop left

and parse_implied stream =
  let left = parse_ored stream in
  match peek stream with
  | Fltl_lexer.ARROW, _ | Fltl_lexer.KW_IMPLIES, _ ->
    advance stream;
    Formula.implies left (parse_implied stream)
  | _ -> left

and parse_ored stream =
  let rec loop acc =
    match peek stream with
    | Fltl_lexer.BAR, _ | Fltl_lexer.KW_OR, _ ->
      advance stream;
      loop (Formula.or_ acc (parse_anded stream))
    | _ -> acc
  in
  loop (parse_anded stream)

and parse_anded stream =
  let rec loop acc =
    match peek stream with
    | Fltl_lexer.AMP, _ | Fltl_lexer.KW_AND, _ ->
      advance stream;
      loop (Formula.and_ acc (parse_untiled stream))
    | _ -> acc
  in
  loop (parse_untiled stream)

and parse_untiled stream =
  let left = parse_unary stream in
  match peek stream with
  | Fltl_lexer.KW_U, _ | Fltl_lexer.KW_UNTIL, _ ->
    advance stream;
    let bound = parse_bound stream in
    Formula.until bound left (parse_untiled stream)
  | Fltl_lexer.KW_R, _ | Fltl_lexer.KW_RELEASE, _ ->
    advance stream;
    let bound = parse_bound stream in
    Formula.release bound left (parse_untiled stream)
  | _ -> left

and parse_unary stream =
  match peek stream with
  | Fltl_lexer.BANG, _ | Fltl_lexer.KW_NOT, _ ->
    advance stream;
    Formula.not_ (parse_unary stream)
  | Fltl_lexer.KW_X, _ ->
    advance stream;
    Formula.next (parse_unary stream)
  | Fltl_lexer.KW_F, _ ->
    advance stream;
    let bound = parse_bound stream in
    Formula.finally bound (parse_unary stream)
  | Fltl_lexer.KW_G, _ ->
    advance stream;
    let bound = parse_bound stream in
    Formula.globally bound (parse_unary stream)
  | _ -> parse_atom stream

and parse_atom stream =
  match peek stream with
  | Fltl_lexer.KW_TRUE, _ ->
    advance stream;
    Formula.tru
  | Fltl_lexer.KW_FALSE, _ ->
    advance stream;
    Formula.fls
  | Fltl_lexer.IDENT name, _ ->
    advance stream;
    Formula.prop name
  | Fltl_lexer.LPAREN, _ ->
    advance stream;
    let inner = parse_formula stream in
    expect stream Fltl_lexer.RPAREN;
    inner
  | got, pos ->
    raise
      (Parse_error
         ("unexpected " ^ Fltl_lexer.token_to_string got ^ " in formula", pos))

let parse text =
  let stream = { tokens = Fltl_lexer.tokenize text } in
  let formula = parse_formula stream in
  (match peek stream with
  | Fltl_lexer.EOF, _ -> ()
  | got, pos ->
    raise
      (Parse_error ("trailing input: " ^ Fltl_lexer.token_to_string got, pos)));
  formula

let parse_result text =
  match parse text with
  | formula -> Ok formula
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "%d:%d: %s" pos.Fltl_lexer.line pos.Fltl_lexer.column msg)
  | exception Fltl_lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "%d:%d: %s" pos.Fltl_lexer.line pos.Fltl_lexer.column msg)
