type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | BANG
  | AMP
  | BAR
  | ARROW
  | IFF_OP
  | KW_TRUE
  | KW_FALSE
  | KW_X
  | KW_F
  | KW_G
  | KW_U
  | KW_R
  | KW_ALWAYS
  | KW_NEVER
  | KW_EVENTUALLY
  | KW_NEXT
  | KW_UNTIL
  | KW_RELEASE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IMPLIES
  | KW_IFF
  | EOF

type position = { line : int; column : int }

exception Lex_error of string * position

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | BANG -> "'!'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | ARROW -> "'->'"
  | IFF_OP -> "'<->'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_X -> "'X'"
  | KW_F -> "'F'"
  | KW_G -> "'G'"
  | KW_U -> "'U'"
  | KW_R -> "'R'"
  | KW_ALWAYS -> "'always'"
  | KW_NEVER -> "'never'"
  | KW_EVENTUALLY -> "'eventually'"
  | KW_NEXT -> "'next'"
  | KW_UNTIL -> "'until'"
  | KW_RELEASE -> "'release'"
  | KW_AND -> "'and'"
  | KW_OR -> "'or'"
  | KW_NOT -> "'not'"
  | KW_IMPLIES -> "'implies'"
  | KW_IFF -> "'iff'"
  | EOF -> "end of input"

let keyword_of_word = function
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "X" -> Some KW_X
  | "F" -> Some KW_F
  | "G" -> Some KW_G
  | "U" -> Some KW_U
  | "R" -> Some KW_R
  | "always" -> Some KW_ALWAYS
  | "never" -> Some KW_NEVER
  | "eventually" -> Some KW_EVENTUALLY
  | "next" -> Some KW_NEXT
  | "until" -> Some KW_UNTIL
  | "release" -> Some KW_RELEASE
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "implies" -> Some KW_IMPLIES
  | "iff" -> Some KW_IFF
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize text =
  let length = String.length text in
  let tokens = ref [] in
  let line = ref 1 and column = ref 1 in
  let index = ref 0 in
  let here () = { line = !line; column = !column } in
  let advance () =
    if !index < length then begin
      if text.[!index] = '\n' then begin
        incr line;
        column := 1
      end
      else incr column;
      incr index
    end
  in
  let peek offset =
    if !index + offset < length then Some text.[!index + offset] else None
  in
  let emit token pos = tokens := (token, pos) :: !tokens in
  let rec skip_block_comment start_pos =
    if !index + 1 >= length then
      raise (Lex_error ("unterminated comment", start_pos))
    else if text.[!index] = '*' && text.[!index + 1] = '/' then begin
      advance ();
      advance ()
    end
    else begin
      advance ();
      skip_block_comment start_pos
    end
  in
  while !index < length do
    let pos = here () in
    match text.[!index] with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '(' -> emit LPAREN pos; advance ()
    | ')' -> emit RPAREN pos; advance ()
    | '[' -> emit LBRACKET pos; advance ()
    | ']' -> emit RBRACKET pos; advance ()
    | '!' ->
      (* allow the PSL strong-operator suffix 'eventually!' by treating a
         '!' directly after a keyword identically; the parser decides. *)
      emit BANG pos;
      advance ()
    | '&' ->
      advance ();
      if peek 0 = Some '&' then advance ();
      emit AMP pos
    | '|' ->
      advance ();
      if peek 0 = Some '|' then advance ();
      emit BAR pos
    | '-' ->
      advance ();
      if peek 0 = Some '>' then begin
        advance ();
        emit ARROW pos
      end
      else raise (Lex_error ("expected '->'", pos))
    | '<' ->
      advance ();
      if peek 0 = Some '-' && peek 1 = Some '>' then begin
        advance ();
        advance ();
        emit IFF_OP pos
      end
      else raise (Lex_error ("expected '<->'", pos))
    | '/' ->
      advance ();
      (match peek 0 with
      | Some '/' ->
        while !index < length && text.[!index] <> '\n' do
          advance ()
        done
      | Some '*' ->
        advance ();
        skip_block_comment pos
      | Some _ | None -> raise (Lex_error ("stray '/'", pos)))
    | c when is_digit c ->
      let start = !index in
      while !index < length && is_digit text.[!index] do
        advance ()
      done;
      emit (INT (int_of_string (String.sub text start (!index - start)))) pos
    | c when is_ident_start c ->
      let start = !index in
      while !index < length && is_ident_char text.[!index] do
        advance ()
      done;
      let word = String.sub text start (!index - start) in
      (match keyword_of_word word with
      | Some kw -> emit kw pos
      | None -> emit (IDENT word) pos)
    | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, pos))
  done;
  emit EOF (here ());
  List.rev !tokens
