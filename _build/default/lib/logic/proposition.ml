type t = {
  p_name : string;
  p_sample : unit -> bool;
  p_clone : (unit -> t) option;
  p_reset : (unit -> unit) option;
}

let make name sample =
  { p_name = name; p_sample = sample; p_clone = None; p_reset = None }

let make_stateful name ~clone ?reset sample =
  { p_name = name; p_sample = sample; p_clone = Some clone; p_reset = reset }

let name prop = prop.p_name
let is_true prop = prop.p_sample ()
let is_false prop = not (prop.p_sample ())

let clone prop =
  match prop.p_clone with None -> prop | Some make_copy -> make_copy ()

let reset prop = match prop.p_reset with None -> () | Some f -> f ()

let const name value = make name (fun () -> value)

let not_ prop =
  make ("!" ^ prop.p_name) (fun () -> not (prop.p_sample ()))

let and_ a b =
  make
    ("(" ^ a.p_name ^ " & " ^ b.p_name ^ ")")
    (fun () -> a.p_sample () && b.p_sample ())

let or_ a b =
  make
    ("(" ^ a.p_name ^ " | " ^ b.p_name ^ ")")
    (fun () -> a.p_sample () || b.p_sample ())

let rose name inner =
  let rec build () =
    let previous = ref false in
    let sample () =
      let current = is_true inner in
      let result = current && not !previous in
      previous := current;
      result
    in
    make_stateful name ~clone:build ~reset:(fun () -> previous := false) sample
  in
  build ()

module Table = struct
  type table = (string, t) Hashtbl.t

  let create () : table = Hashtbl.create 16

  let register table prop =
    if Hashtbl.mem table prop.p_name then
      invalid_arg
        (Printf.sprintf "Proposition.Table.register: duplicate %S" prop.p_name)
    else Hashtbl.replace table prop.p_name prop

  let find table name = Hashtbl.find_opt table name

  let find_exn table name =
    match Hashtbl.find_opt table name with
    | Some prop -> prop
    | None ->
      invalid_arg
        (Printf.sprintf "Proposition.Table: unbound proposition %S" name)

  let names table =
    Hashtbl.fold (fun key _ acc -> key :: acc) table []
    |> List.sort String.compare

  let size table = Hashtbl.length table

  let binding table name =
    let prop = find_exn table name in
    fun () -> is_true prop
end
