type t = { name : string; base : int; data : int array }

let create ~name ~base ~size = { name; base; data = Array.make size 0 }

let device ram =
  {
    Bus.dev_name = ram.name;
    base = ram.base;
    size = Array.length ram.data;
    read = (fun offset -> ram.data.(offset));
    write = (fun offset value -> ram.data.(offset) <- Minic.Value.wrap value);
  }

let check ram addr =
  if addr < ram.base || addr >= ram.base + Array.length ram.data then
    invalid_arg
      (Printf.sprintf "Ram.%s: address %d outside [%d, %d)" ram.name addr
         ram.base
         (ram.base + Array.length ram.data))

let load ram addr words =
  List.iteri
    (fun i word ->
      check ram (addr + i);
      ram.data.(addr + i - ram.base) <- word)
    words

let get ram addr =
  check ram addr;
  ram.data.(addr - ram.base)

let set ram addr value =
  check ram addr;
  ram.data.(addr - ram.base) <- Minic.Value.wrap value

let clear ram = Array.fill ram.data 0 (Array.length ram.data) 0
