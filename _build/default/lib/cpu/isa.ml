(* Instruction set of the modelled 32-bit RISC microprocessor.

   The machine is a plain load/store core: 16 general registers (r0 reads
   as zero), word-addressed memory, one instruction per cycle.  It stands
   in for the proprietary SystemC processor model of the paper's approach
   1 — what matters to the verification flow is only that the embedded
   software executes cycle-by-cycle out of a memory the checker can read.

   Register conventions used by the MiniC compiler:
     r0  zero        r1  ra (link)     r2  sp          r3  fp
     r4..r11         expression evaluation stack
     r12             scratch           r13 rv (return value)
     r14, r15        scratch (address computation, spills)
*)

type reg = int (* 0..15 *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div (* traps on division by zero *)
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt (* signed less-than, result 0/1 *)
  | Sle
  | Seq

type branch_cond = Beq | Bne | Blt | Bge

type instr =
  | Alu of alu_op * reg * reg * reg  (** [rd = rs1 op rs2] *)
  | Alui of alu_op * reg * reg * int  (** [rd = rs1 op simm14] *)
  | Lui of reg * int  (** [rd = uimm22 << 10] *)
  | Load of reg * reg * int  (** [rd = mem(rs1 + simm14)] *)
  | Store of reg * reg * int  (** [mem(rs1 + simm14) = rs2] *)
  | Branch of branch_cond * reg * reg * int  (** [pc += simm14] if cond *)
  | Jal of reg * int  (** [rd = pc+1; pc += simm22] *)
  | Jalr of reg * reg * int  (** [rd = pc+1; pc = rs1 + simm14] *)
  | Trap of int  (** stop with a trap code (assert/assume failures) *)
  | Halt
  | Nop

(* trap codes used by the compiler *)
let trap_assert = 1
let trap_assume = 2
let trap_bounds = 3
let trap_division = 4

let num_regs = 16
let reg_zero = 0
let reg_ra = 1
let reg_sp = 2
let reg_fp = 3
let reg_e0 = 4 (* first expression register *)
let reg_e_last = 11
let reg_scratch = 12
let reg_rv = 13
let reg_addr = 14
let reg_tmp = 15

let imm14_min = -8192
let imm14_max = 8191
let imm22_min = -2097152
let imm22_max = 2097151
let fits_imm14 v = v >= imm14_min && v <= imm14_max
let fits_imm22 v = v >= imm22_min && v <= imm22_max

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"

let branch_name = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Bge -> "bge"

let reg_name r = Printf.sprintf "r%d" r

let to_string = function
  | Alu (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (alu_op_name op) (reg_name rd)
      (reg_name rs1) (reg_name rs2)
  | Alui (op, rd, rs1, imm) ->
    Printf.sprintf "%si %s, %s, %d" (alu_op_name op) (reg_name rd)
      (reg_name rs1) imm
  | Lui (rd, imm) -> Printf.sprintf "lui %s, %d" (reg_name rd) imm
  | Load (rd, rs1, imm) ->
    Printf.sprintf "lw %s, %d(%s)" (reg_name rd) imm (reg_name rs1)
  | Store (rs2, rs1, imm) ->
    Printf.sprintf "sw %s, %d(%s)" (reg_name rs2) imm (reg_name rs1)
  | Branch (cond, rs1, rs2, imm) ->
    Printf.sprintf "%s %s, %s, %d" (branch_name cond) (reg_name rs1)
      (reg_name rs2) imm
  | Jal (rd, imm) -> Printf.sprintf "jal %s, %d" (reg_name rd) imm
  | Jalr (rd, rs1, imm) ->
    Printf.sprintf "jalr %s, %s, %d" (reg_name rd) (reg_name rs1) imm
  | Trap code -> Printf.sprintf "trap %d" code
  | Halt -> "halt"
  | Nop -> "nop"
