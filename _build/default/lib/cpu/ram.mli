(** Simple word-addressed RAM device. *)

type t

val create : name:string -> base:int -> size:int -> t

val device : t -> Bus.device

val load : t -> int -> int list -> unit
(** [load ram addr words] writes a program/data image at absolute word
    address [addr] (must lie within the RAM range). *)

val get : t -> int -> int
(** Direct access by absolute address (no bus traffic). *)

val set : t -> int -> int -> unit

val clear : t -> unit
