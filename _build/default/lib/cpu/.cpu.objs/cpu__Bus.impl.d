lib/cpu/bus.ml: Int List Printf
