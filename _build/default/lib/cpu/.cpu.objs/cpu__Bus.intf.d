lib/cpu/bus.mli:
