lib/cpu/ram.mli: Bus
