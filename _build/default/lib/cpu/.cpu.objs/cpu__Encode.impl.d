lib/cpu/encode.ml: Isa
