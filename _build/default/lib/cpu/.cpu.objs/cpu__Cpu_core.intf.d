lib/cpu/cpu_core.mli: Bus
