lib/cpu/asm.mli: Isa
