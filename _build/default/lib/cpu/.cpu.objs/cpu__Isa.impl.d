lib/cpu/isa.ml: Printf
