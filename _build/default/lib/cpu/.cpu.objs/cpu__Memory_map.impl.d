lib/cpu/memory_map.ml:
