lib/cpu/asm.ml: Encode Hashtbl Isa List Printf String
