lib/cpu/cpu_core.ml: Array Bus Encode Isa Minic
