lib/cpu/encode.mli: Isa
