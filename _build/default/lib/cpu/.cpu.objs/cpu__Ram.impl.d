lib/cpu/ram.ml: Array Bus List Minic Printf
