(** Word-addressed system bus with memory-mapped devices.

    The bus is the checker's interface into the system (the paper's
    [sctc_sc_read_uint (addr)] memory interface reads through it), the
    CPU's path to memory, and — in approach 2 — the backing store of the
    virtual memory model, so both approaches talk to identical device
    models. *)

type t

(** A device occupies [[base, base + size)] in the word-address space.
    [read]/[write] receive the offset relative to [base]. *)
type device = {
  dev_name : string;
  base : int;
  size : int;
  read : int -> int;
  write : int -> int -> unit;
}

exception Bus_error of int
(** Access to an unmapped address. *)

val create : unit -> t

val attach : t -> device -> unit
(** @raise Invalid_argument if the range overlaps an attached device. *)

val read : t -> int -> int
val write : t -> int -> int -> unit

val peek : t -> int -> int
(** Like {!read} but meant for monitors: reads through to the device
    without counting as bus traffic. *)

val reads : t -> int
val writes : t -> int
(** Access counters (bus traffic statistics). *)

val device_at : t -> int -> string option
