(* System memory map (word addresses), shared by the compiler, the SoC
   platform, the virtual memory model of approach 2, and the device models.

     0x0000 .. 0x3FFF   code RAM (entry stub at 0)
     0x4000 .. 0x7FFF   data RAM: globals from [data_base], stack growing
                        down from [stack_top]
     0xE000 .. 0xEFFF   flash controller + read window
     0xF100             stimulus port (constrained-random input source)
     0xF200             console port (debug output)
     0xF300 .. 0xF30F   request mailbox (testbench -> software operations)
*)

let code_base = 0x0000
let code_size = 0x4000
let data_base = 0x4000
let data_size = 0x4000
let stack_top = 0x7FF0
let flash_ctrl_base = 0xE000
let flash_window_base = 0xE100
let flash_window_size = 0x0F00
let stimulus_port = 0xF100
let console_port = 0xF200
let mailbox_base = 0xF300
let mailbox_size = 16
