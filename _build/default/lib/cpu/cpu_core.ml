module Value = Minic.Value

type stop_reason = Running | Halted | Trapped of int

type t = {
  cpu_bus : Bus.t;
  regs : int array;
  mutable pc : int;
  mutable reason : stop_reason;
  mutable retired : int;
}

let create cpu_bus ~start_pc ?(stack_pointer = 0) () =
  let regs = Array.make Isa.num_regs 0 in
  regs.(Isa.reg_sp) <- stack_pointer;
  { cpu_bus; regs; pc = start_pc; reason = Running; retired = 0 }

let bus cpu = cpu.cpu_bus
let pc cpu = cpu.pc
let reg cpu r = cpu.regs.(r)

let set_reg cpu r value =
  if r <> Isa.reg_zero then cpu.regs.(r) <- Value.wrap value

let stop_reason cpu = cpu.reason
let running cpu = cpu.reason = Running
let instructions_retired cpu = cpu.retired

let alu op a b =
  match op with
  | Isa.Add -> Value.add a b
  | Isa.Sub -> Value.sub a b
  | Isa.Mul -> Value.mul a b
  | Isa.Div -> Value.div a b
  | Isa.Rem -> Value.rem a b
  | Isa.And -> Value.logand a b
  | Isa.Or -> Value.logor a b
  | Isa.Xor -> Value.logxor a b
  | Isa.Sll -> Value.shift_left a b
  | Isa.Srl -> Value.shift_right_logical a b
  | Isa.Sra -> Value.shift_right a b
  | Isa.Slt -> Value.of_bool (a < b)
  | Isa.Sle -> Value.of_bool (a <= b)
  | Isa.Seq -> Value.of_bool (a = b)

let condition cond a b =
  match cond with
  | Isa.Beq -> a = b
  | Isa.Bne -> a <> b
  | Isa.Blt -> a < b
  | Isa.Bge -> a >= b

let step cpu =
  if cpu.reason = Running then begin
    match
      let word = Bus.read cpu.cpu_bus cpu.pc in
      Encode.decode word
    with
    | exception Bus.Bus_error _ -> cpu.reason <- Trapped Isa.trap_bounds
    | exception Encode.Bad_instruction _ ->
      cpu.reason <- Trapped Isa.trap_bounds
    | instr -> (
      cpu.retired <- cpu.retired + 1;
      let next = cpu.pc + 1 in
      match instr with
      | Isa.Nop -> cpu.pc <- next
      | Isa.Halt -> cpu.reason <- Halted
      | Isa.Trap code -> cpu.reason <- Trapped code
      | Isa.Lui (rd, imm) ->
        set_reg cpu rd (Value.wrap (imm lsl 10));
        cpu.pc <- next
      | Isa.Alu (op, rd, rs1, rs2) -> (
        match alu op cpu.regs.(rs1) cpu.regs.(rs2) with
        | value ->
          set_reg cpu rd value;
          cpu.pc <- next
        | exception Value.Division_by_zero ->
          cpu.reason <- Trapped Isa.trap_division)
      | Isa.Alui (op, rd, rs1, imm) -> (
        match alu op cpu.regs.(rs1) imm with
        | value ->
          set_reg cpu rd value;
          cpu.pc <- next
        | exception Value.Division_by_zero ->
          cpu.reason <- Trapped Isa.trap_division)
      | Isa.Load (rd, rs1, imm) -> (
        match Bus.read cpu.cpu_bus (cpu.regs.(rs1) + imm) with
        | value ->
          set_reg cpu rd value;
          cpu.pc <- next
        | exception Bus.Bus_error _ ->
          cpu.reason <- Trapped Isa.trap_bounds)
      | Isa.Store (rs2, rs1, imm) -> (
        match Bus.write cpu.cpu_bus (cpu.regs.(rs1) + imm) cpu.regs.(rs2) with
        | () -> cpu.pc <- next
        | exception Bus.Bus_error _ ->
          cpu.reason <- Trapped Isa.trap_bounds)
      | Isa.Branch (cond, rs1, rs2, imm) ->
        if condition cond cpu.regs.(rs1) cpu.regs.(rs2) then
          cpu.pc <- cpu.pc + imm
        else cpu.pc <- next
      | Isa.Jal (rd, imm) ->
        set_reg cpu rd next;
        cpu.pc <- cpu.pc + imm
      | Isa.Jalr (rd, rs1, imm) ->
        let target = cpu.regs.(rs1) + imm in
        set_reg cpu rd next;
        cpu.pc <- target)
  end

let run ?(max_instructions = max_int) cpu =
  let budget = ref max_instructions in
  while cpu.reason = Running && !budget > 0 do
    step cpu;
    decr budget
  done;
  cpu.reason

let reset cpu ~start_pc ?(stack_pointer = 0) () =
  Array.fill cpu.regs 0 Isa.num_regs 0;
  cpu.regs.(Isa.reg_sp) <- stack_pointer;
  cpu.pc <- start_pc;
  cpu.reason <- Running;
  cpu.retired <- 0
