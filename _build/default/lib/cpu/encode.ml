exception Bad_instruction of int
exception Immediate_out_of_range of Isa.instr

let alu_code = function
  | Isa.Add -> 0
  | Isa.Sub -> 1
  | Isa.Mul -> 2
  | Isa.Div -> 3
  | Isa.Rem -> 4
  | Isa.And -> 5
  | Isa.Or -> 6
  | Isa.Xor -> 7
  | Isa.Sll -> 8
  | Isa.Srl -> 9
  | Isa.Sra -> 10
  | Isa.Slt -> 11
  | Isa.Sle -> 12
  | Isa.Seq -> 13

let alu_of_code = function
  | 0 -> Isa.Add
  | 1 -> Isa.Sub
  | 2 -> Isa.Mul
  | 3 -> Isa.Div
  | 4 -> Isa.Rem
  | 5 -> Isa.And
  | 6 -> Isa.Or
  | 7 -> Isa.Xor
  | 8 -> Isa.Sll
  | 9 -> Isa.Srl
  | 10 -> Isa.Sra
  | 11 -> Isa.Slt
  | 12 -> Isa.Sle
  | 13 -> Isa.Seq
  | code -> raise (Bad_instruction code)

let branch_code = function Isa.Beq -> 0 | Isa.Bne -> 1 | Isa.Blt -> 2 | Isa.Bge -> 3

let branch_of_code word = function
  | 0 -> Isa.Beq
  | 1 -> Isa.Bne
  | 2 -> Isa.Blt
  | 3 -> Isa.Bge
  | _ -> raise (Bad_instruction word)

(* opcode map:
   0        nop
   1        halt
   2        trap
   3        lui
   4        jal
   5        jalr
   6        lw
   7        sw
   8..11    branches (beq bne blt bge)
   16..29   ALU register forms
   32..45   ALU immediate forms *)

let mask14 = 0x3FFF
let mask22 = 0x3FFFFF

let check_imm14 instr v =
  if not (Isa.fits_imm14 v) then raise (Immediate_out_of_range instr)

let check_imm22 instr v =
  if not (Isa.fits_imm22 v) then raise (Immediate_out_of_range instr)

let check_uimm22 instr v =
  if v < 0 || v > mask22 then raise (Immediate_out_of_range instr)

let pack ~opcode ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm14 = 0) ?(imm22 = 0) ()
    =
  (opcode lsl 26) lor (rd lsl 22) lor (rs1 lsl 18) lor (rs2 lsl 14)
  lor (imm14 land mask14) lor (imm22 land mask22)

let encode instr =
  match instr with
  | Isa.Nop -> pack ~opcode:0 ()
  | Isa.Halt -> pack ~opcode:1 ()
  | Isa.Trap code ->
    check_imm14 instr code;
    pack ~opcode:2 ~imm14:code ()
  | Isa.Lui (rd, imm) ->
    check_uimm22 instr imm;
    pack ~opcode:3 ~rd ~imm22:imm ()
  | Isa.Jal (rd, imm) ->
    check_imm22 instr imm;
    pack ~opcode:4 ~rd ~imm22:imm ()
  | Isa.Jalr (rd, rs1, imm) ->
    check_imm14 instr imm;
    pack ~opcode:5 ~rd ~rs1 ~imm14:imm ()
  | Isa.Load (rd, rs1, imm) ->
    check_imm14 instr imm;
    pack ~opcode:6 ~rd ~rs1 ~imm14:imm ()
  | Isa.Store (rs2, rs1, imm) ->
    check_imm14 instr imm;
    pack ~opcode:7 ~rs1 ~rs2 ~imm14:imm ()
  | Isa.Branch (cond, rs1, rs2, imm) ->
    check_imm14 instr imm;
    pack ~opcode:(8 + branch_code cond) ~rs1 ~rs2 ~imm14:imm ()
  | Isa.Alu (op, rd, rs1, rs2) ->
    pack ~opcode:(16 + alu_code op) ~rd ~rs1 ~rs2 ()
  | Isa.Alui (op, rd, rs1, imm) ->
    check_imm14 instr imm;
    pack ~opcode:(32 + alu_code op) ~rd ~rs1 ~imm14:imm ()

let sext14 v = if v land 0x2000 <> 0 then v - 0x4000 else v
let sext22 v = if v land 0x200000 <> 0 then v - 0x400000 else v

let decode word =
  let opcode = (word lsr 26) land 0x3F in
  let rd = (word lsr 22) land 0xF in
  let rs1 = (word lsr 18) land 0xF in
  let rs2 = (word lsr 14) land 0xF in
  let imm14 = sext14 (word land mask14) in
  let uimm22 = word land mask22 in
  match opcode with
  | 0 -> Isa.Nop
  | 1 -> Isa.Halt
  | 2 -> Isa.Trap imm14
  | 3 -> Isa.Lui (rd, uimm22)
  | 4 -> Isa.Jal (rd, sext22 uimm22)
  | 5 -> Isa.Jalr (rd, rs1, imm14)
  | 6 -> Isa.Load (rd, rs1, imm14)
  | 7 -> Isa.Store (rs2, rs1, imm14)
  | 8 | 9 | 10 | 11 ->
    Isa.Branch (branch_of_code word (opcode - 8), rs1, rs2, imm14)
  | op when op >= 16 && op <= 29 -> Isa.Alu (alu_of_code (op - 16), rd, rs1, rs2)
  | op when op >= 32 && op <= 45 ->
    Isa.Alui (alu_of_code (op - 32), rd, rs1, imm14)
  | _ -> raise (Bad_instruction word)
