(** Two-pass assembler and disassembler.

    Syntax (one instruction per line, [;] or [#] comments, [label:] on its
    own or before an instruction):

    {v
      loop:  addi r4, r4, 1
             lw   r5, 2(r2)
             sw   r5, 0(r4)
             bne  r4, r5, loop     ; labels resolve to relative offsets
             jal  r1, subroutine
             halt
    v}

    Branch/jump immediates may be written as numbers (already relative) or
    as label names. *)

exception Asm_error of string * int
(** message and 1-based line number *)

val assemble : string -> Isa.instr list
(** @raise Asm_error on syntax errors or unknown labels. *)

val assemble_with_labels : string -> Isa.instr list * (string * int) list
(** Also returns every label with its resolved word address. *)

val assemble_words : string -> int list
(** Assembled and encoded. *)

val disassemble : Isa.instr list -> string
(** Inverse direction (without label reconstruction). *)
