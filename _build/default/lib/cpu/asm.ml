exception Asm_error of string * int

let fail line fmt = Printf.ksprintf (fun m -> raise (Asm_error (m, line))) fmt

let alu_ops =
  [ ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul); ("div", Isa.Div);
    ("rem", Isa.Rem); ("and", Isa.And); ("or", Isa.Or); ("xor", Isa.Xor);
    ("sll", Isa.Sll); ("srl", Isa.Srl); ("sra", Isa.Sra); ("slt", Isa.Slt);
    ("sle", Isa.Sle); ("seq", Isa.Seq) ]

let branch_ops =
  [ ("beq", Isa.Beq); ("bne", Isa.Bne); ("blt", Isa.Blt); ("bge", Isa.Bge) ]

let parse_reg line text =
  let text = String.trim text in
  if String.length text >= 2 && text.[0] = 'r' then
    match int_of_string_opt (String.sub text 1 (String.length text - 1)) with
    | Some r when r >= 0 && r < Isa.num_regs -> r
    | Some _ | None -> fail line "bad register %S" text
  else fail line "bad register %S" text

(* an operand that is either an immediate or a label *)
type target = Imm of int | Label of string

let parse_target line text =
  let text = String.trim text in
  match int_of_string_opt text with
  | Some v -> Imm v
  | None ->
    if text = "" then fail line "missing operand" else Label text

let parse_int line text =
  match int_of_string_opt (String.trim text) with
  | Some v -> v
  | None -> fail line "bad integer %S" text

(* "imm(rN)" *)
let parse_mem_operand line text =
  let text = String.trim text in
  match String.index_opt text '(' with
  | None -> fail line "expected imm(reg), got %S" text
  | Some open_paren ->
    if text.[String.length text - 1] <> ')' then
      fail line "expected closing paren in %S" text;
    let imm = parse_int line (String.sub text 0 open_paren) in
    let reg_text =
      String.sub text (open_paren + 1) (String.length text - open_paren - 2)
    in
    (imm, parse_reg line reg_text)

type pending = P_ready of Isa.instr | P_branch of Isa.branch_cond * int * int * target | P_jal of int * target

let strip_comment line_text =
  let cut_at sep text =
    match String.index_opt text sep with
    | None -> text
    | Some i -> String.sub text 0 i
  in
  cut_at ';' (cut_at '#' line_text)

let split_operands text =
  String.split_on_char ',' text |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let assemble_with_labels source =
  let labels : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref [] in
  let address = ref 0 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun index raw ->
      let line_no = index + 1 in
      let text = String.trim (strip_comment raw) in
      let text =
        (* leading labels, possibly several *)
        let rec strip_labels text =
          match String.index_opt text ':' with
          | Some colon
            when String.for_all
                   (fun c ->
                     (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                     || (c >= '0' && c <= '9') || c = '_')
                   (String.sub text 0 colon) && colon > 0 ->
            let label = String.sub text 0 colon in
            if Hashtbl.mem labels label then
              fail line_no "duplicate label %s" label;
            Hashtbl.replace labels label !address;
            strip_labels
              (String.trim
                 (String.sub text (colon + 1) (String.length text - colon - 1)))
          | _ -> text
        in
        strip_labels text
      in
      if text <> "" then begin
        let mnemonic, rest =
          match String.index_opt text ' ' with
          | None -> (text, "")
          | Some space ->
            ( String.sub text 0 space,
              String.sub text (space + 1) (String.length text - space - 1) )
        in
        let operands = split_operands rest in
        let instr =
          match mnemonic, operands with
          | "nop", [] -> P_ready Isa.Nop
          | "halt", [] -> P_ready Isa.Halt
          | "trap", [ code ] -> P_ready (Isa.Trap (parse_int line_no code))
          | "lui", [ rd; imm ] ->
            P_ready (Isa.Lui (parse_reg line_no rd, parse_int line_no imm))
          | "lw", [ rd; mem ] ->
            let imm, rs1 = parse_mem_operand line_no mem in
            P_ready (Isa.Load (parse_reg line_no rd, rs1, imm))
          | "sw", [ rs2; mem ] ->
            let imm, rs1 = parse_mem_operand line_no mem in
            P_ready (Isa.Store (parse_reg line_no rs2, rs1, imm))
          | "jal", [ rd; target ] ->
            P_jal (parse_reg line_no rd, parse_target line_no target)
          | "jalr", [ rd; rs1; imm ] ->
            P_ready
              (Isa.Jalr
                 ( parse_reg line_no rd,
                   parse_reg line_no rs1,
                   parse_int line_no imm ))
          | _, [ rs1; rs2; target ]
            when List.mem_assoc mnemonic branch_ops ->
            P_branch
              ( List.assoc mnemonic branch_ops,
                parse_reg line_no rs1,
                parse_reg line_no rs2,
                parse_target line_no target )
          | _, [ rd; rs1; rs2 ] when List.mem_assoc mnemonic alu_ops ->
            P_ready
              (Isa.Alu
                 ( List.assoc mnemonic alu_ops,
                   parse_reg line_no rd,
                   parse_reg line_no rs1,
                   parse_reg line_no rs2 ))
          | _, [ rd; rs1; imm ]
            when String.length mnemonic > 1
                 && mnemonic.[String.length mnemonic - 1] = 'i'
                 && List.mem_assoc
                      (String.sub mnemonic 0 (String.length mnemonic - 1))
                      alu_ops ->
            P_ready
              (Isa.Alui
                 ( List.assoc
                     (String.sub mnemonic 0 (String.length mnemonic - 1))
                     alu_ops,
                   parse_reg line_no rd,
                   parse_reg line_no rs1,
                   parse_int line_no imm ))
          | _ -> fail line_no "cannot parse instruction %S" text
        in
        pending := (line_no, !address, instr) :: !pending;
        incr address
      end)
    lines;
  let resolve line_no here = function
    | Imm v -> v
    | Label label -> (
      match Hashtbl.find_opt labels label with
      | Some target -> target - here
      | None -> fail line_no "unknown label %s" label)
  in
  let instrs =
    List.rev_map
      (fun (line_no, here, p) ->
        match p with
        | P_ready instr -> instr
        | P_branch (cond, rs1, rs2, target) ->
          Isa.Branch (cond, rs1, rs2, resolve line_no here target)
        | P_jal (rd, target) -> Isa.Jal (rd, resolve line_no here target))
      !pending
  in
  (instrs, Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) labels [])

let assemble source = fst (assemble_with_labels source)

let assemble_words source = List.map Encode.encode (assemble source)

let disassemble instrs =
  String.concat "\n" (List.map Isa.to_string instrs)
