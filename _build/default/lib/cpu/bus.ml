type device = {
  dev_name : string;
  base : int;
  size : int;
  read : int -> int;
  write : int -> int -> unit;
}

exception Bus_error of int

type t = {
  mutable devices : device list; (* sorted by base *)
  mutable read_count : int;
  mutable write_count : int;
}

let create () = { devices = []; read_count = 0; write_count = 0 }

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let attach bus device =
  if device.size <= 0 then invalid_arg "Bus.attach: empty device";
  List.iter
    (fun existing ->
      if overlaps existing device then
        invalid_arg
          (Printf.sprintf "Bus.attach: %s overlaps %s" device.dev_name
             existing.dev_name))
    bus.devices;
  bus.devices <-
    List.sort (fun a b -> Int.compare a.base b.base) (device :: bus.devices)

let find bus addr =
  let rec search = function
    | [] -> raise (Bus_error addr)
    | device :: rest ->
      if addr >= device.base && addr < device.base + device.size then device
      else search rest
  in
  search bus.devices

let read bus addr =
  bus.read_count <- bus.read_count + 1;
  let device = find bus addr in
  device.read (addr - device.base)

let write bus addr value =
  bus.write_count <- bus.write_count + 1;
  let device = find bus addr in
  device.write (addr - device.base) value

let peek bus addr =
  let device = find bus addr in
  device.read (addr - device.base)

let reads bus = bus.read_count
let writes bus = bus.write_count

let device_at bus addr =
  match find bus addr with
  | device -> Some device.dev_name
  | exception Bus_error _ -> None
