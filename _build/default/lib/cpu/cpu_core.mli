(** Instruction-accurate CPU core: one instruction per {!step}.

    The core fetches encoded instructions over the bus, so code, data and
    devices share one address space and the temporal checker can observe
    every architectural state change through the same bus. Execution stops
    at [halt] or at a [trap] (assert/assume failure, runtime fault). *)

type stop_reason =
  | Running
  | Halted
  | Trapped of int  (** {!Isa.trap_assert} etc. *)

type t

val create : Bus.t -> start_pc:int -> ?stack_pointer:int -> unit -> t

val bus : t -> Bus.t
val pc : t -> int
val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val stop_reason : t -> stop_reason
val running : t -> bool
val instructions_retired : t -> int

val step : t -> unit
(** Execute one instruction; no-op once stopped. Division by zero and
    unmapped accesses become traps ({!Isa.trap_division},
    {!Isa.trap_bounds}) rather than exceptions, as on real hardware. *)

val run : ?max_instructions:int -> t -> stop_reason
(** Step until stopped or the budget runs out (for standalone tests;
    inside a simulation the platform steps the core on clock edges). *)

val reset : t -> start_pc:int -> ?stack_pointer:int -> unit -> unit
