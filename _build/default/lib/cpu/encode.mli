(** Binary encoding of the ISA: each instruction is one 32-bit word.

    Layout: opcode in bits [31:26], rd [25:22], rs1 [21:18], rs2 [17:14],
    signed 14-bit immediate [13:0]; [Jal]/[Lui] use a 22-bit immediate in
    [21:0]. [decode (encode i) = i] for every well-formed instruction. *)

exception Bad_instruction of int
(** Raised by {!decode} on an unknown opcode or malformed word. *)

exception Immediate_out_of_range of Isa.instr

val encode : Isa.instr -> int
(** @raise Immediate_out_of_range if an immediate exceeds its field. *)

val decode : int -> Isa.instr
