lib/engine/result.mli: Format Sctc Verdict
