lib/engine/result.ml: Format List Option Printf Sctc String Verdict
