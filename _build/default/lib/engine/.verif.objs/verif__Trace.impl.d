lib/engine/trace.ml: Sctc
