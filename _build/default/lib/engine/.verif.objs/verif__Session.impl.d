lib/engine/session.ml: Cpu Dataflash Esw List Mcc Minic Platform Printexc Printf Result Sctc Sim Stimuli String Trace Unix
