lib/engine/session.mli: Dataflash Esw Mcc Minic Platform Proposition Result Sctc Trace
