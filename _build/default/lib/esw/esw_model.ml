type outcome_state =
  | Not_started
  | Running
  | Done of Minic.Interp.outcome
  | Crashed of exn

type t = {
  kernel : Sim.Kernel.t;
  derived : C2sc.derived;
  vm : Vmem.t;
  interp_env : Minic.Interp.env;
  mutable interp_hooks : Minic.Interp.hooks;
  pc_ev : Sim.Kernel.event;
  mutable state : outcome_state;
  mutable stmt_count : int;
}

let create kernel ?(seed = 42) ?(on_tick = fun () -> ()) derived ~vmem =
  let pc_ev = Sim.Kernel.event kernel "esw_pc_event" in
  let interp_env = Minic.Interp.create derived.C2sc.model_info in
  let prng = Stimuli.Prng.create ~seed in
  let stimulus = Stimuli.Prng.split prng "stimulus" in
  let model =
    {
      kernel;
      derived;
      vm = vmem;
      interp_env;
      interp_hooks = Minic.Interp.default_hooks ();
      pc_ev;
      state = Not_started;
      stmt_count = 0;
    }
  in
  let hooks =
    {
      Minic.Interp.mem_read = (fun addr -> Vmem.read vmem addr);
      mem_write = (fun addr value -> Vmem.write vmem addr value);
      nondet =
        (fun ~lo ~hi ->
          lo + (Stimuli.Prng.bits stimulus land 0xFFFFF) mod (hi - lo + 1));
      on_statement =
        (fun _stmt ->
          model.stmt_count <- model.stmt_count + 1;
          on_tick ();
          Sim.Kernel.notify pc_ev;
          Sim.Kernel.wait_for kernel 1);
      on_function_entry = (fun _ -> ());
    }
  in
  model.interp_hooks <- hooks;
  model

let derived model = model.derived
let pc_event model = model.pc_ev
let vmem model = model.vm
let statements model = model.stmt_count
let read_member model name = Minic.Interp.read_global model.interp_env name
let outcome model = model.state
let env model = model.interp_env
let hooks model = model.interp_hooks

let start ?(fuel = 50_000_000) model ~entry =
  if model.state <> Not_started then
    invalid_arg "Esw_model.start: already started";
  model.state <- Running;
  let final_sample () =
    (* the pc event fires before each statement, so emit one final
       notification to expose the state after the last statement *)
    Sim.Kernel.notify model.pc_ev;
    Sim.Kernel.wait_for model.kernel 1
  in
  let body () =
    (match Minic.Interp.run ~fuel model.interp_env model.interp_hooks ~entry with
    | result -> model.state <- Done result
    | exception
        ((Minic.Interp.Assertion_failed _ | Minic.Interp.Assumption_failed _
         | Minic.Interp.Runtime_error _) as exn) ->
      model.state <- Crashed exn);
    final_sample ()
  in
  Sim.Kernel.spawn model.kernel ~name:(model.derived.C2sc.class_name ^ ".main")
    body
