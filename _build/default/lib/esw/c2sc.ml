module Ast = Minic.Ast

type derived = {
  model_program : Ast.program;
  model_info : Minic.Typecheck.info;
  class_name : string;
  member_vars : (string * Ast.typ) list;
  member_funcs : string list;
  converted_accesses : int;
}

(* count direct memory access sites (the ones bound to the VM) *)
let count_mem_accesses program =
  let count = ref 0 in
  let rec expr (e : Ast.expr) =
    match e.edesc with
    | Ast.Mem_read inner ->
      incr count;
      expr inner
    | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Var _ -> ()
    | Ast.Index (_, inner) | Ast.Unop (_, inner) -> expr inner
    | Ast.Binop (_, a, b) | Ast.Nondet (a, b) ->
      expr a;
      expr b
    | Ast.Call (_, args) -> List.iter expr args
  in
  let lvalue = function
    | Ast.Lvar _ -> ()
    | Ast.Lindex (_, e) -> expr e
    | Ast.Lmem e ->
      incr count;
      expr e
  in
  let stmt (s : Ast.stmt) =
    match s.sdesc with
    | Ast.Expr e | Ast.Assert e | Ast.Assume e -> expr e
    | Ast.Assign (lhs, e) ->
      lvalue lhs;
      expr e
    | Ast.Decl (_, _, init) -> Option.iter expr init
    | Ast.If (cond, _, _) | Ast.While (cond, _) | Ast.Do_while (_, cond)
    | Ast.Switch (cond, _) ->
      expr cond
    | Ast.For (_, cond, _, _) -> Option.iter expr cond
    | Ast.Block _ | Ast.Break | Ast.Continue | Ast.Halt -> ()
    | Ast.Return value -> Option.iter expr value
  in
  Ast.iter_stmts_program stmt program;
  !count

let derive ?(class_name = "ESW_SC") info =
  let program = Minic.Typecheck.program info in
  (* ensure the fname tracking member exists *)
  let has_fname = Ast.find_global program "fname" <> None in
  let globals =
    if has_fname then program.Ast.globals
    else
      program.Ast.globals
      @ [
          {
            Ast.g_name = "fname";
            g_type = Ast.Tint;
            g_const = false;
            g_init = None;
            g_pos = Ast.dummy_pos;
          };
        ]
  in
  (* insert "fname = FUNCTION_NAME;" at every function entry *)
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        let id = Minic.Typecheck.func_id info f.f_name in
        let track =
          Ast.stmt (Ast.Assign (Ast.Lvar "fname", Ast.int_lit id))
        in
        { f with Ast.f_body = track :: f.f_body })
      program.Ast.funcs
  in
  let model_program = { Ast.globals; funcs } in
  let model_info = Minic.Typecheck.check model_program in
  {
    model_program;
    model_info;
    class_name;
    member_vars =
      List.filter_map
        (fun (g : Ast.global) ->
          if g.g_const then None else Some (g.g_name, g.g_type))
        globals;
    member_funcs = List.map (fun (f : Ast.func) -> f.Ast.f_name) funcs;
    converted_accesses = count_mem_accesses program;
  }

let typ_cpp = function
  | Ast.Tint -> "sc_int<32>"
  | Ast.Tbool -> "bool"
  | Ast.Tvoid -> "void"
  | Ast.Tarray n -> Printf.sprintf "sc_int<32> /* [%d] */" n

let to_systemc derived =
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "SC_MODULE(%s) {" derived.class_name;
  line "  sc_event esw_pc_event;           // notified after every statement";
  line "  VirtualMemModel vmem;            // direct memory accesses go here";
  line "";
  List.iter
    (fun (name, typ) ->
      match typ with
      | Ast.Tarray n -> line "  sc_int<32> %s[%d];" name n
      | typ -> line "  %s %s;" (typ_cpp typ) name)
    derived.member_vars;
  line "";
  List.iter
    (fun func ->
      if String.equal func "main" then
        line "  void %s();                     // SC_THREAD" func
      else line "  void %s();" func)
    derived.member_funcs;
  line "";
  line "  SC_CTOR(%s) : vmem(\"vmem\") {" derived.class_name;
  line "    SC_THREAD(main);";
  line "  }";
  line "};";
  Buffer.contents buffer
