(** Virtual memory model (paper Fig. 4, lower ESW layer).

    Approach 2 performs verification without the original microprocessor
    memory: every direct memory access of the software is served by this
    model instead. Mapped devices (flash controller, stimulus port,
    mailbox) behave exactly as on the approach-1 bus — the same
    {!Cpu.Bus.device} values plug into both — while unmapped addresses fall
    back to a sparse backing store, so the software's scratch memory "just
    works" without declaring it. *)

type t

val create : unit -> t

val map_device : t -> Cpu.Bus.device -> unit
(** @raise Invalid_argument on overlapping ranges. *)

val read : t -> int -> int
val write : t -> int -> int -> unit

val accesses : t -> int
(** Total reads + writes (VM traffic statistic). *)

val device_accesses : t -> int
(** Accesses that hit a mapped device. *)
