let var_value model name = Esw_model.read_member model name

let var_eq model ?prop_name name value =
  let prop_name =
    match prop_name with
    | Some n -> n
    | None -> Printf.sprintf "%s_eq_%d" name value
  in
  Proposition.make prop_name (fun () ->
      Esw_model.read_member model name = value)

let var_pred model ~prop_name name predicate =
  Proposition.make prop_name (fun () ->
      predicate (Esw_model.read_member model name))

let in_function model func =
  let info = (Esw_model.derived model).C2sc.model_info in
  let id = Minic.Typecheck.func_id info func in
  Proposition.make ("in_" ^ func) (fun () ->
      Esw_model.read_member model "fname" = id)

let entered_function model func =
  Proposition.rose ("entered_" ^ func) (in_function model func)
