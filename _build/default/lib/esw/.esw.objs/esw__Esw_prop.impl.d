lib/esw/esw_prop.ml: C2sc Esw_model Minic Printf Proposition
