lib/esw/esw_prop.mli: Esw_model Proposition
