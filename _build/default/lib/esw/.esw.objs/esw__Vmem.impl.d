lib/esw/vmem.ml: Cpu Hashtbl Minic
