lib/esw/c2sc.mli: Minic
