lib/esw/esw_model.mli: C2sc Minic Sim Vmem
