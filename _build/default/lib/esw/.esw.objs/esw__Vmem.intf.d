lib/esw/vmem.mli: Cpu
