lib/esw/esw_model.ml: C2sc Minic Sim Stimuli Vmem
