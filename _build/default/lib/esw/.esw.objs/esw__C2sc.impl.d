lib/esw/c2sc.ml: Buffer List Minic Option Printf String
