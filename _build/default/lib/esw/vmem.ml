type t = {
  bus : Cpu.Bus.t;
  backing : (int, int) Hashtbl.t;
  mutable access_count : int;
  mutable device_count : int;
}

let create () =
  {
    bus = Cpu.Bus.create ();
    backing = Hashtbl.create 256;
    access_count = 0;
    device_count = 0;
  }

let map_device vmem device = Cpu.Bus.attach vmem.bus device

let read vmem addr =
  vmem.access_count <- vmem.access_count + 1;
  match Cpu.Bus.read vmem.bus addr with
  | value ->
    vmem.device_count <- vmem.device_count + 1;
    value
  | exception Cpu.Bus.Bus_error _ -> (
    match Hashtbl.find_opt vmem.backing addr with Some v -> v | None -> 0)

let write vmem addr value =
  vmem.access_count <- vmem.access_count + 1;
  match Cpu.Bus.write vmem.bus addr value with
  | () -> vmem.device_count <- vmem.device_count + 1
  | exception Cpu.Bus.Bus_error _ ->
    Hashtbl.replace vmem.backing addr (Minic.Value.wrap value)

let accesses vmem = vmem.access_count
let device_accesses vmem = vmem.device_count
