(** Propositions over the derived software model (approach 2).

    Unlike {!Platform.Mem_prop}, these read the model's class members
    directly — there is no processor memory; the checker and the model
    share the simulation. *)

val var_value : Esw_model.t -> string -> int

val var_eq : Esw_model.t -> ?prop_name:string -> string -> int -> Proposition.t

val var_pred :
  Esw_model.t -> prop_name:string -> string -> (int -> bool) -> Proposition.t

val in_function : Esw_model.t -> string -> Proposition.t
(** [fname] currently holds the id of the function. *)

val entered_function : Esw_model.t -> string -> Proposition.t
(** Rising-edge variant of {!in_function}. *)
