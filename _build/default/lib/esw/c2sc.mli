(** The C2SystemC translator (paper Fig. 5, approach 2).

    Derives a SystemC software model from the original C program:

    - one module class ([ESW_SC]) per program; global variables become
      class members, functions become member functions (lines 7–10);
    - the [esw_pc_event] program-counter event is the timing reference,
      notified after every statement (lines 3, 13–15) — realized by the
      {!Esw_model} executor;
    - direct memory accesses are redirected to the virtual memory model
      (lines 4–6) — realized by binding the model's memory operations to
      {!Vmem} (the count of converted access sites is reported);
    - an [fname = FUNCTION_NAME] assignment is inserted at every function
      entry (lines 11–12) so function sequencing is observable in
      properties.

    The derived model is exactly as precise as the original C program: the
    transformation only adds the [fname] updates, which write a fresh
    tracking variable.

    [to_systemc] renders the derived class as SystemC-flavoured C++ text —
    the artifact the paper's translator would emit — used for
    documentation and golden tests. *)

type derived = {
  model_program : Minic.Ast.program;  (** fname-instrumented program *)
  model_info : Minic.Typecheck.info;  (** re-checked *)
  class_name : string;
  member_vars : (string * Minic.Ast.typ) list;
  member_funcs : string list;
  converted_accesses : int;  (** direct memory access sites mapped to VM *)
}

val derive : ?class_name:string -> Minic.Typecheck.info -> derived

val to_systemc : derived -> string
