module Ast = Minic.Ast
module Typecheck = Minic.Typecheck

module Isa = Cpu.Isa
module Asm = Cpu.Asm
module Encode = Cpu.Encode
type compiled = {
  asm_source : string;
  instructions : Isa.instr list;
  words : int list;
  symtab : Symtab.t;
}

exception Codegen_error of string

(* Expression values live in r4..r11 (a register stack); deeper nesting
   spills to the machine stack.  r12/r14/r15 are scratch, r13 carries
   return values, r3 is the frame pointer, r2 the stack pointer. *)
let first_expr_reg = Isa.reg_e0
let last_expr_reg = Isa.reg_e_last

type ctx = {
  buf : Buffer.t;
  info : Typecheck.info;
  symtab : Symtab.t;
  fname_tracking : bool;
  mutable label_counter : int;
  mutable locals : (string * int) list; (* name -> fp-relative offset *)
  mutable next_slot : int;
  mutable break_labels : string list;
  mutable continue_labels : string list;
  mutable return_label : string;
}

let emit ctx fmt =
  Printf.ksprintf
    (fun line ->
      Buffer.add_string ctx.buf "  ";
      Buffer.add_string ctx.buf line;
      Buffer.add_char ctx.buf '\n')
    fmt

let emit_label ctx label =
  Buffer.add_string ctx.buf label;
  Buffer.add_string ctx.buf ":\n"

let fresh ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf "L%s_%d" prefix ctx.label_counter

(* load an arbitrary 32-bit constant *)
let load_const ctx reg value =
  if Isa.fits_imm14 value then emit ctx "addi r%d, r0, %d" reg value
  else begin
    let unsigned = value land 0xFFFFFFFF in
    let high = unsigned lsr 10 in
    let low = unsigned land 0x3FF in
    emit ctx "lui r%d, %d" reg high;
    if low <> 0 then emit ctx "ori r%d, r%d, %d" reg reg low
  end

let push ctx reg =
  emit ctx "addi r2, r2, -1";
  emit ctx "sw r%d, 0(r2)" reg

let pop ctx reg =
  emit ctx "lw r%d, 0(r2)" reg;
  emit ctx "addi r2, r2, 1"

let global_address ctx name =
  match Symtab.find_address ctx.symtab name with
  | Some addr -> addr
  | None -> raise (Codegen_error ("unknown global " ^ name))

(* 0/1-normalize the value in [reg] *)
let normalize_bool ctx reg =
  emit ctx "seq r%d, r%d, r0" reg reg;
  emit ctx "xori r%d, r%d, 1" reg reg

let rec compile_expr ctx r (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Int_lit v -> load_const ctx r v
  | Ast.Bool_lit b -> load_const ctx r (if b then 1 else 0)
  | Ast.Var name -> (
    match List.assoc_opt name ctx.locals with
    | Some offset -> emit ctx "lw r%d, %d(r3)" r offset
    | None -> (
      match Typecheck.const_value ctx.info name with
      | Some v -> load_const ctx r v
      | None ->
        load_const ctx 14 (global_address ctx name);
        emit ctx "lw r%d, 0(r14)" r))
  | Ast.Index (name, index) ->
    compile_expr ctx r index;
    load_const ctx 14 (global_address ctx name);
    emit ctx "add r14, r14, r%d" r;
    emit ctx "lw r%d, 0(r14)" r
  | Ast.Unop (Ast.Neg, inner) ->
    compile_expr ctx r inner;
    emit ctx "sub r%d, r0, r%d" r r
  | Ast.Unop (Ast.Bitnot, inner) ->
    compile_expr ctx r inner;
    emit ctx "xori r%d, r%d, -1" r r
  | Ast.Unop (Ast.Lognot, inner) ->
    compile_expr ctx r inner;
    emit ctx "seq r%d, r%d, r0" r r
  | Ast.Binop (Ast.Land, a, b) ->
    let false_label = fresh ctx "and_false" in
    let end_label = fresh ctx "and_end" in
    compile_expr ctx r a;
    emit ctx "beq r%d, r0, %s" r false_label;
    compile_expr ctx r b;
    normalize_bool ctx r;
    emit ctx "jal r0, %s" end_label;
    emit_label ctx false_label;
    emit ctx "addi r%d, r0, 0" r;
    emit_label ctx end_label
  | Ast.Binop (Ast.Lor, a, b) ->
    let true_label = fresh ctx "or_true" in
    let end_label = fresh ctx "or_end" in
    compile_expr ctx r a;
    emit ctx "bne r%d, r0, %s" r true_label;
    compile_expr ctx r b;
    normalize_bool ctx r;
    emit ctx "jal r0, %s" end_label;
    emit_label ctx true_label;
    emit ctx "addi r%d, r0, 1" r;
    emit_label ctx end_label
  | Ast.Binop (op, a, b) ->
    compile_binary ctx r a b (fun rd ra rb -> emit_binop ctx op rd ra rb)
  | Ast.Nondet (lo, hi) ->
    compile_binary ctx r lo hi (fun rd ra rb ->
        emit ctx "sub r12, r%d, r%d" rb ra;
        emit ctx "addi r12, r12, 1" (* range = hi - lo + 1 *);
        load_const ctx 14 Cpu.Memory_map.stimulus_port;
        emit ctx "lw r14, 0(r14)";
        emit ctx "rem r14, r14, r12";
        emit ctx "add r%d, r%d, r14" rd ra)
  | Ast.Mem_read addr ->
    compile_expr ctx r addr;
    emit ctx "lw r%d, 0(r%d)" r r
  | Ast.Call (name, args) -> compile_call ctx r name args

(* evaluate two operands at depths r/r+1, spilling when the register stack
   is exhausted, then combine them with [combine rd ra rb] *)
and compile_binary ctx r a b combine =
  if r < last_expr_reg then begin
    compile_expr ctx r a;
    compile_expr ctx (r + 1) b;
    combine r r (r + 1)
  end
  else begin
    compile_expr ctx r a;
    push ctx r;
    compile_expr ctx r b;
    pop ctx 15;
    combine r 15 r
  end

and emit_binop ctx op rd ra rb =
  match op with
  | Ast.Add -> emit ctx "add r%d, r%d, r%d" rd ra rb
  | Ast.Sub -> emit ctx "sub r%d, r%d, r%d" rd ra rb
  | Ast.Mul -> emit ctx "mul r%d, r%d, r%d" rd ra rb
  | Ast.Div -> emit ctx "div r%d, r%d, r%d" rd ra rb
  | Ast.Mod -> emit ctx "rem r%d, r%d, r%d" rd ra rb
  | Ast.Band -> emit ctx "and r%d, r%d, r%d" rd ra rb
  | Ast.Bor -> emit ctx "or r%d, r%d, r%d" rd ra rb
  | Ast.Bxor -> emit ctx "xor r%d, r%d, r%d" rd ra rb
  | Ast.Shl -> emit ctx "sll r%d, r%d, r%d" rd ra rb
  | Ast.Shr -> emit ctx "sra r%d, r%d, r%d" rd ra rb
  | Ast.Lt -> emit ctx "slt r%d, r%d, r%d" rd ra rb
  | Ast.Le -> emit ctx "sle r%d, r%d, r%d" rd ra rb
  | Ast.Gt -> emit ctx "slt r%d, r%d, r%d" rd rb ra
  | Ast.Ge -> emit ctx "sle r%d, r%d, r%d" rd rb ra
  | Ast.Eq -> emit ctx "seq r%d, r%d, r%d" rd ra rb
  | Ast.Ne ->
    emit ctx "seq r%d, r%d, r%d" rd ra rb;
    emit ctx "xori r%d, r%d, 1" rd rd
  | Ast.Land | Ast.Lor -> assert false

and compile_call ctx r name args =
  (* save the live portion of the register stack *)
  let live = ref [] in
  for reg = first_expr_reg to r - 1 do
    push ctx reg;
    live := reg :: !live
  done;
  List.iter
    (fun arg ->
      compile_expr ctx r arg;
      push ctx r)
    args;
  emit ctx "jal r1, fn_%s" name;
  if args <> [] then emit ctx "addi r2, r2, %d" (List.length args);
  List.iter (fun reg -> pop ctx reg) !live;
  emit ctx "addi r%d, r13, 0" r

(* ------------------------------------------------------------------ *)

let store_to_lvalue ctx value_reg lhs =
  match lhs with
  | Ast.Lvar name -> (
    match List.assoc_opt name ctx.locals with
    | Some offset -> emit ctx "sw r%d, %d(r3)" value_reg offset
    | None ->
      load_const ctx 14 (global_address ctx name);
      emit ctx "sw r%d, 0(r14)" value_reg)
  | Ast.Lindex (name, index) ->
    compile_expr ctx (value_reg + 1) index;
    load_const ctx 14 (global_address ctx name);
    emit ctx "add r14, r14, r%d" (value_reg + 1);
    emit ctx "sw r%d, 0(r14)" value_reg
  | Ast.Lmem addr ->
    compile_expr ctx (value_reg + 1) addr;
    emit ctx "sw r%d, 0(r%d)" value_reg (value_reg + 1)

let rec compile_stmt ctx (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Block body ->
    let saved = ctx.locals in
    List.iter (compile_stmt ctx) body;
    ctx.locals <- saved
  | Ast.Decl (name, _typ, init) ->
    let offset = -(1 + ctx.next_slot) in
    ctx.next_slot <- ctx.next_slot + 1;
    ctx.locals <- (name, offset) :: ctx.locals;
    (match init with
    | None -> ()
    | Some e ->
      compile_expr ctx first_expr_reg e;
      emit ctx "sw r%d, %d(r3)" first_expr_reg offset)
  | Ast.Expr e -> compile_expr ctx first_expr_reg e
  | Ast.Assign (lhs, e) ->
    compile_expr ctx first_expr_reg e;
    store_to_lvalue ctx first_expr_reg lhs
  | Ast.If (cond, then_s, else_s) -> (
    compile_expr ctx first_expr_reg cond;
    match else_s with
    | None ->
      let end_label = fresh ctx "if_end" in
      emit ctx "beq r%d, r0, %s" first_expr_reg end_label;
      compile_stmt ctx then_s;
      emit_label ctx end_label
    | Some else_body ->
      let else_label = fresh ctx "if_else" in
      let end_label = fresh ctx "if_end" in
      emit ctx "beq r%d, r0, %s" first_expr_reg else_label;
      compile_stmt ctx then_s;
      emit ctx "jal r0, %s" end_label;
      emit_label ctx else_label;
      compile_stmt ctx else_body;
      emit_label ctx end_label)
  | Ast.While (cond, body) ->
    let head = fresh ctx "while_head" in
    let done_label = fresh ctx "while_end" in
    emit_label ctx head;
    compile_expr ctx first_expr_reg cond;
    emit ctx "beq r%d, r0, %s" first_expr_reg done_label;
    in_loop ctx ~break_to:done_label ~continue_to:head (fun () ->
        compile_stmt ctx body);
    emit ctx "jal r0, %s" head;
    emit_label ctx done_label
  | Ast.Do_while (body, cond) ->
    let head = fresh ctx "do_head" in
    let check = fresh ctx "do_check" in
    let done_label = fresh ctx "do_end" in
    emit_label ctx head;
    in_loop ctx ~break_to:done_label ~continue_to:check (fun () ->
        compile_stmt ctx body);
    emit_label ctx check;
    compile_expr ctx first_expr_reg cond;
    emit ctx "bne r%d, r0, %s" first_expr_reg head;
    emit_label ctx done_label
  | Ast.For (init, cond, step, body) ->
    let saved = ctx.locals in
    Option.iter (compile_stmt ctx) init;
    let head = fresh ctx "for_head" in
    let step_label = fresh ctx "for_step" in
    let done_label = fresh ctx "for_end" in
    emit_label ctx head;
    (match cond with
    | None -> ()
    | Some e ->
      compile_expr ctx first_expr_reg e;
      emit ctx "beq r%d, r0, %s" first_expr_reg done_label);
    in_loop ctx ~break_to:done_label ~continue_to:step_label (fun () ->
        compile_stmt ctx body);
    emit_label ctx step_label;
    Option.iter (compile_stmt ctx) step;
    emit ctx "jal r0, %s" head;
    emit_label ctx done_label;
    ctx.locals <- saved
  | Ast.Switch (scrutinee, cases) ->
    compile_expr ctx first_expr_reg scrutinee;
    let end_label = fresh ctx "switch_end" in
    let labelled =
      List.map (fun case -> (fresh ctx "case", case)) cases
    in
    let default_target = ref end_label in
    List.iter
      (fun (label, case) ->
        List.iter
          (function
            | Ast.Case value ->
              load_const ctx (first_expr_reg + 1) value;
              emit ctx "beq r%d, r%d, %s" first_expr_reg (first_expr_reg + 1)
                label
            | Ast.Default -> default_target := label)
          case.Ast.labels)
      labelled;
    emit ctx "jal r0, %s" !default_target;
    ctx.break_labels <- end_label :: ctx.break_labels;
    let saved = ctx.locals in
    List.iter
      (fun (label, case) ->
        emit_label ctx label;
        List.iter (compile_stmt ctx) case.Ast.body)
      labelled;
    ctx.locals <- saved;
    ctx.break_labels <- List.tl ctx.break_labels;
    emit_label ctx end_label
  | Ast.Break -> (
    match ctx.break_labels with
    | label :: _ -> emit ctx "jal r0, %s" label
    | [] -> raise (Codegen_error "break outside loop/switch"))
  | Ast.Continue -> (
    match ctx.continue_labels with
    | label :: _ -> emit ctx "jal r0, %s" label
    | [] -> raise (Codegen_error "continue outside loop"))
  | Ast.Return value -> (
    (match value with
    | Some e ->
      compile_expr ctx first_expr_reg e;
      emit ctx "addi r13, r%d, 0" first_expr_reg
    | None -> emit ctx "addi r13, r0, 0");
    emit ctx "jal r0, %s" ctx.return_label)
  | Ast.Assert cond ->
    let ok = fresh ctx "assert_ok" in
    compile_expr ctx first_expr_reg cond;
    emit ctx "bne r%d, r0, %s" first_expr_reg ok;
    emit ctx "trap %d" Isa.trap_assert;
    emit_label ctx ok
  | Ast.Assume cond ->
    let ok = fresh ctx "assume_ok" in
    compile_expr ctx first_expr_reg cond;
    emit ctx "bne r%d, r0, %s" first_expr_reg ok;
    emit ctx "trap %d" Isa.trap_assume;
    emit_label ctx ok
  | Ast.Halt -> emit ctx "halt"

and in_loop ctx ~break_to ~continue_to body =
  ctx.break_labels <- break_to :: ctx.break_labels;
  ctx.continue_labels <- continue_to :: ctx.continue_labels;
  body ();
  ctx.break_labels <- List.tl ctx.break_labels;
  ctx.continue_labels <- List.tl ctx.continue_labels

(* ------------------------------------------------------------------ *)

let count_decls stmts =
  let count = ref 0 in
  let visit s =
    match s.Ast.sdesc with Ast.Decl _ -> incr count | _ -> ()
  in
  List.iter (Ast.iter_stmt visit) stmts;
  !count

let compile_function ctx (f : Ast.func) =
  let nparams = List.length f.Ast.f_params in
  ctx.locals <-
    List.mapi
      (fun i (name, _typ) -> (name, 2 + (nparams - 1 - i)))
      f.Ast.f_params;
  ctx.next_slot <- 0;
  ctx.return_label <- Printf.sprintf "fn_%s_ret" f.Ast.f_name;
  let nslots = count_decls f.Ast.f_body in
  emit_label ctx (Printf.sprintf "fn_%s" f.Ast.f_name);
  emit ctx "addi r2, r2, -2";
  emit ctx "sw r1, 1(r2)";
  emit ctx "sw r3, 0(r2)";
  emit ctx "addi r3, r2, 0";
  if nslots > 0 then emit ctx "addi r2, r2, -%d" nslots;
  if ctx.fname_tracking then begin
    load_const ctx 12 (Typecheck.func_id ctx.info f.Ast.f_name);
    load_const ctx 14 (Symtab.fname_address ctx.symtab);
    emit ctx "sw r12, 0(r14)"
  end;
  List.iter (compile_stmt ctx) f.Ast.f_body;
  emit ctx "addi r13, r0, 0" (* falling off the end returns 0 *);
  emit_label ctx ctx.return_label;
  emit ctx "addi r2, r3, 0";
  emit ctx "lw r3, 0(r2)";
  emit ctx "lw r1, 1(r2)";
  emit ctx "addi r2, r2, 2";
  emit ctx "jalr r0, r1, 0"

let compile ?(fname_tracking = true) info =
  let prog = Typecheck.program info in
  if Ast.find_func prog "main" = None then
    raise (Codegen_error "program has no main function");
  let symtab = Symtab.build info in
  let ctx =
    {
      buf = Buffer.create 4096;
      info;
      symtab;
      fname_tracking;
      label_counter = 0;
      locals = [];
      next_slot = 0;
      break_labels = [];
      continue_labels = [];
      return_label = "";
    }
  in
  (* entry stub: set up the stack, run global initializers, call main *)
  load_const ctx Isa.reg_sp Cpu.Memory_map.stack_top;
  List.iter
    (fun (g : Ast.global) ->
      if not g.Ast.g_const then
        match g.Ast.g_init with
        | None -> ()
        | Some e ->
          compile_expr ctx first_expr_reg e;
          load_const ctx 14 (global_address ctx g.Ast.g_name);
          emit ctx "sw r%d, 0(r14)" first_expr_reg)
    prog.Ast.globals;
  emit ctx "jal r1, fn_main";
  emit ctx "halt";
  List.iter (fun f -> compile_function ctx f) prog.Ast.funcs;
  let asm_source = Buffer.contents ctx.buf in
  let instructions, labels = Asm.assemble_with_labels asm_source in
  let entries =
    List.filter_map
      (fun (f : Ast.func) ->
        match List.assoc_opt ("fn_" ^ f.Ast.f_name) labels with
        | Some addr -> Some (f.Ast.f_name, addr)
        | None -> None)
      prog.Ast.funcs
  in
  Symtab.set_entries symtab entries;
  let words = List.map Encode.encode instructions in
  { asm_source; instructions; words; symtab }
