lib/compiler/codegen.ml: Buffer Cpu List Minic Option Printf Symtab
