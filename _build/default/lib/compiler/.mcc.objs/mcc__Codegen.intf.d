lib/compiler/codegen.mli: Cpu Minic Symtab
