lib/compiler/symtab.ml: Cpu List Minic String
