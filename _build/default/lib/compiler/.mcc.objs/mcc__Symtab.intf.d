lib/compiler/symtab.mli: Minic
