(** MiniC to ISA code generation.

    The compiler emits assembly text (resolved by {!Cpu.Asm}), producing a
    loadable word image plus the {!Symtab} debug information the ESW
    monitor uses to locate variables in the processor memory.

    Calling convention: arguments pushed left-to-right by the caller,
    return value in [r13], frame pointer [r3], one word per local.
    [nondet(lo, hi)] compiles to a read of the memory-mapped stimulus port
    reduced into [lo..hi]; [assert]/[assume] failures execute [trap]
    instructions; every function entry stores the function's id to the
    [fname] tracking variable (paper Section 3.1 step c) unless
    [~fname_tracking:false]. *)

type compiled = {
  asm_source : string;  (** generated assembly, for inspection *)
  instructions : Cpu.Isa.instr list;
  words : int list;  (** encoded image, load at address 0 *)
  symtab : Symtab.t;
}

exception Codegen_error of string

val compile : ?fname_tracking:bool -> Minic.Typecheck.info -> compiled
