(** Debug information produced by the compiler.

    This is what the ESW monitor of approach 1 needs: the memory address of
    every embedded-software variable (step b of the paper's flow: "determine
    the addresses of the variables, which are located in the embedded
    memory"), the id stored into the [fname] tracking variable by each
    function, and function entry points. *)

type t

val build : Minic.Typecheck.info -> t
(** Lay out all non-const globals from {!Cpu.Memory_map.data_base}; a
    hidden [fname] slot is appended when the program does not declare one. *)

val address_of : t -> string -> int
(** Word address of a scalar global or the base address of an array.
    @raise Not_found for unknown names. *)

val find_address : t -> string -> int option

val size_of : t -> string -> int
(** 1 for scalars, the length for arrays. *)

val fname_address : t -> int
(** Address of the function-tracking variable. *)

val func_id : t -> string -> int
val func_name_of_id : t -> int -> string option

val entry_of : t -> string -> int option
(** Entry PC of a function (available after linking). *)

val set_entries : t -> (string * int) list -> unit
(** Called by the linker with resolved label addresses. *)

val globals : t -> (string * int * int) list
(** [(name, address, size)] in layout order. *)

val data_words : t -> int
(** Total data segment size in words. *)
