type t = {
  layout : (string * int * int) list; (* name, address, size *)
  fname_addr : int;
  ids : (string * int) list;
  mutable entries : (string * int) list;
}

let build info =
  let next = ref Cpu.Memory_map.data_base in
  let alloc size =
    let addr = !next in
    next := !next + size;
    addr
  in
  let layout =
    List.map
      (fun (name, typ) ->
        let size = match typ with Minic.Ast.Tarray n -> n | _ -> 1 in
        (name, alloc size, size))
      (Minic.Typecheck.globals info)
  in
  let layout, fname_addr =
    match List.find_opt (fun (name, _, _) -> name = "fname") layout with
    | Some (_, addr, _) -> (layout, addr)
    | None ->
      let addr = alloc 1 in
      (layout @ [ ("fname", addr, 1) ], addr)
  in
  if !next >= Cpu.Memory_map.data_base + Cpu.Memory_map.data_size then
    invalid_arg "Symtab.build: globals exceed the data segment";
  {
    layout;
    fname_addr;
    ids = Minic.Typecheck.func_ids info;
    entries = [];
  }

let find_address symtab name =
  List.find_map
    (fun (n, addr, _) -> if String.equal n name then Some addr else None)
    symtab.layout

let address_of symtab name =
  match find_address symtab name with
  | Some addr -> addr
  | None -> raise Not_found

let size_of symtab name =
  match
    List.find_map
      (fun (n, _, size) -> if String.equal n name then Some size else None)
      symtab.layout
  with
  | Some size -> size
  | None -> raise Not_found

let fname_address symtab = symtab.fname_addr
let func_id symtab name = List.assoc name symtab.ids

let func_name_of_id symtab id =
  List.find_map
    (fun (name, fid) -> if fid = id then Some name else None)
    symtab.ids

let entry_of symtab name = List.assoc_opt name symtab.entries
let set_entries symtab entries = symtab.entries <- entries
let globals symtab = symtab.layout

let data_words symtab =
  List.fold_left (fun acc (_, _, size) -> acc + size) 0 symtab.layout
