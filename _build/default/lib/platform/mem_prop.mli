(** Propositions over embedded-software state observed through the
    processor memory (the paper's extension of SCTC: the checker monitors
    ESW variables stored in the microprocessor memory model through a
    memory interface, and function sequencing through the instrumented
    [fname] variable). *)

val var_value : Soc.t -> string -> int
(** Current value of a global, read through the memory interface. *)

val var_eq : Soc.t -> ?prop_name:string -> string -> int -> Proposition.t
(** [var_eq soc name v]: proposition "[name] == v". Default proposition
    name: ["<name>_eq_<v>"]. *)

val var_pred :
  Soc.t -> prop_name:string -> string -> (int -> bool) -> Proposition.t
(** Arbitrary predicate over one variable. *)

val element_eq :
  Soc.t -> ?prop_name:string -> string -> int -> int -> Proposition.t
(** [element_eq soc arr i v]: "arr[i] == v". *)

val in_function : Soc.t -> string -> Proposition.t
(** True while [fname] holds the id of the given function — i.e. it is the
    most recently entered function. Proposition name: ["in_<func>"]. *)

val entered_function : Soc.t -> string -> Proposition.t
(** Stateful rising-edge proposition: true for exactly one sample when
    [fname] switches to the function's id. Name: ["entered_<func>"]. *)

val register_all :
  Sctc.Checker.t -> Proposition.t list -> unit
(** Convenience: register a batch of propositions with a checker. *)
