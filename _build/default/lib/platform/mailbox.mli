(** Request/response mailbox between the testbench and the embedded
    software (a simple doorbell peripheral).

    The testbench posts an operation request; the software polls
    [REQ_VALID], consumes the request, runs the operation and posts the
    result. Register offsets (from the mailbox base):

    {v
      0  REQ_VALID   1 while a request is pending (software clears)
      1  REQ_OP      operation code
      2  REQ_ARG0
      3  REQ_ARG1
      4  RESP_VALID  1 when a response is pending (testbench clears)
      5  RESP_VALUE  the operation's return value
    v}
*)

type t

val create : unit -> t

val device : t -> base:int -> Cpu.Bus.device

(** Testbench side *)

val post_request : t -> op:int -> arg0:int -> arg1:int -> unit
(** @raise Invalid_argument if a request is still pending. *)

val request_pending : t -> bool
val response_ready : t -> bool

val take_response : t -> int
(** Read and clear the response. @raise Invalid_argument if none. *)

val reg_req_valid : int
val reg_req_op : int
val reg_req_arg0 : int
val reg_req_arg1 : int
val reg_resp_valid : int
val reg_resp_value : int
