let var_value soc name = Soc.read_var soc name

let var_eq soc ?prop_name name value =
  let prop_name =
    match prop_name with
    | Some n -> n
    | None -> Printf.sprintf "%s_eq_%d" name value
  in
  let addr = Mcc.Symtab.address_of (Soc.symtab soc) name in
  Proposition.make prop_name (fun () -> Soc.read_mem soc addr = value)

let var_pred soc ~prop_name name predicate =
  let addr = Mcc.Symtab.address_of (Soc.symtab soc) name in
  Proposition.make prop_name (fun () -> predicate (Soc.read_mem soc addr))

let element_eq soc ?prop_name name index value =
  let prop_name =
    match prop_name with
    | Some n -> n
    | None -> Printf.sprintf "%s_%d_eq_%d" name index value
  in
  let base = Mcc.Symtab.address_of (Soc.symtab soc) name in
  let size = Mcc.Symtab.size_of (Soc.symtab soc) name in
  if index < 0 || index >= size then
    invalid_arg "Mem_prop.element_eq: index out of range";
  Proposition.make prop_name (fun () ->
      Soc.read_mem soc (base + index) = value)

let fname_of soc = Mcc.Symtab.fname_address (Soc.symtab soc)

let in_function soc func =
  let id = Mcc.Symtab.func_id (Soc.symtab soc) func in
  let addr = fname_of soc in
  Proposition.make ("in_" ^ func) (fun () -> Soc.read_mem soc addr = id)

let entered_function soc func =
  let id = Mcc.Symtab.func_id (Soc.symtab soc) func in
  let addr = fname_of soc in
  Proposition.rose ("entered_" ^ func)
    (Proposition.make (func ^ "_raw") (fun () -> Soc.read_mem soc addr = id))

let register_all checker props =
  List.iter (Sctc.Checker.register_proposition checker) props
