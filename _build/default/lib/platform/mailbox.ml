type t = {
  mutable req_valid : int;
  mutable req_op : int;
  mutable req_arg0 : int;
  mutable req_arg1 : int;
  mutable resp_valid : int;
  mutable resp_value : int;
}

let reg_req_valid = 0
let reg_req_op = 1
let reg_req_arg0 = 2
let reg_req_arg1 = 3
let reg_resp_valid = 4
let reg_resp_value = 5

let create () =
  {
    req_valid = 0;
    req_op = 0;
    req_arg0 = 0;
    req_arg1 = 0;
    resp_valid = 0;
    resp_value = 0;
  }

let device mailbox ~base =
  let read offset =
    if offset = reg_req_valid then mailbox.req_valid
    else if offset = reg_req_op then mailbox.req_op
    else if offset = reg_req_arg0 then mailbox.req_arg0
    else if offset = reg_req_arg1 then mailbox.req_arg1
    else if offset = reg_resp_valid then mailbox.resp_valid
    else if offset = reg_resp_value then mailbox.resp_value
    else 0
  in
  let write offset value =
    if offset = reg_req_valid then mailbox.req_valid <- value
    else if offset = reg_resp_valid then mailbox.resp_valid <- value
    else if offset = reg_resp_value then mailbox.resp_value <- value
    (* request fields are written by the testbench only *)
  in
  { Cpu.Bus.dev_name = "mailbox"; base; size = 6; read; write }

let post_request mailbox ~op ~arg0 ~arg1 =
  if mailbox.req_valid <> 0 then
    invalid_arg "Mailbox.post_request: request still pending";
  mailbox.req_op <- op;
  mailbox.req_arg0 <- arg0;
  mailbox.req_arg1 <- arg1;
  mailbox.req_valid <- 1

let request_pending mailbox = mailbox.req_valid <> 0
let response_ready mailbox = mailbox.resp_valid <> 0

let take_response mailbox =
  if mailbox.resp_valid = 0 then invalid_arg "Mailbox.take_response: none";
  mailbox.resp_valid <- 0;
  mailbox.resp_value
