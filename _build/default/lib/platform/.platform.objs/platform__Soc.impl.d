lib/platform/soc.ml: Cpu Dataflash List Mailbox Mcc Sim Stimuli
