lib/platform/soc.mli: Cpu Dataflash Mailbox Mcc Sim Stimuli
