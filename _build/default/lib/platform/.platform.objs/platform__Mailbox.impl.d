lib/platform/mailbox.ml: Cpu
