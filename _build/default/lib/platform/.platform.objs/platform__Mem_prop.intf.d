lib/platform/mem_prop.mli: Proposition Sctc Soc
