lib/platform/mailbox.mli: Cpu
