lib/platform/mem_prop.ml: List Mcc Printf Proposition Sctc Soc
