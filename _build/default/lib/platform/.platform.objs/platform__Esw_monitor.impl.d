lib/platform/esw_monitor.ml: Mcc Sctc Sim Soc
