lib/platform/esw_monitor.mli: Sctc Soc
