(** The bounded model checker (CBMC analog).

    Pipeline: symbolic execution with function inlining and loop unwinding
    ({!Symexec}) → bit-blasting ({!Bitvec} over {!Aig}) → Tseitin CNF →
    CDCL SAT ({!Sat}). Like CBMC, it is bit-precise, finds real
    counterexamples, and — due to the boundedness — proves correctness
    only up to the unwinding bound. *)

type counterexample = {
  violated : string;  (** which verification condition *)
  position : Minic.Ast.position;
  input_values : (string * int) list;  (** nondet choices, oldest first *)
}

type verdict =
  | Safe of { complete : bool }
      (** no violation within the bound; [complete] when nothing was cut *)
  | Unsafe of counterexample
  | Out_of_time  (** encode or solve exceeded the budget *)
  | Gave_up of string  (** circuit too large / unsupported construct *)

type report = {
  result : verdict;
  unwind : int;
  seconds : float;
  encode_seconds : float;
  circuit_nodes : int;
  cnf_vars : int;
  cnf_clauses : int;
  sat_stats : Sat.stats option;
}

val check :
  ?unwind:int ->
  ?timeout_seconds:float ->
  ?entry:string ->
  Minic.Typecheck.info ->
  report
(** Check every assertion (plus division and array-bounds conditions)
    of the program, starting at [entry] (default ["main"]). *)
