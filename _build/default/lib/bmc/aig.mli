(** And-inverter graph: the circuit representation the bounded model
    checker bit-blasts programs into before CNF conversion.

    Literals are integers: [2*node + sign]; node 0 is the constant, so
    {!false_} = 0 and {!true_} = 1. AND nodes are hash-consed with local
    simplification (constant absorption, idempotence, complement). *)

type t
type lit = int

val create : unit -> t

val false_ : lit
val true_ : lit

val fresh_input : t -> string -> lit
(** A free boolean input (one bit of a nondeterministic value). *)

val is_input : t -> lit -> bool
val input_name : t -> lit -> string option

val neg : lit -> lit
val and_ : t -> lit -> lit -> lit
val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val implies : t -> lit -> lit -> lit
val iff : t -> lit -> lit -> lit
val mux : t -> lit -> lit -> lit -> lit
(** [mux g sel a b] is [a] when [sel] else [b]. *)

val conj : t -> lit list -> lit
val disj : t -> lit list -> lit

val num_nodes : t -> int

(** {2 CNF conversion (Tseitin)} *)

type cnf = {
  num_vars : int;
  clauses : int array list;  (** DIMACS-style: +v / -v, 1-based *)
}

val to_cnf : t -> roots:lit list -> cnf * (lit -> int)
(** Encode the cone of influence of [roots]; the returned function maps an
    AIG literal to its signed DIMACS literal. Clauses asserting the roots
    are NOT added — combine with {!assert_lit}. *)

val assert_lit : (lit -> int) -> lit -> int array
(** Unit clause forcing an AIG literal true. *)

val eval : t -> assignment:(lit -> bool) -> lit -> bool
(** Evaluate a literal given values for the inputs (for counterexample
    replay and tests). [assignment] is consulted for input literals in
    positive phase. *)
