(** Symbolic execution of MiniC into a bit-vector circuit — the CBMC
    front end: functions are inlined, loops unwound up to a bound, the
    program becomes a single guarded-assignment formula over the AIG.

    Every [assert] produces a verification condition (guard ∧ ¬condition);
    division sites produce divisor-non-zero conditions and array indexings
    produce bounds conditions. [nondet(lo, hi)] introduces a constrained
    32-bit input. Loops that may iterate beyond the unwinding bound make
    the result {e incomplete} (CBMC's unwinding assertion would fail):
    a SAFE answer then only covers executions within the bound.

    Memory intrinsics ([*(addr)], [mem_write]) are modelled as a small
    symbolic RAM (mux-chained over the write history), sound for programs
    whose address expressions stay within the encoded story. *)

type condition = {
  vc_name : string;  (** e.g. "assert at 12:3", "division by zero at ..." *)
  vc_pos : Minic.Ast.position;
  vc_lit : Aig.lit;  (** satisfiable = violable *)
}

type encoded = {
  graph : Aig.t;
  conditions : condition list;
  assumptions : Aig.lit;  (** conjunction of assumes and input ranges *)
  inputs : (string * Bitvec.t) list;  (** nondet values, newest first *)
  complete : bool;  (** false when some loop/recursion hit its bound *)
  statements_encoded : int;
}

exception Unsupported of string * Minic.Ast.position

exception Too_large of int
(** Raised when the circuit exceeds [max_nodes]. *)

exception Deadline_reached
(** Raised when encoding runs past [deadline] (absolute
    [Unix.gettimeofday] time) — the "stuck unwinding loops" failure mode
    of the paper's CBMC runs. *)

val encode :
  ?unwind:int ->
  ?recursion_limit:int ->
  ?max_nodes:int ->
  ?deadline:float ->
  Minic.Typecheck.info ->
  entry:string ->
  encoded
(** [unwind] defaults to 20 (the limit used in the paper's CBMC
    experiments); [max_nodes] bounds circuit size (default 20 million). *)
