type lit = int

(* node 0 is the constant false (literal 0), true is literal 1.
   node kinds: And of (lit, lit) | Input of name *)
type node = And of lit * lit | Input of string | Const

type t = {
  mutable nodes : node array;
  mutable size : int;
  cons : (int * int, lit) Hashtbl.t; (* (a, b) with a <= b -> and literal *)
}

let false_ = 0
let true_ = 1

let create () =
  let graph =
    { nodes = Array.make 1024 Const; size = 1; cons = Hashtbl.create 4096 }
  in
  graph.nodes.(0) <- Const;
  graph

let node_of lit = lit lsr 1
let sign_of lit = lit land 1 = 1
let neg lit = lit lxor 1

let add_node graph node =
  if graph.size = Array.length graph.nodes then begin
    let fresh = Array.make (2 * graph.size) Const in
    Array.blit graph.nodes 0 fresh 0 graph.size;
    graph.nodes <- fresh
  end;
  graph.nodes.(graph.size) <- node;
  graph.size <- graph.size + 1;
  (graph.size - 1) * 2

let fresh_input graph name = add_node graph (Input name)

let is_input graph lit =
  match graph.nodes.(node_of lit) with
  | Input _ -> true
  | And _ | Const -> false

let input_name graph lit =
  match graph.nodes.(node_of lit) with
  | Input name -> Some name
  | And _ | Const -> None

let and_ graph a b =
  if a = false_ || b = false_ then false_
  else if a = true_ then b
  else if b = true_ then a
  else if a = b then a
  else if a = neg b then false_
  else begin
    let key = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt graph.cons key with
    | Some lit -> lit
    | None ->
      let lit = add_node graph (And (fst key, snd key)) in
      Hashtbl.replace graph.cons key lit;
      lit
  end

let or_ graph a b = neg (and_ graph (neg a) (neg b))

let xor_ graph a b =
  (* (a | b) & !(a & b) *)
  and_ graph (or_ graph a b) (neg (and_ graph a b))

let implies graph a b = or_ graph (neg a) b
let iff graph a b = neg (xor_ graph a b)

let mux graph sel a b =
  or_ graph (and_ graph sel a) (and_ graph (neg sel) b)

let conj graph lits = List.fold_left (and_ graph) true_ lits
let disj graph lits = List.fold_left (or_ graph) false_ lits

let num_nodes graph = graph.size

(* ------------------------------------------------------------------ *)

type cnf = { num_vars : int; clauses : int array list }

let to_cnf graph ~roots =
  (* map each needed node to a CNF variable; var 1 is the constant-true
     helper so that constant literals stay expressible *)
  let var_of_node : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace var_of_node 0 1;
  let next_var = ref 1 in
  let clauses = ref [ [| -1 |] ] in
  (* node 0 = false: variable 1 forced false by unit clause [-1] *)
  let rec visit node_id =
    match Hashtbl.find_opt var_of_node node_id with
    | Some var -> var
    | None -> (
      match graph.nodes.(node_id) with
      | Const -> assert false
      | Input _ ->
        incr next_var;
        Hashtbl.replace var_of_node node_id !next_var;
        !next_var
      | And (a, b) ->
        let va = visit (node_of a) in
        let vb = visit (node_of b) in
        incr next_var;
        let v = !next_var in
        Hashtbl.replace var_of_node node_id v;
        let la = if sign_of a then -va else va in
        let lb = if sign_of b then -vb else vb in
        (* v <-> la & lb *)
        clauses := [| -v; la |] :: [| -v; lb |] :: [| v; -la; -lb |]
                   :: !clauses;
        v)
  in
  List.iter (fun root -> ignore (visit (node_of root))) roots;
  let lit_to_dimacs lit =
    let var =
      match Hashtbl.find_opt var_of_node (node_of lit) with
      | Some var -> var
      | None -> invalid_arg "Aig.to_cnf: literal outside encoded cone"
    in
    if sign_of lit then -var else var
  in
  ({ num_vars = !next_var; clauses = !clauses }, lit_to_dimacs)

let assert_lit lit_to_dimacs lit = [| lit_to_dimacs lit |]

let eval graph ~assignment root =
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec value_of_node node_id =
    match Hashtbl.find_opt memo node_id with
    | Some v -> v
    | None ->
      let v =
        match graph.nodes.(node_id) with
        | Const -> false
        | Input _ -> assignment (node_id * 2)
        | And (a, b) -> value_of_lit a && value_of_lit b
      in
      Hashtbl.replace memo node_id v;
      v
  and value_of_lit lit =
    let v = value_of_node (node_of lit) in
    if sign_of lit then not v else v
  in
  value_of_lit root
