module Ast = Minic.Ast

exception Instrument_error of string

let mon_step_call = Ast.stmt (Ast.Expr (Ast.expr (Ast.Call ("__mon_step", []))))

(* insert a monitor call after every statement; statements that transfer
   control (return/break/continue/halt) need no trailing call *)
let rec instrument_stmt (s : Ast.stmt) =
  let wrap body = Ast.stmt ~pos:body.Ast.spos (Ast.Block (instrument_list [ body ])) in
  let sdesc =
    match s.Ast.sdesc with
    | Ast.Block body -> Ast.Block (instrument_list body)
    | Ast.If (c, then_s, else_s) ->
      Ast.If (c, wrap then_s, Option.map wrap else_s)
    | Ast.While (c, body) -> Ast.While (c, wrap body)
    | Ast.Do_while (body, c) -> Ast.Do_while (wrap body, c)
    | Ast.For (init, c, step, body) -> Ast.For (init, c, step, wrap body)
    | Ast.Switch (e, cases) ->
      Ast.Switch
        ( e,
          List.map
            (fun case -> { case with Ast.body = instrument_list case.Ast.body })
            cases )
    | other -> other
  in
  { s with Ast.sdesc }

and instrument_list stmts =
  List.concat_map
    (fun s ->
      let s' = instrument_stmt s in
      match s.Ast.sdesc with
      | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Halt -> [ s' ]
      | _ -> [ s'; mon_step_call ])
    stmts

let instrument ?(max_states = 20_000) ~property ~predicates info =
  (* check predicate coverage *)
  let support = Formula.props property in
  List.iter
    (fun prop ->
      if not (List.mem_assoc prop predicates) then
        raise (Instrument_error ("no predicate given for proposition " ^ prop)))
    support;
  let automaton =
    match Ar_automaton.synthesize ~max_states property with
    | automaton -> automaton
    | exception Ar_automaton.Too_large n ->
      raise
        (Instrument_error
           (Printf.sprintf "AR-automaton synthesis blew up (%d states)" n))
  in
  let props = Ar_automaton.props automaton in
  let num_props = Array.length props in
  let num_states = Ar_automaton.num_states automaton in
  (* the monitor function:
       int m = sum of bit(i) for satisfied propositions;
       switch (__mon_state) { per state: switch (m) -> successor }
       assert(!reject(__mon_state)); *)
  let parse_pred name =
    let text = List.assoc name predicates in
    match Minic.C_parser.parse_expr text with
    | expr -> expr
    | exception _ ->
      raise (Instrument_error ("predicate for " ^ name ^ " does not parse"))
  in
  let bit_accum =
    Array.to_list props
    |> List.mapi (fun i name ->
           Ast.stmt
             (Ast.If
                ( parse_pred name,
                  Ast.stmt
                    (Ast.Assign
                       ( Ast.Lvar "__mon_bits",
                         Ast.expr
                           (Ast.Binop
                              ( Ast.Add,
                                Ast.var "__mon_bits",
                                Ast.int_lit (1 lsl i) )) )),
                  None )))
  in
  let state_case state =
    let masks = 1 lsl num_props in
    (* group masks by successor *)
    let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    for mask = 0 to masks - 1 do
      let target = Ar_automaton.next automaton state mask in
      match Hashtbl.find_opt groups target with
      | Some cell -> cell := mask :: !cell
      | None -> Hashtbl.replace groups target (ref [ mask ])
    done;
    let inner_cases =
      Hashtbl.fold
        (fun target masks acc ->
          if target = state then acc (* self loop: no update needed *)
          else
            {
              Ast.labels = List.map (fun m -> Ast.Case m) (List.rev !masks);
              body =
                [
                  Ast.stmt
                    (Ast.Assign (Ast.Lvar "__mon_state", Ast.int_lit target));
                  Ast.stmt Ast.Break;
                ];
            }
            :: acc)
        groups []
    in
    {
      Ast.labels = [ Ast.Case state ];
      body =
        (match inner_cases with
        | [] -> [ Ast.stmt Ast.Break ]
        | _ ->
          [
            Ast.stmt (Ast.Switch (Ast.var "__mon_bits", inner_cases));
            Ast.stmt Ast.Break;
          ]);
    }
  in
  let transition_cases =
    List.init num_states (fun state ->
        match Ar_automaton.kind automaton state with
        | Ar_automaton.Accept | Ar_automaton.Reject ->
          (* absorbing *)
          { Ast.labels = [ Ast.Case state ]; body = [ Ast.stmt Ast.Break ] }
        | Ar_automaton.Pend -> state_case state)
  in
  let reject_check =
    (* assert(__mon_state != r1 && ... ) *)
    let rejects =
      List.init num_states (fun s -> s)
      |> List.filter (fun s -> Ar_automaton.kind automaton s = Ar_automaton.Reject)
    in
    match rejects with
    | [] -> []
    | _ ->
      let condition =
        List.fold_left
          (fun acc s ->
            Ast.expr
              (Ast.Binop
                 ( Ast.Land,
                   acc,
                   Ast.expr
                     (Ast.Binop (Ast.Ne, Ast.var "__mon_state", Ast.int_lit s))
                 )))
          (Ast.expr (Ast.Bool_lit true))
          rejects
      in
      [ Ast.stmt (Ast.Assert condition) ]
  in
  let mon_step =
    {
      Ast.f_name = "__mon_step";
      f_ret = Ast.Tvoid;
      f_params = [];
      f_body =
        [ Ast.stmt (Ast.Assign (Ast.Lvar "__mon_bits", Ast.int_lit 0)) ]
        @ bit_accum
        @ [ Ast.stmt (Ast.Switch (Ast.var "__mon_state", transition_cases)) ]
        @ reject_check;
      f_pos = Ast.dummy_pos;
    }
  in
  let prog = Minic.Typecheck.program info in
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        let body = instrument_list f.Ast.f_body in
        let body =
          if String.equal f.Ast.f_name "main" then mon_step_call :: body
          else body
        in
        { f with Ast.f_body = body })
      prog.Ast.funcs
  in
  let globals =
    prog.Ast.globals
    @ [
        {
          Ast.g_name = "__mon_state";
          g_type = Ast.Tint;
          g_const = false;
          g_init = Some (Ast.int_lit (Ar_automaton.initial automaton));
          g_pos = Ast.dummy_pos;
        };
        {
          Ast.g_name = "__mon_bits";
          g_type = Ast.Tint;
          g_const = false;
          g_init = None;
          g_pos = Ast.dummy_pos;
        };
        {
          Ast.g_name = "__MON_STATES";
          g_type = Ast.Tint;
          g_const = true;
          g_init = Some (Ast.int_lit num_states);
          g_pos = Ast.dummy_pos;
        };
      ]
  in
  let instrumented = { Ast.globals; funcs = funcs @ [ mon_step ] } in
  match Minic.Typecheck.check_result instrumented with
  | Ok checked -> checked
  | Error msg ->
    raise (Instrument_error ("instrumented program does not typecheck: " ^ msg))

let monitor_state_count info = Minic.Typecheck.const_value info "__MON_STATES"
