type result = Sat of bool array | Unsat | Timeout

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

(* internal literal encoding: 2*var + sign (sign 1 = negated); vars 1-based *)
let lit_of_dimacs d = if d > 0 then 2 * d else (2 * -d) + 1
let var_of_lit l = l lsr 1
let lit_neg l = l lxor 1

exception Found_empty_clause

type solver = {
  num_vars : int;
  mutable clauses : int array array; (* clause store; learned appended *)
  mutable num_clauses : int;
  watches : int list array; (* literal -> clause indices watching it *)
  assigns : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  level : int array;
  reason : int array; (* var -> clause index or -1 *)
  trail : int array;
  mutable trail_size : int;
  trail_lim : int array; (* decision level -> trail position *)
  mutable decision_level : int;
  activity : float array;
  mutable var_inc : float;
  seen : bool array;
  mutable propagate_head : int;
  mutable stat_decisions : int;
  mutable stat_conflicts : int;
  mutable stat_propagations : int;
  mutable stat_restarts : int;
  mutable stat_learned : int;
}

let create num_vars =
  {
    num_vars;
    clauses = Array.make 256 [||];
    num_clauses = 0;
    watches = Array.make ((2 * num_vars) + 2) [];
    assigns = Array.make (num_vars + 1) (-1);
    level = Array.make (num_vars + 1) 0;
    reason = Array.make (num_vars + 1) (-1);
    trail = Array.make (num_vars + 1) 0;
    trail_size = 0;
    trail_lim = Array.make (num_vars + 2) 0;
    decision_level = 0;
    activity = Array.make (num_vars + 1) 0.0;
    var_inc = 1.0;
    seen = Array.make (num_vars + 1) false;
    propagate_head = 0;
    stat_decisions = 0;
    stat_conflicts = 0;
    stat_propagations = 0;
    stat_restarts = 0;
    stat_learned = 0;
  }

(* -1 unassigned / 0 false / 1 true, phase-adjusted *)
let value_of_lit s l =
  let v = s.assigns.(var_of_lit l) in
  if v = -1 then -1 else if l land 1 = 0 then v else 1 - v

let enqueue s l reason =
  let v = var_of_lit l in
  s.assigns.(v) <- (if l land 1 = 0 then 1 else 0);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let add_clause_to_store s clause =
  if s.num_clauses = Array.length s.clauses then begin
    let fresh = Array.make (2 * s.num_clauses) [||] in
    Array.blit s.clauses 0 fresh 0 s.num_clauses;
    s.clauses <- fresh
  end;
  s.clauses.(s.num_clauses) <- clause;
  s.num_clauses <- s.num_clauses + 1;
  let id = s.num_clauses - 1 in
  if Array.length clause >= 2 then begin
    s.watches.(lit_neg clause.(0)) <- id :: s.watches.(lit_neg clause.(0));
    s.watches.(lit_neg clause.(1)) <- id :: s.watches.(lit_neg clause.(1))
  end;
  id

(* propagate; returns conflicting clause id or -1 *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.propagate_head < s.trail_size do
    let l = s.trail.(s.propagate_head) in
    s.propagate_head <- s.propagate_head + 1;
    s.stat_propagations <- s.stat_propagations + 1;
    (* clauses watching l's falsification *)
    let watching = s.watches.(l) in
    s.watches.(l) <- [];
    let rec process = function
      | [] -> ()
      | id :: rest ->
        let clause = s.clauses.(id) in
        (* normalize: watched lits at positions 0/1; the false one at 1 *)
        let falsified = lit_neg l in
        if clause.(0) = falsified then begin
          clause.(0) <- clause.(1);
          clause.(1) <- falsified
        end;
        if value_of_lit s clause.(0) = 1 then begin
          (* satisfied: keep watching *)
          s.watches.(l) <- id :: s.watches.(l);
          process rest
        end
        else begin
          (* find a new watch *)
          let found = ref false in
          let i = ref 2 in
          let len = Array.length clause in
          while (not !found) && !i < len do
            if value_of_lit s clause.(!i) <> 0 then begin
              let w = clause.(!i) in
              clause.(!i) <- clause.(1);
              clause.(1) <- w;
              s.watches.(lit_neg w) <- id :: s.watches.(lit_neg w);
              found := true
            end;
            incr i
          done;
          if !found then process rest
          else begin
            (* unit or conflict *)
            s.watches.(l) <- id :: s.watches.(l);
            if value_of_lit s clause.(0) = 0 then begin
              conflict := id;
              (* keep the remaining watchers *)
              List.iter
                (fun rest_id -> s.watches.(l) <- rest_id :: s.watches.(l))
                rest
            end
            else begin
              enqueue s clause.(0) id;
              process rest
            end
          end
        end
    in
    process watching
  done;
  !conflict

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.num_vars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

(* first-UIP conflict analysis; returns (learned clause, backjump level) *)
let analyze s conflict_id =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let clause_id = ref conflict_id in
  let continue = ref true in
  while !continue do
    let clause = s.clauses.(!clause_id) in
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length clause - 1 do
      let q = clause.(i) in
      let v = var_of_lit q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump s v;
        if s.level.(v) = s.decision_level then incr counter
        else learned := q :: !learned
      end
    done;
    (* pick the next literal to resolve on from the trail *)
    let rec find_next () =
      let l = s.trail.(!index) in
      decr index;
      if s.seen.(var_of_lit l) then l else find_next ()
    in
    let l = find_next () in
    s.seen.(var_of_lit l) <- false;
    decr counter;
    if !counter = 0 then begin
      p := lit_neg l;
      continue := false
    end
    else begin
      clause_id := s.reason.(var_of_lit l);
      p := l
    end
  done;
  let learned_clause = Array.of_list (!p :: !learned) in
  List.iter (fun q -> s.seen.(var_of_lit q) <- false) !learned;
  (* backjump level: second highest level in the clause *)
  let backjump = ref 0 in
  for i = 1 to Array.length learned_clause - 1 do
    let lv = s.level.(var_of_lit learned_clause.(i)) in
    if lv > !backjump then backjump := lv
  done;
  (* move a literal of backjump level to position 1 for watching *)
  if Array.length learned_clause > 1 then begin
    let pos = ref 1 in
    for i = 1 to Array.length learned_clause - 1 do
      if s.level.(var_of_lit learned_clause.(i)) = !backjump then pos := i
    done;
    let tmp = learned_clause.(1) in
    learned_clause.(1) <- learned_clause.(!pos);
    learned_clause.(!pos) <- tmp
  end;
  (learned_clause, !backjump)

(* trail_lim.(l) is the trail size just before level l's decision, i.e. the
   end of level l-1; keeping levels <= target means cutting at
   trail_lim.(target + 1) *)
let backtrack s target_level =
  if s.decision_level > target_level then begin
    let bound = s.trail_lim.(target_level + 1) in
    for i = s.trail_size - 1 downto bound do
      let v = var_of_lit s.trail.(i) in
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1
    done;
    s.trail_size <- bound;
    s.propagate_head <- bound;
    s.decision_level <- target_level
  end

let pick_branch_var s =
  let best = ref 0 and best_activity = ref neg_infinity in
  for v = 1 to s.num_vars do
    if s.assigns.(v) = -1 && s.activity.(v) > !best_activity then begin
      best := v;
      best_activity := s.activity.(v)
    end
  done;
  !best

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 ... *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec size k = if (1 lsl k) - 1 > i then k else size (k + 1) in
  go (size 1) i

let solve ?(timeout_seconds = infinity) ?(max_conflicts = max_int) ~num_vars
    clause_list =
  let s = create num_vars in
  let stats () =
    {
      decisions = s.stat_decisions;
      conflicts = s.stat_conflicts;
      propagations = s.stat_propagations;
      restarts = s.stat_restarts;
      learned = s.stat_learned;
    }
  in
  let deadline = Unix.gettimeofday () +. timeout_seconds in
  match
    (* load clauses: dedupe literals, detect tautologies and units *)
    List.iter
      (fun dimacs ->
        let lits =
          Array.to_list dimacs |> List.sort_uniq Int.compare
          |> List.map lit_of_dimacs
        in
        let tautology =
          List.exists (fun l -> List.mem (lit_neg l) lits) lits
        in
        if not tautology then
          match lits with
          | [] -> raise Found_empty_clause
          | [ l ] ->
            (match value_of_lit s l with
            | 1 -> ()
            | 0 -> raise Found_empty_clause
            | _ ->
              enqueue s l (-1);
              ())
          | _ -> ignore (add_clause_to_store s (Array.of_list lits)))
      clause_list
  with
  | exception Found_empty_clause -> (Unsat, stats ())
  | () ->
    if propagate s >= 0 then (Unsat, stats ())
    else begin
      let result = ref None in
      let conflicts_until_restart = ref (100 * luby 1) in
      let restart_count = ref 1 in
      while !result = None do
        if s.stat_conflicts > max_conflicts then result := Some Timeout
        else if
          s.stat_conflicts land 1023 = 0 && Unix.gettimeofday () > deadline
        then result := Some Timeout
        else begin
          let conflict = propagate s in
          if conflict >= 0 then begin
            s.stat_conflicts <- s.stat_conflicts + 1;
            s.var_inc <- s.var_inc /. 0.95;
            if s.decision_level = 0 then result := Some Unsat
            else begin
              let learned_clause, backjump = analyze s conflict in
              backtrack s backjump;
              if Array.length learned_clause = 1 then
                enqueue s learned_clause.(0) (-1)
              else begin
                let id = add_clause_to_store s learned_clause in
                s.stat_learned <- s.stat_learned + 1;
                enqueue s learned_clause.(0) id
              end;
              decr conflicts_until_restart;
              if !conflicts_until_restart <= 0 then begin
                incr restart_count;
                s.stat_restarts <- s.stat_restarts + 1;
                conflicts_until_restart := 100 * luby !restart_count;
                backtrack s 0
              end
            end
          end
          else begin
            let v = pick_branch_var s in
            if v = 0 then begin
              (* all assigned: model *)
              let model = Array.make (num_vars + 1) false in
              for i = 1 to num_vars do
                model.(i) <- s.assigns.(i) = 1
              done;
              result := Some (Sat model)
            end
            else begin
              s.stat_decisions <- s.stat_decisions + 1;
              s.decision_level <- s.decision_level + 1;
              s.trail_lim.(s.decision_level) <- s.trail_size;
              (* phase: default false *)
              enqueue s ((2 * v) + 1) (-1)
            end
          end
        end
      done;
      (Option.get !result, stats ())
    end
