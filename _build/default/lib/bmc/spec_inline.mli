(** SpC-style property instrumentation.

    CBMC has no temporal-property support; the paper used the BLAST Spec
    tool to weave the property into the C source and fed the generated
    file to CBMC. This module reproduces that flow: the FLTL property is
    synthesized into an explicit AR-automaton whose transition table is
    emitted as a MiniC monitor function [__mon_step] over a [__mon_state]
    global; a call to the monitor is inserted after every statement of
    every function, and reaching a Reject state asserts false.

    Propositions are given as boolean MiniC expressions over the program's
    globals. The instrumented program is an ordinary MiniC program — any
    of the four verification engines can run it; {!Bmc.check} turns
    property violations into counterexamples. *)

exception Instrument_error of string

val instrument :
  ?max_states:int ->
  property:Formula.t ->
  predicates:(string * string) list ->
  Minic.Typecheck.info ->
  Minic.Typecheck.info
(** [predicates] maps each proposition name of the property to MiniC
    boolean-expression source text (parsed with {!Minic.C_parser.parse_expr}).
    @raise Instrument_error on missing predicates or synthesis blowup. *)

val monitor_state_count : Minic.Typecheck.info -> int option
(** Number of monitor states in an instrumented program (from the
    generated constants), for reporting. *)
