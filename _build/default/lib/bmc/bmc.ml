type counterexample = {
  violated : string;
  position : Minic.Ast.position;
  input_values : (string * int) list;
}

type verdict =
  | Safe of { complete : bool }
  | Unsafe of counterexample
  | Out_of_time
  | Gave_up of string

type report = {
  result : verdict;
  unwind : int;
  seconds : float;
  encode_seconds : float;
  circuit_nodes : int;
  cnf_vars : int;
  cnf_clauses : int;
  sat_stats : Sat.stats option;
}

let check ?(unwind = 20) ?(timeout_seconds = 60.0) ?(entry = "main") info =
  let started = Unix.gettimeofday () in
  let deadline = started +. timeout_seconds in
  let finish ?(encode_seconds = 0.0) ?(circuit_nodes = 0) ?(cnf_vars = 0)
      ?(cnf_clauses = 0) ?sat_stats result =
    {
      result;
      unwind;
      seconds = Unix.gettimeofday () -. started;
      encode_seconds;
      circuit_nodes;
      cnf_vars;
      cnf_clauses;
      sat_stats;
    }
  in
  match Symexec.encode ~unwind ~deadline info ~entry with
  | exception Symexec.Deadline_reached -> finish Out_of_time
  | exception Symexec.Too_large n ->
    finish (Gave_up (Printf.sprintf "circuit exceeded %d nodes" n))
  | exception Symexec.Unsupported (what, pos) ->
    finish
      (Gave_up (Printf.sprintf "%d:%d: unsupported: %s" pos.Minic.Ast.line
                  pos.Minic.Ast.column what))
  | encoded -> (
    let encode_seconds = Unix.gettimeofday () -. started in
    let graph = encoded.Symexec.graph in
    let circuit_nodes = Aig.num_nodes graph in
    match encoded.Symexec.conditions with
    | [] ->
      finish ~encode_seconds ~circuit_nodes
        (Safe { complete = encoded.Symexec.complete })
    | conditions -> (
      (* query: assumptions /\ (some condition violated) *)
      let any_violation =
        Aig.disj graph (List.map (fun c -> c.Symexec.vc_lit) conditions)
      in
      let query = Aig.and_ graph encoded.Symexec.assumptions any_violation in
      if query = Aig.false_ then
        finish ~encode_seconds ~circuit_nodes
          (Safe { complete = encoded.Symexec.complete })
      else begin
        let roots =
          query :: List.concat_map (fun (_, bv) -> Array.to_list bv)
                     encoded.Symexec.inputs
        in
        let cnf, lit_to_dimacs = Aig.to_cnf graph ~roots in
        let clauses =
          Aig.assert_lit lit_to_dimacs query :: cnf.Aig.clauses
        in
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then
          finish ~encode_seconds ~circuit_nodes ~cnf_vars:cnf.Aig.num_vars
            ~cnf_clauses:(List.length clauses) Out_of_time
        else begin
          let result, stats =
            Sat.solve ~timeout_seconds:remaining ~num_vars:cnf.Aig.num_vars
              clauses
          in
          match result with
          | Sat.Timeout ->
            finish ~encode_seconds ~circuit_nodes ~cnf_vars:cnf.Aig.num_vars
              ~cnf_clauses:(List.length clauses) ~sat_stats:stats Out_of_time
          | Sat.Unsat ->
            finish ~encode_seconds ~circuit_nodes ~cnf_vars:cnf.Aig.num_vars
              ~cnf_clauses:(List.length clauses) ~sat_stats:stats
              (Safe { complete = encoded.Symexec.complete })
          | Sat.Sat model ->
            (* read back the witness *)
            let assignment lit =
              let d = lit_to_dimacs lit in
              if d > 0 then model.(d) else not model.(-d)
            in
            let input_values =
              List.rev_map
                (fun (name, bv) -> (name, Bitvec.eval graph ~assignment bv))
                encoded.Symexec.inputs
            in
            let violated =
              List.find
                (fun c -> Aig.eval graph ~assignment c.Symexec.vc_lit)
                conditions
            in
            finish ~encode_seconds ~circuit_nodes ~cnf_vars:cnf.Aig.num_vars
              ~cnf_clauses:(List.length clauses) ~sat_stats:stats
              (Unsafe
                 {
                   violated = violated.Symexec.vc_name;
                   position = violated.Symexec.vc_pos;
                   input_values;
                 })
        end
      end))
