module Ast = Minic.Ast
module SMap = Map.Make (String)

type condition = {
  vc_name : string;
  vc_pos : Ast.position;
  vc_lit : Aig.lit;
}

type encoded = {
  graph : Aig.t;
  conditions : condition list;
  assumptions : Aig.lit;
  inputs : (string * Bitvec.t) list;
  complete : bool;
  statements_encoded : int;
}

exception Unsupported of string * Ast.position
exception Too_large of int
exception Deadline_reached

type env = {
  scalars : Bitvec.t SMap.t;
  arrays : Bitvec.t array SMap.t;
}

type state = { guard : Aig.lit; env : env }

type exits = {
  fall : state option;
  brks : state list;
  conts : state list;
  rets : (state * Bitvec.t) list;
}

let no_exits = { fall = None; brks = []; conts = []; rets = [] }

type ctx = {
  graph : Aig.t;
  info : Minic.Typecheck.info;
  unwind : int;
  recursion_limit : int;
  max_nodes : int;
  deadline : float;
  mutable conditions : condition list;
  mutable assumptions : Aig.lit;
  mutable inputs : (string * Bitvec.t) list;
  mutable memory_log : (Aig.lit * Bitvec.t * Bitvec.t) list; (* newest first *)
  mutable complete : bool;
  mutable fresh_counter : int;
  mutable stmt_count : int;
}

let fresh_name ctx base =
  ctx.fresh_counter <- ctx.fresh_counter + 1;
  Printf.sprintf "%s#%d" base ctx.fresh_counter

let check_budget ctx =
  if Aig.num_nodes ctx.graph > ctx.max_nodes then
    raise (Too_large (Aig.num_nodes ctx.graph));
  if ctx.stmt_count land 255 = 0 && Unix.gettimeofday () > ctx.deadline then
    raise Deadline_reached

(* ------------------------------------------------------------------ *)
(* environment merging *)

let mux_env ctx sel env_then env_else =
  let g = ctx.graph in
  let scalars =
    SMap.merge
      (fun _name a b ->
        match a, b with
        | Some va, Some vb ->
          if va == vb then Some va else Some (Bitvec.mux g sel va vb)
        | Some va, None -> Some va
        | None, Some vb -> Some vb
        | None, None -> None)
      env_then.scalars env_else.scalars
  in
  let arrays =
    SMap.merge
      (fun _name a b ->
        match a, b with
        | Some va, Some vb ->
          if va == vb then Some va
          else
            Some (Array.init (Array.length va) (fun i ->
                Bitvec.mux g sel va.(i) vb.(i)))
        | Some va, None -> Some va
        | None, Some vb -> Some vb
        | None, None -> None)
      env_then.arrays env_else.arrays
  in
  { scalars; arrays }

(* combine two disjointly-guarded states *)
let merge_states ctx s1 s2 =
  {
    guard = Aig.or_ ctx.graph s1.guard s2.guard;
    env = mux_env ctx s1.guard s1.env s2.env;
  }

let merge_state_list ctx states =
  match List.filter (fun s -> s.guard <> Aig.false_) states with
  | [] -> None
  | first :: rest -> Some (List.fold_left (merge_states ctx) first rest)

let merge_value_list ctx pairs =
  (* (state, value) list -> (merged state, merged value) *)
  match List.filter (fun (s, _) -> s.guard <> Aig.false_) pairs with
  | [] -> None
  | (s0, v0) :: rest ->
    Some
      (List.fold_left
         (fun (sa, va) (sb, vb) ->
           ( merge_states ctx sa sb,
             if va == vb then va else Bitvec.mux ctx.graph sa.guard va vb ))
         (s0, v0) rest)

(* ------------------------------------------------------------------ *)
(* memory model: guarded write log, mux-chain reads *)

let memory_write ctx state addr value =
  ctx.memory_log <- (state.guard, addr, value) :: ctx.memory_log

let memory_read ctx addr =
  let g = ctx.graph in
  List.fold_left
    (fun acc (wg, waddr, wvalue) ->
      let hit = Aig.and_ g wg (Bitvec.eq g addr waddr) in
      Bitvec.mux g hit wvalue acc)
    (Bitvec.const 0)
    (List.rev ctx.memory_log)

(* ------------------------------------------------------------------ *)

let add_condition ctx name pos lit =
  if lit <> Aig.false_ then
    ctx.conditions <- { vc_name = name; vc_pos = pos; vc_lit = lit } :: ctx.conditions

let assume ctx state lit =
  ctx.assumptions <-
    Aig.and_ ctx.graph ctx.assumptions (Aig.implies ctx.graph state.guard lit)

let lookup_scalar state name =
  SMap.find_opt name state.env.scalars

let set_scalar state name value =
  { state with env = { state.env with scalars = SMap.add name value state.env.scalars } }

let set_array state name value =
  { state with env = { state.env with arrays = SMap.add name value state.env.arrays } }

(* scope: source-level name -> unique scalar key *)
let resolve scope name = match SMap.find_opt name scope with
  | Some unique -> unique
  | None -> name

(* ------------------------------------------------------------------ *)

let rec eval ctx scope depth state (e : Ast.expr) : state * Bitvec.t =
  check_budget ctx;
  let g = ctx.graph in
  let pos = e.Ast.epos in
  match e.Ast.edesc with
  | Ast.Int_lit v -> (state, Bitvec.const v)
  | Ast.Bool_lit b -> (state, Bitvec.const (if b then 1 else 0))
  | Ast.Var name -> (
    let key = resolve scope name in
    match lookup_scalar state key with
    | Some value -> (state, value)
    | None -> (
      match Minic.Typecheck.const_value ctx.info name with
      | Some v -> (state, Bitvec.const v)
      | None ->
        raise (Unsupported ("unbound variable " ^ name, pos))))
  | Ast.Index (name, index_expr) -> (
    let state, index = eval ctx scope depth state index_expr in
    match SMap.find_opt name state.env.arrays with
    | None -> raise (Unsupported ("unknown array " ^ name, pos))
    | Some elements ->
      let n = Array.length elements in
      let in_bounds =
        Aig.and_ g
          (Bitvec.le_signed g (Bitvec.const 0) index)
          (Bitvec.lt_signed g index (Bitvec.const n))
      in
      add_condition ctx
        (Printf.sprintf "array bounds on %s" name)
        pos
        (Aig.and_ g state.guard (Aig.neg in_bounds));
      (* mux chain over the elements *)
      let value = ref (Bitvec.const 0) in
      for i = n - 1 downto 0 do
        let hit = Bitvec.eq g index (Bitvec.const i) in
        value := Bitvec.mux g hit elements.(i) !value
      done;
      (state, !value))
  | Ast.Unop (op, inner) -> (
    let state, v = eval ctx scope depth state inner in
    match op with
    | Ast.Neg -> (state, Bitvec.neg g v)
    | Ast.Bitnot -> (state, Bitvec.lognot g v)
    | Ast.Lognot -> (state, Bitvec.of_bool (Aig.neg (Bitvec.truthy g v))))
  | Ast.Binop (Ast.Land, a, b) ->
    let state, va = eval ctx scope depth state a in
    let ta = Bitvec.truthy g va in
    let state, vb = eval_guarded ctx scope depth state ta b in
    (state, Bitvec.of_bool (Aig.and_ g ta (Bitvec.truthy g vb)))
  | Ast.Binop (Ast.Lor, a, b) ->
    let state, va = eval ctx scope depth state a in
    let ta = Bitvec.truthy g va in
    let state, vb = eval_guarded ctx scope depth state (Aig.neg ta) b in
    (state, Bitvec.of_bool (Aig.or_ g ta (Bitvec.truthy g vb)))
  | Ast.Binop (op, a, b) -> (
    let state, va = eval ctx scope depth state a in
    let state, vb = eval ctx scope depth state b in
    match op with
    | Ast.Add -> (state, Bitvec.add g va vb)
    | Ast.Sub -> (state, Bitvec.sub g va vb)
    | Ast.Mul -> (state, Bitvec.mul g va vb)
    | Ast.Div | Ast.Mod ->
      add_condition ctx "division by zero" pos
        (Aig.and_ g state.guard (Bitvec.is_zero g vb));
      let q, r = Bitvec.divrem g va vb in
      (state, if op = Ast.Div then q else r)
    | Ast.Band -> (state, Bitvec.logand g va vb)
    | Ast.Bor -> (state, Bitvec.logor g va vb)
    | Ast.Bxor -> (state, Bitvec.logxor g va vb)
    | Ast.Shl -> (state, Bitvec.shift_left g va vb)
    | Ast.Shr -> (state, Bitvec.shift_right_arith g va vb)
    | Ast.Lt -> (state, Bitvec.of_bool (Bitvec.lt_signed g va vb))
    | Ast.Le -> (state, Bitvec.of_bool (Bitvec.le_signed g va vb))
    | Ast.Gt -> (state, Bitvec.of_bool (Bitvec.lt_signed g vb va))
    | Ast.Ge -> (state, Bitvec.of_bool (Bitvec.le_signed g vb va))
    | Ast.Eq -> (state, Bitvec.of_bool (Bitvec.eq g va vb))
    | Ast.Ne -> (state, Bitvec.of_bool (Bitvec.ne g va vb))
    | Ast.Land | Ast.Lor -> assert false)
  | Ast.Nondet (lo_expr, hi_expr) ->
    let state, lo = eval ctx scope depth state lo_expr in
    let state, hi = eval ctx scope depth state hi_expr in
    let name = fresh_name ctx "nondet" in
    let input = Bitvec.fresh g name in
    ctx.inputs <- (name, input) :: ctx.inputs;
    assume ctx state
      (Aig.and_ g
         (Bitvec.le_signed g lo input)
         (Bitvec.le_signed g input hi));
    (state, input)
  | Ast.Mem_read addr_expr ->
    let state, addr = eval ctx scope depth state addr_expr in
    (state, memory_read ctx addr)
  | Ast.Call (name, args) ->
    let state, args =
      List.fold_left
        (fun (state, acc) arg ->
          let state, v = eval ctx scope depth state arg in
          (state, v :: acc))
        (state, []) args
    in
    let args = List.rev args in
    exec_call ctx depth state name args pos

(* evaluate under an extra guard; side effects outside the guard are
   cancelled by muxing the environment back *)
and eval_guarded ctx scope depth state cond expr =
  let inner = { state with guard = Aig.and_ ctx.graph state.guard cond } in
  let after, value = eval ctx scope depth inner expr in
  ( { guard = state.guard; env = mux_env ctx cond after.env state.env },
    value )

and exec_call ctx depth state name args pos =
  if depth >= ctx.recursion_limit then begin
    ctx.complete <- false;
    (* path abandoned beyond the recursion bound *)
    ({ state with guard = Aig.false_ }, Bitvec.const 0)
  end
  else begin
    let func =
      match Ast.find_func (Minic.Typecheck.program ctx.info) name with
      | Some f -> f
      | None -> raise (Unsupported ("call to unknown function " ^ name, pos))
    in
    (* bind parameters as fresh renamed scalars *)
    let instance = fresh_name ctx name in
    let scope, state =
      List.fold_left2
        (fun (scope, state) (param, _typ) value ->
          let key = instance ^ "." ^ param in
          (SMap.add param key scope, set_scalar state key value))
        (SMap.empty, state) func.Ast.f_params args
    in
    let exits = exec_stmts ctx scope (depth + 1) state func.Ast.f_body in
    let outcomes =
      (match exits.fall with
      | Some s -> [ (s, Bitvec.const 0) ] (* fell off the end: returns 0 *)
      | None -> [])
      @ List.map (fun (s, v) -> (s, v)) exits.rets
    in
    assert (exits.brks = [] && exits.conts = []);
    match merge_value_list ctx outcomes with
    | Some (merged, value) -> (merged, value)
    | None ->
      (* no path returns (e.g. halt on all paths) *)
      ({ state with guard = Aig.false_ }, Bitvec.const 0)
  end

(* ------------------------------------------------------------------ *)

and exec_stmts ctx scope depth state stmts =
  (* thread the scope through declarations; collect exits *)
  let rec go scope state_opt acc = function
    | [] -> { acc with fall = state_opt }
    | stmt :: rest -> (
      match state_opt with
      | None -> { acc with fall = None }
      | Some state ->
        let scope, exits = exec ctx scope depth state stmt in
        let acc =
          {
            acc with
            brks = exits.brks @ acc.brks;
            conts = exits.conts @ acc.conts;
            rets = exits.rets @ acc.rets;
          }
        in
        go scope exits.fall acc rest)
  in
  go scope (Some state) no_exits stmts

(* returns (updated scope, exits) — only Decl extends the scope *)
and exec ctx scope depth state (s : Ast.stmt) : string SMap.t * exits =
  check_budget ctx;
  ctx.stmt_count <- ctx.stmt_count + 1;
  let g = ctx.graph in
  let pos = s.Ast.spos in
  let just st = (scope, { no_exits with fall = Some st }) in
  match s.Ast.sdesc with
  | Ast.Block body ->
    (scope, exec_stmts ctx scope depth state body)
  | Ast.Decl (name, _typ, init) ->
    let key = fresh_name ctx name in
    let state, value =
      match init with
      | None -> (state, Bitvec.const 0)
      | Some e -> eval ctx scope depth state e
    in
    (SMap.add name key scope, { no_exits with fall = Some (set_scalar state key value) })
  | Ast.Expr e ->
    let state, _ = eval ctx scope depth state e in
    just state
  | Ast.Assign (lhs, e) -> (
    let state, value = eval ctx scope depth state e in
    match lhs with
    | Ast.Lvar name -> (
      let key = resolve scope name in
      match lookup_scalar state key with
      | Some old ->
        (* guarded assignment *)
        let muxed = Bitvec.mux g state.guard value old in
        just (set_scalar state key muxed)
      | None ->
        (* first write to a global: previous value is its initial value *)
        raise (Unsupported ("assignment to unknown variable " ^ name, pos)))
    | Ast.Lindex (name, index_expr) -> (
      let state, index = eval ctx scope depth state index_expr in
      match SMap.find_opt name state.env.arrays with
      | None -> raise (Unsupported ("unknown array " ^ name, pos))
      | Some elements ->
        let n = Array.length elements in
        let in_bounds =
          Aig.and_ g
            (Bitvec.le_signed g (Bitvec.const 0) index)
            (Bitvec.lt_signed g index (Bitvec.const n))
        in
        add_condition ctx
          (Printf.sprintf "array bounds on %s" name)
          pos
          (Aig.and_ g state.guard (Aig.neg in_bounds));
        let updated =
          Array.init n (fun i ->
              let hit =
                Aig.and_ g state.guard
                  (Bitvec.eq g index (Bitvec.const i))
              in
              Bitvec.mux g hit value elements.(i))
        in
        just (set_array state name updated))
    | Ast.Lmem addr_expr ->
      let state, addr = eval ctx scope depth state addr_expr in
      memory_write ctx state addr value;
      just state)
  | Ast.If (cond_expr, then_s, else_s) ->
    let state, cond_v = eval ctx scope depth state cond_expr in
    let c = Bitvec.truthy g cond_v in
    let then_state = { state with guard = Aig.and_ g state.guard c } in
    let else_state = { state with guard = Aig.and_ g state.guard (Aig.neg c) } in
    let _, then_exits = exec ctx scope depth then_state then_s in
    let else_exits =
      match else_s with
      | None -> { no_exits with fall = Some else_state }
      | Some body ->
        let _, exits = exec ctx scope depth else_state body in
        exits
    in
    let fall =
      merge_state_list ctx
        (Option.to_list then_exits.fall @ Option.to_list else_exits.fall)
    in
    ( scope,
      {
        fall;
        brks = then_exits.brks @ else_exits.brks;
        conts = then_exits.conts @ else_exits.conts;
        rets = then_exits.rets @ else_exits.rets;
      } )
  | Ast.While (cond_expr, body) ->
    exec_loop ctx scope depth state ~cond:(Some cond_expr) ~body ~step:None pos
  | Ast.Do_while (body, cond_expr) ->
    (* run the body once, then behave like a while loop *)
    let _, first = exec ctx scope depth state body in
    let after_first =
      merge_state_list ctx (Option.to_list first.fall @ first.conts)
    in
    let loop_exits =
      match after_first with
      | None -> no_exits
      | Some st ->
        snd (exec_loop ctx scope depth st ~cond:(Some cond_expr) ~body ~step:None pos)
    in
    ( scope,
      {
        fall =
          merge_state_list ctx
            (first.brks @ Option.to_list loop_exits.fall @ loop_exits.brks);
        brks = [];
        conts = [];
        rets = first.rets @ loop_exits.rets;
      } )
  | Ast.For (init, cond_expr, step, body) ->
    let scope', init_state =
      match init with
      | None -> (scope, { no_exits with fall = Some state })
      | Some init_stmt ->
        let scope', exits = exec ctx scope depth state init_stmt in
        (scope', exits)
    in
    (match init_state.fall with
    | None -> (scope, no_exits)
    | Some st ->
      let _, exits =
        exec_loop ctx scope' depth st ~cond:cond_expr ~body ~step pos
      in
      (scope, exits))
  | Ast.Switch (scrutinee, cases) ->
    let state, value = eval ctx scope depth state scrutinee in
    let case_match case =
      List.fold_left
        (fun acc label ->
          match label with
          | Ast.Case v -> Aig.or_ g acc (Bitvec.eq g value (Bitvec.const v))
          | Ast.Default -> acc)
        Aig.false_ case.Ast.labels
    in
    let matches = List.map case_match cases in
    let any_match = Aig.disj g matches in
    let entry_conds =
      List.map2
        (fun case m ->
          if List.mem Ast.Default case.Ast.labels then
            Aig.or_ g m (Aig.neg any_match)
          else m)
        cases matches
    in
    (* fall through segments *)
    let acc = ref no_exits in
    let active = ref None in
    List.iter2
      (fun case entry ->
        let entry_state = { state with guard = Aig.and_ g state.guard entry } in
        let combined =
          merge_state_list ctx (entry_state :: Option.to_list !active)
        in
        match combined with
        | None -> active := None
        | Some st ->
          let exits = exec_stmts ctx scope depth st case.Ast.body in
          acc :=
            {
              !acc with
              brks = exits.brks @ !acc.brks;
              conts = exits.conts @ !acc.conts;
              rets = exits.rets @ !acc.rets;
            };
          active := exits.fall)
      cases entry_conds;
    (* no case entered *)
    let no_entry =
      { state with guard = Aig.and_ g state.guard (Aig.neg (Aig.disj g entry_conds)) }
    in
    let fall =
      merge_state_list ctx
        (no_entry :: Option.to_list !active @ !acc.brks)
    in
    (scope, { fall; brks = []; conts = !acc.conts; rets = !acc.rets })
  | Ast.Break -> (scope, { no_exits with brks = [ state ] })
  | Ast.Continue -> (scope, { no_exits with conts = [ state ] })
  | Ast.Return value_expr ->
    let state, value =
      match value_expr with
      | None -> (state, Bitvec.const 0)
      | Some e -> eval ctx scope depth state e
    in
    (scope, { no_exits with rets = [ (state, value) ] })
  | Ast.Assert cond_expr ->
    let state, v = eval ctx scope depth state cond_expr in
    add_condition ctx "assertion" pos
      (Aig.and_ g state.guard (Aig.neg (Bitvec.truthy g v)));
    just state
  | Ast.Assume cond_expr ->
    let state, v = eval ctx scope depth state cond_expr in
    assume ctx state (Bitvec.truthy g v);
    (* execution continues only where the assumption holds *)
    just { state with guard = Aig.and_ g state.guard (Bitvec.truthy g v) }
  | Ast.Halt ->
    (* program stops: model as a return that discards the value *)
    (scope, { no_exits with rets = [ (state, Bitvec.const 0) ] })

and exec_loop ctx scope depth state ~cond ~body ~step _pos =
  let g = ctx.graph in
  let exit_states = ref [] in
  let escaped_rets = ref [] in
  let rec iterate state iteration =
    let state, c =
      match cond with
      | None -> (state, Aig.true_)
      | Some e ->
        let state, v = eval ctx scope depth state e in
        (state, Bitvec.truthy g v)
    in
    exit_states :=
      { state with guard = Aig.and_ g state.guard (Aig.neg c) } :: !exit_states;
    let enter = { state with guard = Aig.and_ g state.guard c } in
    if enter.guard = Aig.false_ then ()
    else if iteration >= ctx.unwind then begin
      (* unwinding bound hit: restrict to bounded executions *)
      ctx.complete <- false;
      ctx.assumptions <- Aig.and_ g ctx.assumptions (Aig.neg enter.guard)
    end
    else begin
      let _, body_exits = exec ctx scope depth enter body in
      exit_states := body_exits.brks @ !exit_states;
      escaped_rets := body_exits.rets @ !escaped_rets;
      let continue_states =
        Option.to_list body_exits.fall @ body_exits.conts
      in
      match merge_state_list ctx continue_states with
      | None -> ()
      | Some next ->
        let next =
          match step with
          | None -> next
          | Some step_stmt -> (
            let _, step_exits = exec ctx scope depth next step_stmt in
            match step_exits.fall with
            | Some st -> st
            | None -> { next with guard = Aig.false_ })
        in
        if next.guard <> Aig.false_ then iterate next (iteration + 1)
    end
  in
  iterate state 0;
  ( scope,
    {
      fall = merge_state_list ctx !exit_states;
      brks = [];
      conts = [];
      rets = !escaped_rets;
    } )

(* ------------------------------------------------------------------ *)

let encode ?(unwind = 20) ?(recursion_limit = 16) ?(max_nodes = 20_000_000)
    ?(deadline = infinity) info ~entry =
  let graph = Aig.create () in
  let ctx =
    {
      graph;
      info;
      unwind;
      recursion_limit;
      max_nodes;
      deadline;
      conditions = [];
      assumptions = Aig.true_;
      inputs = [];
      memory_log = [];
      complete = true;
      fresh_counter = 0;
      stmt_count = 0;
    }
  in
  (* initial environment: globals at their initial values *)
  let prog = Minic.Typecheck.program info in
  let state = ref { guard = Aig.true_; env = { scalars = SMap.empty; arrays = SMap.empty } } in
  List.iter
    (fun (global : Ast.global) ->
      if not global.Ast.g_const then
        match global.Ast.g_type with
        | Ast.Tarray n ->
          state := set_array !state global.Ast.g_name (Array.make n (Bitvec.const 0))
        | Ast.Tint | Ast.Tbool | Ast.Tvoid ->
          let st, value =
            match global.Ast.g_init with
            | None -> (!state, Bitvec.const 0)
            | Some e -> eval ctx SMap.empty 0 !state e
          in
          state := set_scalar st global.Ast.g_name value)
    prog.Ast.globals;
  let _, _ = exec_call ctx 0 !state entry [] Ast.dummy_pos in
  {
    graph;
    conditions = List.rev ctx.conditions;
    assumptions = ctx.assumptions;
    inputs = ctx.inputs;
    complete = ctx.complete;
    statements_encoded = ctx.stmt_count;
  }
