type t = Aig.lit array

let width = 32

let const value =
  let u = value land 0xFFFFFFFF in
  Array.init width (fun i ->
      if (u lsr i) land 1 = 1 then Aig.true_ else Aig.false_)

let fresh graph name =
  Array.init width (fun i ->
      Aig.fresh_input graph (Printf.sprintf "%s.%d" name i))

let to_const bv =
  let rec build i acc =
    if i >= width then Some acc
    else if bv.(i) = Aig.true_ then build (i + 1) (acc lor (1 lsl i))
    else if bv.(i) = Aig.false_ then build (i + 1) acc
    else None
  in
  Option.map Minic.Value.wrap (build 0 0)

(* full adder chain with carry-in *)
let adder graph a b carry_in =
  let result = Array.make width Aig.false_ in
  let carry = ref carry_in in
  for i = 0 to width - 1 do
    let axb = Aig.xor_ graph a.(i) b.(i) in
    result.(i) <- Aig.xor_ graph axb !carry;
    carry :=
      Aig.or_ graph (Aig.and_ graph a.(i) b.(i)) (Aig.and_ graph axb !carry)
  done;
  (result, !carry)

let add graph a b = fst (adder graph a b Aig.false_)
let lognot _graph a = Array.map Aig.neg a
let sub graph a b = fst (adder graph a (Array.map Aig.neg b) Aig.true_)
let neg graph a = sub graph (const 0) a

let logand graph a b = Array.init width (fun i -> Aig.and_ graph a.(i) b.(i))
let logor graph a b = Array.init width (fun i -> Aig.or_ graph a.(i) b.(i))
let logxor graph a b = Array.init width (fun i -> Aig.xor_ graph a.(i) b.(i))

let mux graph sel a b = Array.init width (fun i -> Aig.mux graph sel a.(i) b.(i))

let of_bool bit =
  Array.init width (fun i -> if i = 0 then bit else Aig.false_)

let is_zero graph bv =
  Aig.neg (Aig.disj graph (Array.to_list bv))

let truthy graph bv = Aig.disj graph (Array.to_list bv)

let eq graph a b =
  Aig.conj graph
    (List.init width (fun i -> Aig.iff graph a.(i) b.(i)))

let ne graph a b = Aig.neg (eq graph a b)

(* signed less-than via subtraction: a < b iff (a - b) negative, corrected
   for overflow: lt = (sign a & !sign b) | (sign equal & sign (a-b)) *)
let lt_signed graph a b =
  let diff = sub graph a b in
  let sa = a.(width - 1) and sb = b.(width - 1) in
  let sign_diff = diff.(width - 1) in
  Aig.or_ graph
    (Aig.and_ graph sa (Aig.neg sb))
    (Aig.and_ graph (Aig.iff graph sa sb) sign_diff)

let le_signed graph a b = Aig.neg (lt_signed graph b a)

(* shift-add multiplier (low 32 bits) *)
let mul graph a b =
  let acc = ref (const 0) in
  let shifted = ref a in
  for i = 0 to width - 1 do
    let partial =
      Array.map (fun bit -> Aig.and_ graph bit b.(i)) !shifted
    in
    acc := add graph !acc partial;
    (* shift [shifted] left by one *)
    shifted :=
      Array.init width (fun j -> if j = 0 then Aig.false_ else !shifted.(j - 1))
  done;
  !acc

(* barrel shifters: the amount's low 5 bits select staged shifts *)
let barrel graph shift_stage a amount =
  let result = ref a in
  for stage = 0 to 4 do
    let sel = amount.(stage) in
    let shifted = shift_stage !result (1 lsl stage) in
    result := mux graph sel shifted !result
  done;
  !result

let shift_left graph a amount =
  let stage v k =
    Array.init width (fun i -> if i < k then Aig.false_ else v.(i - k))
  in
  barrel graph stage a amount

let shift_right_logical graph a amount =
  let stage v k =
    Array.init width (fun i ->
        if i + k < width then v.(i + k) else Aig.false_)
  in
  barrel graph stage a amount

let shift_right_arith graph a amount =
  let sign = a.(width - 1) in
  let stage v k =
    Array.init width (fun i -> if i + k < width then v.(i + k) else sign)
  in
  barrel graph stage a amount

(* unsigned restoring division: returns (quotient, remainder) *)
let divrem_unsigned graph a b =
  let quotient = Array.make width Aig.false_ in
  (* remainder accumulates from the top bit down *)
  let remainder = ref (const 0) in
  for i = width - 1 downto 0 do
    (* remainder = (remainder << 1) | a.(i) *)
    remainder :=
      Array.init width (fun j ->
          if j = 0 then a.(i) else !remainder.(j - 1));
    (* if remainder >= b (unsigned) then subtract and set quotient bit *)
    let diff, borrow_free = adder graph !remainder (Array.map Aig.neg b) Aig.true_ in
    let ge = borrow_free in
    quotient.(i) <- ge;
    remainder := mux graph ge diff !remainder
  done;
  (quotient, !remainder)

let divrem graph a b =
  let sign_a = a.(width - 1) and sign_b = b.(width - 1) in
  let abs_a = mux graph sign_a (neg graph a) a in
  let abs_b = mux graph sign_b (neg graph b) b in
  let uq, ur = divrem_unsigned graph abs_a abs_b in
  let q_negative = Aig.xor_ graph sign_a sign_b in
  let quotient = mux graph q_negative (neg graph uq) uq in
  let remainder = mux graph sign_a (neg graph ur) ur in
  (quotient, remainder)

let eval graph ~assignment bv =
  let value = ref 0 in
  for i = 0 to width - 1 do
    if Aig.eval graph ~assignment bv.(i) then value := !value lor (1 lsl i)
  done;
  Minic.Value.wrap !value
