lib/bmc/sat.mli:
