lib/bmc/bitvec.ml: Aig Array List Minic Option Printf
