lib/bmc/symexec.mli: Aig Bitvec Minic
