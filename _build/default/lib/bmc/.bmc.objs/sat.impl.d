lib/bmc/sat.ml: Array Int List Option Unix
