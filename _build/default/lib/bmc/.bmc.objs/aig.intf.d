lib/bmc/aig.mli:
