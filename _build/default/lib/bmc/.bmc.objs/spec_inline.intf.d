lib/bmc/spec_inline.mli: Formula Minic
