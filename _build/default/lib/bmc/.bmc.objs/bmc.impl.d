lib/bmc/bmc.ml: Aig Array Bitvec List Minic Printf Sat Symexec Unix
