lib/bmc/bmc.mli: Minic Sat
