lib/bmc/bitvec.mli: Aig
