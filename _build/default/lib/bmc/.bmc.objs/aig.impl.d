lib/bmc/aig.ml: Array Hashtbl List
