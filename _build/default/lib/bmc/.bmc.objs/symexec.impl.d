lib/bmc/symexec.ml: Aig Array Bitvec List Map Minic Option Printf String Unix
