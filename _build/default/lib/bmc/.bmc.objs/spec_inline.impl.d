lib/bmc/spec_inline.ml: Ar_automaton Array Formula Hashtbl List Minic Option Printf String
