(** CDCL SAT solver (the back end of the bounded model checker).

    Conflict-driven clause learning with two-watched-literal propagation,
    VSIDS decision heuristics, first-UIP conflict analysis with
    backjumping, and Luby restarts — the architecture of the solvers CBMC
    used in the paper's era. Inputs are DIMACS-style clauses (non-zero
    signed literals, variables 1-based). *)

type result =
  | Sat of bool array  (** model, indexed by variable (index 0 unused) *)
  | Unsat
  | Timeout

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

val solve :
  ?timeout_seconds:float ->
  ?max_conflicts:int ->
  num_vars:int ->
  int array list ->
  result * stats
(** An empty clause (or contradictory units) yields [Unsat]. Literals must
    satisfy [1 <= abs lit <= num_vars]. *)
