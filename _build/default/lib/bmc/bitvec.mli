(** 32-bit two's-complement bit-vector circuits over the AIG —
    the bit-blasting layer of the bounded model checker. Semantics match
    {!Minic.Value} exactly (wrap-around, truncating division, masked
    shifts); the test suite checks this equivalence exhaustively with
    random vectors. *)

type t = Aig.lit array
(** 32 literals, least significant bit first. *)

val width : int

val const : int -> t
(** Constant from the canonical signed range. *)

val fresh : Aig.t -> string -> t
(** 32 fresh inputs named ["name.0" .. "name.31"]. *)

val to_const : t -> int option
(** The value when all bits are constant. *)

(** {2 Arithmetic} *)

val add : Aig.t -> t -> t -> t
val sub : Aig.t -> t -> t -> t
val neg : Aig.t -> t -> t
val mul : Aig.t -> t -> t -> t

val divrem : Aig.t -> t -> t -> t * t
(** C99 semantics (truncation toward zero, remainder sign follows the
    dividend). The divisor-zero case yields unspecified results — the
    executor emits a separate division-by-zero verification condition. *)

(** {2 Bitwise / shifts} *)

val logand : Aig.t -> t -> t -> t
val logor : Aig.t -> t -> t -> t
val logxor : Aig.t -> t -> t -> t
val lognot : Aig.t -> t -> t

val shift_left : Aig.t -> t -> t -> t
(** Barrel shifter; the amount is masked to 0..31 like the CPU. *)

val shift_right_arith : Aig.t -> t -> t -> t
val shift_right_logical : Aig.t -> t -> t -> t

(** {2 Predicates (single literals)} *)

val eq : Aig.t -> t -> t -> Aig.lit
val ne : Aig.t -> t -> t -> Aig.lit
val lt_signed : Aig.t -> t -> t -> Aig.lit
val le_signed : Aig.t -> t -> t -> Aig.lit
val is_zero : Aig.t -> t -> Aig.lit

val of_bool : Aig.lit -> t
(** 0/1-extension of a single bit. *)

val truthy : Aig.t -> t -> Aig.lit
(** C truthiness: value is non-zero. *)

val mux : Aig.t -> Aig.lit -> t -> t -> t

val eval : Aig.t -> assignment:(Aig.lit -> bool) -> t -> int
(** Concrete signed value under an input assignment. *)
