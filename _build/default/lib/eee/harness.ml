module Flash = Dataflash.Flash
module Session = Verif.Session

let flash_campaign_config ~fault_rate =
  {
    Flash.num_blocks = 4;
    words_per_block = 128;
    erase_ticks = 800;
    write_ticks = 8;
    write_fail_prob = fault_rate;
    erase_fail_prob = fault_rate /. 2.0;
  }

let approach1 ?(fault_rate = 0.02) ?(seed = 42) ?(chunk_cycles = 60)
    ?(trace = Verif.Trace.null) () =
  let config =
    {
      Session.default_config with
      Session.session_name = "eee-approach1";
      seed;
      chunk = chunk_cycles;
      flash = Some (flash_campaign_config ~fault_rate);
      flag = Some "flag";
      trace;
    }
  in
  let session =
    Session.create ~compiled:(Eee_program.compile ()) config Session.Soc_model
  in
  (* boot until the software completes its initialization handshake *)
  Session.boot session;
  session

let approach2 ?(fault_rate = 0.02) ?(seed = 42) ?(chunk_statements = 60)
    ?(trace = Verif.Trace.null) () =
  let config =
    {
      Session.default_config with
      Session.session_name = "eee-approach2";
      seed;
      chunk = chunk_statements;
      flash = Some (flash_campaign_config ~fault_rate);
      trace;
    }
  in
  let session =
    Session.create ~derived:(Eee_program.derive ()) config
      Session.Derived_model
  in
  (* let the model run its initialization *)
  Session.boot session;
  session
