module Flash = Dataflash.Flash
module Flash_ctrl = Dataflash.Flash_ctrl
module Checker = Sctc.Checker
module Map = Cpu.Memory_map

let flash_campaign_config ~fault_rate =
  {
    Flash.num_blocks = 4;
    words_per_block = 128;
    erase_ticks = 800;
    write_ticks = 8;
    write_fail_prob = fault_rate;
    erase_fail_prob = fault_rate /. 2.0;
  }

let approach1 ?(fault_rate = 0.02) ?(seed = 42) ?(chunk_cycles = 60) () =
  let config =
    {
      Platform.Soc.clock_period = 10;
      flash = flash_campaign_config ~fault_rate;
      seed;
    }
  in
  let soc = Platform.Soc.create ~config () in
  Platform.Soc.load soc (Eee_program.compile ());
  let checker = Checker.create ~name:"eee-approach1" () in
  let monitor = Platform.Esw_monitor.attach soc ~flag:"flag" checker in
  (* boot until the software completes its initialization handshake *)
  let rec boot attempts =
    if (not (Platform.Esw_monitor.initialized monitor)) && attempts > 0 then begin
      Platform.Soc.run ~max_cycles:200 soc;
      boot (attempts - 1)
    end
  in
  boot 50;
  if not (Platform.Esw_monitor.initialized monitor) then
    failwith "Harness.approach1: software never initialized";
  {
    Driver.backend_name = "approach-1 (microprocessor model)";
    read_var = Platform.Soc.read_var soc;
    in_function = Platform.Mem_prop.in_function soc;
    mbox = Platform.Soc.mailbox soc;
    advance = (fun () -> Platform.Soc.run ~max_cycles:chunk_cycles soc);
    time_units = (fun () -> Platform.Soc.cycles soc);
    checker;
    alive = (fun () -> not (Platform.Soc.cpu_stopped soc));
  }

let approach2 ?(fault_rate = 0.02) ?(seed = 42) ?(chunk_statements = 60) () =
  let kernel = Sim.Kernel.create () in
  let vmem = Esw.Vmem.create () in
  let prng = Stimuli.Prng.create ~seed in
  let flash =
    Flash.create
      ~prng:(Stimuli.Prng.split prng "flash-faults")
      (flash_campaign_config ~fault_rate)
  in
  let ctrl = Flash_ctrl.create flash in
  Esw.Vmem.map_device vmem (Flash_ctrl.ctrl_device ctrl ~base:Map.flash_ctrl_base);
  Esw.Vmem.map_device vmem
    (Flash_ctrl.window_device ctrl ~base:Map.flash_window_base
       ~size:(min Map.flash_window_size (Flash.size_words flash)));
  let mbox = Platform.Mailbox.create () in
  Esw.Vmem.map_device vmem (Platform.Mailbox.device mbox ~base:Map.mailbox_base);
  let model =
    Esw.Esw_model.create kernel ~seed
      ~on_tick:(fun () -> Flash.tick flash)
      (Eee_program.derive ()) ~vmem
  in
  let checker = Checker.create ~name:"eee-approach2" () in
  ignore (Sctc.Trigger.on_event kernel (Esw.Esw_model.pc_event model) checker);
  ignore (Esw.Esw_model.start model ~entry:"main");
  let advance () =
    Sim.Kernel.run
      ~max_time:(Sim.Kernel.now kernel + chunk_statements)
      kernel
  in
  (* let the model run its initialization *)
  advance ();
  {
    Driver.backend_name = "approach-2 (derived SystemC model)";
    read_var = (fun name -> Esw.Esw_model.read_member model name);
    in_function = (fun func -> Esw.Esw_prop.in_function model func);
    mbox;
    advance;
    time_units = (fun () -> Esw.Esw_model.statements model);
    checker;
    alive =
      (fun () ->
        match Esw.Esw_model.outcome model with
        | Esw.Esw_model.Running -> true
        | Esw.Esw_model.Not_started | Esw.Esw_model.Done _
        | Esw.Esw_model.Crashed _ ->
          false);
  }
