(** Constrained-random verification campaigns over the EEPROM-emulation
    software — the experiment engine behind the paper's Fig. 8.

    A {!backend} abstracts over the two integration approaches (the SoC of
    approach 1, the derived model of approach 2): it exposes variable
    observation, function-entry propositions, the request mailbox and a way
    to advance simulation. {!install_spec} registers the specification's
    propositions and response properties on the backend's checker;
    {!run_campaign} then drives constrained-random test cases against one
    operation, collecting verification time, test-case count and
    return-value coverage — the three columns of the paper's tables. *)

type backend = {
  backend_name : string;
  read_var : string -> int;  (** observe a software global *)
  in_function : string -> Proposition.t;  (** fname-based probe *)
  mbox : Platform.Mailbox.t;
  advance : unit -> unit;  (** progress the simulation by one chunk *)
  time_units : unit -> int;  (** cycles (approach 1) / statements (2) *)
  checker : Sctc.Checker.t;
  alive : unit -> bool;  (** software still executing *)
}

type config = {
  test_cases : int;
  watchdog_chunks : int;  (** give up on an operation after this many *)
  bound : int option;  (** time bound of the response properties *)
  engine : Sctc.Checker.engine;
  seed : int;
}

val default_config : config

type outcome = {
  op : Eee_spec.op;
  vt_seconds : float;  (** paper column V.T.(s), incl. AR synthesis *)
  synthesis_seconds : float;  (** AR-automaton generation part *)
  completed_cases : int;  (** paper column T.C. *)
  coverage : Sctc.Coverage.t;  (** paper column C.(%%) *)
  verdict : Verdict.t;  (** property verdict at campaign end *)
  timeouts : int;  (** operations that hit the watchdog *)
  time_units_used : int;
}

val install_spec :
  ?bound:int option ->
  ?engine:Sctc.Checker.engine ->
  backend ->
  Eee_spec.op list ->
  unit
(** Register called/return propositions and the response property for each
    operation. Call once per backend, before {!run_campaign}. *)

val run_campaign : backend -> config -> Eee_spec.op -> outcome
(** Drive [config.test_cases] constrained-random invocations of the
    operation (interleaved with random context operations that move the
    emulation through its state space), collecting coverage and the
    property verdict. *)

val pp_outcome : Format.formatter -> outcome -> unit
