(** Constrained-random verification campaigns over the EEPROM-emulation
    software — the experiment engine behind the paper's Fig. 8.

    The driver runs against a {!Verif.Session.t} (assembled by
    {!Harness}): it uses the session's mailbox, variable observation and
    chunked advance. {!install_spec} registers the specification's
    propositions and response properties on the session's checker;
    {!run_campaign} then drives constrained-random test cases against one
    operation and returns the uniform {!Verif.Result.t} (verification
    time, test-case count, return-value coverage — the three columns of
    the paper's tables). When the session carries a live trace bus, every
    measured test case publishes [Test_case_begin]/[Test_case_end] (and
    [Watchdog_fired] on expiry). *)

type config = {
  test_cases : int;
  watchdog_chunks : int;  (** give up on an operation after this many *)
  bound : int option;  (** time bound of the response properties *)
  engine : Sctc.Checker.engine;
  seed : int;
}

val default_config : config

val install_spec :
  ?bound:int option ->
  ?engine:Sctc.Checker.engine ->
  Verif.Session.t ->
  Eee_spec.op list ->
  unit
(** Register called/return propositions and the response property for each
    operation. Call once per session, before {!run_campaign}. *)

val run_campaign :
  Verif.Session.t -> config -> Eee_spec.op -> Verif.Result.t
(** Drive [config.test_cases] constrained-random invocations of the
    operation (interleaved with random context operations that move the
    emulation through its state space), collecting coverage and the
    property verdicts. Restarts the session's timer, so the result's
    V.T./time-unit columns cover exactly this campaign. *)
