module Mailbox = Platform.Mailbox
module Checker = Sctc.Checker
module Coverage = Sctc.Coverage
module Prng = Stimuli.Prng

type backend = {
  backend_name : string;
  read_var : string -> int;
  in_function : string -> Proposition.t;
  mbox : Mailbox.t;
  advance : unit -> unit;
  time_units : unit -> int;
  checker : Checker.t;
  alive : unit -> bool;
}

type config = {
  test_cases : int;
  watchdog_chunks : int;
  bound : int option;
  engine : Checker.engine;
  seed : int;
}

let default_config =
  {
    test_cases = 200;
    watchdog_chunks = 200;
    bound = None;
    engine = Checker.On_the_fly;
    seed = 7;
  }

type outcome = {
  op : Eee_spec.op;
  vt_seconds : float;
  synthesis_seconds : float;
  completed_cases : int;
  coverage : Coverage.t;
  verdict : Verdict.t;
  timeouts : int;
  time_units_used : int;
}

let max_id = 16 (* must match MAX_ID in the software *)

let install_spec ?(bound = None) ?(engine = Checker.On_the_fly) backend ops =
  List.iter
    (fun op ->
      (* "<op>_called": entering the operation's implementation function *)
      let called =
        Proposition.rose (Eee_spec.called_prop op)
          (backend.in_function (Eee_spec.entry_function op))
      in
      Checker.register_proposition backend.checker called;
      (* "<op>_ret_<code>": a response for this op with that code is
         currently posted in the mailbox *)
      List.iter
        (fun code ->
          let name = Eee_spec.return_prop op code in
          let sample () =
            Mailbox.response_ready backend.mbox
            && backend.read_var "eee_done_op" = Eee_spec.op_code op
            && backend.read_var "eee_done_ret" = code
          in
          Checker.register_proposition backend.checker
            (Proposition.make name sample))
        (Eee_spec.expected_returns op);
      Checker.add_property_text ~engine backend.checker
        ~name:(Eee_spec.property_name op)
        (Eee_spec.property_text ?bound op))
    ops

(* constrained-random arguments per operation *)
let random_args prng op =
  let random_id () =
    if Prng.chance prng 0.12 then
      (* out-of-range stimulus to exercise EEE_ERR_PARAMETER *)
      Prng.pick prng [ -3; -1; max_id; max_id + 7 ]
    else Prng.int_range prng ~lo:0 ~hi:(max_id - 1)
  in
  match op with
  | Eee_spec.Read -> (random_id (), 0)
  | Eee_spec.Write -> (random_id (), Prng.int_range prng ~lo:0 ~hi:1_000_000)
  | Eee_spec.Startup1 | Eee_spec.Startup2 | Eee_spec.Format
  | Eee_spec.Prepare | Eee_spec.Refresh ->
    (0, 0)

(* issue one operation and wait for its response (or the watchdog) *)
let issue backend config prng op =
  let arg0, arg1 = random_args prng op in
  Mailbox.post_request backend.mbox ~op:(Eee_spec.op_code op) ~arg0 ~arg1;
  let rec wait chunk =
    if Mailbox.response_ready backend.mbox then
      Some (Mailbox.take_response backend.mbox)
    else if chunk >= config.watchdog_chunks || not (backend.alive ()) then None
    else begin
      backend.advance ();
      wait (chunk + 1)
    end
  in
  wait 0

(* a context operation to walk the emulation through its state space;
   weights favour the operations that change global state *)
let context_op prng =
  Prng.pick_weighted prng
    [
      (3, Eee_spec.Write);
      (2, Eee_spec.Read);
      (2, Eee_spec.Prepare);
      (2, Eee_spec.Refresh);
      (1, Eee_spec.Format);
      (1, Eee_spec.Startup1);
      (1, Eee_spec.Startup2);
    ]

let run_campaign backend config op =
  let prng = Prng.create ~seed:config.seed in
  let coverage =
    Coverage.create ~name:(Eee_spec.op_name op)
      ~expected:(List.map Eee_spec.return_name (Eee_spec.expected_returns op))
  in
  let timeouts = ref 0 in
  let completed = ref 0 in
  let units_before = backend.time_units () in
  let started = Unix.gettimeofday () in
  (* bootstrap: bring the emulation up once, as an application would; the
     campaign's context operations (startup1 downgrades, failed formats)
     reopen the uninitialized states afterwards *)
  List.iter
    (fun boot -> ignore (issue backend config prng boot))
    [ Eee_spec.Format; Eee_spec.Startup1; Eee_spec.Startup2 ];
  for _case = 1 to config.test_cases do
    if backend.alive () then begin
      (* frequently reshuffle the emulation state first *)
      if Prng.chance prng 0.5 then
        ignore (issue backend config prng (context_op prng));
      (* back-to-back issue right after a state-changing op maximizes the
         chance of catching the background erase (EEE_BUSY) *)
      match issue backend config prng op with
      | Some ret ->
        incr completed;
        Coverage.observe coverage (Eee_spec.return_name ret)
      | None -> incr timeouts
    end
  done;
  let elapsed = Unix.gettimeofday () -. started in
  {
    op;
    vt_seconds = elapsed +. Checker.synthesis_seconds backend.checker;
    synthesis_seconds = Checker.synthesis_seconds backend.checker;
    completed_cases = !completed;
    coverage;
    verdict = Checker.verdict backend.checker (Eee_spec.property_name op);
    timeouts = !timeouts;
    time_units_used = backend.time_units () - units_before;
  }

let pp_outcome fmt outcome =
  Format.fprintf fmt
    "%-9s V.T.=%.3fs (synth %.3fs)  T.C.=%d  C=%.1f%%  verdict=%a  \
     timeouts=%d  units=%d"
    (Eee_spec.op_name outcome.op)
    outcome.vt_seconds outcome.synthesis_seconds outcome.completed_cases
    (Coverage.percent outcome.coverage)
    Verdict.pp outcome.verdict outcome.timeouts outcome.time_units_used
