(* The specification side of the case study: operations, their return-code
   sets (the basis of the paper's coverage metric C.(%)), and the FLTL
   property of each operation, extracted — as in the paper — from the
   specification manual:

     G ( <op>_called -> F[b] ( <op> returned one of its legal codes ) )

   which is the paper's shape "F (Read -> F[b] (EEE_OK | ...))" with the
   outer obligation strengthened to all calls. *)

type op =
  | Read
  | Write
  | Startup1
  | Startup2
  | Format
  | Prepare
  | Refresh

let all_ops = [ Read; Write; Startup1; Startup2; Format; Prepare; Refresh ]

let op_name = function
  | Read -> "Read"
  | Write -> "Write"
  | Startup1 -> "Startup1"
  | Startup2 -> "Startup2"
  | Format -> "Format"
  | Prepare -> "Prepare"
  | Refresh -> "Refresh"

let op_code = function
  | Read -> 1
  | Write -> 2
  | Startup1 -> 3
  | Startup2 -> 4
  | Format -> 5
  | Prepare -> 6
  | Refresh -> 7

let op_of_code = function
  | 1 -> Some Read
  | 2 -> Some Write
  | 3 -> Some Startup1
  | 4 -> Some Startup2
  | 5 -> Some Format
  | 6 -> Some Prepare
  | 7 -> Some Refresh
  | _ -> None

(* the function implementing each operation (fname tracking target) *)
let entry_function = function
  | Read -> "eee_read_op"
  | Write -> "eee_write_op"
  | Startup1 -> "eee_startup1"
  | Startup2 -> "eee_startup2"
  | Format -> "eee_format"
  | Prepare -> "eee_prepare"
  | Refresh -> "eee_refresh"

(* return codes *)
let eee_ok = 0
let eee_busy = 1
let eee_err_init = 2
let eee_err_access = 3
let eee_err_no_instance = 4
let eee_err_pool_full = 5
let eee_err_parameter = 6
let eee_err_not_formatted = 7

let return_name = function
  | 0 -> "EEE_OK"
  | 1 -> "EEE_BUSY"
  | 2 -> "EEE_ERR_INIT"
  | 3 -> "EEE_ERR_ACCESS"
  | 4 -> "EEE_ERR_NO_INSTANCE"
  | 5 -> "EEE_ERR_POOL_FULL"
  | 6 -> "EEE_ERR_PARAMETER"
  | 7 -> "EEE_ERR_NOT_FORMATTED"
  | other -> Printf.sprintf "EEE_UNKNOWN_%d" other

(* the specification's legal return codes per operation *)
let expected_returns = function
  | Read ->
    [ eee_ok; eee_busy; eee_err_init; eee_err_access; eee_err_no_instance;
      eee_err_parameter ]
  | Write ->
    [ eee_ok; eee_busy; eee_err_init; eee_err_access; eee_err_pool_full;
      eee_err_parameter ]
  | Startup1 -> [ eee_ok; eee_busy; eee_err_access; eee_err_not_formatted ]
  | Startup2 -> [ eee_ok; eee_busy; eee_err_access; eee_err_init ]
  | Format -> [ eee_ok; eee_busy; eee_err_access ]
  | Prepare -> [ eee_ok; eee_busy; eee_err_access; eee_err_init ]
  | Refresh -> [ eee_ok; eee_busy; eee_err_access; eee_err_init ]

(* proposition names used in the property texts *)
let called_prop operation = String.lowercase_ascii (op_name operation) ^ "_called"

let return_prop operation code =
  Printf.sprintf "%s_ret_%s"
    (String.lowercase_ascii (op_name operation))
    (String.lowercase_ascii (return_name code))

(* "G (read_called -> F[b] (read_ret_eee_ok | ...))" *)
let property_text ?bound operation =
  let bound_text =
    match bound with None -> "" | Some b -> Printf.sprintf "[%d]" b
  in
  let returns =
    expected_returns operation
    |> List.map (return_prop operation)
    |> String.concat " | "
  in
  Printf.sprintf "G (%s -> F%s (%s))" (called_prop operation) bound_text
    returns

let property_name operation = "resp_" ^ String.lowercase_ascii (op_name operation)
