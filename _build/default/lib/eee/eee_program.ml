(* Parsed and checked form of the case-study software, memoized. *)

let checked = lazy (Minic.Typecheck.check (Minic.C_parser.parse (Eee_source.default ())))

let info () = Lazy.force checked
let program () = Minic.Typecheck.program (info ())

let compiled = lazy (Mcc.Codegen.compile (info ()))
let compile () = Lazy.force compiled

let derived = lazy (Esw.C2sc.derive (info ()))
let derive () = Lazy.force derived

let line_count () =
  Eee_source.default () |> String.split_on_char '\n'
  |> List.filter (fun line -> String.trim line <> "")
  |> List.length

let function_count () = List.length (program ()).Minic.Ast.funcs

(* closed nondet-driven variant for the formal baselines *)
let analysis_checked =
  lazy (Minic.Typecheck.check (Minic.C_parser.parse (Eee_source.analysis_harness ())))

let analysis_info () = Lazy.force analysis_checked

(* the fname-instrumented derivation of the closed variant *)
let analysis_derived = lazy (Esw.C2sc.derive (analysis_info ()))
let analysis_derive () = Lazy.force analysis_derived
