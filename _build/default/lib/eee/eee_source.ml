(* The EEPROM-emulation embedded software, in MiniC.

   This is the reproduction of the paper's industrial case study: an
   EEPROM emulation over data flash, split into the Data Flash Access
   layer (DFALib) — the driver for the flash controller hardware — and the
   EEPROM Emulation layer (EEELib) offering format / prepare / read /
   write / refresh / startup1 / startup2 to the application (paper Fig. 6).
   The software is state-driven: initialization states, an active/alternate
   block pair, a RAM record index, and a background-erase state shared by
   all operations (the paper's shared ready/abort/error/finish states map
   to EEE_OK/EEE_BUSY/EEE_ERR_* plus the pending-erase mechanism).

   Storage layout: two pool blocks; word 0 of a pool block holds a header
   magic, the rest is a log of (id, value) record pairs; an erased cell
   reads -1. Reads go through direct memory access into the flash window
   (the accesses approach 2 redirects into the virtual memory model);
   program/erase go through the controller registers. *)

let source ?(driver = `Mailbox) ~flash_ctrl_base ~flash_window_base
    ~mailbox_base () =
  Printf.sprintf
    {|
/* ===================================================================== */
/* EEPROM emulation over data flash: DFALib + EEELib                     */
/* ===================================================================== */

const int FLASH_CTRL = %d;
const int FLASH_WIN = %d;
const int MAILBOX = %d;

const int BLOCK_WORDS = 128;
const int POOL_BLOCKS = 2;
const int MAX_ID = 16;
const int HEADER_MAGIC = 23294;

/* EEELib return codes (the specification's operation results) */
const int EEE_OK = 0;
const int EEE_BUSY = 1;
const int EEE_ERR_INIT = 2;
const int EEE_ERR_ACCESS = 3;
const int EEE_ERR_NO_INSTANCE = 4;
const int EEE_ERR_POOL_FULL = 5;
const int EEE_ERR_PARAMETER = 6;
const int EEE_ERR_NOT_FORMATTED = 7;

/* DFALib status codes */
const int DFA_OK = 0;
const int DFA_FAULT = 2;
const int DFA_TIMEOUT = 3;
const int DFA_WAIT_LIMIT = 5000;

/* mailbox operation codes */
const int OP_READ = 1;
const int OP_WRITE = 2;
const int OP_STARTUP1 = 3;
const int OP_STARTUP2 = 4;
const int OP_FORMAT = 5;
const int OP_PREPARE = 6;
const int OP_REFRESH = 7;

/* ------------------------- state --------------------------------- */

int flag;                /* checker handshake: set once initialized   */
int fname;               /* function tracking (instrumented)          */

int eee_init;            /* 0 = none, 1 = startup1 done, 2 = ready    */
int eee_active;          /* current pool block                        */
int eee_next_free;       /* next free word offset in the active block */
int eee_pending_erase;   /* block erasing in background, -1 = none    */
int eee_index[MAX_ID];   /* latest record offset per id, -1 = none    */
int eee_read_value;      /* result of the last successful read        */
int eee_done_op;         /* last completed operation                  */
int eee_done_ret;        /* its return code                           */
int eee_served;          /* completed operation count                 */

/* ========================= DFALib ================================= */

int dfa_status(void) {
  return *(FLASH_CTRL + 3);
}

int dfa_result(void) {
  return *(FLASH_CTRL + 4);
}

void dfa_clear_fault(void) {
  *(FLASH_CTRL + 0) = 3;
}

int dfa_read(int addr) {
  return *(FLASH_WIN + addr);
}

int dfa_busy(void) {
  if (dfa_status() == 1) { return 1; }
  return 0;
}

/* poll the controller until it leaves the busy state */
int dfa_wait_ready(void) {
  int waited = 0;
  while (dfa_status() == 1) {
    waited = waited + 1;
    if (waited > DFA_WAIT_LIMIT) { return DFA_TIMEOUT; }
  }
  if (dfa_status() == 2) { return DFA_FAULT; }
  return DFA_OK;
}

int dfa_program(int addr, int value) {
  *(FLASH_CTRL + 1) = addr;
  *(FLASH_CTRL + 2) = value;
  *(FLASH_CTRL + 0) = 1;
  if (dfa_result() != 0) { return DFA_FAULT; }
  int waited = dfa_wait_ready();
  if (waited != DFA_OK) {
    dfa_clear_fault();
    return DFA_FAULT;
  }
  return DFA_OK;
}

/* begin a block erase without waiting for completion */
int dfa_erase_start(int block) {
  *(FLASH_CTRL + 1) = block;
  *(FLASH_CTRL + 0) = 2;
  if (dfa_result() != 0) { return DFA_FAULT; }
  return DFA_OK;
}

int dfa_erase(int block) {
  int started = dfa_erase_start(block);
  if (started != DFA_OK) { return started; }
  int waited = dfa_wait_ready();
  if (waited != DFA_OK) {
    dfa_clear_fault();
    return DFA_FAULT;
  }
  return DFA_OK;
}

int dfa_blank_check(int block) {
  *(FLASH_CTRL + 1) = block;
  return *(FLASH_CTRL + 5);
}

/* ========================= EEELib ================================= */

int eee_alternate(void) {
  if (eee_active == 0) { return 1; }
  return 0;
}

int eee_block_base(int block) {
  return block * BLOCK_WORDS;
}

void eee_clear_index(void) {
  int i;
  for (i = 0; i < MAX_ID; i++) { eee_index[i] = -1; }
}

/* shared entry state machine: a background erase started by prepare,
   refresh or format keeps the library busy until the hardware is done */
int eee_handle_pending(void) {
  if (eee_pending_erase >= 0) {
    if (dfa_status() == 1) { return EEE_BUSY; }
    if (dfa_status() == 2) {
      dfa_clear_fault();
      eee_pending_erase = -1;
      return EEE_ERR_ACCESS;
    }
    eee_pending_erase = -1;
  }
  return EEE_OK;
}

/* rebuild the RAM index from the active block's record log */
int eee_scan_active(void) {
  int off = 1;
  eee_clear_index();
  while (off + 1 < BLOCK_WORDS) {
    int id = dfa_read(eee_block_base(eee_active) + off);
    if (id == -1) { break; }
    if (id >= 0 && id < MAX_ID) { eee_index[id] = off; }
    off = off + 2;
  }
  eee_next_free = off;
  return EEE_OK;
}

int eee_startup1(void) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  int block;
  for (block = 0; block < POOL_BLOCKS; block++) {
    if (dfa_read(eee_block_base(block)) == HEADER_MAGIC) {
      eee_active = block;
      eee_init = 1;
      return EEE_OK;
    }
  }
  eee_init = 0;
  return EEE_ERR_NOT_FORMATTED;
}

int eee_startup2(void) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  if (eee_init < 1) { return EEE_ERR_INIT; }
  eee_scan_active();
  eee_init = 2;
  return EEE_OK;
}

int eee_format(void) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  int block;
  for (block = 0; block < POOL_BLOCKS; block++) {
    if (dfa_blank_check(block) != 1) {
      int erased = dfa_erase(block);
      if (erased != DFA_OK) {
        eee_init = 0;
        return EEE_ERR_ACCESS;
      }
    }
  }
  if (dfa_program(eee_block_base(0), HEADER_MAGIC) != DFA_OK) {
    eee_init = 0;
    return EEE_ERR_ACCESS;
  }
  eee_active = 0;
  eee_next_free = 1;
  eee_clear_index();
  eee_init = 2;
  return EEE_OK;
}

int eee_prepare(void) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  if (eee_init < 1) { return EEE_ERR_INIT; }
  int alt = eee_alternate();
  if (dfa_blank_check(alt) == 1) { return EEE_OK; }
  if (dfa_erase_start(alt) != DFA_OK) {
    dfa_clear_fault();
    return EEE_ERR_ACCESS;
  }
  eee_pending_erase = alt;
  return EEE_OK;
}

int eee_read_op(int id) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  if (eee_init < 2) { return EEE_ERR_INIT; }
  if (id < 0 || id >= MAX_ID) { return EEE_ERR_PARAMETER; }
  if (eee_index[id] < 0) { return EEE_ERR_NO_INSTANCE; }
  eee_read_value = dfa_read(eee_block_base(eee_active) + eee_index[id] + 1);
  return EEE_OK;
}

int eee_write_op(int id, int value) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  if (eee_init < 2) { return EEE_ERR_INIT; }
  if (id < 0 || id >= MAX_ID) { return EEE_ERR_PARAMETER; }
  if (eee_next_free + 1 >= BLOCK_WORDS) { return EEE_ERR_POOL_FULL; }
  int base = eee_block_base(eee_active);
  if (dfa_program(base + eee_next_free, id) != DFA_OK) {
    return EEE_ERR_ACCESS;
  }
  if (dfa_program(base + eee_next_free + 1, value) != DFA_OK) {
    return EEE_ERR_ACCESS;
  }
  eee_index[id] = eee_next_free;
  eee_next_free = eee_next_free + 2;
  return EEE_OK;
}

int eee_refresh(void) {
  int pending = eee_handle_pending();
  if (pending != EEE_OK) { return pending; }
  if (eee_init < 2) { return EEE_ERR_INIT; }
  int alt = eee_alternate();
  if (dfa_blank_check(alt) != 1) {
    if (dfa_erase(alt) != DFA_OK) { return EEE_ERR_ACCESS; }
  }
  if (dfa_program(eee_block_base(alt), HEADER_MAGIC) != DFA_OK) {
    return EEE_ERR_ACCESS;
  }
  int dst = 1;
  int id;
  for (id = 0; id < MAX_ID; id++) {
    if (eee_index[id] >= 0) {
      int value = dfa_read(eee_block_base(eee_active) + eee_index[id] + 1);
      if (dfa_program(eee_block_base(alt) + dst, id) != DFA_OK) {
        return EEE_ERR_ACCESS;
      }
      if (dfa_program(eee_block_base(alt) + dst + 1, value) != DFA_OK) {
        return EEE_ERR_ACCESS;
      }
      dst = dst + 2;
    }
  }
  int old = eee_active;
  eee_active = alt;
  eee_scan_active();
  if (dfa_erase_start(old) != DFA_OK) {
    dfa_clear_fault();
    return EEE_ERR_ACCESS;
  }
  eee_pending_erase = old;
  return EEE_OK;
}

/* =================== application service loop ===================== */

int eee_dispatch(int op, int arg0, int arg1) {
  int ret;
  switch (op) {
  case 1:
    ret = eee_read_op(arg0);
    break;
  case 2:
    ret = eee_write_op(arg0, arg1);
    break;
  case 3:
    ret = eee_startup1();
    break;
  case 4:
    ret = eee_startup2();
    break;
  case 5:
    ret = eee_format();
    break;
  case 6:
    ret = eee_prepare();
    break;
  case 7:
    ret = eee_refresh();
    break;
  default:
    ret = EEE_ERR_PARAMETER;
    break;
  }
  eee_done_op = op;
  eee_done_ret = ret;
  eee_served = eee_served + 1;
  return ret;
}

void eee_service(void) {
  int op = *(MAILBOX + 1);
  int arg0 = *(MAILBOX + 2);
  int arg1 = *(MAILBOX + 3);
  *(MAILBOX + 0) = 0;
  *(MAILBOX + 5) = eee_dispatch(op, arg0, arg1);
  *(MAILBOX + 4) = 1;
}

void eee_init_state(void) {
  eee_pending_erase = -1;
  eee_clear_index();
  eee_done_op = 0;
  eee_done_ret = -1;
}

%s
|}
    flash_ctrl_base flash_window_base mailbox_base
    (match driver with
    | `Mailbox ->
      {|void main(void) {
  eee_init_state();
  flag = 1;
  while (true) {
    if (*(MAILBOX + 0) == 1) { eee_service(); }
  }
}|}
    | `Nondet ->
      (* closed harness for the formal tools: operations and arguments are
         nondeterministic inputs, as in the paper's constrained CBMC runs *)
      {|void main(void) {
  eee_init_state();
  flag = 1;
  while (true) {
    int op = nondet(1, 7);
    int a0 = nondet(0 - 2, 17);
    int a1 = nondet(0, 1000000);
    eee_dispatch(op, a0, a1);
  }
}|})

let default () =
  source ~flash_ctrl_base:Cpu.Memory_map.flash_ctrl_base
    ~flash_window_base:Cpu.Memory_map.flash_window_base
    ~mailbox_base:Cpu.Memory_map.mailbox_base ()

(* the closed variant analysed by the formal baselines (Fig. 7) *)
let analysis_harness () =
  source ~driver:`Nondet ~flash_ctrl_base:Cpu.Memory_map.flash_ctrl_base
    ~flash_window_base:Cpu.Memory_map.flash_window_base
    ~mailbox_base:Cpu.Memory_map.mailbox_base ()
