lib/eee/harness.mli: Dataflash Verif
