lib/eee/harness.mli: Dataflash Driver
