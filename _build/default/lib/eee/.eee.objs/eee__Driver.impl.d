lib/eee/driver.ml: Eee_spec Format List Platform Proposition Sctc Stimuli Unix Verdict
