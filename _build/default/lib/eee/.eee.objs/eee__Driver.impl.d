lib/eee/driver.ml: Eee_spec List Option Platform Proposition Sctc Stimuli Verif
