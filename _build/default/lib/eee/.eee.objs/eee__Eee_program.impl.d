lib/eee/eee_program.ml: Eee_source Esw Lazy List Mcc Minic String
