lib/eee/driver.mli: Eee_spec Sctc Verif
