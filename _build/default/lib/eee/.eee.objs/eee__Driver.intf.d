lib/eee/driver.mli: Eee_spec Format Platform Proposition Sctc Verdict
