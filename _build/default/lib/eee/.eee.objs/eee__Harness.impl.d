lib/eee/harness.ml: Dataflash Eee_program Verif
