lib/eee/harness.ml: Cpu Dataflash Driver Eee_program Esw Platform Sctc Sim Stimuli
