lib/eee/eee_spec.ml: List Printf String
