lib/eee/eee_source.ml: Cpu Printf
