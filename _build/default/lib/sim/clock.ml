type t = {
  c_name : string;
  c_period : int;
  posedge_event : Kernel.event;
  negedge_event : Kernel.event;
  mutable cycle_count : int;
}

let create kernel ~name ~period ?(phase = 0) () =
  if period < 2 then invalid_arg "Clock.create: period must be >= 2";
  let clock =
    {
      c_name = name;
      c_period = period;
      posedge_event = Kernel.event kernel (name ^ ".posedge");
      negedge_event = Kernel.event kernel (name ^ ".negedge");
      cycle_count = 0;
    }
  in
  let body () =
    if phase > 0 then Kernel.wait_for kernel phase;
    let rec tick () =
      clock.cycle_count <- clock.cycle_count + 1;
      Kernel.notify clock.posedge_event;
      Kernel.wait_for kernel (period / 2);
      Kernel.notify clock.negedge_event;
      Kernel.wait_for kernel (period - (period / 2));
      tick ()
    in
    tick ()
  in
  ignore (Kernel.spawn kernel ~name body);
  clock

let posedge clock = clock.posedge_event
let negedge clock = clock.negedge_event
let cycles clock = clock.cycle_count
let wait_posedge clock = Kernel.wait_event clock.posedge_event
let period clock = clock.c_period
