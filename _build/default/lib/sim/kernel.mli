(** Discrete-event simulation kernel with SystemC-like semantics.

    The kernel reproduces the OSCI SystemC scheduler that the paper's SCTC
    runs on: an evaluation phase running all runnable processes, an update
    phase committing signal values, delta-cycle notification, and timed
    advance. Processes are cooperative threads implemented with OCaml 5
    effect handlers; [wait_event]/[wait_for] suspend the calling process
    exactly like SystemC's [wait]. *)

type t
(** A simulation kernel instance. Kernels are independent; a process spawned
    on one kernel must only wait on events of the same kernel. *)

type event
(** A notification channel ([sc_event] analog). *)

type process
(** Handle of a spawned process. *)

(** Why a suspended process was woken up. *)
type wake_reason =
  | Woken_by of event  (** one of the awaited events was notified *)
  | Timeout  (** the [timeout] of {!wait_any} elapsed first *)

exception Deadlock of string
(** Raised by {!run} when [~expect_activity:true] and the simulation ends
    with processes still suspended and no pending notification. *)

val create : unit -> t

val now : t -> int
(** Current simulation time (abstract time units). *)

val delta_count : t -> int
(** Number of delta cycles executed so far (diagnostic / bench metric). *)

val event : t -> string -> event

val event_name : event -> string

val spawn : t -> name:string -> (unit -> unit) -> process
(** [spawn kernel ~name body] registers a thread process. It starts running
    at the beginning of the next {!run} evaluation phase. [body] may call the
    wait functions below; when [body] returns, the process terminates. *)

val process_name : process -> string

val is_finished : process -> bool

(** {2 Waiting — must be called from inside a process body} *)

val wait_event : event -> unit
(** Suspend until the event is notified. *)

val wait_any : ?timeout:int -> event list -> wake_reason
(** Suspend until one of the events fires, or until [timeout] time units
    elapse (when given). An empty event list requires a timeout. *)

val wait_for : t -> int -> unit
(** Suspend for [n > 0] time units; [wait_for k 0] waits one delta cycle. *)

val wait_delta : t -> unit
(** Suspend until the next delta cycle. *)

(** {2 Notification} *)

val notify : event -> unit
(** Delta notification: waiters wake in the next delta cycle. *)

val notify_immediate : event -> unit
(** Immediate notification: waiters join the current evaluation phase. *)

val notify_in : event -> int -> unit
(** Timed notification after [n] time units; [n <= 0] behaves like
    {!notify}. *)

(** {2 Update phase} *)

val schedule_update : t -> (unit -> unit) -> unit
(** Register an action for the update phase of the current delta cycle
    (used by {!Signal} to commit values). *)

(** {2 Running} *)

val stop : t -> unit
(** Request the simulation to stop at the end of the current delta cycle.
    Callable from inside a process. *)

val run : ?max_time:int -> ?max_deltas:int -> ?expect_activity:bool -> t -> unit
(** Run until no activity remains, [stop] is called, simulation time would
    exceed [max_time], or [max_deltas] delta cycles have executed. [run] may
    be called again afterwards to resume. *)

val stopped : t -> bool

val pending_activity : t -> bool
(** True when runnable processes or pending notifications remain. *)
