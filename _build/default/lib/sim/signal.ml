type 'a t = {
  s_name : string;
  kernel : Kernel.t;
  eq : 'a -> 'a -> bool;
  mutable current : 'a;
  mutable next : 'a;
  mutable update_pending : bool;
  changed_event : Kernel.event;
}

let create kernel ~name ?(eq = ( = )) init =
  {
    s_name = name;
    kernel;
    eq;
    current = init;
    next = init;
    update_pending = false;
    changed_event = Kernel.event kernel (name ^ ".changed");
  }

let name signal = signal.s_name
let read signal = signal.current
let changed signal = signal.changed_event

let write signal value =
  signal.next <- value;
  if not signal.update_pending then begin
    signal.update_pending <- true;
    let commit () =
      signal.update_pending <- false;
      if not (signal.eq signal.current signal.next) then begin
        signal.current <- signal.next;
        Kernel.notify signal.changed_event
      end
    in
    Kernel.schedule_update signal.kernel commit
  end

let wait_change signal = Kernel.wait_event signal.changed_event
