(* Discrete-event scheduler with SystemC-like delta-cycle semantics.

   Processes are one-shot coroutines built on OCaml 5 effect handlers: a
   process body performs the [Wait] effect, the handler captures the
   continuation and parks it on the awaited events; notification moves the
   continuation back into the runnable queue.  The run loop alternates
   SystemC's phases: evaluate -> update -> delta notification -> timed
   advance. *)

type wake_reason = Woken_by of event | Timeout

and event = {
  ev_name : string;
  ev_kernel : t;
  mutable waiters : waiter list;
}

(* A waiter may be armed on several events (wait_any) plus a timeout; the
   [armed] flag guarantees a single wake-up. *)
and waiter = {
  w_process : process;
  mutable armed : bool;
  mutable reason : wake_reason option;
}

and pstate =
  | Not_started of (unit -> unit)
  | Suspended of (wake_reason, unit) Effect.Deep.continuation
  | Running
  | Finished

and process = {
  p_name : string;
  p_id : int;
  mutable p_state : pstate;
}

and t = {
  mutable time : int;
  mutable deltas : int;
  mutable next_pid : int;
  runnable : (process * wake_reason) Queue.t;
  mutable delta_pending : event list; (* delta notifications, reversed *)
  timed : waiter_or_event Heap.t; (* timed notifications and timeouts *)
  mutable updates : (unit -> unit) list;
  mutable stop_requested : bool;
  mutable processes : process list;
}

and waiter_or_event = Timed_event of event | Timed_waiter of waiter

exception Deadlock of string

let create () =
  {
    time = 0;
    deltas = 0;
    next_pid = 0;
    runnable = Queue.create ();
    delta_pending = [];
    timed = Heap.create ();
    updates = [];
    stop_requested = false;
    processes = [];
  }

let now kernel = kernel.time
let delta_count kernel = kernel.deltas

let event kernel name = { ev_name = name; ev_kernel = kernel; waiters = [] }
let event_name ev = ev.ev_name

let spawn kernel ~name body =
  let proc =
    { p_name = name; p_id = kernel.next_pid; p_state = Not_started body }
  in
  kernel.next_pid <- kernel.next_pid + 1;
  kernel.processes <- proc :: kernel.processes;
  Queue.add (proc, Timeout) kernel.runnable;
  proc

let process_name proc = proc.p_name
let is_finished proc = proc.p_state = Finished

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)

type wait_spec = { on_events : event list; after : int option; wk : t }

type _ Effect.t += Wait : wait_spec -> wake_reason Effect.t

let fire_waiter kernel waiter reason =
  if waiter.armed then begin
    waiter.armed <- false;
    waiter.reason <- Some reason;
    Queue.add (waiter.w_process, reason) kernel.runnable
  end

let wake_event_waiters ev =
  let kernel = ev.ev_kernel in
  let ws = ev.waiters in
  ev.waiters <- [];
  List.iter (fun w -> fire_waiter kernel w (Woken_by ev)) (List.rev ws)

let notify_immediate ev = wake_event_waiters ev

let notify ev =
  let kernel = ev.ev_kernel in
  kernel.delta_pending <- ev :: kernel.delta_pending

let notify_in ev n =
  if n <= 0 then notify ev
  else Heap.push ev.ev_kernel.timed (ev.ev_kernel.time + n) (Timed_event ev)

let schedule_update kernel action = kernel.updates <- action :: kernel.updates

(* ------------------------------------------------------------------ *)
(* Waiting primitives (called from inside process bodies)              *)

let wait_any ?timeout events =
  let kernel =
    match events, timeout with
    | ev :: _, _ -> ev.ev_kernel
    | [], Some _ ->
      invalid_arg "Kernel.wait_any: pure timeout needs wait_for"
    | [], None -> invalid_arg "Kernel.wait_any: no event and no timeout"
  in
  Effect.perform (Wait { on_events = events; after = timeout; wk = kernel })

let wait_event ev =
  match
    Effect.perform
      (Wait { on_events = [ ev ]; after = None; wk = ev.ev_kernel })
  with
  | Woken_by _ -> ()
  | Timeout -> assert false

let wait_for kernel n =
  if n < 0 then invalid_arg "Kernel.wait_for: negative delay";
  ignore (Effect.perform (Wait { on_events = []; after = Some n; wk = kernel }))

let wait_delta kernel = wait_for kernel 0

let stop kernel = kernel.stop_requested <- true
let stopped kernel = kernel.stop_requested

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let register_wait kernel proc spec cont =
  proc.p_state <- Suspended cont;
  let waiter = { w_process = proc; armed = true; reason = None } in
  List.iter (fun ev -> ev.waiters <- waiter :: ev.waiters) spec.on_events;
  match spec.after with
  | None -> ()
  | Some 0 ->
    (* A zero timeout means "next delta cycle": model it as a delta
       notification of a private event. *)
    let ev = event kernel "<delta>" in
    ev.waiters <- [ waiter ];
    notify ev
  | Some n -> Heap.push kernel.timed (kernel.time + n) (Timed_waiter waiter)

let run_process kernel proc reason =
  match proc.p_state with
  | Not_started body ->
    proc.p_state <- Running;
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> proc.p_state <- Finished);
        exnc = (fun exn -> proc.p_state <- Finished; raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait spec ->
              Some
                (fun (cont : (a, unit) Effect.Deep.continuation) ->
                  register_wait kernel proc spec cont)
            | _ -> None);
      }
  | Suspended cont ->
    proc.p_state <- Running;
    Effect.Deep.continue cont reason
  | Running -> invalid_arg "Kernel: process resumed while running"
  | Finished -> ()

let pending_activity kernel =
  (not (Queue.is_empty kernel.runnable))
  || kernel.delta_pending <> []
  || not (Heap.is_empty kernel.timed)
  || kernel.updates <> []

(* Timed entries for already-woken waiters are dropped lazily when popped. *)
let fire_timed kernel entry =
  match entry with
  | Timed_event ev -> wake_event_waiters ev
  | Timed_waiter w -> fire_waiter kernel w Timeout

let run ?(max_time = max_int) ?(max_deltas = max_int) ?(expect_activity = false)
    kernel =
  kernel.stop_requested <- false;
  let budget_exhausted = ref false in
  let rec cycle () =
    (* Evaluation phase. *)
    while not (Queue.is_empty kernel.runnable) do
      let proc, reason = Queue.pop kernel.runnable in
      run_process kernel proc reason
    done;
    (* Update phase. *)
    let updates = List.rev kernel.updates in
    kernel.updates <- [];
    List.iter (fun action -> action ()) updates;
    if kernel.stop_requested then ()
    else begin
      (* Delta notification phase. *)
      let pending = List.rev kernel.delta_pending in
      kernel.delta_pending <- [];
      List.iter wake_event_waiters pending;
      if not (Queue.is_empty kernel.runnable) then begin
        kernel.deltas <- kernel.deltas + 1;
        if kernel.deltas >= max_deltas then budget_exhausted := true
        else cycle ()
      end
      else begin
        (* Timed advance; first discard timeout entries whose waiter was
           already woken by an event, so stale timeouts never advance time. *)
        let rec purge () =
          match Heap.peek kernel.timed with
          | Some (_, Timed_waiter w) when not w.armed ->
            ignore (Heap.pop kernel.timed);
            purge ()
          | Some _ | None -> ()
        in
        purge ();
        match Heap.min_key kernel.timed with
        | None -> ()
        | Some t when t > max_time -> budget_exhausted := true
        | Some t ->
          kernel.time <- t;
          let rec drain () =
            match Heap.min_key kernel.timed with
            | Some t' when t' = t ->
              let _, entry = Heap.pop kernel.timed in
              fire_timed kernel entry;
              drain ()
            | Some _ | None -> ()
          in
          drain ();
          cycle ()
      end
    end
  in
  cycle ();
  if
    expect_activity && (not !budget_exhausted)
    && (not kernel.stop_requested)
    && List.exists
         (fun p ->
           match p.p_state with
           | Suspended _ | Not_started _ -> true
           | Running | Finished -> false)
         kernel.processes
  then
    raise
      (Deadlock
         (Fmt.str "simulation ended at t=%d with suspended processes: %a"
            kernel.time
            Fmt.(list ~sep:comma string)
            (List.filter_map
               (fun p ->
                 match p.p_state with
                 | Suspended _ | Not_started _ -> Some p.p_name
                 | Running | Finished -> None)
               kernel.processes)))
