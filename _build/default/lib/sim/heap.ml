type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty heap = heap.size = 0

let length heap = heap.size

(* Entry ordering: by key, then by insertion sequence for stability. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow heap entry =
  let capacity = Array.length heap.data in
  if heap.size = capacity then begin
    let fresh = Array.make (max 16 (2 * capacity)) entry in
    Array.blit heap.data 0 fresh 0 heap.size;
    heap.data <- fresh
  end

let push heap key value =
  let entry = { key; seq = heap.next_seq; value } in
  heap.next_seq <- heap.next_seq + 1;
  grow heap entry;
  heap.data.(heap.size) <- entry;
  heap.size <- heap.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before heap.data.(i) heap.data.(parent) then begin
        let tmp = heap.data.(i) in
        heap.data.(i) <- heap.data.(parent);
        heap.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (heap.size - 1)

let min_key heap = if heap.size = 0 then None else Some heap.data.(0).key

let peek heap =
  if heap.size = 0 then None
  else Some (heap.data.(0).key, heap.data.(0).value)

let pop heap =
  if heap.size = 0 then raise Not_found;
  let top = heap.data.(0) in
  heap.size <- heap.size - 1;
  if heap.size > 0 then begin
    heap.data.(0) <- heap.data.(heap.size);
    (* sift down *)
    let rec down i =
      let left = (2 * i) + 1 and right = (2 * i) + 2 in
      let smallest = ref i in
      if left < heap.size && before heap.data.(left) heap.data.(!smallest) then
        smallest := left;
      if right < heap.size && before heap.data.(right) heap.data.(!smallest)
      then smallest := right;
      if !smallest <> i then begin
        let tmp = heap.data.(i) in
        heap.data.(i) <- heap.data.(!smallest);
        heap.data.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0
  end;
  (top.key, top.value)

let clear heap =
  heap.data <- [||];
  heap.size <- 0
