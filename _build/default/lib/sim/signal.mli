(** Signals with SystemC [sc_signal] update semantics: writes are committed
    in the update phase of the current delta cycle, and a value change
    notifies the signal's [changed] event as a delta notification. *)

type 'a t

(** [create kernel ~name ~eq init] makes a signal with initial value [init].
    [eq] decides whether a write constitutes a change (defaults to [(=)]). *)
val create : Kernel.t -> name:string -> ?eq:('a -> 'a -> bool) -> 'a -> 'a t

val name : 'a t -> string

val read : 'a t -> 'a
(** Current (committed) value. *)

val write : 'a t -> 'a -> unit
(** Schedule a new value for the update phase; last write in a delta wins. *)

val changed : 'a t -> Kernel.event
(** Event notified (delta) whenever the committed value changes. *)

val wait_change : 'a t -> unit
(** Suspend the calling process until the signal value changes. *)
