lib/sim/kernel.ml: Effect Fmt Heap List Queue
