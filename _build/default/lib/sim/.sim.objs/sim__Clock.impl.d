lib/sim/clock.ml: Kernel
