lib/sim/signal.mli: Kernel
