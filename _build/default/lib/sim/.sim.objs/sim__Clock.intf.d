lib/sim/clock.mli: Kernel
