lib/sim/kernel.mli:
