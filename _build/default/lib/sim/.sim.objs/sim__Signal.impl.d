lib/sim/signal.ml: Kernel
