lib/sim/heap.mli:
