(** Minimal binary min-heap keyed by integer priorities.

    Used by the simulation kernel to order timed notifications. Elements with
    equal keys are popped in insertion order (stable), which the kernel relies
    on so that two notifications scheduled for the same timestamp wake
    processes deterministically. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push heap key value] inserts [value] with priority [key]. *)
val push : 'a t -> int -> 'a -> unit

(** [min_key heap] is the smallest key, or [None] when empty. *)
val min_key : 'a t -> int option

(** [peek heap] is the entry with the smallest key without removing it. *)
val peek : 'a t -> (int * 'a) option

(** [pop heap] removes and returns the entry with the smallest key.
    @raise Not_found when the heap is empty. *)
val pop : 'a t -> int * 'a

val clear : 'a t -> unit
