(** Free-running clock generator. Approach 1 of the paper uses the
    microprocessor clock as the timing reference of the temporal checker;
    this module provides that clock as a kernel process that notifies
    [posedge] (and [negedge]) periodically and counts cycles. *)

type t

(** [create kernel ~name ~period ()] spawns the clock process. [period] is
    the full clock period in time units (posedge every [period], negedge at
    half period, requires [period >= 2]). The first posedge occurs at time
    [phase] (default 0, i.e. the first delta cycles of the simulation). *)
val create : Kernel.t -> name:string -> period:int -> ?phase:int -> unit -> t

val posedge : t -> Kernel.event
val negedge : t -> Kernel.event

val cycles : t -> int
(** Number of posedges emitted so far. *)

val wait_posedge : t -> unit
(** Suspend the calling process until the next rising edge. *)

val period : t -> int
