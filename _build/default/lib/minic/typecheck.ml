type error = { message : string; pos : Ast.position }

exception Type_error of error

let fail pos fmt =
  Printf.ksprintf (fun message -> raise (Type_error { message; pos })) fmt

type info = {
  tc_program : Ast.program;
  tc_func_ids : (string * int) list;
  tc_globals : (string * Ast.typ) list; (* non-const, declaration order *)
  tc_consts : (string * int) list;
}

let program info = info.tc_program
let func_id info name = List.assoc name info.tc_func_ids

let func_name_of_id info id =
  List.find_map
    (fun (name, fid) -> if fid = id then Some name else None)
    info.tc_func_ids

let func_ids info = info.tc_func_ids
let global_type info name = List.assoc_opt name info.tc_globals
let globals info = info.tc_globals
let constants info = info.tc_consts
let const_value info name = List.assoc_opt name info.tc_consts

(* ------------------------------------------------------------------ *)

type value_type = Vint | Vbool


(* int and bool coerce freely, per C practice *)
let scalar_of_typ pos = function
  | Ast.Tint -> Vint
  | Ast.Tbool -> Vbool
  | Ast.Tvoid -> fail pos "void is not a value type"
  | Ast.Tarray _ -> fail pos "array used as a scalar"

type env = {
  info_globals : (string, Ast.global) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable scopes : (string, value_type) Hashtbl.t list; (* innermost first *)
  current : Ast.func;
  mutable loop_depth : int;
  mutable switch_depth : int;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let declare_local env pos name vtype =
  match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then
      fail pos "redeclaration of %s in the same scope" name;
    Hashtbl.replace scope name vtype
  | [] -> assert false

let lookup_local env name =
  List.find_map (fun scope -> Hashtbl.find_opt scope name) env.scopes

(* ------------------------------------------------------------------ *)

let rec check_expr env (e : Ast.expr) : value_type =
  let pos = e.epos in
  match e.edesc with
  | Ast.Int_lit _ -> Vint
  | Ast.Bool_lit _ -> Vbool
  | Ast.Var name -> (
    match lookup_local env name with
    | Some vtype -> vtype
    | None -> (
      match Hashtbl.find_opt env.info_globals name with
      | Some { g_type = Ast.Tarray _; _ } ->
        fail pos "array %s used without an index" name
      | Some g -> scalar_of_typ pos g.g_type
      | None -> fail pos "unknown variable %s" name))
  | Ast.Index (name, index) -> (
    ignore (expect_int env index);
    match lookup_local env name with
    | Some _ -> fail pos "%s is a scalar, not an array" name
    | None -> (
      match Hashtbl.find_opt env.info_globals name with
      | Some { g_type = Ast.Tarray _; _ } -> Vint
      | Some _ -> fail pos "%s is a scalar, not an array" name
      | None -> fail pos "unknown array %s" name))
  | Ast.Unop (Ast.Neg, inner) | Ast.Unop (Ast.Bitnot, inner) ->
    ignore (expect_int env inner);
    Vint
  | Ast.Unop (Ast.Lognot, inner) ->
    ignore (check_expr env inner);
    Vbool
  | Ast.Binop (op, a, b) -> (
    match op with
    | Ast.Land | Ast.Lor ->
      ignore (check_expr env a);
      ignore (check_expr env b);
      Vbool
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      ignore (check_expr env a);
      ignore (check_expr env b);
      Vbool
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
    | Ast.Bxor | Ast.Shl | Ast.Shr ->
      ignore (expect_int env a);
      ignore (expect_int env b);
      Vint)
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> fail pos "call to unknown function %s" name
    | Some func ->
      if List.length args <> List.length func.f_params then
        fail pos "%s expects %d argument(s), got %d" name
          (List.length func.f_params) (List.length args);
      List.iter (fun arg -> ignore (check_expr env arg)) args;
      (match func.f_ret with
      | Ast.Tvoid -> fail pos "void function %s used as a value" name
      | other -> scalar_of_typ pos other))
  | Ast.Nondet (lo, hi) ->
    ignore (expect_int env lo);
    ignore (expect_int env hi);
    Vint
  | Ast.Mem_read addr ->
    ignore (expect_int env addr);
    Vint

and expect_int env (e : Ast.expr) =
  match check_expr env e with
  | Vint -> Vint
  | Vbool -> Vint (* bool coerces to int, C-style *)

let check_lvalue env pos = function
  | Ast.Lvar name -> (
    match lookup_local env name with
    | Some vtype -> vtype
    | None -> (
      match Hashtbl.find_opt env.info_globals name with
      | Some { g_const = true; _ } -> fail pos "assignment to constant %s" name
      | Some { g_type = Ast.Tarray _; _ } ->
        fail pos "cannot assign to whole array %s" name
      | Some g -> scalar_of_typ pos g.g_type
      | None -> fail pos "unknown variable %s" name))
  | Ast.Lindex (name, index) -> (
    ignore (expect_int env index);
    match Hashtbl.find_opt env.info_globals name with
    | Some { g_type = Ast.Tarray _; _ } -> Vint
    | Some _ | None -> fail pos "%s is not an array" name)
  | Ast.Lmem addr ->
    ignore (expect_int env addr);
    Vint

let rec check_stmt env (s : Ast.stmt) =
  let pos = s.spos in
  match s.sdesc with
  | Ast.Block body ->
    push_scope env;
    List.iter (check_stmt env) body;
    pop_scope env
  | Ast.Decl (name, typ, init) ->
    let vtype = scalar_of_typ pos typ in
    Option.iter (fun e -> ignore (check_expr env e)) init;
    declare_local env pos name vtype
  | Ast.Expr e -> (
    match e.edesc with
    | Ast.Call (name, _) ->
      (* void calls are fine in statement position *)
      (match Hashtbl.find_opt env.funcs name with
      | None -> fail e.epos "call to unknown function %s" name
      | Some func ->
        let args =
          match e.edesc with Ast.Call (_, args) -> args | _ -> []
        in
        if List.length args <> List.length func.f_params then
          fail e.epos "%s expects %d argument(s), got %d" name
            (List.length func.f_params) (List.length args);
        List.iter (fun arg -> ignore (check_expr env arg)) args)
    | _ -> ignore (check_expr env e))
  | Ast.Assign (lhs, e) ->
    ignore (check_lvalue env pos lhs);
    ignore (check_expr env e)
  | Ast.If (cond, then_s, else_s) ->
    ignore (check_expr env cond);
    check_stmt env then_s;
    Option.iter (check_stmt env) else_s
  | Ast.While (cond, body) ->
    ignore (check_expr env cond);
    env.loop_depth <- env.loop_depth + 1;
    check_stmt env body;
    env.loop_depth <- env.loop_depth - 1
  | Ast.Do_while (body, cond) ->
    env.loop_depth <- env.loop_depth + 1;
    check_stmt env body;
    env.loop_depth <- env.loop_depth - 1;
    ignore (check_expr env cond)
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    Option.iter (check_stmt env) init;
    Option.iter (fun e -> ignore (check_expr env e)) cond;
    Option.iter (check_stmt env) step;
    env.loop_depth <- env.loop_depth + 1;
    check_stmt env body;
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env
  | Ast.Switch (scrutinee, cases) ->
    ignore (expect_int env scrutinee);
    let seen = Hashtbl.create 8 in
    let defaults = ref 0 in
    List.iter
      (fun case ->
        List.iter
          (function
            | Ast.Case value ->
              if Hashtbl.mem seen value then
                fail pos "duplicate case label %d" value;
              Hashtbl.replace seen value ()
            | Ast.Default ->
              incr defaults;
              if !defaults > 1 then fail pos "duplicate default label")
          case.Ast.labels)
      cases;
    env.switch_depth <- env.switch_depth + 1;
    push_scope env;
    List.iter
      (fun case -> List.iter (check_stmt env) case.Ast.body)
      cases;
    pop_scope env;
    env.switch_depth <- env.switch_depth - 1
  | Ast.Break ->
    if env.loop_depth = 0 && env.switch_depth = 0 then
      fail pos "break outside loop or switch"
  | Ast.Continue -> if env.loop_depth = 0 then fail pos "continue outside loop"
  | Ast.Return value -> (
    match env.current.f_ret, value with
    | Ast.Tvoid, Some _ -> fail pos "void function returns a value"
    | Ast.Tvoid, None -> ()
    | _, None -> fail pos "non-void function returns no value"
    | _, Some e -> ignore (check_expr env e))
  | Ast.Assert e | Ast.Assume e -> ignore (check_expr env e)
  | Ast.Halt -> ()

(* global initializers must be state-free *)
let rec check_init_expr globals (e : Ast.expr) =
  match e.edesc with
  | Ast.Int_lit _ | Ast.Bool_lit _ -> ()
  | Ast.Var name ->
    if not (Hashtbl.mem globals name) then
      fail e.epos "unknown variable %s in initializer" name
  | Ast.Unop (_, inner) -> check_init_expr globals inner
  | Ast.Binop (_, a, b) ->
    check_init_expr globals a;
    check_init_expr globals b
  | Ast.Call _ | Ast.Nondet _ | Ast.Mem_read _ | Ast.Index _ ->
    fail e.epos "global initializer must be a constant expression"

let check (prog : Ast.program) =
  let info_globals : (string, Ast.global) Hashtbl.t = Hashtbl.create 64 in
  let funcs : (string, Ast.func) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem info_globals g.g_name then
        fail g.g_pos "duplicate global %s" g.g_name;
      check_init_expr info_globals
        (match g.g_init with
        | Some e -> e
        | None -> Ast.int_lit 0);
      Hashtbl.replace info_globals g.g_name g)
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.f_name then
        fail f.f_pos "duplicate function %s" f.f_name;
      if Hashtbl.mem info_globals f.f_name then
        fail f.f_pos "%s is already a global variable" f.f_name;
      Hashtbl.replace funcs f.f_name f)
    prog.funcs;
  List.iter
    (fun (f : Ast.func) ->
      let env =
        {
          info_globals;
          funcs;
          scopes = [];
          current = f;
          loop_depth = 0;
          switch_depth = 0;
        }
      in
      push_scope env;
      let seen_params = Hashtbl.create 8 in
      List.iter
        (fun (name, typ) ->
          if Hashtbl.mem seen_params name then
            fail f.f_pos "duplicate parameter %s in %s" name f.f_name;
          Hashtbl.replace seen_params name ();
          declare_local env f.f_pos name (scalar_of_typ f.f_pos typ))
        f.f_params;
      List.iter (check_stmt env) f.f_body)
    prog.funcs;
  let tc_func_ids = List.mapi (fun i f -> (f.Ast.f_name, i + 1)) prog.funcs in
  let tc_globals =
    List.filter_map
      (fun (g : Ast.global) ->
        if g.g_const then None else Some (g.g_name, g.g_type))
      prog.globals
  in
  let tc_consts =
    List.filter_map
      (fun (g : Ast.global) ->
        if not g.g_const then None
        else
          match g.g_init with
          | Some { edesc = Ast.Int_lit v; _ } -> Some (g.g_name, v)
          | Some { edesc = Ast.Bool_lit b; _ } ->
            Some (g.g_name, Value.of_bool b)
          | _ -> None)
      prog.globals
  in
  { tc_program = prog; tc_func_ids; tc_globals; tc_consts }

let check_result prog =
  match check prog with
  | info -> Ok info
  | exception Type_error { message; pos } ->
    Error (Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.column message)
