type outcome = Finished of int option | Halted | Fuel_exhausted

exception Assertion_failed of Ast.position
exception Assumption_failed of Ast.position
exception Runtime_error of string * Ast.position
exception Out_of_fuel

(* control-flow signals *)
exception Break_signal
exception Continue_signal
exception Return_signal of int option
exception Halt_signal

type hooks = {
  mem_read : int -> int;
  mem_write : int -> int -> unit;
  nondet : lo:int -> hi:int -> int;
  on_statement : Ast.stmt -> unit;
  on_function_entry : string -> unit;
}

let default_hooks () =
  let memory : (int, int) Hashtbl.t = Hashtbl.create 64 in
  {
    mem_read =
      (fun addr ->
        match Hashtbl.find_opt memory addr with Some v -> v | None -> 0);
    mem_write = (fun addr value -> Hashtbl.replace memory addr value);
    nondet = (fun ~lo ~hi:_ -> lo);
    on_statement = (fun _ -> ());
    on_function_entry = (fun _ -> ());
  }

type cell = Scalar of int ref | Array of int array

type env = {
  info : Typecheck.info;
  globals : (string, cell) Hashtbl.t;
  consts : (string, int) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable stmt_count : int;
  mutable current_fuel : int ref;
}

(* local frames: stack of scopes, each a name -> ref table *)
type frame = (string, int ref) Hashtbl.t list

let fail pos fmt = Printf.ksprintf (fun m -> raise (Runtime_error (m, pos))) fmt

let lookup_local (frame : frame) name =
  List.find_map (fun scope -> Hashtbl.find_opt scope name) frame

let rec eval env hooks frame (e : Ast.expr) : int =
  let pos = e.Ast.epos in
  match e.Ast.edesc with
  | Ast.Int_lit n -> n
  | Ast.Bool_lit b -> Value.of_bool b
  | Ast.Var name -> (
    match lookup_local frame name with
    | Some cell -> !cell
    | None -> (
      match Hashtbl.find_opt env.consts name with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt env.globals name with
        | Some (Scalar cell) -> !cell
        | Some (Array _) -> fail pos "array %s used as scalar" name
        | None -> fail pos "unknown variable %s" name)))
  | Ast.Index (name, index_expr) ->
    let index = eval env hooks frame index_expr in
    (match Hashtbl.find_opt env.globals name with
    | Some (Array data) ->
      if index < 0 || index >= Array.length data then
        fail pos "index %d out of bounds for %s[%d]" index name
          (Array.length data)
      else data.(index)
    | Some (Scalar _) | None -> fail pos "%s is not an array" name)
  | Ast.Unop (op, inner_expr) -> (
    let inner = eval env hooks frame inner_expr in
    match op with
    | Ast.Neg -> Value.neg inner
    | Ast.Bitnot -> Value.lognot inner
    | Ast.Lognot -> Value.of_bool (not (Value.to_bool inner)))
  | Ast.Binop (Ast.Land, a, b) ->
    (* short circuit *)
    if Value.to_bool (eval env hooks frame a) then
      Value.of_bool (Value.to_bool (eval env hooks frame b))
    else 0
  | Ast.Binop (Ast.Lor, a, b) ->
    if Value.to_bool (eval env hooks frame a) then 1
    else Value.of_bool (Value.to_bool (eval env hooks frame b))
  | Ast.Binop (op, a_expr, b_expr) -> (
    let a = eval env hooks frame a_expr in
    let b = eval env hooks frame b_expr in
    try
      match op with
      | Ast.Add -> Value.add a b
      | Ast.Sub -> Value.sub a b
      | Ast.Mul -> Value.mul a b
      | Ast.Div -> Value.div a b
      | Ast.Mod -> Value.rem a b
      | Ast.Band -> Value.logand a b
      | Ast.Bor -> Value.logor a b
      | Ast.Bxor -> Value.logxor a b
      | Ast.Shl -> Value.shift_left a b
      | Ast.Shr -> Value.shift_right a b
      | Ast.Lt -> Value.of_bool (a < b)
      | Ast.Le -> Value.of_bool (a <= b)
      | Ast.Gt -> Value.of_bool (a > b)
      | Ast.Ge -> Value.of_bool (a >= b)
      | Ast.Eq -> Value.of_bool (a = b)
      | Ast.Ne -> Value.of_bool (a <> b)
      | Ast.Land | Ast.Lor -> assert false
    with Value.Division_by_zero -> fail pos "division by zero")
  | Ast.Call (name, arg_exprs) -> (
    let args = List.map (eval env hooks frame) arg_exprs in
    match call_function env hooks name args with
    | Some value -> value
    | None -> fail pos "void function %s used as value" name)
  | Ast.Nondet (lo_expr, hi_expr) ->
    let lo = eval env hooks frame lo_expr in
    let hi = eval env hooks frame hi_expr in
    if lo > hi then fail pos "nondet with empty range [%d, %d]" lo hi
    else hooks.nondet ~lo ~hi
  | Ast.Mem_read addr_expr ->
    hooks.mem_read (eval env hooks frame addr_expr)

and assign env hooks frame pos lhs value =
  match lhs with
  | Ast.Lvar name -> (
    match lookup_local frame name with
    | Some cell -> cell := value
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some (Scalar cell) -> cell := value
      | Some (Array _) -> fail pos "cannot assign whole array %s" name
      | None -> fail pos "unknown variable %s" name))
  | Ast.Lindex (name, index_expr) -> (
    let index = eval env hooks frame index_expr in
    match Hashtbl.find_opt env.globals name with
    | Some (Array data) ->
      if index < 0 || index >= Array.length data then
        fail pos "index %d out of bounds for %s[%d]" index name
          (Array.length data)
      else data.(index) <- value
    | Some (Scalar _) | None -> fail pos "%s is not an array" name)
  | Ast.Lmem addr_expr ->
    hooks.mem_write (eval env hooks frame addr_expr) value

and exec env hooks frame fuel (s : Ast.stmt) =
  if !fuel <= 0 then raise Out_of_fuel;
  decr fuel;
  env.stmt_count <- env.stmt_count + 1;
  hooks.on_statement s;
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Block body ->
    let scope = Hashtbl.create 8 in
    exec_list env hooks (scope :: frame) fuel body
  | Ast.Decl (name, _typ, init) -> (
    let value =
      match init with Some e -> eval env hooks frame e | None -> 0
    in
    match frame with
    | scope :: _ -> Hashtbl.replace scope name (ref value)
    | [] -> fail pos "declaration outside any scope")
  | Ast.Expr e -> (
    match e.Ast.edesc with
    | Ast.Call (name, arg_exprs) ->
      let args = List.map (eval env hooks frame) arg_exprs in
      ignore (call_function env hooks name args)
    | _ -> ignore (eval env hooks frame e))
  | Ast.Assign (lhs, value_expr) ->
    let value = eval env hooks frame value_expr in
    assign env hooks frame pos lhs value
  | Ast.If (cond, then_s, else_s) ->
    if Value.to_bool (eval env hooks frame cond) then
      exec env hooks frame fuel then_s
    else Option.iter (exec env hooks frame fuel) else_s
  | Ast.While (cond, body) ->
    let rec loop () =
      if Value.to_bool (eval env hooks frame cond) then begin
        (try exec env hooks frame fuel body
         with Continue_signal -> ());
        loop ()
      end
    in
    (try loop () with Break_signal -> ())
  | Ast.Do_while (body, cond) ->
    let rec loop () =
      (try exec env hooks frame fuel body with Continue_signal -> ());
      if Value.to_bool (eval env hooks frame cond) then loop ()
    in
    (try loop () with Break_signal -> ())
  | Ast.For (init, cond, step, body) ->
    let scope = Hashtbl.create 4 in
    let frame = scope :: frame in
    Option.iter (exec env hooks frame fuel) init;
    let check () =
      match cond with
      | None -> true
      | Some e -> Value.to_bool (eval env hooks frame e)
    in
    let rec loop () =
      if check () then begin
        (try exec env hooks frame fuel body with Continue_signal -> ());
        Option.iter (exec env hooks frame fuel) step;
        loop ()
      end
    in
    (try loop () with Break_signal -> ())
  | Ast.Switch (scrutinee, cases) ->
    let value = eval env hooks frame scrutinee in
    let matches case =
      List.exists
        (function Ast.Case v -> v = value | Ast.Default -> false)
        case.Ast.labels
    in
    let has_default case = List.mem Ast.Default case.Ast.labels in
    let rec find pred = function
      | [] -> None
      | case :: rest when pred case -> Some (case :: rest)
      | _ :: rest -> find pred rest
    in
    let entry =
      match find matches cases with
      | Some tail -> Some tail
      | None -> find has_default cases
    in
    (match entry with
    | Some tail -> run_cases env hooks frame fuel tail
    | None -> ())
  | Ast.Break -> raise Break_signal
  | Ast.Continue -> raise Continue_signal
  | Ast.Return value_expr ->
    raise
      (Return_signal (Option.map (eval env hooks frame) value_expr))
  | Ast.Assert e ->
    if not (Value.to_bool (eval env hooks frame e)) then
      raise (Assertion_failed pos)
  | Ast.Assume e ->
    if not (Value.to_bool (eval env hooks frame e)) then
      raise (Assumption_failed pos)
  | Ast.Halt -> raise Halt_signal

and run_cases env hooks frame fuel tail =
  (* fall-through execution until Break or end of switch *)
  let scope = Hashtbl.create 4 in
  let frame = scope :: frame in
  try
    List.iter
      (fun case -> exec_list env hooks frame fuel case.Ast.body)
      tail
  with Break_signal -> ()

and exec_list env hooks frame fuel body =
  List.iter (exec env hooks frame fuel) body

and call_function env hooks name args =
  match Hashtbl.find_opt env.funcs name with
  | None -> raise (Runtime_error ("unknown function " ^ name, Ast.dummy_pos))
  | Some func ->
    let scope = Hashtbl.create 8 in
    List.iter2
      (fun (param, _typ) value -> Hashtbl.replace scope param (ref value))
      func.Ast.f_params args;
    hooks.on_function_entry name;
    let fuel = env.current_fuel in
    (try
       exec_list env hooks [ scope ] fuel func.Ast.f_body;
       (* fell off the end *)
       match func.Ast.f_ret with Ast.Tvoid -> None | _ -> Some 0
     with Return_signal value -> (
       match func.Ast.f_ret, value with
       | Ast.Tvoid, _ -> None
       | _, Some v -> Some v
       | _, None -> Some 0))

let create info =
  let prog = Typecheck.program info in
  let globals : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  let consts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let funcs : (string, Ast.func) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace funcs f.Ast.f_name f) prog.Ast.funcs;
  let env =
    { info; globals; consts; funcs; stmt_count = 0; current_fuel = ref 0 }
  in
  (* initializers may reference previously initialized globals *)
  let hooks = default_hooks () in
  List.iter
    (fun (g : Ast.global) ->
      let init_value =
        match g.Ast.g_init with
        | None -> 0
        | Some e -> eval env hooks [] e
      in
      if g.Ast.g_const then Hashtbl.replace consts g.Ast.g_name init_value
      else
        match g.Ast.g_type with
        | Ast.Tarray size ->
          Hashtbl.replace globals g.Ast.g_name (Array (Array.make size 0))
        | Ast.Tint | Ast.Tbool | Ast.Tvoid ->
          Hashtbl.replace globals g.Ast.g_name (Scalar (ref init_value)))
    prog.Ast.globals;
  env

let read_global env name =
  match Hashtbl.find_opt env.globals name with
  | Some (Scalar cell) -> !cell
  | Some (Array _) -> invalid_arg ("Interp.read_global: array " ^ name)
  | None -> (
    match Hashtbl.find_opt env.consts name with
    | Some v -> v
    | None -> invalid_arg ("Interp.read_global: unknown " ^ name))

let write_global env name value =
  match Hashtbl.find_opt env.globals name with
  | Some (Scalar cell) -> cell := value
  | Some (Array _) | None ->
    invalid_arg ("Interp.write_global: not a scalar global: " ^ name)

let read_element env name index =
  match Hashtbl.find_opt env.globals name with
  | Some (Array data) ->
    if index < 0 || index >= Array.length data then
      raise
        (Runtime_error
           (Printf.sprintf "index %d out of bounds for %s" index name,
            Ast.dummy_pos))
    else data.(index)
  | Some (Scalar _) | None ->
    invalid_arg ("Interp.read_element: not an array: " ^ name)

let globals_snapshot env =
  Hashtbl.fold
    (fun name cell acc ->
      match cell with Scalar v -> (name, !v) :: acc | Array _ -> acc)
    env.globals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let statements_executed env = env.stmt_count

let call env hooks ~fuel name args =
  env.current_fuel <- fuel;
  call_function env hooks name args

let run ?(fuel = 10_000_000) env hooks ~entry =
  (match Hashtbl.find_opt env.funcs entry with
  | None -> invalid_arg ("Interp.run: no function " ^ entry)
  | Some f ->
    if f.Ast.f_params <> [] then
      invalid_arg ("Interp.run: entry function takes parameters: " ^ entry));
  let fuel_ref = ref fuel in
  match call env hooks ~fuel:fuel_ref entry [] with
  | value -> Finished value
  | exception Halt_signal -> Halted
  | exception Out_of_fuel -> Fuel_exhausted
