(** 32-bit two's-complement arithmetic, matching the target CPU.

    MiniC integers behave like C [int32_t] on the modelled processor:
    wrap-around on overflow, truncation toward zero for division, shift
    amounts masked to 0..31. Values are stored as OCaml [int] in the
    canonical signed range [-2^31, 2^31-1]. *)

exception Division_by_zero

val wrap : int -> int
(** Reduce any OCaml int to the canonical signed 32-bit range. *)

val to_unsigned : int -> int
(** Canonical value reinterpreted as unsigned (0 .. 2^32-1). *)

val of_unsigned : int -> int
(** Inverse of {!to_unsigned}. *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

val div : int -> int -> int
(** C semantics: truncation toward zero. @raise Division_by_zero. *)

val rem : int -> int -> int
(** Sign follows the dividend. @raise Division_by_zero. *)

val neg : int -> int
val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognot : int -> int

val shift_left : int -> int -> int
(** Shift amount masked to 0..31. *)

val shift_right : int -> int -> int
(** Arithmetic (sign-extending) right shift, amount masked to 0..31. *)

val shift_right_logical : int -> int -> int

val of_bool : bool -> int
val to_bool : int -> bool
(** C truthiness: non-zero is true. *)
