exception Division_by_zero

let mask = 0xFFFFFFFF
let sign_bit = 0x80000000

let wrap v =
  let low = v land mask in
  if low land sign_bit <> 0 then low - (mask + 1) else low

let to_unsigned v = v land mask
let of_unsigned v = wrap v

let add a b = wrap (a + b)
let sub a b = wrap (a - b)
let mul a b = wrap (a * b)

let div a b =
  if b = 0 then raise Division_by_zero
  else
    (* OCaml (/) already truncates toward zero, like C99. *)
    wrap (a / b)

let rem a b = if b = 0 then raise Division_by_zero else wrap (a mod b)
let neg a = wrap (-a)
let logand a b = wrap ((a land mask) land (b land mask))
let logor a b = wrap ((a land mask) lor (b land mask))
let logxor a b = wrap ((a land mask) lxor (b land mask))
let lognot a = wrap (lnot a)

let shift_left a amount = wrap ((a land mask) lsl (amount land 31))
let shift_right a amount = wrap (a asr (amount land 31))
let shift_right_logical a amount = wrap ((a land mask) lsr (amount land 31))

let of_bool b = if b then 1 else 0
let to_bool v = v <> 0
