(** Lexer for MiniC source text. Supports decimal and [0x...] hexadecimal
    literals, C comments, and the operator/punctuation set of the subset. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | KW_INT
  | KW_BOOL
  | KW_VOID
  | KW_CONST
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | ASSIGN  (** [=] *)
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR  (** [*]: multiplication or dereference *)
  | SLASH
  | PERCENT
  | PLUS
  | MINUS
  | PLUSPLUS
  | MINUSMINUS
  | AMP
  | AMPAMP
  | BAR
  | BARBAR
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

type position = Ast.position

exception Lex_error of string * position

val token_to_string : token -> string
val tokenize : string -> (token * position) list
