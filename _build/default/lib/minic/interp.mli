(** Reference interpreter for MiniC.

    Executes a checked program directly on the AST. The interpreter is
    deliberately pluggable: memory accesses, external stimuli and per-event
    hooks are provided by the caller, because the same engine serves

    - reference semantics for the compiler's differential tests, and
    - the paper's approach 2: the derived software model executes through
      this engine inside a simulation process, with [on_statement]
      notifying the program-counter event and [mem_read]/[mem_write] going
      to the virtual memory model.

    Fuel limits bound execution of non-terminating control software. *)

type outcome =
  | Finished of int option  (** entry function returned (with value) *)
  | Halted  (** the program executed [halt()] *)
  | Fuel_exhausted

exception Assertion_failed of Ast.position
exception Assumption_failed of Ast.position
exception Runtime_error of string * Ast.position

exception Out_of_fuel
(** Raised by {!call} when the fuel budget runs out; {!run} converts it to
    the [Fuel_exhausted] outcome. *)

type hooks = {
  mem_read : int -> int;
  mem_write : int -> int -> unit;
  nondet : lo:int -> hi:int -> int;
  on_statement : Ast.stmt -> unit;  (** before each executed statement *)
  on_function_entry : string -> unit;  (** after parameters are bound *)
}

val default_hooks : unit -> hooks
(** Sparse hashtable memory, [nondet] returning [lo], no-op events. *)

type env

val create : Typecheck.info -> env
(** Allocates and initializes globals (initializers run in order). *)

val read_global : env -> string -> int
(** @raise Invalid_argument for unknown or array globals. *)

val write_global : env -> string -> int -> unit

val read_element : env -> string -> int -> int
(** Array element; @raise Runtime_error on out-of-bounds. *)

val globals_snapshot : env -> (string * int) list
(** Scalar globals with current values (for debugging and propositions). *)

val statements_executed : env -> int

val run : ?fuel:int -> env -> hooks -> entry:string -> outcome
(** Call the entry function (default fuel: 10 million statements).
    @raise Invalid_argument if [entry] does not exist or takes parameters.
    @raise Assertion_failed, Runtime_error as encountered. *)

val call : env -> hooks -> fuel:int ref -> string -> int list -> int option
(** Invoke one function with argument values (used by drivers to issue
    individual operations against a resident program state). Returns the
    return value, [None] for void. May raise {!Out_of_fuel},
    {!Assertion_failed}, {!Assumption_failed} or {!Runtime_error}. *)
