(** MiniC pretty-printer. Emits compilable MiniC source; [parse (print p)]
    yields a structurally identical program, which the test suite checks by
    print idempotence. Used by the instrumentation passes (Spec inlining,
    C2SystemC) to materialize transformed programs. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
