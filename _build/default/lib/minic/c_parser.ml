exception Parse_error of string * Ast.position

type stream = {
  mutable tokens : (C_lexer.token * Ast.position) list;
  consts : (string, int) Hashtbl.t;
}

let peek stream =
  match stream.tokens with
  | [] -> (C_lexer.EOF, Ast.dummy_pos)
  | tok :: _ -> tok

let peek2 stream =
  match stream.tokens with
  | _ :: tok :: _ -> tok
  | _ -> (C_lexer.EOF, Ast.dummy_pos)

let advance stream =
  match stream.tokens with [] -> () | _ :: rest -> stream.tokens <- rest

let fail pos msg = raise (Parse_error (msg, pos))

let expect stream token =
  let got, pos = peek stream in
  if got = token then advance stream
  else
    fail pos
      (Printf.sprintf "expected %s but found %s"
         (C_lexer.token_to_string token)
         (C_lexer.token_to_string got))

let expect_ident stream =
  match peek stream with
  | C_lexer.IDENT name, _ ->
    advance stream;
    name
  | got, pos ->
    fail pos ("expected identifier, found " ^ C_lexer.token_to_string got)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr_prec stream = parse_lor stream

and parse_lor stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.BARBAR, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Lor, acc, parse_land stream)))
    | _ -> acc
  in
  loop (parse_land stream)

and parse_land stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.AMPAMP, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Land, acc, parse_bor stream)))
    | _ -> acc
  in
  loop (parse_bor stream)

and parse_bor stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.BAR, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Bor, acc, parse_bxor stream)))
    | _ -> acc
  in
  loop (parse_bxor stream)

and parse_bxor stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.CARET, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Bxor, acc, parse_band stream)))
    | _ -> acc
  in
  loop (parse_band stream)

and parse_band stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.AMP, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Band, acc, parse_equality stream)))
    | _ -> acc
  in
  loop (parse_equality stream)

and parse_equality stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.EQ, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Eq, acc, parse_rel stream)))
    | C_lexer.NE, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Ne, acc, parse_rel stream)))
    | _ -> acc
  in
  loop (parse_rel stream)

and parse_rel stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.LT, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Lt, acc, parse_shift stream)))
    | C_lexer.LE, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Le, acc, parse_shift stream)))
    | C_lexer.GT, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Gt, acc, parse_shift stream)))
    | C_lexer.GE, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Ge, acc, parse_shift stream)))
    | _ -> acc
  in
  loop (parse_shift stream)

and parse_shift stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.SHL, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Shl, acc, parse_additive stream)))
    | C_lexer.SHR, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Shr, acc, parse_additive stream)))
    | _ -> acc
  in
  loop (parse_additive stream)

and parse_additive stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.PLUS, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Add, acc, parse_mult stream)))
    | C_lexer.MINUS, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Sub, acc, parse_mult stream)))
    | _ -> acc
  in
  loop (parse_mult stream)

and parse_mult stream =
  let rec loop acc =
    match peek stream with
    | C_lexer.STAR, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Mul, acc, parse_unary stream)))
    | C_lexer.SLASH, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Div, acc, parse_unary stream)))
    | C_lexer.PERCENT, pos ->
      advance stream;
      loop (Ast.expr ~pos (Ast.Binop (Ast.Mod, acc, parse_unary stream)))
    | _ -> acc
  in
  loop (parse_unary stream)

and parse_unary stream =
  match peek stream with
  | C_lexer.MINUS, pos ->
    advance stream;
    Ast.expr ~pos (Ast.Unop (Ast.Neg, parse_unary stream))
  | C_lexer.BANG, pos ->
    advance stream;
    Ast.expr ~pos (Ast.Unop (Ast.Lognot, parse_unary stream))
  | C_lexer.TILDE, pos ->
    advance stream;
    Ast.expr ~pos (Ast.Unop (Ast.Bitnot, parse_unary stream))
  | C_lexer.STAR, pos ->
    (* direct memory access *)
    advance stream;
    Ast.expr ~pos (Ast.Mem_read (parse_unary stream))
  | _ -> parse_primary stream

and parse_primary stream =
  match peek stream with
  | C_lexer.INT_LIT n, pos ->
    advance stream;
    Ast.expr ~pos (Ast.Int_lit n)
  | C_lexer.KW_TRUE, pos ->
    advance stream;
    Ast.expr ~pos (Ast.Bool_lit true)
  | C_lexer.KW_FALSE, pos ->
    advance stream;
    Ast.expr ~pos (Ast.Bool_lit false)
  | C_lexer.LPAREN, _ ->
    advance stream;
    let inner = parse_expr_prec stream in
    expect stream C_lexer.RPAREN;
    inner
  | C_lexer.IDENT name, pos -> (
    advance stream;
    match peek stream with
    | C_lexer.LPAREN, _ ->
      advance stream;
      let args = parse_args stream in
      expect stream C_lexer.RPAREN;
      (match name, args with
      | "nondet", [ lo; hi ] -> Ast.expr ~pos (Ast.Nondet (lo, hi))
      | "nondet", _ -> fail pos "nondet expects two arguments"
      | "mem_read", [ addr ] -> Ast.expr ~pos (Ast.Mem_read addr)
      | "mem_read", _ -> fail pos "mem_read expects one argument"
      | _ -> Ast.expr ~pos (Ast.Call (name, args)))
    | C_lexer.LBRACKET, _ ->
      advance stream;
      let index = parse_expr_prec stream in
      expect stream C_lexer.RBRACKET;
      Ast.expr ~pos (Ast.Index (name, index))
    | _ -> Ast.expr ~pos (Ast.Var name))
  | got, pos ->
    fail pos ("unexpected " ^ C_lexer.token_to_string got ^ " in expression")

and parse_args stream =
  match peek stream with
  | C_lexer.RPAREN, _ -> []
  | _ ->
    let first = parse_expr_prec stream in
    let rec loop acc =
      match peek stream with
      | C_lexer.COMMA, _ ->
        advance stream;
        loop (parse_expr_prec stream :: acc)
      | _ -> List.rev acc
    in
    loop [ first ]

(* ------------------------------------------------------------------ *)
(* Constant expressions (array sizes, case labels, const initializers) *)

let rec const_eval stream e =
  let open Ast in
  match e.edesc with
  | Int_lit n -> n
  | Bool_lit b -> Value.of_bool b
  | Var name -> (
    match Hashtbl.find_opt stream.consts name with
    | Some value -> value
    | None -> fail e.epos (name ^ " is not a compile-time constant"))
  | Unop (Neg, inner) -> Value.neg (const_eval stream inner)
  | Unop (Bitnot, inner) -> Value.lognot (const_eval stream inner)
  | Unop (Lognot, inner) ->
    Value.of_bool (not (Value.to_bool (const_eval stream inner)))
  | Binop (op, a, b) -> (
    let va = const_eval stream a and vb = const_eval stream b in
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb
    | Mod -> Value.rem va vb
    | Band -> Value.logand va vb
    | Bor -> Value.logor va vb
    | Bxor -> Value.logxor va vb
    | Shl -> Value.shift_left va vb
    | Shr -> Value.shift_right va vb
    | Lt -> Value.of_bool (va < vb)
    | Le -> Value.of_bool (va <= vb)
    | Gt -> Value.of_bool (va > vb)
    | Ge -> Value.of_bool (va >= vb)
    | Eq -> Value.of_bool (va = vb)
    | Ne -> Value.of_bool (va <> vb)
    | Land -> Value.of_bool (Value.to_bool va && Value.to_bool vb)
    | Lor -> Value.of_bool (Value.to_bool va || Value.to_bool vb))
  | Index _ | Call _ | Nondet _ | Mem_read _ ->
    fail e.epos "not a compile-time constant expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let lvalue_of_expr expr =
  match expr.Ast.edesc with
  | Ast.Var name -> Ast.Lvar name
  | Ast.Index (name, index) -> Ast.Lindex (name, index)
  | Ast.Mem_read addr -> Ast.Lmem addr
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Unop _ | Ast.Binop _ | Ast.Call _
  | Ast.Nondet _ ->
    fail expr.Ast.epos "not an assignable lvalue"

let expr_of_lvalue pos = function
  | Ast.Lvar name -> Ast.expr ~pos (Ast.Var name)
  | Ast.Lindex (name, index) -> Ast.expr ~pos (Ast.Index (name, index))
  | Ast.Lmem addr -> Ast.expr ~pos (Ast.Mem_read addr)

(* assignment / call without trailing ';' (also used in for-headers) *)
let parse_simple_stmt stream =
  let _, pos = peek stream in
  let expr = parse_expr_prec stream in
  match peek stream with
  | C_lexer.ASSIGN, _ ->
    advance stream;
    Ast.stmt ~pos (Ast.Assign (lvalue_of_expr expr, parse_expr_prec stream))
  | C_lexer.PLUS_ASSIGN, _ ->
    advance stream;
    let lhs = lvalue_of_expr expr in
    let rhs = parse_expr_prec stream in
    Ast.stmt ~pos
      (Ast.Assign
         (lhs, Ast.expr ~pos (Ast.Binop (Ast.Add, expr_of_lvalue pos lhs, rhs))))
  | C_lexer.MINUS_ASSIGN, _ ->
    advance stream;
    let lhs = lvalue_of_expr expr in
    let rhs = parse_expr_prec stream in
    Ast.stmt ~pos
      (Ast.Assign
         (lhs, Ast.expr ~pos (Ast.Binop (Ast.Sub, expr_of_lvalue pos lhs, rhs))))
  | C_lexer.PLUSPLUS, _ ->
    advance stream;
    let lhs = lvalue_of_expr expr in
    Ast.stmt ~pos
      (Ast.Assign
         ( lhs,
           Ast.expr ~pos
             (Ast.Binop (Ast.Add, expr_of_lvalue pos lhs, Ast.int_lit 1)) ))
  | C_lexer.MINUSMINUS, _ ->
    advance stream;
    let lhs = lvalue_of_expr expr in
    Ast.stmt ~pos
      (Ast.Assign
         ( lhs,
           Ast.expr ~pos
             (Ast.Binop (Ast.Sub, expr_of_lvalue pos lhs, Ast.int_lit 1)) ))
  | _ -> (
    (* plain expression statement: recognize statement intrinsics *)
    match expr.Ast.edesc with
    | Ast.Call ("assert", [ e ]) -> Ast.stmt ~pos (Ast.Assert e)
    | Ast.Call ("assume", [ e ]) -> Ast.stmt ~pos (Ast.Assume e)
    | Ast.Call ("halt", []) -> Ast.stmt ~pos Ast.Halt
    | Ast.Call ("mem_write", [ addr; value ]) ->
      Ast.stmt ~pos (Ast.Assign (Ast.Lmem addr, value))
    | Ast.Call ("mem_write", _) -> fail pos "mem_write expects two arguments"
    | Ast.Call _ -> Ast.stmt ~pos (Ast.Expr expr)
    | _ -> fail pos "expression statement must be a call")

let parse_base_type stream =
  match peek stream with
  | C_lexer.KW_INT, _ ->
    advance stream;
    Ast.Tint
  | C_lexer.KW_BOOL, _ ->
    advance stream;
    Ast.Tbool
  | got, pos -> fail pos ("expected type, found " ^ C_lexer.token_to_string got)

let rec parse_stmt stream =
  match peek stream with
  | C_lexer.LBRACE, pos ->
    advance stream;
    let body = parse_stmts stream in
    expect stream C_lexer.RBRACE;
    Ast.stmt ~pos (Ast.Block body)
  | C_lexer.KW_INT, pos | C_lexer.KW_BOOL, pos ->
    let typ = parse_base_type stream in
    let name = expect_ident stream in
    let init =
      match peek stream with
      | C_lexer.ASSIGN, _ ->
        advance stream;
        Some (parse_expr_prec stream)
      | _ -> None
    in
    expect stream C_lexer.SEMI;
    Ast.stmt ~pos (Ast.Decl (name, typ, init))
  | C_lexer.KW_IF, pos ->
    advance stream;
    expect stream C_lexer.LPAREN;
    let cond = parse_expr_prec stream in
    expect stream C_lexer.RPAREN;
    let then_s = parse_stmt stream in
    let else_s =
      match peek stream with
      | C_lexer.KW_ELSE, _ ->
        advance stream;
        Some (parse_stmt stream)
      | _ -> None
    in
    Ast.stmt ~pos (Ast.If (cond, then_s, else_s))
  | C_lexer.KW_WHILE, pos ->
    advance stream;
    expect stream C_lexer.LPAREN;
    let cond = parse_expr_prec stream in
    expect stream C_lexer.RPAREN;
    Ast.stmt ~pos (Ast.While (cond, parse_stmt stream))
  | C_lexer.KW_DO, pos ->
    advance stream;
    let body = parse_stmt stream in
    expect stream C_lexer.KW_WHILE;
    expect stream C_lexer.LPAREN;
    let cond = parse_expr_prec stream in
    expect stream C_lexer.RPAREN;
    expect stream C_lexer.SEMI;
    Ast.stmt ~pos (Ast.Do_while (body, cond))
  | C_lexer.KW_FOR, pos ->
    advance stream;
    expect stream C_lexer.LPAREN;
    let init =
      match peek stream with
      | C_lexer.SEMI, _ -> None
      | C_lexer.KW_INT, dpos | C_lexer.KW_BOOL, dpos ->
        (* C99-style declaration in the for header *)
        let typ = parse_base_type stream in
        let name = expect_ident stream in
        let value =
          match peek stream with
          | C_lexer.ASSIGN, _ ->
            advance stream;
            Some (parse_expr_prec stream)
          | _ -> None
        in
        Some (Ast.stmt ~pos:dpos (Ast.Decl (name, typ, value)))
      | _ -> Some (parse_simple_stmt stream)
    in
    expect stream C_lexer.SEMI;
    let cond =
      match peek stream with
      | C_lexer.SEMI, _ -> None
      | _ -> Some (parse_expr_prec stream)
    in
    expect stream C_lexer.SEMI;
    let step =
      match peek stream with
      | C_lexer.RPAREN, _ -> None
      | _ -> Some (parse_simple_stmt stream)
    in
    expect stream C_lexer.RPAREN;
    Ast.stmt ~pos (Ast.For (init, cond, step, parse_stmt stream))
  | C_lexer.KW_SWITCH, pos ->
    advance stream;
    expect stream C_lexer.LPAREN;
    let scrutinee = parse_expr_prec stream in
    expect stream C_lexer.RPAREN;
    expect stream C_lexer.LBRACE;
    let cases = parse_switch_cases stream in
    expect stream C_lexer.RBRACE;
    Ast.stmt ~pos (Ast.Switch (scrutinee, cases))
  | C_lexer.KW_BREAK, pos ->
    advance stream;
    expect stream C_lexer.SEMI;
    Ast.stmt ~pos Ast.Break
  | C_lexer.KW_CONTINUE, pos ->
    advance stream;
    expect stream C_lexer.SEMI;
    Ast.stmt ~pos Ast.Continue
  | C_lexer.KW_RETURN, pos ->
    advance stream;
    let value =
      match peek stream with
      | C_lexer.SEMI, _ -> None
      | _ -> Some (parse_expr_prec stream)
    in
    expect stream C_lexer.SEMI;
    Ast.stmt ~pos (Ast.Return value)
  | _ ->
    let s = parse_simple_stmt stream in
    expect stream C_lexer.SEMI;
    s

and parse_stmts stream =
  match peek stream with
  | C_lexer.RBRACE, _ | C_lexer.EOF, _ -> []
  | _ ->
    let s = parse_stmt stream in
    s :: parse_stmts stream

and parse_switch_cases stream =
  match peek stream with
  | C_lexer.RBRACE, _ -> []
  | C_lexer.KW_CASE, _ | C_lexer.KW_DEFAULT, _ ->
    let rec parse_labels acc =
      match peek stream with
      | C_lexer.KW_CASE, _ ->
        advance stream;
        let label_expr = parse_expr_prec stream in
        let value = const_eval stream label_expr in
        expect stream C_lexer.COLON;
        parse_labels (Ast.Case value :: acc)
      | C_lexer.KW_DEFAULT, _ ->
        advance stream;
        expect stream C_lexer.COLON;
        parse_labels (Ast.Default :: acc)
      | _ -> List.rev acc
    in
    let labels = parse_labels [] in
    let rec parse_body acc =
      match peek stream with
      | C_lexer.KW_CASE, _ | C_lexer.KW_DEFAULT, _ | C_lexer.RBRACE, _ ->
        List.rev acc
      | _ -> parse_body (parse_stmt stream :: acc)
    in
    let body = parse_body [] in
    { Ast.labels; body } :: parse_switch_cases stream
  | got, pos ->
    fail pos ("expected case/default, found " ^ C_lexer.token_to_string got)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let parse_params stream =
  match peek stream with
  | C_lexer.RPAREN, _ -> []
  | C_lexer.KW_VOID, _ when fst (peek2 stream) = C_lexer.RPAREN ->
    advance stream;
    []
  | _ ->
    let parse_param () =
      let typ = parse_base_type stream in
      let name = expect_ident stream in
      (name, typ)
    in
    let first = parse_param () in
    let rec loop acc =
      match peek stream with
      | C_lexer.COMMA, _ ->
        advance stream;
        loop (parse_param () :: acc)
      | _ -> List.rev acc
    in
    loop [ first ]

let rec parse_topdecls stream globals funcs =
  match peek stream with
  | C_lexer.EOF, _ -> (List.rev globals, List.rev funcs)
  | C_lexer.KW_CONST, pos ->
    advance stream;
    let typ = parse_base_type stream in
    let name = expect_ident stream in
    expect stream C_lexer.ASSIGN;
    let init_expr = parse_expr_prec stream in
    let value = const_eval stream init_expr in
    expect stream C_lexer.SEMI;
    Hashtbl.replace stream.consts name value;
    let global =
      {
        Ast.g_name = name;
        g_type = typ;
        g_const = true;
        g_init = Some (Ast.expr ~pos (Ast.Int_lit value));
        g_pos = pos;
      }
    in
    parse_topdecls stream (global :: globals) funcs
  | C_lexer.KW_INT, pos | C_lexer.KW_BOOL, pos | C_lexer.KW_VOID, pos -> (
    let ret =
      match peek stream with
      | C_lexer.KW_VOID, _ ->
        advance stream;
        Ast.Tvoid
      | _ -> parse_base_type stream
    in
    let name = expect_ident stream in
    match peek stream with
    | C_lexer.LPAREN, _ ->
      (* function definition *)
      advance stream;
      let params = parse_params stream in
      expect stream C_lexer.RPAREN;
      expect stream C_lexer.LBRACE;
      let body = parse_stmts stream in
      expect stream C_lexer.RBRACE;
      let func =
        { Ast.f_name = name; f_ret = ret; f_params = params; f_body = body;
          f_pos = pos }
      in
      parse_topdecls stream globals (func :: funcs)
    | C_lexer.LBRACKET, _ ->
      (* global array *)
      if ret = Ast.Tvoid then fail pos "void array is not a thing";
      advance stream;
      let size_expr = parse_expr_prec stream in
      let size = const_eval stream size_expr in
      if size <= 0 then fail pos "array size must be positive";
      expect stream C_lexer.RBRACKET;
      expect stream C_lexer.SEMI;
      let global =
        { Ast.g_name = name; g_type = Ast.Tarray size; g_const = false;
          g_init = None; g_pos = pos }
      in
      parse_topdecls stream (global :: globals) funcs
    | _ ->
      (* global scalar *)
      if ret = Ast.Tvoid then fail pos "void variable is not a thing";
      let init =
        match peek stream with
        | C_lexer.ASSIGN, _ ->
          advance stream;
          Some (parse_expr_prec stream)
        | _ -> None
      in
      expect stream C_lexer.SEMI;
      let global =
        { Ast.g_name = name; g_type = ret; g_const = false; g_init = init;
          g_pos = pos }
      in
      parse_topdecls stream (global :: globals) funcs)
  | got, pos ->
    fail pos ("expected declaration, found " ^ C_lexer.token_to_string got)

let parse text =
  let stream = { tokens = C_lexer.tokenize text; consts = Hashtbl.create 16 } in
  let globals, funcs = parse_topdecls stream [] [] in
  { Ast.globals; funcs }

let parse_result text =
  match parse text with
  | program -> Ok program
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.column msg)
  | exception C_lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.column msg)

let parse_expr text =
  let stream = { tokens = C_lexer.tokenize text; consts = Hashtbl.create 4 } in
  let expr = parse_expr_prec stream in
  (match peek stream with
  | C_lexer.EOF, _ -> ()
  | got, pos -> fail pos ("trailing input: " ^ C_lexer.token_to_string got));
  expr
