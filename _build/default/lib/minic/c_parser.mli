(** Recursive-descent parser for MiniC.

    Top level accepts, in any order:
    - [const int NAME = <const-expr>;] — compile-time constants, usable in
      array sizes and case labels;
    - global declarations [int x;], [bool f = true;], [int a[N];];
    - function definitions.

    Statement-position intrinsic calls are recognized and turned into their
    dedicated statement forms: [assert(e);], [assume(e);], [halt();] and
    [mem_write(a, v);]. The sugar [x++;], [x--;], [x += e;], [x -= e;] is
    desugared into plain assignments. *)

exception Parse_error of string * Ast.position

val parse : string -> Ast.program
(** @raise Parse_error and {!C_lexer.Lex_error} on malformed input. *)

val parse_result : string -> (Ast.program, string) result

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and property tooling). *)
