(* Abstract syntax of MiniC, the C subset the embedded software is written
   in.  The subset covers what the paper's case study needs: 32-bit signed
   integers and booleans, fixed-size global arrays, functions, the usual
   statement forms including switch with fall-through, direct memory access
   through unary '*' (the accesses the C2SystemC translator redirects to the
   virtual memory model), and three verification intrinsics parsed as calls:

     nondet(lo, hi)    - constrained external input (stimulus)
     mem_read(addr)    - same as *(addr)
     mem_write(a, v)   - same as *(a) = v

   plus statement intrinsics assert(e), assume(e) and halt(). *)

type position = { line : int; column : int }

let dummy_pos = { line = 0; column = 0 }

type typ =
  | Tint
  | Tbool
  | Tvoid
  | Tarray of int  (** array of int with static length *)

type unop =
  | Neg  (** arithmetic negation *)
  | Lognot  (** [!] *)
  | Bitnot  (** [~] *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** short-circuit [&&] *)
  | Lor  (** short-circuit [||] *)

type expr = { edesc : edesc; epos : position }

and edesc =
  | Int_lit of int
  | Bool_lit of bool
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Nondet of expr * expr  (** [nondet(lo, hi)], bounds inclusive *)
  | Mem_read of expr  (** [*(addr)] *)

type lvalue =
  | Lvar of string
  | Lindex of string * expr
  | Lmem of expr  (** [*(addr) = ...] *)

type case_label = Case of int | Default

type stmt = { sdesc : sdesc; spos : position }

and sdesc =
  | Block of stmt list
  | Decl of string * typ * expr option  (** local declaration *)
  | Expr of expr  (** expression statement (a call) *)
  | Assign of lvalue * expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of stmt option * expr option * stmt option * stmt
  | Switch of expr * switch_case list
  | Break
  | Continue
  | Return of expr option
  | Assert of expr
  | Assume of expr
  | Halt

and switch_case = { labels : case_label list; body : stmt list }
(** Cases execute with C fall-through semantics: control enters at the
    first matching label and continues into following cases until [Break]. *)

type global = {
  g_name : string;
  g_type : typ;
  g_const : bool;
  g_init : expr option;
  g_pos : position;
}

type func = {
  f_name : string;
  f_ret : typ;
  f_params : (string * typ) list;
  f_body : stmt list;
  f_pos : position;
}

type program = { globals : global list; funcs : func list }

(* Constructors used by program transformations. *)

let expr ?(pos = dummy_pos) edesc = { edesc; epos = pos }
let stmt ?(pos = dummy_pos) sdesc = { sdesc; spos = pos }
let int_lit n = expr (Int_lit n)
let var name = expr (Var name)

let rec iter_stmts_program f program =
  List.iter (fun func -> List.iter (iter_stmt f) func.f_body) program.funcs

and iter_stmt f s =
  f s;
  match s.sdesc with
  | Block body -> List.iter (iter_stmt f) body
  | If (_, then_s, else_s) ->
    iter_stmt f then_s;
    Option.iter (iter_stmt f) else_s
  | While (_, body) | Do_while (body, _) -> iter_stmt f body
  | For (init, _, step, body) ->
    Option.iter (iter_stmt f) init;
    Option.iter (iter_stmt f) step;
    iter_stmt f body
  | Switch (_, cases) ->
    List.iter (fun case -> List.iter (iter_stmt f) case.body) cases
  | Decl _ | Expr _ | Assign _ | Break | Continue | Return _ | Assert _
  | Assume _ | Halt ->
    ()

let find_func program name =
  List.find_opt (fun func -> String.equal func.f_name name) program.funcs

let find_global program name =
  List.find_opt (fun g -> String.equal g.g_name name) program.globals
