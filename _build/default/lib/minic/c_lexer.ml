type token =
  | IDENT of string
  | INT_LIT of int
  | KW_INT
  | KW_BOOL
  | KW_VOID
  | KW_CONST
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR
  | SLASH
  | PERCENT
  | PLUS
  | MINUS
  | PLUSPLUS
  | MINUSMINUS
  | AMP
  | AMPAMP
  | BAR
  | BARBAR
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

type position = Ast.position

exception Lex_error of string * position

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | KW_INT -> "'int'"
  | KW_BOOL -> "'bool'"
  | KW_VOID -> "'void'"
  | KW_CONST -> "'const'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_DO -> "'do'"
  | KW_FOR -> "'for'"
  | KW_SWITCH -> "'switch'"
  | KW_CASE -> "'case'"
  | KW_DEFAULT -> "'default'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_RETURN -> "'return'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | COLON -> "':'"
  | ASSIGN -> "'='"
  | PLUS_ASSIGN -> "'+='"
  | MINUS_ASSIGN -> "'-='"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | AMP -> "'&'"
  | AMPAMP -> "'&&'"
  | BAR -> "'|'"
  | BARBAR -> "'||'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | EOF -> "end of input"

let keyword_of_word = function
  | "int" -> Some KW_INT
  | "bool" -> Some KW_BOOL
  | "void" -> Some KW_VOID
  | "const" -> Some KW_CONST
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "return" -> Some KW_RETURN
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize text =
  let length = String.length text in
  let tokens = ref [] in
  let line = ref 1 and column = ref 1 in
  let index = ref 0 in
  let here () = { Ast.line = !line; column = !column } in
  let advance () =
    if !index < length then begin
      if text.[!index] = '\n' then begin
        incr line;
        column := 1
      end
      else incr column;
      incr index
    end
  in
  let peek offset =
    if !index + offset < length then Some text.[!index + offset] else None
  in
  let emit token pos = tokens := (token, pos) :: !tokens in
  (* two-character operator helper: if the next char matches, emit [two],
     otherwise [one] *)
  let pair next two one pos =
    advance ();
    if peek 0 = Some next then begin
      advance ();
      emit two pos
    end
    else emit one pos
  in
  while !index < length do
    let pos = here () in
    match text.[!index] with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '(' -> emit LPAREN pos; advance ()
    | ')' -> emit RPAREN pos; advance ()
    | '{' -> emit LBRACE pos; advance ()
    | '}' -> emit RBRACE pos; advance ()
    | '[' -> emit LBRACKET pos; advance ()
    | ']' -> emit RBRACKET pos; advance ()
    | ';' -> emit SEMI pos; advance ()
    | ',' -> emit COMMA pos; advance ()
    | ':' -> emit COLON pos; advance ()
    | '^' -> emit CARET pos; advance ()
    | '~' -> emit TILDE pos; advance ()
    | '%' -> emit PERCENT pos; advance ()
    | '*' -> emit STAR pos; advance ()
    | '+' ->
      advance ();
      (match peek 0 with
      | Some '+' -> advance (); emit PLUSPLUS pos
      | Some '=' -> advance (); emit PLUS_ASSIGN pos
      | Some _ | None -> emit PLUS pos)
    | '-' ->
      advance ();
      (match peek 0 with
      | Some '-' -> advance (); emit MINUSMINUS pos
      | Some '=' -> advance (); emit MINUS_ASSIGN pos
      | Some _ | None -> emit MINUS pos)
    | '&' -> pair '&' AMPAMP AMP pos
    | '|' -> pair '|' BARBAR BAR pos
    | '=' -> pair '=' EQ ASSIGN pos
    | '!' -> pair '=' NE BANG pos
    | '<' ->
      advance ();
      (match peek 0 with
      | Some '<' -> advance (); emit SHL pos
      | Some '=' -> advance (); emit LE pos
      | Some _ | None -> emit LT pos)
    | '>' ->
      advance ();
      (match peek 0 with
      | Some '>' -> advance (); emit SHR pos
      | Some '=' -> advance (); emit GE pos
      | Some _ | None -> emit GT pos)
    | '/' ->
      advance ();
      (match peek 0 with
      | Some '/' ->
        while !index < length && text.[!index] <> '\n' do
          advance ()
        done
      | Some '*' ->
        advance ();
        let rec skip () =
          if !index + 1 >= length then
            raise (Lex_error ("unterminated comment", pos))
          else if text.[!index] = '*' && text.[!index + 1] = '/' then begin
            advance ();
            advance ()
          end
          else begin
            advance ();
            skip ()
          end
        in
        skip ()
      | Some _ | None -> emit SLASH pos)
    | '0' when peek 1 = Some 'x' || peek 1 = Some 'X' ->
      advance ();
      advance ();
      let start = !index in
      while !index < length && is_hex_digit text.[!index] do
        advance ()
      done;
      if !index = start then raise (Lex_error ("empty hex literal", pos));
      let digits = String.sub text start (!index - start) in
      emit (INT_LIT (Value.wrap (int_of_string ("0x" ^ digits)))) pos
    | c when is_digit c ->
      let start = !index in
      while !index < length && is_digit text.[!index] do
        advance ()
      done;
      let digits = String.sub text start (!index - start) in
      emit (INT_LIT (Value.wrap (int_of_string digits))) pos
    | c when is_ident_start c ->
      let start = !index in
      while !index < length && is_ident_char text.[!index] do
        advance ()
      done;
      let word = String.sub text start (!index - start) in
      (match keyword_of_word word with
      | Some kw -> emit kw pos
      | None -> emit (IDENT word) pos)
    | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, pos))
  done;
  emit EOF (here ());
  List.rev !tokens
