lib/minic/interp.mli: Ast Typecheck
