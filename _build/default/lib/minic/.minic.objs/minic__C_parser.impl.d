lib/minic/c_parser.ml: Ast C_lexer Hashtbl List Printf Value
