lib/minic/c_parser.mli: Ast
