lib/minic/value.mli:
