lib/minic/c_lexer.mli: Ast
