lib/minic/pretty.mli: Ast Format
