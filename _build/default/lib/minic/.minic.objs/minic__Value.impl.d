lib/minic/value.ml:
