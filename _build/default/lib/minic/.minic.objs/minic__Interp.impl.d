lib/minic/interp.ml: Array Ast Hashtbl List Option Printf String Typecheck Value
