lib/minic/pretty.ml: Ast Format List String
