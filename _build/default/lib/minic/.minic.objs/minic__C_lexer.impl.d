lib/minic/c_lexer.ml: Ast List Printf String Value
