lib/minic/ast.ml: List Option String
