open Format

(* C precedence levels, higher binds tighter *)
let binop_level = function
  | Ast.Lor -> 1
  | Ast.Land -> 2
  | Ast.Bor -> 3
  | Ast.Bxor -> 4
  | Ast.Band -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let unary_level = 11

let binop_text = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Bxor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Land -> "&&"
  | Ast.Lor -> "||"

let rec pp_expr_prec level fmt (e : Ast.expr) =
  match e.edesc with
  | Ast.Int_lit n -> fprintf fmt "%d" n
  | Ast.Bool_lit b -> fprintf fmt "%b" b
  | Ast.Var name -> pp_print_string fmt name
  | Ast.Index (name, index) ->
    fprintf fmt "%s[%a]" name (pp_expr_prec 0) index
  | Ast.Unop (op, inner) ->
    let text =
      match op with Ast.Neg -> "-" | Ast.Lognot -> "!" | Ast.Bitnot -> "~"
    in
    let rendered = asprintf "%a" (pp_expr_prec unary_level) inner in
    (* avoid "--x" lexing as the decrement token *)
    if op = Ast.Neg && String.length rendered > 0 && rendered.[0] = '-' then
      fprintf fmt "%s(%s)" text rendered
    else fprintf fmt "%s%s" text rendered
  | Ast.Binop (op, a, b) ->
    let my_level = binop_level op in
    let body fmt =
      (* left associative: same level allowed on the left only *)
      fprintf fmt "%a %s %a" (pp_expr_prec my_level) a (binop_text op)
        (pp_expr_prec (my_level + 1)) b
    in
    if my_level < level then fprintf fmt "(%t)" body else body fmt
  | Ast.Call (name, args) ->
    fprintf fmt "%s(%a)" name
      (pp_print_list
         ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
         (pp_expr_prec 0))
      args
  | Ast.Nondet (lo, hi) ->
    fprintf fmt "nondet(%a, %a)" (pp_expr_prec 0) lo (pp_expr_prec 0) hi
  | Ast.Mem_read addr -> fprintf fmt "mem_read(%a)" (pp_expr_prec 0) addr

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_lvalue fmt = function
  | Ast.Lvar name -> pp_print_string fmt name
  | Ast.Lindex (name, index) -> fprintf fmt "%s[%a]" name pp_expr index
  | Ast.Lmem addr -> fprintf fmt "mem_write_target(%a)" pp_expr addr

let typ_text = function
  | Ast.Tint -> "int"
  | Ast.Tbool -> "bool"
  | Ast.Tvoid -> "void"
  | Ast.Tarray _ -> "int"

let rec pp_stmt fmt (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Block body ->
    fprintf fmt "@[<v 2>{@,%a@]@,}" pp_stmts body
  | Ast.Decl (name, typ, init) -> (
    match init with
    | None -> fprintf fmt "%s %s;" (typ_text typ) name
    | Some e -> fprintf fmt "%s %s = %a;" (typ_text typ) name pp_expr e)
  | Ast.Expr e -> fprintf fmt "%a;" pp_expr e
  | Ast.Assign (Ast.Lmem addr, value) ->
    fprintf fmt "mem_write(%a, %a);" pp_expr addr pp_expr value
  | Ast.Assign (lhs, value) ->
    fprintf fmt "%a = %a;" pp_lvalue lhs pp_expr value
  | Ast.If (cond, then_s, else_s) -> (
    fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr cond pp_boxed then_s;
    match else_s with
    | None -> ()
    | Some e -> fprintf fmt "@[<v 2> else {@,%a@]@,}" pp_boxed e)
  | Ast.While (cond, body) ->
    fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr cond pp_boxed body
  | Ast.Do_while (body, cond) ->
    fprintf fmt "@[<v 2>do {@,%a@]@,} while (%a);" pp_boxed body pp_expr cond
  | Ast.For (init, cond, step, body) ->
    let pp_opt_stmt fmt = function
      | None -> ()
      | Some s -> pp_header_stmt fmt s
    in
    let pp_opt_expr fmt = function
      | None -> ()
      | Some e -> pp_expr fmt e
    in
    fprintf fmt "@[<v 2>for (%a; %a; %a) {@,%a@]@,}" pp_opt_stmt init
      pp_opt_expr cond pp_opt_stmt step pp_boxed body
  | Ast.Switch (scrutinee, cases) ->
    fprintf fmt "@[<v 2>switch (%a) {@,%a@]@,}" pp_expr scrutinee
      (pp_print_list ~pp_sep:pp_print_cut pp_case)
      cases
  | Ast.Break -> pp_print_string fmt "break;"
  | Ast.Continue -> pp_print_string fmt "continue;"
  | Ast.Return None -> pp_print_string fmt "return;"
  | Ast.Return (Some e) -> fprintf fmt "return %a;" pp_expr e
  | Ast.Assert e -> fprintf fmt "assert(%a);" pp_expr e
  | Ast.Assume e -> fprintf fmt "assume(%a);" pp_expr e
  | Ast.Halt -> pp_print_string fmt "halt();"

(* statement used in a for-header: print without trailing ';' *)
and pp_header_stmt fmt (s : Ast.stmt) =
  let text = asprintf "%a" pp_stmt s in
  let trimmed =
    if String.length text > 0 && text.[String.length text - 1] = ';' then
      String.sub text 0 (String.length text - 1)
    else text
  in
  pp_print_string fmt trimmed

and pp_boxed fmt (s : Ast.stmt) =
  (* bodies of control statements print their statements directly *)
  match s.sdesc with
  | Ast.Block body -> pp_stmts fmt body
  | _ -> pp_stmt fmt s

and pp_stmts fmt body = pp_print_list ~pp_sep:pp_print_cut pp_stmt fmt body

and pp_case fmt (case : Ast.switch_case) =
  List.iter
    (fun label ->
      match label with
      | Ast.Case value -> fprintf fmt "case %d:@," value
      | Ast.Default -> fprintf fmt "default:@,")
    case.labels;
  fprintf fmt "@[<v 2>  %a@]" pp_stmts case.body

let pp_global fmt (g : Ast.global) =
  match g.g_type, g.g_const, g.g_init with
  | Ast.Tarray size, _, _ -> fprintf fmt "int %s[%d];" g.g_name size
  | typ, true, Some init ->
    fprintf fmt "const %s %s = %a;" (typ_text typ) g.g_name pp_expr init
  | typ, false, Some init ->
    fprintf fmt "%s %s = %a;" (typ_text typ) g.g_name pp_expr init
  | typ, _, None -> fprintf fmt "%s %s;" (typ_text typ) g.g_name

let pp_func fmt (f : Ast.func) =
  let pp_params fmt = function
    | [] -> pp_print_string fmt "void"
    | params ->
      pp_print_list
        ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
        (fun fmt (name, typ) -> fprintf fmt "%s %s" (typ_text typ) name)
        fmt params
  in
  fprintf fmt "@[<v 2>%s %s(%a) {@,%a@]@,}" (typ_text f.f_ret) f.f_name
    pp_params f.f_params pp_stmts f.f_body

let pp_program fmt (prog : Ast.program) =
  fprintf fmt "@[<v>%a@,@,%a@]@."
    (pp_print_list ~pp_sep:pp_print_cut pp_global)
    prog.globals
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt "@,@,") pp_func)
    prog.funcs

let program_to_string prog = asprintf "%a" pp_program prog
let expr_to_string e = asprintf "%a" pp_expr e
