(** Static checks for MiniC programs.

    MiniC follows C's permissive treatment of booleans: [int] and [bool]
    coerce into each other freely (conditions accept both), but structural
    errors are rejected: unknown identifiers, wrong arities, using a [void]
    call as a value, indexing a scalar or using an array without an index,
    assigning to constants or whole arrays, [break]/[continue] outside a
    loop or switch, duplicate case labels, and calls/[nondet]/memory access
    in global initializers.

    Checking also assigns every function a stable numeric id (declaration
    order, starting at 1) — the value the instrumentation passes store into
    the [fname] tracking variable so function sequencing can be referenced
    from temporal properties (paper, Section 3.1 step c). *)

type error = { message : string; pos : Ast.position }

exception Type_error of error

type info

val check : Ast.program -> info
(** @raise Type_error on the first violation found. *)

val check_result : Ast.program -> (info, string) result

val program : info -> Ast.program

val func_id : info -> string -> int
(** @raise Not_found for unknown functions. *)

val func_name_of_id : info -> int -> string option

val func_ids : info -> (string * int) list
(** All functions with their ids, in declaration order. *)

val global_type : info -> string -> Ast.typ option

val globals : info -> (string * Ast.typ) list
(** Non-const globals in declaration order (the memory layout order). *)

val constants : info -> (string * int) list
(** Const globals with their values. *)

val const_value : info -> string -> int option
