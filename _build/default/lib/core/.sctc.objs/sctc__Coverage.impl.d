lib/core/coverage.ml: Set String
