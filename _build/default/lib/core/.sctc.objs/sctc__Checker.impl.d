lib/core/checker.ml: Ar_automaton Fltl_parser Formula Il List Monitor Printf Proposition Psl String Trace Verdict
