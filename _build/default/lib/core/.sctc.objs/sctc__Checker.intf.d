lib/core/checker.mli: Formula Proposition Trace Verdict
