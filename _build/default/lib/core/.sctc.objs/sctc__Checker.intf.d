lib/core/checker.mli: Formula Proposition Verdict
