lib/core/coverage.mli:
