lib/core/trace.ml: Buffer Char Float Format List Printf String Unix Verdict
