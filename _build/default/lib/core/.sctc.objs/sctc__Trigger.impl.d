lib/core/trigger.ml: Checker Sim Trace
