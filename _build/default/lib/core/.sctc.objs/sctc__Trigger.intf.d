lib/core/trigger.mli: Checker Sim
