lib/core/trace.mli: Format Verdict
