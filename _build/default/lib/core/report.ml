type row = {
  row_name : string;
  vt_seconds : float;
  test_cases : int option;
  coverage_pct : float option;
  result : string;
}

let row ?test_cases ?coverage_pct name vt_seconds result =
  { row_name = name; vt_seconds; test_cases; coverage_pct; result }

let cell_of_column row = function
  | "V.T.(s)" -> Printf.sprintf "%.3f" row.vt_seconds
  | "T.C." -> (
    match row.test_cases with None -> "-" | Some n -> string_of_int n)
  | "C.(%)" -> (
    match row.coverage_pct with
    | None -> "-"
    | Some p -> Printf.sprintf "%.1f" p)
  | "Result" -> row.result
  | other -> invalid_arg ("Report: unknown column " ^ other)

let pp_table fmt ~title ~columns rows =
  let headers = "Property" :: columns in
  let body =
    List.map
      (fun row -> row.row_name :: List.map (cell_of_column row) columns)
      rows
  in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc cells -> max acc (String.length (List.nth cells i)))
          (String.length header) body)
      headers
  in
  let pad text width = text ^ String.make (width - String.length text) ' ' in
  let render_line cells =
    String.concat "  " (List.map2 pad cells widths)
  in
  Format.fprintf fmt "== %s ==@\n" title;
  Format.fprintf fmt "%s@\n" (render_line headers);
  Format.fprintf fmt "%s@\n"
    (String.concat "  "
       (List.map (fun width -> String.make width '-') widths));
  List.iter (fun cells -> Format.fprintf fmt "%s@\n" (render_line cells)) body

let to_string ~title ~columns rows =
  Format.asprintf "%a" (fun fmt () -> pp_table fmt ~title ~columns rows) ()

(* RFC-4180: quote a field iff it contains a comma, quote, CR or LF;
   embedded quotes are doubled *)
let csv_field text =
  let needs_quoting =
    String.exists
      (function ',' | '"' | '\n' | '\r' -> true | _ -> false)
      text
  in
  if not needs_quoting then text
  else begin
    let buffer = Buffer.create (String.length text + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\""
        else Buffer.add_char buffer c)
      text;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end

let csv_header = "name,vt_seconds,test_cases,coverage_pct,result"

let csv rows =
  let cell_option f = function None -> "" | Some v -> f v in
  String.concat "\n"
    (csv_header
    :: List.map
         (fun row ->
           String.concat ","
             [
               csv_field row.row_name;
               Printf.sprintf "%.6f" row.vt_seconds;
               cell_option string_of_int row.test_cases;
               cell_option (Printf.sprintf "%.2f") row.coverage_pct;
               csv_field row.result;
             ])
         rows)

let jsonl rows =
  String.concat "\n"
    (List.map
       (fun row ->
         Trace.Json.obj
           [
             ("name", Trace.Json.string row.row_name);
             ("vt_seconds", Printf.sprintf "%.6f" row.vt_seconds);
             ("test_cases", Trace.Json.option Trace.Json.int row.test_cases);
             ( "coverage_pct",
               Trace.Json.option Trace.Json.float row.coverage_pct );
             ("result", Trace.Json.string row.result);
           ])
       rows)
