let on_event kernel event checker =
  let body () =
    let rec loop () =
      Sim.Kernel.wait_event event;
      Checker.step checker;
      loop ()
    in
    loop ()
  in
  Sim.Kernel.spawn kernel ~name:(Checker.name checker ^ ".trigger") body

let on_clock kernel clock checker = on_event kernel (Sim.Clock.posedge clock) checker

let on_event_when kernel event ~ready checker =
  let body () =
    let rec wait_ready () =
      Sim.Kernel.wait_event event;
      if not (ready ()) then wait_ready ()
    in
    wait_ready ();
    let rec loop () =
      Checker.step checker;
      Sim.Kernel.wait_event event;
      loop ()
    in
    loop ()
  in
  Sim.Kernel.spawn kernel ~name:(Checker.name checker ^ ".trigger") body
