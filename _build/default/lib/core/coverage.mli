(** Return-value coverage collection.

    The paper's coverage metric C.(%) is the percentage of the possible
    return values of an operation that were actually observed during the
    constrained-random test campaign (100% = every specified return value
    of the operation was received at least once). *)

type t

val create : name:string -> expected:string list -> t
(** [expected] is the full set of values the specification allows. *)

val name : t -> string

val observe : t -> string -> unit
(** Record one observation. Values outside [expected] are counted
    separately as unexpected (see {!unexpected}) — receiving one usually
    indicates a specification violation. *)

val observations : t -> int
(** Total number of [observe] calls. *)

val observed : t -> string list
(** Expected values seen so far (sorted). *)

val missing : t -> string list
(** Expected values not seen yet (sorted). *)

val unexpected : t -> string list
(** Observed values outside the expected set (sorted). *)

val percent : t -> float
(** [100. *. |observed| / |expected|]; 100% when [expected] is empty. *)

val reset : t -> unit

val merge : t -> t -> t
(** Union of observations; both inputs must have the same name and expected
    set. @raise Invalid_argument otherwise. *)
