(** Result-table rendering for the experiment harness.

    The bench harness regenerates the paper's Fig. 7 and Fig. 8 as textual
    tables; rows carry verification time, test-case count, coverage, and the
    qualitative result. *)

type row = {
  row_name : string;  (** property / operation name *)
  vt_seconds : float;  (** verification time (paper column "V.T.(s)") *)
  test_cases : int option;  (** number of test cases (paper column "T.C.") *)
  coverage_pct : float option;  (** return-value coverage (paper "C.(%)") *)
  result : string;  (** e.g. "pass", "Exception", "> timeout" *)
}

val row :
  ?test_cases:int -> ?coverage_pct:float -> string -> float -> string -> row

val pp_table :
  Format.formatter -> title:string -> columns:string list -> row list -> unit
(** Render with a box-drawing header. [columns] selects among
    ["V.T.(s)"; "T.C."; "C.(%)"; "Result"]. *)

val to_string : title:string -> columns:string list -> row list -> string

val csv : row list -> string
(** Machine-readable dump: an RFC-4180 header line
    ([name,vt_seconds,test_cases,coverage_pct,result]) followed by one
    line per row; fields containing commas, quotes, or newlines are
    quoted and embedded quotes doubled. No trailing newline. *)

val jsonl : row list -> string
(** One JSON object per row (same fields as the CSV; absent optional
    fields render as [null]). No trailing newline. *)
