module SS = Set.Make (String)

type t = {
  cov_name : string;
  expected : SS.t;
  mutable seen : SS.t;
  mutable outside : SS.t;
  mutable count : int;
}

let create ~name ~expected =
  {
    cov_name = name;
    expected = SS.of_list expected;
    seen = SS.empty;
    outside = SS.empty;
    count = 0;
  }

let name coverage = coverage.cov_name

let observe coverage value =
  coverage.count <- coverage.count + 1;
  if SS.mem value coverage.expected then
    coverage.seen <- SS.add value coverage.seen
  else coverage.outside <- SS.add value coverage.outside

let observations coverage = coverage.count
let observed coverage = SS.elements coverage.seen
let missing coverage = SS.elements (SS.diff coverage.expected coverage.seen)
let unexpected coverage = SS.elements coverage.outside

let percent coverage =
  let total = SS.cardinal coverage.expected in
  if total = 0 then 100.0
  else 100.0 *. float_of_int (SS.cardinal coverage.seen) /. float_of_int total

let reset coverage =
  coverage.seen <- SS.empty;
  coverage.outside <- SS.empty;
  coverage.count <- 0

let merge a b =
  if not (String.equal a.cov_name b.cov_name && SS.equal a.expected b.expected)
  then invalid_arg "Coverage.merge: incompatible collectors";
  {
    cov_name = a.cov_name;
    expected = a.expected;
    seen = SS.union a.seen b.seen;
    outside = SS.union a.outside b.outside;
    count = a.count + b.count;
  }
