(** Connecting a checker to its timing reference.

    The paper's two approaches differ only in what triggers the checker:
    the microprocessor clock (approach 1) or the derived software model's
    program-counter event (approach 2). These helpers spawn the monitor
    process that waits on the trigger and steps the checker.

    When the checker carries a live {!Trace.t} bus, the trigger process
    publishes a [Handshake_armed] event once it starts stepping the
    checker and a [Trigger] event before every step. *)

val on_event : Sim.Kernel.t -> Sim.Kernel.event -> Checker.t -> Sim.Kernel.process
(** Step the checker every time the event is notified. *)

val on_clock : Sim.Kernel.t -> Sim.Clock.t -> Checker.t -> Sim.Kernel.process
(** Step the checker on every rising clock edge. *)

val on_event_when :
  Sim.Kernel.t ->
  Sim.Kernel.event ->
  ready:(unit -> bool) ->
  Checker.t ->
  Sim.Kernel.process
(** Like {!on_event} but stays idle (consuming triggers without stepping)
    until [ready ()] becomes true — the handshake of the paper's ESW
    monitor, which polls the software's initialization flag before arming
    the temporal properties. *)
