type result =
  | Safe
  | Bug of { path_length : int; position : Minic.Ast.position }
  | Aborted of string
  | Unknown of string

type report = {
  result : result;
  iterations : int;
  predicates : int;
  art_nodes : int;
  seconds : float;
}

exception Abort_analysis of string

module LSet = Set.Make (Linexpr)
module SMap = Map.Make (String)

(* a region: tracked predicates known true / known false *)
type region = { yes : LSet.t; no : LSet.t }

let region_constraints region =
  LSet.elements region.yes
  @ List.map Linexpr.negate_atom (LSet.elements region.no)

(* r2 is at least as strong as r1 (fewer concrete states) *)
let stronger_than r2 r1 = LSet.subset r1.yes r2.yes && LSet.subset r1.no r2.no

(* abstract post of a region through a command *)
let post ~predicates region (cmd : Acfg.cmd) =
  match cmd with
  | Acfg.Skip -> Some region
  | Acfg.Havoc x ->
    Some
      {
        yes = LSet.filter (fun p -> not (Linexpr.mentions p x)) region.yes;
        no = LSet.filter (fun p -> not (Linexpr.mentions p x)) region.no;
      }
  | Acfg.Assume atoms ->
    let hyps = atoms @ region_constraints region in
    if not (try Fourier_motzkin.satisfiable hyps with Fourier_motzkin.Blowup n ->
              raise (Abort_analysis (Printf.sprintf "decision procedure blowup (%d constraints)" n)))
    then None (* infeasible branch *)
    else
      Some
        (List.fold_left
           (fun region p ->
             if LSet.mem p region.yes || LSet.mem p region.no then region
             else if Fourier_motzkin.entails hyps p then
               { region with yes = LSet.add p region.yes }
             else if Fourier_motzkin.entails hyps (Linexpr.negate_atom p) then
               { region with no = LSet.add p region.no }
             else region)
           region predicates)
  | Acfg.Assign (x, e) ->
    let hyps = region_constraints region in
    Some
      (List.fold_left
         (fun acc p ->
           (* p holds after x := e iff p[x := e] holds before *)
           let wp = Linexpr.normalize (Linexpr.subst p x e) in
           if Linexpr.atom_true wp || Fourier_motzkin.entails hyps wp then
             { acc with yes = LSet.add p acc.yes }
           else if
             Linexpr.atom_false wp
             || Fourier_motzkin.entails hyps (Linexpr.negate_atom wp)
           then { acc with no = LSet.add p acc.no }
           else acc)
         { yes = LSet.empty; no = LSet.empty }
         predicates)

(* ------------------------------------------------------------------ *)
(* abstract reachability: BFS with coverage; returns an error path as a
   list of edges, or None when the error location is unreachable *)

type art_result =
  | Unreachable of int (* nodes explored *)
  | Error_path of Acfg.edge list * int

let reachability cfg ~predicates ~max_nodes ~deadline =
  let visited : (int, region list ref) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let explored = ref 0 in
  let initial = { yes = LSet.empty; no = LSet.empty } in
  Queue.add (Acfg.entry cfg, initial, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let loc, region, path = Queue.pop queue in
       incr explored;
       if !explored > max_nodes then
         raise
           (Abort_analysis
              (Printf.sprintf "abstract reachability exceeded %d nodes"
                 max_nodes));
       if !explored land 127 = 0 && Unix.gettimeofday () > deadline then
         raise (Abort_analysis "timeout during abstract reachability");
       let regions =
         match Hashtbl.find_opt visited loc with
         | Some cell -> cell
         | None ->
           let cell = ref [] in
           Hashtbl.replace visited loc cell;
           cell
       in
       (* covered when an already-explored region is weaker *)
       if not (List.exists (fun r -> stronger_than region r) !regions) then begin
         regions := region :: !regions;
         List.iter
           (fun (edge : Acfg.edge) ->
             match post ~predicates region edge.Acfg.cmd with
             | None -> ()
             | Some region' ->
               let path' = edge :: path in
               if edge.Acfg.dst = Acfg.error cfg then begin
                 if !result = None then result := Some (List.rev path')
               end
               else Queue.add (edge.Acfg.dst, region', path') queue)
           (Acfg.succ cfg loc);
         match !result with Some _ -> raise Exit | None -> ()
       end
     done
   with Exit -> ());
  match !result with
  | Some path -> Error_path (path, !explored)
  | None -> Unreachable !explored

(* ------------------------------------------------------------------ *)
(* concrete path feasibility: strongest-postcondition simulation with a
   symbolic store of linear expressions over fresh symbols *)

let path_feasible path =
  let fresh = ref 0 in
  let fresh_symbol base =
    incr fresh;
    Printf.sprintf "%s!%d" base !fresh
  in
  let store = ref SMap.empty in
  let value_of x =
    match SMap.find_opt x !store with
    | Some le -> le
    | None ->
      (* first read: a fresh symbol for the unknown initial value *)
      let sym = Linexpr.var (fresh_symbol x) in
      store := SMap.add x sym !store;
      sym
  in
  let rewrite atom =
    List.fold_left
      (fun atom v -> Linexpr.subst atom v (value_of v))
      atom (Linexpr.vars atom)
  in
  let constraints = ref [] in
  List.iter
    (fun (edge : Acfg.edge) ->
      match edge.Acfg.cmd with
      | Acfg.Skip -> ()
      | Acfg.Havoc x -> store := SMap.add x (Linexpr.var (fresh_symbol x)) !store
      | Acfg.Assign (x, e) ->
        let rhs = rewrite e in
        store := SMap.add x rhs !store
      | Acfg.Assume atoms ->
        List.iter (fun atom -> constraints := rewrite atom :: !constraints) atoms)
    path;
  try Fourier_motzkin.satisfiable !constraints
  with Fourier_motzkin.Blowup n ->
    raise
      (Abort_analysis
         (Printf.sprintf "path feasibility blowup (%d constraints)" n))

(* refinement: weakest-precondition atoms along the path *)
let refine_predicates path =
  (* walk the path backward accumulating atoms transported to the front *)
  let collected = ref LSet.empty in
  let pending = ref [] in
  List.iter
    (fun (edge : Acfg.edge) ->
      (match edge.Acfg.cmd with
      | Acfg.Skip -> ()
      | Acfg.Havoc x ->
        pending := List.filter (fun a -> not (Linexpr.mentions a x)) !pending
      | Acfg.Assign (x, e) ->
        pending := List.map (fun a -> Linexpr.normalize (Linexpr.subst a x e)) !pending
      | Acfg.Assume atoms ->
        pending := List.map Linexpr.normalize atoms @ !pending);
      List.iter
        (fun a ->
          if not (Linexpr.atom_true a || Linexpr.atom_false a) then
            collected := LSet.add a !collected)
        !pending)
    (List.rev path);
  LSet.elements !collected

(* ------------------------------------------------------------------ *)

let check ?(max_predicates = 60) ?(max_art_nodes = 60_000)
    ?(max_iterations = 30) ?(timeout_seconds = 60.0) ?(entry = "main") info =
  let started = Unix.gettimeofday () in
  let deadline = started +. timeout_seconds in
  let finish ~iterations ~predicates ~art_nodes result =
    {
      result;
      iterations;
      predicates;
      art_nodes;
      seconds = Unix.gettimeofday () -. started;
    }
  in
  match
    let normalized = Normalize.program info in
    Acfg.build normalized ~entry
  with
  | exception Acfg.Build_unsupported msg ->
    finish ~iterations:0 ~predicates:0 ~art_nodes:0
      (Aborted ("CFG construction: " ^ msg))
  | cfg -> (
    let predicates = ref [] in
    let iterations = ref 0 in
    let art_nodes = ref 0 in
    match
      let rec loop () =
        incr iterations;
        if !iterations > max_iterations then
          raise (Abort_analysis "too many refinement iterations");
        if Unix.gettimeofday () > deadline then
          raise (Abort_analysis "timeout");
        match
          reachability cfg ~predicates:!predicates ~max_nodes:max_art_nodes
            ~deadline
        with
        | Unreachable explored ->
          art_nodes := explored;
          Safe
        | Error_path (path, explored) ->
          art_nodes := explored;
          if path_feasible path then
            Bug
              {
                path_length = List.length path;
                position =
                  (match List.rev path with
                  | last :: _ -> last.Acfg.pos
                  | [] -> Minic.Ast.dummy_pos);
              }
          else begin
            let fresh = refine_predicates path in
            let existing = LSet.of_list !predicates in
            let genuinely_new =
              List.filter (fun p -> not (LSet.mem p existing)) fresh
            in
            if genuinely_new = [] then
              Unknown "refinement produced no new predicates"
            else begin
              predicates := LSet.elements (LSet.union existing (LSet.of_list fresh));
              if List.length !predicates > max_predicates then
                raise
                  (Abort_analysis
                     (Printf.sprintf "predicate set exceeded %d" max_predicates));
              loop ()
            end
          end
      in
      loop ()
    with
    | result ->
      finish ~iterations:!iterations ~predicates:(List.length !predicates)
        ~art_nodes:!art_nodes result
    | exception Abort_analysis msg ->
      finish ~iterations:!iterations ~predicates:(List.length !predicates)
        ~art_nodes:!art_nodes (Aborted msg))
