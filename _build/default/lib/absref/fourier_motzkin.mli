(** Fourier–Motzkin elimination: the decision procedure of the
    abstraction-refinement checker (standing in for BLAST's theorem
    prover).

    Decides satisfiability of conjunctions of linear atoms [e ≤ 0] over
    the rationals. Rational reasoning is sound for the two uses here:
    rationally-unsat implies integrally-unsat (so entailment answers
    "yes" only when correct) and rationally-sat counterexample paths are
    reported as potentially spurious.

    FM elimination doubles constraints per eliminated variable in the
    worst case; the [Blowup] exception reports the resource exhaustion —
    this is the analog of the theorem-prover aborts the paper observed
    with BLAST. *)

exception Blowup of int

val satisfiable : ?max_constraints:int -> Linexpr.t list -> bool
(** Conjunction of [e ≤ 0] atoms (default budget 4000 constraints).
    @raise Blowup when the budget is exceeded. *)

val entails : ?max_constraints:int -> Linexpr.t list -> Linexpr.t -> bool
(** [entails hyps goal]: does [∧ hyps ≤ 0] imply [goal ≤ 0] over the
    integers? (Decided as rational unsatisfiability of
    [hyps ∧ 1 - goal ≤ 0]; "false" answers may be imprecise, "true"
    answers are sound.) Returns [false] instead of raising on blowup. *)
