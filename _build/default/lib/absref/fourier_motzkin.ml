exception Blowup of int

module LSet = Set.Make (Linexpr)

let satisfiable ?(max_constraints = 4000) atoms =
  (* quick syntactic checks, then eliminate variables one by one *)
  let rec eliminate constraints =
    if List.exists Linexpr.atom_false constraints then false
    else begin
      let constraints =
        List.filter (fun e -> not (Linexpr.atom_true e)) constraints
      in
      if List.length constraints > max_constraints then
        raise (Blowup (List.length constraints));
      (* pick a variable *)
      match
        List.find_map
          (fun e -> match Linexpr.vars e with x :: _ -> Some x | [] -> None)
          constraints
      with
      | None -> true (* only satisfied constants remain *)
      | Some x ->
        let with_pos, with_neg, without =
          List.fold_left
            (fun (pos, neg, rest) e ->
              let c = Linexpr.coeff e x in
              if c > 0 then (e :: pos, neg, rest)
              else if c < 0 then (pos, e :: neg, rest)
              else (pos, neg, e :: rest))
            ([], [], []) constraints
        in
        (* combine each (positive, negative) pair:
           a·x + p ≤ 0 (a>0), -b·x + q ≤ 0 (b>0)  ⟹  b·p + a·q ≤ 0 *)
        let combined =
          List.concat_map
            (fun ep ->
              let a = Linexpr.coeff ep x in
              let p = Linexpr.sub ep (Linexpr.scale a (Linexpr.var x)) in
              List.map
                (fun en ->
                  let b = -Linexpr.coeff en x in
                  let q = Linexpr.add en (Linexpr.scale b (Linexpr.var x)) in
                  Linexpr.normalize
                    (Linexpr.add (Linexpr.scale b p) (Linexpr.scale a q)))
                with_neg)
            with_pos
        in
        let next =
          LSet.elements (LSet.of_list (combined @ without))
        in
        eliminate next
    end
  in
  eliminate (List.map Linexpr.normalize atoms)

let entails ?max_constraints hyps goal =
  if Linexpr.atom_true goal then true
  else
    match satisfiable ?max_constraints (Linexpr.negate_atom goal :: hyps) with
    | sat -> not sat
    | exception Blowup _ -> false
